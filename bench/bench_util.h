#pragma once

#include <cstdio>
#include <string>

#include "trace/clock.h"

namespace wavepim::bench {

/// The shared wall-clock time source for benches: the trace subsystem's
/// monotonic stopwatch, so bench timing and trace timestamps agree on a
/// clock and epoch.
using Stopwatch = trace::Stopwatch;

/// Times a bench section and prints its duration when it goes out of
/// scope — for the figure benches' coarse "this sweep took N s" lines.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string label) : label_(std::move(label)) {}
  ~ScopedTimer() {
    std::printf("  (%s: %.2f s)\n", label_.c_str(), watch_.elapsed_seconds());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::string label_;
  Stopwatch watch_;
};

/// Tracks the PASS/FAIL shape assertions a reproduction bench makes
/// against the paper; the process exit code reflects them so the bench
/// run fails loudly when a trend breaks.
class ShapeChecks {
 public:
  /// Asserts a qualitative claim from the paper.
  void expect(bool ok, const std::string& claim) {
    std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
    if (!ok) {
      ++failures_;
    }
  }

  /// Asserts `value` lies within [lo, hi].
  void expect_between(double value, double lo, double hi,
                      const std::string& claim) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s (got %.4g, expected %.4g..%.4g)",
                  claim.c_str(), value, lo, hi);
    expect(value >= lo && value <= hi, buf);
  }

  [[nodiscard]] int exit_code() const { return failures_ == 0 ? 0 : 1; }
  [[nodiscard]] int failures() const { return failures_; }

 private:
  int failures_ = 0;
};

inline void header(const char* title) {
  std::printf("\n=== %s ===\n\n", title);
}

}  // namespace wavepim::bench
