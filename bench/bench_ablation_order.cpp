// Ablation over the element order: the paper's §2.2 observation that more
// nodes per element raise arithmetic intensity and the local/non-local
// work ratio — the reason Wave-PIM uses 512-node (8x8x8) elements that
// exactly fill a 1Kx1K block's 512 compute rows.
#include "bench_util.h"
#include "common/table.h"
#include "dg/op_counter.h"
#include "mapping/estimator.h"

using namespace wavepim;

int main() {
  bench::header("Ablation — Nodes per Element (arithmetic intensity)");

  TextTable table({"n1d", "Nodes/element", "Volume FLOPs/elem",
                   "Flux FLOPs/elem", "Local/non-local ratio",
                   "PIM stage (us)", "Fetch share"});
  bench::ShapeChecks checks;

  double prev_ratio = 0.0;
  double prev_fetch_share = 2.0;
  for (int n1d : {4, 6, 8}) {
    const auto ops = dg::count_problem_ops(dg::ProblemKind::Acoustic, 1, n1d);
    const double local =
        static_cast<double>(ops.volume.flops + ops.integration.flops);
    const double nonlocal = static_cast<double>(ops.flux.flops);
    const double ratio = local / nonlocal;

    const mapping::Problem problem{dg::ProblemKind::Acoustic, 4, n1d};
    mapping::Estimator estimator(problem, pim::chip_512mb(),
                                 {.force_expansion =
                                      mapping::ExpansionMode::None});
    const auto& est = estimator.estimate();
    const double stage_us = est.stage_schedule.total.value() * 1e6;
    const double fetch = (est.segments.fetch_minus +
                          est.segments.fetch_plus).value();
    const double fetch_share =
        fetch / est.stage_schedule_serial.total.value();

    table.add_row({std::to_string(n1d),
                   std::to_string(n1d * n1d * n1d),
                   TextTable::num(static_cast<double>(ops.volume.flops), 4),
                   TextTable::num(nonlocal, 4), TextTable::num(ratio, 3),
                   TextTable::num(stage_us, 4),
                   TextTable::num(100.0 * fetch_share, 3) + "%"});

    checks.expect(ratio > prev_ratio,
                  "n1d=" + std::to_string(n1d) +
                      ": local/non-local FLOP ratio grows with order "
                      "(§2.2)");
    prev_ratio = ratio;
    (void)fetch_share;
    (void)prev_fetch_share;
  }
  table.print();
  std::printf(
      "\nNote: the FLOP-level local/non-local ratio improves with order\n"
      "(the paper's §2.2 point), while the PIM fetch *time* share still\n"
      "grows slowly: row-parallel arithmetic time is independent of the\n"
      "row count, but transfer words scale with the face area.\n");

  std::printf("\nThe 8-point basis (512 nodes) exactly fills the 512\n"
              "compute rows of a 1Kx1K block (Fig. 5) — larger elements\n"
              "would spill, smaller ones idle rows.\n\n");
  checks.expect(8 * 8 * 8 == 512, "8^3 nodes == 512 block compute rows");
  return checks.exit_code();
}
