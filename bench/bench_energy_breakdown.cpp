// Energy breakdown supporting §7.4: where each PIM configuration's energy
// goes (static, compute, network, host, off-chip), exposing the
// under-utilisation penalty of oversized chips and the batching penalty
// of undersized ones.
#include "bench_util.h"
#include "common/table.h"
#include "core/report.h"

using namespace wavepim;

int main() {
  bench::header("Energy Breakdown per PIM Configuration (§7.4)");

  bench::ShapeChecks checks;
  for (const mapping::Problem problem :
       {mapping::Problem{dg::ProblemKind::Acoustic, 4, 8},
        mapping::Problem{dg::ProblemKind::Acoustic, 5, 8}}) {
    std::printf("%s:\n", problem.name().c_str());
    TextTable table({"Chip", "Step energy", "Static", "Compute", "Network",
                     "Host", "HBM"});
    std::vector<core::EnergyBreakdown> rows;
    for (const auto& chip : pim::standard_chips()) {
      const auto b = core::breakdown_energy(problem, chip);
      rows.push_back(b);
      auto pct = [](double f) { return TextTable::num(100.0 * f, 3) + "%"; };
      table.add_row({b.platform, format_energy(b.total),
                     pct(b.static_fraction), pct(b.dynamic_fraction),
                     pct(b.network_fraction), pct(b.host_fraction),
                     pct(b.hbm_fraction)});
    }
    table.print();
    std::printf("\n");

    const double sum0 = rows[0].static_fraction + rows[0].dynamic_fraction +
                        rows[0].network_fraction + rows[0].host_fraction +
                        rows[0].hbm_fraction;
    checks.expect_between(sum0, 0.999, 1.001,
                          problem.name() + ": fractions sum to one");
    checks.expect(
        rows[3].static_fraction > rows[0].static_fraction,
        problem.name() +
            ": 16GB burns a larger static share than 512MB (§7.4)");
    if (problem.refinement_level == 5) {
      checks.expect(rows[0].hbm_fraction > rows[3].hbm_fraction,
                    "level 5 on 512MB pays an off-chip staging share");
    }
  }
  return checks.exit_code();
}
