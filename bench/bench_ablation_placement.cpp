// Ablation over the element-to-block placement order: the row-major
// layout (§5.1's natural mapping) keeps X-neighbours adjacent but pushes
// Z-neighbours across tiles; a Morton (Z-curve) placement balances all
// three axes. Quantifies how much the fetch phase cares.
#include "bench_util.h"
#include "common/table.h"
#include "mapping/estimator.h"

using namespace wavepim;

int main() {
  bench::header("Ablation — Element Placement Order (row-major vs Morton)");

  TextTable table({"Benchmark", "Chip", "Placement", "Fetch/stage",
                   "Step time"});
  bench::ShapeChecks checks;

  struct Case {
    mapping::Problem problem;
    pim::ChipConfig chip;
  };
  const Case cases[] = {
      {{dg::ProblemKind::Acoustic, 4, 8}, pim::chip_512mb()},
      {{dg::ProblemKind::Acoustic, 5, 8}, pim::chip_8gb()},
      {{dg::ProblemKind::ElasticCentral, 4, 8}, pim::chip_2gb()},
  };
  for (const auto& c : cases) {
    double fetch[2];
    int i = 0;
    for (bool morton : {false, true}) {
      mapping::Estimator::Options options;
      options.morton_placement = morton;
      mapping::Estimator estimator(c.problem, c.chip, options);
      const auto& est = estimator.estimate();
      fetch[i] =
          (est.segments.fetch_minus + est.segments.fetch_plus).value();
      table.add_row({c.problem.name(), c.chip.name,
                     morton ? "morton" : "row-major",
                     format_time(Seconds(fetch[i])),
                     format_time(est.step_time)});
      ++i;
    }
    checks.expect(fetch[1] < 1.5 * fetch[0],
                  c.problem.name() + " on " + c.chip.name +
                      ": Morton placement does not blow up the fetch");
  }
  table.print();

  std::printf(
      "\nRow-major keeps X transfers one switch away but sends every\n"
      "Z transfer across tiles; Morton spreads the pain across axes.\n"
      "The net effect depends on how much tile-crossing traffic the\n"
      "fabric hides — exactly the kind of question this simulator is\n"
      "built to answer.\n\n");
  return checks.exit_code();
}
