// Reproduces Table 6: instruction and FP-operation counts of the six
// benchmarks (one launch of each kernel), from the analytic op counters.
#include "bench_util.h"
#include "common/table.h"
#include "dg/op_counter.h"
#include "mapping/config.h"

using namespace wavepim;

int main() {
  bench::header("Table 6 — Characteristics of the Six Benchmarks");

  struct PaperRow {
    std::uint64_t instructions;
    std::uint64_t flops;
  };
  const PaperRow paper[6] = {
      {2'140'930'048ull, 391'380'992ull},
      {3'465'543'680ull, 990'117'888ull},
      {9'870'131'200ull, 1'472'200'704ull},
      {17'127'440'384ull, 3'131'047'936ull},
      {27'724'349'440ull, 7'920'943'104ull},
      {78'960'159'424ull, 11'777'661'440ull},
  };

  TextTable table({"Benchmark", "Level", "Elements", "Instructions (model)",
                   "Instructions (paper)", "FP ops (model)",
                   "FP ops (paper)", "FP ratio"});
  bench::ShapeChecks checks;
  const auto problems = mapping::paper_benchmarks();
  // The paper orders by level then physics; ours is the same order.
  const int order[6] = {0, 1, 2, 3, 4, 5};
  for (int i : order) {
    const auto& p = problems[i];
    const auto c = dg::characterize(p.kind, p.refinement_level, p.n1d);
    const double ratio =
        static_cast<double>(c.num_flops) / static_cast<double>(paper[i].flops);
    table.add_row({c.name, std::to_string(c.refinement_level),
                   std::to_string(c.num_elements),
                   TextTable::num(static_cast<double>(c.num_instructions), 4),
                   TextTable::num(static_cast<double>(paper[i].instructions), 4),
                   TextTable::num(static_cast<double>(c.num_flops), 4),
                   TextTable::num(static_cast<double>(paper[i].flops), 4),
                   TextTable::num(ratio, 3)});
    checks.expect_between(ratio, 0.25, 4.0,
                          c.name + " FLOP count within 4x of nvprof");
  }
  table.print();

  std::printf("\n");
  const auto a4 = dg::characterize(dg::ProblemKind::Acoustic, 4, 8);
  const auto a5 = dg::characterize(dg::ProblemKind::Acoustic, 5, 8);
  checks.expect(a5.num_flops == 8 * a4.num_flops,
                "level 5 has exactly 8x the level-4 work");
  const auto ec = dg::characterize(dg::ProblemKind::ElasticCentral, 4, 8);
  const auto er = dg::characterize(dg::ProblemKind::ElasticRiemann, 4, 8);
  checks.expect(a4.num_flops < ec.num_flops && ec.num_flops < er.num_flops,
                "FLOPs ordered Acoustic < Elastic-Central < Elastic-Riemann");
  checks.expect(er.num_instructions > 2 * ec.num_instructions,
                "Riemann instruction count >2x central (divergence)");
  return checks.exit_code();
}
