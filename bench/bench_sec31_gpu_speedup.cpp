// Reproduces the §3.1 motivation numbers: GPU speed-ups over the dual
// Xeon 8160 CPU reference for acoustic refinement levels 4 and 5
// (1024 time steps).
#include "bench_util.h"
#include "common/table.h"
#include "gpumodel/baseline.h"

using namespace wavepim;
using gpumodel::GpuImplementation;

int main() {
  bench::header("Section 3.1 — GPU Speedup over the CPU Reference");

  const double paper[2][3] = {{94.35, 100.25, 123.38},
                              {131.10, 223.95, 369.05}};
  const std::uint64_t steps = 1024;

  TextTable table({"Level", "Platform", "CPU time", "GPU time",
                   "Speedup (model)", "Speedup (paper)"});
  bench::ShapeChecks checks;
  for (int li = 0; li < 2; ++li) {
    const mapping::Problem problem{dg::ProblemKind::Acoustic, 4 + li, 8};
    const auto cpu =
        gpumodel::estimate_cpu(problem, gpumodel::dual_xeon_8160(), steps);
    const auto gpus = gpumodel::paper_gpus();
    for (std::size_t g = 0; g < gpus.size(); ++g) {
      const auto gpu = gpumodel::estimate_gpu(problem, gpus[g],
                                              GpuImplementation::Unfused,
                                              steps);
      const double speedup = cpu.total_time / gpu.total_time;
      table.add_row({std::to_string(problem.refinement_level), gpus[g].name,
                     format_time(cpu.total_time), format_time(gpu.total_time),
                     TextTable::ratio(speedup),
                     TextTable::ratio(paper[li][g])});
      checks.expect_between(speedup, paper[li][g] / 2.0, paper[li][g] * 2.0,
                            gpus[g].name + " level " +
                                std::to_string(problem.refinement_level) +
                                " within 2x of the paper");
    }
  }
  table.print();

  std::printf("\n");
  // Orderings the paper's numbers exhibit.
  const mapping::Problem l4{dg::ProblemKind::Acoustic, 4, 8};
  const mapping::Problem l5{dg::ProblemKind::Acoustic, 5, 8};
  const auto cpu4 = gpumodel::estimate_cpu(l4, gpumodel::dual_xeon_8160(), 1);
  const auto cpu5 = gpumodel::estimate_cpu(l5, gpumodel::dual_xeon_8160(), 1);
  const auto v4 = gpumodel::estimate_gpu(l4, gpumodel::tesla_v100(),
                                         GpuImplementation::Unfused, 1);
  const auto v5 = gpumodel::estimate_gpu(l5, gpumodel::tesla_v100(),
                                         GpuImplementation::Unfused, 1);
  checks.expect((cpu5.total_time / v5.total_time) >
                    (cpu4.total_time / v4.total_time),
                "GPU advantage grows with refinement level (cache effects)");
  return checks.exit_code();
}
