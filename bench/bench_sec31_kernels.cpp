// Reproduces the §3.1 per-kernel GPU analysis: the Volume kernel benefits
// from more SMs until bandwidth saturates, Integration is dominated by
// memory accesses on every GPU, and Flux is the least efficient kernel
// (divergence).
#include "bench_util.h"
#include "common/table.h"
#include "gpumodel/baseline.h"

using namespace wavepim;

int main() {
  bench::header("Section 3.1 — Per-kernel GPU Analysis (Acoustic_4)");

  const mapping::Problem problem{dg::ProblemKind::Acoustic, 4, 8};
  TextTable table({"GPU", "Volume", "Flux", "Integration",
                   "Integration bound"});
  bench::ShapeChecks checks;

  gpumodel::GpuKernelTimes times[3];
  int i = 0;
  for (const auto& gpu : gpumodel::paper_gpus()) {
    times[i] = gpumodel::gpu_kernel_times(problem, gpu);
    table.add_row({gpu.name, format_time(times[i].volume),
                   format_time(times[i].flux),
                   format_time(times[i].integration),
                   times[i].integration_compute_bound ? "compute"
                                                      : "memory"});
    // "the Integration kernel does not scale so well ... since the memory
    // accesses dominate this kernel".
    checks.expect(!times[i].integration_compute_bound,
                  gpu.name + ": Integration is memory bound");
    ++i;
  }
  table.print();
  std::printf("\n");

  // "The compute Volume kernel can benefit from more SMs, as we move from
  // GTX 1080Ti, to Tesla P100, to Tesla V100".
  checks.expect(times[1].volume < times[0].volume &&
                    times[2].volume < times[1].volume,
                "Volume gets faster on each successive GPU");
  // "the compute Flux kernel is the most inefficient kernel": worst
  // achieved fraction of peak bandwidth.
  const auto ops = dg::count_problem_ops(problem.kind,
                                         problem.num_elements(), problem.n1d);
  const auto& v100 = gpumodel::tesla_v100();
  const double flux_bw = static_cast<double>(ops.flux.bytes_total()) /
                         times[2].flux.value() / v100.mem_bandwidth_bps;
  const double vol_bw = static_cast<double>(ops.volume.bytes_total()) /
                        times[2].volume.value() / v100.mem_bandwidth_bps;
  const double integ_bw =
      static_cast<double>(ops.integration.bytes_total()) /
      times[2].integration.value() / v100.mem_bandwidth_bps;
  std::printf("Achieved bandwidth fraction on V100: volume %.2f, "
              "flux %.2f, integration %.2f\n\n",
              vol_bw, flux_bw, integ_bw);
  checks.expect(flux_bw < vol_bw && flux_bw < integ_bw,
                "Flux achieves the worst bandwidth fraction (divergence)");

  // The Riemann solver's divergence makes its flux kernel less efficient
  // than the branch-light central solver.
  auto flux_bw_of = [&](dg::ProblemKind kind) {
    const mapping::Problem p{kind, 4, 8};
    const auto t = gpumodel::gpu_kernel_times(p, v100);
    const auto o = dg::count_problem_ops(p.kind, p.num_elements(), p.n1d);
    return static_cast<double>(o.flux.bytes_total()) / t.flux.value() /
           v100.mem_bandwidth_bps;
  };
  checks.expect(flux_bw_of(dg::ProblemKind::ElasticRiemann) <
                    flux_bw_of(dg::ProblemKind::ElasticCentral),
                "the Riemann flux is less efficient than the central one");
  return checks.exit_code();
}
