// Reproduces Figure 14: intra-element vs inter-element flux time for the
// H-tree and Bus interconnects across the paper's four case studies, and
// the ~2.16x H-tree time saving.
#include "bench_util.h"
#include "common/table.h"
#include "mapping/estimator.h"

using namespace wavepim;

namespace {

struct Case {
  mapping::Problem problem;
  pim::ChipConfig (*chip)(pim::Topology);
  const char* label;
  double paper_inter_share_htree;  // percent
  double paper_inter_share_bus;
};

}  // namespace

int main() {
  bench::header("Figure 14 — Comparison between H-Tree and Bus");

  // The four paper cases: without expansion (Acoustic_4/512MB,
  // Elastic-Central_4/2GB) inter-element is 21.62% (H-tree) / 58.41% (Bus)
  // of flux execution; with expansion (Acoustic_4/2GB,
  // Elastic-Central_4/8GB) 42.77% / 69.96%.
  const Case cases[] = {
      {{dg::ProblemKind::Acoustic, 4, 8}, pim::chip_512mb,
       "Acoustic_4 / 512MB (N)", 21.62, 58.41},
      {{dg::ProblemKind::Acoustic, 4, 8}, pim::chip_2gb,
       "Acoustic_4 / 2GB (Ep)", 42.77, 69.96},
      {{dg::ProblemKind::ElasticCentral, 4, 8}, pim::chip_2gb,
       "Elastic-Central_4 / 2GB (Er)", 21.62, 58.41},
      {{dg::ProblemKind::ElasticCentral, 4, 8}, pim::chip_8gb,
       "Elastic-Central_4 / 8GB (Er&Ep)", 42.77, 69.96},
  };

  TextTable table({"Case", "Topology", "Intra-element (us)",
                   "Inter-element (us)", "Inter share", "Paper share"});
  bench::ShapeChecks checks;
  double saving_sum = 0.0;
  for (const auto& c : cases) {
    double flux_time[2] = {0.0, 0.0};
    double step_time[2] = {0.0, 0.0};
    int i = 0;
    for (auto topo : {pim::Topology::HTree, pim::Topology::Bus}) {
      mapping::Estimator estimator(c.problem, c.chip(topo));
      const auto& est = estimator.estimate();
      const double intra = est.flux_intra_element.value();
      const double inter = est.flux_inter_element.value();
      const double share = 100.0 * inter / (intra + inter);
      flux_time[i] = intra + inter;
      step_time[i] = est.step_time.value();
      const double paper_share = (topo == pim::Topology::HTree)
                                     ? c.paper_inter_share_htree
                                     : c.paper_inter_share_bus;
      table.add_row({c.label, pim::to_string(topo),
                     TextTable::num(intra * 1e6, 4),
                     TextTable::num(inter * 1e6, 4),
                     TextTable::num(share, 3) + "%",
                     TextTable::num(paper_share, 4) + "%"});
      ++i;
    }
    checks.expect(flux_time[1] > flux_time[0],
                  std::string(c.label) + ": bus flux slower than H-tree");
    saving_sum += step_time[1] / step_time[0];
  }
  table.print();

  const double avg_saving = saving_sum / 4.0;
  std::printf("\nAverage whole-step H-tree time saving vs Bus: %.2fx "
              "(paper: ~2.16x on flux-heavy phases)\n\n",
              avg_saving);

  checks.expect_between(avg_saving, 1.1, 5.0,
                        "H-tree saves meaningful time over the bus");

  // Expansion raises the inter-element share (the paper's second pair).
  mapping::Estimator naive({dg::ProblemKind::Acoustic, 4, 8},
                           pim::chip_512mb(pim::Topology::HTree));
  mapping::Estimator expanded({dg::ProblemKind::Acoustic, 4, 8},
                              pim::chip_2gb(pim::Topology::HTree));
  const auto share = [](const mapping::StepEstimate& e) {
    return e.flux_inter_element.value() /
           (e.flux_inter_element.value() + e.flux_intra_element.value());
  };
  checks.expect(share(expanded.estimate()) > share(naive.estimate()),
                "expansion increases the inter-element share (Fig. 14)");
  return checks.exit_code();
}
