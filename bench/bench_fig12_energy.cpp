// Reproduces Figure 12: energy of every platform on the six benchmarks,
// normalised to the Unfused GTX 1080Ti, plus the average PIM energy
// savings.
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/table.h"
#include "core/wavepim.h"

using namespace wavepim;

int main() {
  bench::header("Figure 12 — Energy Comparison Between GPU and PIM");

  const std::uint64_t steps = 1024;
  const auto problems = mapping::paper_benchmarks();

  std::vector<std::vector<core::ComparisonRow>> grids;
  {
    bench::ScopedTimer timer("platform sweep");
    for (const auto& problem : problems) {
      grids.push_back(core::System::compare_all(problem, steps));
    }
  }

  std::vector<std::string> header = {"Platform (normalized energy)"};
  for (const auto& p : problems) {
    header.push_back(p.name());
  }
  TextTable table(header);
  for (std::size_t r = 0; r < grids[0].size(); ++r) {
    std::vector<std::string> cells = {grids[0][r].platform};
    for (const auto& grid : grids) {
      cells.push_back(TextTable::num(grid[r].normalized_energy, 3));
    }
    table.add_row(cells);
  }
  table.print();

  std::printf("\nAverage PIM energy savings over Unfused-1080Ti "
              "(paper: 26.62x / 26.82x / 14.28x / 16.01x at 12nm):\n");
  TextTable avg({"PIM config", "Energy saving (model)"});
  std::map<std::string, double> savings;
  for (const char* name :
       {"PIM-512MB-12nm", "PIM-2GB-12nm", "PIM-8GB-12nm", "PIM-16GB-12nm"}) {
    const auto s = core::System::summarize_pim(grids, name);
    savings[name] = s.mean_energy_saving;
    avg.add_row({name, TextTable::ratio(s.mean_energy_saving)});
  }
  avg.print();

  std::printf("\n");
  bench::ShapeChecks checks;
  checks.expect(savings["PIM-2GB-12nm"] > 1.0,
                "PIM-2GB saves energy vs the unfused GTX 1080Ti");
  // §7.4: small problems on big chips waste static power, so the biggest
  // chips do NOT have the biggest savings.
  double acoustic4_512 = 0.0;
  double acoustic4_16g = 0.0;
  for (const auto& row : grids[0]) {
    if (row.platform == "PIM-512MB-12nm") {
      acoustic4_512 = row.energy_saving;
    }
    if (row.platform == "PIM-16GB-12nm") {
      acoustic4_16g = row.energy_saving;
    }
  }
  checks.expect(acoustic4_512 > acoustic4_16g,
                "Acoustic_4 saves more energy on the right-sized 512MB chip "
                "than on 16GB (§7.4 trade-off)");

  // At most 50.56x savings when the problem fits (paper peak) — ours may
  // exceed it, but it must at least be a large factor on the best case.
  double best = 0.0;
  for (const auto& grid : grids) {
    for (const auto& row : grid) {
      if (row.is_pim) {
        best = std::max(best, row.energy_saving);
      }
    }
  }
  checks.expect(best > 10.0, "peak energy saving exceeds 10x");
  return checks.exit_code();
}
