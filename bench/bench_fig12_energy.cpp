// Reproduces Figure 12: energy of every platform on the six benchmarks,
// normalised to the Unfused GTX 1080Ti, plus the average PIM energy
// savings. Tables and shape claims come from the shared eval/figures
// library (also behind tools/paper_eval).
#include "bench_util.h"
#include "eval/figures.h"

using namespace wavepim;

int main() {
  bench::header("Figure 12 — Energy Comparison Between GPU and PIM");

  const auto problems = mapping::paper_benchmarks();
  eval::FigureData data;
  {
    bench::ScopedTimer timer("platform sweep");
    data = eval::compute_figure_data(problems, /*steps=*/1024);
  }

  eval::fig12_table(data).print();

  std::printf("\nAverage PIM energy savings over Unfused-1080Ti "
              "(paper: 26.62x / 26.82x / 14.28x / 16.01x at 12nm):\n");
  eval::fig12_summary_table(data).print();

  std::printf("\n");
  bench::ShapeChecks checks;
  for (const auto& claim : eval::fig12_claims(data)) {
    checks.expect(claim.pass, claim.claim);
  }
  return checks.exit_code();
}
