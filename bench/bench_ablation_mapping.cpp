// Ablation study of the paper's three mapping techniques — expansion,
// pipelining and the interconnect choice — isolating each one's
// contribution to the end-to-end step time (the "all of these combined"
// claim of the paper's conclusion).
#include "bench_util.h"
#include "common/table.h"
#include "mapping/estimator.h"

using namespace wavepim;

namespace {

double step_ms(const mapping::Problem& problem, const pim::ChipConfig& chip,
               mapping::Estimator::Options options) {
  mapping::Estimator estimator(problem, chip, options);
  return estimator.estimate().step_time.value() * 1e3;
}

}  // namespace

int main() {
  bench::header("Ablation — Expansion / Pipelining / Interconnect");

  bench::ShapeChecks checks;
  TextTable table({"Benchmark", "Variant", "Step time (ms)",
                   "vs full system"});

  struct Row {
    mapping::Problem problem;
    Bytes capacity;
  };
  const Row rows[] = {
      {{dg::ProblemKind::Acoustic, 4, 8}, gibibytes(2)},
      {{dg::ProblemKind::ElasticRiemann, 4, 8}, gibibytes(8)},
  };

  for (const auto& row : rows) {
    auto chip_of = [&](pim::Topology t) {
      for (auto c : pim::standard_chips(t)) {
        if (c.capacity == row.capacity) {
          return c;
        }
      }
      throw Error("no such capacity");
    };
    const auto htree = chip_of(pim::Topology::HTree);
    const auto bus = chip_of(pim::Topology::Bus);
    const auto naive_mode = mapping::applicable_modes(row.problem.kind).front();

    const double full = step_ms(row.problem, htree, mapping::Estimator::Options{});
    mapping::Estimator::Options opt_no_expansion;
    opt_no_expansion.force_expansion = naive_mode;
    mapping::Estimator::Options opt_no_pipeline;
    opt_no_pipeline.pipelined = false;
    mapping::Estimator::Options opt_nothing;
    opt_nothing.pipelined = false;
    opt_nothing.force_expansion = naive_mode;
    const double no_expansion =
        step_ms(row.problem, htree, opt_no_expansion);
    const double no_pipeline = step_ms(row.problem, htree, opt_no_pipeline);
    const double bus_fabric =
        step_ms(row.problem, bus, mapping::Estimator::Options{});
    const double nothing = step_ms(row.problem, bus, opt_nothing);

    const auto name = row.problem.name();
    auto add = [&](const char* variant, double ms) {
      table.add_row({name, variant, TextTable::num(ms, 4),
                     TextTable::ratio(ms / full, 3)});
    };
    add("full system (Ep/Er&Ep, pipelined, H-tree)", full);
    add("- expansion", no_expansion);
    add("- pipelining", no_pipeline);
    add("- H-tree (bus)", bus_fabric);
    add("none of the techniques", nothing);

    checks.expect(no_expansion >= full,
                  name + ": expansion contributes speedup");
    checks.expect(no_pipeline > full,
                  name + ": pipelining contributes speedup");
    checks.expect(bus_fabric > full,
                  name + ": the H-tree contributes speedup");
    checks.expect(nothing > 1.2 * full,
                  name + ": combined techniques matter (>1.2x)");
  }
  table.print();
  std::printf("\n");
  return checks.exit_code();
}
