// Reproduces Figure 11: execution time of every platform on the six
// benchmarks, normalised to the Unfused GTX 1080Ti baseline, plus the
// average PIM speedups the paper headlines. The tables and the shape
// claims come from the shared eval/figures library, so this bench and
// tools/paper_eval assert identical claims by construction.
#include "bench_util.h"
#include "eval/figures.h"

using namespace wavepim;

int main() {
  bench::header("Figure 11 — Performance Comparison Between GPU and PIM");

  const auto problems = mapping::paper_benchmarks();
  eval::FigureData data;
  {
    bench::ScopedTimer timer("platform sweep");
    data = eval::compute_figure_data(problems, /*steps=*/1024);
  }

  // One row per platform, one column per benchmark: normalised time
  // (baseline = 1.0), the quantity Fig. 11 plots.
  eval::fig11_table(data).print();

  std::printf("\nAverage PIM speedup over Unfused-1080Ti "
              "(paper: 10.28x / 35.80x / 72.21x / 172.76x at 12nm):\n");
  eval::fig11_summary_table(data).print();

  std::printf("\n");
  bench::ShapeChecks checks;
  for (const auto& claim : eval::fig11_claims(data)) {
    checks.expect(claim.pass, claim.claim);
  }
  return checks.exit_code();
}
