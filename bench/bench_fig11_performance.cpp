// Reproduces Figure 11: execution time of every platform on the six
// benchmarks, normalised to the Unfused GTX 1080Ti baseline, plus the
// average PIM speedups the paper headlines.
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/statistics.h"
#include "common/table.h"
#include "core/wavepim.h"

using namespace wavepim;

int main() {
  bench::header("Figure 11 — Performance Comparison Between GPU and PIM");

  const std::uint64_t steps = 1024;
  const auto problems = mapping::paper_benchmarks();

  std::vector<std::vector<core::ComparisonRow>> grids;
  std::vector<std::string> platform_order;
  {
    bench::ScopedTimer timer("platform sweep");
    for (const auto& problem : problems) {
      grids.push_back(core::System::compare_all(problem, steps));
    }
  }
  for (const auto& row : grids[0]) {
    platform_order.push_back(row.platform);
  }

  // One row per platform, one column per benchmark: normalised time
  // (baseline = 1.0), the quantity Fig. 11 plots.
  std::vector<std::string> header = {"Platform (normalized time)"};
  for (const auto& p : problems) {
    header.push_back(p.name());
  }
  TextTable table(header);
  for (std::size_t r = 0; r < platform_order.size(); ++r) {
    std::vector<std::string> cells = {platform_order[r]};
    for (const auto& grid : grids) {
      cells.push_back(TextTable::num(grid[r].normalized_time, 3));
    }
    table.add_row(cells);
  }
  table.print();

  std::printf("\nAverage PIM speedup over Unfused-1080Ti "
              "(paper: 10.28x / 35.80x / 72.21x / 172.76x at 12nm):\n");
  TextTable avg({"PIM config", "Detailed model", "Peak-throughput method"});
  std::map<std::string, double> detailed;
  for (const char* name :
       {"PIM-512MB-12nm", "PIM-2GB-12nm", "PIM-8GB-12nm", "PIM-16GB-12nm"}) {
    const auto s = core::System::summarize_pim(grids, name);
    detailed[name] = s.mean_speedup;
    // Peak-method speedup: baseline step over the peak-method step time.
    std::vector<double> peak_speedups;
    for (const auto& grid : grids) {
      double base = 0.0;
      double peak = 0.0;
      for (const auto& row : grid) {
        if (row.platform == grid[0].platform) {
          base = row.step_time.value();
        }
        if (row.platform == name) {
          peak = row.step_time_peak_method.value();
        }
      }
      peak_speedups.push_back(base / peak);
    }
    avg.add_row({name, TextTable::ratio(s.mean_speedup),
                 TextTable::ratio(geomean(peak_speedups))});
  }
  avg.print();

  std::printf("\n");
  bench::ShapeChecks checks;
  checks.expect(detailed["PIM-512MB-12nm"] < detailed["PIM-2GB-12nm"] &&
                    detailed["PIM-2GB-12nm"] < detailed["PIM-8GB-12nm"] &&
                    detailed["PIM-8GB-12nm"] < detailed["PIM-16GB-12nm"],
                "average speedup grows with PIM capacity (paper ordering)");
  checks.expect(detailed["PIM-2GB-12nm"] > 1.0,
                "PIM-2GB beats the unfused GTX 1080Ti on average");
  checks.expect(detailed["PIM-16GB-12nm"] > 5.0,
                "PIM-16GB wins by a large factor on average");

  // Per-benchmark claims.
  for (std::size_t b = 0; b < problems.size(); ++b) {
    double fused_v100 = 0.0;
    double pim16 = 0.0;
    for (const auto& row : grids[b]) {
      if (row.platform == "Fused-Tesla V100") {
        fused_v100 = row.total_time.value();
      }
      if (row.platform == "PIM-16GB-12nm") {
        pim16 = row.total_time.value();
      }
    }
    checks.expect(pim16 < fused_v100,
                  problems[b].name() +
                      ": PIM-16GB-12nm beats even the fused V100");
  }

  // "The speedup of Elastic-Riemann on PIM is below the average" (§7.3).
  double riemann_speedup = 0.0;
  double acoustic_speedup = 0.0;
  for (const auto& row : grids[2]) {  // Elastic-Riemann_4
    if (row.platform == "PIM-2GB-12nm") {
      riemann_speedup = row.speedup;
    }
  }
  for (const auto& row : grids[0]) {  // Acoustic_4
    if (row.platform == "PIM-2GB-12nm") {
      acoustic_speedup = row.speedup;
    }
  }
  checks.expect(riemann_speedup < acoustic_speedup,
                "Elastic-Riemann gains less than Acoustic on PIM "
                "(compute-intense, §7.3)");
  return checks.exit_code();
}
