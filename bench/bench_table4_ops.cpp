// Reproduces Table 4: basic PIM operation energy and time, plus the FP32
// operation costs the bit-serial NOR model derives from them.
#include "bench_util.h"
#include "common/table.h"
#include "common/units.h"
#include "pim/arith.h"

using namespace wavepim;

int main() {
  bench::header("Table 4 — PIM Basic Operation Energy and Time");

  const pim::BasicOpParams p;
  TextTable basic({"Parameter", "Model value", "Paper value"});
  basic.add_row({"E_set", format_energy(p.e_set), "23.8 fJ"});
  basic.add_row({"E_reset", format_energy(p.e_reset), "0.32 fJ"});
  basic.add_row({"E_NOR", format_energy(p.e_nor), "0.29 fJ"});
  basic.add_row({"E_search", format_energy(p.e_search), "5.34 pJ"});
  basic.add_row({"T_NOR", format_time(p.t_nor), "1.1 ns"});
  basic.add_row({"T_search", format_time(p.t_search), "1.5 ns"});
  basic.print();

  std::printf("\nDerived FP32 row-parallel operation costs "
              "(calibrated to the Table 2 peak):\n");
  const pim::ArithModel model;
  TextTable ops({"Op", "NOR cycles", "Latency", "Energy @512 rows"});
  for (auto op : {pim::Opcode::Fadd, pim::Opcode::Fsub, pim::Opcode::Fmul,
                  pim::Opcode::Fscale, pim::Opcode::Faxpy,
                  pim::Opcode::CopyCols}) {
    ops.add_row({pim::to_string(op), std::to_string(model.cycles(op)),
                 format_time(model.op_time(op)),
                 format_energy(model.op_energy(op, 512))});
  }
  ops.print();

  std::printf("\n");
  bench::ShapeChecks checks;
  checks.expect(model.op_time(pim::Opcode::Fmul) >
                    model.op_time(pim::Opcode::Fadd),
                "multiplication is slower than addition (bit-serial NOR)");
  const double avg_us = 0.5 *
                        (model.op_time(pim::Opcode::Fadd).value() +
                         model.op_time(pim::Opcode::Fmul).value()) *
                        1e6;
  checks.expect_between(avg_us, 2.0, 2.6,
                        "50/50 add/mul mix averages ~2.3 us per op "
                        "(16.8M lanes -> ~7.25 TFLOP/s)");
  return checks.exit_code();
}
