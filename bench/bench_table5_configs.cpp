// Reproduces Table 5: the implementation configuration (naive / expansion /
// batching) chosen for every (benchmark, PIM capacity) pair.
#include <array>

#include "bench_util.h"
#include "common/table.h"
#include "mapping/config.h"

using namespace wavepim;
using mapping::Problem;

int main() {
  bench::header("Table 5 — PIM Implementation Configuration");

  const std::array<Problem, 4> rows = {{
      {dg::ProblemKind::Acoustic, 4, 8},
      {dg::ProblemKind::ElasticCentral, 4, 8},
      {dg::ProblemKind::Acoustic, 5, 8},
      {dg::ProblemKind::ElasticCentral, 5, 8},
  }};
  // Paper Table 5, row-major.
  const char* paper[4][4] = {
      {"N", "Ep", "Ep", "Ep"},
      {"Er&B", "Er", "Er&Ep", "Er&Ep"},
      {"B", "B", "N", "Ep"},
      {"Er&B", "Er&B", "Er&B", "Er"},
  };
  const char* row_names[4] = {"Acoustic_4", "Elastic_4", "Acoustic_5",
                              "Elastic_5"};

  const auto chips = pim::standard_chips();
  TextTable table({"Configuration", "512MB", "2GB", "8GB", "16GB"});
  bench::ShapeChecks checks;
  int mismatches = 0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::vector<std::string> cells = {row_names[r]};
    for (std::size_t c = 0; c < chips.size(); ++c) {
      const auto config = mapping::choose_config(rows[r], chips[c]);
      std::string cell = config.label();
      if (config.batched) {
        cell += " (" + std::to_string(config.num_batches) + " batches)";
      }
      if (config.label() != paper[r][c]) {
        cell += " [paper: " + std::string(paper[r][c]) + "]";
        ++mismatches;
      }
      cells.push_back(cell);
    }
    table.add_row(cells);
  }
  table.print();

  std::printf("\n");
  checks.expect(mismatches == 0,
                "all 16 cells match the paper's Table 5 exactly");
  const auto worst = mapping::choose_config(
      {dg::ProblemKind::ElasticRiemann, 5, 8}, pim::chip_512mb());
  checks.expect(worst.num_batches == 32,
                "Elastic_5 on 512MB needs 32 batches (paper §7.3)");
  return checks.exit_code();
}
