// Reproduces Table 2: hardware configurations of the evaluated platforms,
// including the derived PIM peak throughput (the paper's "maximum
// parallelism x arithmetic latency" method).
#include "bench_util.h"
#include "common/table.h"
#include "gpumodel/gpu_specs.h"
#include "pim/params.h"

using namespace wavepim;

int main() {
  bench::header("Table 2 — Hardware Configurations");

  TextTable gpu_table({"Platform", "Clock (MHz)", "CUDA cores",
                       "Memory BW (GB/s)", "FP32 peak (TFLOP/s)",
                       "Board power (W)"});
  for (const auto& gpu : gpumodel::paper_gpus()) {
    gpu_table.add_row({gpu.name, TextTable::num(gpu.clock_mhz, 4),
                       std::to_string(gpu.cuda_cores),
                       TextTable::num(gpu.mem_bandwidth_bps / 1e9, 3),
                       TextTable::num(gpu.peak_fp32_flops / 1e12, 3),
                       TextTable::num(gpu.board_power_w, 3)});
  }
  gpu_table.print();

  std::printf("\n");
  TextTable pim_table({"PIM config", "Tiles", "Blocks", "Parallel lanes",
                       "Peak (TFLOP/s)", "Static power (W)"});
  for (const auto& chip : pim::standard_chips()) {
    pim_table.add_row(
        {chip.name, std::to_string(chip.num_tiles()),
         std::to_string(chip.num_blocks()),
         TextTable::num(static_cast<double>(chip.parallel_lanes()) / 1e6, 4) +
             "M",
         TextTable::num(pim::peak_throughput_flops(chip) / 1e12, 3),
         TextTable::num(pim::chip_static_power_w(chip), 4)});
  }
  pim_table.print();

  std::printf("\nPaper reference points:\n");
  bench::ShapeChecks checks;
  checks.expect_between(
      static_cast<double>(pim::chip_2gb().parallel_lanes()) / 1e6, 16.0, 17.0,
      "2GB chip supports ~16M parallel operations (paper §2.3)");
  checks.expect_between(pim::peak_throughput_flops(pim::chip_2gb()) / 1e12,
                        7.0, 7.5,
                        "2GB peak throughput ~7.25 TFLOP/s (Table 2)");
  checks.expect(pim::chip_16gb().num_blocks() == 131072,
                "16GB chip has 131072 1Mb blocks");
  return checks.exit_code();
}
