// Reproduces Figure 13: the pipelined execution timeline of one RK stage
// (host sqrt/inverse and flux data fetch overlapped with Volume), and the
// §7.5 claim that disabling pipelining drops throughput to ~0.77x.
#include "bench_util.h"
#include "common/table.h"
#include "mapping/estimator.h"

using namespace wavepim;

namespace {

void print_timeline(const mapping::PipelineSchedule& sched) {
  TextTable table({"Segment", "Start (us)", "End (us)", "Duration (us)"});
  for (const auto& iv : sched.timeline) {
    table.add_row({iv.name, TextTable::num(iv.start.value() * 1e6, 4),
                   TextTable::num(iv.end.value() * 1e6, 4),
                   TextTable::num((iv.end - iv.start).value() * 1e6, 4)});
  }
  table.print();
  std::printf("  total: %s\n", format_time(sched.total).c_str());
}

}  // namespace

int main() {
  bench::header("Figure 13 — Pipeline Breakdown (Acoustic_4, PIM-2GB, Ep)");

  const mapping::Problem problem{dg::ProblemKind::Acoustic, 4, 8};
  mapping::Estimator estimator(problem, pim::chip_2gb());
  const auto& est = estimator.estimate();

  std::printf("Pipelined stage timeline:\n");
  print_timeline(est.stage_schedule);
  std::printf("\nSerial (no pipelining) stage timeline:\n");
  print_timeline(est.stage_schedule_serial);

  const double throughput_ratio =
      est.stage_schedule.total / est.stage_schedule_serial.total;
  std::printf("\nThroughput without pipelining: %.3fx of pipelined "
              "(paper: 0.77x)\n\n",
              throughput_ratio);

  bench::ShapeChecks checks;
  checks.expect(est.stage_schedule.total < est.stage_schedule_serial.total,
                "pipelining shortens the stage");
  checks.expect_between(throughput_ratio, 0.55, 0.95,
                        "non-pipelined throughput ratio near the paper's "
                        "0.77x");
  // Structural properties of the Fig. 13 schedule.
  const auto& tl = est.stage_schedule;
  checks.expect(tl.timeline[1].start.value() == 0.0 &&
                    tl.timeline[2].start.value() == 0.0,
                "host pre-processing and fetch(-1) start with Volume");
  checks.expect(tl.end_of("fetch(+1)") <= tl.end_of("flux(+1)"),
                "fetch(+1) overlaps the flux(-1) compute");
  checks.expect(tl.timeline.back().name == "integration",
                "integration closes the stage (cannot pipeline, §6.3)");
  return checks.exit_code();
}
