// Extension study: distributed Wave-PIM. The paper's introduction notes
// that large models force distributed-memory systems with inter-node
// communication; this bench projects strong scaling of a level-6 model
// (262,144 elements, 8x the paper's largest benchmark) across PIM nodes
// linked by a 200 Gb/s fabric.
#include "bench_util.h"
#include "cluster/cluster.h"
#include "common/table.h"

using namespace wavepim;

int main() {
  bench::header("Extension — Strong Scaling across PIM Nodes (level 6)");

  bench::ShapeChecks checks;
  for (dg::ProblemKind kind : {dg::ProblemKind::Acoustic,
                               dg::ProblemKind::ElasticRiemann}) {
    std::printf("%s_6 on PIM-8GB nodes:\n", dg::to_string(kind));
    TextTable table({"Nodes", "Step time", "Compute", "Halo/step",
                     "Energy/step", "Efficiency"});
    const auto sweep = cluster::strong_scaling(6, kind, 8, pim::chip_8gb(),
                                               16);
    for (const auto& est : sweep) {
      table.add_row({std::to_string(est.num_nodes),
                     format_time(est.step_time),
                     format_time(est.compute_per_step),
                     format_time(est.halo_per_step),
                     format_energy(est.step_energy),
                     TextTable::num(100.0 * est.parallel_efficiency, 3) +
                         "%"});
    }
    table.print();
    std::printf("\n");

    checks.expect(sweep.size() >= 4,
                  std::string(dg::to_string(kind)) +
                      ": swept at least 8 nodes");
    checks.expect(sweep.back().step_time < sweep.front().step_time,
                  std::string(dg::to_string(kind)) +
                      ": the fleet beats one node");
    checks.expect(sweep.back().parallel_efficiency > 0.25,
                  std::string(dg::to_string(kind)) +
                      ": efficiency stays above 25% at scale");
  }

  std::printf("The speedup comes from removing batching pressure: one\n"
              "8 GB chip must stage a level-6 model through HBM, while a\n"
              "fleet holds it resident; the halo exchange hides behind\n"
              "the Volume phase exactly like the on-chip fetch (§6.3).\n\n");
  return checks.exit_code();
}
