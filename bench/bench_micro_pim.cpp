// Microbenchmarks of the PIM architectural simulator (google-benchmark):
// crossbar block operations, interconnect scheduling, and the bit-true
// functional simulation.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "mapping/assembler.h"
#include "mapping/simulation.h"
#include "service/scheduler.h"
#include "pim/block.h"
#include "pim/interconnect.h"
#include "trace/trace.h"

using namespace wavepim;

namespace {

void BM_BlockRowParallelArith(benchmark::State& state) {
  pim::ArithModel model;
  pim::Block block(&model);
  for (auto _ : state) {
    block.arith(pim::Opcode::Fmul, 0, 1, 2, 0,
                static_cast<std::uint32_t>(state.range(0)));
    benchmark::DoNotOptimize(block.at(0, 2));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BlockRowParallelArith)->Arg(64)->Arg(512)->Arg(1024);

void BM_BlockGather(benchmark::State& state) {
  pim::ArithModel model;
  pim::Block block(&model);
  std::vector<std::uint32_t> perm(512);
  for (std::uint32_t i = 0; i < perm.size(); ++i) {
    perm[i] = (i * 7) % 512;
  }
  for (auto _ : state) {
    block.gather_rows(perm, 0, 0, 1);
    benchmark::DoNotOptimize(block.at(0, 1));
  }
}
BENCHMARK(BM_BlockGather);

void BM_InterconnectSchedule(benchmark::State& state) {
  const pim::Interconnect net(pim::chip_2gb(pim::Topology::HTree));
  std::vector<pim::Transfer> transfers;
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < n; ++i) {
    transfers.push_back({.src_block = (i * 13) % 16384,
                         .dst_block = (i * 29 + 1) % 16384,
                         .words = 64});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.schedule(transfers).makespan);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InterconnectSchedule)->Arg(1024)->Arg(8192)->Arg(65536);

// Timing-backend head-to-head on the same contended flux-like batch:
// the analytic list scheduler's greedy slot packing vs the event-driven
// queue model (which additionally folds per-link busy/stall/occupancy
// statistics). Both price the identical resource model, so the delta is
// pure scheduling cost — the cycle backend's event heap and window
// scans against the analytic earliest-slot scan.
void BM_NetSchedule(benchmark::State& state) {
  pim::ChipConfig config = pim::chip_2gb(pim::Topology::HTree);
  config.net_backend = state.range(1) == 0 ? pim::NetBackendKind::Analytic
                                           : pim::NetBackendKind::Cycle;
  const pim::Interconnect net(config);
  std::vector<pim::Transfer> transfers;
  const auto n = static_cast<std::uint32_t>(state.range(0));
  for (std::uint32_t i = 0; i < n; ++i) {
    transfers.push_back({.src_block = (i * 13) % 16384,
                         .dst_block = (i * 29 + 1) % 16384,
                         .words = 64});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.schedule(transfers).makespan);
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.SetLabel(pim::to_string(config.net_backend));
}
BENCHMARK(BM_NetSchedule)
    ->ArgNames({"transfers", "cycle"})
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({32768, 0})
    ->Args({32768, 1});

// Arg(0): shape-class program cache off (every stage re-lowers every
// element's kernels). Arg(1): cache on (lower once, replay per element).
// Fields and cost reports are bit-identical between rows; the delta is
// the per-stage assembly-time saving of the cache.
void BM_FunctionalPimStep(benchmark::State& state) {
  const mapping::Problem problem{dg::ProblemKind::Acoustic, 1, 3};
  mapping::PimSimulation sim(problem, mapping::ExpansionMode::None,
                             pim::chip_512mb());
  sim.set_program_cache(state.range(0) != 0);
  dg::Field u(8, 4, 27);
  u.fill(0.5f);
  sim.load_state(u);
  for (auto _ : state) {
    sim.step(1.0e-3);
  }
  state.SetItemsProcessed(state.iterations() * 8);
  state.SetLabel(state.range(0) != 0 ? "cache=on" : "cache=off");
}
BENCHMARK(BM_FunctionalPimStep)->Arg(0)->Arg(1);

// assemble_stage in isolation — the pure lowering cost the cache removes
// from the hot path. Arg(0) re-emits every element's kernels; Arg(1)
// replays the cached class streams (the cache itself is built outside
// the timed loop, matching how the simulation amortises it).
void BM_AssembleStage(benchmark::State& state) {
  const mapping::Problem problem{dg::ProblemKind::Acoustic, 2, 3};
  const mesh::StructuredMesh mesh(problem.refinement_level, 1.0,
                                  mesh::Boundary::Periodic);
  const mapping::ElementSetup setup(problem, mapping::ExpansionMode::None,
                                    mesh.element_size());
  const mapping::Placement placement(1);
  const bool cached = state.range(0) != 0;
  mapping::ProgramCache cache(setup, mesh, nullptr, nullptr);
  for (auto _ : state) {
    auto program =
        cached ? mapping::assemble_stage(mesh, placement, 1, 1.0e-3f, cache)
               : mapping::assemble_stage(setup, mesh, placement, 1, 1.0e-3f);
    benchmark::DoNotOptimize(program.instructions.data());
  }
  state.SetItemsProcessed(state.iterations() * mesh.num_elements());
  state.SetLabel(cached ? "cache=on" : "cache=off");
}
BENCHMARK(BM_AssembleStage)->Arg(0)->Arg(1);

// Block-parallel functional execution of an 8^3-element acoustic problem
// (refinement level 3, 512 element-blocks) at 1/2/4/8 workers. The 8-worker
// row is the ISSUE's >= 4x wall-clock target on 8 cores; compare against
// the Arg(1) row. Fields and cost reports are bit-identical across rows
// (see mapping/parallel_determinism_test.cpp).
void BM_FunctionalPimStepThreaded(benchmark::State& state) {
  const mapping::Problem problem{dg::ProblemKind::Acoustic, 3, 3};
  mapping::PimSimulation sim(problem, mapping::ExpansionMode::None,
                             pim::chip_512mb());
  sim.set_num_threads(static_cast<std::size_t>(state.range(0)));
  dg::Field u(512, 4, 27);
  u.fill(0.5f);
  sim.load_state(u);
  for (auto _ : state) {
    sim.step(1.0e-3);
  }
  state.SetItemsProcessed(state.iterations() * 512);
}
BENCHMARK(BM_FunctionalPimStepThreaded)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The four execution tiers head-to-head on the threaded 512-element
// case: range(0) selects the tier (0 emit, 1 replay, 2 compiled,
// 3 word), range(1) the worker count. The first step runs outside the
// timed loop so cache/plan construction is amortised the way a real run
// amortises it; fields and cost reports are bit-identical across all
// rows (mapping/exec_conformance_test.cpp). The compiled rows are the
// PR-3 acceptance numbers: >= 1.5x over replay at equal threads; the
// word rows are this PR's: >= 2x over compiled at equal threads on the
// 1-core reference host (measured 2.2x serial — the op-major sweep is
// L1-port bound there; see ROADMAP.md for the path to the >= 10x
// target on wider hosts).
void BM_FunctionalPimStepExecPath(benchmark::State& state) {
  const mapping::Problem problem{dg::ProblemKind::Acoustic, 3, 3};
  mapping::PimSimulation sim(problem, mapping::ExpansionMode::None,
                             pim::chip_512mb());
  const auto path = static_cast<mapping::ExecPath>(state.range(0));
  sim.set_exec_path(path);
  sim.set_num_threads(static_cast<std::size_t>(state.range(1)));
  dg::Field u(512, 4, 27);
  u.fill(0.5f);
  sim.load_state(u);
  sim.step(1.0e-3);  // builds the cache / compiled plan untimed
  for (auto _ : state) {
    sim.step(1.0e-3);
  }
  state.SetItemsProcessed(state.iterations() * 512);
  state.SetLabel(std::string("exec=") + mapping::to_string(path));
}
BENCHMARK(BM_FunctionalPimStepExecPath)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({3, 1})
    ->Args({0, 8})
    ->Args({1, 8})
    ->Args({2, 8})
    ->Args({3, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The witness price list on the word tier: range(0) is the spot-check
// interval (0 = off). Every checked phase snapshots its elements'
// blocks, re-executes them bit-serially through the compiled plan on
// per-thread shadow blocks, and compares full-block FNV hashes — so
// witness=1 (every phase) bounds the cost of full conformance mode,
// and witness=16 is the steady spot-check cadence. The witness=0 row
// must match BM_FunctionalPimStepExecPath/3/8 (zero overhead off).
void BM_FunctionalPimStepWitness(benchmark::State& state) {
  const mapping::Problem problem{dg::ProblemKind::Acoustic, 3, 3};
  mapping::PimSimulation sim(problem, mapping::ExpansionMode::None,
                             pim::chip_512mb());
  sim.set_exec_path(mapping::ExecPath::Word);
  sim.set_num_threads(8);
  sim.set_witness_interval(static_cast<std::uint32_t>(state.range(0)));
  dg::Field u(512, 4, 27);
  u.fill(0.5f);
  sim.load_state(u);
  sim.step(1.0e-3);  // builds the compiled + word plans untimed
  for (auto _ : state) {
    sim.step(1.0e-3);
  }
  state.SetItemsProcessed(state.iterations() * 512);
  state.SetLabel(state.range(0) == 0
                     ? "witness=off"
                     : "witness=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_FunctionalPimStepWitness)
    ->Arg(0)
    ->Arg(16)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Batched residency on the compiled tier: the 512-element problem needs
// 512 blocks; range(0) caps the chip (0 = uncapped/resident). 128
// blocks leave a 1-slice window + staging slot (the worst case: every
// slice reloads each stage), 256 a 3-slice window. Fields and compute
// channels are bit-identical across rows (BatchConformance); the delta
// is the functional staging work the residency window adds.
void BM_FunctionalPimStepBatched(benchmark::State& state) {
  const mapping::Problem problem{dg::ProblemKind::Acoustic, 3, 3};
  pim::ChipConfig chip = pim::chip_512mb();
  chip.block_limit = static_cast<std::uint32_t>(state.range(0));
  mapping::PimSimulation sim(problem, mapping::ExpansionMode::None, chip);
  sim.set_exec_path(mapping::ExecPath::Compiled);
  sim.set_num_threads(8);
  dg::Field u(512, 4, 27);
  u.fill(0.5f);
  sim.load_state(u);
  sim.step(1.0e-3);  // builds the compiled plan untimed
  for (auto _ : state) {
    sim.step(1.0e-3);
  }
  state.SetItemsProcessed(state.iterations() * 512);
  state.SetLabel(state.range(0) == 0
                     ? "resident"
                     : "window=" +
                           std::to_string(sim.residency().window()) +
                           " slices");
}
BENCHMARK(BM_FunctionalPimStepBatched)
    ->Arg(0)
    ->Arg(256)
    ->Arg(128)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// The trace-overhead contract: the compiled-tier step loop with tracing
// compiled in but disabled (Arg(0)) must stay within 2% of the
// BM_FunctionalPimStepExecPath/2/1 row — every span site collapses to a
// single relaxed atomic load. Arg(1) runs the same loop with tracing
// enabled (events recorded into the per-thread rings), the price of a
// live --trace run.
void BM_FunctionalPimStepTrace(benchmark::State& state) {
  const mapping::Problem problem{dg::ProblemKind::Acoustic, 3, 3};
  mapping::PimSimulation sim(problem, mapping::ExpansionMode::None,
                             pim::chip_512mb());
  sim.set_exec_path(mapping::ExecPath::Compiled);
  sim.set_num_threads(1);
  dg::Field u(512, 4, 27);
  u.fill(0.5f);
  sim.load_state(u);
  sim.step(1.0e-3);  // builds the compiled plan untimed
  const bool enabled = state.range(0) != 0;
  trace::set_enabled(enabled);
  for (auto _ : state) {
    sim.step(1.0e-3);
    if (enabled) {
      // Keep the rings from saturating into drop-counting, which would
      // make later iterations cheaper than earlier ones.
      state.PauseTiming();
      trace::Collector::instance().reset();
      state.ResumeTiming();
    }
  }
  trace::set_enabled(false);
  trace::Collector::instance().reset();
  state.SetItemsProcessed(state.iterations() * 512);
  state.SetLabel(enabled ? "trace=on" : "trace=off");
}
BENCHMARK(BM_FunctionalPimStepTrace)
    ->Arg(0)
    ->Arg(1)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// A single disabled span site in isolation: the per-site cost tracing
// adds to an instrumented function when no trace is being recorded.
void BM_DisabledSpanSite(benchmark::State& state) {
  trace::set_enabled(false);
  for (auto _ : state) {
    trace::Span span("bench.disabled_site");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DisabledSpanSite);

void BM_LutEncodeDecode(benchmark::State& state) {
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < 1024; ++i) {
      const pim::LutInstructionFields f{.opcode = pim::kLutOpcode,
                                        .row_id = i,
                                        .offset_s = static_cast<std::uint8_t>(i % 32),
                                        .lut_block_id = i * 3,
                                        .offset_d = static_cast<std::uint8_t>((i + 7) % 32)};
      acc ^= pim::encode_lut(f);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_LutEncodeDecode);

// Scheduler overhead in isolation: a stream of zero-step jobs runs the
// whole service path — admission, policy selection, chip binding with a
// state load, completion with a readback and recycle — without any
// simulation quanta, so items/s is jobs/s through the scheduler itself.
// Arg is the pool size.
void BM_ServiceZeroStepJobs(benchmark::State& state) {
  const auto specs = service::generate_jobs(
      {.num_jobs = 16, .seed = 7, .zero_step_jobs = true});
  service::ServiceOptions svc;
  svc.num_chips = static_cast<std::uint32_t>(state.range(0));
  svc.policy = service::Policy::Edf;
  for (auto _ : state) {
    service::Scheduler scheduler(svc);
    benchmark::DoNotOptimize(scheduler.run(specs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(specs.size()));
}
BENCHMARK(BM_ServiceZeroStepJobs)->Arg(1)->Arg(4);

// Admission latency: producing the reproducible request stream itself
// (the seeded draws for physics, tier, budget, deadline and arrival).
void BM_ServiceRequestGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        service::generate_jobs({.num_jobs = 64, .seed = 7}));
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ServiceRequestGeneration);

}  // namespace

// BENCHMARK_MAIN with a default JSON report: unless the caller already
// passed --benchmark_out, results land in BENCH_micro_pim.json (name,
// ns/op, items/s) in the working directory — the machine-readable perf
// trajectory CI uploads as an artifact.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) {
      has_out = true;
    }
  }
  static char out_flag[] = "--benchmark_out=BENCH_micro_pim.json";
  static char format_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(format_flag);
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
