// Microbenchmarks of the dG CPU reference kernels (google-benchmark):
// per-kernel cost across polynomial orders and physics.
#include <benchmark/benchmark.h>

#include "dg/solver.h"
#include "dg/sources.h"

using namespace wavepim;
using dg::AcousticSolver;
using dg::ElasticSolver;

namespace {

AcousticSolver make_acoustic(int level, int n1d, dg::FluxType flux) {
  mesh::StructuredMesh mesh(level, 1.0, mesh::Boundary::Periodic);
  dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
  return AcousticSolver(mesh, std::move(mats), {.n1d = n1d, .flux = flux});
}

ElasticSolver make_elastic(int level, int n1d, dg::FluxType flux) {
  mesh::StructuredMesh mesh(level, 1.0, mesh::Boundary::Periodic);
  dg::MaterialField<dg::ElasticMaterial> mats(mesh.num_elements(),
                                              {2.0, 1.0, 1.0});
  return ElasticSolver(mesh, std::move(mats), {.n1d = n1d, .flux = flux});
}

void BM_AcousticVolume(benchmark::State& state) {
  auto solver = make_acoustic(2, static_cast<int>(state.range(0)),
                              dg::FluxType::Upwind);
  init_acoustic_plane_wave(solver, mesh::Axis::X, 1);
  dg::Field rhs(solver.state().num_elements(), 4,
                solver.state().nodes_per_element());
  for (auto _ : state) {
    solver.compute_volume(solver.state(), rhs);
    benchmark::DoNotOptimize(rhs.flat().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          solver.mesh().num_elements());
}
BENCHMARK(BM_AcousticVolume)->Arg(3)->Arg(5)->Arg(8);

void BM_AcousticFlux(benchmark::State& state) {
  auto solver = make_acoustic(2, static_cast<int>(state.range(0)),
                              dg::FluxType::Upwind);
  init_acoustic_plane_wave(solver, mesh::Axis::X, 1);
  dg::Field rhs(solver.state().num_elements(), 4,
                solver.state().nodes_per_element());
  for (auto _ : state) {
    solver.add_flux(solver.state(), rhs);
    benchmark::DoNotOptimize(rhs.flat().data());
  }
  state.SetItemsProcessed(state.iterations() *
                          solver.mesh().num_elements());
}
BENCHMARK(BM_AcousticFlux)->Arg(3)->Arg(5)->Arg(8);

void BM_AcousticStep(benchmark::State& state) {
  auto solver = make_acoustic(2, 5, dg::FluxType::Upwind);
  init_acoustic_plane_wave(solver, mesh::Axis::X, 1);
  const double dt = solver.stable_dt();
  for (auto _ : state) {
    solver.step(dt);
  }
  state.SetItemsProcessed(state.iterations() *
                          solver.mesh().num_elements());
}
BENCHMARK(BM_AcousticStep);

void BM_ElasticStepCentral(benchmark::State& state) {
  auto solver = make_elastic(1, 5, dg::FluxType::Central);
  init_elastic_plane_p_wave(solver, 1);
  const double dt = solver.stable_dt();
  for (auto _ : state) {
    solver.step(dt);
  }
  state.SetItemsProcessed(state.iterations() *
                          solver.mesh().num_elements());
}
BENCHMARK(BM_ElasticStepCentral);

void BM_ElasticStepRiemann(benchmark::State& state) {
  auto solver = make_elastic(1, 5, dg::FluxType::Upwind);
  init_elastic_plane_p_wave(solver, 1);
  const double dt = solver.stable_dt();
  for (auto _ : state) {
    solver.step(dt);
  }
  state.SetItemsProcessed(state.iterations() *
                          solver.mesh().num_elements());
}
BENCHMARK(BM_ElasticStepRiemann);

void BM_TotalEnergy(benchmark::State& state) {
  auto solver = make_acoustic(2, 5, dg::FluxType::Upwind);
  init_acoustic_plane_wave(solver, mesh::Axis::X, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.total_energy());
  }
}
BENCHMARK(BM_TotalEnergy);

}  // namespace

BENCHMARK_MAIN();
