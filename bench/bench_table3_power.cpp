// Reproduces Table 3: per-component power of the 2 GB Wave-PIM chip,
// composed bottom-up from the crossbar / sense-amp / decoder numbers.
#include "bench_util.h"
#include "common/table.h"
#include "pim/params.h"

using namespace wavepim;

int main() {
  bench::header("Table 3 — PIM Parameters (2GB capacity)");

  const pim::ComponentPower p;
  TextTable table({"Component", "Count", "Model power", "Paper value"});
  table.add_row({"Crossbar array (1Mb)", "1",
                 TextTable::num(p.crossbar_w * 1e3, 3) + " mW", "6.14 mW"});
  table.add_row({"Sense amplifiers", "1K",
                 TextTable::num(p.sense_amp_w * 1e3, 3) + " mW", "2.38 mW"});
  table.add_row({"Decoder", "1",
                 TextTable::num(p.decoder_w * 1e3, 3) + " mW", "0.31 mW"});
  table.add_row({"Memory block", "1",
                 TextTable::num(p.block_w() * 1e3, 3) + " mW", "8.83 mW"});
  table.add_row({"Tile memory", "256 blocks",
                 TextTable::num(p.tile_memory_w(), 3) + " W", "1.57 W"});
  table.add_row({"H-tree switches", "85",
                 TextTable::num(p.htree_switch_total_w * 1e3, 4) + " mW",
                 "107.13 mW"});
  table.add_row({"Bus switch", "1",
                 TextTable::num(p.bus_switch_w * 1e3, 3) + " mW", "17.2 mW"});
  table.add_row({"Tile (H-tree)", "32MB",
                 TextTable::num(p.tile_w(true), 3) + " W", "1.68 W"});
  table.add_row({"Tile (Bus)", "32MB",
                 TextTable::num(p.tile_w(false), 3) + " W", "1.59 W"});
  table.add_row({"Central controller", "1",
                 TextTable::num(p.central_controller_w, 3) + " W", "6.41 W"});
  table.add_row({"CPU host", "1",
                 TextTable::num(p.cpu_host_w, 3) + " W", "3.06 W"});
  const double total_ht = pim::chip_static_power_w(pim::chip_2gb());
  const double total_bus =
      pim::chip_static_power_w(pim::chip_2gb(pim::Topology::Bus));
  table.add_row({"Total 2GB (H-tree)", "64 tiles",
                 TextTable::num(total_ht, 5) + " W", "115.02 W"});
  table.add_row({"Total 2GB (Bus)", "64 tiles",
                 TextTable::num(total_bus, 5) + " W", "109.25 W"});
  table.print();

  std::printf("\n");
  bench::ShapeChecks checks;
  checks.expect_between(p.block_w() * 1e3, 8.82, 8.84,
                        "block power composes to 8.83 mW");
  checks.expect_between(total_ht, 114.5, 115.5, "2GB H-tree total ~115.02 W");
  checks.expect_between(total_bus, 108.5, 110.0, "2GB Bus total ~109.25 W");
  checks.expect(pim::chip_2gb().htree_switches_per_tile() == 85,
                "85 H-tree switches per 256-block tile");
  return checks.exit_code();
}
