// Ablation over the H-tree arity (§4.2.1's "can be higher when customizing
// PIM systems for larger-scale models"): flux-fetch makespan and switch
// power across binary / 4-ary / 16-ary trees and the bus.
#include "bench_util.h"
#include "common/table.h"
#include "mapping/estimator.h"

using namespace wavepim;

int main() {
  bench::header("Ablation — H-tree Arity (§4.2.1 extension)");

  const mapping::Problem problem{dg::ProblemKind::Acoustic, 4, 8};
  TextTable table({"Fabric", "Switches/tile", "Switch power/tile",
                   "Fetch/stage", "Step time", "Step energy"});
  bench::ShapeChecks checks;

  struct Result {
    double fetch;
    double step;
    double power;
  };
  std::vector<Result> results;

  for (std::uint32_t arity : {2u, 4u, 16u}) {
    auto chip = pim::chip_512mb();
    chip.htree_arity = arity;
    mapping::Estimator estimator(problem, chip);
    const auto& est = estimator.estimate();
    const pim::ComponentPower p;
    const double switch_w =
        p.htree_switch_total_w / 85.0 * chip.htree_switches_per_tile();
    const double fetch =
        (est.segments.fetch_minus + est.segments.fetch_plus).value();
    results.push_back({fetch, est.step_time.value(), switch_w});
    table.add_row({"H-tree x" + std::to_string(arity),
                   std::to_string(chip.htree_switches_per_tile()),
                   format_power(switch_w), format_time(Seconds(fetch)),
                   format_time(est.step_time),
                   format_energy(est.step_energy)});
  }
  {
    mapping::Estimator estimator(problem,
                                 pim::chip_512mb(pim::Topology::Bus));
    const auto& est = estimator.estimate();
    const pim::ComponentPower p;
    table.add_row({"Bus", "1", format_power(p.bus_switch_w),
                   format_time(est.segments.fetch_minus +
                               est.segments.fetch_plus),
                   format_time(est.step_time),
                   format_energy(est.step_energy)});
  }
  table.print();

  std::printf("\n");
  checks.expect(results[0].power > results[1].power &&
                    results[1].power > results[2].power,
                "switch power falls with arity (fewer, wider switches)");
  checks.expect(results[2].fetch < 4 * results[1].fetch,
                "16-ary fetch stays within 4x of the 4-ary tree");
  checks.expect(results[1].step <= results[0].step * 1.5 &&
                    results[1].step <= results[2].step * 1.5,
                "the paper's 4-ary choice is near the sweet spot");
  return checks.exit_code();
}
