#include "mapping/config.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wavepim::mapping {
namespace {

using dg::ProblemKind;

Problem acoustic(int level) { return {ProblemKind::Acoustic, level, 8}; }
Problem elastic(int level) { return {ProblemKind::ElasticCentral, level, 8}; }

TEST(Problem, DerivedSizes) {
  EXPECT_EQ(acoustic(4).num_elements(), 4096u);
  EXPECT_EQ(acoustic(5).num_elements(), 32768u);
  EXPECT_EQ(acoustic(4).nodes_per_element(), 512u);
  EXPECT_EQ(elastic(4).num_vars(), 9u);
  EXPECT_EQ(acoustic(4).name(), "Acoustic_4");
}

TEST(Problem, PaperBenchmarksMatchTable6) {
  const auto b = paper_benchmarks();
  EXPECT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0].name(), "Acoustic_4");
  EXPECT_EQ(b[5].name(), "Elastic-Riemann_5");
  for (const auto& p : b) {
    EXPECT_EQ(p.n1d, 8);  // 512-node elements throughout
  }
}

/// The full Table 5 of the paper, reproduced cell by cell.
struct Table5Case {
  Problem problem;
  const char* chip;
  const char* expected;
};

class Table5 : public ::testing::TestWithParam<Table5Case> {};

TEST_P(Table5, ConfigurationMatchesPaper) {
  const auto& c = GetParam();
  pim::ChipConfig chip;
  if (std::string(c.chip) == "512MB") {
    chip = pim::chip_512mb();
  } else if (std::string(c.chip) == "2GB") {
    chip = pim::chip_2gb();
  } else if (std::string(c.chip) == "8GB") {
    chip = pim::chip_8gb();
  } else {
    chip = pim::chip_16gb();
  }
  EXPECT_EQ(choose_config(c.problem, chip).label(), c.expected)
      << c.problem.name() << " on " << c.chip;
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, Table5,
    ::testing::Values(
        // Acoustic_4 row: N, Ep, Ep, Ep.
        Table5Case{{ProblemKind::Acoustic, 4, 8}, "512MB", "N"},
        Table5Case{{ProblemKind::Acoustic, 4, 8}, "2GB", "Ep"},
        Table5Case{{ProblemKind::Acoustic, 4, 8}, "8GB", "Ep"},
        Table5Case{{ProblemKind::Acoustic, 4, 8}, "16GB", "Ep"},
        // Elastic_4 row: Er&B, Er, Er&Ep, Er&Ep.
        Table5Case{{ProblemKind::ElasticCentral, 4, 8}, "512MB", "Er&B"},
        Table5Case{{ProblemKind::ElasticCentral, 4, 8}, "2GB", "Er"},
        Table5Case{{ProblemKind::ElasticCentral, 4, 8}, "8GB", "Er&Ep"},
        Table5Case{{ProblemKind::ElasticCentral, 4, 8}, "16GB", "Er&Ep"},
        // Acoustic_5 row: B, B, N, Ep.
        Table5Case{{ProblemKind::Acoustic, 5, 8}, "512MB", "B"},
        Table5Case{{ProblemKind::Acoustic, 5, 8}, "2GB", "B"},
        Table5Case{{ProblemKind::Acoustic, 5, 8}, "8GB", "N"},
        Table5Case{{ProblemKind::Acoustic, 5, 8}, "16GB", "Ep"},
        // Elastic_5 row: Er&B, Er&B, Er&B, Er.
        Table5Case{{ProblemKind::ElasticRiemann, 5, 8}, "512MB", "Er&B"},
        Table5Case{{ProblemKind::ElasticRiemann, 5, 8}, "2GB", "Er&B"},
        Table5Case{{ProblemKind::ElasticRiemann, 5, 8}, "8GB", "Er&B"},
        Table5Case{{ProblemKind::ElasticRiemann, 5, 8}, "16GB", "Er"}));

TEST(ChooseConfig, PaperBatchCounts) {
  // §7.3: "the inputs have to be divided into 32 batches for the
  // refinement-level 5 of elastic wave simulation" on 512 MB.
  const auto c =
      choose_config({ProblemKind::ElasticRiemann, 5, 8}, pim::chip_512mb());
  EXPECT_EQ(c.num_batches, 32u);
  EXPECT_EQ(c.slices_per_batch, 1u);

  // §6.1.2: level 5 on a 2 GB chip holds half of the elements.
  const auto a =
      choose_config({ProblemKind::Acoustic, 5, 8}, pim::chip_2gb());
  EXPECT_EQ(a.num_batches, 2u);
  EXPECT_EQ(a.slices_per_batch, 16u);
  EXPECT_EQ(a.elements_per_batch, 16384u);
}

TEST(ChooseConfig, NonBatchedCoversWholeMesh) {
  const auto c = choose_config(acoustic(4), pim::chip_2gb());
  EXPECT_FALSE(c.batched);
  EXPECT_EQ(c.num_batches, 1u);
  EXPECT_EQ(c.elements_per_batch, 4096u);
}

TEST(ChooseConfig, ThrowsWhenOneSliceCannotFit) {
  // Level 7 elastic: 128*128 elements/slice * 3 blocks = 49k blocks per
  // slice; a 512 MB chip has 4096 blocks.
  EXPECT_THROW(
      (void)choose_config({ProblemKind::ElasticCentral, 7, 8},
                          pim::chip_512mb()),
      CapacityError);
}

TEST(MappingConfig, Labels) {
  MappingConfig c;
  c.expansion = ExpansionMode::None;
  EXPECT_EQ(c.label(), "N");
  c.batched = true;
  EXPECT_EQ(c.label(), "B");
  c.expansion = ExpansionMode::Elastic3;
  EXPECT_EQ(c.label(), "Er&B");
  c.batched = false;
  c.expansion = ExpansionMode::Elastic9;
  EXPECT_EQ(c.label(), "Er&Ep");
}

}  // namespace
}  // namespace wavepim::mapping
