#include "mapping/layout.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"

namespace wavepim::mapping {
namespace {

TEST(BlockLayout, AcousticColumnsFollowFig5) {
  // mass inverse | variables[4] | auxiliaries[4] | contributions[4] |
  // scratchpad (the Fig. 5 row layout).
  const BlockLayout l(4);
  EXPECT_EQ(l.col_mass_inverse(), 0u);
  EXPECT_EQ(l.col_var(0), 1u);
  EXPECT_EQ(l.col_var(3), 4u);
  EXPECT_EQ(l.col_aux(0), 5u);
  EXPECT_EQ(l.col_contrib(0), 9u);
  EXPECT_EQ(l.scratch_begin(), 13u);
  EXPECT_EQ(l.scratch_count(), 19u);
  EXPECT_TRUE(l.fits());
}

TEST(BlockLayout, ColumnsAreDisjoint) {
  const BlockLayout l(4);
  std::set<std::uint32_t> cols;
  cols.insert(l.col_mass_inverse());
  for (std::uint32_t v = 0; v < 4; ++v) {
    cols.insert(l.col_var(v));
    cols.insert(l.col_aux(v));
    cols.insert(l.col_contrib(v));
  }
  for (std::uint32_t s = 0; s < l.scratch_count(); ++s) {
    cols.insert(l.col_scratch(s));
  }
  EXPECT_EQ(cols.size(), 32u);  // every word column used exactly once
  EXPECT_EQ(*cols.rbegin(), 31u);
}

TEST(BlockLayout, NineVariablesDoNotFit) {
  // The paper's reason elastic needs expansion (§5.1): 1 + 3*9 = 28 words
  // leave only 4 scratch columns.
  const BlockLayout l(9);
  EXPECT_EQ(l.scratch_count(), 4u);
  EXPECT_FALSE(l.fits());
}

TEST(BlockLayout, BoundsChecked) {
  const BlockLayout l(3);
  EXPECT_THROW((void)l.col_var(3), PreconditionError);
  EXPECT_THROW((void)l.col_scratch(l.scratch_count()), PreconditionError);
  EXPECT_THROW(BlockLayout(0), PreconditionError);
  EXPECT_THROW(BlockLayout(11), PreconditionError);
}

TEST(ExpansionMode, BlocksPerElement) {
  EXPECT_EQ(blocks_per_element(ExpansionMode::None), 1u);
  EXPECT_EQ(blocks_per_element(ExpansionMode::Acoustic4), 4u);
  EXPECT_EQ(blocks_per_element(ExpansionMode::Elastic3), 3u);
  EXPECT_EQ(blocks_per_element(ExpansionMode::Elastic9), 9u);
}

TEST(ExpansionMode, ApplicableModesPerPhysics) {
  const auto acoustic = applicable_modes(dg::ProblemKind::Acoustic);
  EXPECT_EQ(acoustic.front(), ExpansionMode::None);
  EXPECT_EQ(acoustic.back(), ExpansionMode::Acoustic4);
  const auto elastic = applicable_modes(dg::ProblemKind::ElasticRiemann);
  EXPECT_EQ(elastic.front(), ExpansionMode::Elastic3);
  EXPECT_EQ(elastic.back(), ExpansionMode::Elastic9);
}

TEST(VarGroups, CoverEveryVariableOnce) {
  struct Case {
    dg::ProblemKind kind;
    ExpansionMode mode;
    std::uint32_t vars;
  };
  const Case cases[] = {
      {dg::ProblemKind::Acoustic, ExpansionMode::None, 4},
      {dg::ProblemKind::Acoustic, ExpansionMode::Acoustic4, 4},
      {dg::ProblemKind::ElasticCentral, ExpansionMode::Elastic3, 9},
      {dg::ProblemKind::ElasticRiemann, ExpansionMode::Elastic9, 9},
  };
  for (const auto& c : cases) {
    const auto groups = var_groups(c.kind, c.mode);
    EXPECT_EQ(groups.size(), blocks_per_element(c.mode));
    std::set<std::uint32_t> seen;
    for (const auto& g : groups) {
      for (std::uint32_t v : g) {
        EXPECT_TRUE(seen.insert(v).second) << "duplicate var " << v;
      }
    }
    EXPECT_EQ(seen.size(), c.vars);
  }
}

TEST(VarGroups, OwnerLookup) {
  const auto groups =
      var_groups(dg::ProblemKind::ElasticCentral, ExpansionMode::Elastic3);
  EXPECT_EQ(owner_block_of_var(groups, 0), 0u);  // vx
  EXPECT_EQ(owner_block_of_var(groups, 4), 1u);  // syy
  EXPECT_EQ(owner_block_of_var(groups, 8), 2u);  // sxy
}

TEST(VarGroups, InvalidCombinationsRejected) {
  EXPECT_THROW(var_groups(dg::ProblemKind::ElasticCentral,
                          ExpansionMode::None),
               PreconditionError);
  EXPECT_THROW(var_groups(dg::ProblemKind::Acoustic, ExpansionMode::Elastic3),
               PreconditionError);
}

TEST(ElementStateBytes, ScalesWithVarsAndNodes) {
  // 512-node acoustic element: 512 * 4 vars * 3 fields * 4 B = 24 KiB.
  EXPECT_EQ(element_state_bytes(dg::ProblemKind::Acoustic, 8),
            512ull * 4 * 3 * 4);
  EXPECT_EQ(element_state_bytes(dg::ProblemKind::ElasticRiemann, 8),
            512ull * 9 * 3 * 4);
}

}  // namespace
}  // namespace wavepim::mapping
