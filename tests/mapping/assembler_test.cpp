#include "mapping/assembler.h"

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "dg/solver.h"
#include "dg/sources.h"

namespace wavepim::mapping {
namespace {

using dg::ProblemKind;

TEST(Assembler, LowersEveryEmissionKind) {
  const Problem problem{ProblemKind::Acoustic, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, mesh::Boundary::Periodic);
  const ElementSetup setup(problem, ExpansionMode::None,
                           mesh.element_size());
  const auto program = assemble_stage(setup, mesh, Placement(1), 0, 1e-3f);

  const auto mix = pim::analyze(program);
  EXPECT_GT(mix.total, 0u);
  EXPECT_GT(mix.count(pim::Opcode::GatherRows), 0u);
  EXPECT_GT(mix.count(pim::Opcode::BroadcastRow), 0u);
  EXPECT_GT(mix.count(pim::Opcode::Fmul), 0u);
  EXPECT_GT(mix.count(pim::Opcode::Fadd), 0u);
  EXPECT_GT(mix.count(pim::Opcode::Fscale), 0u);
  EXPECT_GT(mix.count(pim::Opcode::Faxpy), 0u);
  EXPECT_GT(mix.count(pim::Opcode::MemCpy), 0u);
  EXPECT_GT(mix.count(pim::Opcode::LutLookup), 0u);
  EXPECT_EQ(mix.total, mix.arith_count() + mix.memory_count() +
                           mix.count(pim::Opcode::Nop) +
                           mix.count(pim::Opcode::CopyCols));
}

TEST(Assembler, ControllerExecutionMatchesCpuSolver) {
  // Full loop closure: emit -> assemble to the ISA -> execute through the
  // central controller -> identical fields to the CPU reference.
  const Problem problem{ProblemKind::Acoustic, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, mesh::Boundary::Periodic);
  dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
  dg::AcousticSolver cpu(mesh, std::move(mats),
                         {.n1d = 3, .flux = dg::FluxType::Upwind});
  init_acoustic_plane_wave(cpu, mesh::Axis::X, 1);
  const double dt = cpu.stable_dt();

  const ElementSetup setup(problem, ExpansionMode::None,
                           mesh.element_size());
  pim::Chip chip(pim::chip_512mb());
  pim::Controller controller(chip);
  const BlockLayout layout(4);

  // Load the initial state into the variable columns.
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    for (std::uint32_t v = 0; v < 4; ++v) {
      for (std::uint32_t n = 0; n < 27; ++n) {
        chip.block(static_cast<std::uint32_t>(e))
            .set(n, layout.col_var(v), cpu.state().value(e, v, n));
      }
    }
  }

  // Two full time steps, each as five assembled stage programs.
  for (int step = 0; step < 2; ++step) {
    cpu.step(dt);
    for (int stage = 0; stage < 5; ++stage) {
      const auto program = assemble_stage(setup, mesh, Placement(1), stage,
                                          static_cast<float>(dt));
      const auto result = controller.execute(program);
      EXPECT_EQ(result.executed, program.size());
      EXPECT_GT(result.compute.time.value(), 0.0);
    }
  }

  double worst = 0.0;
  for (std::size_t e = 0; e < mesh.num_elements(); ++e) {
    for (std::uint32_t v = 0; v < 4; ++v) {
      for (std::uint32_t n = 0; n < 27; ++n) {
        const double got =
            chip.block(static_cast<std::uint32_t>(e)).at(n, layout.col_var(v));
        worst = std::max(worst,
                         std::abs(got - cpu.state().value(e, v, n)));
      }
    }
  }
  EXPECT_LT(worst, 1e-5);
}

TEST(Assembler, ElasticExpansionProgramTargetsMultipleBlocks) {
  const Problem problem{ProblemKind::ElasticCentral, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, mesh::Boundary::Periodic);
  const ElementSetup setup(problem, ExpansionMode::Elastic3,
                           mesh.element_size());
  const auto program = assemble_stage(setup, mesh, Placement(3), 0, 1e-3f);

  std::set<std::uint32_t> blocks;
  for (const auto& inst : program.instructions) {
    blocks.insert(inst.block);
  }
  // 8 elements x 3 blocks each.
  EXPECT_GE(blocks.size(), 24u);
}

TEST(Assembler, InstructionCountScalesWithElements) {
  const Problem p1{ProblemKind::Acoustic, 1, 3};
  mesh::StructuredMesh m1(1, 1.0, mesh::Boundary::Periodic);
  mesh::StructuredMesh m2(2, 1.0, mesh::Boundary::Periodic);
  const ElementSetup s1(p1, ExpansionMode::None, m1.element_size());
  const Problem p2{ProblemKind::Acoustic, 2, 3};
  const ElementSetup s2(p2, ExpansionMode::None, m2.element_size());
  const auto prog1 = assemble_stage(s1, m1, Placement(1), 0, 1e-3f);
  const auto prog2 = assemble_stage(s2, m2, Placement(1), 0, 1e-3f);
  EXPECT_NEAR(static_cast<double>(prog2.size()) / prog1.size(), 8.0, 0.1);
}

TEST(Assembler, RiemannStreamLongerThanCentral) {
  // PIM-side analogue of Table 6's instruction ordering.
  mesh::StructuredMesh mesh(1, 1.0, mesh::Boundary::Periodic);
  const ElementSetup central({ProblemKind::ElasticCentral, 1, 3},
                             ExpansionMode::Elastic3, mesh.element_size());
  const ElementSetup riemann({ProblemKind::ElasticRiemann, 1, 3},
                             ExpansionMode::Elastic3, mesh.element_size());
  const auto pc = assemble_stage(central, mesh, Placement(3), 0, 1e-3f);
  const auto pr = assemble_stage(riemann, mesh, Placement(3), 0, 1e-3f);
  EXPECT_GT(pr.size(), pc.size());
}

TEST(LoweredProgram, TableBookkeeping) {
  pim::LoweredProgram program;
  const auto r = program.add_rows({1, 2, 3});
  const auto v = program.add_values({0.5f});
  EXPECT_EQ(r, 0u);
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(program.row_tables[r].size(), 3u);
  EXPECT_EQ(program.value_tables[v][0], 0.5f);
}

TEST(Controller, RejectsBadTableReference) {
  pim::Chip chip(pim::chip_512mb());
  pim::Controller controller(chip);
  pim::LoweredProgram program;
  pim::Instruction inst;
  inst.op = pim::Opcode::GatherRows;
  inst.table_a = 7;  // no such table
  program.instructions.push_back(inst);
  EXPECT_THROW((void)controller.execute(program), PreconditionError);
}

}  // namespace
}  // namespace wavepim::mapping
