// Conformance suite for the interconnect timing backends: the network
// backend is *pricing-only*. Swapping the analytic list-scheduler for
// the event-driven cycle backend (or the H-tree for the bus) may move
// the network cost channel, but the nodal fields, the compute ledgers
// (volume/flux/integration), the HBM staging ledger, and every transfer
// count must stay bit-identical — across all four execution tiers, both
// residency modes, and the service scheduler's multiplexed runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mapping/simulation.h"
#include "service/job.h"
#include "service/scheduler.h"

namespace wavepim::mapping {
namespace {

using dg::ProblemKind;

struct RunResult {
  std::vector<float> field;
  PimSimulation::Costs costs;
  PimSimulation::NetStats net;
};

RunResult run_sim(pim::NetBackendKind backend, pim::Topology topology,
                  ExecPath path, std::uint32_t block_limit, int level) {
  pim::ChipConfig chip = pim::chip_512mb(topology);
  chip.net_backend = backend;
  chip.block_limit = block_limit;
  PimSimulation sim({ProblemKind::Acoustic, level, 3}, ExpansionMode::None,
                    chip);
  sim.set_exec_path(path);
  dg::Field u(sim.mesh().num_elements(), sim.setup().problem().num_vars(),
              static_cast<std::size_t>(sim.setup().ref().num_nodes()));
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (std::size_t v = 0; v < u.num_vars(); ++v) {
      for (std::size_t n = 0; n < u.nodes_per_element(); ++n) {
        u.value(e, v, n) =
            0.01f * static_cast<float>((e * 131 + v * 17 + n * 3) % 97) -
            0.25f;
      }
    }
  }
  sim.load_state(u);
  for (int i = 0; i < 3; ++i) {
    sim.step(2.0e-4);
  }
  const auto out = sim.read_state();
  return {{out.flat().begin(), out.flat().end()}, sim.costs(),
          sim.net_stats()};
}

/// Everything except the network channel must match bit for bit.
void expect_pricing_only(const RunResult& a, const RunResult& b,
                         const std::string& what) {
  ASSERT_EQ(a.field.size(), b.field.size()) << what;
  for (std::size_t i = 0; i < a.field.size(); ++i) {
    ASSERT_EQ(a.field[i], b.field[i]) << what << ": field word " << i;
  }
  const auto expect_cost_eq = [&](const pim::OpCost& x, const pim::OpCost& y,
                                  const char* channel) {
    EXPECT_EQ(x.time.value(), y.time.value()) << what << ": " << channel;
    EXPECT_EQ(x.energy.value(), y.energy.value()) << what << ": " << channel;
  };
  expect_cost_eq(a.costs.volume, b.costs.volume, "volume");
  expect_cost_eq(a.costs.flux, b.costs.flux, "flux");
  expect_cost_eq(a.costs.integration, b.costs.integration, "integration");
  expect_cost_eq(a.costs.hbm, b.costs.hbm, "hbm");
  // Transfer traffic is backend-independent (same drains, same batches).
  EXPECT_EQ(a.net.schedules, b.net.schedules) << what;
  EXPECT_EQ(a.net.transfers, b.net.transfers) << what;
  EXPECT_EQ(a.net.words, b.net.words) << what;
  // The serialized lower bound is a sum of isolated latencies — order-
  // independent up to FP summation order.
  EXPECT_NEAR(a.net.serial_sum.value(), b.net.serial_sum.value(),
              1e-9 * (a.net.serial_sum.value() + 1e-30))
      << what;
}

TEST(NetBackendConformance, PricingOnlyAcrossTiersAndResidency) {
  const ExecPath tiers[] = {ExecPath::Emit, ExecPath::Replay,
                           ExecPath::Compiled, ExecPath::Word};
  struct Residency {
    std::uint32_t block_limit;
    int level;
    const char* name;
  };
  // 0 = fully resident; a 32-block cap on the level-2 mesh forces the
  // batched residency window (HBM staging traffic in the hbm channel).
  const Residency modes[] = {{0, 1, "resident"}, {32, 2, "windowed"}};
  for (const auto& mode : modes) {
    for (const ExecPath tier : tiers) {
      const std::string what = std::string(to_string(tier)) + "/" + mode.name;
      const auto analytic =
          run_sim(pim::NetBackendKind::Analytic, pim::Topology::HTree, tier,
                  mode.block_limit, mode.level);
      const auto cycle =
          run_sim(pim::NetBackendKind::Cycle, pim::Topology::HTree, tier,
                  mode.block_limit, mode.level);
      expect_pricing_only(analytic, cycle, what);
      // The cycle run carries link statistics for every drain.
      EXPECT_EQ(cycle.net.link_schedules, cycle.net.schedules) << what;
      EXPECT_EQ(analytic.net.link_schedules, 0u) << what;
      EXPECT_GE(cycle.net.max_utilization, 0.0) << what;
      EXPECT_LE(cycle.net.max_utilization, 1.0 + 1e-12) << what;
    }
  }
}

TEST(NetBackendConformance, PricingOnlyOnTheBusFabric) {
  const auto analytic =
      run_sim(pim::NetBackendKind::Analytic, pim::Topology::Bus,
              ExecPath::Compiled, 0, 1);
  const auto cycle = run_sim(pim::NetBackendKind::Cycle, pim::Topology::Bus,
                             ExecPath::Compiled, 0, 1);
  expect_pricing_only(analytic, cycle, "bus/compiled");
  // The single-channel bus admits no overlap: the event model's makespan
  // must agree with the list scheduler's serialisation to FP noise.
  EXPECT_NEAR(analytic.costs.network.time.value(),
              cycle.costs.network.time.value(),
              1e-9 * analytic.costs.network.time.value());
}

TEST(NetBackendConformance, FieldsAreTopologyIndependentToo) {
  // The stronger form of pricing-only: fabric choice cannot touch the
  // fields or the transfer traffic. (The cost ledgers legitimately move
  // — every channel that prices fabric latency does, and on a tiny
  // uncontended mesh the bus's wide datapath is even the faster fabric;
  // the H-tree's advantage needs the contended paper-scale batches the
  // Fig. 14 grid evaluates.)
  const auto htree = run_sim(pim::NetBackendKind::Cycle, pim::Topology::HTree,
                             ExecPath::Replay, 0, 1);
  const auto bus = run_sim(pim::NetBackendKind::Cycle, pim::Topology::Bus,
                           ExecPath::Replay, 0, 1);
  ASSERT_EQ(htree.field.size(), bus.field.size());
  for (std::size_t i = 0; i < htree.field.size(); ++i) {
    ASSERT_EQ(htree.field[i], bus.field[i]) << "field word " << i;
  }
  EXPECT_EQ(htree.net.schedules, bus.net.schedules);
  EXPECT_EQ(htree.net.transfers, bus.net.transfers);
  EXPECT_EQ(htree.net.words, bus.net.words);
}

TEST(NetBackendConformance, ServiceRunsAreBackendInvariant) {
  // The service scheduler multiplexes tenants over pooled cycle-backend
  // chips: every job's hash and compute/hbm ledgers must match the
  // analytic fleet bit for bit, and each job its own solo run.
  service::GeneratorOptions gen;
  gen.num_jobs = 6;
  gen.max_steps = 2;

  const auto run_fleet = [&](pim::NetBackendKind backend) {
    service::ServiceOptions svc;
    svc.num_chips = 2;
    svc.chip.net_backend = backend;
    service::Scheduler scheduler(svc);
    return scheduler.run(service::generate_jobs(gen));
  };
  const auto analytic = run_fleet(pim::NetBackendKind::Analytic);
  const auto cycle = run_fleet(pim::NetBackendKind::Cycle);

  ASSERT_EQ(analytic.jobs.size(), cycle.jobs.size());
  pim::ChipConfig solo_chip = pim::chip_512mb();
  solo_chip.net_backend = pim::NetBackendKind::Cycle;
  const auto specs = service::generate_jobs(gen);
  for (std::size_t i = 0; i < cycle.jobs.size(); ++i) {
    const auto& a = analytic.jobs[i];
    const auto& c = cycle.jobs[i];
    ASSERT_EQ(a.id, c.id);
    EXPECT_EQ(a.hash, c.hash) << "job " << a.id;
    EXPECT_EQ(a.costs.flux.time.value(), c.costs.flux.time.value());
    EXPECT_EQ(a.costs.volume.energy.value(), c.costs.volume.energy.value());
    EXPECT_EQ(a.costs.hbm.time.value(), c.costs.hbm.time.value());
    EXPECT_EQ(a.net.transfers, c.net.transfers);

    const auto solo = service::run_job_solo(specs[c.id], solo_chip);
    EXPECT_EQ(c.hash, solo.hash) << "job " << c.id << " vs solo";
    EXPECT_EQ(c.net.transfers, solo.net.transfers);
    EXPECT_EQ(c.net.stall_time.value(), solo.net.stall_time.value());
  }
  // The cycle fleet surfaces queuing aggregates the analytic one cannot.
  EXPECT_GT(cycle.net.link_schedules, 0u);
  EXPECT_EQ(analytic.net.link_schedules, 0u);
  EXPECT_NEAR(analytic.net.serial_s, cycle.net.serial_s,
              1e-9 * (analytic.net.serial_s + 1e-30));
  EXPECT_EQ(analytic.net.words, cycle.net.words);
}

}  // namespace
}  // namespace wavepim::mapping
