// Witness-mode contract (word tier): the bit-serial compiled path
// re-executes checked phases on shadow blocks and hash-compares the
// result against the word kernels. Pinned here: (1) the spot-check
// cadence is honoured exactly (counted via `pim.witness` spans and the
// stats counters), (2) an injected single-bit corruption of live block
// state is caught and attributed with block/step coordinates, and
// (3) witness=off keeps the hot path allocation-free (global
// operator-new counting, the trace-conformance style).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string_view>

#include "dg/fields.h"
#include "mapping/simulation.h"
#include "trace/trace.h"

namespace {

/// Allocation counter for the zero-allocation assertion. Counting every
/// global new is coarse but deterministic: the steady-state step of a
/// warmed-up witness-off simulation must not allocate at all.
std::atomic<std::uint64_t> g_news{0};

}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wavepim::mapping {
namespace {

/// Word-tier simulation on the conformance suites' small acoustic mesh.
struct WordSim {
  explicit WordSim(std::uint32_t witness_interval) {
    sim = std::make_unique<PimSimulation>(
        Problem{dg::ProblemKind::Acoustic, 1, 3}, ExpansionMode::None,
        pim::chip_512mb());
    sim->set_exec_path(ExecPath::Word);
    sim->set_num_threads(1);
    sim->set_witness_interval(witness_interval);
    dg::Field u(8, 4, 27);
    u.fill(0.5f);
    sim->load_state(u);
  }
  std::unique_ptr<PimSimulation> sim;
};

/// Number of `pim.witness` spans recorded during one step.
std::uint64_t traced_witness_spans(PimSimulation& sim) {
  trace::Collector::instance().reset();
  trace::set_enabled(true);
  sim.step(1.0e-3);
  trace::set_enabled(false);
  std::uint64_t begins = 0;
  for (const auto& e : trace::Collector::instance().snapshot()) {
    if (e.name != nullptr && std::string_view(e.name) == "pim.witness" &&
        e.type == trace::EventType::Begin) {
      ++begins;
    }
  }
  trace::Collector::instance().reset();
  return begins;
}

TEST(Witness, FullCadenceChecksEveryPhaseApplication) {
  WordSim w(1);
  const std::uint64_t spans = traced_witness_spans(*w.sim);
  const auto& stats = w.sim->witness_stats();
  // Interval 1: one witness span per phase application, and the span
  // count is exactly the stats counter.
  EXPECT_GT(spans, 0u);
  EXPECT_EQ(spans, stats.checks);
  EXPECT_GT(stats.blocks_checked, stats.checks);
  EXPECT_EQ(stats.mismatches, 0u);
}

TEST(Witness, SpotCheckCadenceIsHonouredExactly) {
  // Measure the phase-application count per step at full cadence, then
  // pin the interval-N span count to ceil(phases / N) — the counter
  // starts at zero, so the very first phase is always checked.
  WordSim full(1);
  const std::uint64_t phases = traced_witness_spans(*full.sim);
  ASSERT_GT(phases, 0u);
  for (const std::uint32_t interval : {2u, 3u, 16u}) {
    WordSim spot(interval);
    const std::uint64_t spans = traced_witness_spans(*spot.sim);
    EXPECT_EQ(spans, (phases + interval - 1) / interval)
        << "interval " << interval;
    EXPECT_EQ(spot.sim->witness_stats().mismatches, 0u);
  }
}

TEST(Witness, OffRecordsNoSpansAndNoStats) {
  WordSim off(0);
  EXPECT_EQ(traced_witness_spans(*off.sim), 0u);
  EXPECT_EQ(off.sim->witness_stats().checks, 0u);
  EXPECT_EQ(off.sim->witness_stats().blocks_checked, 0u);
}

TEST(Witness, InjectedCorruptionIsCaughtWithCoordinates) {
  WordSim w(1);
  w.sim->step(1.0e-3);
  ASSERT_EQ(w.sim->witness_stats().mismatches, 0u) << "clean step diverged";

  // Flip the sign bit of word (row 0, col 0) of virtual block 0 in the
  // live state right before the next witness comparison. The witness
  // re-executes from its pre-phase snapshot, so the flipped word can
  // never be reproduced — it must be flagged, attributed to vblock 0.
  w.sim->set_witness_corruption(/*vblock=*/0, /*col=*/0, /*row=*/0);
  w.sim->step(1.0e-3);

  const auto& stats = w.sim->witness_stats();
  EXPECT_GE(stats.mismatches, 1u);
  const auto& mismatches = w.sim->witness_mismatches();
  ASSERT_FALSE(mismatches.empty());
  bool found = false;
  for (const auto& m : mismatches) {
    found = found || m.vblock == 0;
  }
  EXPECT_TRUE(found) << "mismatch not attributed to the corrupted block";
  // Coordinates are populated: RK stages are 0-4 and the schedule step
  // indexes the batch schedule.
  EXPECT_GE(mismatches.front().stage, 0);
  EXPECT_LT(mismatches.front().stage, 5);
}

TEST(Witness, OffAddsZeroAllocationsOnTheHotPath) {
  // The step fan-out allocates a fixed number of task wrappers per step
  // in every tier, so "zero allocations" is measured as a delta: with
  // the witness off, a steady-state step must allocate exactly as much
  // as a never-witnessed twin — the witness machinery neither allocates
  // when disabled nor leaves retained buffers growing after being
  // turned off.
  const auto steady_step_news = [](PimSimulation& sim) {
    const std::uint64_t before = g_news.load(std::memory_order_relaxed);
    sim.step(1.0e-3);
    return g_news.load(std::memory_order_relaxed) - before;
  };

  WordSim pristine(0);
  pristine.sim->step(1.0e-3);
  pristine.sim->step(1.0e-3);
  const std::uint64_t baseline = steady_step_news(*pristine.sim);

  WordSim toggled(1);
  toggled.sim->step(1.0e-3);  // witness on: snapshots + shadow blocks
  const std::uint64_t with_witness = steady_step_news(*toggled.sim);
  EXPECT_GT(with_witness, baseline)
      << "instrument failure: witnessed step did not allocate more";

  toggled.sim->set_witness_interval(0);
  toggled.sim->step(1.0e-3);  // drain: back to steady state
  EXPECT_EQ(steady_step_news(*toggled.sim), baseline)
      << "witness-off step allocated more than the never-witnessed twin";
  EXPECT_EQ(steady_step_news(*pristine.sim), baseline)
      << "steady-state step count is not stable";
}

}  // namespace
}  // namespace wavepim::mapping
