// Behavioural tests of the Morton element-placement option.
#include <gtest/gtest.h>

#include "mapping/estimator.h"

namespace wavepim::mapping {
namespace {

using dg::ProblemKind;

Estimator::Options morton_on() {
  Estimator::Options o;
  o.morton_placement = true;
  return o;
}

TEST(MortonPlacement, EstimatesStayValid) {
  // The Morton map must be a bijection onto the batch's block range —
  // an out-of-range block id would throw inside the interconnect.
  for (const auto& chip : pim::standard_chips()) {
    for (ProblemKind kind :
         {ProblemKind::Acoustic, ProblemKind::ElasticCentral}) {
      Estimator estimator({kind, 4, 8}, chip, morton_on());
      const auto& est = estimator.estimate();
      EXPECT_GT(est.step_time.value(), 0.0) << chip.name;
      EXPECT_GT(est.flux_inter_element.value(), 0.0) << chip.name;
    }
  }
}

TEST(MortonPlacement, ImprovesFetchOnCubicWindows) {
  // With the full cube resident, Morton keeps Z-neighbours close and
  // should beat the row-major layout's tile-crossing Z traffic.
  Estimator linear({ProblemKind::Acoustic, 4, 8}, pim::chip_512mb());
  Estimator morton({ProblemKind::Acoustic, 4, 8}, pim::chip_512mb(),
                   morton_on());
  EXPECT_LT(morton.estimate().flux_inter_element.value(),
            linear.estimate().flux_inter_element.value() * 1.05);
}

TEST(MortonPlacement, FallsBackOnNonPowerOfTwoWindows) {
  // Elastic_5 on 2GB has a 5-slice window: Morton is inapplicable and the
  // estimator must silently use the row-major layout (identical result).
  Estimator linear({ProblemKind::ElasticCentral, 5, 8}, pim::chip_2gb());
  Estimator morton({ProblemKind::ElasticCentral, 5, 8}, pim::chip_2gb(),
                   morton_on());
  EXPECT_EQ(linear.config().slices_per_batch, 5u);
  EXPECT_DOUBLE_EQ(morton.estimate().flux_inter_element.value(),
                   linear.estimate().flux_inter_element.value());
}

TEST(MortonPlacement, ComputePhasesUnaffected) {
  // Placement only moves data between blocks; per-block compute time is
  // placement-invariant.
  Estimator linear({ProblemKind::Acoustic, 4, 8}, pim::chip_512mb());
  Estimator morton({ProblemKind::Acoustic, 4, 8}, pim::chip_512mb(),
                   morton_on());
  EXPECT_DOUBLE_EQ(morton.estimate().segments.volume.value(),
                   linear.estimate().segments.volume.value());
  EXPECT_DOUBLE_EQ(morton.estimate().segments.integration.value(),
                   linear.estimate().segments.integration.value());
}

}  // namespace
}  // namespace wavepim::mapping
