#include "mapping/coefficients.h"

#include <gtest/gtest.h>

#include <array>

#include "common/rng.h"

namespace wavepim::mapping {
namespace {

using dg::AcousticPhysics;
using dg::ElasticPhysics;
using dg::FluxType;
using mesh::Face;

TEST(VolumeCoeffs, AcousticMatchesEquations) {
  const dg::AcousticMaterial m{.kappa = 2.0, .rho = 4.0};
  const auto c = probe_volume<AcousticPhysics>(m);
  EXPECT_EQ(c.num_vars, 4u);
  // rhs_p = -kappa * dvx/dx (axis X), rhs_vx = -(1/rho) dp/dx.
  EXPECT_FLOAT_EQ(c.at(mesh::Axis::X, AcousticPhysics::P, AcousticPhysics::Vx),
                  -2.0f);
  EXPECT_FLOAT_EQ(c.at(mesh::Axis::X, AcousticPhysics::Vx, AcousticPhysics::P),
                  -0.25f);
  // No cross-terms: vy does not enter the x-axis pass.
  EXPECT_FLOAT_EQ(c.at(mesh::Axis::X, AcousticPhysics::P, AcousticPhysics::Vy),
                  0.0f);
}

TEST(VolumeCoeffs, AcousticNeededSlices) {
  const auto c = probe_volume<AcousticPhysics>({});
  // grad p (3 slices) + diagonal of grad v (3 slices) = 6.
  EXPECT_EQ(c.needed_slices().size(), 6u);
}

TEST(VolumeCoeffs, ElasticMatchesEquations) {
  const dg::ElasticMaterial m{.lambda = 2.0, .mu = 1.0, .rho = 1.0};
  const auto c = probe_volume<ElasticPhysics>(m);
  // sxx += (lambda + 2 mu) dvx/dx, syy += lambda dvx/dx.
  EXPECT_FLOAT_EQ(
      c.at(mesh::Axis::X, ElasticPhysics::Sxx, ElasticPhysics::Vx), 4.0f);
  EXPECT_FLOAT_EQ(
      c.at(mesh::Axis::X, ElasticPhysics::Syy, ElasticPhysics::Vx), 2.0f);
  // sxy += mu dvy/dx; vy += (1/rho) dsxy/dx.
  EXPECT_FLOAT_EQ(
      c.at(mesh::Axis::X, ElasticPhysics::Sxy, ElasticPhysics::Vy), 1.0f);
  EXPECT_FLOAT_EQ(
      c.at(mesh::Axis::X, ElasticPhysics::Vy, ElasticPhysics::Sxy), 1.0f);
}

TEST(VolumeCoeffs, ElasticNeedsMoreSlicesThanAcoustic) {
  const auto e = probe_volume<ElasticPhysics>({2.0, 1.0, 1.0});
  const auto a = probe_volume<AcousticPhysics>({});
  EXPECT_GT(e.needed_slices().size(), a.needed_slices().size());
  EXPECT_EQ(e.needed_slices().size(), 18u);  // 9 grad v + 9 sigma columns
}

/// The linear model reproduced from the probe must reproduce
/// flux_correction on arbitrary traces — i.e. the kernel really is linear.
template <typename Physics>
void check_flux_linearity(FluxType flux,
                          const typename Physics::Material& mm,
                          const typename Physics::Material& mp) {
  Rng rng(42);
  for (Face f : mesh::kAllFaces) {
    const auto coeffs = probe_flux<Physics>(f, flux, mm, mp, false);
    std::array<float, Physics::kNumVars> um{};
    std::array<float, Physics::kNumVars> up{};
    std::array<float, Physics::kNumVars> want{};
    for (auto& v : um) {
      v = rng.next_float(-1.0f, 1.0f);
    }
    for (auto& v : up) {
      v = rng.next_float(-1.0f, 1.0f);
    }
    Physics::flux_correction(mesh::axis_of(f), mesh::normal_sign(f), flux, mm,
                             mp, um.data(), up.data(), want.data());
    for (std::uint32_t o = 0; o < Physics::kNumVars; ++o) {
      double got = 0.0;
      for (std::uint32_t w = 0; w < Physics::kNumVars; ++w) {
        got += static_cast<double>(coeffs.own(o, w)) * um[w] +
               static_cast<double>(coeffs.nbr(o, w)) * up[w];
      }
      EXPECT_NEAR(got, want[o], 1e-5)
          << "face " << mesh::to_string(f) << " out " << o;
    }
  }
}

TEST(FluxCoeffs, AcousticCentralIsLinear) {
  check_flux_linearity<AcousticPhysics>(FluxType::Central, {1.0, 1.0},
                                        {1.0, 1.0});
}

TEST(FluxCoeffs, AcousticUpwindIsLinearAcrossContrast) {
  check_flux_linearity<AcousticPhysics>(FluxType::Upwind, {1.0, 1.0},
                                        {4.0, 2.0});
}

TEST(FluxCoeffs, ElasticCentralIsLinear) {
  check_flux_linearity<ElasticPhysics>(FluxType::Central, {2.0, 1.0, 1.0},
                                       {2.0, 1.0, 1.0});
}

TEST(FluxCoeffs, ElasticRiemannIsLinearAcrossContrast) {
  check_flux_linearity<ElasticPhysics>(FluxType::Upwind, {2.0, 1.0, 1.0},
                                       {0.5, 0.25, 2.0});
}

TEST(FluxCoeffs, BoundaryProbeFoldsReflection) {
  const dg::AcousticMaterial m{.kappa = 1.0, .rho = 1.0};
  const auto coeffs = probe_flux<AcousticPhysics>(
      Face::XPlus, FluxType::Upwind, m, m, /*boundary_reflect=*/true);
  // All neighbour coefficients vanish.
  for (float b : coeffs.beta) {
    EXPECT_EQ(b, 0.0f);
  }
  // Result matches a direct reflected-ghost evaluation.
  std::array<float, 4> um = {0.5f, 0.3f, -0.1f, 0.2f};
  std::array<float, 4> up{};
  std::array<float, 4> want{};
  AcousticPhysics::reflect(mesh::Axis::X, +1, um.data(), up.data());
  AcousticPhysics::flux_correction(mesh::Axis::X, +1, FluxType::Upwind, m, m,
                                   um.data(), up.data(), want.data());
  for (std::uint32_t o = 0; o < 4; ++o) {
    double got = 0.0;
    for (std::uint32_t w = 0; w < 4; ++w) {
      got += static_cast<double>(coeffs.own(o, w)) * um[w];
    }
    EXPECT_NEAR(got, want[o], 1e-6);
  }
}

TEST(FluxCoeffs, RiemannHasMoreWorkThanCentral) {
  const dg::ElasticMaterial m{.lambda = 2.0, .mu = 1.0, .rho = 1.0};
  const auto central =
      probe_flux<ElasticPhysics>(Face::XPlus, FluxType::Central, m, m);
  const auto riemann =
      probe_flux<ElasticPhysics>(Face::XPlus, FluxType::Upwind, m, m);
  EXPECT_GT(riemann.nonzeros(), central.nonzeros());
}

TEST(FluxCoeffs, NeighborVarsNeededAcoustic) {
  const dg::AcousticMaterial m{.kappa = 1.0, .rho = 1.0};
  const auto c =
      probe_flux<AcousticPhysics>(Face::XPlus, FluxType::Upwind, m, m);
  const auto vars = c.needed_neighbor_vars();
  // Upwind on an X face consumes the neighbour's p and vx only.
  EXPECT_EQ(vars.size(), 2u);
}

TEST(HostSpecialOps, OrderedByFluxComplexity) {
  EXPECT_LT(host_special_ops_per_face(dg::ProblemKind::ElasticCentral),
            host_special_ops_per_face(dg::ProblemKind::Acoustic));
  EXPECT_LT(host_special_ops_per_face(dg::ProblemKind::Acoustic),
            host_special_ops_per_face(dg::ProblemKind::ElasticRiemann));
}

}  // namespace
}  // namespace wavepim::mapping
