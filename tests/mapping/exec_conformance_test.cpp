// Conformance suite for the four execution tiers of PimSimulation
// (direct emit -> cached replay -> compiled plan -> word kernels). The
// compiled engine re-implements instruction execution AND cost
// accounting — resolved op arrays, batched per-block charges,
// pre-merged transfer lists — and the word tier re-implements execution
// once more as vectorized FP32 kernels, so this suite pins the
// contract: for every tested mesh and worker count, all four tiers
// produce bit-identical nodal fields, cost channels, interconnect
// statistics, and full chip state (every word of every block, scratch
// columns included, folded into an FNV-1a hash).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "mapping/exec_plan.h"
#include "mapping/simulation.h"

namespace wavepim::mapping {
namespace {

using dg::ProblemKind;
using mesh::Boundary;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& h, std::uint64_t word) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (word >> shift) & 0xFFu;
    h *= kFnvPrime;
  }
}

void fnv_mix(std::uint64_t& h, float v) {
  fnv_mix(h, std::uint64_t{std::bit_cast<std::uint32_t>(v)});
}

struct RunResult {
  std::vector<float> field;
  PimSimulation::Costs costs;
  PimSimulation::NetStats net;
  std::uint64_t chip_hash = kFnvOffset;  ///< every word of every block
};

/// Runs `steps` time steps through the given tier and worker count,
/// returning the readable field, the cost report, and a hash over the
/// complete chip state (which also covers scratch and trace columns the
/// field read-back never sees).
template <typename MakeSim>
RunResult run_at(MakeSim&& make_sim, ExecPath path, std::size_t threads,
                 int steps) {
  auto sim = make_sim();
  sim->set_num_threads(threads);
  sim->set_exec_path(path);
  dg::Field u(sim->mesh().num_elements(), sim->setup().problem().num_vars(),
              static_cast<std::size_t>(sim->setup().ref().num_nodes()));
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (std::size_t v = 0; v < u.num_vars(); ++v) {
      for (std::size_t n = 0; n < u.nodes_per_element(); ++n) {
        u.value(e, v, n) =
            0.01f * static_cast<float>((e * 131 + v * 17 + n * 3) % 97) -
            0.25f;
      }
    }
  }
  sim->load_state(u);
  for (int i = 0; i < steps; ++i) {
    sim->step(2.0e-4);
  }
  const auto out = sim->read_state();

  RunResult result{{out.flat().begin(), out.flat().end()},
                   sim->costs(),
                   sim->net_stats(),
                   kFnvOffset};
  auto& chip = sim->chip();
  const std::uint32_t num_blocks =
      static_cast<std::uint32_t>(chip.num_allocated_blocks());
  const std::uint32_t rows =
      static_cast<std::uint32_t>(sim->setup().ref().num_nodes());
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    for (std::uint32_t c = 0; c < pim::Block::kWords; ++c) {
      const auto column = chip.block(b).column(c);
      for (std::uint32_t r = 0; r < rows; ++r) {
        fnv_mix(result.chip_hash, column[r]);
      }
    }
  }
  return result;
}

void expect_identical(const RunResult& a, const RunResult& b, ExecPath path,
                      std::size_t threads) {
  ASSERT_EQ(a.field.size(), b.field.size());
  for (std::size_t i = 0; i < a.field.size(); ++i) {
    ASSERT_EQ(a.field[i], b.field[i])
        << "field word " << i << " diverged on " << to_string(path) << " at "
        << threads << " threads";
  }
  const auto expect_cost_eq = [&](const pim::OpCost& x, const pim::OpCost& y,
                                  const char* channel) {
    EXPECT_EQ(x.time.value(), y.time.value())
        << channel << " time diverged on " << to_string(path) << " at "
        << threads << " threads";
    EXPECT_EQ(x.energy.value(), y.energy.value())
        << channel << " energy diverged on " << to_string(path) << " at "
        << threads << " threads";
  };
  expect_cost_eq(a.costs.volume, b.costs.volume, "volume");
  expect_cost_eq(a.costs.flux, b.costs.flux, "flux");
  expect_cost_eq(a.costs.integration, b.costs.integration, "integration");
  expect_cost_eq(a.costs.network, b.costs.network, "network");
  EXPECT_EQ(a.net.schedules, b.net.schedules);
  EXPECT_EQ(a.net.transfers, b.net.transfers)
      << "transfer count diverged on " << to_string(path) << " at "
      << threads << " threads";
  EXPECT_EQ(a.net.words, b.net.words);
  EXPECT_EQ(a.net.serial_sum.value(), b.net.serial_sum.value());
  EXPECT_EQ(a.chip_hash, b.chip_hash)
      << "full chip state diverged on " << to_string(path) << " at "
      << threads << " threads";
}

constexpr ExecPath kAllPaths[] = {ExecPath::Emit, ExecPath::Replay,
                                  ExecPath::Compiled, ExecPath::Word};

/// The serial emit run is the single reference all twelve (tier x
/// worker count) combinations compare against.
template <typename MakeSim>
void expect_exec_conformance(MakeSim&& make, int steps) {
  const RunResult reference = run_at(make, ExecPath::Emit, 1, steps);
  for (ExecPath path : kAllPaths) {
    for (std::size_t threads :
         {std::size_t{1}, std::size_t{4}, std::size_t{0}}) {
      expect_identical(reference, run_at(make, path, threads, steps), path,
                       threads);
    }
  }
}

TEST(ExecConformance, UniformPeriodic) {
  // One shape class, every face exchanging: the compiled plan's maximal
  // stream-sharing case.
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 2, 3}, ExpansionMode::None,
        pim::chip_512mb());
  };
  expect_exec_conformance(make, 2);
}

TEST(ExecConformance, HeterogeneousAcoustic) {
  // Two material layers: multiple classes with distinct coefficient
  // constants interned in the arena; plan ops point into shared tables.
  const auto make = [] {
    mesh::StructuredMesh mesh(2, 1.0, Boundary::Periodic);
    dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
    for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
      if (mesh.coords_of(e)[2] >= 2) {
        mats.set(e, {.kappa = 4.0, .rho = 2.0});
      }
    }
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 2, 3}, ExpansionMode::None,
        pim::chip_512mb(), mats);
  };
  expect_exec_conformance(make, 1);
}

TEST(ExecConformance, ReflectiveElastic) {
  // Reflective walls: boundary-face classes whose wall streams carry no
  // pulls (the plan's neighbour-base sentinel must never be dereferenced)
  // and a 3-block expansion exercising multi-group ledgers and
  // intra-element staging transfers.
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::ElasticCentral, 1, 3}, ExpansionMode::Elastic3,
        pim::chip_512mb(), Boundary::Reflective);
  };
  expect_exec_conformance(make, 2);
}

TEST(ExecConformance, ExpandedAcousticSelfNeighbour) {
  // Level 0 periodic under the 4-block expansion: the element is its own
  // neighbour on all six faces, so compiled inter-element Moves resolve
  // to the element's own block base.
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 0, 3}, ExpansionMode::Acoustic4,
        pim::chip_512mb());
  };
  expect_exec_conformance(make, 2);
}

TEST(ExecConformance, EnvSelectsDefaultPath) {
  // The tier plumbing: explicit setters win, the legacy cache switch maps
  // onto the tiers, and a compiled sim exposes its plan after stepping.
  PimSimulation sim(Problem{ProblemKind::Acoustic, 1, 3},
                    ExpansionMode::None, pim::chip_512mb());
  sim.set_exec_path(ExecPath::Compiled);
  EXPECT_EQ(sim.exec_path(), ExecPath::Compiled);
  EXPECT_TRUE(sim.program_cache_enabled());
  sim.set_program_cache(false);
  EXPECT_EQ(sim.exec_path(), ExecPath::Emit);
  sim.set_program_cache(true);
  EXPECT_EQ(sim.exec_path(), ExecPath::Replay);

  sim.set_exec_path(ExecPath::Compiled);
  EXPECT_EQ(sim.execution_plan(), nullptr);
  sim.step(1.0e-4);
  ASSERT_NE(sim.execution_plan(), nullptr);
  EXPECT_GE(sim.execution_plan()->num_classes(), 1u);
}

// ---- Fusion / blocking / arena / AVX2 cost invisibility --------------------
// The word-tier performance knobs (WAVEPIM_WORD_FUSE, WAVEPIM_WORD_BLOCK,
// WAVEPIM_WORD_ARENA, WAVEPIM_WORD_AVX2) are storage/scheduling choices
// that must be invisible to every observable: fields, OpCost ledgers per
// channel, NetStats, and the full chip hash (scratch columns included)
// must be byte-identical with each knob on and off, at 1, 4 and
// hardware-default worker counts. All knobs are read at plan-build /
// allocation time, so a scoped setenv between sim constructions selects
// the variant.

namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, old_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

}  // namespace

TEST(ExecConformance, WordKnobsAreCostAndStateInvisible) {
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 2, 3}, ExpansionMode::None,
        pim::chip_512mb());
  };
  const int steps = 1;
  const RunResult reference = run_at(make, ExecPath::Emit, 1, steps);

  const struct {
    const char* label;
    const char* var;
    const char* value;
  } variants[] = {
      {"fusion off", "WAVEPIM_WORD_FUSE", "0"},
      {"blocking off", "WAVEPIM_WORD_BLOCK", "0"},
      {"arena off", "WAVEPIM_WORD_ARENA", "0"},
      {"avx2 off", "WAVEPIM_WORD_AVX2", "0"},
  };
  for (const auto& v : variants) {
    SCOPED_TRACE(v.label);
    ScopedEnv env(v.var, v.value);
    for (std::size_t threads :
         {std::size_t{1}, std::size_t{4}, std::size_t{0}}) {
      expect_identical(reference, run_at(make, ExecPath::Word, threads, steps),
                       ExecPath::Word, threads);
    }
  }

  // Everything off at once — the PR 7 configuration — and everything on
  // (the ambient default) must agree too.
  {
    SCOPED_TRACE("all knobs off");
    ScopedEnv fuse("WAVEPIM_WORD_FUSE", "0");
    ScopedEnv block("WAVEPIM_WORD_BLOCK", "0");
    ScopedEnv arena("WAVEPIM_WORD_ARENA", "0");
    ScopedEnv avx("WAVEPIM_WORD_AVX2", "0");
    expect_identical(reference, run_at(make, ExecPath::Word, 4, steps),
                     ExecPath::Word, 4);
  }
  expect_identical(reference, run_at(make, ExecPath::Word, 4, steps),
                   ExecPath::Word, 4);
}

// ---- Per-block ledger conformance -----------------------------------------
// The sim-level hashes cover fields and aggregated channels; this pins the
// batched cost fold at block granularity. One Volume phase is executed
// twice on identical chips — FunctionalSink replay vs compiled plan — and
// every block's ledger (one batched charge per block on the compiled
// side, dozens of per-op charges on the sink side) plus every stored word
// must match bit-for-bit, as must the phase transfer lists.
TEST(ExecConformance, PerBlockVolumeLedgersMatchBitExact) {
  const Problem problem{ProblemKind::Acoustic, 1, 3};
  const ExpansionMode mode = ExpansionMode::Acoustic4;  // intra transfers
  mesh::StructuredMesh mesh(problem.refinement_level, 1.0,
                            Boundary::Periodic);
  ElementSetup setup(problem, mode, mesh.element_size());
  const std::uint32_t bpe = blocks_per_element(mode);
  const std::uint32_t num_blocks = mesh.num_elements() * bpe;

  pim::Chip chip_sink(pim::chip_512mb());
  pim::Chip chip_plan(pim::chip_512mb());
  chip_sink.ensure_blocks(num_blocks);
  chip_plan.ensure_blocks(num_blocks);

  // Identical non-trivial state on both chips, cost-free (set()).
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    for (std::uint32_t c = 0; c < pim::Block::kWords; ++c) {
      for (std::uint32_t r = 0;
           r < static_cast<std::uint32_t>(setup.ref().num_nodes()); ++r) {
        const float v =
            0.001f * static_cast<float>((b * 263 + c * 29 + r * 7) % 211) -
            0.1f;
        chip_sink.block(b).set(r, c, v);
        chip_plan.block(b).set(r, c, v);
      }
    }
  }

  SinkPricing pricing;
  pricing.model = &chip_sink.arith();
  const pim::Transfer hop{.src_block = 0, .dst_block = 5, .words = 1};
  pricing.lut_unit = pricing.rows_read(2) + pricing.rows_written(1);
  pricing.lut_unit += {chip_sink.interconnect().isolated_latency(hop),
                       chip_sink.interconnect().transfer_energy(hop)};
  const Placement placement(bpe);

  ProgramCache cache(setup, mesh, nullptr, nullptr);
  FunctionalSink sink(chip_sink, mesh, placement, pricing);
  std::vector<pim::Transfer> sink_transfers;
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    sink.bind(e);
    replay(cache.arena(), cache.volume(cache.class_of(e)), sink);
    const auto collected = sink.take_transfers();
    sink_transfers.insert(sink_transfers.end(), collected.begin(),
                          collected.end());
  }

  ExecutionPlan plan(cache, mesh, placement, pricing);
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    plan.run_volume(chip_plan, e);
  }

  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    const auto& lhs = chip_sink.block(b).consumed();
    const auto& rhs = chip_plan.block(b).consumed();
    EXPECT_EQ(lhs.time.value(), rhs.time.value()) << "block " << b;
    EXPECT_EQ(lhs.energy.value(), rhs.energy.value()) << "block " << b;
    for (std::uint32_t c = 0; c < pim::Block::kWords; ++c) {
      const auto col_sink = chip_sink.block(b).column(c);
      const auto col_plan = chip_plan.block(b).column(c);
      for (std::uint32_t r = 0; r < pim::Block::kRows; ++r) {
        ASSERT_EQ(col_sink[r], col_plan[r])
            << "block " << b << " word (" << r << ", " << c << ")";
      }
    }
  }

  const auto& plan_transfers = plan.volume_transfers();
  ASSERT_EQ(sink_transfers.size(), plan_transfers.size());
  for (std::size_t i = 0; i < sink_transfers.size(); ++i) {
    EXPECT_EQ(sink_transfers[i].src_block, plan_transfers[i].src_block);
    EXPECT_EQ(sink_transfers[i].dst_block, plan_transfers[i].dst_block);
    EXPECT_EQ(sink_transfers[i].words, plan_transfers[i].words);
  }
}

}  // namespace
}  // namespace wavepim::mapping
