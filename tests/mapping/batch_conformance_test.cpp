// BatchConformance: pins the residency layer's core guarantee — a
// problem forced off-chip (ChipConfig::block_limit) and executed through
// the windowed Fig. 7 batch schedule produces bit-identical nodal fields
// and compute/net cost channels to the same problem fully resident, on
// every execution tier and worker count. Staging is the only difference
// and lands exclusively in the separate `hbm` channel, whose executed
// load/store counts must agree with the BatchSchedule the estimator also
// consumes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "dg/rk.h"
#include "mapping/residency.h"
#include "mapping/simulation.h"

namespace wavepim::mapping {
namespace {

using dg::ProblemKind;
using mesh::Boundary;

struct RunResult {
  std::vector<float> field;
  PimSimulation::Costs costs;
  PimSimulation::NetStats net;
};

/// Deterministic non-trivial initial state shared by every run.
dg::Field seeded_state(const PimSimulation& sim) {
  dg::Field u(sim.mesh().num_elements(), sim.setup().problem().num_vars(),
              static_cast<std::size_t>(sim.setup().ref().num_nodes()));
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (std::size_t v = 0; v < u.num_vars(); ++v) {
      for (std::size_t n = 0; n < u.nodes_per_element(); ++n) {
        u.value(e, v, n) =
            0.01f * static_cast<float>((e * 131 + v * 17 + n * 3) % 97) -
            0.25f;
      }
    }
  }
  return u;
}

template <typename MakeSim>
RunResult run_at(MakeSim&& make_sim, ExecPath path, std::size_t threads,
                 int steps) {
  auto sim = make_sim();
  sim->set_num_threads(threads);
  sim->set_exec_path(path);
  sim->load_state(seeded_state(*sim));
  for (int i = 0; i < steps; ++i) {
    sim->step(2.0e-4);
  }
  const auto out = sim->read_state();
  return {{out.flat().begin(), out.flat().end()}, sim->costs(),
          sim->net_stats()};
}

/// Fields and the compute/net channels must match bit-for-bit; the hbm
/// channel is exempt (it is exactly where staging shows up).
void expect_identical(const RunResult& a, const RunResult& b, ExecPath path,
                      std::size_t threads) {
  ASSERT_EQ(a.field.size(), b.field.size());
  for (std::size_t i = 0; i < a.field.size(); ++i) {
    ASSERT_EQ(a.field[i], b.field[i])
        << "field word " << i << " diverged on " << to_string(path) << " at "
        << threads << " threads";
  }
  const auto expect_cost_eq = [&](const pim::OpCost& x, const pim::OpCost& y,
                                  const char* channel) {
    EXPECT_EQ(x.time.value(), y.time.value())
        << channel << " time diverged on " << to_string(path) << " at "
        << threads << " threads";
    EXPECT_EQ(x.energy.value(), y.energy.value())
        << channel << " energy diverged on " << to_string(path) << " at "
        << threads << " threads";
  };
  expect_cost_eq(a.costs.volume, b.costs.volume, "volume");
  expect_cost_eq(a.costs.flux, b.costs.flux, "flux");
  expect_cost_eq(a.costs.integration, b.costs.integration, "integration");
  expect_cost_eq(a.costs.network, b.costs.network, "network");
  EXPECT_EQ(a.net.schedules, b.net.schedules);
  EXPECT_EQ(a.net.transfers, b.net.transfers);
  EXPECT_EQ(a.net.words, b.net.words);
  EXPECT_EQ(a.net.serial_sum.value(), b.net.serial_sum.value());
}

constexpr ExecPath kAllPaths[] = {ExecPath::Emit, ExecPath::Replay,
                                  ExecPath::Compiled, ExecPath::Word};

/// The serial fully-resident emit run is the reference every batched
/// (tier x worker count) combination compares against.
template <typename MakeResident, typename MakeBatched>
void expect_batch_conformance(MakeResident&& make_resident,
                              MakeBatched&& make_batched, int steps) {
  const RunResult reference = run_at(make_resident, ExecPath::Emit, 1, steps);
  for (ExecPath path : kAllPaths) {
    for (std::size_t threads :
         {std::size_t{1}, std::size_t{4}, std::size_t{0}}) {
      expect_identical(reference, run_at(make_batched, path, threads, steps),
                       path, threads);
    }
  }
}

/// Caps the 512 MB chip at `blocks` PIM blocks to force batching.
pim::ChipConfig capped_chip(std::uint32_t blocks) {
  pim::ChipConfig chip = pim::chip_512mb();
  chip.block_limit = blocks;
  return chip;
}

TEST(BatchConformance, PeriodicAcousticOneSliceWindow) {
  // 4 slices of 16 elements; a 32-block cap leaves a 1-slice window +
  // staging slice, so every Y face crosses a window boundary and slice 0
  // takes the periodic restaging path.
  const Problem problem{ProblemKind::Acoustic, 2, 3};
  const auto resident = [&] {
    return std::make_unique<PimSimulation>(problem, ExpansionMode::None,
                                           pim::chip_512mb());
  };
  const auto batched = [&] {
    return std::make_unique<PimSimulation>(problem, ExpansionMode::None,
                                           capped_chip(32));
  };
  expect_batch_conformance(resident, batched, 2);
}

TEST(BatchConformance, WindowBoundaryYFluxRegression) {
  // 48 blocks hold three 16-block slices: a 2-slice window + staging
  // slice. The window boundary lands between slices 1 and 2, so the
  // (1,2) and (3,0) Y pairings exercise the Fig. 7 crossing and wrap
  // steps while the (0,1) and (2,3) pairings stay in-window — the mixed
  // case a uniform window hides.
  const Problem problem{ProblemKind::Acoustic, 2, 3};
  const auto resident = [&] {
    return std::make_unique<PimSimulation>(problem, ExpansionMode::None,
                                           pim::chip_512mb());
  };
  const auto batched = [&] {
    return std::make_unique<PimSimulation>(problem, ExpansionMode::None,
                                           capped_chip(48));
  };
  const RunResult reference = run_at(resident, ExecPath::Emit, 1, 1);
  for (ExecPath path : kAllPaths) {
    expect_identical(reference, run_at(batched, path, 1, 1), path, 1);
  }
}

TEST(BatchConformance, WordKnobsInvisibleOnBatchedResidencyPath) {
  // The mmap arena backs BOTH the on-chip blocks and the residency host
  // backing store, and fusion rewrites the streams the batched word runs
  // execute — so the over-capacity path gets its own knob sweep: with
  // the arena or fusion disabled, the batched word run must still match
  // the fully-resident serial emit reference bit for bit on fields and
  // every compute/net channel (hbm staging stays the only difference).
  const Problem problem{ProblemKind::Acoustic, 2, 3};
  const auto resident = [&] {
    return std::make_unique<PimSimulation>(problem, ExpansionMode::None,
                                           pim::chip_512mb());
  };
  const auto batched = [&] {
    return std::make_unique<PimSimulation>(problem, ExpansionMode::None,
                                           capped_chip(32));
  };
  const RunResult reference = run_at(resident, ExecPath::Emit, 1, 1);
  const struct {
    const char* label;
    const char* var;
    const char* value;
  } variants[] = {
      {"arena off", "WAVEPIM_WORD_ARENA", "0"},
      {"fusion off", "WAVEPIM_WORD_FUSE", "0"},
  };
  for (const auto& v : variants) {
    SCOPED_TRACE(v.label);
    const char* old = std::getenv(v.var);
    const std::string saved = old != nullptr ? old : "";
    setenv(v.var, v.value, /*overwrite=*/1);
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      expect_identical(reference,
                       run_at(batched, ExecPath::Word, threads, 1),
                       ExecPath::Word, threads);
    }
    if (old != nullptr) {
      setenv(v.var, saved.c_str(), /*overwrite=*/1);
    } else {
      unsetenv(v.var);
    }
  }
}

TEST(BatchConformance, ReflectiveAcousticBatched) {
  // Reflective walls: no wrap step, no slice-0 restaging; edge slices
  // apply their boundary Y faces in-window.
  const Problem problem{ProblemKind::Acoustic, 2, 3};
  const auto resident = [&] {
    return std::make_unique<PimSimulation>(problem, ExpansionMode::None,
                                           pim::chip_512mb(),
                                           Boundary::Reflective);
  };
  const auto batched = [&] {
    return std::make_unique<PimSimulation>(problem, ExpansionMode::None,
                                           capped_chip(32),
                                           Boundary::Reflective);
  };
  expect_batch_conformance(resident, batched, 1);
}

TEST(BatchConformance, ExpandedElasticBatched) {
  // 3-block elastic expansion: residency windows move multi-block
  // elements (48 blocks per 16-element slice), and intra-element
  // staging transfers must resolve through the virtual table.
  const Problem problem{ProblemKind::ElasticCentral, 2, 3};
  const auto resident = [&] {
    return std::make_unique<PimSimulation>(problem, ExpansionMode::Elastic3,
                                           pim::chip_512mb());
  };
  const auto batched = [&] {
    return std::make_unique<PimSimulation>(problem, ExpansionMode::Elastic3,
                                           capped_chip(96));
  };
  const RunResult reference = run_at(resident, ExecPath::Emit, 1, 1);
  for (ExecPath path : kAllPaths) {
    expect_identical(reference, run_at(batched, path, 0, 1), path, 0);
  }
}

TEST(BatchConformance, ExecutedStagingMatchesSchedule) {
  const Problem problem{ProblemKind::Acoustic, 2, 3};
  PimSimulation sim(problem, ExpansionMode::None, capped_chip(32));
  ASSERT_FALSE(sim.residency().is_resident());
  sim.load_state(seeded_state(sim));
  const int steps = 2;
  for (int i = 0; i < steps; ++i) {
    sim.step(2.0e-4);
  }

  // The executed load/store counts are the schedule's counts, replayed
  // once per RK stage — the same single source (count_staging) the
  // analytic estimator prices.
  const auto& residency = sim.residency();
  const StagingCounts counts =
      count_staging(residency.schedule(), residency.slice_bytes());
  const std::uint64_t passes =
      static_cast<std::uint64_t>(dg::Lsrk54::kNumStages) * steps;
  EXPECT_EQ(counts.slice_loads, residency.schedule().total_loads());
  EXPECT_EQ(counts.slice_stores, residency.schedule().total_stores());
  EXPECT_EQ(residency.slice_loads(), counts.slice_loads * passes);
  EXPECT_EQ(residency.slice_stores(), counts.slice_stores * passes);
  EXPECT_EQ(residency.bytes_staged(), counts.bytes * passes);

  // Staging lands in the hbm channel, outside the compute total.
  EXPECT_GT(sim.costs().hbm.time.value(), 0.0);
  EXPECT_GT(sim.costs().hbm.energy.value(), 0.0);

  // Periodic 4-slice mesh with a 1-slice window: slice 0 moves twice.
  EXPECT_EQ(residency.schedule().total_loads(), 5u);
  EXPECT_EQ(residency.schedule().peak_resident(), 2u);
}

TEST(BatchConformance, ResidentRunsPriceStateMovement) {
  // Fully resident: the only HBM traffic is the initial state load and
  // the final readback, charged to the hbm channel (not total()).
  const Problem problem{ProblemKind::Acoustic, 1, 3};
  PimSimulation sim(problem, ExpansionMode::None, pim::chip_512mb());
  ASSERT_TRUE(sim.residency().is_resident());
  EXPECT_EQ(sim.costs().hbm.time.value(), 0.0);
  sim.load_state(seeded_state(sim));
  const double after_load = sim.costs().hbm.time.value();
  EXPECT_GT(after_load, 0.0);
  sim.step(2.0e-4);
  EXPECT_EQ(sim.costs().hbm.time.value(), after_load);  // no staging
  (void)sim.read_state();
  EXPECT_GT(sim.costs().hbm.time.value(), after_load);
  const auto total = sim.costs().total();
  EXPECT_EQ(total.time.value(), sim.costs().volume.time.value() +
                                    sim.costs().flux.time.value() +
                                    sim.costs().integration.time.value() +
                                    sim.costs().network.time.value());
}

}  // namespace
}  // namespace wavepim::mapping
