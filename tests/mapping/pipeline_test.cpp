#include "mapping/pipeline.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wavepim::mapping {
namespace {

StageSegments segments() {
  StageSegments s;
  s.volume = microseconds(100.0);
  s.host_preprocess = microseconds(40.0);
  s.fetch_minus = microseconds(60.0);
  s.compute_minus = microseconds(50.0);
  s.fetch_plus = microseconds(60.0);
  s.compute_plus = microseconds(50.0);
  s.integration = microseconds(30.0);
  return s;
}

TEST(Pipeline, SerialTotalIsTheSum) {
  const auto s = segments();
  EXPECT_DOUBLE_EQ(s.serial_total().value(), 390e-6);
  EXPECT_DOUBLE_EQ(schedule_stage_serial(s).total.value(), 390e-6);
}

TEST(Pipeline, PipelinedOverlapsFetchAndHostWithVolume) {
  const auto sched = schedule_stage_pipelined(segments());
  // flux(-1) starts at max(volume, host, fetch-) = 100 us.
  EXPECT_DOUBLE_EQ(sched.end_of("volume").value(), 100e-6);
  EXPECT_DOUBLE_EQ(sched.end_of("flux(-1)").value(), 150e-6);
  // fetch(+1) queued behind fetch(-1): 60 + 60 = 120 us < 150 us, so
  // flux(+1) starts right after flux(-1).
  EXPECT_DOUBLE_EQ(sched.end_of("fetch(+1)").value(), 120e-6);
  EXPECT_DOUBLE_EQ(sched.end_of("flux(+1)").value(), 200e-6);
  EXPECT_DOUBLE_EQ(sched.total.value(), 230e-6);
}

TEST(Pipeline, SlowFetchDelaysSecondFluxStage) {
  auto s = segments();
  s.fetch_plus = microseconds(200.0);
  const auto sched = schedule_stage_pipelined(s);
  // fetch(+1) ends at 60 + 200 = 260 us, after flux(-1)'s 150 us.
  EXPECT_DOUBLE_EQ(sched.end_of("flux(+1)").value(), 310e-6);
}

TEST(Pipeline, SlowHostStallsFlux) {
  auto s = segments();
  s.host_preprocess = microseconds(500.0);
  const auto sched = schedule_stage_pipelined(s);
  EXPECT_DOUBLE_EQ(sched.end_of("flux(-1)").value(), 550e-6);
}

TEST(Pipeline, PipelinedNeverSlowerThanSerial) {
  for (double v : {10.0, 100.0, 1000.0}) {
    for (double f : {1.0, 50.0, 400.0}) {
      StageSegments s = segments();
      s.volume = microseconds(v);
      s.fetch_minus = s.fetch_plus = microseconds(f);
      EXPECT_LE(schedule_stage_pipelined(s).total.value(),
                schedule_stage_serial(s).total.value() + 1e-18);
    }
  }
}

TEST(Pipeline, PaperRatioReproducible) {
  // With fetch/host fully hidden behind volume, pipelined/serial ~ 0.7-0.8
  // (the paper reports 0.77x throughput without pipelining).
  const auto s = segments();
  const double ratio = schedule_stage_pipelined(s).total.value() /
                       schedule_stage_serial(s).total.value();
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 0.85);
}

TEST(Pipeline, EndOfUnknownIntervalThrows) {
  const auto sched = schedule_stage_serial(segments());
  EXPECT_THROW((void)sched.end_of("nonsense"), PreconditionError);
}

TEST(Pipeline, TimelineHasSevenNamedIntervals) {
  const auto sched = schedule_stage_pipelined(segments());
  ASSERT_EQ(sched.timeline.size(), 7u);
  EXPECT_EQ(sched.timeline.front().name, "volume");
  EXPECT_EQ(sched.timeline.back().name, "integration");
}

}  // namespace
}  // namespace wavepim::mapping
