// ProgramCache under concurrent tenants: the service layer hands one
// cache to every simulation of a shape class, so `integration()` must
// survive many threads racing on first-lowering and lookups at once.
// Run under TSan (CI's sanitizer lane includes this binary) the test
// also proves the shared_mutex discipline: shared-lock lookups, a
// single writer per (stage, dt) entry, and per-entry arenas whose
// addresses never move once published.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <thread>
#include <vector>

#include "mapping/program_cache.h"

namespace wavepim::mapping {
namespace {

TEST(ProgramCacheConcurrency, ParallelIntegrationLookupsAreStable) {
  const Problem problem{dg::ProblemKind::Acoustic, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, mesh::Boundary::Periodic);
  const ElementSetup setup(problem, ExpansionMode::None, mesh.element_size());
  ProgramCache cache(setup, mesh, nullptr, nullptr);

  constexpr int kThreads = 8;
  constexpr int kIters = 50;
  constexpr int kStages = 5;
  const std::array<float, 3> dts = {1.0e-3f, 2.0e-4f, 5.0e-5f};

  // First publisher wins; every later reader must see the same entry
  // address and instruction count — entries never move or re-lower.
  std::array<std::atomic<const void*>, kStages * 3> first_seen{};
  std::array<std::atomic<std::uint32_t>, kStages * 3> first_count{};
  std::atomic<int> mismatches{0};

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int iter = 0; iter < kIters; ++iter) {
        // Stagger the access order per thread so every entry sees a
        // cold-start race from several threads at least once.
        for (int k = 0; k < kStages * 3; ++k) {
          const int slot = (k + t) % (kStages * 3);
          const int stage = slot % kStages;
          const float dt = dts[static_cast<std::size_t>(slot / kStages)];
          const auto& program = cache.integration(stage, dt);
          if (program.stream.count == 0 ||
              program.arena.num_instructions() != program.stream.count) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const void* addr = &program;
          const void* expected = nullptr;
          if (!first_seen[static_cast<std::size_t>(slot)]
                   .compare_exchange_strong(expected, addr)) {
            if (expected != addr) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          } else {
            first_count[static_cast<std::size_t>(slot)].store(
                program.stream.count);
          }
          const std::uint32_t count =
              first_count[static_cast<std::size_t>(slot)].load();
          if (count != 0 && count != program.stream.count) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(mismatches.load(), 0);

  // All entries distinct and correctly keyed after the storm.
  for (int stage = 0; stage < kStages; ++stage) {
    for (const float dt : dts) {
      const auto& a = cache.integration(stage, dt);
      const auto& b = cache.integration(stage, dt);
      EXPECT_EQ(&a, &b);
      EXPECT_GT(a.stream.count, 0u);
    }
  }
}

}  // namespace
}  // namespace wavepim::mapping
