#include "mapping/batch_schedule.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.h"

namespace wavepim::mapping {
namespace {

using Kind = BatchStep::Kind;

/// Validates the universal invariants of a flux batch schedule: every
/// slice loaded and stored exactly once, every X/Z slice computed exactly
/// once, every inter-slice Y face computed exactly once with both slices
/// resident, and the residency never exceeding the window + 1 staging
/// slice.
void check_invariants(const BatchSchedule& s) {
  std::map<std::uint32_t, int> loads;
  std::map<std::uint32_t, int> stores;
  std::map<std::uint32_t, int> xz;
  std::map<std::uint32_t, int> y_faces;  // face s = between slice s, s+1
  std::set<std::uint32_t> resident;

  for (const auto& step : s.steps) {
    for (std::uint32_t i = step.first_slice; i <= step.last_slice; ++i) {
      switch (step.kind) {
        case Kind::LoadSlices:
          EXPECT_FALSE(resident.contains(i)) << "double load of " << i;
          resident.insert(i);
          loads[i]++;
          break;
        case Kind::StoreSlices:
          EXPECT_TRUE(resident.contains(i)) << "store of absent " << i;
          resident.erase(i);
          stores[i]++;
          break;
        case Kind::ComputeX:
        case Kind::ComputeZ:
          EXPECT_TRUE(resident.contains(i)) << "compute on absent " << i;
          if (step.kind == Kind::ComputeX) {
            xz[i]++;
          }
          break;
        case Kind::ComputeYMinus:
        case Kind::ComputeYPlus:
          break;  // handled below (pairwise)
      }
    }
    if (step.kind == Kind::ComputeYMinus || step.kind == Kind::ComputeYPlus) {
      for (std::uint32_t i = step.first_slice; i < step.last_slice; ++i) {
        EXPECT_TRUE(resident.contains(i) && resident.contains(i + 1))
            << "Y face " << i << " without both slices resident";
        y_faces[i]++;
      }
    }
    EXPECT_LE(resident.size(), s.resident_slices + 1)
        << "window + staging slice exceeded";
  }

  EXPECT_TRUE(resident.empty()) << "slices left on chip at the end";
  for (std::uint32_t i = 0; i < s.num_slices; ++i) {
    EXPECT_EQ(loads[i], 1) << "slice " << i;
    EXPECT_EQ(stores[i], 1) << "slice " << i;
    EXPECT_EQ(xz[i], 1) << "slice " << i;
  }
  for (std::uint32_t f = 0; f + 1 < s.num_slices; ++f) {
    EXPECT_EQ(y_faces[f], 1) << "Y face " << f;
  }
}

TEST(BatchSchedule, PaperExampleLevel5On2GB) {
  // Fig. 7: 32 slices, 16 resident.
  const auto s = build_flux_batch_schedule(32, 16);
  check_invariants(s);
  EXPECT_EQ(s.peak_resident(), 17u);  // window + staging slice
  EXPECT_EQ(s.total_loads(), 32u);    // each slice loaded exactly once
  // Two windows: exactly the twelve steps of Fig. 7.
  EXPECT_EQ(s.steps.size(), 12u);
  EXPECT_EQ(s.steps[0].kind, Kind::LoadSlices);
  EXPECT_EQ(s.steps[1].kind, Kind::ComputeX);
  EXPECT_EQ(s.steps[2].kind, Kind::ComputeZ);
  EXPECT_EQ(s.steps[3].kind, Kind::ComputeYMinus);
  EXPECT_EQ(s.steps[4].kind, Kind::LoadSlices);  // stage slice 16
  EXPECT_EQ(s.steps[4].first_slice, 16u);
  EXPECT_EQ(s.steps[5].kind, Kind::ComputeYPlus);
}

TEST(BatchSchedule, SingleWindowWhenEverythingFits) {
  const auto s = build_flux_batch_schedule(16, 16);
  check_invariants(s);
  EXPECT_EQ(s.peak_resident(), 16u);
  // load, X, Z, Y, store.
  EXPECT_EQ(s.steps.size(), 5u);
}

TEST(BatchSchedule, ExtremeOneSliceWindow) {
  const auto s = build_flux_batch_schedule(8, 1);
  check_invariants(s);
  EXPECT_EQ(s.peak_resident(), 2u);
}

class BatchScheduleSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BatchScheduleSweep, InvariantsHold) {
  const auto [slices, resident] = GetParam();
  const auto s = build_flux_batch_schedule(slices, resident);
  check_invariants(s);
  EXPECT_EQ(s.total_loads(), static_cast<std::uint32_t>(slices));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BatchScheduleSweep,
    ::testing::Combine(::testing::Values(4, 8, 32, 33, 7),
                       ::testing::Values(1, 2, 3, 5, 16, 100)));

TEST(BatchSchedule, FromProblemConfig) {
  const Problem problem{dg::ProblemKind::ElasticRiemann, 5, 8};
  const auto config = choose_config(problem, pim::chip_512mb());
  const auto s = build_flux_batch_schedule(problem, config);
  check_invariants(s);
  EXPECT_EQ(s.resident_slices, 1u);  // 32 batches of one slice
}

TEST(BatchSchedule, StepDescriptionsAreHuman) {
  const auto s = build_flux_batch_schedule(32, 16);
  EXPECT_EQ(s.steps[0].describe(), "load slices 0..15 to PIM");
  EXPECT_NE(s.steps[1].describe().find("X axis"), std::string::npos);
  EXPECT_NE(s.steps[4].describe(), "");
}

TEST(BatchSchedule, RejectsDegenerateInputs) {
  EXPECT_THROW((void)build_flux_batch_schedule(0, 4), PreconditionError);
  EXPECT_THROW((void)build_flux_batch_schedule(4, 0), PreconditionError);
}

}  // namespace
}  // namespace wavepim::mapping
