#include "mapping/batch_schedule.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "common/error.h"
#include "mapping/config.h"
#include "pim/params.h"

namespace wavepim::mapping {
namespace {

using Kind = BatchStep::Kind;

/// Validates the universal invariants of a flux batch schedule under the
/// per-element-face semantics: a Compute step over [first..last] applies
/// that face program to EVERY slice in the range.
///
///  - every slice is loaded and stored exactly once (periodic batching
///    restages slice 0 once more for the wrap pairing),
///  - every slice's X and Z fluxes run exactly once while resident,
///  - every slice's Y- and Y+ faces run exactly once, with the paired
///    neighbour slice resident at that moment (wrap neighbour for
///    periodic edge slices; reflective edge faces need only the slice
///    itself),
///  - residency never exceeds the window plus one staging slice,
///  - per slice the faces run in the canonical element order
///    Y-, X, Z, Y+ — except periodic slice 0, whose Y- defers to the
///    wrap step (X, Z, Y+, Y-),
///  - the chip is empty when the schedule retires.
void check_invariants(const BatchSchedule& s, bool periodic) {
  const std::uint32_t n = s.num_slices;
  const bool batching = s.resident_slices < n;
  std::map<std::uint32_t, int> loads;
  std::map<std::uint32_t, int> stores;
  std::map<std::uint32_t, int> x_axis;
  std::map<std::uint32_t, int> z_axis;
  std::map<std::uint32_t, int> y_minus;
  std::map<std::uint32_t, int> y_plus;
  std::map<std::uint32_t, std::size_t> ym_at, x_at, z_at, yp_at;
  std::set<std::uint32_t> resident;

  for (std::size_t idx = 0; idx < s.steps.size(); ++idx) {
    const auto& step = s.steps[idx];
    for (std::uint32_t i = step.first_slice; i <= step.last_slice; ++i) {
      switch (step.kind) {
        case Kind::LoadSlices:
          EXPECT_FALSE(resident.contains(i)) << "double load of " << i;
          resident.insert(i);
          loads[i]++;
          break;
        case Kind::StoreSlices:
          EXPECT_TRUE(resident.contains(i)) << "store of absent " << i;
          resident.erase(i);
          stores[i]++;
          break;
        case Kind::ComputeX:
          EXPECT_TRUE(resident.contains(i)) << "X on absent " << i;
          x_axis[i]++;
          x_at[i] = idx;
          break;
        case Kind::ComputeZ:
          EXPECT_TRUE(resident.contains(i)) << "Z on absent " << i;
          z_axis[i]++;
          z_at[i] = idx;
          break;
        case Kind::ComputeYMinus: {
          EXPECT_TRUE(resident.contains(i)) << "Y- on absent " << i;
          if (i > 0) {
            EXPECT_TRUE(resident.contains(i - 1))
                << "Y- of " << i << " without slice " << i - 1;
          } else if (periodic) {
            EXPECT_TRUE(resident.contains(n - 1))
                << "wrap Y- of 0 without slice " << n - 1;
          }
          y_minus[i]++;
          ym_at[i] = idx;
          break;
        }
        case Kind::ComputeYPlus: {
          EXPECT_TRUE(resident.contains(i)) << "Y+ on absent " << i;
          if (i + 1 < n) {
            EXPECT_TRUE(resident.contains(i + 1))
                << "Y+ of " << i << " without slice " << i + 1;
          } else if (periodic) {
            EXPECT_TRUE(resident.contains(0))
                << "wrap Y+ of " << i << " without slice 0";
          }
          y_plus[i]++;
          yp_at[i] = idx;
          break;
        }
      }
    }
    EXPECT_LE(resident.size(), s.resident_slices + 1)
        << "window + staging slice exceeded";
  }

  EXPECT_TRUE(resident.empty()) << "slices left on chip at the end";
  for (std::uint32_t i = 0; i < n; ++i) {
    const int expected_moves = (periodic && batching && i == 0) ? 2 : 1;
    EXPECT_EQ(loads[i], expected_moves) << "slice " << i;
    EXPECT_EQ(stores[i], expected_moves) << "slice " << i;
    EXPECT_EQ(x_axis[i], 1) << "slice " << i;
    EXPECT_EQ(z_axis[i], 1) << "slice " << i;
    EXPECT_EQ(y_minus[i], 1) << "slice " << i;
    EXPECT_EQ(y_plus[i], 1) << "slice " << i;
    // Canonical per-element face order.
    if (periodic && i == 0) {
      EXPECT_LT(x_at[i], z_at[i]) << "slice " << i;
      EXPECT_LT(z_at[i], yp_at[i]) << "slice " << i;
      EXPECT_LT(yp_at[i], ym_at[i]) << "slice 0 Y- must defer to wrap";
    } else {
      EXPECT_LT(ym_at[i], x_at[i]) << "slice " << i;
      EXPECT_LT(x_at[i], z_at[i]) << "slice " << i;
      EXPECT_LT(z_at[i], yp_at[i]) << "slice " << i;
    }
  }
  const std::uint32_t moves = n + ((periodic && batching) ? 1u : 0u);
  EXPECT_EQ(s.total_loads(), moves);
  EXPECT_EQ(s.total_stores(), moves);
}

TEST(BatchSchedule, PaperExampleLevel5On2GB) {
  // Fig. 7: 32 slices, 16 resident, two windows.
  const auto s = build_flux_batch_schedule(32, 16);
  check_invariants(s, /*periodic=*/false);
  EXPECT_EQ(s.peak_resident(), 17u);  // window + staging slice
  EXPECT_EQ(s.total_loads(), 32u);    // each slice loaded exactly once
  ASSERT_EQ(s.steps.size(), 15u);

  auto expect_step = [&](std::size_t i, Kind kind, std::uint32_t first,
                         std::uint32_t last) {
    EXPECT_EQ(s.steps[i].kind, kind) << "step " << i;
    EXPECT_EQ(s.steps[i].first_slice, first) << "step " << i;
    EXPECT_EQ(s.steps[i].last_slice, last) << "step " << i;
  };
  // Window 1 [0..15] plus the crossing face into slice 16 (Fig. 7 steps
  // 1-7).
  expect_step(0, Kind::LoadSlices, 0, 15);
  expect_step(1, Kind::ComputeYMinus, 0, 15);
  expect_step(2, Kind::ComputeX, 0, 15);
  expect_step(3, Kind::ComputeZ, 0, 15);
  expect_step(4, Kind::ComputeYPlus, 0, 14);
  expect_step(5, Kind::LoadSlices, 16, 16);
  expect_step(6, Kind::ComputeYPlus, 15, 15);
  expect_step(7, Kind::ComputeYMinus, 16, 16);
  expect_step(8, Kind::StoreSlices, 0, 15);
  // Window 2 [16..31]: slice 16 is already staged; the final slice's Y+
  // is a reflective boundary face and resolves in-window.
  expect_step(9, Kind::LoadSlices, 17, 31);
  expect_step(10, Kind::ComputeYMinus, 17, 31);
  expect_step(11, Kind::ComputeX, 16, 31);
  expect_step(12, Kind::ComputeZ, 16, 31);
  expect_step(13, Kind::ComputeYPlus, 16, 31);
  expect_step(14, Kind::StoreSlices, 16, 31);
}

TEST(BatchSchedule, SingleWindowWhenEverythingFits) {
  const auto s = build_flux_batch_schedule(16, 64);
  check_invariants(s, /*periodic=*/false);
  EXPECT_EQ(s.resident_slices, 16u);  // clamped to the mesh
  EXPECT_EQ(s.peak_resident(), 16u);
  ASSERT_EQ(s.steps.size(), 6u);
  EXPECT_EQ(s.steps[0].kind, Kind::LoadSlices);
  EXPECT_EQ(s.steps[1].kind, Kind::ComputeYMinus);
  EXPECT_EQ(s.steps[2].kind, Kind::ComputeX);
  EXPECT_EQ(s.steps[3].kind, Kind::ComputeZ);
  EXPECT_EQ(s.steps[4].kind, Kind::ComputeYPlus);
  EXPECT_EQ(s.steps[5].kind, Kind::StoreSlices);
}

TEST(BatchSchedule, SingleWindowPeriodicDefersSliceZeroYMinus) {
  const auto s = build_flux_batch_schedule(16, 16, /*periodic=*/true);
  check_invariants(s, /*periodic=*/true);
  EXPECT_EQ(s.peak_resident(), 16u);  // no staging slice when resident
  EXPECT_EQ(s.total_loads(), 16u);    // wrap needs no restaging
  ASSERT_EQ(s.steps.size(), 8u);
  EXPECT_EQ(s.steps[0].kind, Kind::LoadSlices);
  EXPECT_EQ(s.steps[1].kind, Kind::ComputeYMinus);
  EXPECT_EQ(s.steps[1].first_slice, 1u);  // slice 0 defers to the wrap
  EXPECT_EQ(s.steps[2].kind, Kind::ComputeX);
  EXPECT_EQ(s.steps[3].kind, Kind::ComputeZ);
  EXPECT_EQ(s.steps[4].kind, Kind::ComputeYPlus);
  EXPECT_EQ(s.steps[4].last_slice, 14u);  // slice 15 waits for the wrap
  EXPECT_EQ(s.steps[5].kind, Kind::ComputeYPlus);
  EXPECT_EQ(s.steps[5].first_slice, 15u);
  EXPECT_EQ(s.steps[6].kind, Kind::ComputeYMinus);
  EXPECT_EQ(s.steps[6].first_slice, 0u);
  EXPECT_EQ(s.steps[7].kind, Kind::StoreSlices);
}

TEST(BatchSchedule, PeriodicWrapRestagesSliceZero) {
  const auto s = build_flux_batch_schedule(32, 16, /*periodic=*/true);
  check_invariants(s, /*periodic=*/true);
  // Slice 0 is stored un-integrated by the first window and restaged at
  // the wrap, so it moves twice.
  EXPECT_EQ(s.total_loads(), 33u);
  EXPECT_EQ(s.total_stores(), 33u);
  const auto& tail = s.steps;
  ASSERT_GE(tail.size(), 5u);
  const std::size_t k = tail.size();
  EXPECT_EQ(tail[k - 5].kind, Kind::LoadSlices);
  EXPECT_EQ(tail[k - 5].first_slice, 0u);
  EXPECT_EQ(tail[k - 4].kind, Kind::ComputeYPlus);
  EXPECT_EQ(tail[k - 4].first_slice, 31u);
  EXPECT_EQ(tail[k - 3].kind, Kind::ComputeYMinus);
  EXPECT_EQ(tail[k - 3].first_slice, 0u);
  EXPECT_EQ(tail[k - 2].kind, Kind::StoreSlices);
  EXPECT_EQ(tail[k - 2].first_slice, 0u);
  EXPECT_EQ(tail[k - 1].kind, Kind::StoreSlices);
  EXPECT_EQ(tail[k - 1].first_slice, 16u);
}

TEST(BatchSchedule, ExtremeOneSliceWindow) {
  const auto s = build_flux_batch_schedule(8, 1);
  check_invariants(s, /*periodic=*/false);
  EXPECT_EQ(s.peak_resident(), 2u);  // window + staging slice
  EXPECT_EQ(s.total_loads(), 8u);
}

class BatchScheduleSweep
    : public testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t, bool>> {};

TEST_P(BatchScheduleSweep, InvariantsHold) {
  const auto [slices, resident, periodic] = GetParam();
  const auto s = build_flux_batch_schedule(slices, resident, periodic);
  check_invariants(s, periodic);
  EXPECT_EQ(s.num_slices, slices);
  EXPECT_EQ(s.resident_slices, std::min(resident, slices));
  if (s.resident_slices < slices) {
    EXPECT_EQ(s.peak_resident(), s.resident_slices + 1);
  } else {
    EXPECT_EQ(s.peak_resident(), slices);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BatchScheduleSweep,
                         testing::Combine(testing::Values(4u, 8u, 32u, 33u,
                                                          7u),
                                          testing::Values(1u, 2u, 3u, 5u,
                                                          16u, 100u),
                                          testing::Bool()));

TEST(BatchSchedule, FromProblemConfig) {
  Problem problem;
  problem.kind = dg::ProblemKind::ElasticRiemann;
  problem.refinement_level = 5;
  const auto chip = pim::chip_512mb();
  const auto config = choose_config(problem, chip);
  ASSERT_TRUE(config.batched);
  const auto s = build_flux_batch_schedule(problem, config);
  check_invariants(s, /*periodic=*/false);
  EXPECT_EQ(s.num_slices, 32u);
  EXPECT_EQ(s.resident_slices, config.slices_per_batch);
}

TEST(BatchSchedule, StepDescriptionsAreHuman) {
  const auto s = build_flux_batch_schedule(32, 16);
  EXPECT_EQ(s.steps[0].describe(), "load slices 0..15 to PIM");
  EXPECT_EQ(s.steps[2].describe(), "flux of slices 0..15 - X axis (-1, +1)");
  EXPECT_EQ(s.steps[7].describe(), "flux of slice 16 - Y face, normal -1");
  EXPECT_EQ(s.steps[8].describe(), "store slices 0..15 to off-chip memory");
}

TEST(BatchSchedule, RejectsDegenerateInputs) {
  EXPECT_THROW(build_flux_batch_schedule(0, 4), PreconditionError);
  EXPECT_THROW(build_flux_batch_schedule(8, 0), PreconditionError);
}

}  // namespace
}  // namespace wavepim::mapping
