// Guards the parallel execution contract of PimSimulation: the functional
// simulator distributes whole elements across ThreadPool workers, and the
// schedule (element-ordered transfer merge, two-phase flux with pairing-
// settled neighbour charges, block-id-ordered ledger drain) must make the
// nodal fields AND every cost channel bit-identical for any worker count.
#include <gtest/gtest.h>

#include <vector>

#include "mapping/simulation.h"

namespace wavepim::mapping {
namespace {

using dg::ProblemKind;
using mesh::Boundary;

struct RunResult {
  std::vector<float> field;
  PimSimulation::Costs costs;
};

/// Runs `steps` time steps at the given worker count and returns the final
/// nodal field plus the accumulated cost report.
template <typename MakeSim>
RunResult run_at(MakeSim&& make_sim, std::size_t threads, int steps) {
  auto sim = make_sim();
  sim->set_num_threads(threads);
  dg::Field u(sim->mesh().num_elements(), sim->setup().problem().num_vars(),
              static_cast<std::size_t>(sim->setup().ref().num_nodes()));
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (std::size_t v = 0; v < u.num_vars(); ++v) {
      for (std::size_t n = 0; n < u.nodes_per_element(); ++n) {
        u.value(e, v, n) =
            0.01f * static_cast<float>((e * 131 + v * 17 + n * 3) % 97) -
            0.25f;
      }
    }
  }
  sim->load_state(u);
  for (int i = 0; i < steps; ++i) {
    sim->step(2.0e-4);
  }
  const auto out = sim->read_state();
  return {{out.flat().begin(), out.flat().end()}, sim->costs()};
}

void expect_identical(const RunResult& a, const RunResult& b,
                      std::size_t threads) {
  ASSERT_EQ(a.field.size(), b.field.size());
  for (std::size_t i = 0; i < a.field.size(); ++i) {
    ASSERT_EQ(a.field[i], b.field[i])
        << "field word " << i << " diverged at " << threads << " threads";
  }
  const auto expect_cost_eq = [&](const pim::OpCost& x, const pim::OpCost& y,
                                  const char* channel) {
    EXPECT_EQ(x.time.value(), y.time.value())
        << channel << " time diverged at " << threads << " threads";
    EXPECT_EQ(x.energy.value(), y.energy.value())
        << channel << " energy diverged at " << threads << " threads";
  };
  expect_cost_eq(a.costs.volume, b.costs.volume, "volume");
  expect_cost_eq(a.costs.flux, b.costs.flux, "flux");
  expect_cost_eq(a.costs.integration, b.costs.integration, "integration");
  expect_cost_eq(a.costs.network, b.costs.network, "network");
}

/// Thread counts required by the contract: serial, two workers, and
/// whatever the hardware offers (0 = the global pool), plus a mid count
/// that still beats the inline-execution threshold on a 64-element mesh.
const std::size_t kThreadCounts[] = {2, 4, 8, 0};

TEST(ParallelDeterminism, AcousticLevel2MatchesSerialBitExact) {
  // Level 2: 64 elements, enough for real work distribution (the pool
  // parallelises once n >= 2 * workers).
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 2, 3}, ExpansionMode::None,
        pim::chip_512mb());
  };
  const RunResult serial = run_at(make, 1, 2);
  for (std::size_t threads : kThreadCounts) {
    expect_identical(serial, run_at(make, threads, 2), threads);
  }
}

TEST(ParallelDeterminism, ExpandedAcousticMatchesSerialBitExact) {
  // The 4-block expansion exercises intra-element transfers from multiple
  // groups plus multi-block inter-element pulls.
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 2, 3}, ExpansionMode::Acoustic4,
        pim::chip_512mb());
  };
  const RunResult serial = run_at(make, 1, 1);
  for (std::size_t threads : kThreadCounts) {
    expect_identical(serial, run_at(make, threads, 1), threads);
  }
}

TEST(ParallelDeterminism, ElasticReflectiveMatchesSerialBitExact) {
  // Reflective walls drop boundary-face exchanges from the pairing
  // schedule; elastic 3-block mode keeps the ledgers multi-group.
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::ElasticCentral, 1, 3}, ExpansionMode::Elastic3,
        pim::chip_512mb(), Boundary::Reflective);
  };
  const RunResult serial = run_at(make, 1, 2);
  for (std::size_t threads : kThreadCounts) {
    expect_identical(serial, run_at(make, threads, 2), threads);
  }
}

TEST(ParallelDeterminism, HeterogeneousAcousticMatchesSerialBitExact) {
  // Per-element coefficient overrides follow the element, not the worker.
  const auto make = [] {
    mesh::StructuredMesh mesh(2, 1.0, Boundary::Periodic);
    dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
    for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
      if (mesh.coords_of(e)[2] >= 2) {
        mats.set(e, {.kappa = 4.0, .rho = 2.0});
      }
    }
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 2, 3}, ExpansionMode::None,
        pim::chip_512mb(), mats);
  };
  const RunResult serial = run_at(make, 1, 1);
  for (std::size_t threads : kThreadCounts) {
    expect_identical(serial, run_at(make, threads, 1), threads);
  }
}

TEST(ParallelDeterminism, SingleElementSelfNeighbourIsStable) {
  // Level 0 periodic: the element is its own neighbour on all six faces,
  // the degenerate case of the pairing schedule.
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 0, 3}, ExpansionMode::None,
        pim::chip_512mb());
  };
  const RunResult serial = run_at(make, 1, 2);
  for (std::size_t threads : kThreadCounts) {
    expect_identical(serial, run_at(make, threads, 2), threads);
  }
}

TEST(ParallelDeterminism, RepeatedRunsAgree) {
  // Same worker count twice: guards against scheduling-dependent state
  // leaking across runs (e.g. unordered ledger merges).
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 2, 3}, ExpansionMode::None,
        pim::chip_512mb());
  };
  expect_identical(run_at(make, 3, 1), run_at(make, 3, 1), 3);
}

}  // namespace
}  // namespace wavepim::mapping
