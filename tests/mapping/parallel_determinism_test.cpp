// Guards the parallel execution contract of PimSimulation: the functional
// simulator distributes whole elements across ThreadPool workers, and the
// schedule (element-ordered transfer merge, two-phase flux with pairing-
// settled neighbour charges, block-id-ordered ledger drain) must make the
// nodal fields AND every cost channel bit-identical for any worker count.
// The same harness doubles as the shape-class cache conformance suite:
// replaying cached streams must match direct emission bit-for-bit — fields,
// cycle/energy channels, and interconnect statistics — at every worker
// count (the CacheConformance tests below).
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "mapping/simulation.h"

namespace wavepim::mapping {
namespace {

using dg::ProblemKind;
using mesh::Boundary;

struct RunResult {
  std::vector<float> field;
  PimSimulation::Costs costs;
  PimSimulation::NetStats net;
};

/// Runs `steps` time steps at the given worker count and returns the final
/// nodal field plus the accumulated cost report. `cache` forces the
/// program cache on or off; nullopt keeps the process default, so the
/// pre-existing determinism tests exercise whichever path the CI lane
/// selects via WAVEPIM_PROGRAM_CACHE.
template <typename MakeSim>
RunResult run_at(MakeSim&& make_sim, std::size_t threads, int steps,
                 std::optional<bool> cache = std::nullopt) {
  auto sim = make_sim();
  sim->set_num_threads(threads);
  if (cache.has_value()) {
    sim->set_program_cache(*cache);
  }
  dg::Field u(sim->mesh().num_elements(), sim->setup().problem().num_vars(),
              static_cast<std::size_t>(sim->setup().ref().num_nodes()));
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (std::size_t v = 0; v < u.num_vars(); ++v) {
      for (std::size_t n = 0; n < u.nodes_per_element(); ++n) {
        u.value(e, v, n) =
            0.01f * static_cast<float>((e * 131 + v * 17 + n * 3) % 97) -
            0.25f;
      }
    }
  }
  sim->load_state(u);
  for (int i = 0; i < steps; ++i) {
    sim->step(2.0e-4);
  }
  const auto out = sim->read_state();
  return {{out.flat().begin(), out.flat().end()}, sim->costs(),
          sim->net_stats()};
}

void expect_identical(const RunResult& a, const RunResult& b,
                      std::size_t threads) {
  ASSERT_EQ(a.field.size(), b.field.size());
  for (std::size_t i = 0; i < a.field.size(); ++i) {
    ASSERT_EQ(a.field[i], b.field[i])
        << "field word " << i << " diverged at " << threads << " threads";
  }
  const auto expect_cost_eq = [&](const pim::OpCost& x, const pim::OpCost& y,
                                  const char* channel) {
    EXPECT_EQ(x.time.value(), y.time.value())
        << channel << " time diverged at " << threads << " threads";
    EXPECT_EQ(x.energy.value(), y.energy.value())
        << channel << " energy diverged at " << threads << " threads";
  };
  expect_cost_eq(a.costs.volume, b.costs.volume, "volume");
  expect_cost_eq(a.costs.flux, b.costs.flux, "flux");
  expect_cost_eq(a.costs.integration, b.costs.integration, "integration");
  expect_cost_eq(a.costs.network, b.costs.network, "network");
  EXPECT_EQ(a.net.schedules, b.net.schedules)
      << "network schedule count diverged at " << threads << " threads";
  EXPECT_EQ(a.net.transfers, b.net.transfers)
      << "transfer count diverged at " << threads << " threads";
  EXPECT_EQ(a.net.words, b.net.words)
      << "transferred words diverged at " << threads << " threads";
  EXPECT_EQ(a.net.serial_sum.value(), b.net.serial_sum.value())
      << "serial latency sum diverged at " << threads << " threads";
}

/// Thread counts required by the contract: serial, two workers, and
/// whatever the hardware offers (0 = the global pool), plus a mid count
/// that still beats the inline-execution threshold on a 64-element mesh.
const std::size_t kThreadCounts[] = {2, 4, 8, 0};

TEST(ParallelDeterminism, AcousticLevel2MatchesSerialBitExact) {
  // Level 2: 64 elements, enough for real work distribution (the pool
  // parallelises once n >= 2 * workers).
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 2, 3}, ExpansionMode::None,
        pim::chip_512mb());
  };
  const RunResult serial = run_at(make, 1, 2);
  for (std::size_t threads : kThreadCounts) {
    expect_identical(serial, run_at(make, threads, 2), threads);
  }
}

TEST(ParallelDeterminism, ExpandedAcousticMatchesSerialBitExact) {
  // The 4-block expansion exercises intra-element transfers from multiple
  // groups plus multi-block inter-element pulls.
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 2, 3}, ExpansionMode::Acoustic4,
        pim::chip_512mb());
  };
  const RunResult serial = run_at(make, 1, 1);
  for (std::size_t threads : kThreadCounts) {
    expect_identical(serial, run_at(make, threads, 1), threads);
  }
}

TEST(ParallelDeterminism, ElasticReflectiveMatchesSerialBitExact) {
  // Reflective walls drop boundary-face exchanges from the pairing
  // schedule; elastic 3-block mode keeps the ledgers multi-group.
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::ElasticCentral, 1, 3}, ExpansionMode::Elastic3,
        pim::chip_512mb(), Boundary::Reflective);
  };
  const RunResult serial = run_at(make, 1, 2);
  for (std::size_t threads : kThreadCounts) {
    expect_identical(serial, run_at(make, threads, 2), threads);
  }
}

TEST(ParallelDeterminism, HeterogeneousAcousticMatchesSerialBitExact) {
  // Per-element coefficient overrides follow the element, not the worker.
  const auto make = [] {
    mesh::StructuredMesh mesh(2, 1.0, Boundary::Periodic);
    dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
    for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
      if (mesh.coords_of(e)[2] >= 2) {
        mats.set(e, {.kappa = 4.0, .rho = 2.0});
      }
    }
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 2, 3}, ExpansionMode::None,
        pim::chip_512mb(), mats);
  };
  const RunResult serial = run_at(make, 1, 1);
  for (std::size_t threads : kThreadCounts) {
    expect_identical(serial, run_at(make, threads, 1), threads);
  }
}

TEST(ParallelDeterminism, SingleElementSelfNeighbourIsStable) {
  // Level 0 periodic: the element is its own neighbour on all six faces,
  // the degenerate case of the pairing schedule.
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 0, 3}, ExpansionMode::None,
        pim::chip_512mb());
  };
  const RunResult serial = run_at(make, 1, 2);
  for (std::size_t threads : kThreadCounts) {
    expect_identical(serial, run_at(make, threads, 2), threads);
  }
}

TEST(ParallelDeterminism, RepeatedRunsAgree) {
  // Same worker count twice: guards against scheduling-dependent state
  // leaking across runs (e.g. unordered ledger merges).
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 2, 3}, ExpansionMode::None,
        pim::chip_512mb());
  };
  expect_identical(run_at(make, 3, 1), run_at(make, 3, 1), 3);
}

// ---- Shape-class cache conformance ----------------------------------------
// Cache on vs off must agree bit-for-bit: nodal fields, every cost
// channel (cycle time + energy) and the interconnect statistics, at
// serial, mid, and hardware worker counts. The uncached serial run is
// the single reference all six combinations compare against.
template <typename MakeSim>
void expect_cache_conformance(MakeSim&& make, int steps) {
  const RunResult reference = run_at(make, 1, steps, /*cache=*/false);
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{0}}) {
    expect_identical(reference, run_at(make, threads, steps, false), threads);
    expect_identical(reference, run_at(make, threads, steps, true), threads);
  }
}

TEST(CacheConformance, UniformPeriodic) {
  // One shape class (uniform coefficients, no boundary faces): the
  // maximal-reuse case.
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 2, 3}, ExpansionMode::None,
        pim::chip_512mb());
  };
  expect_cache_conformance(make, 2);
}

TEST(CacheConformance, HeterogeneousAcoustic) {
  // Two material layers: the cache must key streams by the interned
  // per-element (and per-face-pair) coefficient sets.
  const auto make = [] {
    mesh::StructuredMesh mesh(2, 1.0, Boundary::Periodic);
    dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
    for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
      if (mesh.coords_of(e)[2] >= 2) {
        mats.set(e, {.kappa = 4.0, .rho = 2.0});
      }
    }
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 2, 3}, ExpansionMode::None,
        pim::chip_512mb(), mats);
  };
  expect_cache_conformance(make, 1);
}

TEST(CacheConformance, ReflectiveElastic) {
  // Reflective walls split elements into boundary-pattern classes whose
  // wall faces emit no neighbour pulls.
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::ElasticCentral, 1, 3}, ExpansionMode::Elastic3,
        pim::chip_512mb(), Boundary::Reflective);
  };
  expect_cache_conformance(make, 2);
}

TEST(CacheConformance, SelfNeighbour) {
  // Level 0 periodic: one element that is its own neighbour on all six
  // faces — the relocatable streams carry no neighbour identity, so the
  // degenerate resolution happens entirely in the sink.
  const auto make = [] {
    return std::make_unique<PimSimulation>(
        Problem{ProblemKind::Acoustic, 0, 3}, ExpansionMode::None,
        pim::chip_512mb());
  };
  expect_cache_conformance(make, 2);
}

TEST(CacheConformance, ClassCountsMatchProblemStructure) {
  // The cache must actually collapse equivalent elements: a uniform
  // periodic mesh is a single class; a reflective level-2 mesh has one
  // class per boundary-face pattern (3^3 corner/edge/face/interior
  // combinations = 27); a two-layer medium splits classes by material.
  const auto classes_of = [](PimSimulation& sim) {
    sim.set_program_cache(true);  // force on regardless of the CI lane
    sim.step(1.0e-4);             // builds the cache on the first step
    return sim.program_cache()->num_classes();
  };

  PimSimulation uniform(Problem{ProblemKind::Acoustic, 2, 3},
                        ExpansionMode::None, pim::chip_512mb());
  EXPECT_EQ(classes_of(uniform), 1u);

  PimSimulation reflective(Problem{ProblemKind::Acoustic, 2, 3},
                           ExpansionMode::None, pim::chip_512mb(),
                           Boundary::Reflective);
  EXPECT_EQ(classes_of(reflective), 27u);

  mesh::StructuredMesh mesh(2, 1.0, Boundary::Periodic);
  dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    if (mesh.coords_of(e)[2] >= 2) {
      mats.set(e, {.kappa = 4.0, .rho = 2.0});
    }
  }
  PimSimulation layered(Problem{ProblemKind::Acoustic, 2, 3},
                        ExpansionMode::None, pim::chip_512mb(), mats);
  // Three z-bands of face-pair classes: inside the lower material,
  // inside the upper, and the two straddling interfaces (the periodic
  // wrap makes the top-bottom seam an interface too).
  EXPECT_GT(classes_of(layered), 1u);
  EXPECT_LE(classes_of(layered), 8u);
}

}  // namespace
}  // namespace wavepim::mapping
