#include "mapping/estimator.h"

#include <gtest/gtest.h>

namespace wavepim::mapping {
namespace {

using dg::ProblemKind;

TEST(Estimator, UsesTable5Configuration) {
  Estimator e({ProblemKind::Acoustic, 4, 8}, pim::chip_2gb());
  EXPECT_EQ(e.config().label(), "Ep");
  Estimator b({ProblemKind::Acoustic, 5, 8}, pim::chip_512mb());
  EXPECT_EQ(b.config().label(), "B");
}

TEST(Estimator, PipeliningHelps) {
  Estimator e({ProblemKind::Acoustic, 4, 8}, pim::chip_512mb());
  const auto& est = e.estimate();
  EXPECT_LT(est.step_time, est.step_time_unpipelined);
  // Paper §7.5: without pipelining the throughput drops to ~0.77x, i.e.
  // the pipelined schedule is ~1.1-1.6x faster.
  EXPECT_GT(est.pipeline_speedup(), 1.05);
  EXPECT_LT(est.pipeline_speedup(), 2.0);
}

TEST(Estimator, SegmentsArePositive) {
  Estimator e({ProblemKind::ElasticRiemann, 4, 8}, pim::chip_2gb());
  const auto& seg = e.estimate().segments;
  EXPECT_GT(seg.volume.value(), 0.0);
  EXPECT_GT(seg.fetch_minus.value(), 0.0);
  EXPECT_GT(seg.fetch_plus.value(), 0.0);
  EXPECT_GT(seg.compute_minus.value(), 0.0);
  EXPECT_GT(seg.compute_plus.value(), 0.0);
  EXPECT_GT(seg.integration.value(), 0.0);
  EXPECT_GT(seg.host_preprocess.value(), 0.0);
}

TEST(Estimator, BatchingAddsHbmTraffic) {
  Estimator resident({ProblemKind::Acoustic, 4, 8}, pim::chip_512mb());
  Estimator batched({ProblemKind::Acoustic, 5, 8}, pim::chip_512mb());
  EXPECT_EQ(resident.estimate().hbm_bytes_per_step, 0u);
  EXPECT_GT(batched.estimate().hbm_bytes_per_step, 0u);
  EXPECT_GT(batched.estimate().hbm_time_per_step.value(), 0.0);
}

TEST(Estimator, HtreeBeatsBusOnFetch) {
  // Fig. 14: with intensive inter-block flux traffic the H-tree clearly
  // outperforms the bus.
  Estimator ht({ProblemKind::Acoustic, 4, 8},
               pim::chip_512mb(pim::Topology::HTree));
  Estimator bus({ProblemKind::Acoustic, 4, 8},
                pim::chip_512mb(pim::Topology::Bus));
  EXPECT_LT(ht.estimate().flux_inter_element.value(),
            bus.estimate().flux_inter_element.value());
  EXPECT_LT(ht.estimate().step_time, bus.estimate().step_time);
}

TEST(Estimator, ExpansionReducesStepTime) {
  // Acoustic_4 on 2 GB: naive vs expanded (the Table 5 choice).
  Estimator naive({ProblemKind::Acoustic, 4, 8}, pim::chip_2gb(),
                  {.force_expansion = ExpansionMode::None});
  Estimator expanded({ProblemKind::Acoustic, 4, 8}, pim::chip_2gb(),
                     {.force_expansion = ExpansionMode::Acoustic4});
  EXPECT_LT(expanded.estimate().step_time, naive.estimate().step_time);
}

TEST(Estimator, RiemannCostsMoreThanCentral) {
  Estimator central({ProblemKind::ElasticCentral, 4, 8}, pim::chip_8gb());
  Estimator riemann({ProblemKind::ElasticRiemann, 4, 8}, pim::chip_8gb());
  EXPECT_GT(riemann.estimate().segments.compute_minus.value(),
            central.estimate().segments.compute_minus.value());
  EXPECT_GT(riemann.estimate().step_time, central.estimate().step_time);
}

TEST(Estimator, LargerChipIsNotSlower) {
  Estimator small({ProblemKind::Acoustic, 5, 8}, pim::chip_512mb());
  Estimator large({ProblemKind::Acoustic, 5, 8}, pim::chip_16gb());
  EXPECT_LE(large.estimate().step_time, small.estimate().step_time);
}

TEST(Estimator, LargerChipBurnsMoreStaticPower) {
  // §7.4: small problems cannot exploit large chips and lose energy to
  // under-utilised resources.
  Estimator small({ProblemKind::Acoustic, 4, 8}, pim::chip_512mb());
  Estimator large({ProblemKind::Acoustic, 4, 8}, pim::chip_16gb());
  const double p_small = small.estimate().static_energy.value() /
                         small.estimate().step_time.value();
  const double p_large = large.estimate().static_energy.value() /
                         large.estimate().step_time.value();
  EXPECT_GT(p_large, 5.0 * p_small);
}

TEST(Estimator, EnergyComponentsSumToTotal) {
  Estimator e({ProblemKind::ElasticCentral, 4, 8}, pim::chip_2gb());
  const auto& est = e.estimate();
  const double sum = est.dynamic_energy.value() + est.static_energy.value() +
                     est.network_energy.value() + est.host_energy.value() +
                     est.hbm_energy.value();
  EXPECT_NEAR(est.step_energy.value(), sum, 1e-12 * sum);
}

TEST(Estimator, RunCostScalesLinearly) {
  Estimator e({ProblemKind::Acoustic, 4, 8}, pim::chip_2gb());
  const auto one = e.run_cost(1);
  const auto thousand = e.run_cost(1024);
  EXPECT_NEAR(thousand.time.value() / one.time.value(), 1024.0, 1e-6);
  EXPECT_NEAR(thousand.energy.value() / one.energy.value(), 1024.0, 1e-6);
}

TEST(Estimator, StageScheduleTimelineIsConsistent) {
  Estimator e({ProblemKind::Acoustic, 4, 8}, pim::chip_512mb());
  const auto& s = e.estimate().stage_schedule;
  ASSERT_EQ(s.timeline.size(), 7u);
  for (const auto& iv : s.timeline) {
    EXPECT_GE(iv.end.value(), iv.start.value());
    EXPECT_LE(iv.end.value(), s.total.value() + 1e-15);
  }
  // The pipelined overlaps: host and fetch(-1) start with volume.
  EXPECT_EQ(s.timeline[1].start.value(), 0.0);
  EXPECT_EQ(s.timeline[2].start.value(), 0.0);
}

}  // namespace
}  // namespace wavepim::mapping
