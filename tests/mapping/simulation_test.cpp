#include "mapping/simulation.h"

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "dg/solver.h"
#include "dg/sources.h"

namespace wavepim::mapping {
namespace {

using dg::ProblemKind;
using mesh::Boundary;

/// Runs CPU solver and PIM functional simulation side by side and returns
/// the relative L-inf error over the whole state, normalised by the global
/// field magnitude (per-variable normalisation would divide by zero for
/// identically-zero components like the transverse velocity of a plane
/// wave).
template <typename Solver>
double compare_pim_to_cpu(Solver& cpu, PimSimulation& pim, int steps) {
  const double dt = cpu.stable_dt();
  pim.load_state(cpu.state());
  for (int i = 0; i < steps; ++i) {
    cpu.step(dt);
    pim.step(dt);
  }
  const dg::Field got = pim.read_state();
  return relative_linf_error(got.flat(), cpu.state().flat());
}

TEST(PimSimulation, AcousticMatchesCpuSolverPeriodic) {
  const Problem problem{ProblemKind::Acoustic, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, Boundary::Periodic);
  dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
  dg::AcousticSolver cpu(mesh, std::move(mats),
                         {.n1d = 3, .flux = dg::FluxType::Upwind});
  init_acoustic_plane_wave(cpu, mesh::Axis::X, 1);

  PimSimulation pim(problem, ExpansionMode::None, pim::chip_512mb());
  EXPECT_LT(compare_pim_to_cpu(cpu, pim, 5), 1e-4);
}

TEST(PimSimulation, AcousticMatchesCpuSolverReflective) {
  const Problem problem{ProblemKind::Acoustic, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, Boundary::Reflective);
  dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
  dg::AcousticSolver cpu(mesh, std::move(mats),
                         {.n1d = 3, .flux = dg::FluxType::Upwind});
  init_acoustic_gaussian_pulse(cpu, {0.5, 0.5, 0.5}, 0.2, 1.0);

  PimSimulation pim(problem, ExpansionMode::None, pim::chip_512mb(),
                    Boundary::Reflective);
  EXPECT_LT(compare_pim_to_cpu(cpu, pim, 5), 1e-4);
}

TEST(PimSimulation, AcousticExpansionMatchesNaive) {
  // The 4-block expansion must compute the same fields as the one-block
  // layout (Fig. 8/9 correctness).
  const Problem problem{ProblemKind::Acoustic, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, Boundary::Periodic);
  dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
  dg::AcousticSolver cpu(mesh, std::move(mats),
                         {.n1d = 3, .flux = dg::FluxType::Upwind});
  init_acoustic_plane_wave(cpu, mesh::Axis::Y, 1);

  PimSimulation pim(problem, ExpansionMode::Acoustic4, pim::chip_512mb());
  EXPECT_LT(compare_pim_to_cpu(cpu, pim, 5), 1e-4);
}

TEST(PimSimulation, ElasticCentralMatchesCpuSolver) {
  const Problem problem{ProblemKind::ElasticCentral, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, Boundary::Periodic);
  dg::MaterialField<dg::ElasticMaterial> mats(mesh.num_elements(),
                                              {2.0, 1.0, 1.0});
  dg::ElasticSolver cpu(mesh, std::move(mats),
                        {.n1d = 3, .flux = dg::FluxType::Central});
  init_elastic_plane_p_wave(cpu, 1);

  PimSimulation pim(problem, ExpansionMode::Elastic3, pim::chip_512mb());
  EXPECT_LT(compare_pim_to_cpu(cpu, pim, 5), 1e-4);
}

TEST(PimSimulation, ElasticRiemannMatchesCpuSolver) {
  const Problem problem{ProblemKind::ElasticRiemann, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, Boundary::Periodic);
  dg::MaterialField<dg::ElasticMaterial> mats(mesh.num_elements(),
                                              {2.0, 1.0, 1.0});
  dg::ElasticSolver cpu(mesh, std::move(mats),
                        {.n1d = 3, .flux = dg::FluxType::Upwind});
  init_elastic_plane_s_wave(cpu, 1);

  PimSimulation pim(problem, ExpansionMode::Elastic3, pim::chip_512mb());
  EXPECT_LT(compare_pim_to_cpu(cpu, pim, 5), 1e-4);
}

TEST(PimSimulation, ElasticNineBlockMatchesThreeBlock) {
  const Problem problem{ProblemKind::ElasticCentral, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, Boundary::Periodic);
  dg::MaterialField<dg::ElasticMaterial> mats(mesh.num_elements(),
                                              {2.0, 1.0, 1.0});
  dg::ElasticSolver cpu(mesh, std::move(mats),
                        {.n1d = 3, .flux = dg::FluxType::Central});
  init_elastic_plane_p_wave(cpu, 1);

  PimSimulation pim(problem, ExpansionMode::Elastic9, pim::chip_512mb());
  EXPECT_LT(compare_pim_to_cpu(cpu, pim, 3), 1e-4);
}

TEST(PimSimulation, CostsAccumulateAcrossSteps) {
  const Problem problem{ProblemKind::Acoustic, 1, 3};
  PimSimulation pim(problem, ExpansionMode::None, pim::chip_512mb());
  dg::Field u(8, 4, 27);
  pim.load_state(u);
  pim.step(1e-3);
  const auto after_one = pim.costs().total();
  EXPECT_GT(after_one.time.value(), 0.0);
  EXPECT_GT(after_one.energy.value(), 0.0);
  pim.step(1e-3);
  const auto after_two = pim.costs().total();
  EXPECT_NEAR(after_two.time.value(), 2 * after_one.time.value(), 1e-9);
  // Volume dominates flux network on this tiny mesh, but all kernels ran.
  EXPECT_GT(pim.costs().volume.time.value(), 0.0);
  EXPECT_GT(pim.costs().flux.time.value(), 0.0);
  EXPECT_GT(pim.costs().integration.time.value(), 0.0);
  EXPECT_GT(pim.costs().network.time.value(), 0.0);
}

TEST(PimSimulation, ExpansionReducesVolumeTime) {
  const Problem problem{ProblemKind::Acoustic, 1, 3};
  PimSimulation naive(problem, ExpansionMode::None, pim::chip_512mb());
  PimSimulation expanded(problem, ExpansionMode::Acoustic4,
                         pim::chip_512mb());
  dg::Field u(8, 4, 27);
  naive.load_state(u);
  expanded.load_state(u);
  naive.step(1e-3);
  expanded.step(1e-3);
  // §6.2.1: the four-block implementation achieves better performance at
  // the price of more energy (duplication + transfers).
  EXPECT_LT(expanded.costs().volume.time.value(),
            naive.costs().volume.time.value());
  EXPECT_GT(expanded.costs().total().energy.value(),
            naive.costs().total().energy.value());
}

TEST(PimSimulation, RejectsProblemsWhereTwoSlicesCannotFit) {
  // Level 5 elastic at 3 blocks/element needs 98k blocks; 512 MB has
  // 4096, and a single 32x32-element Y-slice already takes 3072 — the
  // batched window (one slice + staging slice) cannot fit. The error
  // must diagnose the capacity and name a config that would apply.
  const Problem problem{ProblemKind::ElasticCentral, 5, 8};
  try {
    PimSimulation sim(problem, ExpansionMode::Elastic3, pim::chip_512mb());
    FAIL() << "expected CapacityError";
  } catch (const CapacityError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("98304 blocks"), std::string::npos) << what;
    EXPECT_NE(what.find("resident Y-slices"), std::string::npos) << what;
    EXPECT_NE(what.find("resident slices applies"), std::string::npos)
        << what;
  }
}

TEST(PimSimulation, AcceptsOversizedProblemsViaBatching) {
  // 64 acoustic elements need 64 blocks; cap the chip at 40 so only two
  // 16-block Y-slices fit. The simulation must construct in batched
  // mode instead of rejecting, with a 1-slice window + staging slice.
  const Problem problem{ProblemKind::Acoustic, 2, 3};
  pim::ChipConfig chip = pim::chip_512mb();
  chip.block_limit = 40;
  PimSimulation sim(problem, ExpansionMode::None, chip);
  EXPECT_FALSE(sim.residency().is_resident());
  EXPECT_EQ(sim.residency().schedule().resident_slices, 1u);
  EXPECT_EQ(sim.residency().schedule().peak_resident(), 2u);
}

TEST(PimSimulation, HeterogeneousAcousticMatchesCpuSolver) {
  // Impedance-contrast medium: the per-face LUT constants differ across
  // the interface, exercising the heterogeneous probe path.
  const Problem problem{ProblemKind::Acoustic, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, Boundary::Periodic);
  dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    if (mesh.coords_of(e)[0] == 1) {
      mats.set(e, {.kappa = 4.0, .rho = 2.0});
    }
  }
  dg::MaterialField<dg::AcousticMaterial> cpu_mats = mats;
  dg::AcousticSolver cpu(mesh, std::move(cpu_mats),
                         {.n1d = 3, .flux = dg::FluxType::Upwind});
  init_acoustic_gaussian_pulse(cpu, {0.25, 0.5, 0.5}, 0.15, 1.0);

  PimSimulation pim(problem, ExpansionMode::None, pim::chip_512mb(), mats);
  EXPECT_LT(compare_pim_to_cpu(cpu, pim, 5), 1e-4);
}

TEST(PimSimulation, HeterogeneousElasticMatchesCpuSolver) {
  const Problem problem{ProblemKind::ElasticRiemann, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, Boundary::Reflective);
  dg::MaterialField<dg::ElasticMaterial> mats(mesh.num_elements(),
                                              {2.0, 1.0, 1.0});
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    if (mesh.coords_of(e)[1] == 1) {
      mats.set(e, {0.5, 0.25, 1.3});  // soft top layer
    }
  }
  dg::MaterialField<dg::ElasticMaterial> cpu_mats = mats;
  dg::ElasticSolver cpu(mesh, std::move(cpu_mats),
                        {.n1d = 3, .flux = dg::FluxType::Upwind});
  // Kick with a localized velocity perturbation.
  for (std::size_t e = 0; e < cpu.state().num_elements(); ++e) {
    for (std::size_t n = 0; n < 27; ++n) {
      cpu.state().value(e, dg::ElasticPhysics::Vz, n) =
          static_cast<float>(0.01 * ((e * 31 + n * 7) % 13));
    }
  }

  PimSimulation pim(problem, ExpansionMode::Elastic3, pim::chip_512mb(),
                    mats, Boundary::Reflective);
  EXPECT_LT(compare_pim_to_cpu(cpu, pim, 4), 1e-4);
}

TEST(PimSimulation, MaterialKindMismatchRejected) {
  mesh::StructuredMesh mesh(1, 1.0, Boundary::Periodic);
  dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
  EXPECT_THROW(PimSimulation({ProblemKind::ElasticCentral, 1, 3},
                             ExpansionMode::Elastic3, pim::chip_512mb(),
                             mats),
               PreconditionError);
}

TEST(PimSimulation, LoadReadRoundTrip) {
  const Problem problem{ProblemKind::Acoustic, 1, 3};
  PimSimulation pim(problem, ExpansionMode::None, pim::chip_512mb());
  dg::Field u(8, 4, 27);
  for (std::size_t e = 0; e < 8; ++e) {
    for (std::size_t v = 0; v < 4; ++v) {
      for (std::size_t n = 0; n < 27; ++n) {
        u.value(e, v, n) = static_cast<float>(e + 10 * v) + 0.01f * n;
      }
    }
  }
  pim.load_state(u);
  const dg::Field back = pim.read_state();
  EXPECT_EQ(relative_linf_error(back.flat(), u.flat()), 0.0);
}

}  // namespace
}  // namespace wavepim::mapping
