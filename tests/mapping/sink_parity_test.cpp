// Guards the core consistency contract: the CostSink's analytic tallies
// must equal the FunctionalSink's measured block ledgers for the same
// emission — otherwise the paper-scale estimator would drift away from
// the validated bit-true execution.
#include <gtest/gtest.h>

#include "mapping/element_program.h"
#include "mapping/sinks.h"
#include "pim/chip.h"

namespace wavepim::mapping {
namespace {

using dg::ProblemKind;

struct ParityCase {
  ProblemKind kind;
  ExpansionMode mode;
  const char* name;
};

class SinkParity : public ::testing::TestWithParam<ParityCase> {};

TEST_P(SinkParity, VolumeAndIntegrationCostsMatchFunctionalLedger) {
  const auto& param = GetParam();
  const Problem problem{param.kind, 1, 4};
  mesh::StructuredMesh mesh(1, 1.0, mesh::Boundary::Periodic);
  const ElementSetup setup(problem, param.mode, mesh.element_size());

  pim::Chip chip(pim::chip_512mb());
  SinkPricing pricing;
  pricing.model = &chip.arith();
  pricing.lut_unit = pricing.rows_read(2) + pricing.rows_written(1);

  const std::uint32_t bpe = blocks_per_element(param.mode);
  FunctionalSink functional(chip, mesh, Placement(bpe), pricing);
  CostSink cost(pricing, setup.num_groups());

  // Emit for one element through both sinks. Volume+Integration only:
  // their transfers stay within the element, so per-group ledgers are
  // directly comparable (flux charges neighbours, which the cost sink
  // folds into the representative element by symmetry).
  functional.bind(0);
  emit_volume(setup, functional);
  emit_integration_stage(setup, 2, 1e-3f, functional);
  emit_volume(setup, cost);
  emit_integration_stage(setup, 2, 1e-3f, cost);

  Seconds functional_max(0.0);
  Joules functional_energy(0.0);
  for (std::uint32_t g = 0; g < bpe; ++g) {
    const auto& ledger = chip.block(g).consumed();
    functional_max = std::max(functional_max, ledger.time);
    functional_energy += ledger.energy;
  }
  EXPECT_NEAR(cost.max_group_time().value(), functional_max.value(),
              1e-15 + 1e-9 * functional_max.value())
      << param.name;
  EXPECT_NEAR(cost.element_energy().value(), functional_energy.value(),
              1e-18 + 1e-9 * functional_energy.value())
      << param.name;
}

TEST_P(SinkParity, FluxEnergyMatchesOverFullPeriodicMesh) {
  // Over a periodic mesh every element plays source and destination, so
  // total functional energy equals elements x the representative tally.
  const auto& param = GetParam();
  const Problem problem{param.kind, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, mesh::Boundary::Periodic);
  const ElementSetup setup(problem, param.mode, mesh.element_size());

  pim::Chip chip(pim::chip_512mb());
  SinkPricing pricing;
  pricing.model = &chip.arith();
  pricing.lut_unit = pricing.rows_read(2) + pricing.rows_written(1);

  const std::uint32_t bpe = blocks_per_element(param.mode);
  FunctionalSink functional(chip, mesh, Placement(bpe), pricing);
  CostSink cost(pricing, setup.num_groups());

  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    functional.bind(e);
    for (mesh::Face f : mesh::kAllFaces) {
      emit_flux_face(setup, f, false, functional);
    }
  }
  for (mesh::Face f : mesh::kAllFaces) {
    emit_flux_face(setup, f, false, cost);
  }

  Joules functional_energy(0.0);
  for (std::uint32_t b = 0; b < mesh.num_elements() * bpe; ++b) {
    functional_energy += chip.block(b).consumed().energy;
  }
  const double expected =
      cost.element_energy().value() * mesh.num_elements();
  EXPECT_NEAR(functional_energy.value(), expected, 1e-9 * expected)
      << param.name;
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SinkParity,
    ::testing::Values(
        ParityCase{ProblemKind::Acoustic, ExpansionMode::None, "acoustic-N"},
        ParityCase{ProblemKind::Acoustic, ExpansionMode::Acoustic4,
                   "acoustic-Ep"},
        ParityCase{ProblemKind::ElasticCentral, ExpansionMode::Elastic3,
                   "elastic-Er"},
        ParityCase{ProblemKind::ElasticRiemann, ExpansionMode::Elastic9,
                   "elastic-ErEp"}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (auto& c : n) {
        if (c == '-') {
          c = '_';
        }
      }
      return n;
    });

}  // namespace
}  // namespace wavepim::mapping
