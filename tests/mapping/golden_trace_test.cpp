// Golden traces of the mapping layer's codegen: FNV-1a hashes of the
// lowered instruction streams (opcode + every operand + referenced side
// tables), per kernel per shape class, for fixed small problems. A hash
// mismatch means the generated PIM programs changed — deliberately or
// not — and fails loudly instead of silently shifting cost reports.
//
// Regenerating after an intentional codegen change: run
//   WAVEPIM_PRINT_GOLDEN=1 ./test_mapping --gtest_filter='GoldenTrace.*'
// and paste the printed constants over the kGolden* tables below.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>

#include "mapping/assembler.h"
#include "mapping/program_cache.h"
#include "mapping/simulation.h"

namespace wavepim::mapping {
namespace {

using dg::ProblemKind;
using mesh::Boundary;

// ---- FNV-1a over a canonical instruction serialization --------------------

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= kFnvPrime;
  }
}

void fnv_f32(std::uint64_t& h, float v) {
  std::uint32_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  fnv(h, bits);
}

/// Hashes one cached stream: every instruction field in declaration
/// order, then the contents of any referenced side table (rows for
/// gathers/copies, rows + float values for scatters), so table renumbering
/// with identical contents does not shift the hash but any content change
/// does.
std::uint64_t hash_stream(const ProgramArena& arena, StreamRef ref) {
  std::uint64_t h = kFnvOffset;
  for (const pim::Instruction& inst : arena.view(ref)) {
    fnv(h, static_cast<std::uint64_t>(inst.op));
    fnv(h, inst.block);
    fnv(h, inst.row);
    fnv(h, inst.row_count);
    fnv(h, inst.col_a);
    fnv(h, inst.col_b);
    fnv(h, inst.col_dst);
    fnv(h, inst.word_count);
    fnv(h, inst.peer_block);
    fnv_f32(h, inst.imm);
    fnv_f32(h, inst.imm2);
    const bool values_in_b = inst.op == pim::Opcode::BroadcastRow;
    if (inst.table_a != pim::Instruction::kNoTable) {
      for (std::uint32_t r : arena.rows(inst.table_a)) {
        fnv(h, r);
      }
    }
    if (inst.table_b != pim::Instruction::kNoTable) {
      if (values_in_b) {
        for (float v : arena.values(inst.table_b)) {
          fnv_f32(h, v);
        }
      } else {
        for (std::uint32_t r : arena.rows(inst.table_b)) {
          fnv(h, r);
        }
      }
    }
  }
  return h;
}

/// Per-kernel hashes of one problem configuration: every shape class's
/// Volume stream folded in class order, likewise all six Flux streams per
/// class, plus the (class-independent) stage-0 Integration stream.
struct KernelHashes {
  std::uint64_t volume = kFnvOffset;
  std::uint64_t flux = kFnvOffset;
  std::uint64_t integration = kFnvOffset;
};

KernelHashes hash_problem(const Problem& problem, ExpansionMode mode,
                          Boundary boundary) {
  mesh::StructuredMesh mesh(problem.refinement_level, 1.0, boundary);
  const ElementSetup setup(problem, mode, mesh.element_size());
  ProgramCache cache(setup, mesh, nullptr, nullptr);

  KernelHashes h;
  for (std::uint32_t cls = 0; cls < cache.num_classes(); ++cls) {
    fnv(h.volume, hash_stream(cache.arena(), cache.volume(cls)));
    for (mesh::Face f : mesh::kAllFaces) {
      fnv(h.flux, hash_stream(cache.arena(), cache.flux(cls, f)));
    }
  }
  const ProgramCache::IntegrationProgram& integ =
      cache.integration(/*stage=*/0, 1.0e-3f);
  fnv(h.integration, hash_stream(integ.arena, integ.stream));
  return h;
}

constexpr char kRegenHint[] =
    "lowered instruction streams changed; if intentional, regenerate with "
    "WAVEPIM_PRINT_GOLDEN=1 ./test_mapping --gtest_filter='GoldenTrace.*' "
    "and update the constants in golden_trace_test.cpp";

void check(const char* name, const KernelHashes& actual,
           const KernelHashes& golden) {
  if (std::getenv("WAVEPIM_PRINT_GOLDEN") != nullptr) {
    std::fprintf(stderr,
                 "golden %s: {0x%016llXull, 0x%016llXull, 0x%016llXull}\n",
                 name, static_cast<unsigned long long>(actual.volume),
                 static_cast<unsigned long long>(actual.flux),
                 static_cast<unsigned long long>(actual.integration));
    return;
  }
  EXPECT_EQ(actual.volume, golden.volume) << name << " volume: " << kRegenHint;
  EXPECT_EQ(actual.flux, golden.flux) << name << " flux: " << kRegenHint;
  EXPECT_EQ(actual.integration, golden.integration)
      << name << " integration: " << kRegenHint;
}

// ---- Golden constants (regenerate per the header comment) -----------------

constexpr KernelHashes kGoldenAcousticPeriodic = {
    0x69626202547038AEull, 0xAC4E1EBB772CDF38ull, 0x392BB72BFB9021A7ull};
constexpr KernelHashes kGoldenAcoustic4Periodic = {
    0x9B2CCBC93332F996ull, 0x6F6F12FA21F57E87ull, 0x28EDB39065739861ull};
constexpr KernelHashes kGoldenElasticReflective = {
    0x0565A6B848595503ull, 0x8DDA42202323A3DBull, 0xFFD92694C33425FAull};
constexpr KernelHashes kGoldenRiemannPeriodic = {
    0xE32325AA4863FE4Dull, 0x3C1CB1572D523C4Aull, 0xFFD92694C33425FAull};

TEST(GoldenTrace, AcousticPeriodic) {
  check("kGoldenAcousticPeriodic",
        hash_problem({ProblemKind::Acoustic, 1, 3}, ExpansionMode::None,
                     Boundary::Periodic),
        kGoldenAcousticPeriodic);
}

TEST(GoldenTrace, AcousticExpandedPeriodic) {
  check("kGoldenAcoustic4Periodic",
        hash_problem({ProblemKind::Acoustic, 1, 3}, ExpansionMode::Acoustic4,
                     Boundary::Periodic),
        kGoldenAcoustic4Periodic);
}

TEST(GoldenTrace, ElasticCentralReflective) {
  check("kGoldenElasticReflective",
        hash_problem({ProblemKind::ElasticCentral, 1, 3},
                     ExpansionMode::Elastic3, Boundary::Reflective),
        kGoldenElasticReflective);
}

TEST(GoldenTrace, ElasticRiemannPeriodic) {
  check("kGoldenRiemannPeriodic",
        hash_problem({ProblemKind::ElasticRiemann, 1, 3},
                     ExpansionMode::Elastic3, Boundary::Periodic),
        kGoldenRiemannPeriodic);
}

// ---- Cached lowering parity ----------------------------------------------
// assemble_stage through the cache must produce the exact instruction
// sequence (and side tables) of direct per-element emission.

TEST(GoldenTrace, CachedAssembleStageMatchesDirectLowering) {
  const Problem problem{ProblemKind::Acoustic, 1, 3};
  mesh::StructuredMesh mesh(1, 1.0, Boundary::Periodic);
  const ElementSetup setup(problem, ExpansionMode::None, mesh.element_size());
  ProgramCache cache(setup, mesh, nullptr, nullptr);

  for (int stage = 0; stage < 2; ++stage) {
    const auto direct =
        assemble_stage(setup, mesh, Placement(1), stage, 1.0e-3f);
    const auto cached = assemble_stage(mesh, Placement(1), stage, 1.0e-3f,
                                       cache);
    ASSERT_EQ(direct.instructions.size(), cached.instructions.size());
    for (std::size_t i = 0; i < direct.instructions.size(); ++i) {
      ASSERT_EQ(direct.instructions[i], cached.instructions[i])
          << "instruction " << i << " diverged at stage " << stage;
    }
    EXPECT_EQ(direct.row_tables, cached.row_tables);
    EXPECT_EQ(direct.value_tables, cached.value_tables);
  }
}

}  // namespace
}  // namespace wavepim::mapping
