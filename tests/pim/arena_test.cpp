// FloatArena: the mmap-backed storage substrate behind pim::Block
// columns and the residency backing stores. These tests pin the
// contract the simulation relies on — zero-filled buffers, slot
// recycling through the free lists, page alignment (the 4K-alias
// stagger is an offset into the slot), the WAVEPIM_WORD_ARENA=0 heap
// fallback, and Buffer move semantics (pim::Block must stay movable).
#include "pim/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>

namespace wavepim::pim {
namespace {

/// Scoped env override, restored on destruction so later tests (and the
/// rest of the suite) see the ambient configuration again.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_, old_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(FloatArena, BuffersArriveZeroFilledAndPageAligned) {
  auto& arena = FloatArena::instance();
  auto buf = arena.allocate(1024);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(buf.size(), 1024u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], 0.0f) << "word " << i;
  }
  if (buf.from_arena()) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 4096u, 0u);
  }
}

TEST(FloatArena, RecyclesSlotsAndClearsThemForReuse) {
  auto& arena = FloatArena::instance();
  if (!arena.mapped()) {
    GTEST_SKIP() << "no mmap reservation on this platform";
  }
  const auto before = arena.stats();
  float* first = nullptr;
  {
    auto buf = arena.allocate(2048);
    ASSERT_TRUE(buf.from_arena());
    first = buf.data();
    for (std::size_t i = 0; i < buf.size(); ++i) {
      buf[i] = 1.5f;  // dirty the slot so reuse must clear it
    }
  }
  auto again = arena.allocate(2048);
  ASSERT_TRUE(again.from_arena());
  EXPECT_EQ(again.data(), first) << "same-size slot should be recycled";
  for (std::size_t i = 0; i < again.size(); ++i) {
    ASSERT_EQ(again[i], 0.0f) << "recycled word " << i << " not cleared";
  }
  const auto after = arena.stats();
  EXPECT_GT(after.recycled, before.recycled);
}

TEST(FloatArena, EnvGateRoutesToHeapFallback) {
  ScopedEnv off("WAVEPIM_WORD_ARENA", "0");
  auto& arena = FloatArena::instance();
  const auto before = arena.stats();
  auto buf = arena.allocate(512);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_FALSE(buf.from_arena());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_EQ(buf[i], 0.0f);
  }
  const auto after = arena.stats();
  EXPECT_EQ(after.heap_allocs, before.heap_allocs + 1);
  EXPECT_EQ(after.arena_allocs, before.arena_allocs);
}

TEST(FloatArena, BufferMoveTransfersOwnership) {
  auto& arena = FloatArena::instance();
  auto a = arena.allocate(256);
  float* data = a.data();
  a[3] = 7.0f;

  FloatArena::Buffer b = std::move(a);
  EXPECT_EQ(b.data(), data);
  EXPECT_EQ(b.size(), 256u);
  EXPECT_EQ(b[3], 7.0f);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(a.size(), 0u);

  FloatArena::Buffer c;
  c = std::move(b);
  EXPECT_EQ(c.data(), data);
  EXPECT_EQ(b.data(), nullptr);  // NOLINT(bugprone-use-after-move)
}

}  // namespace
}  // namespace wavepim::pim
