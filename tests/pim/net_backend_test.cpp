// Contract tests of the pluggable interconnect timing backends: the
// invariants every NetBackend must keep (documented on the interface),
// exact agreement between the analytic and cycle models where queuing
// cannot matter, and the cycle backend's link statistics. Bit-identity
// of everything *outside* the network channel lives in
// tests/mapping/net_backend_conformance_test.cpp.
#include "pim/interconnect.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.h"

namespace wavepim::pim {
namespace {

Interconnect make(Topology t, NetBackendKind backend) {
  ChipConfig config = chip_2gb(t);
  config.net_backend = backend;  // explicit: env-independent tests
  return Interconnect(config);
}

const NetBackendKind kBackends[] = {NetBackendKind::Analytic,
                                    NetBackendKind::Cycle};
const Topology kTopologies[] = {Topology::HTree, Topology::Bus};

TEST(NetBackendSelection, SingletonsReportTheirKind) {
  EXPECT_EQ(net_backend_for(NetBackendKind::Analytic).kind(),
            NetBackendKind::Analytic);
  EXPECT_EQ(net_backend_for(NetBackendKind::Cycle).kind(),
            NetBackendKind::Cycle);
  // Process singletons: repeated lookups return the same object.
  EXPECT_EQ(&net_backend_for(NetBackendKind::Cycle),
            &net_backend_for(NetBackendKind::Cycle));
}

TEST(NetBackendSelection, ParseAndToStringRoundTrip) {
  NetBackendKind kind{};
  EXPECT_TRUE(parse_net_backend("analytic", kind));
  EXPECT_EQ(kind, NetBackendKind::Analytic);
  EXPECT_TRUE(parse_net_backend("cycle", kind));
  EXPECT_EQ(kind, NetBackendKind::Cycle);
  EXPECT_FALSE(parse_net_backend("event", kind));
  EXPECT_FALSE(parse_net_backend("", kind));
  EXPECT_STREQ(to_string(NetBackendKind::Analytic), "analytic");
  EXPECT_STREQ(to_string(NetBackendKind::Cycle), "cycle");
}

TEST(NetBackendSelection, EnvironmentDefault) {
  const char* saved = std::getenv("WAVEPIM_NET_BACKEND");
  const std::string restore = saved != nullptr ? saved : "";

  unsetenv("WAVEPIM_NET_BACKEND");
  EXPECT_EQ(default_net_backend(), NetBackendKind::Analytic);
  setenv("WAVEPIM_NET_BACKEND", "cycle", 1);
  EXPECT_EQ(default_net_backend(), NetBackendKind::Cycle);
  EXPECT_EQ(chip_512mb().net_backend, NetBackendKind::Cycle);
  setenv("WAVEPIM_NET_BACKEND", "analytic", 1);
  EXPECT_EQ(default_net_backend(), NetBackendKind::Analytic);

  if (saved != nullptr) {
    setenv("WAVEPIM_NET_BACKEND", restore.c_str(), 1);
  } else {
    unsetenv("WAVEPIM_NET_BACKEND");
  }
}

TEST(NetBackendContract, SingleTransferCompletesInIsolatedLatency) {
  const Transfer t{.src_block = 3, .dst_block = 200, .words = 96};
  for (const Topology topo : kTopologies) {
    for (const NetBackendKind backend : kBackends) {
      const auto net = make(topo, backend);
      const auto r = net.schedule({&t, 1});
      EXPECT_DOUBLE_EQ(r.makespan.value(), net.isolated_latency(t).value());
      EXPECT_DOUBLE_EQ(r.serial_sum.value(), net.isolated_latency(t).value());
      EXPECT_DOUBLE_EQ(r.energy.value(), net.transfer_energy(t).value());
    }
  }
}

TEST(NetBackendContract, DisjointPathsCompleteInMaxIsolatedLatency) {
  // Distinct S0 subtrees: no shared switch, so both backends must price
  // the batch at the slowest member exactly.
  const std::vector<Transfer> batch = {
      {.src_block = 0, .dst_block = 2, .words = 512},
      {.src_block = 4, .dst_block = 6, .words = 64},
      {.src_block = 8, .dst_block = 10, .words = 256},
  };
  for (const NetBackendKind backend : kBackends) {
    const auto net = make(Topology::HTree, backend);
    double slowest = 0.0;
    for (const auto& t : batch) {
      slowest = std::max(slowest, net.isolated_latency(t).value());
    }
    const auto r = net.schedule(batch);
    EXPECT_DOUBLE_EQ(r.makespan.value(), slowest)
        << "backend " << to_string(backend);
  }
}

TEST(NetBackendContract, MakespanBetweenCriticalPathAndSerialSum) {
  // A contended mesh-exchange-like batch.
  std::vector<Transfer> batch;
  for (std::uint32_t b = 0; b < 128; ++b) {
    batch.push_back({.src_block = b, .dst_block = (b * 7 + 3) % 512,
                     .words = 32 + (b % 5) * 16});
  }
  for (const Topology topo : kTopologies) {
    for (const NetBackendKind backend : kBackends) {
      const auto net = make(topo, backend);
      double slowest = 0.0;
      for (const auto& t : batch) {
        slowest = std::max(slowest, net.isolated_latency(t).value());
      }
      const auto r = net.schedule(batch);
      EXPECT_GE(r.makespan.value(), slowest);
      // serial_sum and makespan fold in different orders; allow FP slack.
      EXPECT_LE(r.makespan.value(), r.serial_sum.value() * (1.0 + 1e-9));
    }
  }
}

TEST(NetBackendContract, SumsAgreeAcrossBackendsUpToSummationOrder) {
  std::vector<Transfer> batch;
  for (std::uint32_t b = 0; b < 64; ++b) {
    batch.push_back({.src_block = b * 3 % 512, .dst_block = (b * 11 + 1) % 512,
                     .words = 24 + b});
  }
  for (const Topology topo : kTopologies) {
    const auto analytic = make(topo, NetBackendKind::Analytic).schedule(batch);
    const auto cycle = make(topo, NetBackendKind::Cycle).schedule(batch);
    EXPECT_NEAR(analytic.serial_sum.value(), cycle.serial_sum.value(),
                1e-9 * analytic.serial_sum.value());
    EXPECT_NEAR(analytic.energy.value(), cycle.energy.value(),
                1e-9 * analytic.energy.value());
  }
}

TEST(NetBackendContract, DeterministicAcrossRepeatedCalls) {
  std::vector<Transfer> batch;
  for (std::uint32_t b = 0; b < 200; ++b) {
    batch.push_back({.src_block = (b * 13) % 512,
                     .dst_block = (b * 29 + 7) % 512, .words = 16 + b % 40});
  }
  for (const Topology topo : kTopologies) {
    for (const NetBackendKind backend : kBackends) {
      const auto net = make(topo, backend);
      const auto a = net.schedule(batch);
      const auto b = net.schedule(batch);
      EXPECT_EQ(a.makespan.value(), b.makespan.value());
      EXPECT_EQ(a.serial_sum.value(), b.serial_sum.value());
      EXPECT_EQ(a.energy.value(), b.energy.value());
      EXPECT_EQ(a.links.stall_time.value(), b.links.stall_time.value());
      EXPECT_EQ(a.links.peak_queue, b.links.peak_queue);
    }
  }
}

TEST(CycleBackend, OnlyCycleProducesLinkStats) {
  const std::vector<Transfer> batch = {
      {.src_block = 0, .dst_block = 1, .words = 128},
      {.src_block = 2, .dst_block = 3, .words = 128},
  };
  const auto analytic = make(Topology::HTree, NetBackendKind::Analytic);
  const auto cycle = make(Topology::HTree, NetBackendKind::Cycle);
  EXPECT_EQ(analytic.backend_kind(), NetBackendKind::Analytic);
  EXPECT_EQ(cycle.backend_kind(), NetBackendKind::Cycle);
  EXPECT_FALSE(analytic.schedule(batch).has_link_stats);
  EXPECT_TRUE(cycle.schedule(batch).has_link_stats);
}

TEST(CycleBackend, ContendedBatchStallsAndDisjointBatchDoesNot) {
  const auto net = make(Topology::HTree, NetBackendKind::Cycle);
  // Both transfers cross the same S0 switch: one must queue.
  const auto contended = net.schedule(std::vector<Transfer>{
      {.src_block = 0, .dst_block = 1, .words = 128},
      {.src_block = 2, .dst_block = 3, .words = 128},
  });
  EXPECT_GT(contended.links.stall_time.value(), 0.0);
  EXPECT_GE(contended.links.peak_queue, 2u);
  EXPECT_NEAR(contended.makespan.value(), contended.serial_sum.value(),
              1e-12);

  const auto disjoint = net.schedule(std::vector<Transfer>{
      {.src_block = 0, .dst_block = 1, .words = 128},
      {.src_block = 4, .dst_block = 5, .words = 128},
  });
  EXPECT_EQ(disjoint.links.stall_time.value(), 0.0);
  EXPECT_EQ(disjoint.links.peak_queue, 1u);
}

TEST(CycleBackend, UtilizationIsNormalizedPerChannel) {
  const auto net = make(Topology::HTree, NetBackendKind::Cycle);
  // Two equal transfers serialised through one single-channel S0 switch:
  // that switch is busy the whole makespan -> max utilization 1.
  const auto r = net.schedule(std::vector<Transfer>{
      {.src_block = 0, .dst_block = 1, .words = 256},
      {.src_block = 2, .dst_block = 3, .words = 256},
  });
  EXPECT_EQ(r.links.links_used, 1u);
  EXPECT_NEAR(r.links.max_utilization, 1.0, 1e-12);
  EXPECT_GT(r.links.mean_utilization, 0.0);
  EXPECT_LE(r.links.mean_utilization, r.links.max_utilization + 1e-12);
}

TEST(CycleBackend, BusCollapsesToSerialWhileHtreeOverlaps) {
  // The Fig. 14 mechanism at unit scale: 64 S0-local transfers overlap
  // on the fat tree and fully serialise on the single-channel bus.
  std::vector<Transfer> batch;
  for (std::uint32_t g = 0; g < 64; ++g) {
    batch.push_back({.src_block = 4 * g, .dst_block = 4 * g + 1,
                     .words = 512});
  }
  const auto ht = make(Topology::HTree, NetBackendKind::Cycle).schedule(batch);
  const auto bus = make(Topology::Bus, NetBackendKind::Cycle).schedule(batch);
  EXPECT_GT(ht.overlap_factor(), 60.0);
  EXPECT_NEAR(bus.overlap_factor(), 1.0, 1e-9);
  EXPECT_GT(bus.makespan.value() / ht.makespan.value(), 2.0);
  // The bus queue held every pending transfer at its deepest.
  EXPECT_EQ(bus.links.peak_queue, 64u);
}

TEST(CycleBackend, SelfTransfersBypassTheHtreeFabric) {
  const auto net = make(Topology::HTree, NetBackendKind::Cycle);
  const Transfer self{.src_block = 7, .dst_block = 7, .words = 64};
  const auto r = net.schedule({&self, 1});
  EXPECT_DOUBLE_EQ(r.makespan.value(), net.isolated_latency(self).value());
  EXPECT_EQ(r.links.links_used, 0u);
  EXPECT_EQ(r.links.stall_time.value(), 0.0);

  // On the bus the row buffer drives the shared medium, so even a
  // self-transfer claims (and shows up on) the tile switch.
  const auto bus = make(Topology::Bus, NetBackendKind::Cycle);
  const auto rb = bus.schedule({&self, 1});
  EXPECT_EQ(rb.links.links_used, 1u);
}

TEST(CycleBackend, EmptyBatchIsFree) {
  const auto r = make(Topology::HTree, NetBackendKind::Cycle).schedule({});
  EXPECT_EQ(r.makespan.value(), 0.0);
  EXPECT_EQ(r.energy.value(), 0.0);
  EXPECT_TRUE(r.has_link_stats);
  EXPECT_EQ(r.links.links_used, 0u);
}

TEST(CycleBackend, WorksAcrossHtreeArities) {
  // The window rule uses per-level channel capacities; exercise the
  // non-default tree geometries end to end.
  for (const std::uint32_t arity : {2u, 16u}) {
    ChipConfig config = chip_2gb();
    config.htree_arity = arity;
    config.net_backend = NetBackendKind::Cycle;
    const Interconnect net(config);
    std::vector<Transfer> batch;
    for (std::uint32_t b = 0; b < 96; ++b) {
      batch.push_back({.src_block = b, .dst_block = (b * 5 + 2) % 512,
                       .words = 48});
    }
    const auto r = net.schedule(batch);
    EXPECT_GT(r.makespan.value(), 0.0);
    EXPECT_LE(r.makespan.value(), r.serial_sum.value() * (1.0 + 1e-9));
    EXPECT_TRUE(r.has_link_stats);
    EXPECT_GT(r.links.links_used, 0u);
  }
}

}  // namespace
}  // namespace wavepim::pim
