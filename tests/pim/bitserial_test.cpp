#include "pim/bitserial.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "pim/params.h"

namespace wavepim::pim {
namespace {

TEST(NorMachine, GatesComputeTruthTables) {
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      NorMachine m;
      const auto ca = m.alloc(a != 0);
      const auto cb = m.alloc(b != 0);
      EXPECT_EQ(m.read(m.nor({ca, cb})), !(a || b));
      EXPECT_EQ(m.read(m.not_gate(ca)), !a);
      EXPECT_EQ(m.read(m.or_gate(ca, cb)), (a || b));
      EXPECT_EQ(m.read(m.and_gate(ca, cb)), (a && b));
      EXPECT_EQ(m.read(m.xor_gate(ca, cb)), (a != b));
    }
  }
}

TEST(NorMachine, GateStepCounts) {
  NorMachine m;
  const auto a = m.alloc(true);
  const auto b = m.alloc(false);
  m.reset_steps();
  (void)m.not_gate(a);
  EXPECT_EQ(m.steps(), 1u);
  m.reset_steps();
  (void)m.or_gate(a, b);
  EXPECT_EQ(m.steps(), 2u);
  m.reset_steps();
  (void)m.and_gate(a, b);
  EXPECT_EQ(m.steps(), 3u);
  m.reset_steps();
  (void)m.xor_gate(a, b);
  EXPECT_EQ(m.steps(), 5u);
}

TEST(NorMachine, BitVectorRoundTrip) {
  NorMachine m;
  const auto v = load_bits(m, 0xDEADBEEFu, 32);
  EXPECT_EQ(read_bits(m, v), 0xDEADBEEFu);
  EXPECT_THROW((void)load_bits(m, 1, 0), PreconditionError);
}

TEST(NorAdder, ExhaustiveFourBit) {
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      NorMachine m;
      const auto va = load_bits(m, a, 4);
      const auto vb = load_bits(m, b, 4);
      const auto sum = nor_add(m, va, vb);
      EXPECT_EQ(read_bits(m, sum), (a + b) & 0xF) << a << "+" << b;
    }
  }
}

TEST(NorAdder, RandomThirtyTwoBit) {
  Rng rng(2026);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t a = rng.next_u64() & 0xFFFFFFFFull;
    const std::uint64_t b = rng.next_u64() & 0xFFFFFFFFull;
    NorMachine m;
    const auto sum = nor_add(m, load_bits(m, a, 32), load_bits(m, b, 32));
    EXPECT_EQ(read_bits(m, sum), (a + b) & 0xFFFFFFFFull);
  }
}

TEST(NorAdder, StepCountLinearInWidth) {
  auto steps_for = [](int bits) {
    NorMachine m;
    const auto a = load_bits(m, 0, bits);
    const auto b = load_bits(m, 0, bits);
    m.reset_steps();
    (void)nor_add(m, a, b);
    return m.steps();
  };
  const auto s8 = steps_for(8);
  const auto s16 = steps_for(16);
  const auto s32 = steps_for(32);
  EXPECT_EQ(s16, 2 * s8);
  EXPECT_EQ(s32, 2 * s16);
  // Per-bit cost: optimised MAGIC adders reach ~9-13 NOR steps; this
  // textbook gate mapping lands at 18 (2 XOR + 2 AND + OR).
  EXPECT_GE(s32 / 32, 9u);
  EXPECT_LE(s32 / 32, 20u);
}

TEST(NorMultiplier, ExhaustiveFourBit) {
  for (std::uint64_t a = 0; a < 16; ++a) {
    for (std::uint64_t b = 0; b < 16; ++b) {
      NorMachine m;
      const auto prod = nor_mul(m, load_bits(m, a, 4), load_bits(m, b, 4));
      EXPECT_EQ(read_bits(m, prod), a * b) << a << "*" << b;
    }
  }
}

TEST(NorMultiplier, RandomSixteenBit) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const std::uint64_t a = rng.next_u64() & 0xFFFFull;
    const std::uint64_t b = rng.next_u64() & 0xFFFFull;
    NorMachine m;
    const auto prod = nor_mul(m, load_bits(m, a, 16), load_bits(m, b, 16));
    EXPECT_EQ(read_bits(m, prod), a * b);
  }
}

TEST(NorMultiplier, StepCountQuadraticInWidth) {
  auto steps_for = [](int bits) {
    NorMachine m;
    const auto a = load_bits(m, 0, bits);
    const auto b = load_bits(m, 0, bits);
    m.reset_steps();
    (void)nor_mul(m, a, b);
    return m.steps();
  };
  const auto s8 = steps_for(8);
  const auto s16 = steps_for(16);
  EXPECT_GT(s16, 3 * s8);  // clearly super-linear
  EXPECT_LT(s16, 5 * s8);  // ~quadratic, not worse
}

TEST(NorCalibration, ArithLatencyConstantsAreConsistent) {
  // The word-level FP32 costs (ArithLatency) must sit above the raw
  // integer NOR costs measured here: an FP32 add is mantissa alignment +
  // a 24-bit integer add + normalisation, an FP32 multiply wraps a 24-bit
  // integer multiply.
  NorMachine m;
  const auto a24 = load_bits(m, 0, 24);
  const auto b24 = load_bits(m, 0, 24);
  m.reset_steps();
  (void)nor_add(m, a24, b24);
  const auto int24_add = m.steps();

  NorMachine m2;
  const auto c24 = load_bits(m2, 0, 24);
  const auto d24 = load_bits(m2, 0, 24);
  m2.reset_steps();
  (void)nor_mul(m2, c24, d24);
  const auto int24_mul = m2.steps();

  const ArithLatency lat;
  // FP32 add (1200 cycles) = mantissa alignment + one 24-bit integer add
  // + normalisation: above the bare integer add, below a handful of them.
  EXPECT_GT(lat.fadd_cycles, int24_add);
  EXPECT_LT(lat.fadd_cycles, 4 * int24_add + 600);
  // FP32 multiply (3000 cycles, calibrated to the paper's Table 2 peak)
  // implies an optimised in-crossbar multiplier: well below this naive
  // shift-add gate mapping, but still costlier than any single add.
  EXPECT_LT(static_cast<std::uint64_t>(lat.fmul_cycles), int24_mul);
  EXPECT_GT(static_cast<std::uint64_t>(lat.fmul_cycles), int24_add);
  // Multiplication is super-linear in both models.
  const double word_ratio =
      static_cast<double>(lat.fmul_cycles) / lat.fadd_cycles;
  const double gate_ratio = static_cast<double>(int24_mul) / int24_add;
  EXPECT_GT(word_ratio, 2.0);
  EXPECT_GT(gate_ratio, word_ratio);  // naive gates pay the full N^2
}


// --- Boundary fuzz (word-tier PR) ----------------------------------------
// The word tier's claim that FP32 words are a faithful abstraction of
// the bit-serial machine rests on the integer substrate being exact at
// the carry boundaries. Sweep the adder and multiplier across the
// patterns where carry chains and partial products saturate: 0, all
// ones, the sign bit, single set bits, and random values paired with
// each.

TEST(NorAdder, BoundaryPatternFuzz) {
  const std::uint64_t boundary[] = {0ull, 1ull, 0x7FFFFFFFull, 0x80000000ull,
                                    0xFFFFFFFFull, 0x55555555ull,
                                    0xAAAAAAAAull};
  Rng rng(0xB0DAu);
  for (const std::uint64_t a : boundary) {
    for (const std::uint64_t b : boundary) {
      NorMachine m;
      const auto sum = nor_add(m, load_bits(m, a, 32), load_bits(m, b, 32));
      EXPECT_EQ(read_bits(m, sum), (a + b) & 0xFFFFFFFFull)
          << a << "+" << b;
    }
    // Each boundary against random partners: mixed carry chains.
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t b = rng.next_u64() & 0xFFFFFFFFull;
      NorMachine m;
      const auto sum = nor_add(m, load_bits(m, a, 32), load_bits(m, b, 32));
      EXPECT_EQ(read_bits(m, sum), (a + b) & 0xFFFFFFFFull)
          << a << "+" << b;
    }
  }
}

TEST(NorMultiplier, BoundaryPatternFuzz) {
  const std::uint64_t boundary[] = {0ull, 1ull, 2ull, 0x7FFFull, 0x8000ull,
                                    0xFFFFull};
  Rng rng(0xF00Du);
  for (const std::uint64_t a : boundary) {
    for (const std::uint64_t b : boundary) {
      NorMachine m;
      const auto prod = nor_mul(m, load_bits(m, a, 16), load_bits(m, b, 16));
      EXPECT_EQ(read_bits(m, prod), a * b) << a << "*" << b;
    }
    for (int i = 0; i < 2; ++i) {
      const std::uint64_t b = rng.next_u64() & 0xFFFFull;
      NorMachine m;
      const auto prod = nor_mul(m, load_bits(m, a, 16), load_bits(m, b, 16));
      EXPECT_EQ(read_bits(m, prod), a * b) << a << "*" << b;
    }
  }
}

}  // namespace
}  // namespace wavepim::pim
