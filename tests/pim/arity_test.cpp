// Tests of the configurable H-tree arity (§4.2.1: "the number of children
// of a tree node does not have to be 4").
#include <gtest/gtest.h>

#include "common/error.h"
#include "pim/interconnect.h"

namespace wavepim::pim {
namespace {

ChipConfig with_arity(std::uint32_t arity) {
  auto c = chip_2gb();
  c.htree_arity = arity;
  return c;
}

TEST(HtreeArity, SwitchCountsPerTile) {
  EXPECT_EQ(with_arity(2).htree_switches_per_tile(), 255u);
  EXPECT_EQ(with_arity(4).htree_switches_per_tile(), 85u);  // Table 3
  EXPECT_EQ(with_arity(16).htree_switches_per_tile(), 17u);
}

TEST(HtreeArity, TreeDepths) {
  EXPECT_EQ(with_arity(2).htree_levels(), 8u);
  EXPECT_EQ(with_arity(4).htree_levels(), 4u);
  EXPECT_EQ(with_arity(16).htree_levels(), 2u);
}

TEST(HtreeArity, InvalidAritiesRejected) {
  EXPECT_THROW(Interconnect(with_arity(3)), PreconditionError);
  EXPECT_THROW(Interconnect(with_arity(8)), PreconditionError);
  EXPECT_THROW(Interconnect(with_arity(256)), PreconditionError);
}

TEST(HtreeArity, WiderTreesHaveShorterPaths) {
  const Interconnect a2(with_arity(2));
  const Interconnect a4(with_arity(4));
  const Interconnect a16(with_arity(16));
  // A far pair within one tile climbs fewer levels on a wider tree.
  EXPECT_GT(a2.hop_count(0, 200), a4.hop_count(0, 200));
  EXPECT_GT(a4.hop_count(0, 200), a16.hop_count(0, 200));
  // Leaf-local pairs need one switch in every geometry.
  EXPECT_EQ(a2.hop_count(0, 1), 1u);
  EXPECT_EQ(a16.hop_count(0, 15), 1u);
  // Cross-tile traverses both full trees.
  EXPECT_EQ(a16.hop_count(0, 300), 4u);
  EXPECT_EQ(a2.hop_count(0, 300), 16u);
}

TEST(HtreeArity, HopCountsConsistentWithLcaGrouping) {
  const Interconnect a16(with_arity(16));
  EXPECT_EQ(a16.hop_count(0, 15), 1u);   // same 16-block group
  EXPECT_EQ(a16.hop_count(0, 16), 3u);   // neighbouring groups
  EXPECT_EQ(a16.hop_count(0, 255), 3u);  // across the tile root
}

TEST(HtreeArity, SchedulesRemainValid) {
  for (std::uint32_t arity : {2u, 4u, 16u}) {
    const Interconnect net(with_arity(arity));
    std::vector<Transfer> batch;
    for (std::uint32_t i = 0; i < 300; ++i) {
      batch.push_back({.src_block = (i * 7) % 512,
                       .dst_block = (i * 11 + 1) % 512,
                       .words = 32});
    }
    const auto r = net.schedule(batch);
    EXPECT_LE(r.makespan.value(), r.serial_sum.value() * (1 + 1e-12))
        << "arity " << arity;
    EXPECT_GT(r.makespan.value(), 0.0);
  }
}

TEST(HtreeArity, PowerScalesWithSwitchCount) {
  // More switches burn more power (the binary tree), fewer burn less
  // (16-ary) — the §4.2.2 leakage trade-off generalised.
  const double p2 = chip_static_power_w(with_arity(2));
  const double p4 = chip_static_power_w(with_arity(4));
  const double p16 = chip_static_power_w(with_arity(16));
  EXPECT_GT(p2, p4);
  EXPECT_GT(p4, p16);
  // 4-ary matches Table 3.
  EXPECT_NEAR(p4, 115.02, 0.5);
}

TEST(HtreeArity, DeepTreesOfferMorePathDiversity) {
  // Heavy local traffic: the binary tree has more (narrower) switches,
  // the 16-ary tree funnels 16 leaves through each S0 switch. For
  // leaf-adjacent traffic the deep tree overlaps more.
  std::vector<Transfer> batch;
  for (std::uint32_t g = 0; g < 128; ++g) {
    batch.push_back({.src_block = 2 * g, .dst_block = 2 * g + 1,
                     .words = 64});
  }
  const auto r2 = Interconnect(with_arity(2)).schedule(batch);
  const auto r16 = Interconnect(with_arity(16)).schedule(batch);
  EXPECT_LT(r2.makespan.value(), r16.makespan.value());
}

}  // namespace
}  // namespace wavepim::pim
