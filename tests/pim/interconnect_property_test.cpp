// Property and fuzz tests of the interconnect scheduler: bounds that must
// hold for any transfer batch on any topology.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "pim/interconnect.h"

namespace wavepim::pim {
namespace {

std::vector<Transfer> random_batch(Rng& rng, std::uint32_t num_blocks,
                                   std::size_t count) {
  std::vector<Transfer> ts;
  ts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Transfer t;
    t.src_block = static_cast<std::uint32_t>(rng.next_below(num_blocks));
    do {
      t.dst_block = static_cast<std::uint32_t>(rng.next_below(num_blocks));
    } while (t.dst_block == t.src_block);
    t.words = static_cast<std::uint32_t>(1 + rng.next_below(128));
    ts.push_back(t);
  }
  return ts;
}

class InterconnectProperty
    : public ::testing::TestWithParam<std::tuple<Topology, std::uint64_t>> {};

TEST_P(InterconnectProperty, MakespanBounds) {
  const auto [topology, seed] = GetParam();
  const Interconnect net(chip_512mb(topology));
  Rng rng(seed);
  const auto batch = random_batch(rng, net.config().num_blocks(), 500);
  const auto result = net.schedule(batch);

  // Upper bound: never worse than full serialisation.
  EXPECT_LE(result.makespan.value(), result.serial_sum.value() * (1 + 1e-12));
  // Lower bound: at least the longest single transfer.
  double longest = 0.0;
  for (const auto& t : batch) {
    longest = std::max(longest, net.isolated_latency(t).value());
  }
  EXPECT_GE(result.makespan.value(), longest * (1 - 1e-12));
  // Energy is order-independent and strictly positive.
  EXPECT_GT(result.energy.value(), 0.0);
}

TEST_P(InterconnectProperty, ScheduleIsDeterministic) {
  const auto [topology, seed] = GetParam();
  const Interconnect net(chip_512mb(topology));
  Rng rng(seed);
  const auto batch = random_batch(rng, net.config().num_blocks(), 200);
  const auto a = net.schedule(batch);
  const auto b = net.schedule(batch);
  EXPECT_EQ(a.makespan.value(), b.makespan.value());
  EXPECT_EQ(a.energy.value(), b.energy.value());
}

TEST_P(InterconnectProperty, EnergyIsSumOfTransferEnergies) {
  const auto [topology, seed] = GetParam();
  const Interconnect net(chip_512mb(topology));
  Rng rng(seed ^ 0xABCDu);
  const auto batch = random_batch(rng, net.config().num_blocks(), 100);
  Joules expected(0.0);
  for (const auto& t : batch) {
    expected += net.transfer_energy(t);
  }
  EXPECT_NEAR(net.schedule(batch).energy.value(), expected.value(),
              1e-12 * expected.value());
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, InterconnectProperty,
    ::testing::Combine(::testing::Values(Topology::HTree, Topology::Bus),
                       ::testing::Values(1u, 7u, 42u)));

TEST(InterconnectProperty, BusNeverBeatsHtreeOnContendedBatches) {
  // With many same-tile transfers, the H-tree's parallel subtrees must
  // finish no later than the serial bus.
  Rng rng(99);
  std::vector<Transfer> batch;
  for (int i = 0; i < 400; ++i) {
    Transfer t;
    t.src_block = static_cast<std::uint32_t>(rng.next_below(256));
    t.dst_block = static_cast<std::uint32_t>((t.src_block + 1 +
                                              rng.next_below(3)) %
                                             256);
    t.words = 64;
    batch.push_back(t);
  }
  const auto ht = Interconnect(chip_512mb(Topology::HTree)).schedule(batch);
  const auto bus = Interconnect(chip_512mb(Topology::Bus)).schedule(batch);
  EXPECT_LT(ht.makespan.value(), bus.makespan.value());
}

TEST(InterconnectProperty, MakespanRespectsPerSwitchLoadBound) {
  // All transfers through one S0 switch (capacity 1) must serialise: the
  // makespan is bounded below by that switch's total occupancy.
  const Interconnect net(chip_512mb(Topology::HTree));
  std::vector<Transfer> batch;
  for (std::uint32_t i = 0; i < 20; ++i) {
    batch.push_back({.src_block = 0, .dst_block = 1 + (i % 3), .words = 32});
  }
  double occupancy = 0.0;
  for (const auto& t : batch) {
    occupancy += net.isolated_latency(t).value();
  }
  EXPECT_NEAR(net.schedule(batch).makespan.value(), occupancy, 1e-12);
}

}  // namespace
}  // namespace wavepim::pim
