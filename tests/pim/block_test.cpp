#include "pim/block.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace wavepim::pim {
namespace {

class BlockTest : public ::testing::Test {
 protected:
  ArithModel model_;
  Block block_{&model_};
};

TEST_F(BlockTest, StartsZeroedWithEmptyLedger) {
  EXPECT_EQ(block_.at(0, 0), 0.0f);
  EXPECT_EQ(block_.at(1023, 31), 0.0f);
  EXPECT_EQ(block_.consumed().time.value(), 0.0);
  EXPECT_EQ(block_.consumed().energy.value(), 0.0);
}

TEST_F(BlockTest, RowWriteReadRoundTrip) {
  const std::vector<float> data = {1.0f, -2.5f, 3.25f};
  block_.write_row(7, 4, data);
  std::vector<float> out(3);
  block_.read_row(7, 4, out);
  EXPECT_EQ(out, data);
  EXPECT_GT(block_.consumed().time.value(), 0.0);
}

TEST_F(BlockTest, OutOfRangeAccessRejected) {
  std::vector<float> v(4);
  EXPECT_THROW(block_.write_row(1024, 0, v), PreconditionError);
  EXPECT_THROW(block_.write_row(0, 30, v), PreconditionError);  // 30+4 > 32
  EXPECT_THROW(block_.read_row(0, 32, v), PreconditionError);
}

TEST_F(BlockTest, BroadcastReplicatesConstants) {
  const std::vector<float> consts = {3.14f, 2.71f};
  block_.write_row(512, 10, consts);
  block_.broadcast(512, 10, 2, 0, 512);
  for (std::uint32_t r = 0; r < 512; ++r) {
    EXPECT_EQ(block_.at(r, 10), 3.14f);
    EXPECT_EQ(block_.at(r, 11), 2.71f);
  }
  // Untouched columns stay zero.
  EXPECT_EQ(block_.at(100, 12), 0.0f);
}

TEST_F(BlockTest, BroadcastCostScalesWithRowCount) {
  Block small(&model_);
  Block large(&model_);
  small.set(512, 0, 1.0f);
  large.set(512, 0, 1.0f);
  small.broadcast(512, 0, 1, 0, 16);
  large.broadcast(512, 0, 1, 0, 512);
  EXPECT_GT(large.consumed().time.value(),
            10.0 * small.consumed().time.value());
}

TEST_F(BlockTest, GatherRowsAppliesPermutation) {
  for (std::uint32_t r = 0; r < 8; ++r) {
    block_.set(r, 0, static_cast<float>(r));
  }
  const std::vector<std::uint32_t> perm = {7, 6, 5, 4, 3, 2, 1, 0};
  block_.gather_rows(perm, 0, 0, 1);
  for (std::uint32_t r = 0; r < 8; ++r) {
    EXPECT_EQ(block_.at(r, 1), static_cast<float>(7 - r));
  }
}

TEST_F(BlockTest, GatherHandlesOverlappingSourceAndDestination) {
  // Shift within the same column: must read all sources before writing.
  for (std::uint32_t r = 0; r < 4; ++r) {
    block_.set(r, 5, static_cast<float>(r + 1));
  }
  const std::vector<std::uint32_t> shift = {1, 2, 3, 0};
  block_.gather_rows(shift, 5, 0, 5);
  EXPECT_EQ(block_.at(0, 5), 2.0f);
  EXPECT_EQ(block_.at(1, 5), 3.0f);
  EXPECT_EQ(block_.at(2, 5), 4.0f);
  EXPECT_EQ(block_.at(3, 5), 1.0f);
}

TEST_F(BlockTest, RowParallelArithmetic) {
  for (std::uint32_t r = 0; r < 100; ++r) {
    block_.set(r, 0, static_cast<float>(r));
    block_.set(r, 1, 2.0f);
  }
  block_.arith(Opcode::Fmul, 0, 1, 2, 0, 100);
  block_.arith(Opcode::Fadd, 2, 1, 3, 0, 100);
  block_.arith(Opcode::Fsub, 3, 0, 4, 0, 100);
  for (std::uint32_t r = 0; r < 100; ++r) {
    EXPECT_EQ(block_.at(r, 2), 2.0f * r);
    EXPECT_EQ(block_.at(r, 3), 2.0f * r + 2.0f);
    EXPECT_EQ(block_.at(r, 4), static_cast<float>(r) + 2.0f);
  }
}

TEST_F(BlockTest, ArithRejectsUnsupportedOpcode) {
  EXPECT_THROW(block_.arith(Opcode::MemCpy, 0, 1, 2, 0, 10),
               PreconditionError);
}

TEST_F(BlockTest, FscaleMultipliesByImmediate) {
  for (std::uint32_t r = 0; r < 10; ++r) {
    block_.set(r, 0, static_cast<float>(r));
  }
  block_.fscale(0, 1, -0.5f, 0, 10);
  for (std::uint32_t r = 0; r < 10; ++r) {
    EXPECT_EQ(block_.at(r, 1), -0.5f * r);
  }
}

TEST_F(BlockTest, FaxpyImplementsIntegrationUpdate) {
  // k = a*k + dt*r, the RK auxiliary update.
  block_.set(0, 0, 10.0f);  // k
  block_.set(0, 1, 4.0f);   // r
  block_.faxpy(0, 1, 0.5f, 0.25f, 0, 1);
  EXPECT_EQ(block_.at(0, 0), 0.5f * 10.0f + 0.25f * 4.0f);
}

TEST_F(BlockTest, CopyColsDuplicatesColumn) {
  for (std::uint32_t r = 0; r < 50; ++r) {
    block_.set(r, 3, static_cast<float>(2 * r));
  }
  block_.copy_cols(3, 9, 0, 50);
  for (std::uint32_t r = 0; r < 50; ++r) {
    EXPECT_EQ(block_.at(r, 9), static_cast<float>(2 * r));
  }
}

TEST_F(BlockTest, ArithTimeIndependentOfRowsEnergyNot) {
  Block a(&model_);
  Block b(&model_);
  a.arith(Opcode::Fadd, 0, 1, 2, 0, 1);
  b.arith(Opcode::Fadd, 0, 1, 2, 0, 1024);
  EXPECT_DOUBLE_EQ(a.consumed().time.value(), b.consumed().time.value());
  EXPECT_LT(a.consumed().energy.value(), b.consumed().energy.value());
}

TEST_F(BlockTest, LedgerAccumulatesAndResets) {
  block_.arith(Opcode::Fadd, 0, 1, 2, 0, 10);
  const double t1 = block_.consumed().time.value();
  block_.arith(Opcode::Fadd, 0, 1, 2, 0, 10);
  EXPECT_NEAR(block_.consumed().time.value(), 2 * t1, 1e-15);
  block_.reset_cost();
  EXPECT_EQ(block_.consumed().time.value(), 0.0);
}

TEST_F(BlockTest, ChargeAddsExternalCost) {
  block_.charge({seconds(1.0), joules(2.0)});
  EXPECT_DOUBLE_EQ(block_.consumed().time.value(), 1.0);
  EXPECT_DOUBLE_EQ(block_.consumed().energy.value(), 2.0);
}

TEST(BlockConstruction, RequiresModel) {
  EXPECT_THROW(Block(nullptr), PreconditionError);
}

}  // namespace
}  // namespace wavepim::pim
