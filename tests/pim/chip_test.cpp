#include "pim/chip.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "pim/arena.h"

namespace wavepim::pim {
namespace {

TEST(Chip, LazyBlockAllocation) {
  Chip chip(chip_16gb());
  EXPECT_EQ(chip.num_allocated_blocks(), 0u);
  EXPECT_FALSE(chip.block_allocated(7));
  chip.block(7).set(0, 0, 1.0f);
  EXPECT_TRUE(chip.block_allocated(7));
  EXPECT_EQ(chip.num_allocated_blocks(), 1u);
  // Same object on re-access.
  EXPECT_EQ(chip.block(7).at(0, 0), 1.0f);
}

TEST(Chip, RejectsOutOfRangeBlock) {
  Chip chip(chip_512mb());
  EXPECT_THROW((void)chip.block(chip.config().num_blocks()),
               PreconditionError);
}

TEST(Chip, StaticPowerMatchesTableComposition) {
  Chip chip(chip_2gb(Topology::HTree));
  EXPECT_NEAR(chip.static_power_w(), 115.02, 0.5);
}

TEST(Chip, DrainPhaseAggregatesMaxTimeAndTotalEnergy) {
  Chip chip(chip_2gb());
  chip.block(0).arith(Opcode::Fadd, 0, 1, 2, 0, 100);
  chip.block(1).arith(Opcode::Fmul, 0, 1, 2, 0, 100);
  chip.block(1).arith(Opcode::Fmul, 0, 1, 2, 0, 100);

  const auto a = chip.arith();
  const double t_fast = a.op_time(Opcode::Fadd).value();
  const double t_slow = 2 * a.op_time(Opcode::Fmul).value();
  const double e_total = a.op_energy(Opcode::Fadd, 100).value() +
                         2 * a.op_energy(Opcode::Fmul, 100).value();

  const auto phase = chip.drain_phase();
  EXPECT_NEAR(phase.busiest_block.value(), t_slow, 1e-15);
  EXPECT_GT(phase.busiest_block.value(), t_fast);
  EXPECT_NEAR(phase.energy.value(), e_total, 1e-18);

  // Ledgers are cleared after draining.
  const auto empty = chip.drain_phase();
  EXPECT_EQ(empty.busiest_block.value(), 0.0);
  EXPECT_EQ(empty.energy.value(), 0.0);
}

TEST(Chip, ExposesSubModels) {
  Chip chip(chip_8gb(Topology::Bus));
  EXPECT_EQ(chip.interconnect().topology(), Topology::Bus);
  EXPECT_GT(chip.hbm().bandwidth_bytes_per_s(), 8e11);
  EXPECT_GT(chip.host().power_w(), 0.0);
  EXPECT_EQ(chip.config().name, "PIM-8GB");
}


TEST(Chip, ResetClearsBlocksAndRecyclesArenaSlots) {
  Chip chip(chip_512mb());
  chip.block(0).set(0, 0, 3.5f);
  chip.block(3).set(1, 2, -1.0f);
  ASSERT_EQ(chip.num_allocated_blocks(), 2u);

  const auto before = FloatArena::instance().stats();
  chip.reset();
  EXPECT_EQ(chip.num_allocated_blocks(), 0u);
  EXPECT_FALSE(chip.block_allocated(0));
  EXPECT_FALSE(chip.block_allocated(3));

  // The next tenant sees a fresh fabric: re-touched blocks read zeros,
  // not the previous tenant's columns.
  EXPECT_EQ(chip.block(0).at(0, 0), 0.0f);
  EXPECT_EQ(chip.block(3).at(1, 2), 0.0f);
  EXPECT_EQ(chip.num_allocated_blocks(), 2u);

  // When the storage arena is live, the destroyed blocks' slots came
  // back through the free list instead of growing the mapping.
  const auto after = FloatArena::instance().stats();
  if (after.arena_allocs > before.arena_allocs) {
    EXPECT_GT(after.recycled, before.recycled);
  }
}

}  // namespace
}  // namespace wavepim::pim
