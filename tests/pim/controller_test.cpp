#include "pim/controller.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wavepim::pim {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  Chip chip_{chip_512mb()};
  Controller controller_{chip_};
  LoweredProgram program_;
};

TEST_F(ControllerTest, ExecutesArithmeticSequence) {
  chip_.block(0).set(0, 1, 3.0f);
  chip_.block(0).set(0, 2, 4.0f);

  Instruction mul;
  mul.op = Opcode::Fmul;
  mul.block = 0;
  mul.col_a = 1;
  mul.col_b = 2;
  mul.col_dst = 3;
  mul.row_count = 1;
  program_.instructions.push_back(mul);

  Instruction scale;
  scale.op = Opcode::Fscale;
  scale.block = 0;
  scale.col_a = 3;
  scale.col_dst = 4;
  scale.imm = -0.5f;
  scale.row_count = 1;
  program_.instructions.push_back(scale);

  const auto result = controller_.execute(program_);
  EXPECT_EQ(result.executed, 2u);
  EXPECT_EQ(chip_.block(0).at(0, 3), 12.0f);
  EXPECT_EQ(chip_.block(0).at(0, 4), -6.0f);
  EXPECT_GT(result.compute.time.value(), 0.0);
}

TEST_F(ControllerTest, MemCpyMovesDataAndSchedulesTransfer) {
  chip_.block(2).set(5, 0, 42.0f);
  Instruction cpy;
  cpy.op = Opcode::MemCpy;
  cpy.block = 2;
  cpy.peer_block = 9;
  cpy.col_a = 0;
  cpy.col_dst = 7;
  cpy.table_a = program_.add_rows({5});
  cpy.table_b = program_.add_rows({3});
  program_.instructions.push_back(cpy);

  const auto result = controller_.execute(program_);
  EXPECT_EQ(chip_.block(9).at(3, 7), 42.0f);
  EXPECT_GT(result.network.time.value(), 0.0);
  EXPECT_GT(result.network.energy.value(), 0.0);
}

TEST_F(ControllerTest, MemCpyRowListMismatchRejected) {
  Instruction cpy;
  cpy.op = Opcode::MemCpy;
  cpy.block = 0;
  cpy.peer_block = 1;
  cpy.table_a = program_.add_rows({1, 2});
  cpy.table_b = program_.add_rows({3});
  program_.instructions.push_back(cpy);
  EXPECT_THROW((void)controller_.execute(program_), PreconditionError);
}

TEST_F(ControllerTest, BroadcastRowDistributesValues) {
  Instruction bc;
  bc.op = Opcode::BroadcastRow;
  bc.block = 0;
  bc.col_dst = 6;
  bc.word_count = 2;
  bc.table_a = program_.add_rows({0, 1, 2, 3});
  bc.table_b = program_.add_values({1.0f, 2.0f, 1.0f, 2.0f});
  program_.instructions.push_back(bc);

  (void)controller_.execute(program_);
  EXPECT_EQ(chip_.block(0).at(0, 6), 1.0f);
  EXPECT_EQ(chip_.block(0).at(1, 6), 2.0f);
  EXPECT_EQ(chip_.block(0).at(3, 6), 2.0f);
}

TEST_F(ControllerTest, GatherRowsAppliesPermutation) {
  for (std::uint32_t r = 0; r < 4; ++r) {
    chip_.block(0).set(r, 0, static_cast<float>(10 + r));
  }
  Instruction g;
  g.op = Opcode::GatherRows;
  g.block = 0;
  g.col_a = 0;
  g.col_dst = 1;
  g.row = 0;
  g.table_a = program_.add_rows({3, 2, 1, 0});
  program_.instructions.push_back(g);

  (void)controller_.execute(program_);
  EXPECT_EQ(chip_.block(0).at(0, 1), 13.0f);
  EXPECT_EQ(chip_.block(0).at(3, 1), 10.0f);
}

TEST_F(ControllerTest, LutLookupChargesAlgorithm1Cost) {
  Instruction lut;
  lut.op = Opcode::LutLookup;
  lut.block = 0;
  lut.peer_block = 5;
  program_.instructions.push_back(lut);
  const auto result = controller_.execute(program_);
  // 2 reads + 1 write (4.5 ns) plus the switch leg.
  EXPECT_GT(result.compute.time.value(), 4.4e-9);
}

TEST_F(ControllerTest, NopAndRowIoExecute) {
  Instruction nop;
  nop.op = Opcode::Nop;
  program_.instructions.push_back(nop);
  Instruction rd;
  rd.op = Opcode::ReadRow;
  rd.block = 1;
  program_.instructions.push_back(rd);
  Instruction copy;
  copy.op = Opcode::CopyCols;
  copy.block = 1;
  copy.col_a = 0;
  copy.col_dst = 1;
  copy.row_count = 8;
  program_.instructions.push_back(copy);
  const auto result = controller_.execute(program_);
  EXPECT_EQ(result.executed, 3u);
}

TEST(InstructionMix, CountsAndClassifies) {
  LoweredProgram program;
  for (Opcode op : {Opcode::Fadd, Opcode::Fadd, Opcode::Fmul,
                    Opcode::MemCpy, Opcode::GatherRows, Opcode::LutLookup}) {
    Instruction inst;
    inst.op = op;
    program.instructions.push_back(inst);
  }
  const auto mix = analyze(program);
  EXPECT_EQ(mix.total, 6u);
  EXPECT_EQ(mix.count(Opcode::Fadd), 2u);
  EXPECT_EQ(mix.arith_count(), 3u);
  EXPECT_EQ(mix.memory_count(), 3u);
}

}  // namespace
}  // namespace wavepim::pim
