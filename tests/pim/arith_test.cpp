#include "pim/arith.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "pim/block.h"
#include "pim/word.h"

namespace wavepim::pim {
namespace {

TEST(ArithModel, CyclesMatchConfiguration) {
  const ArithModel m;
  EXPECT_EQ(m.cycles(Opcode::Fadd), 1200u);
  EXPECT_EQ(m.cycles(Opcode::Fmul), 3000u);
  EXPECT_EQ(m.cycles(Opcode::CopyCols), 64u);
  // Faxpy = two multiplies + one add.
  EXPECT_EQ(m.cycles(Opcode::Faxpy), 3000u + 3000u + 1200u);
}

TEST(ArithModel, TimeIsIndependentOfRowCount) {
  // Row-parallel: one row and a thousand rows take the same time.
  const ArithModel m;
  EXPECT_EQ(m.op_cost(Opcode::Fadd, 1).time, m.op_cost(Opcode::Fadd, 1000).time);
}

TEST(ArithModel, EnergyScalesLinearlyWithRows) {
  const ArithModel m;
  const Joules e1 = m.op_energy(Opcode::Fmul, 1);
  const Joules e512 = m.op_energy(Opcode::Fmul, 512);
  EXPECT_NEAR(e512.value() / e1.value(), 512.0, 1e-9);
}

TEST(ArithModel, MulCostsMoreThanAdd) {
  const ArithModel m;
  EXPECT_GT(m.op_time(Opcode::Fmul), m.op_time(Opcode::Fadd));
  EXPECT_GT(m.op_energy(Opcode::Fmul, 100), m.op_energy(Opcode::Fadd, 100));
}

TEST(ArithModel, AddLatencyMatchesNorTiming) {
  const ArithModel m;
  EXPECT_NEAR(m.op_time(Opcode::Fadd).value(), 1200 * 1.1e-9, 1e-12);
}

TEST(ArithModel, NonBlockOpsAreRejected) {
  const ArithModel m;
  EXPECT_THROW((void)m.cycles(Opcode::MemCpy), InvariantError);
  EXPECT_THROW((void)m.cycles(Opcode::ReadRow), InvariantError);
}

TEST(OpCost, Accumulates) {
  OpCost a{seconds(1.0), joules(2.0)};
  const OpCost b{seconds(0.5), joules(0.25)};
  a += b;
  EXPECT_DOUBLE_EQ(a.time.value(), 1.5);
  EXPECT_DOUBLE_EQ(a.energy.value(), 2.25);
  const OpCost c = a + b;
  EXPECT_DOUBLE_EQ(c.time.value(), 2.0);
}


// --- Differential fuzz: Block scalar arithmetic vs the word kernels -------
//
// The --exec=word tier replaces Block::arith/fscale/faxpy with the
// vectorizable kernels of pim/word.h. Its whole correctness claim is
// that each kernel computes the *same IEEE operation bit for bit* —
// including every special-value case the solver can produce. These
// sweeps feed both paths seeded-random operands laced with +-0,
// denormals, infinities, NaNs and values that overflow under add/mul,
// then compare raw bit patterns word by word.

namespace {

/// One fuzz operand: mostly ordinary magnitudes, with a deliberate tail
/// of IEEE edge cases (in the word tier these flow through AVX lanes,
/// which must round, propagate and saturate exactly like scalar code).
float fuzz_operand(Rng& rng) {
  switch (rng.next_below(10)) {
    case 0:
      return 0.0f;
    case 1:
      return -0.0f;
    case 2:  // subnormal magnitudes
      return std::ldexp(rng.next_float(-1.0f, 1.0f), -135);
    case 3:
      return std::numeric_limits<float>::infinity();
    case 4:
      return -std::numeric_limits<float>::infinity();
    case 5:
      return std::numeric_limits<float>::quiet_NaN();
    case 6:  // large: add/mul overflow to inf, exercising rounding at the top
      return rng.next_float(1.0e38f, 3.4e38f) *
             (rng.next_below(2) == 0 ? 1.0f : -1.0f);
    case 7:  // tiny: products underflow through the denormal range
      return std::ldexp(rng.next_float(-1.0f, 1.0f), -70);
    default:
      return rng.next_float(-8.0f, 8.0f);
  }
}

std::vector<float> fuzz_column(Rng& rng, std::size_t n) {
  std::vector<float> out(n);
  for (auto& v : out) {
    v = fuzz_operand(rng);
  }
  return out;
}

/// Bitwise equality, except that any NaN matches any NaN: IEEE leaves
/// the sign/payload of a NaN produced (or selected between two NaN
/// operands) by an operation unspecified, and the compiler may commute
/// commutative operands differently across the two code paths. Every
/// numeric bit pattern — signed zeros, denormals, infinities, rounding
/// at overflow — is still compared exactly.
::testing::AssertionResult bits_equal(std::span<const float> got,
                                      std::span<const float> want) {
  if (got.size() != want.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    std::uint32_t g = 0;
    std::uint32_t w = 0;
    std::memcpy(&g, &got[i], sizeof(g));
    std::memcpy(&w, &want[i], sizeof(w));
    if (std::isnan(got[i]) && std::isnan(want[i])) {
      continue;
    }
    if (g != w) {
      return ::testing::AssertionFailure()
             << "word " << i << ": got 0x" << std::hex << g << " want 0x"
             << w << std::dec << " (" << got[i] << " vs " << want[i] << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace

TEST(WordKernelFuzz, BinaryOpsBitIdenticalToBlockArith) {
  static const ArithModel model;
  constexpr std::uint32_t kRows = Block::kRows;
  const struct {
    Opcode op;
    void (*kernel)(float*, const float*, const float*, std::uint32_t);
  } cases[] = {{Opcode::Fadd, &word::add},
               {Opcode::Fsub, &word::sub},
               {Opcode::Fmul, &word::mul}};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0x9E37u);
    const auto a = fuzz_column(rng, kRows);
    const auto b = fuzz_column(rng, kRows);
    for (const auto& c : cases) {
      Block block(&model);
      block.load_column(0, a);
      block.load_column(1, b);
      block.arith(c.op, 0, 1, 2, 0, kRows);

      std::vector<float> dst(kRows, 0.0f);
      c.kernel(dst.data(), a.data(), b.data(), kRows);
      EXPECT_TRUE(bits_equal(dst, block.column(2)))
          << "op " << static_cast<int>(c.op) << " seed " << seed;
    }
  }
}

TEST(WordKernelFuzz, ScaleAndAxpyBitIdenticalToBlockForms) {
  static const ArithModel model;
  constexpr std::uint32_t kRows = Block::kRows;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0xB5297u);
    const auto src = fuzz_column(rng, kRows);
    const auto acc = fuzz_column(rng, kRows);
    const float c = fuzz_operand(rng);
    const float a = fuzz_operand(rng);

    Block block(&model);
    block.load_column(0, src);
    block.fscale(0, 1, c, 0, kRows);
    std::vector<float> dst(kRows, 0.0f);
    word::scale(dst.data(), src.data(), c, kRows);
    EXPECT_TRUE(bits_equal(dst, block.column(1))) << "scale seed " << seed;

    block.load_column(2, acc);
    block.faxpy(2, 0, a, c, 0, kRows);
    std::vector<float> axpy_dst = acc;
    word::axpy(axpy_dst.data(), src.data(), a, c, kRows);
    EXPECT_TRUE(bits_equal(axpy_dst, block.column(2)))
        << "axpy seed " << seed;
  }
}

TEST(WordKernelFuzz, StridedAndIndexedShapesMatchAndLeaveGapsUntouched) {
  static const ArithModel model;
  constexpr std::uint32_t kRows = Block::kRows;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 0x2545Fu);
    const auto a = fuzz_column(rng, kRows);
    const auto b = fuzz_column(rng, kRows);
    const auto sentinel = fuzz_column(rng, kRows);

    // A strided face-node-style subset and an irregular row list.
    const std::uint32_t start = static_cast<std::uint32_t>(rng.next_below(7));
    const std::uint32_t stride =
        2 + static_cast<std::uint32_t>(rng.next_below(5));
    const std::uint32_t count =
        static_cast<std::uint32_t>((kRows - start) / stride);
    std::vector<std::uint32_t> rows;
    for (std::uint32_t i = 0; i < 40; ++i) {
      rows.push_back(static_cast<std::uint32_t>(rng.next_below(kRows)));
    }

    Block block(&model);
    block.load_column(0, a);
    block.load_column(1, b);
    block.load_column(2, sentinel);
    std::vector<std::uint32_t> strided_rows;
    for (std::uint32_t i = 0; i < count; ++i) {
      strided_rows.push_back(start + i * stride);
    }
    block.arith_rows(Opcode::Fadd, 0, 1, 2, strided_rows);

    std::vector<float> dst = sentinel;
    word::add_strided(dst.data(), a.data(), b.data(), start, stride, count);
    EXPECT_TRUE(bits_equal(dst, block.column(2)))
        << "strided seed " << seed;

    block.load_column(2, sentinel);
    block.arith_rows(Opcode::Fmul, 0, 1, 2, rows);
    std::vector<float> idst = sentinel;
    word::mul_indexed(idst.data(), a.data(), b.data(), rows.data(),
                      static_cast<std::uint32_t>(rows.size()));
    EXPECT_TRUE(bits_equal(idst, block.column(2)))
        << "indexed seed " << seed;

    block.load_column(2, sentinel);
    block.fscale_rows(0, 2, 0.5f, rows);
    std::vector<float> sdst = sentinel;
    word::scale_indexed(sdst.data(), a.data(), 0.5f, rows.data(),
                        static_cast<std::uint32_t>(rows.size()));
    EXPECT_TRUE(bits_equal(sdst, block.column(2)))
        << "scale_indexed seed " << seed;
  }
}

TEST(WordKernelFuzz, MovementKernelsPreserveBitPatternsAndWriteOrder) {
  static const ArithModel model;
  constexpr std::uint32_t kRows = Block::kRows;
  Rng rng(0xC0FFEEu);
  const auto src = fuzz_column(rng, kRows);

  // Gather with repeated sources: NaN payloads must move verbatim.
  std::vector<std::uint32_t> rows;
  for (std::uint32_t i = 0; i < 64; ++i) {
    rows.push_back(static_cast<std::uint32_t>(rng.next_below(kRows)));
  }
  Block block(&model);
  block.load_column(0, src);
  block.gather_rows(rows, 0, 0, 1);
  std::vector<float> dst(kRows, 0.0f);
  word::gather(dst.data(), src.data(), rows.data(),
               static_cast<std::uint32_t>(rows.size()));
  EXPECT_TRUE(bits_equal(std::span(dst).first(rows.size()),
                         block.column(1).first(rows.size())));

  // Same-column gather where destination range overlaps the sources:
  // must behave as a parallel permutation (Block stages, the word
  // kernel stages through caller scratch).
  block.load_column(2, src);
  block.gather_rows(rows, 2, 0, 2);
  std::vector<float> col = src;
  std::vector<float> scratch(rows.size());
  word::gather_in_place(col.data(), rows.data(),
                        static_cast<std::uint32_t>(rows.size()),
                        scratch.data());
  EXPECT_TRUE(bits_equal(col, block.column(2)));

  // Scatter with repeated destination rows: forward order, last write
  // wins — exactly Block::scatter_rows semantics.
  std::vector<std::uint32_t> dup_rows = {5, 9, 5, 11, 9, 5};
  const std::vector<float> values = {
      1.0f, std::numeric_limits<float>::quiet_NaN(), -0.0f, 2.5f,
      std::numeric_limits<float>::infinity(), 7.0f};
  block.load_column(3, src);
  block.scatter_rows(dup_rows, 3, values, 4);
  std::vector<float> sdst = src;
  word::scatter(sdst.data(), dup_rows.data(), values.data(),
                static_cast<std::uint32_t>(dup_rows.size()));
  EXPECT_TRUE(bits_equal(sdst, block.column(3)));
}

// --- Differential fuzz: fused kernels vs their unfused sequences ----------
//
// The fusion peephole (WordPlan::fuse_stream) replaces op pairs, chains
// and gather+consume sequences with the fused kernels below. The
// correctness claim is bit-identity with the unfused kernel sequence on
// every surviving column — including when the dead-store pass passes
// store_mid/store_g = false, in which case the scratch column must be
// left byte-for-byte untouched while the primary results stay identical.
// Operands carry the same IEEE edge-case mix as the basic-kernel sweeps.

namespace {

/// A duplicate-free row subset (the plan only fuses indexed shapes after
/// proving distinctness): Fisher-Yates over [0, kRows), first n taken.
std::vector<std::uint32_t> distinct_rows(Rng& rng, std::uint32_t total,
                                         std::uint32_t n) {
  std::vector<std::uint32_t> all(total);
  for (std::uint32_t i = 0; i < total; ++i) {
    all[i] = i;
  }
  for (std::uint32_t i = total - 1; i > 0; --i) {
    std::swap(all[i], all[rng.next_below(i + 1)]);
  }
  all.resize(n);
  return all;
}

}  // namespace

TEST(FusedKernelFuzz, ScaleAddMatchesUnfusedSequenceAllShapes) {
  constexpr std::uint32_t kRows = Block::kRows;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0x85EBCAu);
    const auto a = fuzz_column(rng, kRows);
    const auto b = fuzz_column(rng, kRows);
    const auto sentinel = fuzz_column(rng, kRows);
    const float c = fuzz_operand(rng);

    // Contiguous: unfused reference is Fscale into mid, Fadd into dst.
    std::vector<float> mid_ref(kRows, 0.0f);
    std::vector<float> dst_ref(kRows, 0.0f);
    word::scale(mid_ref.data(), a.data(), c, kRows);
    word::add(dst_ref.data(), b.data(), mid_ref.data(), kRows);

    std::vector<float> mid(kRows, 0.0f);
    std::vector<float> dst(kRows, 0.0f);
    word::scale_add(dst.data(), mid.data(), a.data(), b.data(), c, kRows);
    EXPECT_TRUE(bits_equal(dst, dst_ref)) << "contig dst seed " << seed;
    EXPECT_TRUE(bits_equal(mid, mid_ref)) << "contig mid seed " << seed;

    // store_mid = false: dst identical, scratch column untouched.
    std::vector<float> mid_off = sentinel;
    std::vector<float> dst_off(kRows, 0.0f);
    word::scale_add(dst_off.data(), mid_off.data(), a.data(), b.data(), c,
                    kRows, /*store_mid=*/false);
    EXPECT_TRUE(bits_equal(dst_off, dst_ref)) << "elided dst seed " << seed;
    EXPECT_TRUE(bits_equal(mid_off, sentinel)) << "elided mid seed " << seed;

    // Strided: gap rows keep their sentinel bits.
    const std::uint32_t start = static_cast<std::uint32_t>(rng.next_below(5));
    const std::uint32_t stride =
        2 + static_cast<std::uint32_t>(rng.next_below(4));
    const std::uint32_t count = (kRows - start) / stride;
    std::vector<float> smid_ref = sentinel;
    std::vector<float> sdst_ref = sentinel;
    word::scale_strided(smid_ref.data(), a.data(), c, start, stride, count);
    word::add_strided(sdst_ref.data(), b.data(), smid_ref.data(), start,
                      stride, count);
    std::vector<float> smid = sentinel;
    std::vector<float> sdst = sentinel;
    word::scale_add_strided(sdst.data(), smid.data(), a.data(), b.data(), c,
                            start, stride, count);
    EXPECT_TRUE(bits_equal(sdst, sdst_ref)) << "strided dst seed " << seed;
    EXPECT_TRUE(bits_equal(smid, smid_ref)) << "strided mid seed " << seed;

    // Indexed over a duplicate-free row list.
    const auto rows = distinct_rows(rng, kRows, 48);
    std::vector<float> imid_ref = sentinel;
    std::vector<float> idst_ref = sentinel;
    word::scale_indexed(imid_ref.data(), a.data(), c, rows.data(),
                        static_cast<std::uint32_t>(rows.size()));
    word::add_indexed(idst_ref.data(), b.data(), imid_ref.data(), rows.data(),
                      static_cast<std::uint32_t>(rows.size()));
    std::vector<float> imid = sentinel;
    std::vector<float> idst = sentinel;
    word::scale_add_indexed(idst.data(), imid.data(), a.data(), b.data(), c,
                            rows.data(),
                            static_cast<std::uint32_t>(rows.size()));
    EXPECT_TRUE(bits_equal(idst, idst_ref)) << "indexed dst seed " << seed;
    EXPECT_TRUE(bits_equal(imid, imid_ref)) << "indexed mid seed " << seed;
  }
}

TEST(FusedKernelFuzz, MulAddMatchesUnfusedSequenceAllShapes) {
  constexpr std::uint32_t kRows = Block::kRows;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0xC2B2AEu);
    const auto a = fuzz_column(rng, kRows);
    const auto b = fuzz_column(rng, kRows);
    const auto c2 = fuzz_column(rng, kRows);
    const auto sentinel = fuzz_column(rng, kRows);

    std::vector<float> mid_ref(kRows, 0.0f);
    std::vector<float> dst_ref(kRows, 0.0f);
    word::mul(mid_ref.data(), a.data(), b.data(), kRows);
    word::add(dst_ref.data(), c2.data(), mid_ref.data(), kRows);

    std::vector<float> mid(kRows, 0.0f);
    std::vector<float> dst(kRows, 0.0f);
    word::mul_add(dst.data(), mid.data(), a.data(), b.data(), c2.data(),
                  kRows);
    EXPECT_TRUE(bits_equal(dst, dst_ref)) << "contig dst seed " << seed;
    EXPECT_TRUE(bits_equal(mid, mid_ref)) << "contig mid seed " << seed;

    std::vector<float> mid_off = sentinel;
    std::vector<float> dst_off(kRows, 0.0f);
    word::mul_add(dst_off.data(), mid_off.data(), a.data(), b.data(),
                  c2.data(), kRows, /*store_mid=*/false);
    EXPECT_TRUE(bits_equal(dst_off, dst_ref)) << "elided dst seed " << seed;
    EXPECT_TRUE(bits_equal(mid_off, sentinel)) << "elided mid seed " << seed;

    const auto rows = distinct_rows(rng, kRows, 40);
    std::vector<float> imid_ref = sentinel;
    std::vector<float> idst_ref = sentinel;
    word::mul_indexed(imid_ref.data(), a.data(), b.data(), rows.data(),
                      static_cast<std::uint32_t>(rows.size()));
    word::add_indexed(idst_ref.data(), c2.data(), imid_ref.data(),
                      rows.data(), static_cast<std::uint32_t>(rows.size()));
    std::vector<float> imid = sentinel;
    std::vector<float> idst = sentinel;
    word::mul_add_indexed(idst.data(), imid.data(), a.data(), b.data(),
                          c2.data(), rows.data(),
                          static_cast<std::uint32_t>(rows.size()),
                          /*store_mid=*/true);
    EXPECT_TRUE(bits_equal(idst, idst_ref)) << "indexed dst seed " << seed;
    EXPECT_TRUE(bits_equal(imid, imid_ref)) << "indexed mid seed " << seed;
  }
}

TEST(FusedKernelFuzz, AxpyPairMatchesSequentialAxpys) {
  constexpr std::uint32_t kRows = Block::kRows;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0x27D4EBu);
    const auto s1 = fuzz_column(rng, kRows);
    const auto d1_init = fuzz_column(rng, kRows);
    const auto d2_init = fuzz_column(rng, kRows);
    const float a1 = fuzz_operand(rng);
    const float c1 = fuzz_operand(rng);
    const float a2 = fuzz_operand(rng);
    const float c2 = fuzz_operand(rng);

    std::vector<float> d1_ref = d1_init;
    std::vector<float> d2_ref = d2_init;
    word::axpy(d1_ref.data(), s1.data(), a1, c1, kRows);
    word::axpy(d2_ref.data(), d1_ref.data(), a2, c2, kRows);

    std::vector<float> d1 = d1_init;
    std::vector<float> d2 = d2_init;
    word::axpy_pair(d1.data(), s1.data(), d2.data(), a1, c1, a2, c2, kRows);
    EXPECT_TRUE(bits_equal(d1, d1_ref)) << "d1 seed " << seed;
    EXPECT_TRUE(bits_equal(d2, d2_ref)) << "d2 seed " << seed;
  }
}

TEST(FusedKernelFuzz, ChainScaleAddMatchesUnfusedLinkSequence) {
  constexpr std::uint32_t kRows = Block::kRows;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0x165667u);
    const std::uint32_t k =
        2 + static_cast<std::uint32_t>(rng.next_below(5));
    std::vector<std::vector<float>> src_cols;
    std::vector<const float*> srcs;
    std::vector<float> imms;
    for (std::uint32_t j = 0; j < k; ++j) {
      src_cols.push_back(fuzz_column(rng, kRows));
      imms.push_back(fuzz_operand(rng));
    }
    for (const auto& col : src_cols) {
      srcs.push_back(col.data());
    }
    const auto acc_init = fuzz_column(rng, kRows);
    const auto sentinel = fuzz_column(rng, kRows);

    // Unfused: per link, Fscale into mid then Fadd acc += mid. Only the
    // last link's mid survives in the reference too.
    std::vector<float> mid_ref(kRows, 0.0f);
    std::vector<float> acc_ref = acc_init;
    for (std::uint32_t j = 0; j < k; ++j) {
      word::scale(mid_ref.data(), srcs[j], imms[j], kRows);
      word::add(acc_ref.data(), acc_ref.data(), mid_ref.data(), kRows);
    }

    std::vector<float> mid(kRows, 0.0f);
    std::vector<float> acc = acc_init;
    word::chain_scale_add(acc.data(), mid.data(), srcs.data(), imms.data(),
                          k, kRows);
    EXPECT_TRUE(bits_equal(acc, acc_ref)) << "contig acc seed " << seed;
    EXPECT_TRUE(bits_equal(mid, mid_ref)) << "contig mid seed " << seed;

    // store_mid = false leaves the scratch column alone.
    std::vector<float> mid_off = sentinel;
    std::vector<float> acc_off = acc_init;
    word::chain_scale_add(acc_off.data(), mid_off.data(), srcs.data(),
                          imms.data(), k, kRows, /*store_mid=*/false);
    EXPECT_TRUE(bits_equal(acc_off, acc_ref)) << "elided acc seed " << seed;
    EXPECT_TRUE(bits_equal(mid_off, sentinel)) << "elided mid seed " << seed;

    // Strided and indexed variants against per-link references.
    const std::uint32_t start = static_cast<std::uint32_t>(rng.next_below(5));
    const std::uint32_t stride =
        2 + static_cast<std::uint32_t>(rng.next_below(4));
    const std::uint32_t count = (kRows - start) / stride;
    std::vector<float> smid_ref = sentinel;
    std::vector<float> sacc_ref = acc_init;
    for (std::uint32_t j = 0; j < k; ++j) {
      word::scale_strided(smid_ref.data(), srcs[j], imms[j], start, stride,
                          count);
      word::add_strided(sacc_ref.data(), sacc_ref.data(), smid_ref.data(),
                        start, stride, count);
    }
    std::vector<float> smid = sentinel;
    std::vector<float> sacc = acc_init;
    word::chain_scale_add_strided(sacc.data(), smid.data(), srcs.data(),
                                  imms.data(), k, start, stride, count);
    EXPECT_TRUE(bits_equal(sacc, sacc_ref)) << "strided acc seed " << seed;
    EXPECT_TRUE(bits_equal(smid, smid_ref)) << "strided mid seed " << seed;

    const auto rows = distinct_rows(rng, kRows, 36);
    std::vector<float> imid_ref = sentinel;
    std::vector<float> iacc_ref = acc_init;
    for (std::uint32_t j = 0; j < k; ++j) {
      word::scale_indexed(imid_ref.data(), srcs[j], imms[j], rows.data(),
                          static_cast<std::uint32_t>(rows.size()));
      word::add_indexed(iacc_ref.data(), iacc_ref.data(), imid_ref.data(),
                        rows.data(),
                        static_cast<std::uint32_t>(rows.size()));
    }
    std::vector<float> imid = sentinel;
    std::vector<float> iacc = acc_init;
    word::chain_scale_add_indexed(iacc.data(), imid.data(), srcs.data(),
                                  imms.data(), k, rows.data(),
                                  static_cast<std::uint32_t>(rows.size()));
    EXPECT_TRUE(bits_equal(iacc, iacc_ref)) << "indexed acc seed " << seed;
    EXPECT_TRUE(bits_equal(imid, imid_ref)) << "indexed mid seed " << seed;
  }
}

TEST(FusedKernelFuzz, Chain2ScaleAddMatchesTwoChainsBackToBack) {
  constexpr std::uint32_t kRows = Block::kRows;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0x2545F4u);
    const std::uint32_t k =
        2 + static_cast<std::uint32_t>(rng.next_below(5));
    std::vector<std::vector<float>> src_cols;
    std::vector<const float*> srcs;
    std::vector<float> imms1;
    std::vector<float> imms2;
    for (std::uint32_t j = 0; j < k; ++j) {
      src_cols.push_back(fuzz_column(rng, kRows));
      imms1.push_back(fuzz_operand(rng));
      imms2.push_back(fuzz_operand(rng));
    }
    for (const auto& col : src_cols) {
      srcs.push_back(col.data());
    }
    const auto acc1_init = fuzz_column(rng, kRows);
    const auto acc2_init = fuzz_column(rng, kRows);
    const auto sentinel = fuzz_column(rng, kRows);

    // Reference: the two single chains back to back, exactly the
    // pre-pairing stream order. The first chain's mid store is elided
    // there (the pairing precondition), so only the second's survives.
    std::vector<float> mid_ref = sentinel;
    std::vector<float> acc1_ref = acc1_init;
    std::vector<float> acc2_ref = acc2_init;
    word::chain_scale_add(acc1_ref.data(), mid_ref.data(), srcs.data(),
                          imms1.data(), k, kRows, /*store_mid=*/false);
    word::chain_scale_add(acc2_ref.data(), mid_ref.data(), srcs.data(),
                          imms2.data(), k, kRows);

    std::vector<float> mid = sentinel;
    std::vector<float> acc1 = acc1_init;
    std::vector<float> acc2 = acc2_init;
    word::chain2_scale_add(acc1.data(), acc2.data(), mid.data(), srcs.data(),
                           imms1.data(), imms2.data(), k, kRows);
    EXPECT_TRUE(bits_equal(acc1, acc1_ref)) << "contig acc1 seed " << seed;
    EXPECT_TRUE(bits_equal(acc2, acc2_ref)) << "contig acc2 seed " << seed;
    EXPECT_TRUE(bits_equal(mid, mid_ref)) << "contig mid seed " << seed;

    // store_mid = false leaves the scratch column alone.
    std::vector<float> mid_off = sentinel;
    std::vector<float> acc1_off = acc1_init;
    std::vector<float> acc2_off = acc2_init;
    word::chain2_scale_add(acc1_off.data(), acc2_off.data(), mid_off.data(),
                           srcs.data(), imms1.data(), imms2.data(), k, kRows,
                           /*store_mid=*/false);
    EXPECT_TRUE(bits_equal(acc1_off, acc1_ref)) << "elided acc1 " << seed;
    EXPECT_TRUE(bits_equal(acc2_off, acc2_ref)) << "elided acc2 " << seed;
    EXPECT_TRUE(bits_equal(mid_off, sentinel)) << "elided mid " << seed;

    // Strided and indexed variants against the same paired reference.
    const std::uint32_t start = static_cast<std::uint32_t>(rng.next_below(5));
    const std::uint32_t stride =
        2 + static_cast<std::uint32_t>(rng.next_below(4));
    const std::uint32_t count = (kRows - start) / stride;
    std::vector<float> smid_ref = sentinel;
    std::vector<float> sacc1_ref = acc1_init;
    std::vector<float> sacc2_ref = acc2_init;
    word::chain_scale_add_strided(sacc1_ref.data(), smid_ref.data(),
                                  srcs.data(), imms1.data(), k, start, stride,
                                  count, /*store_mid=*/false);
    word::chain_scale_add_strided(sacc2_ref.data(), smid_ref.data(),
                                  srcs.data(), imms2.data(), k, start, stride,
                                  count);
    std::vector<float> smid = sentinel;
    std::vector<float> sacc1 = acc1_init;
    std::vector<float> sacc2 = acc2_init;
    word::chain2_scale_add_strided(sacc1.data(), sacc2.data(), smid.data(),
                                   srcs.data(), imms1.data(), imms2.data(), k,
                                   start, stride, count);
    EXPECT_TRUE(bits_equal(sacc1, sacc1_ref)) << "strided acc1 " << seed;
    EXPECT_TRUE(bits_equal(sacc2, sacc2_ref)) << "strided acc2 " << seed;
    EXPECT_TRUE(bits_equal(smid, smid_ref)) << "strided mid " << seed;

    const auto rows = distinct_rows(rng, kRows, 36);
    const auto nrows = static_cast<std::uint32_t>(rows.size());
    std::vector<float> imid_ref = sentinel;
    std::vector<float> iacc1_ref = acc1_init;
    std::vector<float> iacc2_ref = acc2_init;
    word::chain_scale_add_indexed(iacc1_ref.data(), imid_ref.data(),
                                  srcs.data(), imms1.data(), k, rows.data(),
                                  nrows, /*store_mid=*/false);
    word::chain_scale_add_indexed(iacc2_ref.data(), imid_ref.data(),
                                  srcs.data(), imms2.data(), k, rows.data(),
                                  nrows);
    std::vector<float> imid = sentinel;
    std::vector<float> iacc1 = acc1_init;
    std::vector<float> iacc2 = acc2_init;
    word::chain2_scale_add_indexed(iacc1.data(), iacc2.data(), imid.data(),
                                   srcs.data(), imms1.data(), imms2.data(), k,
                                   rows.data(), nrows);
    EXPECT_TRUE(bits_equal(iacc1, iacc1_ref)) << "indexed acc1 " << seed;
    EXPECT_TRUE(bits_equal(iacc2, iacc2_ref)) << "indexed acc2 " << seed;
    EXPECT_TRUE(bits_equal(imid, imid_ref)) << "indexed mid " << seed;
  }
}

TEST(FusedKernelFuzz, GatherMulAndGatherMulAddMatchUnfusedSequences) {
  constexpr std::uint32_t kRows = Block::kRows;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 0x9E3779u);
    const auto s = fuzz_column(rng, kRows);
    const auto b = fuzz_column(rng, kRows);
    const auto acc_init = fuzz_column(rng, kRows);
    const auto sentinel = fuzz_column(rng, kRows);
    // Gather rows may repeat (reads only) — no distinctness needed.
    std::vector<std::uint32_t> rows;
    for (std::uint32_t i = 0; i < 64; ++i) {
      rows.push_back(static_cast<std::uint32_t>(rng.next_below(kRows)));
    }
    const auto n = static_cast<std::uint32_t>(rows.size());

    // gather_mul vs gather; mul.
    std::vector<float> g_ref(kRows, 0.0f);
    std::vector<float> dst_ref(kRows, 0.0f);
    word::gather(g_ref.data(), s.data(), rows.data(), n);
    word::mul(dst_ref.data(), g_ref.data(), b.data(), n);

    std::vector<float> g(kRows, 0.0f);
    std::vector<float> dst(kRows, 0.0f);
    word::gather_mul(dst.data(), g.data(), s.data(), rows.data(), b.data(),
                     n);
    EXPECT_TRUE(bits_equal(std::span(dst).first(n),
                           std::span(dst_ref).first(n)))
        << "gather_mul dst seed " << seed;
    EXPECT_TRUE(bits_equal(std::span(g).first(n),
                           std::span(g_ref).first(n)))
        << "gather_mul g seed " << seed;

    std::vector<float> g_off = sentinel;
    std::vector<float> dst_off(kRows, 0.0f);
    word::gather_mul(dst_off.data(), g_off.data(), s.data(), rows.data(),
                     b.data(), n, /*store_g=*/false);
    EXPECT_TRUE(bits_equal(std::span(dst_off).first(n),
                           std::span(dst_ref).first(n)))
        << "gather_mul elided dst seed " << seed;
    EXPECT_TRUE(bits_equal(g_off, sentinel))
        << "gather_mul elided g seed " << seed;

    // gather_mul_add vs gather; mul; add — all four store_g/store_mid
    // combinations leave acc identical; elided columns stay untouched.
    std::vector<float> mid_ref(kRows, 0.0f);
    std::vector<float> acc_ref = acc_init;
    word::mul(mid_ref.data(), g_ref.data(), b.data(), n);
    word::add(acc_ref.data(), acc_ref.data(), mid_ref.data(), n);
    for (int combo = 0; combo < 4; ++combo) {
      const bool store_g = (combo & 1) != 0;
      const bool store_mid = (combo & 2) != 0;
      std::vector<float> g2 = sentinel;
      std::vector<float> mid2 = sentinel;
      std::vector<float> acc2 = acc_init;
      word::gather_mul_add(acc2.data(), mid2.data(), g2.data(), s.data(),
                           rows.data(), b.data(), n, store_g, store_mid);
      EXPECT_TRUE(bits_equal(std::span(acc2).first(n),
                             std::span(acc_ref).first(n)))
          << "gma acc combo " << combo << " seed " << seed;
      if (store_g) {
        EXPECT_TRUE(bits_equal(std::span(g2).first(n),
                               std::span(g_ref).first(n)))
            << "gma g combo " << combo << " seed " << seed;
      } else {
        EXPECT_TRUE(bits_equal(g2, sentinel))
            << "gma g untouched combo " << combo << " seed " << seed;
      }
      if (store_mid) {
        EXPECT_TRUE(bits_equal(std::span(mid2).first(n),
                               std::span(mid_ref).first(n)))
            << "gma mid combo " << combo << " seed " << seed;
      } else {
        EXPECT_TRUE(bits_equal(mid2, sentinel))
            << "gma mid untouched combo " << combo << " seed " << seed;
      }
    }
  }
}

TEST(WordKernelFuzz, ClassifyRowsResolvesEveryShape) {
  using word::RowPattern;
  const std::uint32_t contig[] = {4, 5, 6, 7};
  auto p = word::classify_rows(contig);
  EXPECT_EQ(p.kind, RowPattern::Kind::Contiguous);
  EXPECT_EQ(p.start, 4u);

  const std::uint32_t strided[] = {3, 6, 9, 12};
  p = word::classify_rows(strided);
  EXPECT_EQ(p.kind, RowPattern::Kind::Strided);
  EXPECT_EQ(p.start, 3u);
  EXPECT_EQ(p.stride, 3u);

  const std::uint32_t descending[] = {9, 6, 3};
  EXPECT_EQ(word::classify_rows(descending).kind, RowPattern::Kind::Indexed);
  const std::uint32_t repeated[] = {2, 2, 3};
  EXPECT_EQ(word::classify_rows(repeated).kind, RowPattern::Kind::Indexed);
  const std::uint32_t irregular[] = {1, 2, 4, 8};
  EXPECT_EQ(word::classify_rows(irregular).kind, RowPattern::Kind::Indexed);
  EXPECT_EQ(word::classify_rows({}).kind, RowPattern::Kind::Contiguous);
}

}  // namespace
}  // namespace wavepim::pim
