#include "pim/arith.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wavepim::pim {
namespace {

TEST(ArithModel, CyclesMatchConfiguration) {
  const ArithModel m;
  EXPECT_EQ(m.cycles(Opcode::Fadd), 1200u);
  EXPECT_EQ(m.cycles(Opcode::Fmul), 3000u);
  EXPECT_EQ(m.cycles(Opcode::CopyCols), 64u);
  // Faxpy = two multiplies + one add.
  EXPECT_EQ(m.cycles(Opcode::Faxpy), 3000u + 3000u + 1200u);
}

TEST(ArithModel, TimeIsIndependentOfRowCount) {
  // Row-parallel: one row and a thousand rows take the same time.
  const ArithModel m;
  EXPECT_EQ(m.op_cost(Opcode::Fadd, 1).time, m.op_cost(Opcode::Fadd, 1000).time);
}

TEST(ArithModel, EnergyScalesLinearlyWithRows) {
  const ArithModel m;
  const Joules e1 = m.op_energy(Opcode::Fmul, 1);
  const Joules e512 = m.op_energy(Opcode::Fmul, 512);
  EXPECT_NEAR(e512.value() / e1.value(), 512.0, 1e-9);
}

TEST(ArithModel, MulCostsMoreThanAdd) {
  const ArithModel m;
  EXPECT_GT(m.op_time(Opcode::Fmul), m.op_time(Opcode::Fadd));
  EXPECT_GT(m.op_energy(Opcode::Fmul, 100), m.op_energy(Opcode::Fadd, 100));
}

TEST(ArithModel, AddLatencyMatchesNorTiming) {
  const ArithModel m;
  EXPECT_NEAR(m.op_time(Opcode::Fadd).value(), 1200 * 1.1e-9, 1e-12);
}

TEST(ArithModel, NonBlockOpsAreRejected) {
  const ArithModel m;
  EXPECT_THROW((void)m.cycles(Opcode::MemCpy), InvariantError);
  EXPECT_THROW((void)m.cycles(Opcode::ReadRow), InvariantError);
}

TEST(OpCost, Accumulates) {
  OpCost a{seconds(1.0), joules(2.0)};
  const OpCost b{seconds(0.5), joules(0.25)};
  a += b;
  EXPECT_DOUBLE_EQ(a.time.value(), 1.5);
  EXPECT_DOUBLE_EQ(a.energy.value(), 2.25);
  const OpCost c = a + b;
  EXPECT_DOUBLE_EQ(c.time.value(), 2.0);
}

}  // namespace
}  // namespace wavepim::pim
