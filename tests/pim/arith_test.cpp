#include "pim/arith.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "pim/block.h"
#include "pim/word.h"

namespace wavepim::pim {
namespace {

TEST(ArithModel, CyclesMatchConfiguration) {
  const ArithModel m;
  EXPECT_EQ(m.cycles(Opcode::Fadd), 1200u);
  EXPECT_EQ(m.cycles(Opcode::Fmul), 3000u);
  EXPECT_EQ(m.cycles(Opcode::CopyCols), 64u);
  // Faxpy = two multiplies + one add.
  EXPECT_EQ(m.cycles(Opcode::Faxpy), 3000u + 3000u + 1200u);
}

TEST(ArithModel, TimeIsIndependentOfRowCount) {
  // Row-parallel: one row and a thousand rows take the same time.
  const ArithModel m;
  EXPECT_EQ(m.op_cost(Opcode::Fadd, 1).time, m.op_cost(Opcode::Fadd, 1000).time);
}

TEST(ArithModel, EnergyScalesLinearlyWithRows) {
  const ArithModel m;
  const Joules e1 = m.op_energy(Opcode::Fmul, 1);
  const Joules e512 = m.op_energy(Opcode::Fmul, 512);
  EXPECT_NEAR(e512.value() / e1.value(), 512.0, 1e-9);
}

TEST(ArithModel, MulCostsMoreThanAdd) {
  const ArithModel m;
  EXPECT_GT(m.op_time(Opcode::Fmul), m.op_time(Opcode::Fadd));
  EXPECT_GT(m.op_energy(Opcode::Fmul, 100), m.op_energy(Opcode::Fadd, 100));
}

TEST(ArithModel, AddLatencyMatchesNorTiming) {
  const ArithModel m;
  EXPECT_NEAR(m.op_time(Opcode::Fadd).value(), 1200 * 1.1e-9, 1e-12);
}

TEST(ArithModel, NonBlockOpsAreRejected) {
  const ArithModel m;
  EXPECT_THROW((void)m.cycles(Opcode::MemCpy), InvariantError);
  EXPECT_THROW((void)m.cycles(Opcode::ReadRow), InvariantError);
}

TEST(OpCost, Accumulates) {
  OpCost a{seconds(1.0), joules(2.0)};
  const OpCost b{seconds(0.5), joules(0.25)};
  a += b;
  EXPECT_DOUBLE_EQ(a.time.value(), 1.5);
  EXPECT_DOUBLE_EQ(a.energy.value(), 2.25);
  const OpCost c = a + b;
  EXPECT_DOUBLE_EQ(c.time.value(), 2.0);
}


// --- Differential fuzz: Block scalar arithmetic vs the word kernels -------
//
// The --exec=word tier replaces Block::arith/fscale/faxpy with the
// vectorizable kernels of pim/word.h. Its whole correctness claim is
// that each kernel computes the *same IEEE operation bit for bit* —
// including every special-value case the solver can produce. These
// sweeps feed both paths seeded-random operands laced with +-0,
// denormals, infinities, NaNs and values that overflow under add/mul,
// then compare raw bit patterns word by word.

namespace {

/// One fuzz operand: mostly ordinary magnitudes, with a deliberate tail
/// of IEEE edge cases (in the word tier these flow through AVX lanes,
/// which must round, propagate and saturate exactly like scalar code).
float fuzz_operand(Rng& rng) {
  switch (rng.next_below(10)) {
    case 0:
      return 0.0f;
    case 1:
      return -0.0f;
    case 2:  // subnormal magnitudes
      return std::ldexp(rng.next_float(-1.0f, 1.0f), -135);
    case 3:
      return std::numeric_limits<float>::infinity();
    case 4:
      return -std::numeric_limits<float>::infinity();
    case 5:
      return std::numeric_limits<float>::quiet_NaN();
    case 6:  // large: add/mul overflow to inf, exercising rounding at the top
      return rng.next_float(1.0e38f, 3.4e38f) *
             (rng.next_below(2) == 0 ? 1.0f : -1.0f);
    case 7:  // tiny: products underflow through the denormal range
      return std::ldexp(rng.next_float(-1.0f, 1.0f), -70);
    default:
      return rng.next_float(-8.0f, 8.0f);
  }
}

std::vector<float> fuzz_column(Rng& rng, std::size_t n) {
  std::vector<float> out(n);
  for (auto& v : out) {
    v = fuzz_operand(rng);
  }
  return out;
}

/// Bitwise equality, except that any NaN matches any NaN: IEEE leaves
/// the sign/payload of a NaN produced (or selected between two NaN
/// operands) by an operation unspecified, and the compiler may commute
/// commutative operands differently across the two code paths. Every
/// numeric bit pattern — signed zeros, denormals, infinities, rounding
/// at overflow — is still compared exactly.
::testing::AssertionResult bits_equal(std::span<const float> got,
                                      std::span<const float> want) {
  if (got.size() != want.size()) {
    return ::testing::AssertionFailure() << "size mismatch";
  }
  for (std::size_t i = 0; i < got.size(); ++i) {
    std::uint32_t g = 0;
    std::uint32_t w = 0;
    std::memcpy(&g, &got[i], sizeof(g));
    std::memcpy(&w, &want[i], sizeof(w));
    if (std::isnan(got[i]) && std::isnan(want[i])) {
      continue;
    }
    if (g != w) {
      return ::testing::AssertionFailure()
             << "word " << i << ": got 0x" << std::hex << g << " want 0x"
             << w << std::dec << " (" << got[i] << " vs " << want[i] << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace

TEST(WordKernelFuzz, BinaryOpsBitIdenticalToBlockArith) {
  static const ArithModel model;
  constexpr std::uint32_t kRows = Block::kRows;
  const struct {
    Opcode op;
    void (*kernel)(float*, const float*, const float*, std::uint32_t);
  } cases[] = {{Opcode::Fadd, &word::add},
               {Opcode::Fsub, &word::sub},
               {Opcode::Fmul, &word::mul}};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0x9E37u);
    const auto a = fuzz_column(rng, kRows);
    const auto b = fuzz_column(rng, kRows);
    for (const auto& c : cases) {
      Block block(&model);
      block.load_column(0, a);
      block.load_column(1, b);
      block.arith(c.op, 0, 1, 2, 0, kRows);

      std::vector<float> dst(kRows, 0.0f);
      c.kernel(dst.data(), a.data(), b.data(), kRows);
      EXPECT_TRUE(bits_equal(dst, block.column(2)))
          << "op " << static_cast<int>(c.op) << " seed " << seed;
    }
  }
}

TEST(WordKernelFuzz, ScaleAndAxpyBitIdenticalToBlockForms) {
  static const ArithModel model;
  constexpr std::uint32_t kRows = Block::kRows;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0xB5297u);
    const auto src = fuzz_column(rng, kRows);
    const auto acc = fuzz_column(rng, kRows);
    const float c = fuzz_operand(rng);
    const float a = fuzz_operand(rng);

    Block block(&model);
    block.load_column(0, src);
    block.fscale(0, 1, c, 0, kRows);
    std::vector<float> dst(kRows, 0.0f);
    word::scale(dst.data(), src.data(), c, kRows);
    EXPECT_TRUE(bits_equal(dst, block.column(1))) << "scale seed " << seed;

    block.load_column(2, acc);
    block.faxpy(2, 0, a, c, 0, kRows);
    std::vector<float> axpy_dst = acc;
    word::axpy(axpy_dst.data(), src.data(), a, c, kRows);
    EXPECT_TRUE(bits_equal(axpy_dst, block.column(2)))
        << "axpy seed " << seed;
  }
}

TEST(WordKernelFuzz, StridedAndIndexedShapesMatchAndLeaveGapsUntouched) {
  static const ArithModel model;
  constexpr std::uint32_t kRows = Block::kRows;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 0x2545Fu);
    const auto a = fuzz_column(rng, kRows);
    const auto b = fuzz_column(rng, kRows);
    const auto sentinel = fuzz_column(rng, kRows);

    // A strided face-node-style subset and an irregular row list.
    const std::uint32_t start = static_cast<std::uint32_t>(rng.next_below(7));
    const std::uint32_t stride =
        2 + static_cast<std::uint32_t>(rng.next_below(5));
    const std::uint32_t count =
        static_cast<std::uint32_t>((kRows - start) / stride);
    std::vector<std::uint32_t> rows;
    for (std::uint32_t i = 0; i < 40; ++i) {
      rows.push_back(static_cast<std::uint32_t>(rng.next_below(kRows)));
    }

    Block block(&model);
    block.load_column(0, a);
    block.load_column(1, b);
    block.load_column(2, sentinel);
    std::vector<std::uint32_t> strided_rows;
    for (std::uint32_t i = 0; i < count; ++i) {
      strided_rows.push_back(start + i * stride);
    }
    block.arith_rows(Opcode::Fadd, 0, 1, 2, strided_rows);

    std::vector<float> dst = sentinel;
    word::add_strided(dst.data(), a.data(), b.data(), start, stride, count);
    EXPECT_TRUE(bits_equal(dst, block.column(2)))
        << "strided seed " << seed;

    block.load_column(2, sentinel);
    block.arith_rows(Opcode::Fmul, 0, 1, 2, rows);
    std::vector<float> idst = sentinel;
    word::mul_indexed(idst.data(), a.data(), b.data(), rows.data(),
                      static_cast<std::uint32_t>(rows.size()));
    EXPECT_TRUE(bits_equal(idst, block.column(2)))
        << "indexed seed " << seed;

    block.load_column(2, sentinel);
    block.fscale_rows(0, 2, 0.5f, rows);
    std::vector<float> sdst = sentinel;
    word::scale_indexed(sdst.data(), a.data(), 0.5f, rows.data(),
                        static_cast<std::uint32_t>(rows.size()));
    EXPECT_TRUE(bits_equal(sdst, block.column(2)))
        << "scale_indexed seed " << seed;
  }
}

TEST(WordKernelFuzz, MovementKernelsPreserveBitPatternsAndWriteOrder) {
  static const ArithModel model;
  constexpr std::uint32_t kRows = Block::kRows;
  Rng rng(0xC0FFEEu);
  const auto src = fuzz_column(rng, kRows);

  // Gather with repeated sources: NaN payloads must move verbatim.
  std::vector<std::uint32_t> rows;
  for (std::uint32_t i = 0; i < 64; ++i) {
    rows.push_back(static_cast<std::uint32_t>(rng.next_below(kRows)));
  }
  Block block(&model);
  block.load_column(0, src);
  block.gather_rows(rows, 0, 0, 1);
  std::vector<float> dst(kRows, 0.0f);
  word::gather(dst.data(), src.data(), rows.data(),
               static_cast<std::uint32_t>(rows.size()));
  EXPECT_TRUE(bits_equal(std::span(dst).first(rows.size()),
                         block.column(1).first(rows.size())));

  // Same-column gather where destination range overlaps the sources:
  // must behave as a parallel permutation (Block stages, the word
  // kernel stages through caller scratch).
  block.load_column(2, src);
  block.gather_rows(rows, 2, 0, 2);
  std::vector<float> col = src;
  std::vector<float> scratch(rows.size());
  word::gather_in_place(col.data(), rows.data(),
                        static_cast<std::uint32_t>(rows.size()),
                        scratch.data());
  EXPECT_TRUE(bits_equal(col, block.column(2)));

  // Scatter with repeated destination rows: forward order, last write
  // wins — exactly Block::scatter_rows semantics.
  std::vector<std::uint32_t> dup_rows = {5, 9, 5, 11, 9, 5};
  const std::vector<float> values = {
      1.0f, std::numeric_limits<float>::quiet_NaN(), -0.0f, 2.5f,
      std::numeric_limits<float>::infinity(), 7.0f};
  block.load_column(3, src);
  block.scatter_rows(dup_rows, 3, values, 4);
  std::vector<float> sdst = src;
  word::scatter(sdst.data(), dup_rows.data(), values.data(),
                static_cast<std::uint32_t>(dup_rows.size()));
  EXPECT_TRUE(bits_equal(sdst, block.column(3)));
}

TEST(WordKernelFuzz, ClassifyRowsResolvesEveryShape) {
  using word::RowPattern;
  const std::uint32_t contig[] = {4, 5, 6, 7};
  auto p = word::classify_rows(contig);
  EXPECT_EQ(p.kind, RowPattern::Kind::Contiguous);
  EXPECT_EQ(p.start, 4u);

  const std::uint32_t strided[] = {3, 6, 9, 12};
  p = word::classify_rows(strided);
  EXPECT_EQ(p.kind, RowPattern::Kind::Strided);
  EXPECT_EQ(p.start, 3u);
  EXPECT_EQ(p.stride, 3u);

  const std::uint32_t descending[] = {9, 6, 3};
  EXPECT_EQ(word::classify_rows(descending).kind, RowPattern::Kind::Indexed);
  const std::uint32_t repeated[] = {2, 2, 3};
  EXPECT_EQ(word::classify_rows(repeated).kind, RowPattern::Kind::Indexed);
  const std::uint32_t irregular[] = {1, 2, 4, 8};
  EXPECT_EQ(word::classify_rows(irregular).kind, RowPattern::Kind::Indexed);
  EXPECT_EQ(word::classify_rows({}).kind, RowPattern::Kind::Contiguous);
}

}  // namespace
}  // namespace wavepim::pim
