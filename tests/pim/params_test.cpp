#include "pim/params.h"

#include <gtest/gtest.h>

namespace wavepim::pim {
namespace {

TEST(ChipConfig, BlockAndTileGeometry) {
  EXPECT_EQ(ChipConfig::block_bytes(), kibibytes(128));  // 1 Mb crossbar
  EXPECT_EQ(ChipConfig::tile_bytes(), mebibytes(32));
  EXPECT_EQ(ChipConfig::words_per_row(), 32u);
  EXPECT_EQ(chip_2gb().htree_switches_per_tile(), 85u);  // Table 3
}

TEST(ChipConfig, StandardCapacities) {
  const auto chips = standard_chips();
  EXPECT_EQ(chips[0].num_tiles(), 16u);   // 512 MB
  EXPECT_EQ(chips[1].num_tiles(), 64u);   // 2 GB (Table 3 / DUAL)
  EXPECT_EQ(chips[2].num_tiles(), 256u);  // 8 GB
  EXPECT_EQ(chips[3].num_tiles(), 512u);  // 16 GB
  EXPECT_EQ(chips[1].num_blocks(), 16384u);
}

TEST(ChipConfig, ParallelLanesMatchPaper) {
  // "a 2GB PIM chip can support ... 2GB/1,024b = 16M" parallel operations.
  const auto c = chip_2gb();
  EXPECT_EQ(c.parallel_lanes(), 16384ull * 1024);
  EXPECT_NEAR(static_cast<double>(c.parallel_lanes()), 16.8e6, 1e6);
}

TEST(ComponentPower, BlockPowerMatchesTable3) {
  const ComponentPower p;
  EXPECT_NEAR(p.block_w(), 8.83e-3, 1e-6);  // 6.14 + 2.38 + 0.31 mW
}

TEST(ComponentPower, TilePowerMatchesTable3) {
  const ComponentPower p;
  EXPECT_NEAR(p.tile_w(/*htree=*/true), 1.68, 0.01);
  EXPECT_NEAR(p.tile_w(/*htree=*/false), 1.59, 0.01);
}

TEST(ComponentPower, ChipTotalsMatchTable3) {
  // 2 GB chip: 115.02 W (H-tree) / 109.25 W (Bus).
  EXPECT_NEAR(chip_static_power_w(chip_2gb(Topology::HTree)), 115.02, 0.5);
  EXPECT_NEAR(chip_static_power_w(chip_2gb(Topology::Bus)), 109.25, 0.8);
}

TEST(ComponentPower, LargerChipsDrawMorePower) {
  double prev = 0.0;
  for (const auto& c : standard_chips()) {
    const double w = chip_static_power_w(c);
    EXPECT_GT(w, prev);
    prev = w;
  }
}

TEST(Throughput, Peak2GbMatchesTable2) {
  // Table 2: PIM maximum throughput ~7.25 TFLOP/s for the 2 GB chip at a
  // 50/50 add/mul mix.
  const double peak = peak_throughput_flops(chip_2gb());
  EXPECT_NEAR(peak / 1e12, 7.25, 0.15);
}

TEST(Throughput, ScalesWithCapacity) {
  EXPECT_NEAR(peak_throughput_flops(chip_8gb()) /
                  peak_throughput_flops(chip_2gb()),
              4.0, 1e-9);
}

TEST(ProcessScaling, PaperFactors) {
  const auto s = ProcessScaling::node_12nm();
  EXPECT_DOUBLE_EQ(s.speedup, 3.81);
  EXPECT_DOUBLE_EQ(s.energy_saving, 2.0);
  EXPECT_DOUBLE_EQ(ProcessScaling::node_28nm().speedup, 1.0);
}

TEST(Topology, Names) {
  EXPECT_STREQ(to_string(Topology::HTree), "h-tree");
  EXPECT_STREQ(to_string(Topology::Bus), "bus");
}

TEST(BasicOpParams, Table4Values) {
  const BasicOpParams p;
  EXPECT_DOUBLE_EQ(p.t_nor.value(), 1.1e-9);
  EXPECT_DOUBLE_EQ(p.t_search.value(), 1.5e-9);
  EXPECT_DOUBLE_EQ(p.e_set.value(), 23.8e-15);
  EXPECT_DOUBLE_EQ(p.e_reset.value(), 0.32e-15);
  EXPECT_DOUBLE_EQ(p.e_nor.value(), 0.29e-15);
  EXPECT_DOUBLE_EQ(p.e_search.value(), 5.34e-12);
}

}  // namespace
}  // namespace wavepim::pim
