#include <gtest/gtest.h>

#include "pim/hbm.h"
#include "pim/host.h"

namespace wavepim::pim {
namespace {

TEST(HbmModel, PaperDefaults) {
  const HbmModel hbm;
  EXPECT_DOUBLE_EQ(hbm.bandwidth_bytes_per_s(), 900.0e9);  // Table 2
  EXPECT_DOUBLE_EQ(hbm.active_power_w(), 36.91);           // §7.1
}

TEST(HbmModel, TransferTimeIsBandwidthLimited) {
  const HbmModel hbm;
  EXPECT_DOUBLE_EQ(hbm.transfer_time(gibibytes(9)).value(),
                   9.0 * 1024 * 1024 * 1024 / 900.0e9);
  EXPECT_DOUBLE_EQ(hbm.transfer_time(0).value(), 0.0);
}

TEST(HbmModel, EnergyIsActivePowerTimesTime) {
  const HbmModel hbm;
  const auto cost = hbm.transfer_cost(gibibytes(90));
  EXPECT_NEAR(cost.energy.value(), cost.time.value() * 36.91, 1e-12);
}

TEST(HbmModel, CustomBandwidth) {
  const HbmModel slow(100.0e9, 10.0);
  EXPECT_GT(slow.transfer_time(mebibytes(100)).value(),
            HbmModel().transfer_time(mebibytes(100)).value());
}

TEST(HostModel, PaperPower) {
  const HostModel host;
  EXPECT_DOUBLE_EQ(host.power_w(), 3.06);  // Table 3
}

TEST(HostModel, SpecialOpsScaleLinearly) {
  const HostModel host(1.0e9);
  EXPECT_DOUBLE_EQ(host.special_ops_time(1'000'000).value(), 1e-3);
  EXPECT_DOUBLE_EQ(host.special_ops_time(0).value(), 0.0);
  const auto cost = host.special_ops_cost(2'000'000);
  EXPECT_NEAR(cost.energy.value(), cost.time.value() * 3.06, 1e-15);
}

TEST(HostModel, FasterHostShortensPreprocessing) {
  const HostModel slow(1.0e8);
  const HostModel fast(1.0e10);
  EXPECT_GT(slow.special_ops_time(1000).value(),
            fast.special_ops_time(1000).value());
}

}  // namespace
}  // namespace wavepim::pim
