#include "pim/lut.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"

namespace wavepim::pim {
namespace {

class LutTest : public ::testing::Test {
 protected:
  ArithModel model_;
  Interconnect net_{chip_2gb(Topology::HTree)};
  Block compute_{&model_};
  Block storage_{&model_};
};

TEST_F(LutTest, LoadsContentsIntoBlockRows) {
  std::vector<float> contents(100);
  for (std::size_t i = 0; i < contents.size(); ++i) {
    contents[i] = std::sqrt(static_cast<float>(i));
  }
  const LookupTable table(/*block_id=*/42, contents, storage_);
  EXPECT_EQ(table.size(), 100u);
  EXPECT_EQ(table.block_id(), 42u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(table.value_at(i, storage_), contents[i]);
  }
  EXPECT_GT(table.load_cost().time.value(), 0.0);
}

TEST_F(LutTest, RejectsEmptyAndOversizedTables) {
  EXPECT_THROW(LookupTable(0, {}, storage_), PreconditionError);
  const std::vector<float> too_big(Block::kRows * Block::kWords + 1);
  EXPECT_THROW(LookupTable(0, too_big, storage_), PreconditionError);
}

TEST_F(LutTest, ExecutesAlgorithm1EndToEnd) {
  // Table of reciprocals (the "inverse" offload of §5.1).
  std::vector<float> contents(64);
  for (std::size_t i = 0; i < contents.size(); ++i) {
    contents[i] = 1.0f / static_cast<float>(i + 1);
  }
  const LookupTable table(/*block_id=*/8, contents, storage_);

  // The compute block generated index 9 at (row 3, offset 2).
  compute_.set(3, 2, 9.0f);
  const LutInstructionFields inst{.opcode = kLutOpcode,
                                  .row_id = 3,
                                  .offset_s = 2,
                                  .lut_block_id = 8,
                                  .offset_d = 11};
  const float got = execute_lut(inst, compute_, /*compute_block_id=*/0,
                                storage_, table, net_);
  EXPECT_EQ(got, contents[9]);
  // W_1 stored the content at the destination offset.
  EXPECT_EQ(compute_.at(3, 11), contents[9]);
  // Both blocks were charged.
  EXPECT_GT(compute_.consumed().time.value(), 0.0);
}

TEST_F(LutTest, WireFormatDrivesExecution) {
  std::vector<float> contents = {10.0f, 20.0f, 30.0f};
  const LookupTable table(/*block_id=*/3, contents, storage_);
  compute_.set(0, 0, 2.0f);  // index 2

  const LutInstructionFields fields{.opcode = kLutOpcode,
                                    .row_id = 0,
                                    .offset_s = 0,
                                    .lut_block_id = 3,
                                    .offset_d = 1};
  // Round-trip through the 64-bit encoding before executing.
  const auto decoded = decode_lut(encode_lut(fields));
  const float got = execute_lut(decoded, compute_, 0, storage_, table, net_);
  EXPECT_EQ(got, 30.0f);
}

TEST_F(LutTest, MismatchedTableRejected) {
  const std::vector<float> contents = {1.0f};
  const LookupTable table(/*block_id=*/5, contents, storage_);
  const LutInstructionFields inst{.opcode = kLutOpcode, .lut_block_id = 4};
  EXPECT_THROW(
      (void)execute_lut(inst, compute_, 0, storage_, table, net_),
      PreconditionError);
}

TEST_F(LutTest, InterBlockLegChargedForRemoteLut) {
  std::vector<float> contents = {7.0f};
  const LookupTable table(/*block_id=*/100, contents, storage_);
  compute_.set(0, 0, 0.0f);
  const LutInstructionFields inst{.opcode = kLutOpcode,
                                  .row_id = 0,
                                  .offset_s = 0,
                                  .lut_block_id = 100,
                                  .offset_d = 1};

  Block local_compute(&model_);
  local_compute.set(0, 0, 0.0f);
  (void)execute_lut(inst, compute_, /*compute_block_id=*/0, storage_, table,
                    net_);
  // Same-block LUT (id match) would skip the hop; different block pays it.
  const double remote_time = compute_.consumed().time.value();
  Block same(&model_);
  same.set(0, 0, 0.0f);
  (void)execute_lut(inst, same, /*compute_block_id=*/100, storage_, table,
                    net_);
  EXPECT_GT(remote_time, same.consumed().time.value());
}

}  // namespace
}  // namespace wavepim::pim
