#include "pim/isa.h"

#include <gtest/gtest.h>

#include <array>

#include "common/error.h"

namespace wavepim::pim {
namespace {

TEST(LutEncoding, RoundTripsAllFields) {
  const LutInstructionFields f{.opcode = kLutOpcode,
                               .row_id = 12345,
                               .offset_s = 7,
                               .lut_block_id = 54321,
                               .offset_d = 31};
  EXPECT_EQ(decode_lut(encode_lut(f)), f);
}

TEST(LutEncoding, FieldBoundaries) {
  // Max values of every field must round-trip independently.
  LutInstructionFields f{.opcode = 0x7F,
                         .row_id = (1u << 26) - 1,
                         .offset_s = 31,
                         .lut_block_id = (1u << 21) - 1,
                         .offset_d = 31};
  EXPECT_EQ(decode_lut(encode_lut(f)), f);

  f = LutInstructionFields{};  // all zero
  EXPECT_EQ(decode_lut(encode_lut(f)), f);
}

TEST(LutEncoding, OpcodeOccupiesTopBits) {
  const LutInstructionFields f{.opcode = kLutOpcode};
  const std::uint64_t word = encode_lut(f);
  EXPECT_EQ(word >> 57, kLutOpcode);
}

TEST(LutEncoding, RejectsOverflowingFields) {
  LutInstructionFields f;
  f.row_id = 1u << 26;
  EXPECT_THROW((void)encode_lut(f), PreconditionError);
  f = {};
  f.lut_block_id = 1u << 21;
  EXPECT_THROW((void)encode_lut(f), PreconditionError);
}

TEST(LutEncoding, ExhaustiveFieldBoundaryCrossProduct) {
  // Property sweep over every combination of boundary values (0, 1, a
  // mid pattern, max-1, max) in all five fields at once — 5^5 = 3125
  // encodings. Any field that leaks into a neighbour's bit range, or is
  // masked a bit short, breaks a round-trip here.
  const auto boundaries = [](std::uint32_t bits) {
    const std::uint32_t max = (1u << bits) - 1;
    return std::array<std::uint32_t, 5>{0, 1, 0x15555555u & max, max - 1,
                                        max};
  };
  const auto opcodes = boundaries(7);
  const auto row_ids = boundaries(26);
  const auto offsets_s = boundaries(5);
  const auto lut_blocks = boundaries(21);
  const auto offsets_d = boundaries(5);
  for (std::uint32_t opcode : opcodes) {
    for (std::uint32_t row_id : row_ids) {
      for (std::uint32_t offset_s : offsets_s) {
        for (std::uint32_t lut_block : lut_blocks) {
          for (std::uint32_t offset_d : offsets_d) {
            const LutInstructionFields f{
                .opcode = static_cast<std::uint8_t>(opcode),
                .row_id = row_id,
                .offset_s = static_cast<std::uint8_t>(offset_s),
                .lut_block_id = lut_block,
                .offset_d = static_cast<std::uint8_t>(offset_d)};
            ASSERT_EQ(decode_lut(encode_lut(f)), f)
                << "opcode=" << opcode << " row_id=" << row_id
                << " offset_s=" << offset_s << " lut_block=" << lut_block
                << " offset_d=" << offset_d;
          }
        }
      }
    }
  }
}

TEST(LutEncoding, WalkingBitsStayInTheirField) {
  // Each single bit of each field must land exactly at its Fig. 4 wire
  // position (and nowhere else) — stricter than a round-trip, which a
  // consistently-wrong shift pair would still pass.
  const auto expect_single_bit = [](const LutInstructionFields& f,
                                    std::uint32_t wire_bit) {
    ASSERT_EQ(encode_lut(f), 1ull << wire_bit) << "wire bit " << wire_bit;
    ASSERT_EQ(decode_lut(1ull << wire_bit), f) << "wire bit " << wire_bit;
  };
  for (std::uint32_t b = 0; b < 7; ++b) {
    expect_single_bit({.opcode = static_cast<std::uint8_t>(1u << b)}, 57 + b);
  }
  for (std::uint32_t b = 0; b < 26; ++b) {
    expect_single_bit({.row_id = 1u << b}, 31 + b);
  }
  for (std::uint32_t b = 0; b < 5; ++b) {
    expect_single_bit({.offset_s = static_cast<std::uint8_t>(1u << b)},
                      26 + b);
  }
  for (std::uint32_t b = 0; b < 21; ++b) {
    expect_single_bit({.lut_block_id = 1u << b}, 5 + b);
  }
  for (std::uint32_t b = 0; b < 5; ++b) {
    expect_single_bit({.offset_d = static_cast<std::uint8_t>(1u << b)}, b);
  }
}

TEST(LutAddresses, FollowAlgorithm1) {
  // Algorithm 1: index at Row*1024 + Offset_S*32; content at
  // LUTBlock*1024*1024 + index*32; dest at Row*1024 + Offset_D*32.
  const LutInstructionFields f{.opcode = kLutOpcode,
                               .row_id = 3,
                               .offset_s = 2,
                               .lut_block_id = 5,
                               .offset_d = 9};
  const auto a = lut_addresses(f, /*index=*/100);
  EXPECT_EQ(a.index_bit_address, 3u * 1024 + 2 * 32);
  EXPECT_EQ(a.content_bit_address, 5ull * 1024 * 1024 + 100 * 32);
  EXPECT_EQ(a.dest_bit_address, 3u * 1024 + 9 * 32);
}

TEST(Opcode, ArithClassification) {
  EXPECT_TRUE(is_arith(Opcode::Fadd));
  EXPECT_TRUE(is_arith(Opcode::Fmul));
  EXPECT_TRUE(is_arith(Opcode::Faxpy));
  EXPECT_FALSE(is_arith(Opcode::MemCpy));
  EXPECT_FALSE(is_arith(Opcode::ReadRow));
  EXPECT_FALSE(is_arith(Opcode::LutLookup));
}

TEST(Opcode, NamesAreDistinct) {
  EXPECT_STREQ(to_string(Opcode::Fadd), "fadd");
  EXPECT_STREQ(to_string(Opcode::MemCpy), "memcpy");
  EXPECT_STREQ(to_string(Opcode::LutLookup), "lut_lookup");
  EXPECT_STREQ(to_string(Opcode::HostLoad), "host_load");
}

}  // namespace
}  // namespace wavepim::pim
