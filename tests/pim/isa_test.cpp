#include "pim/isa.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wavepim::pim {
namespace {

TEST(LutEncoding, RoundTripsAllFields) {
  const LutInstructionFields f{.opcode = kLutOpcode,
                               .row_id = 12345,
                               .offset_s = 7,
                               .lut_block_id = 54321,
                               .offset_d = 31};
  EXPECT_EQ(decode_lut(encode_lut(f)), f);
}

TEST(LutEncoding, FieldBoundaries) {
  // Max values of every field must round-trip independently.
  LutInstructionFields f{.opcode = 0x7F,
                         .row_id = (1u << 26) - 1,
                         .offset_s = 31,
                         .lut_block_id = (1u << 21) - 1,
                         .offset_d = 31};
  EXPECT_EQ(decode_lut(encode_lut(f)), f);

  f = LutInstructionFields{};  // all zero
  EXPECT_EQ(decode_lut(encode_lut(f)), f);
}

TEST(LutEncoding, OpcodeOccupiesTopBits) {
  const LutInstructionFields f{.opcode = kLutOpcode};
  const std::uint64_t word = encode_lut(f);
  EXPECT_EQ(word >> 57, kLutOpcode);
}

TEST(LutEncoding, RejectsOverflowingFields) {
  LutInstructionFields f;
  f.row_id = 1u << 26;
  EXPECT_THROW((void)encode_lut(f), PreconditionError);
  f = {};
  f.lut_block_id = 1u << 21;
  EXPECT_THROW((void)encode_lut(f), PreconditionError);
}

TEST(LutAddresses, FollowAlgorithm1) {
  // Algorithm 1: index at Row*1024 + Offset_S*32; content at
  // LUTBlock*1024*1024 + index*32; dest at Row*1024 + Offset_D*32.
  const LutInstructionFields f{.opcode = kLutOpcode,
                               .row_id = 3,
                               .offset_s = 2,
                               .lut_block_id = 5,
                               .offset_d = 9};
  const auto a = lut_addresses(f, /*index=*/100);
  EXPECT_EQ(a.index_bit_address, 3u * 1024 + 2 * 32);
  EXPECT_EQ(a.content_bit_address, 5ull * 1024 * 1024 + 100 * 32);
  EXPECT_EQ(a.dest_bit_address, 3u * 1024 + 9 * 32);
}

TEST(Opcode, ArithClassification) {
  EXPECT_TRUE(is_arith(Opcode::Fadd));
  EXPECT_TRUE(is_arith(Opcode::Fmul));
  EXPECT_TRUE(is_arith(Opcode::Faxpy));
  EXPECT_FALSE(is_arith(Opcode::MemCpy));
  EXPECT_FALSE(is_arith(Opcode::ReadRow));
  EXPECT_FALSE(is_arith(Opcode::LutLookup));
}

TEST(Opcode, NamesAreDistinct) {
  EXPECT_STREQ(to_string(Opcode::Fadd), "fadd");
  EXPECT_STREQ(to_string(Opcode::MemCpy), "memcpy");
  EXPECT_STREQ(to_string(Opcode::LutLookup), "lut_lookup");
  EXPECT_STREQ(to_string(Opcode::HostLoad), "host_load");
}

}  // namespace
}  // namespace wavepim::pim
