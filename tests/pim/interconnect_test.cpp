#include "pim/interconnect.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace wavepim::pim {
namespace {

Interconnect make(Topology t) { return Interconnect(chip_2gb(t)); }

TEST(HopCount, HtreeLevels) {
  const auto net = make(Topology::HTree);
  EXPECT_EQ(net.hop_count(0, 0), 0u);
  // Same S0 group (blocks 0..3): one switch.
  EXPECT_EQ(net.hop_count(0, 1), 1u);
  EXPECT_EQ(net.hop_count(0, 3), 1u);
  // Paper Fig. 3 example: block 0 -> block 5 goes S0, S1, S0' (3 hops).
  EXPECT_EQ(net.hop_count(0, 5), 3u);
  // Different 64-block quadrant: 5 hops.
  EXPECT_EQ(net.hop_count(0, 20), 5u);
  // Across the tile root: 7 hops.
  EXPECT_EQ(net.hop_count(0, 200), 7u);
  // Cross-tile: both full trees.
  EXPECT_EQ(net.hop_count(0, 256), 8u);
}

TEST(HopCount, BusIsFlat) {
  const auto net = make(Topology::Bus);
  EXPECT_EQ(net.hop_count(0, 5), 2u);
  EXPECT_EQ(net.hop_count(0, 200), 2u);
  EXPECT_EQ(net.hop_count(0, 300), 4u);
}

TEST(HopCount, Symmetric) {
  const auto net = make(Topology::HTree);
  for (std::uint32_t a : {0u, 5u, 17u, 100u, 255u, 300u}) {
    for (std::uint32_t b : {1u, 6u, 64u, 255u, 511u}) {
      EXPECT_EQ(net.hop_count(a, b), net.hop_count(b, a));
    }
  }
}

TEST(HopCount, RejectsOutOfRangeBlocks) {
  const auto net = make(Topology::HTree);
  EXPECT_THROW((void)net.hop_count(0, 1u << 30), PreconditionError);
}

TEST(IsolatedLatency, GrowsWithWordsAndHops) {
  const auto net = make(Topology::HTree);
  const Transfer near{.src_block = 0, .dst_block = 1, .words = 64};
  const Transfer far{.src_block = 0, .dst_block = 200, .words = 64};
  const Transfer big{.src_block = 0, .dst_block = 1, .words = 512};
  EXPECT_LT(net.isolated_latency(near), net.isolated_latency(far));
  EXPECT_LT(net.isolated_latency(near), net.isolated_latency(big));
}

TEST(IsolatedLatency, CrossTilePaysChannelPenalty) {
  const auto net = make(Topology::HTree);
  const Transfer local{.src_block = 0, .dst_block = 200, .words = 100};
  const Transfer cross{.src_block = 0, .dst_block = 300, .words = 100};
  EXPECT_LT(net.isolated_latency(local), net.isolated_latency(cross));
  EXPECT_LT(net.transfer_energy(local), net.transfer_energy(cross));
}

TEST(Schedule, DisjointHtreeTransfersOverlap) {
  // Paper Fig. 3: block 0 -> 2 and 5 -> 7 can run simultaneously on the
  // H-tree (disjoint S0 switches) but serialise on the bus.
  const Transfer t1{.src_block = 0, .dst_block = 2, .words = 256};
  const Transfer t2{.src_block = 5, .dst_block = 7, .words = 256};
  const std::vector<Transfer> batch = {t1, t2};

  const auto ht = make(Topology::HTree).schedule(batch);
  const auto bus = make(Topology::Bus).schedule(batch);

  // H-tree: both transfers overlap fully.
  EXPECT_NEAR(ht.makespan.value(),
              make(Topology::HTree).isolated_latency(t1).value(), 1e-12);
  // Bus: strictly serial (its wide datapath makes each transfer quick,
  // but only one path can be enabled at a time — §4.2.2).
  EXPECT_NEAR(bus.makespan.value(), bus.serial_sum.value(), 1e-12);
  EXPECT_GT(ht.overlap_factor(), bus.overlap_factor());
}

TEST(Schedule, SharedHtreePathSerializes) {
  // Two transfers through the same S0 switch cannot overlap.
  const std::vector<Transfer> batch = {
      {.src_block = 0, .dst_block = 1, .words = 128},
      {.src_block = 2, .dst_block = 3, .words = 128},
  };
  const auto net = make(Topology::HTree);
  const auto r = net.schedule(batch);
  EXPECT_NEAR(r.makespan.value(), r.serial_sum.value(), 1e-12);
}

TEST(Schedule, ManyParallelNeighborTransfers) {
  // 64 disjoint S0-local transfers: H-tree runs them all in parallel.
  std::vector<Transfer> batch;
  for (std::uint32_t g = 0; g < 64; ++g) {
    batch.push_back({.src_block = 4 * g, .dst_block = 4 * g + 1,
                     .words = 512});
  }
  const auto ht = make(Topology::HTree).schedule(batch);
  const auto bus = make(Topology::Bus).schedule(batch);
  EXPECT_GT(ht.overlap_factor(), 60.0);
  EXPECT_NEAR(bus.overlap_factor(), 1.0, 1e-9);
  // The headline claim: H-tree >> bus under flux-like traffic.
  EXPECT_GT(bus.makespan.value() / ht.makespan.value(), 2.0);
}

TEST(Schedule, EmptyBatchIsFree) {
  const auto r = make(Topology::HTree).schedule({});
  EXPECT_EQ(r.makespan.value(), 0.0);
  EXPECT_EQ(r.energy.value(), 0.0);
}

TEST(Schedule, EnergyIsTopologyDependentButScheduleInvariant) {
  const std::vector<Transfer> batch = {
      {.src_block = 0, .dst_block = 100, .words = 64},
      {.src_block = 7, .dst_block = 9, .words = 64},
  };
  const auto ht = make(Topology::HTree).schedule(batch);
  const auto bus = make(Topology::Bus).schedule(batch);
  // Bus paths have fewer hops -> less switching energy.
  EXPECT_LT(bus.energy.value(), ht.energy.value());
}

TEST(Transfer, ZeroWordTransfersRejected) {
  const auto net = make(Topology::HTree);
  const Transfer t{.src_block = 0, .dst_block = 1, .words = 0};
  EXPECT_THROW((void)net.isolated_latency(t), PreconditionError);
}

}  // namespace
}  // namespace wavepim::pim
