#include "pim/interconnect.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/error.h"

namespace wavepim::pim {
namespace {

Interconnect make(Topology t) { return Interconnect(chip_2gb(t)); }

TEST(HopCount, HtreeLevels) {
  const auto net = make(Topology::HTree);
  EXPECT_EQ(net.hop_count(0, 0), 0u);
  // Same S0 group (blocks 0..3): one switch.
  EXPECT_EQ(net.hop_count(0, 1), 1u);
  EXPECT_EQ(net.hop_count(0, 3), 1u);
  // Paper Fig. 3 example: block 0 -> block 5 goes S0, S1, S0' (3 hops).
  EXPECT_EQ(net.hop_count(0, 5), 3u);
  // Different 64-block quadrant: 5 hops.
  EXPECT_EQ(net.hop_count(0, 20), 5u);
  // Across the tile root: 7 hops.
  EXPECT_EQ(net.hop_count(0, 200), 7u);
  // Cross-tile: both full trees.
  EXPECT_EQ(net.hop_count(0, 256), 8u);
}

TEST(HopCount, BusIsFlat) {
  const auto net = make(Topology::Bus);
  EXPECT_EQ(net.hop_count(0, 5), 2u);
  EXPECT_EQ(net.hop_count(0, 200), 2u);
  EXPECT_EQ(net.hop_count(0, 300), 4u);
}

TEST(HopCount, Symmetric) {
  const auto net = make(Topology::HTree);
  for (std::uint32_t a : {0u, 5u, 17u, 100u, 255u, 300u}) {
    for (std::uint32_t b : {1u, 6u, 64u, 255u, 511u}) {
      EXPECT_EQ(net.hop_count(a, b), net.hop_count(b, a));
    }
  }
}

TEST(HopCount, RejectsOutOfRangeBlocks) {
  const auto net = make(Topology::HTree);
  EXPECT_THROW((void)net.hop_count(0, 1u << 30), PreconditionError);
}

TEST(IsolatedLatency, GrowsWithWordsAndHops) {
  const auto net = make(Topology::HTree);
  const Transfer near{.src_block = 0, .dst_block = 1, .words = 64};
  const Transfer far{.src_block = 0, .dst_block = 200, .words = 64};
  const Transfer big{.src_block = 0, .dst_block = 1, .words = 512};
  EXPECT_LT(net.isolated_latency(near), net.isolated_latency(far));
  EXPECT_LT(net.isolated_latency(near), net.isolated_latency(big));
}

TEST(IsolatedLatency, CrossTilePaysChannelPenalty) {
  const auto net = make(Topology::HTree);
  const Transfer local{.src_block = 0, .dst_block = 200, .words = 100};
  const Transfer cross{.src_block = 0, .dst_block = 300, .words = 100};
  EXPECT_LT(net.isolated_latency(local), net.isolated_latency(cross));
  EXPECT_LT(net.transfer_energy(local), net.transfer_energy(cross));
}

TEST(Schedule, DisjointHtreeTransfersOverlap) {
  // Paper Fig. 3: block 0 -> 2 and 5 -> 7 can run simultaneously on the
  // H-tree (disjoint S0 switches) but serialise on the bus.
  const Transfer t1{.src_block = 0, .dst_block = 2, .words = 256};
  const Transfer t2{.src_block = 5, .dst_block = 7, .words = 256};
  const std::vector<Transfer> batch = {t1, t2};

  const auto ht = make(Topology::HTree).schedule(batch);
  const auto bus = make(Topology::Bus).schedule(batch);

  // H-tree: both transfers overlap fully.
  EXPECT_NEAR(ht.makespan.value(),
              make(Topology::HTree).isolated_latency(t1).value(), 1e-12);
  // Bus: strictly serial (its wide datapath makes each transfer quick,
  // but only one path can be enabled at a time — §4.2.2).
  EXPECT_NEAR(bus.makespan.value(), bus.serial_sum.value(), 1e-12);
  EXPECT_GT(ht.overlap_factor(), bus.overlap_factor());
}

TEST(Schedule, SharedHtreePathSerializes) {
  // Two transfers through the same S0 switch cannot overlap.
  const std::vector<Transfer> batch = {
      {.src_block = 0, .dst_block = 1, .words = 128},
      {.src_block = 2, .dst_block = 3, .words = 128},
  };
  const auto net = make(Topology::HTree);
  const auto r = net.schedule(batch);
  EXPECT_NEAR(r.makespan.value(), r.serial_sum.value(), 1e-12);
}

TEST(Schedule, ManyParallelNeighborTransfers) {
  // 64 disjoint S0-local transfers: H-tree runs them all in parallel.
  std::vector<Transfer> batch;
  for (std::uint32_t g = 0; g < 64; ++g) {
    batch.push_back({.src_block = 4 * g, .dst_block = 4 * g + 1,
                     .words = 512});
  }
  const auto ht = make(Topology::HTree).schedule(batch);
  const auto bus = make(Topology::Bus).schedule(batch);
  EXPECT_GT(ht.overlap_factor(), 60.0);
  EXPECT_NEAR(bus.overlap_factor(), 1.0, 1e-9);
  // The headline claim: H-tree >> bus under flux-like traffic.
  EXPECT_GT(bus.makespan.value() / ht.makespan.value(), 2.0);
}

TEST(Schedule, EmptyBatchIsFree) {
  const auto r = make(Topology::HTree).schedule({});
  EXPECT_EQ(r.makespan.value(), 0.0);
  EXPECT_EQ(r.energy.value(), 0.0);
}

TEST(Schedule, EnergyIsTopologyDependentButScheduleInvariant) {
  const std::vector<Transfer> batch = {
      {.src_block = 0, .dst_block = 100, .words = 64},
      {.src_block = 7, .dst_block = 9, .words = 64},
  };
  const auto ht = make(Topology::HTree).schedule(batch);
  const auto bus = make(Topology::Bus).schedule(batch);
  // Bus paths have fewer hops -> less switching energy.
  EXPECT_LT(bus.energy.value(), ht.energy.value());
}

TEST(Transfer, ZeroWordTransfersRejected) {
  const auto net = make(Topology::HTree);
  const Transfer t{.src_block = 0, .dst_block = 1, .words = 0};
  EXPECT_THROW((void)net.isolated_latency(t), PreconditionError);
}

// --- Resource-model edge cases (shared by both timing backends) -------

std::vector<std::uint32_t> path_of(const Interconnect& net,
                                   const Transfer& t) {
  std::vector<std::uint32_t> out;
  net.path_resources(t, out);
  return out;
}

TEST(PathResources, LengthMatchesHopCount) {
  // Every switch hop is one contended resource; the inter-tile crossbar
  // leg is priced in latency/energy but is not a shared resource.
  const auto net = make(Topology::HTree);
  for (const auto& [src, dst] : std::vector<std::pair<std::uint32_t,
                                                      std::uint32_t>>{
           {0, 1}, {0, 5}, {0, 20}, {0, 200}, {17, 255}}) {
    const Transfer t{.src_block = src, .dst_block = dst, .words = 8};
    EXPECT_EQ(path_of(net, t).size(), net.hop_count(src, dst))
        << src << " -> " << dst;
  }
}

TEST(PathResources, SelfTransferEmptyOnHtreeButClaimsBusSwitch) {
  // H-tree: the row buffer moves the words without entering the fabric.
  // Bus: the row buffer drives the shared medium, so the tile switch is
  // claimed even for src == dst (the pre-seam scheduler priced it that
  // way, and the analytic baseline depends on it).
  const Transfer self{.src_block = 300, .dst_block = 300, .words = 8};
  EXPECT_TRUE(path_of(make(Topology::HTree), self).empty());
  const auto bus_path = path_of(make(Topology::Bus), self);
  ASSERT_EQ(bus_path.size(), 1u);
  EXPECT_EQ(bus_path[0], 1u);  // bus resource id == tile id
}

TEST(PathResources, CrossTileUsesBothFullAncestorChains) {
  const auto net = make(Topology::HTree);
  const Transfer t{.src_block = 3, .dst_block = 256, .words = 8};
  const auto path = path_of(net, t);
  ASSERT_EQ(path.size(), 8u);  // 4 levels up + 4 levels down
  // First four resources are tile 0's chain, the rest tile 1's.
  for (std::size_t i = 0; i < path.size(); ++i) {
    const bool src_side = i % 2 == 0;  // chains are interleaved per level
    EXPECT_EQ(path[i] / 85, src_side ? 0u : 1u) << i;
  }
  // No duplicates: a resource appears at most once per path.
  auto sorted = path;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(PathResources, SameTilePathVisitsLcaOnce) {
  // 0 -> 5: up through S0(0), down through S0(1), joined at S1(0) — the
  // LCA switch appears exactly once (3 distinct resources, Fig. 3).
  const auto net = make(Topology::HTree);
  const auto path =
      path_of(net, {.src_block = 0, .dst_block = 5, .words = 8});
  ASSERT_EQ(path.size(), 3u);
  auto sorted = path;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(PathResources, SingleTileChip) {
  // A one-tile chip (the smallest legal geometry) still builds, and its
  // resource space is exactly one tile's switches.
  ChipConfig config = chip_512mb();
  config.capacity = ChipConfig::tile_bytes();
  const Interconnect net(config);
  EXPECT_EQ(net.num_resources(), 85u);
  EXPECT_EQ(net.hop_count(0, 255), 7u);
  const auto path =
      path_of(net, {.src_block = 0, .dst_block = 255, .words = 8});
  EXPECT_EQ(path.size(), 7u);
  for (const std::uint32_t r : path) {
    EXPECT_LT(r, 85u);
  }
  // Out-of-tile blocks are rejected, not wrapped.
  EXPECT_THROW((void)net.hop_count(0, 256), PreconditionError);

  ChipConfig bus = config;
  bus.topology = Topology::Bus;
  EXPECT_EQ(Interconnect(bus).num_resources(), 1u);
}

TEST(PathResources, NonDefaultAritiesKeepPathHopIdentity) {
  for (const std::uint32_t arity : {2u, 16u}) {
    ChipConfig config = chip_2gb();
    config.htree_arity = arity;
    const Interconnect net(config);
    for (const auto& [src, dst] : std::vector<std::pair<std::uint32_t,
                                                        std::uint32_t>>{
             {0, 1}, {0, 100}, {0, 255}, {5, 300}}) {
      const Transfer t{.src_block = src, .dst_block = dst, .words = 8};
      const auto path = path_of(net, t);
      EXPECT_EQ(path.size(), net.hop_count(src, dst))
          << "arity " << arity << ": " << src << " -> " << dst;
      for (const std::uint32_t r : path) {
        EXPECT_LT(r, net.num_resources());
      }
    }
    // Self-transfers stay off-fabric in every geometry.
    EXPECT_TRUE(
        path_of(net, {.src_block = 9, .dst_block = 9, .words = 8}).empty());
  }
}

TEST(ResourceCapacity, WidensUpTheTreeAndIsFlatOnTheBus) {
  const auto net = make(Topology::HTree);
  // Tile 0: S0 block at offset 0..63, S1 at 64..79, S2 at 80..83, S3 84.
  EXPECT_EQ(net.resource_capacity(0), 1u);
  EXPECT_EQ(net.resource_capacity(64), 4u);
  EXPECT_EQ(net.resource_capacity(80), 16u);
  EXPECT_EQ(net.resource_capacity(84), 64u);
  // Same profile in the next tile's block of switches.
  EXPECT_EQ(net.resource_capacity(85), 1u);
  EXPECT_EQ(net.resource_capacity(85 + 84), 64u);

  const auto bus = make(Topology::Bus);
  EXPECT_EQ(bus.resource_capacity(0), 1u);
  EXPECT_EQ(bus.resource_capacity(1), 1u);
}

}  // namespace
}  // namespace wavepim::pim
