// Edge cases of the 1D Z-slab Decomposition: over-decomposition
// (num_nodes > dim), non-divisible slab counts, the single-node (no
// halo-neighbour) run, and the exact-fit boundary — none of which the
// scaling sweep in cluster_test.cpp pins down.
#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "common/error.h"

namespace wavepim::cluster {
namespace {

TEST(Decomposition, MoreNodesThanSlabsIsInvalid) {
  // Level 2 has dim = 4 Z-slabs; a fifth node would own nothing.
  const Decomposition d{.refinement_level = 2, .num_nodes = 5};
  EXPECT_FALSE(d.valid());
  EXPECT_THROW(
      estimate_cluster(d, dg::ProblemKind::Acoustic, 3, pim::chip_512mb()),
      PreconditionError);
}

TEST(Decomposition, ExactFitBoundaryIsValid) {
  // num_nodes == dim: every node owns exactly one slab.
  const Decomposition d{.refinement_level = 3, .num_nodes = 8};
  EXPECT_TRUE(d.valid());
  EXPECT_EQ(d.slabs_per_node(), 1u);
  EXPECT_EQ(d.elements_per_node(), 64u);  // 1 slab x 8 x 8
}

TEST(Decomposition, NonDivisibleSlabCountRoundsUp) {
  // 32 slabs over 3 nodes: interior nodes carry ceil(32/3) = 11 slabs
  // (the last node owns the 10-slab remainder).
  const Decomposition d{.refinement_level = 5, .num_nodes = 3};
  EXPECT_TRUE(d.valid());
  EXPECT_EQ(d.slabs_per_node(), 11u);
  EXPECT_EQ(d.elements_per_node(), 11u * 32u * 32u);

  // One more node than divides evenly: 32 over 5 -> 7 slabs.
  const Decomposition e{.refinement_level = 5, .num_nodes = 5};
  EXPECT_EQ(e.slabs_per_node(), 7u);
}

TEST(Decomposition, SingleNodeOwnsEverythingAndSkipsTheHalo) {
  const Decomposition d{.refinement_level = 4, .num_nodes = 1};
  EXPECT_TRUE(d.valid());
  EXPECT_EQ(d.slabs_per_node(), d.dim());
  EXPECT_EQ(d.elements_per_node(), d.dim() * d.dim() * d.dim());

  const auto est =
      estimate_cluster(d, dg::ProblemKind::Acoustic, 3, pim::chip_2gb());
  EXPECT_EQ(est.num_nodes, 1u);
  // No neighbour, no exchange: the overlapped and serial step times
  // coincide and the halo term is zero.
  EXPECT_EQ(est.halo_per_step.value(), 0.0);
  EXPECT_EQ(est.step_time.value(), est.step_time_no_overlap.value());
  EXPECT_DOUBLE_EQ(est.parallel_efficiency, 1.0);
}

TEST(Decomposition, HaloBytesScaleWithFaceLayer) {
  // dim^2 elements x n1d^2 face nodes x num_vars x 4 bytes.
  const Decomposition d{.refinement_level = 3, .num_nodes = 2};
  EXPECT_EQ(d.halo_bytes(/*num_vars=*/4, /*n1d=*/3),
            64u * 9u * 4u * 4u);
}

}  // namespace
}  // namespace wavepim::cluster
