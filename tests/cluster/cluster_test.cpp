#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wavepim::cluster {
namespace {

using dg::ProblemKind;

TEST(Decomposition, Geometry) {
  const Decomposition d{5, 4};
  EXPECT_EQ(d.dim(), 32u);
  EXPECT_EQ(d.slabs_per_node(), 8u);
  EXPECT_EQ(d.elements_per_node(), 8u * 32 * 32);
  EXPECT_TRUE(d.valid());
  EXPECT_FALSE((Decomposition{2, 5}).valid());
}

TEST(Decomposition, HaloBytes) {
  // One layer of 32x32 elements, 64 face nodes each, 4 vars, FP32.
  const Decomposition d{5, 4};
  EXPECT_EQ(d.halo_bytes(4, 8), 32ull * 32 * 64 * 4 * 4);
  EXPECT_EQ(d.halo_bytes(9, 8), 32ull * 32 * 64 * 9 * 4);
}

TEST(NodeLink, TransferTime) {
  const NodeLink link;
  const auto t = link.transfer_time(mebibytes(25));
  EXPECT_GT(t.value(), 25.0e6 / 25.0e9);  // at least the bandwidth term
  EXPECT_LT(t.value(), 3e-3);
}

TEST(Cluster, SingleNodeHasNoHalo) {
  const auto est = estimate_cluster({5, 1}, ProblemKind::Acoustic, 8,
                                    pim::chip_2gb());
  EXPECT_EQ(est.halo_per_step.value(), 0.0);
  EXPECT_EQ(est.step_time.value(), est.compute_per_step.value());
}

TEST(Cluster, MoreNodesNeverSlower) {
  // Strong scaling on a level-6 problem (262k elements): adding chips
  // removes batching pressure and must not increase the step time.
  const auto sweep = strong_scaling(6, ProblemKind::Acoustic, 8,
                                    pim::chip_8gb(), 8);
  ASSERT_GE(sweep.size(), 3u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_LE(sweep[i].step_time.value(),
              sweep[i - 1].step_time.value() * 1.001)
        << sweep[i].num_nodes << " nodes";
  }
}

TEST(Cluster, EfficiencyStartsAtOneAndStaysPositive) {
  const auto sweep = strong_scaling(6, ProblemKind::ElasticCentral, 8,
                                    pim::chip_8gb(), 8);
  ASSERT_FALSE(sweep.empty());
  EXPECT_DOUBLE_EQ(sweep[0].parallel_efficiency, 1.0);
  for (const auto& est : sweep) {
    EXPECT_GT(est.parallel_efficiency, 0.0);
    // Superlinear efficiency is legitimate here: adding nodes removes the
    // single-chip batching pressure (the classic memory-capacity effect),
    // but it must stay within an order of magnitude.
    EXPECT_LE(est.parallel_efficiency, 10.0);
  }
}

TEST(Cluster, OverlapHidesHaloBehindVolume) {
  const auto est = estimate_cluster({6, 8}, ProblemKind::Acoustic, 8,
                                    pim::chip_8gb());
  EXPECT_LE(est.step_time.value(), est.step_time_no_overlap.value());
  EXPECT_GT(est.halo_per_step.value(), 0.0);
}

TEST(Cluster, EnergyGrowsWithNodeCount) {
  const auto one = estimate_cluster({6, 1}, ProblemKind::Acoustic, 8,
                                    pim::chip_8gb());
  const auto eight = estimate_cluster({6, 8}, ProblemKind::Acoustic, 8,
                                      pim::chip_8gb());
  // Eight chips burn more power but run shorter; the per-step energy of
  // the fleet must exceed one-eighth of the single-node energy.
  EXPECT_GT(eight.step_energy.value(), one.step_energy.value() / 8.0);
}

TEST(Cluster, InvalidDecompositionRejected) {
  EXPECT_THROW(
      (void)estimate_cluster({2, 64}, ProblemKind::Acoustic, 8,
                             pim::chip_2gb()),
      PreconditionError);
}

}  // namespace
}  // namespace wavepim::cluster
