// The baseline gate lives or dies on diff_reports/merge_baseline
// semantics: labels exact, metrics within relative tolerance, reduced
// runs gating against a full baseline without failing its uncovered
// cells. These tests drive them on hand-written documents.
#include <gtest/gtest.h>

#include "common/error.h"
#include "eval/report.h"

namespace wavepim::eval {
namespace {

json::Value report_with_cell(const char* id, double metric,
                             const char* hash = "aaaa") {
  std::string text = std::string(R"({"schema":"wavepim-paper-eval/1",)") +
                     R"("matrix":"reduced","cells":[{"id":")" + id +
                     R"(","kind":"sim","labels":{"field_hash":")" + hash +
                     R"("},"metrics":{"total_time_s":)" +
                     std::to_string(metric) + R"(}}],"claims":[]})";
  return json::parse(text);
}

TEST(ReportDiff, IdenticalReportsPass) {
  const auto doc = report_with_cell("sim/a", 2.0);
  const auto diff = diff_reports(doc, doc);
  EXPECT_TRUE(diff.ok());
  EXPECT_EQ(diff.compared, 1);
  EXPECT_EQ(diff.regressions, 0);
  EXPECT_EQ(diff.added, 0);
  EXPECT_EQ(diff.ignored, 0);
  EXPECT_DOUBLE_EQ(diff.worst, 0.0);
}

TEST(ReportDiff, ToleranceIsStrictlyGreaterThan) {
  const auto base = report_with_cell("sim/a", 100.0);
  // rel dev = 10/110 ≈ 0.0909… (against the larger magnitude).
  const auto current = report_with_cell("sim/a", 110.0);
  const double rel = 10.0 / 110.0;

  // Deviation exactly at the tolerance passes…
  auto diff = diff_reports(base, current, {.tolerance = rel});
  EXPECT_TRUE(diff.ok());
  EXPECT_NEAR(diff.worst, rel, 1e-12);

  // …and anything tighter trips the gate.
  diff = diff_reports(base, current, {.tolerance = rel * 0.999});
  EXPECT_FALSE(diff.ok());
  EXPECT_EQ(diff.regressions, 1);

  // The default tolerance (1e-6) obviously trips too.
  EXPECT_FALSE(diff_reports(base, current).ok());
}

TEST(ReportDiff, LabelMismatchIsAlwaysARegression) {
  const auto base = report_with_cell("sim/a", 2.0, "aaaa");
  const auto current = report_with_cell("sim/a", 2.0, "bbbb");
  // Even with an infinite metric tolerance a field-hash flip fails.
  const auto diff = diff_reports(base, current, {.tolerance = 1e9});
  EXPECT_FALSE(diff.ok());
  EXPECT_EQ(diff.regressions, 1);
  EXPECT_NE(diff.table.find("field_hash"), std::string::npos);
}

TEST(ReportDiff, MissingMetricIsARegression) {
  const auto base = report_with_cell("sim/a", 2.0);
  const auto current = json::parse(
      R"({"cells":[{"id":"sim/a","labels":{"field_hash":"aaaa"},)"
      R"("metrics":{}}]})");
  const auto diff = diff_reports(base, current);
  EXPECT_FALSE(diff.ok());
  EXPECT_NE(diff.table.find("(missing)"), std::string::npos);
}

TEST(ReportDiff, NewCellsAreReportedNotFailed) {
  const auto base = report_with_cell("sim/a", 2.0);
  const auto current = report_with_cell("sim/b", 5.0);
  const auto diff = diff_reports(base, current);
  EXPECT_TRUE(diff.ok());
  EXPECT_EQ(diff.compared, 0);
  EXPECT_EQ(diff.added, 1);
  EXPECT_EQ(diff.ignored, 1);
}

TEST(ReportDiff, UncoveredBaselineCellsAreIgnored) {
  // The CI shape: a reduced run gating against the full baseline.
  const auto base = json::parse(
      R"({"cells":[)"
      R"({"id":"sim/a","labels":{},"metrics":{"m":1}},)"
      R"({"id":"sim/b","labels":{},"metrics":{"m":2}},)"
      R"({"id":"sim/c","labels":{},"metrics":{"m":3}}]})");
  const auto current =
      json::parse(R"({"cells":[{"id":"sim/b","labels":{},"metrics":{"m":2}}]})");
  const auto diff = diff_reports(base, current);
  EXPECT_TRUE(diff.ok());
  EXPECT_EQ(diff.compared, 1);
  EXPECT_EQ(diff.ignored, 2);
}

TEST(ReportDiff, RejectsDocumentsWithoutCells) {
  const auto good = report_with_cell("sim/a", 2.0);
  const auto bad = json::parse(R"({"schema":"x"})");
  EXPECT_THROW((void)diff_reports(bad, good), Error);
  EXPECT_THROW((void)diff_reports(good, bad), Error);
  const auto wrong_kind = json::parse(R"({"cells":{}})");
  EXPECT_THROW((void)diff_reports(wrong_kind, good), Error);
}

TEST(MergeBaseline, FreshBaselineIsTheRunItself) {
  const auto run = report_with_cell("sim/a", 2.0);
  const auto merged = merge_baseline(nullptr, run);
  const auto diff = diff_reports(merged, run);
  EXPECT_TRUE(diff.ok());
  EXPECT_EQ(diff.compared, 1);
  EXPECT_EQ(merged.find("schema")->as_string(), kReportSchema);
}

TEST(MergeBaseline, KeepsOrderReplacesRerunAppendsNew) {
  const auto existing = json::parse(
      R"({"cells":[)"
      R"({"id":"sim/a","labels":{},"metrics":{"m":1}},)"
      R"({"id":"sim/b","labels":{},"metrics":{"m":2}}],"claims":[]})");
  const auto run = json::parse(
      R"({"matrix":"reduced","cells":[)"
      R"({"id":"sim/c","labels":{},"metrics":{"m":30}},)"
      R"({"id":"sim/b","labels":{},"metrics":{"m":20}}],"claims":[]})");
  const auto merged = merge_baseline(&existing, run);

  const auto& cells = merged.find("cells")->as_array();
  ASSERT_EQ(cells.size(), 3u);
  // Existing order first (a untouched, b replaced), then the new cell.
  EXPECT_EQ(cells[0].find("id")->as_string(), "sim/a");
  EXPECT_DOUBLE_EQ(cells[0].find("metrics")->find("m")->as_number(), 1.0);
  EXPECT_EQ(cells[1].find("id")->as_string(), "sim/b");
  EXPECT_DOUBLE_EQ(cells[1].find("metrics")->find("m")->as_number(), 20.0);
  EXPECT_EQ(cells[2].find("id")->as_string(), "sim/c");
}

TEST(MergeBaseline, KeepsExistingClaimsWhenRunHasNone) {
  const auto existing = json::parse(
      R"({"cells":[],"claims":[{"claim":"speedup grows","pass":true}]})");
  const auto reduced_run = json::parse(R"({"cells":[],"claims":[]})");
  const auto merged = merge_baseline(&existing, reduced_run);
  ASSERT_EQ(merged.find("claims")->as_array().size(), 1u);
  EXPECT_EQ(
      merged.find("claims")->as_array()[0].find("claim")->as_string(),
      "speedup grows");

  const auto full_run = json::parse(
      R"({"cells":[],"claims":[{"claim":"new claim","pass":true}]})");
  const auto merged2 = merge_baseline(&existing, full_run);
  ASSERT_EQ(merged2.find("claims")->as_array().size(), 1u);
  EXPECT_EQ(
      merged2.find("claims")->as_array()[0].find("claim")->as_string(),
      "new claim");
}

TEST(MergeBaseline, RoundTripsThroughDumpAndParse) {
  const auto run = report_with_cell("sim/a", 0.1234567890123456789);
  const auto merged = merge_baseline(nullptr, run);
  const std::string text = json::dump(merged, 1);
  const auto reparsed = json::parse(text);
  // serialize(parse(x)) must be a fixed point — the committed baseline
  // is diffed byte-for-byte by reviewers and value-wise by the gate.
  EXPECT_EQ(json::dump(reparsed, 1), text);
  EXPECT_TRUE(diff_reports(reparsed, run).ok());
}

}  // namespace
}  // namespace wavepim::eval
