// The scenario matrix is declarative data the whole evaluation hangs
// off: ids must be stable and unique, the reduced CI matrix must be a
// strict subset of the full one, and the axes the ISSUE promises (all
// three execution tiers, an over-capacity window, heterogeneous
// materials, a reflective boundary) must actually be enumerated.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "eval/matrix.h"

namespace wavepim::eval {
namespace {

std::set<std::string> ids_of(const std::vector<Scenario>& scenarios) {
  std::set<std::string> ids;
  for (const auto& s : scenarios) {
    ids.insert(s.id());
  }
  return ids;
}

TEST(Matrix, IdsAreUnique) {
  for (const MatrixKind kind : {MatrixKind::Reduced, MatrixKind::Full}) {
    const auto scenarios = build_matrix(kind);
    EXPECT_EQ(ids_of(scenarios).size(), scenarios.size())
        << "duplicate scenario id in the " << to_string(kind) << " matrix";
  }
}

TEST(Matrix, ReducedIsSubsetOfFull) {
  const auto full = ids_of(build_matrix(MatrixKind::Full));
  for (const auto& id : ids_of(build_matrix(MatrixKind::Reduced))) {
    EXPECT_TRUE(full.count(id) == 1)
        << id << " is in the reduced matrix but not the full one";
  }
}

TEST(Matrix, ReducedCoversTheGatingAxes) {
  const auto scenarios = build_matrix(MatrixKind::Reduced);
  std::set<mapping::ExecPath> tiers;
  bool over_capacity = false;
  bool layered = false;
  bool reflective = false;
  bool paper = false;
  for (const auto& s : scenarios) {
    if (s.kind == CellKind::Paper) {
      paper = true;
      continue;
    }
    tiers.insert(s.exec);
    over_capacity = over_capacity || s.block_limit != 0;
    layered = layered || s.materials == Materials::Layered;
    reflective = reflective || s.boundary == mesh::Boundary::Reflective;
  }
  EXPECT_EQ(tiers.size(), 4u) << "reduced matrix must run all four tiers";
  EXPECT_TRUE(over_capacity)
      << "reduced matrix must include an over-capacity residency window";
  EXPECT_TRUE(layered);
  EXPECT_TRUE(reflective);
  EXPECT_TRUE(paper);
}

TEST(Matrix, FullCoversEveryPaperBenchmark) {
  const auto scenarios = build_matrix(MatrixKind::Full);
  std::set<std::string> papers;
  for (const auto& s : scenarios) {
    if (s.kind == CellKind::Paper) {
      papers.insert(s.problem.name());
    }
  }
  for (const auto& problem : mapping::paper_benchmarks()) {
    EXPECT_TRUE(papers.count(problem.name()) == 1)
        << problem.name() << " missing from the full matrix";
  }
}

TEST(Matrix, ParseMatrixNames) {
  MatrixKind kind = MatrixKind::Full;
  EXPECT_TRUE(parse_matrix("reduced", kind));
  EXPECT_EQ(kind, MatrixKind::Reduced);
  EXPECT_TRUE(parse_matrix("full", kind));
  EXPECT_EQ(kind, MatrixKind::Full);
  EXPECT_FALSE(parse_matrix("everything", kind));
}

TEST(Matrix, IdEncodesEveryAxis) {
  Scenario s;
  s.kind = CellKind::Sim;
  s.problem = mapping::Problem{dg::ProblemKind::ElasticCentral, 2, 3};
  s.expansion = mapping::ExpansionMode::Elastic3;
  s.boundary = mesh::Boundary::Reflective;
  s.materials = Materials::Layered;
  s.block_limit = 96;
  s.exec = mapping::ExecPath::Replay;
  EXPECT_EQ(s.id(),
            "sim/elastic-central-l2/Er/reflective/layered/win96/replay");
}

}  // namespace
}  // namespace wavepim::eval
