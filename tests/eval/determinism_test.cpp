// paper_eval's baseline gate compares label strings (field hashes) and
// metrics at 1e-6 — that only works if a matrix cell serialises to the
// same bytes on every run and at every thread count. This pins the
// guarantee the Exec/BatchConformance suites give the simulator at the
// report layer: run twice, run wide, dump, compare bytes.
#include <gtest/gtest.h>

#include <string>

#include "common/json.h"
#include "eval/report.h"
#include "eval/runner.h"

namespace wavepim::eval {
namespace {

Scenario sim_scenario(std::uint32_t block_limit, mapping::ExecPath exec) {
  Scenario s;
  s.kind = CellKind::Sim;
  s.problem = mapping::Problem{dg::ProblemKind::Acoustic, 2, 3};
  s.block_limit = block_limit;
  s.exec = exec;
  return s;
}

std::string dump_cell(const Scenario& s, int threads) {
  RunOptions options;
  options.threads = threads;
  const auto cells = run_scenario(s, options, nullptr);
  EXPECT_EQ(cells.size(), 1u);
  return json::dump(cell_to_json(cells[0]), 1);
}

TEST(Determinism, ResidentCellIsByteIdenticalAcrossRunsAndThreads) {
  const Scenario s = sim_scenario(0, mapping::ExecPath::Compiled);
  const std::string first = dump_cell(s, 1);
  EXPECT_EQ(dump_cell(s, 1), first) << "re-run diverged";
  EXPECT_EQ(dump_cell(s, 4), first) << "thread count leaked into the report";
}

TEST(Determinism, OverCapacityCellIsByteIdenticalAcrossRunsAndThreads) {
  // block_limit 32 forces the batched residency window — the axis where
  // slice staging order could plausibly leak nondeterminism.
  const Scenario s = sim_scenario(32, mapping::ExecPath::Compiled);
  const std::string first = dump_cell(s, 1);
  EXPECT_EQ(dump_cell(s, 1), first) << "re-run diverged";
  EXPECT_EQ(dump_cell(s, 4), first) << "thread count leaked into the report";
  EXPECT_NE(first.find("\"residency\": \"windowed\""), std::string::npos)
      << "cell did not actually run through the residency window";
}

TEST(Determinism, WordCellIsByteIdenticalAcrossRunsAndThreads) {
  // The word tier adds the vector engine and (in the runner) the full
  // differential witness — both must serialise identically at any
  // thread count, witness counters included.
  const Scenario s = sim_scenario(32, mapping::ExecPath::Word);
  const std::string first = dump_cell(s, 1);
  EXPECT_EQ(dump_cell(s, 1), first) << "re-run diverged";
  EXPECT_EQ(dump_cell(s, 4), first) << "thread count leaked into the report";
  EXPECT_NE(first.find("witness_mismatches"), std::string::npos)
      << "word cell did not carry the witness counters";
}

TEST(Determinism, TiersAgreeOnTheFieldHash) {
  // The four execution tiers are documented as bit-identical; their
  // report cells must therefore carry the same field_hash label (the
  // cost/residency metrics agree too, but exec/id fields differ).
  std::string hashes[4];
  int i = 0;
  for (const auto exec : {mapping::ExecPath::Emit, mapping::ExecPath::Replay,
                          mapping::ExecPath::Compiled,
                          mapping::ExecPath::Word}) {
    const auto cells = run_scenario(sim_scenario(32, exec), {}, nullptr);
    ASSERT_EQ(cells.size(), 1u);
    for (const auto& [key, value] : cells[0].labels) {
      if (key == "field_hash") {
        hashes[i] = value;
      }
    }
    ASSERT_FALSE(hashes[i].empty());
    ++i;
  }
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[1], hashes[2]);
  EXPECT_EQ(hashes[2], hashes[3]);
}

TEST(Determinism, WordCellWitnessRunsCleanOverTheFullCadence) {
  // The runner pins witness cadence 1 on word cells: every phase of
  // every schedule step is re-executed bit-serially. Zero mismatches is
  // the tentpole's conformance claim at the report layer.
  const auto cells =
      run_scenario(sim_scenario(32, mapping::ExecPath::Word), {}, nullptr);
  ASSERT_EQ(cells.size(), 1u);
  double checks = -1.0;
  double mismatches = -1.0;
  for (const auto& [key, value] : cells[0].metrics) {
    if (key == "witness_checks") {
      checks = value;
    } else if (key == "witness_mismatches") {
      mismatches = value;
    }
  }
  EXPECT_GT(checks, 0.0) << "witness never ran";
  EXPECT_EQ(mismatches, 0.0);
}

TEST(Determinism, PaperCellsAreByteIdenticalAcrossRuns) {
  // Paper cells come from the analytic estimator — pure arithmetic, but
  // the gate hashes their serialisation too, so pin it.
  Scenario s;
  s.kind = CellKind::Paper;
  s.problem = mapping::paper_benchmarks()[0];
  const auto once = run_scenario(s, {}, nullptr);
  const auto twice = run_scenario(s, {}, nullptr);
  ASSERT_EQ(once.size(), twice.size());
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(json::dump(cell_to_json(once[i])),
              json::dump(cell_to_json(twice[i])));
  }
}

}  // namespace
}  // namespace wavepim::eval
