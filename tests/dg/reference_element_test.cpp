#include "dg/reference_element.h"

#include <gtest/gtest.h>

#include <set>

#include "dg/operators.h"

namespace wavepim::dg {
namespace {

using mesh::Axis;
using mesh::Face;

TEST(ReferenceElement, NodeNumberingRoundTrip) {
  const ReferenceElement ref(4);
  for (int n = 0; n < ref.num_nodes(); ++n) {
    const auto ijk = ref.ijk_of(n);
    EXPECT_EQ(ref.node(ijk[0], ijk[1], ijk[2]), n);
  }
}

TEST(ReferenceElement, WeightsSumToReferenceVolume) {
  const ReferenceElement ref(5);
  double sum = 0.0;
  for (int n = 0; n < ref.num_nodes(); ++n) {
    sum += ref.weight_of(n);
  }
  EXPECT_NEAR(sum, 8.0, 1e-11);  // [-1,1]^3
}

TEST(ReferenceElement, FaceNodeCountsAndUniqueness) {
  const ReferenceElement ref(4);
  for (Face f : mesh::kAllFaces) {
    const auto& nodes = ref.face_nodes(f);
    EXPECT_EQ(nodes.size(), static_cast<std::size_t>(ref.nodes_per_face()));
    std::set<int> unique(nodes.begin(), nodes.end());
    EXPECT_EQ(unique.size(), nodes.size());
  }
}

TEST(ReferenceElement, FaceNodesLieOnTheFace) {
  const ReferenceElement ref(4);
  for (Face f : mesh::kAllFaces) {
    const auto a = mesh::index_of(mesh::axis_of(f));
    const double expect = mesh::normal_sign(f) < 0 ? -1.0 : 1.0;
    for (int n : ref.face_nodes(f)) {
      EXPECT_DOUBLE_EQ(ref.coords_of(n)[a], expect);
    }
  }
}

TEST(ReferenceElement, OppositeFaceNodesMatchPairwise) {
  // The q-th node of face F and the q-th node of opposite(F) must differ
  // only in the face-normal coordinate — the property the flux kernel's
  // trace matching relies on.
  const ReferenceElement ref(5);
  for (Face f : mesh::kAllFaces) {
    const auto& fm = ref.face_nodes(f);
    const auto& fp = ref.face_nodes(mesh::opposite(f));
    const auto a = mesh::index_of(mesh::axis_of(f));
    for (std::size_t q = 0; q < fm.size(); ++q) {
      const auto cm = ref.coords_of(fm[q]);
      const auto cp = ref.coords_of(fp[q]);
      for (std::size_t d = 0; d < 3; ++d) {
        if (d == a) {
          EXPECT_DOUBLE_EQ(cm[d], -cp[d]);
        } else {
          EXPECT_DOUBLE_EQ(cm[d], cp[d]);
        }
      }
    }
  }
}

TEST(ReferenceElement, LineStartsCoverAllNodes) {
  const ReferenceElement ref(4);
  for (Axis a : mesh::kAllAxes) {
    std::set<int> covered;
    for (int start : ref.line_starts(a)) {
      for (int i = 0; i < ref.n1d(); ++i) {
        covered.insert(start + i * ref.stride(a));
      }
    }
    EXPECT_EQ(covered.size(), static_cast<std::size_t>(ref.num_nodes()));
  }
}

TEST(ReferenceElement, MemoisedFactoryReturnsSameInstance) {
  const auto a = make_reference_element(6);
  const auto b = make_reference_element(6);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), make_reference_element(5).get());
}

class DifferentiateParam : public ::testing::TestWithParam<int> {};

TEST_P(DifferentiateParam, ExactForTrilinearFields) {
  const auto ref = make_reference_element(GetParam());
  const auto nodes = static_cast<std::size_t>(ref->num_nodes());
  std::vector<float> u(nodes);
  std::vector<float> du(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    const auto c = ref->coords_of(static_cast<int>(n));
    u[n] = static_cast<float>(2.0 * c[0] - 3.0 * c[1] + 0.5 * c[2]);
  }
  const float scale = 2.0f;  // mimic a physical scaling 2/h
  differentiate(*ref, Axis::X, u, du, scale);
  for (float v : du) EXPECT_NEAR(v, 2.0 * 2.0, 1e-4);
  differentiate(*ref, Axis::Y, u, du, scale);
  for (float v : du) EXPECT_NEAR(v, -3.0 * 2.0, 1e-4);
  differentiate(*ref, Axis::Z, u, du, scale);
  for (float v : du) EXPECT_NEAR(v, 0.5 * 2.0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Orders, DifferentiateParam,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(Differentiate, ExactForTensorPolynomial) {
  const auto ref = make_reference_element(5);
  const auto nodes = static_cast<std::size_t>(ref->num_nodes());
  std::vector<float> u(nodes);
  std::vector<float> du(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    const auto c = ref->coords_of(static_cast<int>(n));
    u[n] = static_cast<float>(c[0] * c[0] * c[1] + c[2]);
  }
  differentiate(*ref, Axis::X, u, du, 1.0f);
  for (std::size_t n = 0; n < nodes; ++n) {
    const auto c = ref->coords_of(static_cast<int>(n));
    EXPECT_NEAR(du[n], 2.0 * c[0] * c[1], 2e-4);
  }
}

}  // namespace
}  // namespace wavepim::dg
