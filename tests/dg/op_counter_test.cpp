#include "dg/op_counter.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wavepim::dg {
namespace {

TEST(OpCounter, ProblemKindHelpers) {
  EXPECT_FALSE(is_elastic(ProblemKind::Acoustic));
  EXPECT_TRUE(is_elastic(ProblemKind::ElasticCentral));
  EXPECT_TRUE(is_elastic(ProblemKind::ElasticRiemann));
  EXPECT_EQ(flux_of(ProblemKind::Acoustic), FluxType::Upwind);
  EXPECT_EQ(flux_of(ProblemKind::ElasticCentral), FluxType::Central);
  EXPECT_EQ(flux_of(ProblemKind::ElasticRiemann), FluxType::Upwind);
  EXPECT_STREQ(to_string(ProblemKind::ElasticRiemann), "Elastic-Riemann");
}

TEST(OpCounter, CountsScaleLinearlyWithElements) {
  const auto a = count_problem_ops(ProblemKind::Acoustic, 100, 8);
  const auto b = count_problem_ops(ProblemKind::Acoustic, 200, 8);
  EXPECT_EQ(b.volume.flops, 2 * a.volume.flops);
  EXPECT_EQ(b.flux.flops, 2 * a.flux.flops);
  EXPECT_EQ(b.integration.flops, 2 * a.integration.flops);
  EXPECT_EQ(b.total().bytes_total(), 2 * a.total().bytes_total());
}

TEST(OpCounter, RefinementLevelUpMultipliesByEight) {
  const auto c4 = characterize(ProblemKind::Acoustic, 4, 8);
  const auto c5 = characterize(ProblemKind::Acoustic, 5, 8);
  EXPECT_EQ(c4.num_elements, 4096u);
  EXPECT_EQ(c5.num_elements, 32768u);
  EXPECT_EQ(c5.num_flops, 8 * c4.num_flops);
}

TEST(OpCounter, ElasticCostsMoreThanAcoustic) {
  const auto ac = count_problem_ops(ProblemKind::Acoustic, 4096, 8);
  const auto ec = count_problem_ops(ProblemKind::ElasticCentral, 4096, 8);
  const auto er = count_problem_ops(ProblemKind::ElasticRiemann, 4096, 8);
  EXPECT_GT(ec.total().flops, 2 * ac.total().flops);
  EXPECT_GT(er.total().flops, ec.total().flops);
}

TEST(OpCounter, Table6ShapeHolds) {
  // The paper's Table 6 ordering: Riemann > Central > Acoustic in both
  // FLOPs and instructions, and instructions > FLOPs everywhere.
  for (int level : {4, 5}) {
    const auto ac = characterize(ProblemKind::Acoustic, level, 8);
    const auto ec = characterize(ProblemKind::ElasticCentral, level, 8);
    const auto er = characterize(ProblemKind::ElasticRiemann, level, 8);
    EXPECT_LT(ac.num_flops, ec.num_flops);
    EXPECT_LT(ec.num_flops, er.num_flops);
    EXPECT_LT(ac.num_instructions, ec.num_instructions);
    EXPECT_LT(ec.num_instructions, er.num_instructions);
    EXPECT_GT(ac.num_instructions, ac.num_flops);
    EXPECT_GT(er.num_instructions, er.num_flops);
  }
}

TEST(OpCounter, Table6MagnitudesWithinFactorOfPaper) {
  // Our analytic counts should land within ~4x of the paper's nvprof
  // numbers (Table 6) for level-4 runs of one launch per kernel.
  const auto ac = characterize(ProblemKind::Acoustic, 4, 8);
  EXPECT_GT(ac.num_flops, 391'380'992ull / 4);
  EXPECT_LT(ac.num_flops, 391'380'992ull * 4);
  const auto er = characterize(ProblemKind::ElasticRiemann, 4, 8);
  EXPECT_GT(er.num_flops, 1'472'200'704ull / 4);
  EXPECT_LT(er.num_flops, 1'472'200'704ull * 4);
}

TEST(OpCounter, InstructionExpansionFactorsMatchCalibration) {
  EXPECT_NEAR(instruction_expansion_factor(ProblemKind::Acoustic), 5.47,
              1e-12);
  EXPECT_NEAR(instruction_expansion_factor(ProblemKind::ElasticCentral), 3.50,
              1e-12);
  EXPECT_NEAR(instruction_expansion_factor(ProblemKind::ElasticRiemann), 6.70,
              1e-12);
}

TEST(OpCounter, KernelOpsAccumulate) {
  KernelOps a{.flops = 10, .bytes_read = 20, .bytes_written = 5};
  KernelOps b{.flops = 1, .bytes_read = 2, .bytes_written = 3};
  a += b;
  EXPECT_EQ(a.flops, 11u);
  EXPECT_EQ(a.bytes_total(), 30u);
}

TEST(OpCounter, RejectsDegenerateElements) {
  EXPECT_THROW((void)count_problem_ops(ProblemKind::Acoustic, 10, 1),
               PreconditionError);
}

}  // namespace
}  // namespace wavepim::dg
