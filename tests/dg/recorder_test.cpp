#include "dg/recorder.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "dg/solver.h"
#include "dg/sources.h"

namespace wavepim::dg {
namespace {

class RecorderTest : public ::testing::Test {
 protected:
  mesh::StructuredMesh mesh_{1, 1.0, mesh::Boundary::Periodic};
  std::shared_ptr<const ReferenceElement> ref_ = make_reference_element(3);
};

TEST_F(RecorderTest, LocateNodeSnapsToNearest) {
  const auto corner_loc = locate_node(mesh_, *ref_, {0.0, 0.0, 0.0});
  EXPECT_EQ(corner_loc.element, mesh_.element_at(0, 0, 0));
  EXPECT_EQ(corner_loc.node, static_cast<std::size_t>(ref_->node(0, 0, 0)));

  const auto mid = locate_node(mesh_, *ref_, {0.25, 0.25, 0.25});
  EXPECT_EQ(mid.element, mesh_.element_at(0, 0, 0));
  EXPECT_EQ(mid.node, static_cast<std::size_t>(ref_->node(1, 1, 1)));
}

TEST_F(RecorderTest, RecordsTracesSampleBySample) {
  Seismogram gram(mesh_, *ref_, AcousticPhysics::P);
  const auto r0 = gram.add_receiver({0.1, 0.1, 0.1});
  const auto r1 = gram.add_receiver({0.9, 0.9, 0.9});
  EXPECT_EQ(gram.num_receivers(), 2u);

  Field state(mesh_.num_elements(), 4, 27);
  for (int s = 0; s < 4; ++s) {
    const auto& l0 = gram.location(r0);
    const auto& l1 = gram.location(r1);
    state.value(l0.element, AcousticPhysics::P, l0.node) =
        static_cast<float>(s);
    state.value(l1.element, AcousticPhysics::P, l1.node) =
        static_cast<float>(10 * s);
    gram.record(state);
  }
  EXPECT_EQ(gram.num_samples(), 4u);
  EXPECT_EQ(gram.trace(r0), (std::vector<float>{0, 1, 2, 3}));
  EXPECT_EQ(gram.trace(r1), (std::vector<float>{0, 10, 20, 30}));
  EXPECT_EQ(gram.at(r1, 2), 20.0f);
}

TEST_F(RecorderTest, InjectReplaysForwardAndReversed) {
  Seismogram gram(mesh_, *ref_, AcousticPhysics::P);
  const auto r = gram.add_receiver({0.1, 0.1, 0.1});
  Field state(mesh_.num_elements(), 4, 27);
  const auto& loc = gram.location(r);
  for (int s = 0; s < 3; ++s) {
    state.value(loc.element, AcousticPhysics::P, loc.node) =
        static_cast<float>(s + 1);
    gram.record(state);
  }

  Field rhs(mesh_.num_elements(), 4, 27);
  gram.inject(rhs, 0, /*reversed=*/false, 2.0);
  EXPECT_EQ(rhs.value(loc.element, AcousticPhysics::P, loc.node), 2.0f);
  gram.inject(rhs, 0, /*reversed=*/true, 1.0);  // last sample = 3
  EXPECT_EQ(rhs.value(loc.element, AcousticPhysics::P, loc.node), 5.0f);
}

TEST_F(RecorderTest, PreconditionsEnforced) {
  Seismogram gram(mesh_, *ref_, AcousticPhysics::P);
  Field state(mesh_.num_elements(), 4, 27);
  EXPECT_THROW(gram.record(state), PreconditionError);  // no receivers
  gram.add_receiver({0.5, 0.5, 0.5});
  gram.record(state);
  EXPECT_THROW(gram.add_receiver({0.1, 0.1, 0.1}),
               PreconditionError);  // after recording started
  EXPECT_THROW((void)gram.trace(5), PreconditionError);
  EXPECT_THROW((void)gram.at(0, 9), PreconditionError);
  Field rhs(mesh_.num_elements(), 4, 27);
  EXPECT_THROW(gram.inject(rhs, 9, false, 1.0), PreconditionError);
}

TEST_F(RecorderTest, CapturesPropagatingWave) {
  // A receiver in the path of a plane wave sees an oscillating trace.
  mesh::StructuredMesh mesh(1, 1.0, mesh::Boundary::Periodic);
  dg::MaterialField<AcousticMaterial> mats(mesh.num_elements(), {});
  AcousticSolver solver(mesh, std::move(mats),
                        {.n1d = 4, .flux = FluxType::Upwind});
  init_acoustic_plane_wave(solver, mesh::Axis::X, 1);

  Seismogram gram(mesh, solver.reference(), AcousticPhysics::P);
  const auto r = gram.add_receiver({0.5, 0.5, 0.5});
  for (int s = 0; s < 60; ++s) {
    solver.step(solver.stable_dt());
    gram.record(solver.state());
  }
  const auto trace = gram.trace(r);
  float lo = 1e9f;
  float hi = -1e9f;
  for (float v : trace) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi, 0.3f);
  EXPECT_LT(lo, -0.3f);
}

}  // namespace
}  // namespace wavepim::dg
