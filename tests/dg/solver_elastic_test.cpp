#include <gtest/gtest.h>

#include <cmath>

#include "dg/solver.h"
#include "dg/sources.h"

namespace wavepim::dg {
namespace {

using mesh::Boundary;
using mesh::StructuredMesh;

ElasticSolver make_solver(int level, int n1d, FluxType flux,
                          Boundary boundary = Boundary::Periodic,
                          ElasticMaterial mat = {.lambda = 2.0,
                                                 .mu = 1.0,
                                                 .rho = 1.0}) {
  StructuredMesh mesh(level, 1.0, boundary);
  MaterialField<ElasticMaterial> mats(mesh.num_elements(), mat);
  return ElasticSolver(mesh, std::move(mats),
                       {.n1d = n1d, .flux = flux, .cfl = 0.8});
}

/// Max pointwise error of vx against the exact travelling P-wave.
double p_wave_error(ElasticSolver& solver, int modes, int steps) {
  init_elastic_plane_p_wave(solver, modes);
  solver.run(steps);
  const double cp = solver.materials().at(0).cp();
  const double k = 2.0 * std::numbers::pi * modes / solver.mesh().extent();
  const auto& ref = solver.reference();
  const double h = solver.mesh().element_size();

  double max_err = 0.0;
  for (std::size_t e = 0; e < solver.state().num_elements(); ++e) {
    const auto corner = solver.mesh().corner_of(static_cast<mesh::ElementId>(e));
    const auto got = solver.state().at(e, ElasticPhysics::Vx);
    for (int n = 0; n < ref.num_nodes(); ++n) {
      const double x = corner[0] + 0.5 * (ref.coords_of(n)[0] + 1.0) * h;
      const double want = std::sin(k * (x - cp * solver.time()));
      max_err = std::max(max_err, std::fabs(got[n] - want));
    }
  }
  return max_err;
}

/// Max pointwise error of vy against the exact travelling S-wave.
double s_wave_error(ElasticSolver& solver, int modes, int steps) {
  init_elastic_plane_s_wave(solver, modes);
  solver.run(steps);
  const double cs = solver.materials().at(0).cs();
  const double k = 2.0 * std::numbers::pi * modes / solver.mesh().extent();
  const auto& ref = solver.reference();
  const double h = solver.mesh().element_size();

  double max_err = 0.0;
  for (std::size_t e = 0; e < solver.state().num_elements(); ++e) {
    const auto corner = solver.mesh().corner_of(static_cast<mesh::ElementId>(e));
    const auto got = solver.state().at(e, ElasticPhysics::Vy);
    for (int n = 0; n < ref.num_nodes(); ++n) {
      const double x = corner[0] + 0.5 * (ref.coords_of(n)[0] + 1.0) * h;
      const double want = std::sin(k * (x - cs * solver.time()));
      max_err = std::max(max_err, std::fabs(got[n] - want));
    }
  }
  return max_err;
}

TEST(ElasticSolver, ZeroStateStaysZero) {
  auto solver = make_solver(1, 3, FluxType::Upwind);
  solver.run(5);
  for (float v : solver.state().flat()) {
    EXPECT_EQ(v, 0.0f);
  }
}

class ElasticFluxParam : public ::testing::TestWithParam<FluxType> {};

TEST_P(ElasticFluxParam, PWavePropagatesAtCp) {
  // See the acoustic plane-wave test for the tolerance rationale.
  auto solver = make_solver(1, 6, GetParam());
  EXPECT_LT(p_wave_error(solver, 1, 40), 1e-2) << to_string(GetParam());
}

TEST_P(ElasticFluxParam, SWavePropagatesAtCs) {
  auto solver = make_solver(1, 6, GetParam());
  EXPECT_LT(s_wave_error(solver, 1, 40), 1e-2) << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Fluxes, ElasticFluxParam,
                         ::testing::Values(FluxType::Central,
                                           FluxType::Upwind));

TEST(ElasticSolver, PWaveIsFasterThanSWave) {
  // Propagate the same initial profile; P reaches further. Implicitly
  // verified through the speeds used in the error checks above; here we
  // check the material speeds order the stable dt.
  const ElasticMaterial m{.lambda = 2.0, .mu = 1.0, .rho = 1.0};
  EXPECT_GT(m.cp(), m.cs());
}

TEST(ElasticSolver, CentralFluxConservesEnergyPeriodic) {
  auto solver = make_solver(1, 5, FluxType::Central);
  init_elastic_plane_p_wave(solver, 1);
  const double e0 = solver.total_energy();
  solver.run(50);
  EXPECT_NEAR(solver.total_energy() / e0, 1.0, 5e-4);
}

TEST(ElasticSolver, RiemannFluxDissipatesMonotonically) {
  auto solver = make_solver(1, 4, FluxType::Upwind);
  init_elastic_plane_p_wave(solver, 2);
  double prev = solver.total_energy();
  for (int i = 0; i < 10; ++i) {
    solver.run(5);
    const double e = solver.total_energy();
    EXPECT_LE(e, prev * (1.0 + 1e-6));
    prev = e;
  }
}

TEST(ElasticSolver, FreeSurfaceKeepsEnergyBounded) {
  auto solver = make_solver(2, 4, FluxType::Upwind, Boundary::Reflective);
  // Kick the medium with a localized velocity perturbation.
  auto& u = solver.state();
  const auto& ref = solver.reference();
  const double h = solver.mesh().element_size();
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    const auto corner = solver.mesh().corner_of(static_cast<mesh::ElementId>(e));
    for (int n = 0; n < ref.num_nodes(); ++n) {
      const auto xi = ref.coords_of(n);
      const double x = corner[0] + 0.5 * (xi[0] + 1.0) * h - 0.5;
      const double y = corner[1] + 0.5 * (xi[1] + 1.0) * h - 0.5;
      const double z = corner[2] + 0.5 * (xi[2] + 1.0) * h - 0.5;
      u.value(e, ElasticPhysics::Vz, n) = static_cast<float>(
          std::exp(-(x * x + y * y + z * z) / 0.02));
    }
  }
  const double e0 = solver.total_energy();
  solver.run(60);
  const double e1 = solver.total_energy();
  EXPECT_LE(e1, e0 * 1.001);
  EXPECT_TRUE(std::isfinite(e1));
}

TEST(ElasticSolver, MaterialContrastInterfaceStable) {
  StructuredMesh mesh(2, 1.0, Boundary::Periodic);
  MaterialField<ElasticMaterial> mats(mesh.num_elements(),
                                      {.lambda = 2.0, .mu = 1.0, .rho = 1.0});
  // Soft basin in the middle (half wave speeds).
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    const auto c = mesh.coords_of(e);
    if (c[0] >= 1 && c[0] <= 2 && c[1] >= 1 && c[1] <= 2) {
      mats.set(e, {.lambda = 0.5, .mu = 0.25, .rho = 1.0});
    }
  }
  ElasticSolver solver(mesh, std::move(mats),
                       {.n1d = 4, .flux = FluxType::Upwind, .cfl = 0.5});
  // Use a pulse rather than a plane wave (medium is not homogeneous).
  {
    auto& u = solver.state();
    const auto& ref = solver.reference();
    const double h = solver.mesh().element_size();
    for (std::size_t e = 0; e < u.num_elements(); ++e) {
      const auto corner =
          solver.mesh().corner_of(static_cast<mesh::ElementId>(e));
      for (int n = 0; n < ref.num_nodes(); ++n) {
        const auto xi = ref.coords_of(n);
        const double x = corner[0] + 0.5 * (xi[0] + 1.0) * h - 0.2;
        const double y = corner[1] + 0.5 * (xi[1] + 1.0) * h - 0.5;
        const double z = corner[2] + 0.5 * (xi[2] + 1.0) * h - 0.5;
        u.value(e, ElasticPhysics::Vx, n) = static_cast<float>(
            std::exp(-(x * x + y * y + z * z) / 0.01));
      }
    }
  }
  const double e0 = solver.total_energy();
  solver.run(80);
  EXPECT_LE(solver.total_energy(), e0 * 1.001);
  EXPECT_TRUE(std::isfinite(solver.total_energy()));
}

TEST(ElasticSolver, NineVariablesAllocated) {
  auto solver = make_solver(1, 3, FluxType::Central);
  EXPECT_EQ(solver.state().num_vars(), 9u);
  EXPECT_EQ(solver.state().nodes_per_element(), 27u);
}

}  // namespace
}  // namespace wavepim::dg
