#include "dg/io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace wavepim::dg {
namespace {

class IoTest : public ::testing::Test {
 protected:
  mesh::StructuredMesh mesh_{1, 1.0, mesh::Boundary::Periodic};
  std::shared_ptr<const ReferenceElement> ref_ = make_reference_element(3);
  Field field_{8, 4, 27};
};

TEST_F(IoTest, SliceCsvContainsOnlyThePlane) {
  // Mark every node with its x coordinate so we can verify the filter.
  for (std::size_t e = 0; e < 8; ++e) {
    for (int n = 0; n < 27; ++n) {
      field_.value(e, 0, static_cast<std::size_t>(n)) = 1.0f;
    }
  }
  std::ostringstream os;
  write_slice_csv(os, mesh_, *ref_, field_, 0, mesh::Axis::X, 0.5);

  std::istringstream in(os.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y,z,value");
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    const double x = std::stod(line.substr(0, line.find(',')));
    EXPECT_NEAR(x, 0.5, 0.26);  // within half a nodal spacing
    ++rows;
  }
  // The x=0.5 plane: both element layers contribute their boundary nodes:
  // 2 x-layers of nodes x (6x6 nodes in y-z) = 72 rows.
  EXPECT_EQ(rows, 72u);
}

TEST_F(IoTest, SliceCsvRejectsBadVariable) {
  std::ostringstream os;
  EXPECT_THROW(
      write_slice_csv(os, mesh_, *ref_, field_, 9, mesh::Axis::X, 0.5),
      PreconditionError);
}

TEST_F(IoTest, VtkStructureIsWellFormed) {
  field_.fill(0.25f);
  std::ostringstream os;
  write_vtk(os, mesh_, *ref_, field_, {"p", "vx", "vy", "vz"});
  const std::string s = os.str();
  EXPECT_NE(s.find("# vtk DataFile Version 3.0"), std::string::npos);
  EXPECT_NE(s.find("POINTS 216 float"), std::string::npos);  // 8 x 27
  EXPECT_NE(s.find("POINT_DATA 216"), std::string::npos);
  EXPECT_NE(s.find("SCALARS p float 1"), std::string::npos);
  EXPECT_NE(s.find("SCALARS vz float 1"), std::string::npos);
  // All four scalar arrays present.
  std::size_t count = 0;
  for (std::size_t pos = s.find("SCALARS"); pos != std::string::npos;
       pos = s.find("SCALARS", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST_F(IoTest, VtkRequiresOneNamePerVariable) {
  std::ostringstream os;
  EXPECT_THROW(write_vtk(os, mesh_, *ref_, field_, {"p"}),
               PreconditionError);
}

TEST_F(IoTest, ShapeMismatchRejected) {
  Field wrong(8, 4, 8);  // wrong nodes per element
  std::ostringstream os;
  EXPECT_THROW(write_vtk(os, mesh_, *ref_, wrong, {"a", "b", "c", "d"}),
               PreconditionError);
}

TEST_F(IoTest, FileWrappersWriteFiles) {
  field_.fill(1.0f);
  const std::string path = "/tmp/wavepim_io_test.vtk";
  write_vtk_file(path, mesh_, *ref_, field_, {"p", "vx", "vy", "vz"});
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "# vtk DataFile Version 3.0");
}

}  // namespace
}  // namespace wavepim::dg
