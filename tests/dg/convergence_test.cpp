// Convergence and dissipation property sweeps for the dG solver: the
// numerical backbone every PIM result rests on.
#include <gtest/gtest.h>

#include <cmath>

#include "dg/solver.h"
#include "dg/sources.h"

namespace wavepim::dg {
namespace {

using mesh::Boundary;
using mesh::StructuredMesh;

/// Error after advancing to a fixed final time (steps chosen from the
/// stable dt so different orders are compared at the same physical time).
double acoustic_error(int level, int n1d, FluxType flux, double final_time,
                      double cfl = 0.5) {
  StructuredMesh mesh(level, 1.0, Boundary::Periodic);
  MaterialField<AcousticMaterial> mats(mesh.num_elements(), {});
  AcousticSolver solver(mesh, std::move(mats),
                        {.n1d = n1d, .flux = flux, .cfl = cfl});
  init_acoustic_plane_wave(solver, mesh::Axis::X, 1);
  const int steps =
      static_cast<int>(std::ceil(final_time / solver.stable_dt()));
  solver.run(steps, final_time / steps);
  Field expected(solver.state().num_elements(), 4,
                 solver.state().nodes_per_element());
  sample_acoustic_plane_wave(solver, mesh::Axis::X, 1, solver.time(),
                             expected);
  double err = 0.0;
  for (std::size_t e = 0; e < expected.num_elements(); ++e) {
    const auto got = solver.state().at(e, AcousticPhysics::P);
    const auto want = expected.at(e, AcousticPhysics::P);
    for (std::size_t n = 0; n < got.size(); ++n) {
      err = std::max(err, std::fabs(static_cast<double>(got[n]) - want[n]));
    }
  }
  return err;
}

TEST(Convergence, SpectralWithOrder) {
  // At fixed mesh and fixed final time, raising the polynomial order must
  // shrink the error dramatically. dG phase/dissipation errors improve in
  // the well-known even/odd staircase, so compare two-order gaps.
  const double kT = 0.3;
  const double e3 = acoustic_error(1, 3, FluxType::Upwind, kT);
  const double e5 = acoustic_error(1, 5, FluxType::Upwind, kT);
  const double e6 = acoustic_error(1, 6, FluxType::Upwind, kT);
  const double e8 = acoustic_error(1, 8, FluxType::Upwind, kT);
  EXPECT_LT(e5, e3 * 0.1);
  EXPECT_LT(e8, e6 * 0.1);
  EXPECT_LT(e8, 1e-4);  // the paper's 8-point (512-node) elements
}

TEST(Convergence, HRefinement) {
  // Halving h at order 3 must cut the error substantially (h^{p+1}
  // asymptotically; require at least 4x on these coarse grids).
  const double kT = 0.25;
  const double coarse = acoustic_error(1, 4, FluxType::Upwind, kT);
  const double fine = acoustic_error(2, 4, FluxType::Upwind, kT);
  EXPECT_LT(fine, coarse / 4.0);
}

TEST(Convergence, TimeRefinementDoesNotDegrade) {
  // Shrinking dt (same final time via more steps) must not grow the
  // error: spatial error dominates at this resolution.
  StructuredMesh mesh(1, 1.0, Boundary::Periodic);
  auto run = [&](double cfl, int steps) {
    MaterialField<AcousticMaterial> mats(mesh.num_elements(), {});
    AcousticSolver solver(mesh, std::move(mats),
                          {.n1d = 5, .flux = FluxType::Upwind, .cfl = cfl});
    init_acoustic_plane_wave(solver, mesh::Axis::X, 1);
    solver.run(steps);
    return solver;
  };
  auto a = run(0.8, 10);
  auto b = run(0.4, 20);
  EXPECT_NEAR(a.time(), b.time(), 1e-12);
  Field expected(a.state().num_elements(), 4, a.state().nodes_per_element());
  sample_acoustic_plane_wave(a, mesh::Axis::X, 1, a.time(), expected);
  auto err_of = [&](const AcousticSolver& s) {
    double err = 0.0;
    for (std::size_t e = 0; e < expected.num_elements(); ++e) {
      const auto got = s.state().at(e, AcousticPhysics::P);
      const auto want = expected.at(e, AcousticPhysics::P);
      for (std::size_t n = 0; n < got.size(); ++n) {
        err = std::max(err,
                       std::fabs(static_cast<double>(got[n]) - want[n]));
      }
    }
    return err;
  };
  EXPECT_LT(err_of(b), err_of(a) * 2.0);
}

class DissipationSweep : public ::testing::TestWithParam<int> {};

TEST_P(DissipationSweep, UpwindDissipatesMoreThanCentral) {
  const int n1d = GetParam();
  auto energy_after = [&](FluxType flux) {
    StructuredMesh mesh(1, 1.0, Boundary::Periodic);
    MaterialField<AcousticMaterial> mats(mesh.num_elements(), {});
    AcousticSolver solver(mesh, std::move(mats),
                          {.n1d = n1d, .flux = flux, .cfl = 0.5});
    init_acoustic_plane_wave(solver, mesh::Axis::X, 2);
    solver.run(30);
    return solver.total_energy();
  };
  const double upwind = energy_after(FluxType::Upwind);
  const double central = energy_after(FluxType::Central);
  EXPECT_LE(upwind, central * (1.0 + 1e-6)) << "n1d=" << n1d;
}

INSTANTIATE_TEST_SUITE_P(Orders, DissipationSweep,
                         ::testing::Values(3, 4, 5, 6));

class StabilitySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(StabilitySweep, LongRunStaysBounded) {
  const auto [level, n1d] = GetParam();
  StructuredMesh mesh(level, 1.0, Boundary::Periodic);
  MaterialField<AcousticMaterial> mats(mesh.num_elements(), {});
  AcousticSolver solver(mesh, std::move(mats),
                        {.n1d = n1d, .flux = FluxType::Upwind, .cfl = 0.8});
  init_acoustic_plane_wave(solver, mesh::Axis::Z, 1);
  const double e0 = solver.total_energy();
  solver.run(200);
  EXPECT_TRUE(std::isfinite(solver.total_energy()));
  EXPECT_LE(solver.total_energy(), e0 * 1.01);
}

INSTANTIATE_TEST_SUITE_P(Grid, StabilitySweep,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(3, 5)));

TEST(Convergence, ElasticOrdersMatchAcousticTrend) {
  auto s_wave_err = [&](int n1d) {
    StructuredMesh mesh(1, 1.0, Boundary::Periodic);
    MaterialField<ElasticMaterial> mats(mesh.num_elements(),
                                        {2.0, 1.0, 1.0});
    ElasticSolver solver(mesh, std::move(mats),
                         {.n1d = n1d, .flux = FluxType::Upwind, .cfl = 0.5});
    init_elastic_plane_s_wave(solver, 1);
    solver.run(20);
    const double cs = solver.materials().at(0).cs();
    const double k = 2.0 * std::numbers::pi;
    double err = 0.0;
    const auto& ref = solver.reference();
    const double h = solver.mesh().element_size();
    for (std::size_t e = 0; e < solver.state().num_elements(); ++e) {
      const auto corner =
          solver.mesh().corner_of(static_cast<mesh::ElementId>(e));
      const auto got = solver.state().at(e, ElasticPhysics::Vy);
      for (int n = 0; n < ref.num_nodes(); ++n) {
        const double x = corner[0] + 0.5 * (ref.coords_of(n)[0] + 1.0) * h;
        err = std::max(err, std::fabs(got[n] -
                                      std::sin(k * (x - cs * solver.time()))));
      }
    }
    return err;
  };
  EXPECT_LT(s_wave_err(5), s_wave_err(3) * 0.2);
}

}  // namespace
}  // namespace wavepim::dg
