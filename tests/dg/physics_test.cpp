#include "dg/physics.h"

#include <gtest/gtest.h>

#include <array>

namespace wavepim::dg {
namespace {

using mesh::Axis;

TEST(AcousticMaterial, DerivedQuantities) {
  AcousticMaterial m{.kappa = 4.0, .rho = 1.0};
  EXPECT_DOUBLE_EQ(m.sound_speed(), 2.0);
  EXPECT_DOUBLE_EQ(m.impedance(), 2.0);
  EXPECT_DOUBLE_EQ(m.max_wave_speed(), 2.0);
}

TEST(ElasticMaterial, DerivedQuantities) {
  ElasticMaterial m{.lambda = 2.0, .mu = 1.0, .rho = 1.0};
  EXPECT_DOUBLE_EQ(m.cp(), 2.0);
  EXPECT_DOUBLE_EQ(m.cs(), 1.0);
  EXPECT_DOUBLE_EQ(m.zp(), 2.0);
  EXPECT_DOUBLE_EQ(m.zs(), 1.0);
  EXPECT_GT(m.cp(), m.cs());
}

TEST(AcousticFlux, ContinuousStateHasNoCorrection) {
  // Identical traces on both sides: no jump, no correction (consistency).
  const AcousticMaterial m{.kappa = 2.25, .rho = 1.5};
  std::array<float, 4> u = {0.7f, 0.2f, -0.1f, 0.4f};
  std::array<float, 4> delta{};
  for (Axis a : mesh::kAllAxes) {
    for (int s : {-1, +1}) {
      for (FluxType f : {FluxType::Central, FluxType::Upwind}) {
        AcousticPhysics::flux_correction(a, s, f, m, m, u.data(), u.data(),
                                         delta.data());
        for (float d : delta) {
          EXPECT_NEAR(d, 0.0f, 1e-7f);
        }
      }
    }
  }
}

TEST(AcousticFlux, UpwindPassesRightGoingWaveUnchanged) {
  // A pure right-going characteristic (p = Z vn) with matched traces must
  // produce the same star state as the minus trace.
  const AcousticMaterial m{.kappa = 4.0, .rho = 1.0};  // Z = 2
  const float p = 0.8f;
  const float vn = p / 2.0f;
  std::array<float, 4> um = {p, vn, 0.0f, 0.0f};
  // Plus side carries no left-going wave either: same state.
  std::array<float, 4> delta{};
  AcousticPhysics::flux_correction(Axis::X, +1, FluxType::Upwind, m, m,
                                   um.data(), um.data(), delta.data());
  for (float d : delta) EXPECT_NEAR(d, 0.0f, 1e-7f);
}

TEST(AcousticFlux, RigidWallReflectionZeroesNormalVelocity) {
  const AcousticMaterial m{.kappa = 1.0, .rho = 1.0};
  std::array<float, 4> um = {0.5f, 0.3f, 0.1f, -0.2f};
  std::array<float, 4> up{};
  AcousticPhysics::reflect(Axis::X, +1, um.data(), up.data());
  EXPECT_FLOAT_EQ(up[AcousticPhysics::P], um[AcousticPhysics::P]);
  EXPECT_FLOAT_EQ(up[AcousticPhysics::Vx], -um[AcousticPhysics::Vx]);
  EXPECT_FLOAT_EQ(up[AcousticPhysics::Vy], um[AcousticPhysics::Vy]);

  // Central flux with the ghost gives vn* = 0: the p-correction removes
  // exactly the interior normal-velocity flux.
  std::array<float, 4> delta{};
  AcousticPhysics::flux_correction(Axis::X, +1, FluxType::Central, m, m,
                                   um.data(), up.data(), delta.data());
  EXPECT_NEAR(delta[AcousticPhysics::P],
              m.kappa * (0.0 - um[AcousticPhysics::Vx]), 1e-7);
}

TEST(AcousticFlux, CentralIsSymmetricUnderSideSwap) {
  // Swapping traces and flipping the normal negates the correction of the
  // conserved normal flux (consistency of the two-sided computation).
  const AcousticMaterial m{.kappa = 1.0, .rho = 1.0};
  std::array<float, 4> ua = {0.9f, 0.1f, 0.0f, 0.0f};
  std::array<float, 4> ub = {0.2f, -0.3f, 0.0f, 0.0f};
  std::array<float, 4> d1{};
  std::array<float, 4> d2{};
  AcousticPhysics::flux_correction(Axis::X, +1, FluxType::Central, m, m,
                                   ua.data(), ub.data(), d1.data());
  AcousticPhysics::flux_correction(Axis::X, -1, FluxType::Central, m, m,
                                   ub.data(), ua.data(), d2.data());
  // Conservation: the corrections seen from the two sides (each measured
  // against its own outward normal) sum to the jump of the raw flux:
  // kappa (vx_b - vx_a) for the p-equation.
  const double jump_p = m.kappa * (ub[1] - ua[1]);
  EXPECT_NEAR(d1[0] + d2[0], jump_p, 1e-6);
}

TEST(ElasticFlux, ContinuousStateHasNoCorrection) {
  const ElasticMaterial m{.lambda = 2.0, .mu = 1.0, .rho = 1.0};
  std::array<float, 9> u = {0.1f, -0.2f, 0.3f, 0.5f, 0.4f,
                            -0.6f, 0.2f, -0.1f, 0.05f};
  std::array<float, 9> delta{};
  for (Axis a : mesh::kAllAxes) {
    for (int s : {-1, +1}) {
      for (FluxType f : {FluxType::Central, FluxType::Upwind}) {
        ElasticPhysics::flux_correction(a, s, f, m, m, u.data(), u.data(),
                                        delta.data());
        for (float d : delta) {
          EXPECT_NEAR(d, 0.0f, 1e-6f) << to_string(f);
        }
      }
    }
  }
}

TEST(ElasticFlux, FreeSurfaceReflectZeroesTraction) {
  std::array<float, 9> um = {0.1f, -0.2f, 0.3f, 0.5f, 0.4f,
                             -0.6f, 0.2f, -0.1f, 0.05f};
  std::array<float, 9> up{};
  ElasticPhysics::reflect(Axis::Y, +1, um.data(), up.data());
  // Traction components for a Y-face: Sxy, Syy, Syz flip sign.
  EXPECT_FLOAT_EQ(up[ElasticPhysics::Syy], -um[ElasticPhysics::Syy]);
  EXPECT_FLOAT_EQ(up[ElasticPhysics::Sxy], -um[ElasticPhysics::Sxy]);
  EXPECT_FLOAT_EQ(up[ElasticPhysics::Syz], -um[ElasticPhysics::Syz]);
  // Non-traction components unchanged.
  EXPECT_FLOAT_EQ(up[ElasticPhysics::Sxx], um[ElasticPhysics::Sxx]);
  EXPECT_FLOAT_EQ(up[ElasticPhysics::Vx], um[ElasticPhysics::Vx]);
}

TEST(ElasticFlux, PWaveCharacteristicPassesUpwind) {
  // Right-going P wave: vn arbitrary, tn = -Zp vn; the left-going invariant
  // vanishes so the upwind star state equals the minus trace.
  const ElasticMaterial m{.lambda = 2.0, .mu = 1.0, .rho = 1.0};  // Zp = 2
  std::array<float, 9> u{};
  const float vx = 0.4f;
  u[ElasticPhysics::Vx] = vx;
  u[ElasticPhysics::Sxx] = static_cast<float>(-m.zp() * vx);
  // Transverse diagonal stresses ride along without traction on an X face.
  u[ElasticPhysics::Syy] = static_cast<float>(-m.lambda / (m.lambda + 2 * m.mu) *
                                              m.zp() * vx);
  u[ElasticPhysics::Szz] = u[ElasticPhysics::Syy];

  std::array<float, 9> delta{};
  ElasticPhysics::flux_correction(Axis::X, +1, FluxType::Upwind, m, m,
                                  u.data(), u.data(), delta.data());
  for (float d : delta) EXPECT_NEAR(d, 0.0f, 1e-6f);
}

TEST(ElasticFlux, SigmaVarMapIsSymmetric) {
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t a = 0; a < 3; ++a) {
      EXPECT_EQ(ElasticPhysics::sigma_var(i, a),
                ElasticPhysics::sigma_var(a, i));
    }
  }
  EXPECT_EQ(ElasticPhysics::sigma_var(0, 0), ElasticPhysics::Sxx);
  EXPECT_EQ(ElasticPhysics::sigma_var(1, 2), ElasticPhysics::Syz);
  EXPECT_EQ(ElasticPhysics::sigma_var(0, 1), ElasticPhysics::Sxy);
}

TEST(EnergyDensity, AcousticIsPositiveDefinite) {
  const AcousticMaterial m{.kappa = 2.0, .rho = 3.0};
  std::array<float, 4> zero{};
  EXPECT_DOUBLE_EQ(AcousticPhysics::energy_density(m, zero.data()), 0.0);
  std::array<float, 4> u = {1.0f, 0.5f, -0.5f, 0.25f};
  EXPECT_GT(AcousticPhysics::energy_density(m, u.data()), 0.0);
}

TEST(EnergyDensity, ElasticUniaxialMatchesHandComputation) {
  const ElasticMaterial m{.lambda = 0.0, .mu = 0.5, .rho = 2.0};
  // With lambda = 0: E = 2 mu = 1, so eps_xx = sxx / (2 mu) = sxx.
  std::array<float, 9> u{};
  u[ElasticPhysics::Sxx] = 2.0f;
  u[ElasticPhysics::Vx] = 1.0f;
  // kinetic = rho v^2 / 2 = 1; strain = sxx * eps_xx / 2 = 2*2/2 = 2.
  EXPECT_NEAR(ElasticPhysics::energy_density(m, u.data()), 3.0, 1e-12);
}

TEST(FluxType, Names) {
  EXPECT_STREQ(to_string(FluxType::Central), "central");
  EXPECT_STREQ(to_string(FluxType::Upwind), "riemann");
}

}  // namespace
}  // namespace wavepim::dg
