#include "dg/basis.h"

#include <gtest/gtest.h>

#include <cmath>

namespace wavepim::dg {
namespace {

class BasisParam : public ::testing::TestWithParam<int> {};

TEST_P(BasisParam, CardinalityOfLagrangeFunctions) {
  const Basis1d b(gll_rule(GetParam()));
  for (int j = 0; j < b.n(); ++j) {
    for (int i = 0; i < b.n(); ++i) {
      EXPECT_NEAR(b.lagrange(j, b.points()[i]), i == j ? 1.0 : 0.0, 1e-11);
    }
  }
}

TEST_P(BasisParam, DifferentiationRowsSumToZero) {
  // Derivative of the constant function is zero.
  const Basis1d b(gll_rule(GetParam()));
  for (int i = 0; i < b.n(); ++i) {
    double row = 0.0;
    for (int j = 0; j < b.n(); ++j) {
      row += b.d(i, j);
    }
    EXPECT_NEAR(row, 0.0, 1e-11);
  }
}

TEST_P(BasisParam, DifferentiatesMonomialsExactly) {
  const Basis1d b(gll_rule(GetParam()));
  const int n = b.n();
  // D must be exact on polynomials up to degree n-1.
  for (int deg = 1; deg < n; ++deg) {
    for (int i = 0; i < n; ++i) {
      double d = 0.0;
      for (int j = 0; j < n; ++j) {
        d += b.d(i, j) * std::pow(b.points()[j], deg);
      }
      EXPECT_NEAR(d, deg * std::pow(b.points()[i], deg - 1), 1e-9)
          << "deg=" << deg << " i=" << i;
    }
  }
}

TEST_P(BasisParam, InterpolationReproducesPolynomials) {
  const Basis1d b(gll_rule(GetParam()));
  const int n = b.n();
  std::vector<double> nodal(n);
  auto f = [](double x) { return 1.0 + x + 0.5 * x * x; };
  for (int i = 0; i < n; ++i) {
    nodal[i] = f(b.points()[i]);
  }
  if (n >= 3) {
    for (double x : {-0.7, 0.0, 0.33, 0.99}) {
      EXPECT_NEAR(b.interpolate(nodal, x), f(x), 1e-11);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, BasisParam, ::testing::Values(2, 3, 4, 6, 8));

TEST(Basis, SummationByPartsEndpointIdentity) {
  // GLL quadrature + D satisfy: sum_i w_i (Du)_i = u(1) - u(-1) for
  // polynomials (discrete integration by parts backbone of dG stability).
  const Basis1d b(gll_rule(6));
  const int n = b.n();
  std::vector<double> u(n);
  for (int i = 0; i < n; ++i) {
    const double x = b.points()[i];
    u[i] = 0.3 + x * x * x - 0.5 * x * x;
  }
  double integral = 0.0;
  for (int i = 0; i < n; ++i) {
    double du = 0.0;
    for (int j = 0; j < n; ++j) {
      du += b.d(i, j) * u[j];
    }
    integral += b.weights()[i] * du;
  }
  EXPECT_NEAR(integral, u[n - 1] - u[0], 1e-11);
}

}  // namespace
}  // namespace wavepim::dg
