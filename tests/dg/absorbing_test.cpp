// Tests of the absorbing sponge layer (lightweight PML stand-in).
#include <gtest/gtest.h>

#include <cmath>

#include "dg/solver.h"
#include "dg/sources.h"

namespace wavepim::dg {
namespace {

using mesh::Boundary;
using mesh::StructuredMesh;

AcousticSolver make_solver(Boundary boundary) {
  StructuredMesh mesh(2, 1.0, boundary);
  MaterialField<AcousticMaterial> mats(mesh.num_elements(), {});
  return AcousticSolver(mesh, std::move(mats),
                        {.n1d = 4, .flux = FluxType::Upwind, .cfl = 0.5});
}

TEST(Sponge, BoundarySpongeShape) {
  auto solver = make_solver(Boundary::Reflective);
  const auto sigma = solver.make_boundary_sponge(1, 10.0);
  const auto& mesh = solver.mesh();
  // Only the outermost element shell is damped; the 2x2x2 core is free.
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    const auto c = mesh.coords_of(e);
    const bool shell = c[0] == 0 || c[0] == 3 || c[1] == 0 || c[1] == 3 ||
                       c[2] == 0 || c[2] == 3;
    if (shell) {
      EXPECT_GT(sigma[e], 0.0);
    } else {
      EXPECT_EQ(sigma[e], 0.0);
    }
  }
}

TEST(Sponge, RampIsMonotoneInDepth) {
  auto solver = make_solver(Boundary::Reflective);
  const auto sigma = solver.make_boundary_sponge(2, 8.0);
  const auto& mesh = solver.mesh();
  // Outermost layer damps more than the next one in.
  EXPECT_GT(sigma[mesh.element_at(0, 1, 1)],
            sigma[mesh.element_at(1, 1, 1)]);
  EXPECT_EQ(sigma[mesh.element_at(0, 1, 1)], 8.0);
}

TEST(Sponge, AbsorbsOutgoingPulse) {
  // With a sponge, a pulse reaching the wall loses most of its energy;
  // without one, the rigid wall conserves it.
  auto damped = make_solver(Boundary::Reflective);
  auto undamped = make_solver(Boundary::Reflective);
  damped.set_damping(damped.make_boundary_sponge(1, 25.0));

  for (auto* s : {&damped, &undamped}) {
    init_acoustic_gaussian_pulse(*s, {0.5, 0.5, 0.5}, 0.12, 1.0);
  }
  const double e0 = undamped.total_energy();
  // Long enough for the wavefront to traverse the sponge.
  damped.run(120);
  undamped.run(120);
  EXPECT_GT(undamped.total_energy(), 0.5 * e0);   // wall keeps energy
  EXPECT_LT(damped.total_energy(), 0.35 * e0);    // sponge eats it
}

TEST(Sponge, InteriorSolutionInitiallyUnaffected) {
  // Before the wave reaches the sponge, damped and undamped runs agree in
  // the interior.
  auto damped = make_solver(Boundary::Reflective);
  auto undamped = make_solver(Boundary::Reflective);
  damped.set_damping(damped.make_boundary_sponge(1, 25.0));
  for (auto* s : {&damped, &undamped}) {
    init_acoustic_gaussian_pulse(*s, {0.5, 0.5, 0.5}, 0.08, 1.0);
  }
  // Causality bound: the sponge starts 0.25 away from the domain centre,
  // so for t < 0.25/c its effect cannot reach the central nodes.
  damped.run(4);
  undamped.run(4);
  const auto& mesh = damped.mesh();
  const auto center = mesh.element_at(1, 1, 1);
  const auto node = damped.reference().node(3, 3, 3);  // at (0.5,0.5,0.5)
  EXPECT_NEAR(damped.state().value(center, AcousticPhysics::P, node),
              undamped.state().value(center, AcousticPhysics::P, node),
              1e-5);
}

TEST(Sponge, Preconditions) {
  auto solver = make_solver(Boundary::Reflective);
  EXPECT_THROW(solver.set_damping({1.0, 2.0}), PreconditionError);
  std::vector<double> negative(solver.mesh().num_elements(), -1.0);
  EXPECT_THROW(solver.set_damping(negative), PreconditionError);
  EXPECT_THROW((void)solver.make_boundary_sponge(0, 1.0), PreconditionError);
  EXPECT_THROW((void)solver.make_boundary_sponge(1, -1.0),
               PreconditionError);
}

TEST(Sponge, WorksForElasticToo) {
  StructuredMesh mesh(2, 1.0, Boundary::Reflective);
  MaterialField<ElasticMaterial> mats(mesh.num_elements(), {2.0, 1.0, 1.0});
  ElasticSolver solver(mesh, std::move(mats),
                       {.n1d = 3, .flux = FluxType::Upwind, .cfl = 0.5});
  solver.set_damping(solver.make_boundary_sponge(1, 20.0));
  auto& u = solver.state();
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (std::size_t n = 0; n < u.nodes_per_element(); ++n) {
      u.value(e, ElasticPhysics::Vx, n) = 0.1f;
    }
  }
  const double e0 = solver.total_energy();
  solver.run(80);
  EXPECT_LT(solver.total_energy(), 0.5 * e0);
  EXPECT_TRUE(std::isfinite(solver.total_energy()));
}

}  // namespace
}  // namespace wavepim::dg
