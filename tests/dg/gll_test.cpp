#include "dg/gll.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.h"

namespace wavepim::dg {
namespace {

TEST(Gll, RejectsBadPointCounts) {
  EXPECT_THROW((void)gll_rule(1), PreconditionError);
  EXPECT_THROW((void)gll_rule(33), PreconditionError);
}

TEST(Gll, TwoPointRuleIsTrapezoid) {
  const auto r = gll_rule(2);
  EXPECT_DOUBLE_EQ(r.points[0], -1.0);
  EXPECT_DOUBLE_EQ(r.points[1], 1.0);
  EXPECT_NEAR(r.weights[0], 1.0, 1e-14);
  EXPECT_NEAR(r.weights[1], 1.0, 1e-14);
}

TEST(Gll, ThreePointRuleMatchesKnownValues) {
  const auto r = gll_rule(3);
  EXPECT_NEAR(r.points[1], 0.0, 1e-14);
  EXPECT_NEAR(r.weights[0], 1.0 / 3.0, 1e-14);
  EXPECT_NEAR(r.weights[1], 4.0 / 3.0, 1e-14);
}

TEST(Gll, FivePointRuleMatchesKnownValues) {
  const auto r = gll_rule(5);
  EXPECT_NEAR(r.points[1], -std::sqrt(3.0 / 7.0), 1e-13);
  EXPECT_NEAR(r.weights[0], 0.1, 1e-13);
  EXPECT_NEAR(r.weights[1], 49.0 / 90.0, 1e-13);
  EXPECT_NEAR(r.weights[2], 32.0 / 45.0, 1e-13);
}

class GllParam : public ::testing::TestWithParam<int> {};

TEST_P(GllParam, WeightsSumToTwo) {
  const auto r = gll_rule(GetParam());
  const double sum =
      std::accumulate(r.weights.begin(), r.weights.end(), 0.0);
  EXPECT_NEAR(sum, 2.0, 1e-12);
}

TEST_P(GllParam, PointsAreSortedSymmetricWithEndpoints) {
  const auto r = gll_rule(GetParam());
  const int n = GetParam();
  EXPECT_DOUBLE_EQ(r.points.front(), -1.0);
  EXPECT_DOUBLE_EQ(r.points.back(), 1.0);
  for (int i = 1; i < n; ++i) {
    EXPECT_LT(r.points[i - 1], r.points[i]);
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(r.points[i], -r.points[n - 1 - i], 1e-13);
    EXPECT_NEAR(r.weights[i], r.weights[n - 1 - i], 1e-13);
  }
}

TEST_P(GllParam, IntegratesPolynomialsExactlyUpToDegree2nMinus3) {
  // GLL with n points is exact for degree <= 2n-3.
  const int n = GetParam();
  const auto r = gll_rule(n);
  for (int deg = 0; deg <= 2 * n - 3; ++deg) {
    double q = 0.0;
    for (int i = 0; i < n; ++i) {
      q += r.weights[i] * std::pow(r.points[i], deg);
    }
    const double exact = (deg % 2 == 0) ? 2.0 / (deg + 1) : 0.0;
    EXPECT_NEAR(q, exact, 1e-11) << "n=" << n << " deg=" << deg;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, GllParam,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 12, 16));

TEST(Legendre, KnownValues) {
  EXPECT_DOUBLE_EQ(legendre(0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(legendre(1, 0.3), 0.3);
  EXPECT_NEAR(legendre(2, 0.5), 0.5 * (3 * 0.25 - 1), 1e-15);
  // P_n(1) = 1 for all n.
  for (int n = 0; n <= 12; ++n) {
    EXPECT_NEAR(legendre(n, 1.0), 1.0, 1e-13);
  }
}

}  // namespace
}  // namespace wavepim::dg
