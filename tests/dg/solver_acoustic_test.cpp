#include <gtest/gtest.h>

#include <cmath>

#include "common/statistics.h"
#include "dg/solver.h"
#include "dg/sources.h"

namespace wavepim::dg {
namespace {

using mesh::Boundary;
using mesh::StructuredMesh;

AcousticSolver make_solver(int level, int n1d, FluxType flux,
                           Boundary boundary = Boundary::Periodic,
                           AcousticMaterial mat = {.kappa = 1.0, .rho = 1.0}) {
  StructuredMesh mesh(level, 1.0, boundary);
  MaterialField<AcousticMaterial> mats(mesh.num_elements(), mat);
  return AcousticSolver(mesh, std::move(mats),
                        {.n1d = n1d, .flux = flux, .cfl = 0.8});
}

double plane_wave_error(AcousticSolver& solver, mesh::Axis axis, int modes,
                        int steps) {
  init_acoustic_plane_wave(solver, axis, modes);
  const double dt = solver.stable_dt();
  solver.run(steps, dt);
  Field expected(solver.state().num_elements(), AcousticPhysics::kNumVars,
                 solver.state().nodes_per_element());
  sample_acoustic_plane_wave(solver, axis, modes, solver.time(), expected);

  double max_err = 0.0;
  for (std::size_t e = 0; e < expected.num_elements(); ++e) {
    const auto got = solver.state().at(e, AcousticPhysics::P);
    const auto want = expected.at(e, AcousticPhysics::P);
    for (std::size_t n = 0; n < got.size(); ++n) {
      max_err = std::max(max_err,
                         std::fabs(static_cast<double>(got[n]) - want[n]));
    }
  }
  return max_err;
}

TEST(AcousticSolver, ZeroStateStaysZero) {
  auto solver = make_solver(1, 3, FluxType::Upwind);
  solver.run(5);
  for (float v : solver.state().flat()) {
    EXPECT_EQ(v, 0.0f);
  }
  EXPECT_GT(solver.time(), 0.0);
}

TEST(AcousticSolver, ConstantPressureIsSteadyStatePeriodic) {
  // A spatially constant state is an exact steady solution with periodic
  // boundaries (all derivatives and jumps vanish).
  auto solver = make_solver(1, 4, FluxType::Upwind);
  for (std::size_t e = 0; e < solver.state().num_elements(); ++e) {
    for (auto& v : solver.state().at(e, AcousticPhysics::P)) {
      v = 0.75f;
    }
  }
  solver.run(10);
  for (std::size_t e = 0; e < solver.state().num_elements(); ++e) {
    for (float v : solver.state().at(e, AcousticPhysics::P)) {
      EXPECT_NEAR(v, 0.75f, 1e-5f);
    }
  }
}

class PlaneWaveAxes : public ::testing::TestWithParam<mesh::Axis> {};

TEST_P(PlaneWaveAxes, PropagatesAccurately) {
  // Level 1 puts only 2 elements per wavelength; the dominant error is the
  // ~1e-2 interface interpolation jump, so 1e-2 is the honest bound here.
  // Convergence with order is asserted separately below.
  auto solver = make_solver(1, 6, FluxType::Upwind);
  const double err = plane_wave_error(solver, GetParam(), 1, 40);
  EXPECT_LT(err, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(AllAxes, PlaneWaveAxes,
                         ::testing::Values(mesh::Axis::X, mesh::Axis::Y,
                                           mesh::Axis::Z));

TEST(AcousticSolver, CentralFluxPropagatesToo) {
  auto solver = make_solver(1, 6, FluxType::Central);
  const double err = plane_wave_error(solver, mesh::Axis::X, 1, 40);
  EXPECT_LT(err, 1e-2);
}

TEST(AcousticSolver, AccuracyImprovesWithOrder) {
  auto coarse = make_solver(1, 3, FluxType::Upwind);
  auto fine = make_solver(1, 6, FluxType::Upwind);
  const double err_coarse = plane_wave_error(coarse, mesh::Axis::X, 1, 20);
  const double err_fine = plane_wave_error(fine, mesh::Axis::X, 1, 20);
  EXPECT_LT(err_fine, err_coarse / 10.0);
}

TEST(AcousticSolver, CentralFluxConservesEnergyPeriodic) {
  auto solver = make_solver(1, 5, FluxType::Central);
  init_acoustic_plane_wave(solver, mesh::Axis::X, 1);
  const double e0 = solver.total_energy();
  solver.run(50);
  const double e1 = solver.total_energy();
  EXPECT_NEAR(e1 / e0, 1.0, 2e-4);
}

TEST(AcousticSolver, UpwindFluxDissipatesMonotonically) {
  auto solver = make_solver(1, 4, FluxType::Upwind);
  // Non-smooth-ish content: a high mode dissipates visibly at low order.
  init_acoustic_plane_wave(solver, mesh::Axis::X, 2);
  double prev = solver.total_energy();
  for (int i = 0; i < 10; ++i) {
    solver.run(5);
    const double e = solver.total_energy();
    EXPECT_LE(e, prev * (1.0 + 1e-6));
    prev = e;
  }
  EXPECT_LT(prev, solver.total_energy() + 1.0);  // sanity: finite
}

TEST(AcousticSolver, ReflectiveWallKeepsEnergyBoundedAndReflects) {
  auto solver = make_solver(2, 4, FluxType::Upwind, Boundary::Reflective);
  init_acoustic_gaussian_pulse(solver, {0.5, 0.5, 0.5}, 0.12, 1.0);
  const double e0 = solver.total_energy();
  solver.run(60);
  const double e1 = solver.total_energy();
  EXPECT_LE(e1, e0 * 1.001);  // walls must not create energy
  EXPECT_GT(e1, 0.0);
}

TEST(AcousticSolver, HeterogeneousInterfaceRemainsStable) {
  StructuredMesh mesh(2, 1.0, Boundary::Periodic);
  MaterialField<AcousticMaterial> mats(mesh.num_elements(),
                                       {.kappa = 1.0, .rho = 1.0});
  // Right half is 4x stiffer (impedance contrast 2:1).
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    if (mesh.coords_of(e)[0] >= mesh.dim() / 2) {
      mats.set(e, {.kappa = 4.0, .rho = 1.0});
    }
  }
  AcousticSolver solver(mesh, std::move(mats),
                        {.n1d = 4, .flux = FluxType::Upwind, .cfl = 0.5});
  init_acoustic_gaussian_pulse(solver, {0.25, 0.5, 0.5}, 0.1, 1.0);
  const double e0 = solver.total_energy();
  solver.run(80);
  const double e1 = solver.total_energy();
  EXPECT_LE(e1, e0 * 1.001);
  EXPECT_TRUE(std::isfinite(e1));
}

TEST(AcousticSolver, PointSourceInjectsEnergy) {
  auto solver = make_solver(2, 4, FluxType::Upwind, Boundary::Reflective);
  PointSource src(solver, {0.5, 0.5, 0.5}, /*peak_frequency=*/4.0,
                  /*delay=*/0.25, /*amplitude=*/1.0);
  solver.set_source([&src](Field& rhs, double t) { src(rhs, t); });
  EXPECT_DOUBLE_EQ(solver.total_energy(), 0.0);
  solver.run(120);
  EXPECT_GT(solver.total_energy(), 0.0);
  EXPECT_TRUE(std::isfinite(solver.total_energy()));
}

TEST(AcousticSolver, RickerWaveletShape) {
  EXPECT_NEAR(ricker(0.25, 4.0, 0.25), 1.0, 1e-12);  // peak at delay
  EXPECT_LT(ricker(0.25 + 0.1, 4.0, 0.25), 1.0);
  EXPECT_NEAR(ricker(10.0, 4.0, 0.25), 0.0, 1e-12);  // decays to zero
}

TEST(AcousticSolver, StableDtScalesWithMeshAndOrder) {
  auto a = make_solver(1, 4, FluxType::Upwind);
  auto b = make_solver(2, 4, FluxType::Upwind);
  EXPECT_NEAR(a.stable_dt() / b.stable_dt(), 2.0, 1e-12);
  auto c = make_solver(1, 8, FluxType::Upwind);
  EXPECT_GT(a.stable_dt(), c.stable_dt());
}

TEST(AcousticSolver, RejectsNonPositiveDt) {
  auto solver = make_solver(1, 3, FluxType::Upwind);
  EXPECT_THROW(solver.step(0.0), PreconditionError);
  EXPECT_THROW(solver.step(-1.0), PreconditionError);
}

TEST(AcousticSolver, MaterialCountMustMatchMesh) {
  StructuredMesh mesh(1, 1.0, Boundary::Periodic);
  MaterialField<AcousticMaterial> mats(3, {});
  EXPECT_THROW(AcousticSolver(mesh, std::move(mats), {.n1d = 3}),
               PreconditionError);
}

}  // namespace
}  // namespace wavepim::dg
