// TraceConformance: pins the tracing contract the rest of the repo
// relies on — (1) at one worker thread the recorded "pim." event
// sequence of a simulation step is deterministic, identical across runs
// AND across all four execution tiers (the tiers share span names by
// design, so a trace diff is an execution diff); (2) disabled tracing
// allocates nothing and records nothing.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dg/fields.h"
#include "mapping/simulation.h"
#include "trace/export.h"
#include "trace/trace.h"

namespace wavepim::trace {
namespace {

using SeqEntry = std::pair<std::string, EventType>;

/// Runs one traced simulation step at 1 thread on the given tier (after
/// an untimed warm-up step that builds the cache/plan outside the
/// capture) and returns the "pim."-prefixed (name, type) sequence.
std::vector<SeqEntry> captured_step_sequence(mapping::ExecPath path) {
  const mapping::Problem problem{dg::ProblemKind::Acoustic, 1, 3};
  mapping::PimSimulation sim(problem, mapping::ExpansionMode::None,
                             pim::chip_512mb());
  sim.set_exec_path(path);
  sim.set_num_threads(1);
  dg::Field u(8, 4, 27);
  u.fill(0.5f);
  sim.load_state(u);
  sim.step(1.0e-3);  // warm-up: cache/plan construction stays untraced

  Collector::instance().reset();
  set_enabled(true);
  sim.step(1.0e-3);
  set_enabled(false);

  std::vector<SeqEntry> sequence;
  for (const Event& e : Collector::instance().snapshot()) {
    const std::string name = e.name != nullptr ? e.name : "?";
    if (name.rfind("pim.", 0) == 0) {
      sequence.emplace_back(name, e.type);
    }
  }
  Collector::instance().reset();
  return sequence;
}

/// The pinned step sequence: what any execution tier must record.
std::vector<SeqEntry> expected_step_sequence() {
  std::vector<SeqEntry> seq;
  auto span = [&seq](const char* name, auto body) {
    seq.emplace_back(name, EventType::Begin);
    body();
    seq.emplace_back(name, EventType::End);
  };
  auto leaf = [&span](const char* name) {
    span(name, [] {});
  };
  span("pim.step", [&] {
    for (int stage = 0; stage < 5; ++stage) {
      span("pim.rk_stage", [&] {
        // Resident periodic 2-slice schedule: one load (volume), six
        // compute steps (Y- of slice 1, X, Z, Y+ of slice 0, then the
        // wrap pair Y+ of slice 1 / Y- of slice 0), one store
        // (integration), then settlement and the phase/network drains.
        leaf("pim.volume");
        for (int flux = 0; flux < 6; ++flux) {
          leaf("pim.flux");
        }
        leaf("pim.integration");
        leaf("pim.settle");
        leaf("pim.drain_phase");
        leaf("pim.drain_network");
        leaf("pim.drain_phase");
        leaf("pim.drain_network");
        leaf("pim.drain_phase");
      });
    }
  });
  return seq;
}

TEST(TraceConformance, StepSequenceMatchesPinnedGolden) {
  EXPECT_EQ(captured_step_sequence(mapping::ExecPath::Emit),
            expected_step_sequence());
}

TEST(TraceConformance, StepSequenceIdenticalAcrossTiers) {
  const auto emit = captured_step_sequence(mapping::ExecPath::Emit);
  const auto replay = captured_step_sequence(mapping::ExecPath::Replay);
  const auto compiled = captured_step_sequence(mapping::ExecPath::Compiled);
  const auto word = captured_step_sequence(mapping::ExecPath::Word);
  EXPECT_EQ(emit, replay);
  EXPECT_EQ(emit, compiled);
  EXPECT_EQ(emit, word);
}

TEST(TraceConformance, StepSequenceIdenticalAcrossRuns) {
  const auto first = captured_step_sequence(mapping::ExecPath::Compiled);
  const auto second = captured_step_sequence(mapping::ExecPath::Compiled);
  EXPECT_EQ(first, second);
}

TEST(TraceConformance, DisabledModeAllocatesNothing) {
  Collector::instance().reset();
  ASSERT_FALSE(enabled());
  const std::uint64_t buffers_before = TraceBuffer::total_allocated();

  // A fresh thread proves lazy registration: with tracing disabled, its
  // record sites must never materialise a ring buffer.
  std::thread recorder([] {
    for (int i = 0; i < 1000; ++i) {
      Span span("conf.disabled", static_cast<double>(i));
      instant("conf.instant");
      counter("conf.counter", 1.0);
    }
  });
  recorder.join();

  EXPECT_EQ(TraceBuffer::total_allocated(), buffers_before);
  EXPECT_EQ(Collector::instance().num_events(), 0u);
}

TEST(TraceConformance, DisabledStepRecordsNothing) {
  Collector::instance().reset();
  ASSERT_FALSE(enabled());
  const mapping::Problem problem{dg::ProblemKind::Acoustic, 1, 3};
  mapping::PimSimulation sim(problem, mapping::ExpansionMode::None,
                             pim::chip_512mb());
  sim.set_num_threads(1);
  dg::Field u(8, 4, 27);
  u.fill(0.5f);
  sim.load_state(u);
  sim.step(1.0e-3);
  EXPECT_EQ(Collector::instance().num_events(), 0u);
}

}  // namespace
}  // namespace wavepim::trace
