#include "trace/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/json.h"
#include "trace/clock.h"
#include "trace/export.h"

namespace wavepim::trace {
namespace {

/// Enables tracing on a clean collector for the test's lifetime.
class ScopedTracing {
 public:
  ScopedTracing() {
    Collector::instance().reset();
    set_enabled(true);
  }
  ~ScopedTracing() {
    set_enabled(false);
    Collector::instance().reset();
  }
};

TEST(TraceClock, IsMonotonic) {
  const std::uint64_t a = now_ns();
  const std::uint64_t b = now_ns();
  EXPECT_GE(b, a);
}

TEST(TraceClock, StopwatchMeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const std::uint64_t first = watch.elapsed_ns();
  EXPECT_GE(first, 1'000'000u);  // at least 1 ms registered
  watch.restart();
  EXPECT_LT(watch.elapsed_ns(), first);
  EXPECT_GT(watch.elapsed_seconds(), 0.0);
}

TEST(Trace, DisabledByDefaultRecordsNothing) {
  Collector::instance().reset();
  ASSERT_FALSE(enabled());
  {
    Span span("test.noop");
    instant("test.noop_instant");
    counter("test.noop_counter", 1.0);
  }
  EXPECT_EQ(Collector::instance().num_events(), 0u);
}

TEST(Trace, RecordsSpanPairsInOrder) {
  ScopedTracing tracing;
  {
    Span outer("test.outer");
    { Span inner("test.inner", 7.0); }
  }
  const auto events = Collector::instance().snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(std::string(events[0].name), "test.outer");
  EXPECT_EQ(events[0].type, EventType::Begin);
  EXPECT_EQ(std::string(events[1].name), "test.inner");
  EXPECT_EQ(events[1].type, EventType::Begin);
  EXPECT_DOUBLE_EQ(events[1].value, 7.0);
  EXPECT_EQ(std::string(events[2].name), "test.inner");
  EXPECT_EQ(events[2].type, EventType::End);
  EXPECT_EQ(std::string(events[3].name), "test.outer");
  EXPECT_EQ(events[3].type, EventType::End);
  // Sequence numbers are strictly increasing and timestamps monotone.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GT(events[i].seq, events[i - 1].seq);
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST(Trace, ResetRestartsSequenceNumbers) {
  ScopedTracing tracing;
  instant("test.first");
  Collector::instance().reset();
  instant("test.second");
  const auto events = Collector::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), "test.second");
  EXPECT_EQ(events[0].seq, 0u);
}

TEST(Trace, RingWrapKeepsNewestAndCountsDropped) {
  Collector::instance().reset();
  Collector::instance().set_ring_capacity(8);
  set_enabled(true);
  for (int i = 0; i < 20; ++i) {
    instant("test.tick", static_cast<double>(i));
  }
  set_enabled(false);
  const auto events = Collector::instance().snapshot();
  // This thread's ring existed before this test (earlier tests recorded
  // from it), so it may still have the default capacity; either way the
  // ring retains the newest events and the drop count is consistent.
  ASSERT_FALSE(events.empty());
  EXPECT_DOUBLE_EQ(events.back().value, 19.0);
  EXPECT_EQ(events.size() + Collector::instance().dropped(), 20u);
  Collector::instance().set_ring_capacity(1 << 16);
  Collector::instance().reset();
}

TEST(Trace, WrappedRingDropsOldestFirst) {
  // A fresh thread gets a fresh ring with the small capacity.
  Collector::instance().reset();
  Collector::instance().set_ring_capacity(4);
  set_enabled(true);
  std::thread recorder([] {
    for (int i = 0; i < 10; ++i) {
      instant("test.wrap", static_cast<double>(i));
    }
  });
  recorder.join();
  set_enabled(false);
  const auto events = Collector::instance().snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events[0].value, 6.0);
  EXPECT_DOUBLE_EQ(events[3].value, 9.0);
  EXPECT_EQ(Collector::instance().dropped(), 6u);
  Collector::instance().set_ring_capacity(1 << 16);
  Collector::instance().reset();
}

TEST(Trace, MergesThreadsBySequence) {
  ScopedTracing tracing;
  instant("test.main");
  std::thread other([] { instant("test.other"); });
  other.join();
  instant("test.main_again");
  const auto events = Collector::instance().snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(std::string(events[0].name), "test.main");
  EXPECT_EQ(std::string(events[1].name), "test.other");
  EXPECT_EQ(std::string(events[2].name), "test.main_again");
  EXPECT_NE(events[0].tid, events[1].tid);
  EXPECT_EQ(Collector::instance().num_threads() >= 2, true);
}

TEST(TraceExport, SummarizeAggregatesNestedSpans) {
  ScopedTracing tracing;
  for (int i = 0; i < 3; ++i) {
    Span outer("test.outer");
    Span inner("test.inner");
  }
  counter("test.count", 2.0);
  counter("test.count", 3.0);
  const Summary summary = summarize();
  ASSERT_EQ(summary.spans.size(), 2u);
  for (const auto& s : summary.spans) {
    EXPECT_EQ(s.count, 3u);
    EXPECT_GE(s.max_ns, s.min_ns);
    EXPECT_GE(s.total_ns, s.max_ns);
  }
  ASSERT_EQ(summary.counters.size(), 1u);
  EXPECT_EQ(summary.counters[0].name, "test.count");
  EXPECT_EQ(summary.counters[0].samples, 2u);
  EXPECT_DOUBLE_EQ(summary.counters[0].sum, 5.0);
  EXPECT_DOUBLE_EQ(summary.counters[0].last, 3.0);
}

TEST(TraceExport, ChromeJsonIsValidAndComplete) {
  ScopedTracing tracing;
  {
    Span span("test.span", 3.0);
    instant("test.marker");
    counter("test.gauge", 42.0);
  }
  const std::string text = chrome_trace_json();
  const auto doc = json::parse(text);
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  // Metadata + B + i + C + E.
  ASSERT_EQ(events->as_array().size(), 5u);
  const auto& begin = events->as_array()[1];
  EXPECT_EQ(begin.find("name")->as_string(), "test.span");
  EXPECT_EQ(begin.find("ph")->as_string(), "B");
  EXPECT_EQ(begin.find("cat")->as_string(), "test");
  EXPECT_DOUBLE_EQ(begin.find("args")->find("v")->as_number(), 3.0);
  const auto& gauge = events->as_array()[3];
  EXPECT_EQ(gauge.find("ph")->as_string(), "C");
  EXPECT_DOUBLE_EQ(gauge.find("args")->find("value")->as_number(), 42.0);
}

TEST(TraceExport, EscapesHostileNames) {
  ScopedTracing tracing;
  static const char kName[] = "test.\"quoted\\name\"\n";
  instant(kName);
  const auto doc = json::parse(chrome_trace_json());
  const auto& event = doc.find("traceEvents")->as_array()[1];
  EXPECT_EQ(event.find("name")->as_string(), kName);
}

TEST(TraceExport, SummarizeToleratesTruncatedBegin) {
  // An End without its Begin (lost to a ring overwrite) must not corrupt
  // the aggregation.
  std::vector<Event> events;
  events.push_back({100, 0, "test.lost", 0.0, EventType::End, 1});
  events.push_back({200, 1, "test.whole", 0.0, EventType::Begin, 1});
  events.push_back({350, 2, "test.whole", 0.0, EventType::End, 1});
  const Summary summary = summarize(events);
  ASSERT_EQ(summary.spans.size(), 1u);
  EXPECT_EQ(summary.spans[0].name, "test.whole");
  EXPECT_EQ(summary.spans[0].total_ns, 150u);
}

TEST(TraceExport, MacroCreatesScopedSpan) {
  ScopedTracing tracing;
  {
    WAVEPIM_TRACE_SPAN("test.macro");
    WAVEPIM_TRACE_SPAN("test.macro_value", 4.0);
  }
  EXPECT_EQ(Collector::instance().num_events(), 4u);
}


TEST(TraceExport, SummaryPinsLatencyPercentiles) {
  // Synthetic sequential spans with exact durations: nearest-rank
  // percentiles over {100, 200, 300, 400} ns must hit 200 (p50) and
  // 400 (p99) exactly.
  std::vector<Event> events;
  std::uint64_t ts = 1000;
  std::uint64_t seq = 0;
  for (const std::uint64_t d : {300u, 100u, 400u, 200u}) {
    events.push_back({ts, seq++, "test.span", 0.0, EventType::Begin, 0});
    events.push_back({ts + d, seq++, "test.span", 0.0, EventType::End, 0});
    ts += d + 10;
  }
  const Summary summary = summarize(events);
  ASSERT_EQ(summary.spans.size(), 1u);
  const SpanStats& s = summary.spans[0];
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.min_ns, 100u);
  EXPECT_EQ(s.max_ns, 400u);
  EXPECT_EQ(s.p50_ns, 200u);
  EXPECT_EQ(s.p99_ns, 400u);
}

TEST(TraceExport, SingleSpanPercentilesEqualItsDuration) {
  std::vector<Event> events;
  events.push_back({500, 0, "test.solo", 0.0, EventType::Begin, 0});
  events.push_back({750, 1, "test.solo", 0.0, EventType::End, 0});
  const Summary summary = summarize(events);
  ASSERT_EQ(summary.spans.size(), 1u);
  EXPECT_EQ(summary.spans[0].p50_ns, 250u);
  EXPECT_EQ(summary.spans[0].p99_ns, 250u);
}

}  // namespace
}  // namespace wavepim::trace
