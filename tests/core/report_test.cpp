#include "core/report.h"

#include <gtest/gtest.h>

namespace wavepim::core {
namespace {

std::vector<ComparisonRow> tiny_grid(double t_pim) {
  ComparisonRow base;
  base.platform = "Unfused-GTX 1080Ti";
  base.normalized_time = 1.0;
  base.normalized_energy = 1.0;
  ComparisonRow pim;
  pim.platform = "PIM-2GB-28nm";
  pim.normalized_time = t_pim;
  pim.normalized_energy = t_pim / 2;
  pim.is_pim = true;
  return {base, pim};
}

TEST(Report, CsvLayout) {
  const std::vector<std::string> names = {"A", "B"};
  const std::vector<std::vector<ComparisonRow>> grids = {tiny_grid(0.5),
                                                         tiny_grid(0.25)};
  const std::string csv = to_csv(names, grids, /*energy=*/false);
  EXPECT_EQ(csv,
            "platform,A,B\n"
            "Unfused-GTX 1080Ti,1,1\n"
            "PIM-2GB-28nm,0.5,0.25\n");
  const std::string energy_csv = to_csv(names, grids, /*energy=*/true);
  EXPECT_NE(energy_csv.find("0.125"), std::string::npos);
}

TEST(Report, MarkdownLayout) {
  const std::vector<std::string> names = {"A"};
  const std::vector<std::vector<ComparisonRow>> grids = {tiny_grid(0.5)};
  const std::string md = to_markdown(names, grids, false);
  EXPECT_NE(md.find("| platform | A |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| PIM-2GB-28nm | 0.5 |"), std::string::npos);
}

TEST(Report, RejectsRaggedGrids) {
  const std::vector<std::string> names = {"A", "B"};
  std::vector<std::vector<ComparisonRow>> grids = {tiny_grid(0.5)};
  EXPECT_THROW((void)to_csv(names, grids, false), PreconditionError);
  grids.push_back({tiny_grid(0.5)[0]});  // different platform count
  EXPECT_THROW((void)to_markdown(names, grids, false), PreconditionError);
}

TEST(Report, EnergyBreakdownFractionsSumToOne) {
  const auto b = breakdown_energy({dg::ProblemKind::Acoustic, 4, 8},
                                  pim::chip_2gb());
  const double sum = b.static_fraction + b.dynamic_fraction +
                     b.network_fraction + b.host_fraction + b.hbm_fraction;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(b.total.value(), 0.0);
  EXPECT_EQ(b.platform, "PIM-2GB");
}

TEST(Report, StaticShareGrowsWithChipSize) {
  const auto small = breakdown_energy({dg::ProblemKind::Acoustic, 4, 8},
                                      pim::chip_512mb());
  const auto large = breakdown_energy({dg::ProblemKind::Acoustic, 4, 8},
                                      pim::chip_16gb());
  EXPECT_GT(large.static_fraction, small.static_fraction);
}

}  // namespace
}  // namespace wavepim::core
