#include "core/wavepim.h"

#include <gtest/gtest.h>

namespace wavepim::core {
namespace {

using dg::ProblemKind;

TEST(System, ProjectPimAppliesProcessScaling) {
  const mapping::Problem problem{ProblemKind::Acoustic, 4, 8};
  PimOptions node28;
  PimOptions node12;
  node12.scaling = pim::ProcessScaling::node_12nm();
  const auto a = System::project_pim(problem, pim::chip_2gb(), 16, node28);
  const auto b = System::project_pim(problem, pim::chip_2gb(), 16, node12);
  EXPECT_NEAR(a.total_time.value() / b.total_time.value(), 3.81, 1e-9);
  EXPECT_NEAR(a.total_energy.value() / b.total_energy.value(), 2.0, 1e-9);
  EXPECT_NE(a.platform, b.platform);
}

TEST(System, CompareAllHasFullGrid) {
  const mapping::Problem problem{ProblemKind::Acoustic, 4, 8};
  const auto rows = System::compare_all(problem, 8);
  // 3 unfused + 3 fused + 4 PIM x 2 process nodes = 14 rows.
  ASSERT_EQ(rows.size(), 14u);
  EXPECT_EQ(rows[0].platform, "Unfused-GTX 1080Ti");
  EXPECT_DOUBLE_EQ(rows[0].speedup, 1.0);
  EXPECT_DOUBLE_EQ(rows[0].normalized_time, 1.0);
  int pim_rows = 0;
  for (const auto& row : rows) {
    EXPECT_GT(row.total_time.value(), 0.0);
    EXPECT_GT(row.total_energy.value(), 0.0);
    if (row.is_pim) {
      ++pim_rows;
      EXPECT_GT(row.step_time_peak_method.value(), 0.0);
    }
  }
  EXPECT_EQ(pim_rows, 8);
}

TEST(System, PimBeatsBaselineGpuOnLevel4) {
  // The core claim: the PIM rows (2 GB and up) outperform the unfused
  // GTX 1080Ti baseline on the level-4 benchmarks.
  for (ProblemKind kind : {ProblemKind::Acoustic, ProblemKind::ElasticCentral,
                           ProblemKind::ElasticRiemann}) {
    const auto rows = System::compare_all({kind, 4, 8}, 4);
    for (const auto& row : rows) {
      if (row.is_pim && row.platform.find("512MB") == std::string::npos) {
        EXPECT_GT(row.speedup, 1.0) << row.platform;
      }
    }
  }
}

TEST(System, PimSpeedupOrderedByCapacityOnLevel5) {
  const auto rows =
      System::compare_all({ProblemKind::Acoustic, 5, 8}, 4);
  double prev = 0.0;
  for (const auto& row : rows) {
    if (row.is_pim && row.platform.find("28nm") != std::string::npos) {
      EXPECT_GE(row.speedup, prev) << row.platform;
      prev = row.speedup;
    }
  }
  EXPECT_GT(prev, 1.0);
}

TEST(System, TwelveNmRowsFasterThanTwentyEight) {
  const auto rows = System::compare_all({ProblemKind::Acoustic, 4, 8}, 4);
  double t28 = 0.0;
  double t12 = 0.0;
  for (const auto& row : rows) {
    if (row.platform == "PIM-2GB-28nm") {
      t28 = row.total_time.value();
    }
    if (row.platform == "PIM-2GB-12nm") {
      t12 = row.total_time.value();
    }
  }
  EXPECT_GT(t28, 0.0);
  EXPECT_NEAR(t28 / t12, 3.81, 1e-6);
}

TEST(System, SummaryAggregatesAcrossBenchmarks) {
  std::vector<std::vector<ComparisonRow>> grids;
  for (ProblemKind kind : {ProblemKind::Acoustic,
                           ProblemKind::ElasticCentral}) {
    grids.push_back(System::compare_all({kind, 4, 8}, 4));
  }
  const auto summary = System::summarize_pim(grids, "PIM-2GB-28nm");
  EXPECT_GT(summary.mean_speedup, 1.0);
  EXPECT_GT(summary.mean_energy_saving, 1.0);
  EXPECT_THROW((void)System::summarize_pim(grids, "PIM-bogus"),
               PreconditionError);
}

TEST(System, EnergySavingPeaksForSmallestSufficientChip) {
  // §7.4: a larger chip wastes static power on a small problem, so the
  // 512 MB chip (which holds Acoustic_4 exactly) saves the most energy.
  const auto rows = System::compare_all({ProblemKind::Acoustic, 4, 8}, 4);
  double saving_512 = 0.0;
  double saving_16g = 0.0;
  for (const auto& row : rows) {
    if (row.platform == "PIM-512MB-28nm") {
      saving_512 = row.energy_saving;
    }
    if (row.platform == "PIM-16GB-28nm") {
      saving_16g = row.energy_saving;
    }
  }
  EXPECT_GT(saving_512, saving_16g);
}

}  // namespace
}  // namespace wavepim::core
