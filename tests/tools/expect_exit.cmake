# ctest helper: run CMD (a shell-style string) and fail unless the exit
# code equals EXPECTED. Used to pin the CLI exit-code contracts of
# bench_compare and paper_eval (0 ok, 1 regression/bad input, 2 usage),
# which gtest cannot exercise portably.
if(NOT DEFINED CMD OR NOT DEFINED EXPECTED)
  message(FATAL_ERROR "expect_exit.cmake needs -DCMD=... and -DEXPECTED=...")
endif()

separate_arguments(cmd_list UNIX_COMMAND "${CMD}")
execute_process(COMMAND ${cmd_list}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)

if(NOT rc STREQUAL "${EXPECTED}")
  message(FATAL_ERROR
    "command: ${CMD}\nexpected exit ${EXPECTED}, got: ${rc}\n"
    "stdout:\n${out}\nstderr:\n${err}")
endif()
