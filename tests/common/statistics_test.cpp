#include "common/statistics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.h"

namespace wavepim {
namespace {

TEST(Statistics, Mean) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Statistics, Geomean) {
  const std::vector<double> xs = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean(std::vector<double>{}), 0.0);
}

TEST(Statistics, GeomeanRejectsNonPositive) {
  const std::vector<double> xs = {1.0, -2.0};
  EXPECT_THROW((void)geomean(xs), PreconditionError);
}

TEST(Statistics, MaxAbs) {
  const std::vector<double> xs = {-5.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(max_abs(xs), 5.0);
}

TEST(Statistics, Rms) {
  const std::vector<double> xs = {3.0, 4.0};
  EXPECT_NEAR(rms(xs), std::sqrt(12.5), 1e-12);
}

TEST(Statistics, RelativeLinfError) {
  const std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const std::vector<float> b = {1.0f, 2.0f, 4.0f};
  EXPECT_NEAR(relative_linf_error(a, b), 0.25, 1e-12);
}

TEST(Statistics, RelativeLinfErrorSizeMismatch) {
  const std::vector<float> a = {1.0f};
  const std::vector<float> b = {1.0f, 2.0f};
  EXPECT_THROW((void)relative_linf_error(a, b), PreconditionError);
}

TEST(Statistics, RelativeLinfErrorZeroReference) {
  const std::vector<float> a = {1e-31f};
  const std::vector<float> b = {0.0f};
  // Guarded by the 1e-30 floor rather than dividing by zero.
  EXPECT_LT(relative_linf_error(a, b), 1.0);
}


TEST(Statistics, PercentileNearestRank) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 99.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  // Rank 0 clamps to the smallest sample.
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
}

TEST(Statistics, PercentileEdgeCases) {
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  const std::vector<double> one = {7.5};
  EXPECT_DOUBLE_EQ(percentile(one, 1.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(one, 99.0), 7.5);
  // Out-of-range p clamps rather than indexing out of bounds.
  EXPECT_DOUBLE_EQ(percentile(one, -5.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(one, 200.0), 7.5);
}

}  // namespace
}  // namespace wavepim
