#include "common/units.h"

#include <gtest/gtest.h>

namespace wavepim {
namespace {

TEST(Units, QuantityArithmetic) {
  const Seconds a = seconds(2.0);
  const Seconds b = milliseconds(500.0);
  EXPECT_DOUBLE_EQ((a + b).value(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).value(), 1.5);
  EXPECT_DOUBLE_EQ((a * 3.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((3.0 * a).value(), 6.0);
  EXPECT_DOUBLE_EQ((a / 4.0).value(), 0.5);
  EXPECT_DOUBLE_EQ(a / b, 4.0);
}

TEST(Units, CompoundAssignment) {
  Seconds t = seconds(1.0);
  t += seconds(2.0);
  t -= milliseconds(500.0);
  t *= 2.0;
  EXPECT_DOUBLE_EQ(t.value(), 5.0);
}

TEST(Units, Comparison) {
  EXPECT_LT(microseconds(1.0), milliseconds(1.0));
  EXPECT_GT(joules(1.0), millijoules(999.0));
  EXPECT_NEAR(nanoseconds(1000.0).value(), microseconds(1.0).value(), 1e-18);
}

TEST(Units, PowerConversions) {
  EXPECT_DOUBLE_EQ(watts(joules(10.0), seconds(2.0)), 5.0);
  EXPECT_DOUBLE_EQ(energy_at(5.0, seconds(2.0)).value(), 10.0);
}

TEST(Units, ByteHelpers) {
  EXPECT_EQ(kibibytes(1), 1024u);
  EXPECT_EQ(mebibytes(1), 1024u * 1024u);
  EXPECT_EQ(gibibytes(2), 2ull * 1024 * 1024 * 1024);
}

TEST(Units, TimeFormatting) {
  EXPECT_EQ(format_time(microseconds(3.21)), "3.21 us");
  EXPECT_EQ(format_time(seconds(1.5)), "1.5 s");
  EXPECT_EQ(format_time(nanoseconds(12.0)), "12 ns");
  EXPECT_EQ(format_time(seconds(0.0)), "0 s");
}

TEST(Units, EnergyFormatting) {
  EXPECT_EQ(format_energy(millijoules(12.7)), "12.7 mJ");
  EXPECT_EQ(format_energy(joules(2500.0)), "2.5 kJ");
}

TEST(Units, BytesFormatting) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(kibibytes(2)), "2 KiB");
  EXPECT_EQ(format_bytes(mebibytes(32)), "32 MiB");
  EXPECT_EQ(format_bytes(gibibytes(2)), "2 GiB");
}

}  // namespace
}  // namespace wavepim
