#include "common/parallel.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace wavepim {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(counts.size(),
                    [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ThreadPool, HandlesZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  pool.parallel_for(10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  // Inline execution preserves order.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ThreadPool, SmallNRunsInline) {
  ThreadPool pool(8);
  std::vector<int> touched(3, 0);
  pool.parallel_for(3, [&](std::size_t i) { touched[i] = 1; });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 3);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(100, [&](std::size_t) { sum.fetch_add(1); });
    ASSERT_EQ(sum.load(), 100);
  }
}

TEST(ThreadPool, GlobalPoolWorks) {
  std::atomic<std::size_t> sum{0};
  parallel_for(256, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 255u * 256u / 2);
}

TEST(ThreadPool, SingleIterationRunsInlineOnAnyPool) {
  ThreadPool pool(8);
  int runs = 0;
  std::size_t seen = 99;
  pool.parallel_for(1, [&](std::size_t i) {
    ++runs;
    seen = i;
  });
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(seen, 0u);
}

TEST(ThreadPool, FewerIterationsThanWorkers) {
  ThreadPool pool(16);
  // n < workers (and below the 2*workers inline threshold): every index
  // must still run exactly once.
  std::vector<int> counts(5, 0);
  pool.parallel_for(counts.size(), [&](std::size_t i) { ++counts[i]; });
  for (int c : counts) {
    EXPECT_EQ(c, 1);
  }
}

TEST(ThreadPool, DisjointSliceWritesNeedNoAtomics) {
  // The simulator's usage pattern: each iteration owns a disjoint slice of
  // a shared buffer, so plain (non-atomic) writes must be race-free. Under
  // TSAN this test is the canary for chunking bugs that alias slices.
  ThreadPool pool(4);
  constexpr std::size_t kSlices = 64;
  constexpr std::size_t kSliceLen = 128;
  std::vector<std::uint32_t> data(kSlices * kSliceLen, 0);
  pool.parallel_for(kSlices, [&](std::size_t s) {
    for (std::size_t j = 0; j < kSliceLen; ++j) {
      data[s * kSliceLen + j] = static_cast<std::uint32_t>(s + 1);
    }
  });
  for (std::size_t s = 0; s < kSlices; ++s) {
    for (std::size_t j = 0; j < kSliceLen; ++j) {
      ASSERT_EQ(data[s * kSliceLen + j], s + 1);
    }
  }
}

TEST(ThreadPool, GlobalFirstUseIsThreadSafe) {
  // Hammer global() from many threads at once; the magic static must
  // construct exactly one pool and every caller must see the same object.
  constexpr int kCallers = 16;
  std::vector<ThreadPool*> seen(kCallers, nullptr);
  {
    std::vector<std::thread> callers;
    callers.reserve(kCallers);
    for (int i = 0; i < kCallers; ++i) {
      callers.emplace_back([&, i] { seen[i] = &ThreadPool::global(); });
    }
    for (auto& t : callers) {
      t.join();
    }
  }
  for (int i = 1; i < kCallers; ++i) {
    EXPECT_EQ(seen[i], seen[0]);
  }
  EXPECT_GE(seen[0]->size(), 1u);
}

TEST(ThreadPool, ParsesThreadCountValues) {
  EXPECT_EQ(ThreadPool::parse_thread_count(nullptr), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count(""), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("0"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("8"), 8u);
  EXPECT_EQ(ThreadPool::parse_thread_count("1"), 1u);
  EXPECT_EQ(ThreadPool::parse_thread_count("not-a-number"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("4x"), 0u);
  // Negative and absurd counts must not wrap into huge pools.
  EXPECT_EQ(ThreadPool::parse_thread_count("-1"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count("18446744073709551615"), 0u);
  EXPECT_EQ(ThreadPool::parse_thread_count(" 4"), 0u);
}

TEST(ThreadPool, SetGlobalThreadsAfterCreationThrows) {
  (void)ThreadPool::global();  // ensure the pool exists
  EXPECT_THROW(ThreadPool::set_global_threads(2), PreconditionError);
}

TEST(ThreadPool, PropagatesExceptionFromWorker) {
  ThreadPool pool(4);
  // 1000 iterations across 4 workers is far beyond the inline threshold,
  // so the throw happens on a worker thread, not the caller.
  EXPECT_THROW(pool.parallel_for(1000,
                                 [](std::size_t i) {
                                   if (i == 617) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, PropagatesExceptionInline) {
  ThreadPool pool(1);  // single worker -> the inline path
  EXPECT_THROW(pool.parallel_for(
                   10, [](std::size_t) { throw std::logic_error("inline"); }),
               std::logic_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   1000, [](std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  // The pool must survive a throwing loop: workers keep running and the
  // next loop completes every iteration.
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(counts.size(),
                    [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ThreadPool, ExceptionMessageSurvivesPropagation) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(1000, [](std::size_t i) {
      if (i == 0) {
        throw std::runtime_error("first chunk failed");
      }
    });
    FAIL() << "parallel_for swallowed the exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first chunk failed");
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  // A nested fan-out from inside a worker must run inline (fanning out
  // again could deadlock the pool) and still execute every inner
  // iteration exactly once.
  constexpr std::size_t kOuter = 64;
  constexpr std::size_t kInner = 32;
  std::vector<std::atomic<int>> counts(kOuter * kInner);
  pool.parallel_for(kOuter, [&](std::size_t o) {
    pool.parallel_for(kInner, [&](std::size_t i) {
      counts[o * kInner + i].fetch_add(1);
    });
  });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ThreadPool, NestedAcrossDistinctPoolsRunsInline) {
  ThreadPool outer(4);
  ThreadPool inner(4);
  // The reentrancy guard is per-thread, not per-pool: a worker of any
  // pool never fans out again, even into a different pool.
  std::vector<std::atomic<int>> counts(64 * 32);
  outer.parallel_for(64, [&](std::size_t o) {
    inner.parallel_for(32, [&](std::size_t i) {
      counts[o * 32 + i].fetch_add(1);
    });
  });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ThreadPool, NestedExceptionPropagatesToOuterCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t o) {
                                   pool.parallel_for(32, [&](std::size_t i) {
                                     if (o == 63 && i == 31) {
                                       throw std::runtime_error("nested");
                                     }
                                   });
                                 }),
               std::runtime_error);
}

}  // namespace
}  // namespace wavepim
