#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace wavepim {
namespace {

TEST(ThreadPool, RunsEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.parallel_for(counts.size(),
                    [&](std::size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ThreadPool, HandlesZeroIterations) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> order;
  pool.parallel_for(10, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  // Inline execution preserves order.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(ThreadPool, SmallNRunsInline) {
  ThreadPool pool(8);
  std::vector<int> touched(3, 0);
  pool.parallel_for(3, [&](std::size_t i) { touched[i] = 1; });
  EXPECT_EQ(std::accumulate(touched.begin(), touched.end(), 0), 3);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    pool.parallel_for(100, [&](std::size_t) { sum.fetch_add(1); });
    ASSERT_EQ(sum.load(), 100);
  }
}

TEST(ThreadPool, GlobalPoolWorks) {
  std::atomic<std::size_t> sum{0};
  parallel_for(256, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 255u * 256u / 2);
}

}  // namespace
}  // namespace wavepim
