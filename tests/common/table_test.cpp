#include "common/table.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wavepim {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 12345 |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TextTable, RejectsArityMismatch) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(3.14159, 3), "3.14");
  EXPECT_EQ(TextTable::ratio(41.98), "41.98x");
  EXPECT_EQ(TextTable::num(1234567.0, 4), "1.235e+06");
}

}  // namespace
}  // namespace wavepim
