#include "common/json.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wavepim {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_DOUBLE_EQ(json::parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructure) {
  const auto doc = json::parse(
      R"({"traceEvents":[{"name":"pim.step","ts":1.5},{"name":"dg.step"}],)"
      R"("n":3})");
  ASSERT_TRUE(doc.is_object());
  const json::Value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 2u);
  EXPECT_EQ(events->as_array()[0].find("name")->as_string(), "pim.step");
  EXPECT_DOUBLE_EQ(events->as_array()[0].find("ts")->as_number(), 1.5);
  EXPECT_EQ(events->as_array()[1].find("ts"), nullptr);
  EXPECT_DOUBLE_EQ(doc.find("n")->as_number(), 3.0);
}

TEST(Json, ParsesStringEscapes) {
  EXPECT_EQ(json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  // \u0041 = 'A'; surrogate pair U+1F600 encodes to 4 UTF-8 bytes.
  EXPECT_EQ(json::parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(json::parse(R"("\uD83D\uDE00")").as_string(), "\xF0\x9F\x98\x80");
}

TEST(Json, SkipsWhitespaceEverywhere) {
  const auto doc = json::parse("  { \"a\" : [ 1 , 2 ] }  ");
  EXPECT_EQ(doc.find("a")->as_array().size(), 2u);
}

TEST(Json, EmptyContainers) {
  EXPECT_TRUE(json::parse("[]").as_array().empty());
  EXPECT_TRUE(json::parse("{}").as_object().empty());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW((void)json::parse(""), Error);
  EXPECT_THROW((void)json::parse("{"), Error);
  EXPECT_THROW((void)json::parse("[1,]"), Error);
  EXPECT_THROW((void)json::parse("{\"a\":}"), Error);
  EXPECT_THROW((void)json::parse("\"unterminated"), Error);
  EXPECT_THROW((void)json::parse("1 2"), Error);  // trailing junk
  EXPECT_THROW((void)json::parse("nul"), Error);
  EXPECT_THROW((void)json::parse("\"\\q\""), Error);  // bad escape
}

TEST(Json, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_THROW((void)json::parse(deep), Error);
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const auto doc = json::parse("[1]");
  EXPECT_THROW((void)doc.as_object(), Error);
  EXPECT_THROW((void)doc.as_number(), Error);
  EXPECT_EQ(doc.find("x"), nullptr);  // find on a non-object is nullptr
}

TEST(JsonDump, ScalarsAndContainers) {
  EXPECT_EQ(json::dump(json::Value::make_null()), "null");
  EXPECT_EQ(json::dump(json::Value::make_bool(true)), "true");
  EXPECT_EQ(json::dump(json::Value::make_string("hi")), "\"hi\"");
  EXPECT_EQ(json::dump(json::Value::make_array({})), "[]");
  EXPECT_EQ(json::dump(json::Value::make_object({})), "{}");
  EXPECT_EQ(json::dump(json::parse(R"({"a":[1,2],"b":false})")),
            R"({"a":[1,2],"b":false})");
}

TEST(JsonDump, NumbersIntegralAndRoundTrip) {
  EXPECT_EQ(json::dump(json::Value::make_number(42.0)), "42");
  EXPECT_EQ(json::dump(json::Value::make_number(-3.0)), "-3");
  EXPECT_EQ(json::dump(json::Value::make_number(0.0)), "0");
  // Beyond 2^53 an integral double is not exactly representable — keep
  // the %.17g form rather than pretending to integer precision.
  EXPECT_NE(json::dump(json::Value::make_number(1e17)).find('e'),
            std::string::npos);
  // Non-integral values round-trip bit-exactly through parse.
  const double pi = 3.141592653589793;
  const auto text = json::dump(json::Value::make_number(pi));
  EXPECT_EQ(json::parse(text).as_number(), pi);
}

TEST(JsonDump, EscapesStrings) {
  EXPECT_EQ(json::dump(json::Value::make_string("a\"b\\c\nd")),
            R"("a\"b\\c\nd")");
  // Control characters below 0x20 must be \uXXXX-escaped.
  EXPECT_EQ(json::dump(json::Value::make_string(std::string(1, '\x01'))),
            "\"\\u0001\"");
}

TEST(JsonDump, PreservesObjectInsertionOrder) {
  const auto doc = json::Value::make_object({
      {"z", json::Value::make_number(1)},
      {"a", json::Value::make_number(2)},
  });
  EXPECT_EQ(json::dump(doc), R"({"z":1,"a":2})");
}

TEST(JsonDump, IndentedOutputReparses) {
  const auto doc = json::parse(R"({"cells":[{"id":"x","m":{"t":0.5}}]})");
  const auto pretty = json::dump(doc, 1);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  // Pretty-printing is cosmetic only: reparse + compact dump is stable.
  EXPECT_EQ(json::dump(json::parse(pretty)), json::dump(doc));
}

TEST(JsonDump, DumpParseIsAFixedPoint) {
  const char* text =
      R"({"schema":"wavepim-paper-eval/1","cells":[)"
      R"({"id":"a","metrics":{"t":0.0001220703125,"n":131072}}],"claims":[]})";
  const auto once = json::dump(json::parse(text));
  EXPECT_EQ(json::dump(json::parse(once)), once);
}

}  // namespace
}  // namespace wavepim
