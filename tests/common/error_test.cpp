#include "common/error.h"

#include <gtest/gtest.h>

namespace wavepim {
namespace {

TEST(Error, RequireThrowsWithContext) {
  try {
    WAVEPIM_REQUIRE(1 == 2, "numbers disagree");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("numbers disagree"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Error, AssertThrowsInvariantError) {
  EXPECT_THROW(WAVEPIM_ASSERT(false, "broken"), InvariantError);
}

TEST(Error, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(WAVEPIM_REQUIRE(true, "fine"));
  EXPECT_NO_THROW(WAVEPIM_ASSERT(true, "fine"));
}

TEST(Error, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw CapacityError("too big"), Error);
  EXPECT_THROW(throw PreconditionError("bad"), std::runtime_error);
}

}  // namespace
}  // namespace wavepim
