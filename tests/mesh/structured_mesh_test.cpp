#include "mesh/structured_mesh.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wavepim::mesh {
namespace {

TEST(StructuredMesh, SizesFollowRefinementLevel) {
  for (int level = 0; level <= 5; ++level) {
    StructuredMesh m(level, 1.0, Boundary::Periodic);
    EXPECT_EQ(m.dim(), 1u << level);
    EXPECT_EQ(m.num_elements(), 1u << (3 * level));
    EXPECT_DOUBLE_EQ(m.element_size(), 1.0 / (1u << level));
  }
}

TEST(StructuredMesh, RejectsBadArguments) {
  EXPECT_THROW(StructuredMesh(-1, 1.0, Boundary::Periodic),
               PreconditionError);
  EXPECT_THROW(StructuredMesh(2, 0.0, Boundary::Periodic), PreconditionError);
}

TEST(StructuredMesh, CoordRoundTrip) {
  StructuredMesh m(3, 2.0, Boundary::Periodic);
  for (ElementId e = 0; e < m.num_elements(); ++e) {
    const auto c = m.coords_of(e);
    EXPECT_EQ(m.element_at(c[0], c[1], c[2]), e);
  }
}

TEST(StructuredMesh, InteriorNeighbors) {
  StructuredMesh m(2, 1.0, Boundary::Reflective);
  const ElementId e = m.element_at(1, 2, 1);
  EXPECT_EQ(m.neighbor(e, Face::XMinus), m.element_at(0, 2, 1));
  EXPECT_EQ(m.neighbor(e, Face::XPlus), m.element_at(2, 2, 1));
  EXPECT_EQ(m.neighbor(e, Face::YMinus), m.element_at(1, 1, 1));
  EXPECT_EQ(m.neighbor(e, Face::YPlus), m.element_at(1, 3, 1));
  EXPECT_EQ(m.neighbor(e, Face::ZMinus), m.element_at(1, 2, 0));
  EXPECT_EQ(m.neighbor(e, Face::ZPlus), m.element_at(1, 2, 2));
}

TEST(StructuredMesh, ReflectiveBoundaryHasNoNeighbor) {
  StructuredMesh m(2, 1.0, Boundary::Reflective);
  const ElementId corner = m.element_at(0, 0, 0);
  EXPECT_FALSE(m.neighbor(corner, Face::XMinus).has_value());
  EXPECT_FALSE(m.neighbor(corner, Face::YMinus).has_value());
  EXPECT_FALSE(m.neighbor(corner, Face::ZMinus).has_value());
  EXPECT_TRUE(m.neighbor(corner, Face::XPlus).has_value());
}

TEST(StructuredMesh, PeriodicBoundaryWraps) {
  StructuredMesh m(2, 1.0, Boundary::Periodic);
  const ElementId corner = m.element_at(0, 0, 0);
  EXPECT_EQ(m.neighbor(corner, Face::XMinus), m.element_at(3, 0, 0));
  const ElementId far = m.element_at(3, 3, 3);
  EXPECT_EQ(m.neighbor(far, Face::ZPlus), m.element_at(3, 3, 0));
}

TEST(StructuredMesh, NeighborIsSymmetric) {
  StructuredMesh m(2, 1.0, Boundary::Periodic);
  for (ElementId e = 0; e < m.num_elements(); ++e) {
    for (Face f : kAllFaces) {
      const auto nb = m.neighbor(e, f);
      ASSERT_TRUE(nb.has_value());
      EXPECT_EQ(m.neighbor(*nb, opposite(f)), e);
    }
  }
}

TEST(StructuredMesh, OnBoundaryDetection) {
  StructuredMesh m(2, 1.0, Boundary::Periodic);
  EXPECT_TRUE(m.on_boundary(m.element_at(0, 1, 1), Face::XMinus));
  EXPECT_FALSE(m.on_boundary(m.element_at(1, 1, 1), Face::XMinus));
  EXPECT_TRUE(m.on_boundary(m.element_at(3, 1, 1), Face::XPlus));
}

TEST(StructuredMesh, ElementContainingPoints) {
  StructuredMesh m(2, 1.0, Boundary::Reflective);
  EXPECT_EQ(m.element_containing(0.1, 0.1, 0.1), m.element_at(0, 0, 0));
  EXPECT_EQ(m.element_containing(0.9, 0.9, 0.9), m.element_at(3, 3, 3));
  // Clamped outside the domain.
  EXPECT_EQ(m.element_containing(-1.0, 2.0, 0.5), m.element_at(0, 3, 2));
}

TEST(StructuredMesh, SliceDecomposition) {
  StructuredMesh m(3, 1.0, Boundary::Periodic);
  EXPECT_EQ(m.num_slices(), 8u);
  EXPECT_EQ(m.elements_per_slice(), 64u);
  std::vector<std::uint32_t> counts(m.num_slices(), 0);
  for (ElementId e = 0; e < m.num_elements(); ++e) {
    counts[m.slice_of(e)]++;
  }
  for (auto c : counts) {
    EXPECT_EQ(c, m.elements_per_slice());
  }
  // Y-neighbours live in adjacent slices; X/Z neighbours in the same slice.
  const ElementId e = m.element_at(2, 3, 4);
  EXPECT_EQ(m.slice_of(*m.neighbor(e, Face::YPlus)), 4u);
  EXPECT_EQ(m.slice_of(*m.neighbor(e, Face::XPlus)), 3u);
  EXPECT_EQ(m.slice_of(*m.neighbor(e, Face::ZPlus)), 3u);
}

TEST(StructuredMesh, CornerPositions) {
  StructuredMesh m(1, 2.0, Boundary::Periodic);
  const auto c = m.corner_of(m.element_at(1, 0, 1));
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 0.0);
  EXPECT_DOUBLE_EQ(c[2], 1.0);
}

}  // namespace
}  // namespace wavepim::mesh
