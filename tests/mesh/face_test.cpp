#include "mesh/face.h"

#include <gtest/gtest.h>

namespace wavepim::mesh {
namespace {

TEST(Face, AxisOfEachFace) {
  EXPECT_EQ(axis_of(Face::XMinus), Axis::X);
  EXPECT_EQ(axis_of(Face::XPlus), Axis::X);
  EXPECT_EQ(axis_of(Face::YMinus), Axis::Y);
  EXPECT_EQ(axis_of(Face::YPlus), Axis::Y);
  EXPECT_EQ(axis_of(Face::ZMinus), Axis::Z);
  EXPECT_EQ(axis_of(Face::ZPlus), Axis::Z);
}

TEST(Face, NormalSigns) {
  for (Face f : kAllFaces) {
    const int s = normal_sign(f);
    EXPECT_TRUE(s == -1 || s == 1);
  }
  EXPECT_EQ(normal_sign(Face::XMinus), -1);
  EXPECT_EQ(normal_sign(Face::ZPlus), 1);
}

TEST(Face, OppositeIsInvolutionOnSameAxis) {
  for (Face f : kAllFaces) {
    EXPECT_EQ(opposite(opposite(f)), f);
    EXPECT_EQ(axis_of(opposite(f)), axis_of(f));
    EXPECT_EQ(normal_sign(opposite(f)), -normal_sign(f));
  }
}

TEST(Face, MakeFaceRoundTrips) {
  for (Face f : kAllFaces) {
    EXPECT_EQ(make_face(axis_of(f), normal_sign(f)), f);
  }
}

TEST(Face, Names) {
  EXPECT_STREQ(to_string(Face::XMinus), "x-");
  EXPECT_STREQ(to_string(Face::YPlus), "y+");
  EXPECT_STREQ(to_string(Axis::Z), "z");
}

}  // namespace
}  // namespace wavepim::mesh
