#include "gpumodel/baseline.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace wavepim::gpumodel {
namespace {

using dg::ProblemKind;

mapping::Problem acoustic4() { return {ProblemKind::Acoustic, 4, 8}; }
mapping::Problem acoustic5() { return {ProblemKind::Acoustic, 5, 8}; }

TEST(GpuSpecs, Table2Values) {
  EXPECT_DOUBLE_EQ(gtx_1080ti().mem_bandwidth_bps, 484.0e9);
  EXPECT_DOUBLE_EQ(tesla_p100().mem_bandwidth_bps, 720.0e9);
  EXPECT_DOUBLE_EQ(tesla_v100().mem_bandwidth_bps, 900.0e9);
  EXPECT_EQ(tesla_v100().cuda_cores, 5120u);
  EXPECT_EQ(paper_gpus().size(), 3u);
}

TEST(GpuModel, StepTimeOrderedByBandwidth) {
  // All three GPUs are memory bound on these kernels (§3.1), so the step
  // time ordering follows bandwidth.
  const auto t1080 = estimate_gpu(acoustic4(), gtx_1080ti(),
                                  GpuImplementation::Unfused, 1);
  const auto p100 = estimate_gpu(acoustic4(), tesla_p100(),
                                 GpuImplementation::Unfused, 1);
  const auto v100 = estimate_gpu(acoustic4(), tesla_v100(),
                                 GpuImplementation::Unfused, 1);
  EXPECT_GT(t1080.step_time, p100.step_time);
  EXPECT_GT(p100.step_time, v100.step_time);
}

TEST(GpuModel, FusedIsFasterThanUnfused) {
  for (const auto& gpu : paper_gpus()) {
    const auto unfused =
        estimate_gpu(acoustic4(), gpu, GpuImplementation::Unfused, 1);
    const auto fused =
        estimate_gpu(acoustic4(), gpu, GpuImplementation::Fused, 1);
    EXPECT_LT(fused.step_time, unfused.step_time) << gpu.name;
    EXPECT_LT(fused.total_energy, unfused.total_energy) << gpu.name;
  }
}

TEST(GpuModel, TimeScalesWithProblemSize) {
  const auto l4 = estimate_gpu(acoustic4(), tesla_v100(),
                               GpuImplementation::Unfused, 1);
  const auto l5 = estimate_gpu(acoustic5(), tesla_v100(),
                               GpuImplementation::Unfused, 1);
  // 8x elements: near-8x time (launch overhead amortises).
  EXPECT_NEAR(l5.step_time.value() / l4.step_time.value(), 8.0, 0.5);
}

TEST(GpuModel, EnergyEqualsPowerTimesTime) {
  const auto est = estimate_gpu(acoustic4(), tesla_v100(),
                                GpuImplementation::Unfused, 100);
  const double implied_power =
      est.total_energy.value() / est.total_time.value();
  EXPECT_NEAR(implied_power, 0.9 * 300.0 + 150.0, 1.0);
}

TEST(GpuModel, RiemannIsSlowerThanCentral) {
  const mapping::Problem central{ProblemKind::ElasticCentral, 4, 8};
  const mapping::Problem riemann{ProblemKind::ElasticRiemann, 4, 8};
  const auto tc = estimate_gpu(central, tesla_v100(),
                               GpuImplementation::Unfused, 1);
  const auto tr = estimate_gpu(riemann, tesla_v100(),
                               GpuImplementation::Unfused, 1);
  EXPECT_GT(tr.step_time, tc.step_time);
}

TEST(GpuModel, RejectsZeroSteps) {
  EXPECT_THROW((void)estimate_gpu(acoustic4(), tesla_v100(),
                                  GpuImplementation::Unfused, 0),
               PreconditionError);
  EXPECT_THROW((void)estimate_cpu(acoustic4(), dual_xeon_8160(), 0),
               PreconditionError);
}

TEST(CpuModel, Section31SpeedupsInPaperBallpark) {
  // §3.1: level 4, 1024 steps: 94.35x / 100.25x / 123.38x for
  // 1080Ti / P100 / V100; level 5: 131.10x / 223.95x / 369.05x.
  // The roofline + cache-decay model must land within ~2x of each.
  const struct {
    mapping::Problem problem;
    double expected[3];
  } cases[] = {
      {{ProblemKind::Acoustic, 4, 8}, {94.35, 100.25, 123.38}},
      {{ProblemKind::Acoustic, 5, 8}, {131.10, 223.95, 369.05}},
  };
  for (const auto& c : cases) {
    const auto cpu = estimate_cpu(c.problem, dual_xeon_8160(), 1024);
    const auto gpus = paper_gpus();
    for (std::size_t i = 0; i < gpus.size(); ++i) {
      const auto gpu = estimate_gpu(c.problem, gpus[i],
                                    GpuImplementation::Unfused, 1024);
      const double speedup = cpu.total_time / gpu.total_time;
      EXPECT_GT(speedup, c.expected[i] / 2.0)
          << gpus[i].name << " level " << c.problem.refinement_level;
      EXPECT_LT(speedup, c.expected[i] * 2.0)
          << gpus[i].name << " level " << c.problem.refinement_level;
    }
  }
}

TEST(CpuModel, CacheDecayMakesLevel5RelativelySlower) {
  const auto cpu4 = estimate_cpu(acoustic4(), dual_xeon_8160(), 1);
  const auto cpu5 = estimate_cpu(acoustic5(), dual_xeon_8160(), 1);
  // 8x the elements but more than 8x the time.
  EXPECT_GT(cpu5.step_time.value() / cpu4.step_time.value(), 10.0);
}

TEST(WorkingSet, MatchesElementState) {
  EXPECT_EQ(working_set_bytes(acoustic4()), 4096ull * 512 * 4 * 3 * 4);
}

TEST(GpuImplementationNames, AreStable) {
  EXPECT_STREQ(to_string(GpuImplementation::Unfused), "Unfused");
  EXPECT_STREQ(to_string(GpuImplementation::Fused), "Fused");
}

}  // namespace
}  // namespace wavepim::gpumodel
