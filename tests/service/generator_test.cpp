#include "service/job.h"

#include <gtest/gtest.h>

#include <set>

#include "service/scheduler.h"

namespace wavepim::service {
namespace {

TEST(RequestGenerator, IdenticalOptionsProduceIdenticalStreams) {
  const GeneratorOptions opt{.num_jobs = 24, .seed = 42};
  const auto a = generate_jobs(opt);
  const auto b = generate_jobs(opt);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].expansion, b[i].expansion);
    EXPECT_EQ(a[i].refinement_level, b[i].refinement_level);
    EXPECT_EQ(a[i].boundary, b[i].boundary);
    EXPECT_EQ(a[i].exec, b[i].exec);
    EXPECT_EQ(a[i].steps, b[i].steps);
    EXPECT_EQ(a[i].deadline_s, b[i].deadline_s);
    EXPECT_EQ(a[i].state_seed, b[i].state_seed);
  }
}

TEST(RequestGenerator, SeedChangesTheStream) {
  const auto a = generate_jobs({.num_jobs = 16, .seed = 1});
  const auto b = generate_jobs({.num_jobs = 16, .seed = 2});
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].arrival_s != b[i].arrival_s ||
                a[i].state_seed != b[i].state_seed;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RequestGenerator, StreamShapeInvariants) {
  const GeneratorOptions opt{.num_jobs = 64, .seed = 9, .max_steps = 4};
  const auto jobs = generate_jobs(opt);
  ASSERT_EQ(jobs.size(), 64u);
  std::set<dg::ProblemKind> kinds;
  std::set<mapping::ExecPath> tiers;
  double prev_arrival = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, static_cast<std::uint32_t>(i));
    EXPECT_GT(jobs[i].arrival_s, prev_arrival);
    prev_arrival = jobs[i].arrival_s;
    EXPECT_GE(jobs[i].steps, 1u);
    EXPECT_LE(jobs[i].steps, opt.max_steps);
    EXPECT_GE(jobs[i].refinement_level, 1);
    EXPECT_LE(jobs[i].refinement_level, 2);
    if (jobs[i].deadline_s > 0.0) {
      EXPECT_GT(jobs[i].deadline_s, jobs[i].arrival_s);
    }
    kinds.insert(jobs[i].kind);
    tiers.insert(jobs[i].exec);
  }
  // 64 draws see every physics and more than one execution tier.
  EXPECT_EQ(kinds.size(), 3u);
  EXPECT_GE(tiers.size(), 2u);
}

TEST(RequestGenerator, DeadlineFractionBounds) {
  for (const auto& spec :
       generate_jobs({.num_jobs = 16, .seed = 3, .deadline_fraction = 0.0})) {
    EXPECT_EQ(spec.deadline_s, 0.0);
  }
  for (const auto& spec :
       generate_jobs({.num_jobs = 16, .seed = 3, .deadline_fraction = 1.0})) {
    EXPECT_GT(spec.deadline_s, spec.arrival_s);
  }
}

TEST(RequestGenerator, ZeroStepOptionZeroesEveryBudget) {
  for (const auto& spec :
       generate_jobs({.num_jobs = 8, .seed = 5, .zero_step_jobs = true})) {
    EXPECT_EQ(spec.steps, 0u);
  }
}

TEST(Policy, ParseRoundTripsNames) {
  for (const Policy p : {Policy::Fifo, Policy::Srs, Policy::Edf}) {
    const auto parsed = parse_policy(to_string(p));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_FALSE(parse_policy("round-robin").has_value());
}

}  // namespace
}  // namespace wavepim::service
