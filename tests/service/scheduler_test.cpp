#include "service/scheduler.h"

#include <gtest/gtest.h>

#include <memory>

#include "service/chip_pool.h"

namespace wavepim::service {
namespace {

std::vector<JobSpec> small_stream(std::uint32_t num_jobs) {
  return generate_jobs({.num_jobs = num_jobs, .seed = 19,
                        .mean_interarrival_s = 1.0e-4, .max_steps = 3});
}

TEST(Scheduler, FifoNeverPreempts) {
  ServiceOptions svc;
  svc.num_chips = 1;
  svc.policy = Policy::Fifo;
  const ServiceReport report = Scheduler(svc).run(small_stream(8));
  EXPECT_EQ(report.preemptions, 0u);
  for (const JobResult& job : report.jobs) {
    EXPECT_EQ(job.preemptions, 0u);
  }
}

TEST(Scheduler, FifoCompletesInArrivalOrderOnOneChip) {
  ServiceOptions svc;
  svc.num_chips = 1;
  svc.policy = Policy::Fifo;
  const ServiceReport report = Scheduler(svc).run(small_stream(6));
  // Ids are assigned in arrival order, so completions must be
  // nondecreasing in id on a single non-preemptive chip.
  double prev = 0.0;
  for (const JobResult& job : report.jobs) {
    EXPECT_GE(job.completion_s, prev);
    prev = job.completion_s;
  }
}

TEST(Scheduler, EdfFinishesUrgentJobEarlierThanFifo) {
  // One long deadline-free job, then an urgent one-step job: EDF parks
  // the long job, FIFO makes the urgent one wait the whole way.
  std::vector<JobSpec> specs(2);
  specs[0].id = 0;
  specs[0].steps = 6;
  specs[0].exec = mapping::ExecPath::Compiled;
  specs[1].id = 1;
  specs[1].arrival_s = 1.0e-12;
  specs[1].steps = 1;
  specs[1].deadline_s = 1.0e-6;
  specs[1].exec = mapping::ExecPath::Compiled;
  specs[1].state_seed = 5;

  ServiceOptions svc;
  svc.num_chips = 1;
  svc.policy = Policy::Fifo;
  const double fifo_done = Scheduler(svc).run(specs).jobs[1].completion_s;
  svc.policy = Policy::Edf;
  const ServiceReport edf = Scheduler(svc).run(specs);
  EXPECT_GE(edf.preemptions, 1u);
  EXPECT_LT(edf.jobs[1].completion_s, fifo_done);
}

TEST(Scheduler, SrsRunsShortestRemainingFirst) {
  // Same shape with SRS: the 1-step job outranks the 6-step one.
  std::vector<JobSpec> specs(2);
  specs[0].id = 0;
  specs[0].steps = 6;
  specs[1].id = 1;
  specs[1].arrival_s = 1.0e-12;
  specs[1].steps = 1;
  specs[1].state_seed = 5;

  ServiceOptions svc;
  svc.num_chips = 1;
  svc.policy = Policy::Srs;
  const ServiceReport report = Scheduler(svc).run(specs);
  EXPECT_GE(report.preemptions, 1u);
  EXPECT_LT(report.jobs[1].completion_s, report.jobs[0].completion_s);
}

TEST(Scheduler, ReportStatisticsAreConsistent) {
  ServiceOptions svc;
  svc.num_chips = 2;
  svc.policy = Policy::Edf;
  const auto specs = small_stream(8);
  const ServiceReport report = Scheduler(svc).run(specs);
  ASSERT_EQ(report.jobs.size(), specs.size());
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    EXPECT_EQ(report.jobs[i].id, static_cast<std::uint32_t>(i));
    EXPECT_GE(report.jobs[i].latency_s(), 0.0);
    EXPECT_GE(report.jobs[i].first_bind_s, report.jobs[i].arrival_s);
    EXPECT_LE(report.jobs[i].completion_s, report.makespan_s);
  }
  EXPECT_GT(report.makespan_s, 0.0);
  EXPECT_LE(report.latency_p50_s, report.latency_p99_s);
  EXPECT_GT(report.chip_utilization, 0.0);
  EXPECT_LE(report.chip_utilization, 1.0);
  EXPECT_GE(report.max_queue_depth, 1u);
  // Every departure and preemption recycles a chip.
  EXPECT_EQ(report.chip_recycles,
            report.jobs.size() + report.preemptions);
  // Every job either lowered its shape class or reused one.
  EXPECT_EQ(report.cache_builds + report.cache_hits, report.jobs.size());
  EXPECT_GE(report.cache_builds, 1u);
}

TEST(Scheduler, MoreChipsNeverLengthenMakespan) {
  const auto specs = small_stream(8);
  ServiceOptions svc;
  svc.policy = Policy::Fifo;
  svc.num_chips = 1;
  const double one = Scheduler(svc).run(specs).makespan_s;
  svc.num_chips = 4;
  const double four = Scheduler(svc).run(specs).makespan_s;
  EXPECT_LE(four, one);
}

TEST(ChipPool, RecycledChipReproducesFreshChipResults) {
  JobSpec spec;
  spec.id = 0;
  spec.steps = 3;
  spec.exec = mapping::ExecPath::Compiled;
  spec.state_seed = 7;

  ChipPool pool(1, pim::chip_512mb());
  const auto run_on_pool_chip = [&]() {
    mapping::PimSimulation sim(spec.problem(), spec.expansion, pool.chip(0),
                               spec.boundary);
    sim.set_exec_path(spec.exec);
    sim.load_state(initial_state(spec, sim));
    for (std::uint32_t s = 0; s < spec.steps; ++s) {
      sim.step(kJobDt);
    }
    return field_hash(sim.read_state());
  };  // sim destroyed here, before the recycle

  const std::string fresh = run_on_pool_chip();
  pool.recycle(0);
  const std::string recycled = run_on_pool_chip();
  pool.recycle(0);
  EXPECT_EQ(pool.recycles(), 2u);
  // Same chip after recycling reproduces the fresh-chip run, and both
  // match a solo run on a private chip — no stale column state leaks
  // between tenants.
  EXPECT_EQ(recycled, fresh);
  EXPECT_EQ(fresh, run_job_solo(spec, pim::chip_512mb()).hash);
  EXPECT_EQ(pool.chip(0)->num_allocated_blocks(), 0u);
}

TEST(ProgramBank, SharesOneCachePerShapeClass) {
  ProgramBank bank;
  JobSpec acoustic;
  acoustic.kind = dg::ProblemKind::Acoustic;
  const auto a1 = bank.cache_for(acoustic);
  const auto a2 = bank.cache_for(acoustic);
  EXPECT_EQ(a1.get(), a2.get());
  EXPECT_EQ(bank.builds(), 1u);
  EXPECT_EQ(bank.hits(), 1u);

  // A different boundary pattern is a different class — sharing across
  // it would replay the wrong flux programs.
  JobSpec reflective = acoustic;
  reflective.boundary = mesh::Boundary::Reflective;
  const auto r = bank.cache_for(reflective);
  EXPECT_NE(r.get(), a1.get());
  EXPECT_EQ(bank.builds(), 2u);

  JobSpec elastic;
  elastic.kind = dg::ProblemKind::ElasticCentral;
  elastic.expansion = mapping::ExpansionMode::Elastic3;
  const auto e = bank.cache_for(elastic);
  EXPECT_NE(e.get(), a1.get());
  EXPECT_EQ(bank.builds(), 3u);
}

}  // namespace
}  // namespace wavepim::service
