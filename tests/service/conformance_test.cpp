// ServiceConformance: the scheduler's bit-identity contract. Every job
// that goes through the multiplexed fleet — whatever the policy, pool
// size or host thread count, including jobs that were preempted and
// resumed on a different chip — must hand back the exact field hash and
// per-channel cost ledgers of a solo run on a private chip.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "service/job.h"
#include "service/scheduler.h"

namespace wavepim::service {
namespace {

void expect_matches_solo(const JobResult& got, const JobResult& solo) {
  EXPECT_EQ(got.id, solo.id);
  EXPECT_EQ(got.hash, solo.hash) << "field diverged for job " << got.id;
  const auto expect_channel = [&](const pim::OpCost& a, const pim::OpCost& b,
                                  const char* channel) {
    EXPECT_EQ(a.time.value(), b.time.value())
        << channel << " time diverged for job " << got.id;
    EXPECT_EQ(a.energy.value(), b.energy.value())
        << channel << " energy diverged for job " << got.id;
  };
  expect_channel(got.costs.volume, solo.costs.volume, "volume");
  expect_channel(got.costs.flux, solo.costs.flux, "flux");
  expect_channel(got.costs.integration, solo.costs.integration,
                 "integration");
  expect_channel(got.costs.network, solo.costs.network, "network");
  expect_channel(got.costs.hbm, solo.costs.hbm, "hbm");
  EXPECT_EQ(got.net.schedules, solo.net.schedules);
  EXPECT_EQ(got.net.transfers, solo.net.transfers);
  EXPECT_EQ(got.net.words, solo.net.words);
  EXPECT_EQ(got.net.serial_sum.value(), solo.net.serial_sum.value());
  EXPECT_EQ(got.steps_run, solo.steps_run);
}

/// The shared 8-job stream and its solo reference results, computed
/// once for the whole grid.
const std::vector<JobSpec>& grid_specs() {
  static const std::vector<JobSpec> specs = generate_jobs(
      {.num_jobs = 8, .seed = 11, .mean_interarrival_s = 2.0e-4,
       .max_steps = 3});
  return specs;
}

const JobResult& solo_result(const JobSpec& spec) {
  static std::map<std::uint32_t, JobResult> cache;
  auto it = cache.find(spec.id);
  if (it == cache.end()) {
    it = cache.emplace(spec.id, run_job_solo(spec, pim::chip_512mb())).first;
  }
  return it->second;
}

using GridParam = std::tuple<Policy, std::uint32_t, std::size_t>;

class ServiceConformance : public ::testing::TestWithParam<GridParam> {};

TEST_P(ServiceConformance, EveryJobMatchesItsSoloRun) {
  const auto [policy, chips, threads] = GetParam();
  const auto& specs = grid_specs();
  ServiceOptions svc;
  svc.num_chips = chips;
  svc.policy = policy;
  svc.threads = threads;
  const ServiceReport report = Scheduler(svc).run(specs);
  ASSERT_EQ(report.jobs.size(), specs.size());
  for (const JobSpec& spec : specs) {
    expect_matches_solo(report.jobs[spec.id], solo_result(spec));
  }
}

std::string grid_name(const ::testing::TestParamInfo<GridParam>& info) {
  const auto [policy, chips, threads] = info.param;
  return std::string(to_string(policy)) + "_" + std::to_string(chips) +
         "chips_" + std::to_string(threads) + "threads";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ServiceConformance,
    ::testing::Combine(::testing::Values(Policy::Fifo, Policy::Srs,
                                         Policy::Edf),
                       ::testing::Values(1u, 4u),
                       ::testing::Values(std::size_t{1}, std::size_t{4})),
    grid_name);

/// A stream built to force preemption on one chip: a long deadline-free
/// job arrives first, then three urgent one-step jobs. Under Srs/Edf
/// the long job must park at a step boundary and resume later — and
/// still finish bit-identical to its solo run.
std::vector<JobSpec> preemption_specs() {
  std::vector<JobSpec> specs;
  JobSpec lng;
  lng.id = 0;
  lng.arrival_s = 0.0;
  lng.kind = dg::ProblemKind::Acoustic;
  lng.expansion = mapping::ExpansionMode::None;
  lng.exec = mapping::ExecPath::Compiled;
  lng.steps = 6;
  lng.state_seed = 17;
  specs.push_back(lng);
  for (std::uint32_t i = 1; i <= 3; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.arrival_s = 1.0e-12 * static_cast<double>(i);  // before any quantum
    spec.kind = dg::ProblemKind::Acoustic;
    spec.expansion = mapping::ExpansionMode::None;
    spec.exec = mapping::ExecPath::Replay;
    spec.steps = 1;
    spec.deadline_s = 1.0e-6 * static_cast<double>(i);
    spec.state_seed = 100 + i;
    specs.push_back(spec);
  }
  return specs;
}

class PreemptionConformance : public ::testing::TestWithParam<Policy> {};

TEST_P(PreemptionConformance, ParkedJobsResumeBitIdentical) {
  const auto specs = preemption_specs();
  ServiceOptions svc;
  svc.num_chips = 1;
  svc.policy = GetParam();
  const ServiceReport report = Scheduler(svc).run(specs);
  EXPECT_GE(report.preemptions, 1u) << "stream was built to preempt";
  EXPECT_GE(report.jobs[0].preemptions, 1u);
  for (const JobSpec& spec : specs) {
    expect_matches_solo(report.jobs[spec.id],
                        run_job_solo(spec, pim::chip_512mb()));
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, PreemptionConformance,
                         ::testing::Values(Policy::Srs, Policy::Edf),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

/// Capped chips: level-2 acoustic tenants overflow a 32-block chip and
/// run through the batched residency window; the service must stay
/// bit-identical to solo runs on the same capped configuration,
/// including across a preemption.
TEST(ServiceConformance, WindowedPoolMatchesSoloRuns) {
  std::vector<JobSpec> specs;
  for (std::uint32_t i = 0; i < 3; ++i) {
    JobSpec spec;
    spec.id = i;
    spec.arrival_s = 1.0e-12 * static_cast<double>(i + 1);
    spec.kind = dg::ProblemKind::Acoustic;
    spec.expansion = mapping::ExpansionMode::None;
    spec.refinement_level = 2;
    spec.exec = mapping::ExecPath::Compiled;
    spec.steps = i == 0 ? 3 : 1;
    spec.deadline_s = i == 0 ? 0.0 : 1.0e-6 * static_cast<double>(i);
    spec.state_seed = 31 + i;
    specs.push_back(spec);
  }
  ServiceOptions svc;
  svc.num_chips = 2;
  svc.policy = Policy::Edf;
  svc.chip = pim::chip_512mb();
  svc.chip.block_limit = 32;
  const ServiceReport report = Scheduler(svc).run(specs);
  for (const JobSpec& spec : specs) {
    expect_matches_solo(report.jobs[spec.id], run_job_solo(spec, svc.chip));
    EXPECT_GT(report.jobs[spec.id].costs.hbm.time.value(), 0.0)
        << "capped chip should stage through HBM";
  }
}

/// Zero-step jobs (the scheduler-overhead benchmark's stream) still
/// round-trip the state: load at bind, read at completion, ledgers
/// identical to solo.
TEST(ServiceConformance, ZeroStepJobsMatchSolo) {
  const auto specs = generate_jobs(
      {.num_jobs = 6, .seed = 23, .zero_step_jobs = true});
  ServiceOptions svc;
  svc.num_chips = 2;
  svc.policy = Policy::Fifo;
  const ServiceReport report = Scheduler(svc).run(specs);
  EXPECT_EQ(report.preemptions, 0u);
  for (const JobSpec& spec : specs) {
    expect_matches_solo(report.jobs[spec.id],
                        run_job_solo(spec, pim::chip_512mb()));
  }
}

}  // namespace
}  // namespace wavepim::service
