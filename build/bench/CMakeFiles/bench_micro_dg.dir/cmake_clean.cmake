file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_dg.dir/bench_micro_dg.cpp.o"
  "CMakeFiles/bench_micro_dg.dir/bench_micro_dg.cpp.o.d"
  "bench_micro_dg"
  "bench_micro_dg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_dg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
