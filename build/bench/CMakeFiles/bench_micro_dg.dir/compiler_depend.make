# Empty compiler generated dependencies file for bench_micro_dg.
# This may be replaced when dependencies are built.
