file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_configs.dir/bench_table5_configs.cpp.o"
  "CMakeFiles/bench_table5_configs.dir/bench_table5_configs.cpp.o.d"
  "bench_table5_configs"
  "bench_table5_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
