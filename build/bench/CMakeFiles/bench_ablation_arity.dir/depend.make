# Empty dependencies file for bench_ablation_arity.
# This may be replaced when dependencies are built.
