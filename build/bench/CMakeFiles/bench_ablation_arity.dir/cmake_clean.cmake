file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_arity.dir/bench_ablation_arity.cpp.o"
  "CMakeFiles/bench_ablation_arity.dir/bench_ablation_arity.cpp.o.d"
  "bench_ablation_arity"
  "bench_ablation_arity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_arity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
