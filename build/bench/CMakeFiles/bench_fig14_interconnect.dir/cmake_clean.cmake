file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_interconnect.dir/bench_fig14_interconnect.cpp.o"
  "CMakeFiles/bench_fig14_interconnect.dir/bench_fig14_interconnect.cpp.o.d"
  "bench_fig14_interconnect"
  "bench_fig14_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
