# Empty dependencies file for bench_fig14_interconnect.
# This may be replaced when dependencies are built.
