file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_cluster.dir/bench_scaling_cluster.cpp.o"
  "CMakeFiles/bench_scaling_cluster.dir/bench_scaling_cluster.cpp.o.d"
  "bench_scaling_cluster"
  "bench_scaling_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
