# Empty compiler generated dependencies file for bench_scaling_cluster.
# This may be replaced when dependencies are built.
