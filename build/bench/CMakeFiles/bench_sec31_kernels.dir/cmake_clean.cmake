file(REMOVE_RECURSE
  "CMakeFiles/bench_sec31_kernels.dir/bench_sec31_kernels.cpp.o"
  "CMakeFiles/bench_sec31_kernels.dir/bench_sec31_kernels.cpp.o.d"
  "bench_sec31_kernels"
  "bench_sec31_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec31_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
