# Empty dependencies file for bench_sec31_kernels.
# This may be replaced when dependencies are built.
