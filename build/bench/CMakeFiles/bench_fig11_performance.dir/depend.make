# Empty dependencies file for bench_fig11_performance.
# This may be replaced when dependencies are built.
