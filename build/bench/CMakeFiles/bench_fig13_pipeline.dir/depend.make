# Empty dependencies file for bench_fig13_pipeline.
# This may be replaced when dependencies are built.
