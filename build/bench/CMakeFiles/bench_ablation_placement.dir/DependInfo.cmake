
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_placement.cpp" "bench/CMakeFiles/bench_ablation_placement.dir/bench_ablation_placement.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_placement.dir/bench_ablation_placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wavepim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/wavepim_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/wavepim_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/gpumodel/CMakeFiles/wavepim_gpumodel.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/wavepim_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/dg/CMakeFiles/wavepim_dg.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/wavepim_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wavepim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
