# Empty dependencies file for bench_sec31_gpu_speedup.
# This may be replaced when dependencies are built.
