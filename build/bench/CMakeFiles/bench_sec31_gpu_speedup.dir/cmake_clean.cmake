file(REMOVE_RECURSE
  "CMakeFiles/bench_sec31_gpu_speedup.dir/bench_sec31_gpu_speedup.cpp.o"
  "CMakeFiles/bench_sec31_gpu_speedup.dir/bench_sec31_gpu_speedup.cpp.o.d"
  "bench_sec31_gpu_speedup"
  "bench_sec31_gpu_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec31_gpu_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
