file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_ops.dir/bench_table4_ops.cpp.o"
  "CMakeFiles/bench_table4_ops.dir/bench_table4_ops.cpp.o.d"
  "bench_table4_ops"
  "bench_table4_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
