# Empty compiler generated dependencies file for wavepim_common.
# This may be replaced when dependencies are built.
