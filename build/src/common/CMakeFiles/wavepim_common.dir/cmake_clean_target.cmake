file(REMOVE_RECURSE
  "libwavepim_common.a"
)
