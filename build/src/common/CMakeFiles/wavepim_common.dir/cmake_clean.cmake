file(REMOVE_RECURSE
  "CMakeFiles/wavepim_common.dir/error.cpp.o"
  "CMakeFiles/wavepim_common.dir/error.cpp.o.d"
  "CMakeFiles/wavepim_common.dir/parallel.cpp.o"
  "CMakeFiles/wavepim_common.dir/parallel.cpp.o.d"
  "CMakeFiles/wavepim_common.dir/statistics.cpp.o"
  "CMakeFiles/wavepim_common.dir/statistics.cpp.o.d"
  "CMakeFiles/wavepim_common.dir/table.cpp.o"
  "CMakeFiles/wavepim_common.dir/table.cpp.o.d"
  "CMakeFiles/wavepim_common.dir/units.cpp.o"
  "CMakeFiles/wavepim_common.dir/units.cpp.o.d"
  "libwavepim_common.a"
  "libwavepim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavepim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
