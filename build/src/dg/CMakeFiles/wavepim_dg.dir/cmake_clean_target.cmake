file(REMOVE_RECURSE
  "libwavepim_dg.a"
)
