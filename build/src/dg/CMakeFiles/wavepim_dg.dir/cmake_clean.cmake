file(REMOVE_RECURSE
  "CMakeFiles/wavepim_dg.dir/basis.cpp.o"
  "CMakeFiles/wavepim_dg.dir/basis.cpp.o.d"
  "CMakeFiles/wavepim_dg.dir/gll.cpp.o"
  "CMakeFiles/wavepim_dg.dir/gll.cpp.o.d"
  "CMakeFiles/wavepim_dg.dir/io.cpp.o"
  "CMakeFiles/wavepim_dg.dir/io.cpp.o.d"
  "CMakeFiles/wavepim_dg.dir/op_counter.cpp.o"
  "CMakeFiles/wavepim_dg.dir/op_counter.cpp.o.d"
  "CMakeFiles/wavepim_dg.dir/operators.cpp.o"
  "CMakeFiles/wavepim_dg.dir/operators.cpp.o.d"
  "CMakeFiles/wavepim_dg.dir/physics.cpp.o"
  "CMakeFiles/wavepim_dg.dir/physics.cpp.o.d"
  "CMakeFiles/wavepim_dg.dir/recorder.cpp.o"
  "CMakeFiles/wavepim_dg.dir/recorder.cpp.o.d"
  "CMakeFiles/wavepim_dg.dir/reference_element.cpp.o"
  "CMakeFiles/wavepim_dg.dir/reference_element.cpp.o.d"
  "CMakeFiles/wavepim_dg.dir/solver.cpp.o"
  "CMakeFiles/wavepim_dg.dir/solver.cpp.o.d"
  "CMakeFiles/wavepim_dg.dir/sources.cpp.o"
  "CMakeFiles/wavepim_dg.dir/sources.cpp.o.d"
  "libwavepim_dg.a"
  "libwavepim_dg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavepim_dg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
