
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dg/basis.cpp" "src/dg/CMakeFiles/wavepim_dg.dir/basis.cpp.o" "gcc" "src/dg/CMakeFiles/wavepim_dg.dir/basis.cpp.o.d"
  "/root/repo/src/dg/gll.cpp" "src/dg/CMakeFiles/wavepim_dg.dir/gll.cpp.o" "gcc" "src/dg/CMakeFiles/wavepim_dg.dir/gll.cpp.o.d"
  "/root/repo/src/dg/io.cpp" "src/dg/CMakeFiles/wavepim_dg.dir/io.cpp.o" "gcc" "src/dg/CMakeFiles/wavepim_dg.dir/io.cpp.o.d"
  "/root/repo/src/dg/op_counter.cpp" "src/dg/CMakeFiles/wavepim_dg.dir/op_counter.cpp.o" "gcc" "src/dg/CMakeFiles/wavepim_dg.dir/op_counter.cpp.o.d"
  "/root/repo/src/dg/operators.cpp" "src/dg/CMakeFiles/wavepim_dg.dir/operators.cpp.o" "gcc" "src/dg/CMakeFiles/wavepim_dg.dir/operators.cpp.o.d"
  "/root/repo/src/dg/physics.cpp" "src/dg/CMakeFiles/wavepim_dg.dir/physics.cpp.o" "gcc" "src/dg/CMakeFiles/wavepim_dg.dir/physics.cpp.o.d"
  "/root/repo/src/dg/recorder.cpp" "src/dg/CMakeFiles/wavepim_dg.dir/recorder.cpp.o" "gcc" "src/dg/CMakeFiles/wavepim_dg.dir/recorder.cpp.o.d"
  "/root/repo/src/dg/reference_element.cpp" "src/dg/CMakeFiles/wavepim_dg.dir/reference_element.cpp.o" "gcc" "src/dg/CMakeFiles/wavepim_dg.dir/reference_element.cpp.o.d"
  "/root/repo/src/dg/solver.cpp" "src/dg/CMakeFiles/wavepim_dg.dir/solver.cpp.o" "gcc" "src/dg/CMakeFiles/wavepim_dg.dir/solver.cpp.o.d"
  "/root/repo/src/dg/sources.cpp" "src/dg/CMakeFiles/wavepim_dg.dir/sources.cpp.o" "gcc" "src/dg/CMakeFiles/wavepim_dg.dir/sources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wavepim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/wavepim_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
