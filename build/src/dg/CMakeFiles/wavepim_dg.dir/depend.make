# Empty dependencies file for wavepim_dg.
# This may be replaced when dependencies are built.
