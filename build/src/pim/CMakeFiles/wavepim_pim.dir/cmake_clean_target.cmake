file(REMOVE_RECURSE
  "libwavepim_pim.a"
)
