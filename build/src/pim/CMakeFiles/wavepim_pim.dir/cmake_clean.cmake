file(REMOVE_RECURSE
  "CMakeFiles/wavepim_pim.dir/arith.cpp.o"
  "CMakeFiles/wavepim_pim.dir/arith.cpp.o.d"
  "CMakeFiles/wavepim_pim.dir/bitserial.cpp.o"
  "CMakeFiles/wavepim_pim.dir/bitserial.cpp.o.d"
  "CMakeFiles/wavepim_pim.dir/block.cpp.o"
  "CMakeFiles/wavepim_pim.dir/block.cpp.o.d"
  "CMakeFiles/wavepim_pim.dir/chip.cpp.o"
  "CMakeFiles/wavepim_pim.dir/chip.cpp.o.d"
  "CMakeFiles/wavepim_pim.dir/controller.cpp.o"
  "CMakeFiles/wavepim_pim.dir/controller.cpp.o.d"
  "CMakeFiles/wavepim_pim.dir/interconnect.cpp.o"
  "CMakeFiles/wavepim_pim.dir/interconnect.cpp.o.d"
  "CMakeFiles/wavepim_pim.dir/isa.cpp.o"
  "CMakeFiles/wavepim_pim.dir/isa.cpp.o.d"
  "CMakeFiles/wavepim_pim.dir/lut.cpp.o"
  "CMakeFiles/wavepim_pim.dir/lut.cpp.o.d"
  "CMakeFiles/wavepim_pim.dir/params.cpp.o"
  "CMakeFiles/wavepim_pim.dir/params.cpp.o.d"
  "libwavepim_pim.a"
  "libwavepim_pim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavepim_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
