# Empty compiler generated dependencies file for wavepim_pim.
# This may be replaced when dependencies are built.
