
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pim/arith.cpp" "src/pim/CMakeFiles/wavepim_pim.dir/arith.cpp.o" "gcc" "src/pim/CMakeFiles/wavepim_pim.dir/arith.cpp.o.d"
  "/root/repo/src/pim/bitserial.cpp" "src/pim/CMakeFiles/wavepim_pim.dir/bitserial.cpp.o" "gcc" "src/pim/CMakeFiles/wavepim_pim.dir/bitserial.cpp.o.d"
  "/root/repo/src/pim/block.cpp" "src/pim/CMakeFiles/wavepim_pim.dir/block.cpp.o" "gcc" "src/pim/CMakeFiles/wavepim_pim.dir/block.cpp.o.d"
  "/root/repo/src/pim/chip.cpp" "src/pim/CMakeFiles/wavepim_pim.dir/chip.cpp.o" "gcc" "src/pim/CMakeFiles/wavepim_pim.dir/chip.cpp.o.d"
  "/root/repo/src/pim/controller.cpp" "src/pim/CMakeFiles/wavepim_pim.dir/controller.cpp.o" "gcc" "src/pim/CMakeFiles/wavepim_pim.dir/controller.cpp.o.d"
  "/root/repo/src/pim/interconnect.cpp" "src/pim/CMakeFiles/wavepim_pim.dir/interconnect.cpp.o" "gcc" "src/pim/CMakeFiles/wavepim_pim.dir/interconnect.cpp.o.d"
  "/root/repo/src/pim/isa.cpp" "src/pim/CMakeFiles/wavepim_pim.dir/isa.cpp.o" "gcc" "src/pim/CMakeFiles/wavepim_pim.dir/isa.cpp.o.d"
  "/root/repo/src/pim/lut.cpp" "src/pim/CMakeFiles/wavepim_pim.dir/lut.cpp.o" "gcc" "src/pim/CMakeFiles/wavepim_pim.dir/lut.cpp.o.d"
  "/root/repo/src/pim/params.cpp" "src/pim/CMakeFiles/wavepim_pim.dir/params.cpp.o" "gcc" "src/pim/CMakeFiles/wavepim_pim.dir/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wavepim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
