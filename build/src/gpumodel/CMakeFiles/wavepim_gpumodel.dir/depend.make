# Empty dependencies file for wavepim_gpumodel.
# This may be replaced when dependencies are built.
