file(REMOVE_RECURSE
  "CMakeFiles/wavepim_gpumodel.dir/baseline.cpp.o"
  "CMakeFiles/wavepim_gpumodel.dir/baseline.cpp.o.d"
  "CMakeFiles/wavepim_gpumodel.dir/gpu_specs.cpp.o"
  "CMakeFiles/wavepim_gpumodel.dir/gpu_specs.cpp.o.d"
  "libwavepim_gpumodel.a"
  "libwavepim_gpumodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavepim_gpumodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
