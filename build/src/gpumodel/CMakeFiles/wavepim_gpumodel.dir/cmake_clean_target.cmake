file(REMOVE_RECURSE
  "libwavepim_gpumodel.a"
)
