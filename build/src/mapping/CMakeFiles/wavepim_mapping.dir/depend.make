# Empty dependencies file for wavepim_mapping.
# This may be replaced when dependencies are built.
