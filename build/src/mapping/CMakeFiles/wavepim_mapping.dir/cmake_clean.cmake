file(REMOVE_RECURSE
  "CMakeFiles/wavepim_mapping.dir/assembler.cpp.o"
  "CMakeFiles/wavepim_mapping.dir/assembler.cpp.o.d"
  "CMakeFiles/wavepim_mapping.dir/batch_schedule.cpp.o"
  "CMakeFiles/wavepim_mapping.dir/batch_schedule.cpp.o.d"
  "CMakeFiles/wavepim_mapping.dir/coefficients.cpp.o"
  "CMakeFiles/wavepim_mapping.dir/coefficients.cpp.o.d"
  "CMakeFiles/wavepim_mapping.dir/config.cpp.o"
  "CMakeFiles/wavepim_mapping.dir/config.cpp.o.d"
  "CMakeFiles/wavepim_mapping.dir/element_program.cpp.o"
  "CMakeFiles/wavepim_mapping.dir/element_program.cpp.o.d"
  "CMakeFiles/wavepim_mapping.dir/estimator.cpp.o"
  "CMakeFiles/wavepim_mapping.dir/estimator.cpp.o.d"
  "CMakeFiles/wavepim_mapping.dir/layout.cpp.o"
  "CMakeFiles/wavepim_mapping.dir/layout.cpp.o.d"
  "CMakeFiles/wavepim_mapping.dir/pipeline.cpp.o"
  "CMakeFiles/wavepim_mapping.dir/pipeline.cpp.o.d"
  "CMakeFiles/wavepim_mapping.dir/simulation.cpp.o"
  "CMakeFiles/wavepim_mapping.dir/simulation.cpp.o.d"
  "CMakeFiles/wavepim_mapping.dir/sinks.cpp.o"
  "CMakeFiles/wavepim_mapping.dir/sinks.cpp.o.d"
  "libwavepim_mapping.a"
  "libwavepim_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavepim_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
