file(REMOVE_RECURSE
  "libwavepim_mapping.a"
)
