
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/assembler.cpp" "src/mapping/CMakeFiles/wavepim_mapping.dir/assembler.cpp.o" "gcc" "src/mapping/CMakeFiles/wavepim_mapping.dir/assembler.cpp.o.d"
  "/root/repo/src/mapping/batch_schedule.cpp" "src/mapping/CMakeFiles/wavepim_mapping.dir/batch_schedule.cpp.o" "gcc" "src/mapping/CMakeFiles/wavepim_mapping.dir/batch_schedule.cpp.o.d"
  "/root/repo/src/mapping/coefficients.cpp" "src/mapping/CMakeFiles/wavepim_mapping.dir/coefficients.cpp.o" "gcc" "src/mapping/CMakeFiles/wavepim_mapping.dir/coefficients.cpp.o.d"
  "/root/repo/src/mapping/config.cpp" "src/mapping/CMakeFiles/wavepim_mapping.dir/config.cpp.o" "gcc" "src/mapping/CMakeFiles/wavepim_mapping.dir/config.cpp.o.d"
  "/root/repo/src/mapping/element_program.cpp" "src/mapping/CMakeFiles/wavepim_mapping.dir/element_program.cpp.o" "gcc" "src/mapping/CMakeFiles/wavepim_mapping.dir/element_program.cpp.o.d"
  "/root/repo/src/mapping/estimator.cpp" "src/mapping/CMakeFiles/wavepim_mapping.dir/estimator.cpp.o" "gcc" "src/mapping/CMakeFiles/wavepim_mapping.dir/estimator.cpp.o.d"
  "/root/repo/src/mapping/layout.cpp" "src/mapping/CMakeFiles/wavepim_mapping.dir/layout.cpp.o" "gcc" "src/mapping/CMakeFiles/wavepim_mapping.dir/layout.cpp.o.d"
  "/root/repo/src/mapping/pipeline.cpp" "src/mapping/CMakeFiles/wavepim_mapping.dir/pipeline.cpp.o" "gcc" "src/mapping/CMakeFiles/wavepim_mapping.dir/pipeline.cpp.o.d"
  "/root/repo/src/mapping/simulation.cpp" "src/mapping/CMakeFiles/wavepim_mapping.dir/simulation.cpp.o" "gcc" "src/mapping/CMakeFiles/wavepim_mapping.dir/simulation.cpp.o.d"
  "/root/repo/src/mapping/sinks.cpp" "src/mapping/CMakeFiles/wavepim_mapping.dir/sinks.cpp.o" "gcc" "src/mapping/CMakeFiles/wavepim_mapping.dir/sinks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wavepim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/wavepim_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/dg/CMakeFiles/wavepim_dg.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/wavepim_pim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
