file(REMOVE_RECURSE
  "CMakeFiles/wavepim_mesh.dir/face.cpp.o"
  "CMakeFiles/wavepim_mesh.dir/face.cpp.o.d"
  "CMakeFiles/wavepim_mesh.dir/structured_mesh.cpp.o"
  "CMakeFiles/wavepim_mesh.dir/structured_mesh.cpp.o.d"
  "libwavepim_mesh.a"
  "libwavepim_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavepim_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
