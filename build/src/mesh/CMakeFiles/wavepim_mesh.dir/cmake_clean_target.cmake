file(REMOVE_RECURSE
  "libwavepim_mesh.a"
)
