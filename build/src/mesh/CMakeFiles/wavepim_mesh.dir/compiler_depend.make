# Empty compiler generated dependencies file for wavepim_mesh.
# This may be replaced when dependencies are built.
