
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/wavepim_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/wavepim_core.dir/report.cpp.o.d"
  "/root/repo/src/core/wavepim.cpp" "src/core/CMakeFiles/wavepim_core.dir/wavepim.cpp.o" "gcc" "src/core/CMakeFiles/wavepim_core.dir/wavepim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wavepim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/wavepim_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/gpumodel/CMakeFiles/wavepim_gpumodel.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/wavepim_pim.dir/DependInfo.cmake"
  "/root/repo/build/src/dg/CMakeFiles/wavepim_dg.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/wavepim_mesh.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
