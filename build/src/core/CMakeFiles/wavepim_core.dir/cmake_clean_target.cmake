file(REMOVE_RECURSE
  "libwavepim_core.a"
)
