# Empty dependencies file for wavepim_core.
# This may be replaced when dependencies are built.
