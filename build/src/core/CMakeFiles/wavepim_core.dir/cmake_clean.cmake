file(REMOVE_RECURSE
  "CMakeFiles/wavepim_core.dir/report.cpp.o"
  "CMakeFiles/wavepim_core.dir/report.cpp.o.d"
  "CMakeFiles/wavepim_core.dir/wavepim.cpp.o"
  "CMakeFiles/wavepim_core.dir/wavepim.cpp.o.d"
  "libwavepim_core.a"
  "libwavepim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavepim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
