file(REMOVE_RECURSE
  "libwavepim_cluster.a"
)
