file(REMOVE_RECURSE
  "CMakeFiles/wavepim_cluster.dir/cluster.cpp.o"
  "CMakeFiles/wavepim_cluster.dir/cluster.cpp.o.d"
  "libwavepim_cluster.a"
  "libwavepim_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavepim_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
