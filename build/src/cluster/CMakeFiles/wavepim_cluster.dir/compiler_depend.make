# Empty compiler generated dependencies file for wavepim_cluster.
# This may be replaced when dependencies are built.
