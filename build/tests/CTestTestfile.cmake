# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_pim[1]_include.cmake")
include("/root/repo/build/tests/test_gpumodel[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_dg[1]_include.cmake")
