# Empty compiler generated dependencies file for test_gpumodel.
# This may be replaced when dependencies are built.
