file(REMOVE_RECURSE
  "CMakeFiles/test_gpumodel.dir/gpumodel/baseline_test.cpp.o"
  "CMakeFiles/test_gpumodel.dir/gpumodel/baseline_test.cpp.o.d"
  "test_gpumodel"
  "test_gpumodel.pdb"
  "test_gpumodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpumodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
