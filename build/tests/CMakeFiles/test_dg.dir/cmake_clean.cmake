file(REMOVE_RECURSE
  "CMakeFiles/test_dg.dir/dg/absorbing_test.cpp.o"
  "CMakeFiles/test_dg.dir/dg/absorbing_test.cpp.o.d"
  "CMakeFiles/test_dg.dir/dg/basis_test.cpp.o"
  "CMakeFiles/test_dg.dir/dg/basis_test.cpp.o.d"
  "CMakeFiles/test_dg.dir/dg/convergence_test.cpp.o"
  "CMakeFiles/test_dg.dir/dg/convergence_test.cpp.o.d"
  "CMakeFiles/test_dg.dir/dg/gll_test.cpp.o"
  "CMakeFiles/test_dg.dir/dg/gll_test.cpp.o.d"
  "CMakeFiles/test_dg.dir/dg/io_test.cpp.o"
  "CMakeFiles/test_dg.dir/dg/io_test.cpp.o.d"
  "CMakeFiles/test_dg.dir/dg/op_counter_test.cpp.o"
  "CMakeFiles/test_dg.dir/dg/op_counter_test.cpp.o.d"
  "CMakeFiles/test_dg.dir/dg/physics_test.cpp.o"
  "CMakeFiles/test_dg.dir/dg/physics_test.cpp.o.d"
  "CMakeFiles/test_dg.dir/dg/recorder_test.cpp.o"
  "CMakeFiles/test_dg.dir/dg/recorder_test.cpp.o.d"
  "CMakeFiles/test_dg.dir/dg/reference_element_test.cpp.o"
  "CMakeFiles/test_dg.dir/dg/reference_element_test.cpp.o.d"
  "CMakeFiles/test_dg.dir/dg/solver_acoustic_test.cpp.o"
  "CMakeFiles/test_dg.dir/dg/solver_acoustic_test.cpp.o.d"
  "CMakeFiles/test_dg.dir/dg/solver_elastic_test.cpp.o"
  "CMakeFiles/test_dg.dir/dg/solver_elastic_test.cpp.o.d"
  "test_dg"
  "test_dg.pdb"
  "test_dg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
