# Empty dependencies file for test_dg.
# This may be replaced when dependencies are built.
