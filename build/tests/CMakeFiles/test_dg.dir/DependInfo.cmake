
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dg/absorbing_test.cpp" "tests/CMakeFiles/test_dg.dir/dg/absorbing_test.cpp.o" "gcc" "tests/CMakeFiles/test_dg.dir/dg/absorbing_test.cpp.o.d"
  "/root/repo/tests/dg/basis_test.cpp" "tests/CMakeFiles/test_dg.dir/dg/basis_test.cpp.o" "gcc" "tests/CMakeFiles/test_dg.dir/dg/basis_test.cpp.o.d"
  "/root/repo/tests/dg/convergence_test.cpp" "tests/CMakeFiles/test_dg.dir/dg/convergence_test.cpp.o" "gcc" "tests/CMakeFiles/test_dg.dir/dg/convergence_test.cpp.o.d"
  "/root/repo/tests/dg/gll_test.cpp" "tests/CMakeFiles/test_dg.dir/dg/gll_test.cpp.o" "gcc" "tests/CMakeFiles/test_dg.dir/dg/gll_test.cpp.o.d"
  "/root/repo/tests/dg/io_test.cpp" "tests/CMakeFiles/test_dg.dir/dg/io_test.cpp.o" "gcc" "tests/CMakeFiles/test_dg.dir/dg/io_test.cpp.o.d"
  "/root/repo/tests/dg/op_counter_test.cpp" "tests/CMakeFiles/test_dg.dir/dg/op_counter_test.cpp.o" "gcc" "tests/CMakeFiles/test_dg.dir/dg/op_counter_test.cpp.o.d"
  "/root/repo/tests/dg/physics_test.cpp" "tests/CMakeFiles/test_dg.dir/dg/physics_test.cpp.o" "gcc" "tests/CMakeFiles/test_dg.dir/dg/physics_test.cpp.o.d"
  "/root/repo/tests/dg/recorder_test.cpp" "tests/CMakeFiles/test_dg.dir/dg/recorder_test.cpp.o" "gcc" "tests/CMakeFiles/test_dg.dir/dg/recorder_test.cpp.o.d"
  "/root/repo/tests/dg/reference_element_test.cpp" "tests/CMakeFiles/test_dg.dir/dg/reference_element_test.cpp.o" "gcc" "tests/CMakeFiles/test_dg.dir/dg/reference_element_test.cpp.o.d"
  "/root/repo/tests/dg/solver_acoustic_test.cpp" "tests/CMakeFiles/test_dg.dir/dg/solver_acoustic_test.cpp.o" "gcc" "tests/CMakeFiles/test_dg.dir/dg/solver_acoustic_test.cpp.o.d"
  "/root/repo/tests/dg/solver_elastic_test.cpp" "tests/CMakeFiles/test_dg.dir/dg/solver_elastic_test.cpp.o" "gcc" "tests/CMakeFiles/test_dg.dir/dg/solver_elastic_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wavepim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/wavepim_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/dg/CMakeFiles/wavepim_dg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
