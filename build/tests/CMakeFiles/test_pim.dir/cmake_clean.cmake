file(REMOVE_RECURSE
  "CMakeFiles/test_pim.dir/pim/arith_test.cpp.o"
  "CMakeFiles/test_pim.dir/pim/arith_test.cpp.o.d"
  "CMakeFiles/test_pim.dir/pim/arity_test.cpp.o"
  "CMakeFiles/test_pim.dir/pim/arity_test.cpp.o.d"
  "CMakeFiles/test_pim.dir/pim/bitserial_test.cpp.o"
  "CMakeFiles/test_pim.dir/pim/bitserial_test.cpp.o.d"
  "CMakeFiles/test_pim.dir/pim/block_test.cpp.o"
  "CMakeFiles/test_pim.dir/pim/block_test.cpp.o.d"
  "CMakeFiles/test_pim.dir/pim/chip_test.cpp.o"
  "CMakeFiles/test_pim.dir/pim/chip_test.cpp.o.d"
  "CMakeFiles/test_pim.dir/pim/controller_test.cpp.o"
  "CMakeFiles/test_pim.dir/pim/controller_test.cpp.o.d"
  "CMakeFiles/test_pim.dir/pim/hbm_host_test.cpp.o"
  "CMakeFiles/test_pim.dir/pim/hbm_host_test.cpp.o.d"
  "CMakeFiles/test_pim.dir/pim/interconnect_property_test.cpp.o"
  "CMakeFiles/test_pim.dir/pim/interconnect_property_test.cpp.o.d"
  "CMakeFiles/test_pim.dir/pim/interconnect_test.cpp.o"
  "CMakeFiles/test_pim.dir/pim/interconnect_test.cpp.o.d"
  "CMakeFiles/test_pim.dir/pim/isa_test.cpp.o"
  "CMakeFiles/test_pim.dir/pim/isa_test.cpp.o.d"
  "CMakeFiles/test_pim.dir/pim/lut_test.cpp.o"
  "CMakeFiles/test_pim.dir/pim/lut_test.cpp.o.d"
  "CMakeFiles/test_pim.dir/pim/params_test.cpp.o"
  "CMakeFiles/test_pim.dir/pim/params_test.cpp.o.d"
  "test_pim"
  "test_pim.pdb"
  "test_pim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
