
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pim/arith_test.cpp" "tests/CMakeFiles/test_pim.dir/pim/arith_test.cpp.o" "gcc" "tests/CMakeFiles/test_pim.dir/pim/arith_test.cpp.o.d"
  "/root/repo/tests/pim/arity_test.cpp" "tests/CMakeFiles/test_pim.dir/pim/arity_test.cpp.o" "gcc" "tests/CMakeFiles/test_pim.dir/pim/arity_test.cpp.o.d"
  "/root/repo/tests/pim/bitserial_test.cpp" "tests/CMakeFiles/test_pim.dir/pim/bitserial_test.cpp.o" "gcc" "tests/CMakeFiles/test_pim.dir/pim/bitserial_test.cpp.o.d"
  "/root/repo/tests/pim/block_test.cpp" "tests/CMakeFiles/test_pim.dir/pim/block_test.cpp.o" "gcc" "tests/CMakeFiles/test_pim.dir/pim/block_test.cpp.o.d"
  "/root/repo/tests/pim/chip_test.cpp" "tests/CMakeFiles/test_pim.dir/pim/chip_test.cpp.o" "gcc" "tests/CMakeFiles/test_pim.dir/pim/chip_test.cpp.o.d"
  "/root/repo/tests/pim/controller_test.cpp" "tests/CMakeFiles/test_pim.dir/pim/controller_test.cpp.o" "gcc" "tests/CMakeFiles/test_pim.dir/pim/controller_test.cpp.o.d"
  "/root/repo/tests/pim/hbm_host_test.cpp" "tests/CMakeFiles/test_pim.dir/pim/hbm_host_test.cpp.o" "gcc" "tests/CMakeFiles/test_pim.dir/pim/hbm_host_test.cpp.o.d"
  "/root/repo/tests/pim/interconnect_property_test.cpp" "tests/CMakeFiles/test_pim.dir/pim/interconnect_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_pim.dir/pim/interconnect_property_test.cpp.o.d"
  "/root/repo/tests/pim/interconnect_test.cpp" "tests/CMakeFiles/test_pim.dir/pim/interconnect_test.cpp.o" "gcc" "tests/CMakeFiles/test_pim.dir/pim/interconnect_test.cpp.o.d"
  "/root/repo/tests/pim/isa_test.cpp" "tests/CMakeFiles/test_pim.dir/pim/isa_test.cpp.o" "gcc" "tests/CMakeFiles/test_pim.dir/pim/isa_test.cpp.o.d"
  "/root/repo/tests/pim/lut_test.cpp" "tests/CMakeFiles/test_pim.dir/pim/lut_test.cpp.o" "gcc" "tests/CMakeFiles/test_pim.dir/pim/lut_test.cpp.o.d"
  "/root/repo/tests/pim/params_test.cpp" "tests/CMakeFiles/test_pim.dir/pim/params_test.cpp.o" "gcc" "tests/CMakeFiles/test_pim.dir/pim/params_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wavepim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/wavepim_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/dg/CMakeFiles/wavepim_dg.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/wavepim_pim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
