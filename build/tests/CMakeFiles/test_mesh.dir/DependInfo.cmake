
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mesh/face_test.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/face_test.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/face_test.cpp.o.d"
  "/root/repo/tests/mesh/structured_mesh_test.cpp" "tests/CMakeFiles/test_mesh.dir/mesh/structured_mesh_test.cpp.o" "gcc" "tests/CMakeFiles/test_mesh.dir/mesh/structured_mesh_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wavepim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/wavepim_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/dg/CMakeFiles/wavepim_dg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
