
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mapping/assembler_test.cpp" "tests/CMakeFiles/test_mapping.dir/mapping/assembler_test.cpp.o" "gcc" "tests/CMakeFiles/test_mapping.dir/mapping/assembler_test.cpp.o.d"
  "/root/repo/tests/mapping/batch_schedule_test.cpp" "tests/CMakeFiles/test_mapping.dir/mapping/batch_schedule_test.cpp.o" "gcc" "tests/CMakeFiles/test_mapping.dir/mapping/batch_schedule_test.cpp.o.d"
  "/root/repo/tests/mapping/coefficients_test.cpp" "tests/CMakeFiles/test_mapping.dir/mapping/coefficients_test.cpp.o" "gcc" "tests/CMakeFiles/test_mapping.dir/mapping/coefficients_test.cpp.o.d"
  "/root/repo/tests/mapping/config_test.cpp" "tests/CMakeFiles/test_mapping.dir/mapping/config_test.cpp.o" "gcc" "tests/CMakeFiles/test_mapping.dir/mapping/config_test.cpp.o.d"
  "/root/repo/tests/mapping/estimator_test.cpp" "tests/CMakeFiles/test_mapping.dir/mapping/estimator_test.cpp.o" "gcc" "tests/CMakeFiles/test_mapping.dir/mapping/estimator_test.cpp.o.d"
  "/root/repo/tests/mapping/layout_test.cpp" "tests/CMakeFiles/test_mapping.dir/mapping/layout_test.cpp.o" "gcc" "tests/CMakeFiles/test_mapping.dir/mapping/layout_test.cpp.o.d"
  "/root/repo/tests/mapping/morton_test.cpp" "tests/CMakeFiles/test_mapping.dir/mapping/morton_test.cpp.o" "gcc" "tests/CMakeFiles/test_mapping.dir/mapping/morton_test.cpp.o.d"
  "/root/repo/tests/mapping/pipeline_test.cpp" "tests/CMakeFiles/test_mapping.dir/mapping/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_mapping.dir/mapping/pipeline_test.cpp.o.d"
  "/root/repo/tests/mapping/simulation_test.cpp" "tests/CMakeFiles/test_mapping.dir/mapping/simulation_test.cpp.o" "gcc" "tests/CMakeFiles/test_mapping.dir/mapping/simulation_test.cpp.o.d"
  "/root/repo/tests/mapping/sink_parity_test.cpp" "tests/CMakeFiles/test_mapping.dir/mapping/sink_parity_test.cpp.o" "gcc" "tests/CMakeFiles/test_mapping.dir/mapping/sink_parity_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/wavepim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/wavepim_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/dg/CMakeFiles/wavepim_dg.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/wavepim_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/pim/CMakeFiles/wavepim_pim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
