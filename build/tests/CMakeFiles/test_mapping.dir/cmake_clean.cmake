file(REMOVE_RECURSE
  "CMakeFiles/test_mapping.dir/mapping/assembler_test.cpp.o"
  "CMakeFiles/test_mapping.dir/mapping/assembler_test.cpp.o.d"
  "CMakeFiles/test_mapping.dir/mapping/batch_schedule_test.cpp.o"
  "CMakeFiles/test_mapping.dir/mapping/batch_schedule_test.cpp.o.d"
  "CMakeFiles/test_mapping.dir/mapping/coefficients_test.cpp.o"
  "CMakeFiles/test_mapping.dir/mapping/coefficients_test.cpp.o.d"
  "CMakeFiles/test_mapping.dir/mapping/config_test.cpp.o"
  "CMakeFiles/test_mapping.dir/mapping/config_test.cpp.o.d"
  "CMakeFiles/test_mapping.dir/mapping/estimator_test.cpp.o"
  "CMakeFiles/test_mapping.dir/mapping/estimator_test.cpp.o.d"
  "CMakeFiles/test_mapping.dir/mapping/layout_test.cpp.o"
  "CMakeFiles/test_mapping.dir/mapping/layout_test.cpp.o.d"
  "CMakeFiles/test_mapping.dir/mapping/morton_test.cpp.o"
  "CMakeFiles/test_mapping.dir/mapping/morton_test.cpp.o.d"
  "CMakeFiles/test_mapping.dir/mapping/pipeline_test.cpp.o"
  "CMakeFiles/test_mapping.dir/mapping/pipeline_test.cpp.o.d"
  "CMakeFiles/test_mapping.dir/mapping/simulation_test.cpp.o"
  "CMakeFiles/test_mapping.dir/mapping/simulation_test.cpp.o.d"
  "CMakeFiles/test_mapping.dir/mapping/sink_parity_test.cpp.o"
  "CMakeFiles/test_mapping.dir/mapping/sink_parity_test.cpp.o.d"
  "test_mapping"
  "test_mapping.pdb"
  "test_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
