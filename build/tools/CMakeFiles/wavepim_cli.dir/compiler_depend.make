# Empty compiler generated dependencies file for wavepim_cli.
# This may be replaced when dependencies are built.
