file(REMOVE_RECURSE
  "CMakeFiles/wavepim_cli.dir/wavepim_cli.cpp.o"
  "CMakeFiles/wavepim_cli.dir/wavepim_cli.cpp.o.d"
  "wavepim"
  "wavepim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavepim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
