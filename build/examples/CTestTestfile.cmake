# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  LABELS "examples" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_seismic_survey "/root/repo/build/examples/seismic_survey")
set_tests_properties(example_seismic_survey PROPERTIES  LABELS "examples" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_earthquake_elastic "/root/repo/build/examples/earthquake_elastic")
set_tests_properties(example_earthquake_elastic PROPERTIES  LABELS "examples" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_interconnect_explorer "/root/repo/build/examples/interconnect_explorer")
set_tests_properties(example_interconnect_explorer PROPERTIES  LABELS "examples" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_batching_planner "/root/repo/build/examples/batching_planner" "elastic-riemann" "5")
set_tests_properties(example_batching_planner PROPERTIES  LABELS "examples" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reverse_time_imaging "/root/repo/build/examples/reverse_time_imaging")
set_tests_properties(example_reverse_time_imaging PROPERTIES  LABELS "examples" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_validate "/root/repo/build/tools/wavepim" "validate")
set_tests_properties(cli_validate PROPERTIES  LABELS "examples" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_configs "/root/repo/build/tools/wavepim" "configs")
set_tests_properties(cli_configs PROPERTIES  LABELS "examples" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
