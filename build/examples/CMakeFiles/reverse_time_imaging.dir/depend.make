# Empty dependencies file for reverse_time_imaging.
# This may be replaced when dependencies are built.
