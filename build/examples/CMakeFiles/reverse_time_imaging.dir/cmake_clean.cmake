file(REMOVE_RECURSE
  "CMakeFiles/reverse_time_imaging.dir/reverse_time_imaging.cpp.o"
  "CMakeFiles/reverse_time_imaging.dir/reverse_time_imaging.cpp.o.d"
  "reverse_time_imaging"
  "reverse_time_imaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_time_imaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
