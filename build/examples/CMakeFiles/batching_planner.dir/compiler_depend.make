# Empty compiler generated dependencies file for batching_planner.
# This may be replaced when dependencies are built.
