file(REMOVE_RECURSE
  "CMakeFiles/batching_planner.dir/batching_planner.cpp.o"
  "CMakeFiles/batching_planner.dir/batching_planner.cpp.o.d"
  "batching_planner"
  "batching_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batching_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
