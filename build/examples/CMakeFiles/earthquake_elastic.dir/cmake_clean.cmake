file(REMOVE_RECURSE
  "CMakeFiles/earthquake_elastic.dir/earthquake_elastic.cpp.o"
  "CMakeFiles/earthquake_elastic.dir/earthquake_elastic.cpp.o.d"
  "earthquake_elastic"
  "earthquake_elastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/earthquake_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
