# Empty compiler generated dependencies file for earthquake_elastic.
# This may be replaced when dependencies are built.
