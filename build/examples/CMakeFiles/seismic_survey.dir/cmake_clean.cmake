file(REMOVE_RECURSE
  "CMakeFiles/seismic_survey.dir/seismic_survey.cpp.o"
  "CMakeFiles/seismic_survey.dir/seismic_survey.cpp.o.d"
  "seismic_survey"
  "seismic_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seismic_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
