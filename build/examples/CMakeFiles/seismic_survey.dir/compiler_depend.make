# Empty compiler generated dependencies file for seismic_survey.
# This may be replaced when dependencies are built.
