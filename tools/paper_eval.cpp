// paper_eval — one-command paper-evaluation matrix driver.
//
// Enumerates a declarative scenario matrix (paper benchmark x chip
// capacity through the estimator/GPU stack, plus functional-simulation
// cells across physics x expansion x boundary x materials x residency
// window x execution tier), runs every cell, prints Fig. 11/12-style
// performance and energy tables, and writes a machine-readable JSON
// report. With --baseline it diffs the run against a committed report
// (EXPERIMENTS_matrix.json) cell by cell — labels and field hashes
// exactly, metrics within a relative tolerance — and exits non-zero on
// any regression, which is the CI gate.
//
// Usage:
//   paper_eval [--matrix reduced|full] [--baseline FILE] [--fail-above=R]
//              [--update-baseline] [--out FILE] [--tables FILE]
//              [--threads N] [--filter SUBSTR] [--list]
//
// --fail-above=R is the maximum relative deviation per metric (default
// 1e-6 — the metrics are model outputs, not wall clock, so they are
// reproducible to FP precision). --update-baseline merges the run into
// the --baseline file instead of gating against it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "eval/matrix.h"
#include "eval/report.h"
#include "eval/runner.h"

using namespace wavepim;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: paper_eval [options]\n"
      "  --matrix reduced|full  scenario matrix to run (default: reduced)\n"
      "  --baseline FILE        diff the run against a committed report\n"
      "                         and exit 1 on any cell regression\n"
      "  --fail-above=R         max relative deviation per metric\n"
      "                         (default 1e-6)\n"
      "  --update-baseline      write/merge the run into the --baseline\n"
      "                         file instead of gating against it\n"
      "  --out FILE             write the JSON report\n"
      "  --tables FILE          write the ASCII tables (also printed)\n"
      "  --threads N            simulator worker threads (default: auto)\n"
      "  --filter SUBSTR        only run scenarios whose id contains this\n"
      "  --list                 print the scenario ids and exit\n");
  return 2;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

struct Args {
  eval::MatrixKind matrix = eval::MatrixKind::Reduced;
  std::string baseline;
  std::string out;
  std::string tables;
  std::string filter;
  double fail_above = 1e-6;
  bool update_baseline = false;
  bool list = false;
};

/// Accepts both `--flag value` and `--flag=value` spellings.
const char* arg_value(int argc, char** argv, int& i, const char* flag) {
  const std::size_t len = std::strlen(flag);
  if (std::strncmp(argv[i], flag, len) != 0) {
    return nullptr;
  }
  if (argv[i][len] == '=') {
    return argv[i] + len + 1;
  }
  if (argv[i][len] == '\0' && i + 1 < argc) {
    return argv[++i];
  }
  return nullptr;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list") == 0) {
      args.list = true;
    } else if (std::strcmp(argv[i], "--update-baseline") == 0) {
      args.update_baseline = true;
    } else if (const char* v = arg_value(argc, argv, i, "--matrix")) {
      if (!eval::parse_matrix(v, args.matrix)) {
        std::fprintf(stderr, "error: unknown matrix '%s'\n", v);
        return false;
      }
    } else if (const char* v = arg_value(argc, argv, i, "--baseline")) {
      args.baseline = v;
    } else if (const char* v = arg_value(argc, argv, i, "--out")) {
      args.out = v;
    } else if (const char* v = arg_value(argc, argv, i, "--tables")) {
      args.tables = v;
    } else if (const char* v = arg_value(argc, argv, i, "--filter")) {
      args.filter = v;
    } else if (const char* v = arg_value(argc, argv, i, "--fail-above")) {
      args.fail_above = std::strtod(v, nullptr);
      if (!(args.fail_above > 0.0)) {
        std::fprintf(stderr,
                     "error: --fail-above wants a positive deviation\n");
        return false;
      }
    } else if (const char* v = arg_value(argc, argv, i, "--threads")) {
      const std::size_t n = ThreadPool::parse_thread_count(v);
      if (n == 0) {
        std::fprintf(stderr, "error: --threads wants a positive integer\n");
        return false;
      }
      ThreadPool::set_global_threads(n);
    } else {
      std::fprintf(stderr, "error: unknown option '%s'\n", argv[i]);
      return false;
    }
  }
  if (args.update_baseline && args.baseline.empty()) {
    std::fprintf(stderr, "error: --update-baseline needs --baseline FILE\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    return usage();
  }

  std::vector<eval::Scenario> scenarios = eval::build_matrix(args.matrix);
  if (!args.filter.empty()) {
    std::vector<eval::Scenario> filtered;
    for (const auto& s : scenarios) {
      if (s.id().find(args.filter) != std::string::npos) {
        filtered.push_back(s);
      }
    }
    scenarios = std::move(filtered);
  }
  if (args.list) {
    for (const auto& s : scenarios) {
      std::printf("%s\n", s.id().c_str());
    }
    return 0;
  }
  if (scenarios.empty()) {
    std::fprintf(stderr, "error: no scenarios match '%s'\n",
                 args.filter.c_str());
    return 2;
  }

  try {
    eval::RunOptions options;
    options.progress = [](const eval::Scenario& s) {
      std::printf("  running %s\n", s.id().c_str());
      std::fflush(stdout);
    };
    std::printf("paper_eval: %s matrix, %zu scenario(s)\n",
                eval::to_string(args.matrix), scenarios.size());
    const eval::MatrixResult result =
        eval::run_matrix(args.matrix, scenarios, options);

    const std::string tables = eval::render_tables(result);
    std::printf("\n%s", tables.c_str());
    if (!args.tables.empty() && !write_file(args.tables, tables)) {
      std::fprintf(stderr, "error: could not write %s\n",
                   args.tables.c_str());
      return 1;
    }

    const json::Value report = eval::report_to_json(result);
    if (!args.out.empty() &&
        !write_file(args.out, json::dump(report, 1) + "\n")) {
      std::fprintf(stderr, "error: could not write %s\n", args.out.c_str());
      return 1;
    }

    int failures = 0;
    for (const auto& claim : result.claims) {
      if (!claim.pass) {
        ++failures;
      }
    }
    if (failures > 0) {
      std::fprintf(stderr, "error: %d shape claim(s) FAILED\n", failures);
    }

    if (!args.baseline.empty()) {
      const auto text = read_file(args.baseline);
      if (args.update_baseline) {
        std::optional<json::Value> existing;
        if (text.has_value()) {
          existing = json::parse(*text);
        }
        const json::Value merged = eval::merge_baseline(
            existing.has_value() ? &*existing : nullptr, report);
        if (!write_file(args.baseline, json::dump(merged, 1) + "\n")) {
          std::fprintf(stderr, "error: could not write %s\n",
                       args.baseline.c_str());
          return 1;
        }
        std::printf("baseline %s updated (%zu cell(s) in file)\n",
                    args.baseline.c_str(),
                    merged.find("cells")->as_array().size());
      } else {
        if (!text.has_value()) {
          std::fprintf(stderr, "error: cannot open baseline %s\n",
                       args.baseline.c_str());
          return 1;
        }
        const json::Value baseline = json::parse(*text);
        const eval::DiffResult diff = eval::diff_reports(
            baseline, report, {.tolerance = args.fail_above});
        std::printf("\n== Baseline comparison (%s) ==\n\n%s",
                    args.baseline.c_str(), diff.table.c_str());
        if (!diff.ok()) {
          ++failures;
        }
      }
    }
    return failures > 0 ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
