// check_trace — validates a Chrome trace-event JSON file produced by
// --trace: the document parses, traceEvents is a well-formed array,
// Begin/End events balance per thread, and the expected simulator spans
// are present. CI's trace lane runs it against quickstart --trace output
// on every execution tier.
//
// Usage: check_trace <trace.json> [required-name ...]
// With no explicit list, the default simulator span set is required. An
// explicit required name is satisfied by a span *or* a counter of that
// name, so CI lanes can pin counter families (e.g. the cycle net
// backend's net.link.utilization / net.link.stall_cycles /
// net.link.queue_depth) alongside spans.
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"

using namespace wavepim;

namespace {

/// Spans every quickstart run must contain, on any execution tier.
/// batch.load/batch.store bracket the schedule's Load/Store steps even
/// when fully resident; hbm.stage only appears on batched (capped-chip)
/// runs, so CI's batched lane requires it explicitly.
const char* const kDefaultRequiredSpans[] = {
    "pim.step",      "pim.rk_stage",      "pim.volume",
    "pim.flux",      "pim.integration",   "pim.settle",
    "pim.drain_phase", "pim.drain_network",
    "batch.load",    "batch.store",
    "pim.load_state", "pim.read_state",
    "dg.step",       "dg.rk_stage",       "dg.volume",
    "dg.flux",       "net.schedule",      "pool.parallel_for",
};

/// Spans every wavepim_serve trace must contain (detected by any
/// `service.*` event): the scheduler's run/bind/quantum/complete cycle
/// plus the tenant simulations underneath. No dg.* here — the service
/// runs the PIM path only.
const char* const kServiceRequiredSpans[] = {
    "service.run",  "service.bind",   "service.quantum",
    "service.complete", "pim.step",   "pim.load_state",
    "pim.read_state",
};

/// Counters the service summary is built from.
const char* const kServiceRequiredCounters[] = {
    "service.queue_depth", "service.jobs", "service.chip_utilization",
};

int fail(const std::string& message) {
  std::fprintf(stderr, "check_trace: FAIL: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: check_trace <trace.json> [span ...]\n");
    return 2;
  }

  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    return fail(std::string("cannot open ") + argv[1]);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  json::Value doc;
  try {
    doc = json::parse(text);
  } catch (const Error& e) {
    return fail(std::string("invalid JSON: ") + e.what());
  }

  if (!doc.is_object()) {
    return fail("top level is not an object");
  }
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("missing traceEvents array");
  }

  // Walk the events: every entry needs name/ph/ts/pid/tid, B/E must
  // balance per thread (and match names LIFO), and counters need args.
  std::map<double, std::vector<std::string>> open_spans;  // tid -> stack
  std::set<std::string> seen_spans;
  std::set<std::string> seen_counters;
  bool service_trace = false;
  std::size_t num_events = 0;
  for (const auto& event : events->as_array()) {
    if (!event.is_object()) {
      return fail("traceEvents entry is not an object");
    }
    const json::Value* name = event.find("name");
    const json::Value* ph = event.find("ph");
    if (name == nullptr || !name->is_string() || ph == nullptr ||
        !ph->is_string()) {
      return fail("event without string name/ph");
    }
    const std::string& phase = ph->as_string();
    if (phase == "M") {
      continue;  // metadata carries no ts/tid
    }
    const json::Value* ts = event.find("ts");
    const json::Value* pid = event.find("pid");
    const json::Value* tid = event.find("tid");
    if (ts == nullptr || !ts->is_number() || pid == nullptr ||
        !pid->is_number() || tid == nullptr || !tid->is_number()) {
      return fail("event " + name->as_string() + " missing ts/pid/tid");
    }
    ++num_events;
    if (name->as_string().rfind("service.", 0) == 0) {
      service_trace = true;
    }
    if (phase == "B") {
      open_spans[tid->as_number()].push_back(name->as_string());
      seen_spans.insert(name->as_string());
    } else if (phase == "E") {
      auto& stack = open_spans[tid->as_number()];
      if (stack.empty()) {
        return fail("unmatched E event for " + name->as_string());
      }
      if (stack.back() != name->as_string()) {
        return fail("E event " + name->as_string() +
                    " closes span " + stack.back());
      }
      stack.pop_back();
    } else if (phase == "C") {
      const json::Value* args = event.find("args");
      if (args == nullptr || !args->is_object() ||
          args->as_object().empty()) {
        return fail("counter " + name->as_string() + " without args");
      }
      seen_counters.insert(name->as_string());
    } else if (phase != "i") {
      return fail("unknown phase '" + phase + "'");
    }
  }
  for (const auto& [tid, stack] : open_spans) {
    if (!stack.empty()) {
      return fail("span " + stack.back() + " left open on tid " +
                  std::to_string(static_cast<long long>(tid)));
    }
  }
  if (num_events == 0) {
    return fail("trace contains no events");
  }

  std::vector<std::string> required;
  if (argc > 2) {
    // Explicit names: a span or a counter of that name satisfies it.
    for (int i = 2; i < argc; ++i) {
      if (seen_spans.count(argv[i]) == 0 && seen_counters.count(argv[i]) == 0) {
        return fail(std::string("required span or counter ") + argv[i] +
                    " not present");
      }
    }
    std::printf("check_trace: OK: %zu events, %zu distinct spans in %s\n",
                num_events, seen_spans.size(), argv[1]);
    return 0;
  }
  if (service_trace) {
    // A scheduler trace: require the service family (and its summary
    // counters) instead of the solo-run dg/quickstart span set.
    required.assign(std::begin(kServiceRequiredSpans),
                    std::end(kServiceRequiredSpans));
    for (const char* counter : kServiceRequiredCounters) {
      if (seen_counters.count(counter) == 0) {
        return fail(std::string("required counter ") + counter +
                    " not present");
      }
    }
  } else {
    required.assign(std::begin(kDefaultRequiredSpans),
                    std::end(kDefaultRequiredSpans));
  }
  for (const auto& span : required) {
    if (seen_spans.count(span) == 0) {
      return fail("required span " + span + " not present");
    }
  }

  std::printf("check_trace: OK: %zu events, %zu distinct spans in %s\n",
              num_events, seen_spans.size(), argv[1]);
  return 0;
}
