// wavepim — command-line front end to the Wave-PIM library.
//
// Subcommands:
//   compare  <physics> <level> [steps]        Fig. 11/12-style grid
//   csv      <physics> <level> [steps]        same grid as CSV
//   estimate <physics> <level> <chip>         per-step PIM breakdown
//   schedule <physics> <level> <chip>         batched flux schedule (Fig. 7)
//   configs                                    Table 5 matrix
//   validate                                   bit-true PIM-vs-CPU check
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/parallel.h"
#include "common/statistics.h"
#include "common/table.h"
#include "common/trace_report.h"
#include "core/report.h"
#include "core/wavepim.h"
#include "dg/solver.h"
#include "dg/sources.h"
#include "mapping/batch_schedule.h"
#include "mapping/simulation.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace wavepim;

namespace {

// --chip-blocks cap, applied to every chip a subcommand selects
// (0 = uncapped).
std::uint32_t g_chip_block_limit = 0;

// --topology fabric, applied to every chip a subcommand selects (the
// compare/csv grids project their PIM rows on it too).
pim::Topology g_topology = pim::Topology::HTree;

int usage() {
  std::fprintf(
      stderr,
      "usage: wavepim [global options] <command> [args]\n"
      "  compare  <physics> <level> [steps]   platform comparison grid\n"
      "  csv      <physics> <level> [steps]   grid as CSV (normalized time)\n"
      "  estimate <physics> <level> <chip>    PIM per-step breakdown\n"
      "  schedule <physics> <level> <chip>    batched flux schedule\n"
      "  configs                              Table 5 configuration matrix\n"
      "  validate                             bit-true PIM-vs-CPU check\n"
      "physics: acoustic | elastic-central | elastic-riemann\n"
      "chip:    512MB | 2GB | 8GB | 16GB\n"
      "global options (accepted by every command, before the command):\n"
      "--threads N: worker threads for the CPU solver and the functional\n"
      "             PIM simulator (default: WAVEPIM_NUM_THREADS or the\n"
      "             hardware); results are identical for any count\n"
      "--exec=emit|replay|compiled|word: execution tier of the\n"
      "             functional PIM simulator (default: WAVEPIM_EXEC, else\n"
      "             replay). emit re-lowers per stage, replay replays the\n"
      "             cached class streams, compiled runs the resolved\n"
      "             execution plan, word runs the vectorized word-level\n"
      "             kernels; fields and cost reports are bit-identical\n"
      "             across all four\n"
      "--witness=N: word tier only: re-execute every Nth phase\n"
      "             application bit-serially on shadow blocks and compare\n"
      "             full-state hashes (1 = every phase, 0/default = off)\n"
      "--trace=FILE: record a structured trace of the run and write it\n"
      "             as Chrome trace-event JSON to FILE (open it in\n"
      "             Perfetto or chrome://tracing); also prints a\n"
      "             per-span summary table after the command\n"
      "--program-cache=on|off: shape-class program cache for the\n"
      "             functional PIM simulator (default: on, or\n"
      "             WAVEPIM_PROGRAM_CACHE); results are identical either\n"
      "             way — off re-lowers every element each stage for A/B\n"
      "             timing\n"
      "--chip-blocks=N: cap the selected chip at N PIM blocks. Problems\n"
      "             that no longer fit run through the batched residency\n"
      "             window (estimate/schedule report the windowed Fig. 7\n"
      "             schedule); fields stay bit-identical, staging traffic\n"
      "             lands in the hbm cost channel\n"
      "--topology=htree|bus: interconnect fabric of every selected chip\n"
      "             (default: htree, the paper's Table 3 switch tree);\n"
      "             compare/csv project their PIM rows on it too\n"
      "--net-backend=analytic|cycle: interconnect timing backend\n"
      "             (default: WAVEPIM_NET_BACKEND, else analytic).\n"
      "             Pricing-only: the network cost channel moves, fields\n"
      "             and the compute/hbm ledgers never do; cycle models\n"
      "             per-link FIFO queuing and exports net.link.* trace\n"
      "             counters\n");
  return 2;
}

bool parse_kind(const char* s, dg::ProblemKind& kind) {
  if (std::strcmp(s, "acoustic") == 0) {
    kind = dg::ProblemKind::Acoustic;
  } else if (std::strcmp(s, "elastic-central") == 0) {
    kind = dg::ProblemKind::ElasticCentral;
  } else if (std::strcmp(s, "elastic-riemann") == 0) {
    kind = dg::ProblemKind::ElasticRiemann;
  } else {
    return false;
  }
  return true;
}

bool parse_chip(const char* s, pim::ChipConfig& chip) {
  for (const auto& c : pim::standard_chips()) {
    if (c.name == std::string("PIM-") + s) {
      chip = c;
      chip.block_limit = g_chip_block_limit;
      chip.topology = g_topology;
      return true;
    }
  }
  return false;
}

int cmd_compare(const mapping::Problem& problem, std::uint64_t steps,
                bool as_csv) {
  const auto rows = core::System::compare_all(problem, steps, g_topology);
  if (as_csv) {
    const std::vector<std::vector<core::ComparisonRow>> grids = {rows};
    std::fputs(core::to_csv({problem.name()}, grids, false).c_str(), stdout);
    return 0;
  }
  std::printf("%s over %llu steps (baseline: %s)\n\n", problem.name().c_str(),
              static_cast<unsigned long long>(steps),
              rows[0].platform.c_str());
  TextTable table({"Platform", "Step time", "Total time", "Energy",
                   "Speedup", "Energy saving"});
  for (const auto& row : rows) {
    table.add_row({row.platform, format_time(row.step_time),
                   format_time(row.total_time),
                   format_energy(row.total_energy),
                   TextTable::ratio(row.speedup),
                   TextTable::ratio(row.energy_saving)});
  }
  table.print();
  return 0;
}

int cmd_estimate(const mapping::Problem& problem,
                 const pim::ChipConfig& chip) {
  mapping::Estimator estimator(problem, chip);
  const auto& est = estimator.estimate();
  std::printf("%s on %s: config %s, %u batch(es)\n\n", problem.name().c_str(),
              chip.name.c_str(), est.config.label().c_str(),
              est.config.num_batches);
  TextTable seg({"Stage segment", "Duration"});
  seg.add_row({"volume", format_time(est.segments.volume)});
  seg.add_row({"host preprocess", format_time(est.segments.host_preprocess)});
  seg.add_row({"fetch(-1)", format_time(est.segments.fetch_minus)});
  seg.add_row({"flux(-1)", format_time(est.segments.compute_minus)});
  seg.add_row({"fetch(+1)", format_time(est.segments.fetch_plus)});
  seg.add_row({"flux(+1)", format_time(est.segments.compute_plus)});
  seg.add_row({"integration", format_time(est.segments.integration)});
  seg.print();
  std::printf(
      "\nstage: %s pipelined (%s serial)  |  step: %s  |  HBM: %s/step\n"
      "energy/step: %s (static %s, compute %s, network %s)\n",
      format_time(est.stage_schedule.total).c_str(),
      format_time(est.stage_schedule_serial.total).c_str(),
      format_time(est.step_time).c_str(),
      format_bytes(est.hbm_bytes_per_step).c_str(),
      format_energy(est.step_energy).c_str(),
      format_energy(est.static_energy).c_str(),
      format_energy(est.dynamic_energy).c_str(),
      format_energy(est.network_energy).c_str());
  return 0;
}

int cmd_schedule(const mapping::Problem& problem,
                 const pim::ChipConfig& chip) {
  const auto config = mapping::choose_config(problem, chip);
  const auto schedule = mapping::build_flux_batch_schedule(problem, config);
  std::printf("%s on %s: %u slices, window %u, peak resident %u\n",
              problem.name().c_str(), chip.name.c_str(), schedule.num_slices,
              schedule.resident_slices, schedule.peak_resident());
  std::printf("staging per stage: %u slice loads, %u slice stores%s\n\n",
              schedule.total_loads(), schedule.total_stores(),
              schedule.resident_slices >= schedule.num_slices
                  ? " (fully resident: state never leaves the chip)"
                  : "");
  for (std::size_t i = 0; i < schedule.steps.size(); ++i) {
    std::printf("%3zu. %s\n", i + 1, schedule.steps[i].describe().c_str());
  }
  return 0;
}

int cmd_configs() {
  TextTable table({"Benchmark", "512MB", "2GB", "8GB", "16GB"});
  for (const auto& problem : mapping::paper_benchmarks()) {
    std::vector<std::string> cells = {problem.name()};
    for (const auto& chip : pim::standard_chips()) {
      try {
        cells.push_back(mapping::choose_config(problem, chip).label());
      } catch (const CapacityError&) {
        cells.push_back("-");
      }
    }
    table.add_row(cells);
  }
  table.print();
  return 0;
}

int cmd_validate() {
  std::printf("Bit-true PIM-vs-CPU validation (level 1, order 2):\n");
  struct Case {
    dg::ProblemKind kind;
    mapping::ExpansionMode mode;
  };
  const Case cases[] = {
      {dg::ProblemKind::Acoustic, mapping::ExpansionMode::None},
      {dg::ProblemKind::Acoustic, mapping::ExpansionMode::Acoustic4},
      {dg::ProblemKind::ElasticCentral, mapping::ExpansionMode::Elastic3},
      {dg::ProblemKind::ElasticRiemann, mapping::ExpansionMode::Elastic9},
  };
  bool ok = true;
  for (const auto& c : cases) {
    const mapping::Problem problem{c.kind, 1, 3};
    mesh::StructuredMesh mesh(1, 1.0, mesh::Boundary::Periodic);
    double err = 0.0;
    if (dg::is_elastic(c.kind)) {
      dg::MaterialField<dg::ElasticMaterial> mats(mesh.num_elements(),
                                                  {2.0, 1.0, 1.0});
      dg::ElasticSolver cpu(mesh, std::move(mats),
                            {.n1d = 3, .flux = dg::flux_of(c.kind)});
      init_elastic_plane_p_wave(cpu, 1);
      pim::ChipConfig chip = pim::chip_512mb();
      chip.topology = g_topology;
      mapping::PimSimulation pim(problem, c.mode, chip);
      pim.load_state(cpu.state());
      const double dt = cpu.stable_dt();
      for (int i = 0; i < 5; ++i) {
        cpu.step(dt);
        pim.step(dt);
      }
      err = relative_linf_error(pim.read_state().flat(), cpu.state().flat());
    } else {
      dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(), {});
      dg::AcousticSolver cpu(mesh, std::move(mats),
                             {.n1d = 3, .flux = dg::flux_of(c.kind)});
      init_acoustic_plane_wave(cpu, mesh::Axis::X, 1);
      pim::ChipConfig chip = pim::chip_512mb();
      chip.topology = g_topology;
      mapping::PimSimulation pim(problem, c.mode, chip);
      pim.load_state(cpu.state());
      const double dt = cpu.stable_dt();
      for (int i = 0; i < 5; ++i) {
        cpu.step(dt);
        pim.step(dt);
      }
      err = relative_linf_error(pim.read_state().flat(), cpu.state().flat());
    }
    const bool pass = err < 1e-4;
    ok = ok && pass;
    std::printf("  [%s] %s / %s: rel Linf %.2e\n", pass ? "PASS" : "FAIL",
                dg::to_string(c.kind), mapping::to_string(c.mode), err);
  }
  return ok ? 0 : 1;
}

int run_command(int argc, char** argv);

}  // namespace

int main(int argc, char** argv) {
  // Global options precede the subcommand. --threads pins the global pool
  // (must happen before any library call spins it up).
  std::string trace_path;
  int arg = 1;
  while (arg < argc && argv[arg][0] == '-') {
    if (std::strcmp(argv[arg], "--threads") == 0 && arg + 1 < argc) {
      const std::size_t n = ThreadPool::parse_thread_count(argv[arg + 1]);
      if (n == 0) {
        std::fprintf(stderr, "error: --threads wants a positive integer\n");
        return 2;
      }
      ThreadPool::set_global_threads(n);
      arg += 2;
    } else if (std::strcmp(argv[arg], "--program-cache=on") == 0 ||
               std::strcmp(argv[arg], "--program-cache=off") == 0) {
      // Routed through the environment so every simulation the
      // subcommand constructs picks it up as its default.
      const bool on = std::strcmp(argv[arg], "--program-cache=on") == 0;
      setenv("WAVEPIM_PROGRAM_CACHE", on ? "1" : "0", /*overwrite=*/1);
      arg += 1;
    } else if (std::strncmp(argv[arg], "--exec=", 7) == 0) {
      const char* tier = argv[arg] + 7;
      if (std::strcmp(tier, "emit") != 0 && std::strcmp(tier, "replay") != 0 &&
          std::strcmp(tier, "compiled") != 0 &&
          std::strcmp(tier, "word") != 0) {
        std::fprintf(stderr,
                     "error: --exec wants emit, replay, compiled or word\n");
        return 2;
      }
      // Routed through the environment so every simulation the
      // subcommand constructs picks it up as its default tier.
      setenv("WAVEPIM_EXEC", tier, /*overwrite=*/1);
      arg += 1;
    } else if (std::strncmp(argv[arg], "--witness=", 10) == 0) {
      char* end = nullptr;
      (void)std::strtoul(argv[arg] + 10, &end, 10);
      if (end == argv[arg] + 10 || *end != '\0') {
        std::fprintf(stderr, "error: --witness wants a cadence (0 = off)\n");
        return 2;
      }
      // Routed through the environment like --exec; only the word tier
      // reads it.
      setenv("WAVEPIM_WITNESS", argv[arg] + 10, /*overwrite=*/1);
      arg += 1;
    } else if (std::strncmp(argv[arg], "--chip-blocks=", 14) == 0) {
      const std::uint32_t n = static_cast<std::uint32_t>(
          std::strtoul(argv[arg] + 14, nullptr, 10));
      if (n == 0) {
        std::fprintf(stderr,
                     "error: --chip-blocks wants a positive block count\n");
        return 2;
      }
      g_chip_block_limit = n;
      arg += 1;
    } else if (std::strncmp(argv[arg], "--topology=", 11) == 0) {
      if (!pim::parse_topology(argv[arg] + 11, g_topology)) {
        std::fprintf(stderr, "error: --topology wants htree or bus\n");
        return 2;
      }
      arg += 1;
    } else if (std::strncmp(argv[arg], "--net-backend=", 14) == 0) {
      // Validated here, routed through the environment like --exec so
      // every chip the subcommand constructs defaults to it.
      pim::NetBackendKind backend{};
      if (!pim::parse_net_backend(argv[arg] + 14, backend)) {
        std::fprintf(stderr, "error: --net-backend wants analytic or cycle\n");
        return 2;
      }
      setenv("WAVEPIM_NET_BACKEND", argv[arg] + 14, /*overwrite=*/1);
      arg += 1;
    } else if (std::strncmp(argv[arg], "--trace=", 8) == 0) {
      trace_path = argv[arg] + 8;
      if (trace_path.empty()) {
        std::fprintf(stderr, "error: --trace wants an output path\n");
        return 2;
      }
      arg += 1;
    } else {
      return usage();
    }
  }
  argc -= arg - 1;
  argv += arg - 1;
  if (argc < 2) {
    return usage();
  }

  if (trace_path.empty()) {
    return run_command(argc, argv);
  }
  trace::set_enabled(true);
  const int rc = run_command(argc, argv);
  trace::set_enabled(false);
  if (!trace::write_chrome_trace(trace_path)) {
    std::fprintf(stderr, "error: could not write trace to %s\n",
                 trace_path.c_str());
    return rc != 0 ? rc : 1;
  }
  std::printf("\n");
  print_trace_summary(trace::summarize());
  std::printf("trace written to %s\n", trace_path.c_str());
  return rc;
}

namespace {

int run_command(int argc, char** argv) {
  const std::string cmd = argv[1];
  try {
    if (cmd == "configs") {
      return cmd_configs();
    }
    if (cmd == "validate") {
      return cmd_validate();
    }
    if (cmd == "compare" || cmd == "csv") {
      if (argc < 4) {
        return usage();
      }
      dg::ProblemKind kind;
      if (!parse_kind(argv[2], kind)) {
        return usage();
      }
      const mapping::Problem problem{kind, std::atoi(argv[3]), 8};
      const std::uint64_t steps = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                           : 1024;
      return cmd_compare(problem, steps, cmd == "csv");
    }
    if (cmd == "estimate" || cmd == "schedule") {
      if (argc < 5) {
        return usage();
      }
      dg::ProblemKind kind;
      pim::ChipConfig chip;
      if (!parse_kind(argv[2], kind) || !parse_chip(argv[4], chip)) {
        return usage();
      }
      const mapping::Problem problem{kind, std::atoi(argv[3]), 8};
      return cmd == "estimate" ? cmd_estimate(problem, chip)
                               : cmd_schedule(problem, chip);
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}

}  // namespace
