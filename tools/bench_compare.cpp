// bench_compare — compares two google-benchmark JSON reports (the
// committed BENCH_micro_pim.json baseline vs a fresh run) and reports the
// per-benchmark real-time ratio. CI uses it to catch perf regressions;
// --fail-above makes a regression beyond the threshold fail the build.
//
// Usage: bench_compare <baseline.json> <current.json> [--fail-above=R]
//                      [--markdown]
// Ratio is current/baseline real_time, normalised by each report's
// time_unit; Delta is the same comparison as a signed percentage
// (negative = faster than baseline). Without --fail-above the tool only
// reports (exit 0), which tolerates noisy shared runners. --markdown
// renders the table as compact GitHub-flavored markdown for CI step
// summaries; it does not change the exit-code contract.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/json.h"
#include "common/table.h"

using namespace wavepim;

namespace {

/// name -> real_time in nanoseconds.
using BenchTimes = std::map<std::string, double>;

double unit_to_ns(const std::string& unit) {
  if (unit == "ns") {
    return 1.0;
  }
  if (unit == "us") {
    return 1e3;
  }
  if (unit == "ms") {
    return 1e6;
  }
  if (unit == "s") {
    return 1e9;
  }
  return 1.0;
}

BenchTimes load_report(const char* path) {
  std::ifstream in(path, std::ios::binary);
  WAVEPIM_REQUIRE(static_cast<bool>(in),
                  std::string("cannot open ") + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const json::Value doc = json::parse(buffer.str());
  const json::Value* benchmarks = doc.find("benchmarks");
  WAVEPIM_REQUIRE(benchmarks != nullptr && benchmarks->is_array(),
                  std::string(path) + " has no benchmarks array");
  BenchTimes times;
  for (const auto& b : benchmarks->as_array()) {
    const json::Value* name = b.find("name");
    const json::Value* real_time = b.find("real_time");
    const json::Value* unit = b.find("time_unit");
    if (name == nullptr || !name->is_string() || real_time == nullptr ||
        !real_time->is_number()) {
      continue;  // aggregate/error rows
    }
    const double scale =
        unit != nullptr && unit->is_string() ? unit_to_ns(unit->as_string())
                                             : 1.0;
    times[name->as_string()] = real_time->as_number() * scale;
  }
  return times;
}

std::string format_ns(double ns) {
  char buf[32];
  if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  }
  return buf;
}

std::string format_delta(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", (ratio - 1.0) * 100.0);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  double fail_above = 0.0;  // 0 = report-only
  bool markdown = false;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--markdown") == 0) {
      markdown = true;
    } else if (std::strncmp(argv[i], "--fail-above=", 13) == 0) {
      fail_above = std::strtod(argv[i] + 13, nullptr);
      if (!(fail_above > 1.0)) {
        std::fprintf(stderr,
                     "error: --fail-above wants a ratio above 1.0\n");
        return 2;
      }
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <current.json> "
                 "[--fail-above=R] [--markdown]\n");
    return 2;
  }

  try {
    const BenchTimes baseline = load_report(paths[0]);
    const BenchTimes current = load_report(paths[1]);

    TextTable table({"Benchmark", "Baseline", "Current", "Delta", "Ratio"});
    int regressions = 0;
    double worst = 0.0;
    for (const auto& [name, base_ns] : baseline) {
      const auto it = current.find(name);
      if (it == current.end()) {
        table.add_row({name, format_ns(base_ns), "(missing)", "-", "-"});
        continue;
      }
      const double ratio = base_ns > 0.0 ? it->second / base_ns : 0.0;
      worst = std::max(worst, ratio);
      const bool regressed = fail_above > 1.0 && ratio > fail_above;
      regressions += regressed ? 1 : 0;
      char ratio_text[32];
      std::snprintf(ratio_text, sizeof(ratio_text), "%.2fx%s", ratio,
                    regressed ? (markdown ? " **!**" : " !") : "");
      table.add_row({name, format_ns(base_ns), format_ns(it->second),
                     format_delta(ratio), ratio_text});
    }
    for (const auto& [name, cur_ns] : current) {
      if (baseline.find(name) == baseline.end()) {
        table.add_row({name, "(new)", format_ns(cur_ns), "-", "-"});
      }
    }
    if (markdown) {
      std::fputs(table.to_markdown().c_str(), stdout);
      std::printf("\n**worst ratio %.2fx**", worst);
    } else {
      table.print();
      std::printf("worst ratio %.2fx", worst);
    }
    if (fail_above > 1.0) {
      std::printf(" (threshold %.2fx, %d regression(s))", fail_above,
                  regressions);
    }
    std::printf("\n");
    return regressions > 0 ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
