// wavepim_serve — simulation-as-a-service front end: generates a
// seeded stream of heterogeneous wave-simulation jobs and multiplexes
// it over a pooled chip fleet with the chosen scheduling policy,
// reporting per-job latency percentiles, chip utilization and queue
// pressure. Every job's final field and cost ledgers are bit-identical
// to a solo run of the same job, whatever the policy or pool size.
//
// Usage: wavepim_serve [--chips=N] [--jobs=N] [--policy=fifo|srs|edf]
//                      [--seed=N] [--threads=N] [--max-steps=N]
//                      [--zero-step] [--trace=FILE]
//                      [--topology=htree|bus] [--net-backend=analytic|cycle]
//
// --topology / --net-backend configure every pooled chip's fabric and
// its timing backend. Both are pricing-only: job field hashes and the
// compute/HBM ledgers are bit-identical across all four combinations
// (pinned by the service slice of NetBackendConformance).
//
// --trace records the run (service.* spans and counters plus the tenant
// simulations underneath) and writes Chrome trace-event JSON.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/trace_report.h"
#include "common/units.h"
#include "service/chip_pool.h"
#include "service/job.h"
#include "service/scheduler.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace wavepim;

namespace {

bool parse_u32(const char* arg, const char* prefix, std::uint32_t& out) {
  const std::size_t len = std::strlen(prefix);
  if (std::strncmp(arg, prefix, len) != 0) {
    return false;
  }
  out = static_cast<std::uint32_t>(std::strtoul(arg + len, nullptr, 10));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  service::GeneratorOptions gen;
  service::ServiceOptions svc;
  std::uint32_t seed32 = 1;
  std::uint32_t threads32 = 1;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    std::uint32_t value = 0;
    if (parse_u32(argv[i], "--chips=", svc.num_chips) ||
        parse_u32(argv[i], "--jobs=", gen.num_jobs) ||
        parse_u32(argv[i], "--max-steps=", gen.max_steps)) {
      continue;
    }
    if (parse_u32(argv[i], "--seed=", seed32)) {
      gen.seed = seed32;
      continue;
    }
    if (parse_u32(argv[i], "--threads=", threads32)) {
      svc.threads = threads32;
      continue;
    }
    if (std::strncmp(argv[i], "--policy=", 9) == 0) {
      const auto policy = service::parse_policy(argv[i] + 9);
      if (!policy) {
        std::fprintf(stderr, "error: unknown policy '%s'\n", argv[i] + 9);
        return 2;
      }
      svc.policy = *policy;
      continue;
    }
    if (std::strcmp(argv[i], "--zero-step") == 0) {
      gen.zero_step_jobs = true;
      continue;
    }
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
      if (trace_path.empty()) {
        std::fprintf(stderr, "error: --trace wants an output path\n");
        return 2;
      }
      continue;
    }
    if (std::strncmp(argv[i], "--topology=", 11) == 0) {
      if (!pim::parse_topology(argv[i] + 11, svc.chip.topology)) {
        std::fprintf(stderr, "error: --topology wants htree or bus\n");
        return 2;
      }
      continue;
    }
    if (std::strncmp(argv[i], "--net-backend=", 14) == 0) {
      if (!pim::parse_net_backend(argv[i] + 14, svc.chip.net_backend)) {
        std::fprintf(stderr, "error: --net-backend wants analytic or cycle\n");
        return 2;
      }
      continue;
    }
    (void)value;
    std::fprintf(stderr,
                 "usage: wavepim_serve [--chips=N] [--jobs=N] "
                 "[--policy=fifo|srs|edf] [--seed=N] [--threads=N] "
                 "[--max-steps=N] [--zero-step] [--trace=FILE] "
                 "[--topology=htree|bus] [--net-backend=analytic|cycle]\n");
    return std::strcmp(argv[i], "--help") == 0 ? 0 : 2;
  }
  if (svc.num_chips == 0 || gen.num_jobs == 0) {
    std::fprintf(stderr, "error: --chips and --jobs must be positive\n");
    return 2;
  }

  if (!trace_path.empty()) {
    trace::set_enabled(true);
  }

  std::printf("Wave-PIM service: %u jobs (seed %llu) over %u chip(s), "
              "policy %s, %zu thread(s)/tenant, %s fabric (%s backend)\n\n",
              gen.num_jobs, static_cast<unsigned long long>(gen.seed),
              svc.num_chips, service::to_string(svc.policy), svc.threads,
              pim::to_string(svc.chip.topology),
              pim::to_string(svc.chip.net_backend));

  const auto specs = service::generate_jobs(gen);
  service::Scheduler scheduler(svc);
  const service::ServiceReport report = scheduler.run(specs);

  std::uint64_t missed_deadlines = 0;
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const auto& spec = specs[report.jobs[i].id];
    if (spec.deadline_s > 0.0 &&
        report.jobs[i].completion_s > spec.deadline_s) {
      ++missed_deadlines;
    }
  }

  std::printf("makespan          %s (trace clock)\n",
              format_time(seconds(report.makespan_s)).c_str());
  std::printf("job latency       p50 %s   p99 %s   mean %s\n",
              format_time(seconds(report.latency_p50_s)).c_str(),
              format_time(seconds(report.latency_p99_s)).c_str(),
              format_time(seconds(report.latency_mean_s)).c_str());
  std::printf("chip utilization  %.1f%%\n", 100.0 * report.chip_utilization);
  std::printf("max queue depth   %u\n", report.max_queue_depth);
  std::printf("preemptions       %llu\n",
              static_cast<unsigned long long>(report.preemptions));
  std::printf("missed deadlines  %llu\n",
              static_cast<unsigned long long>(missed_deadlines));
  std::printf("program bank      %llu classes lowered, %llu jobs reused one\n",
              static_cast<unsigned long long>(report.cache_builds),
              static_cast<unsigned long long>(report.cache_hits));
  std::printf("chip recycles     %llu\n",
              static_cast<unsigned long long>(report.chip_recycles));
  std::printf("network           %s serialized, %s on fabric "
              "(overlap %.2fx, %llu transfers, %llu words)\n",
              format_time(seconds(report.net.serial_s)).c_str(),
              format_time(seconds(report.net.time_s)).c_str(),
              report.net.overlap(),
              static_cast<unsigned long long>(report.net.transfers),
              static_cast<unsigned long long>(report.net.words));
  if (report.net.link_schedules > 0) {
    std::printf("link queuing      stall %s, max utilization %.1f%%, "
                "peak queue %llu\n",
                format_time(seconds(report.net.stall_s)).c_str(),
                100.0 * report.net.max_utilization,
                static_cast<unsigned long long>(report.net.peak_queue));
  }

  if (!trace_path.empty()) {
    trace::set_enabled(false);
    if (!trace::write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "error: could not write trace to %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::printf("\n");
    print_trace_summary(trace::summarize());
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  return 0;
}
