// Earthquake hazard scenario: elastic waves radiating from a buried
// source through a medium with a soft sedimentary basin, which locally
// amplifies ground motion. Compares the central and Riemann flux solvers
// (the paper's Elastic-Central / Elastic-Riemann benchmark pair) and
// shows the P/S wave split.
#include <cmath>
#include <cstdio>

#include "dg/solver.h"
#include "mapping/estimator.h"

using namespace wavepim;

namespace {

dg::ElasticSolver make_basin_solver(dg::FluxType flux) {
  const int level = 2;
  mesh::StructuredMesh mesh(level, 1.0, mesh::Boundary::Reflective);
  // Bedrock: cp = 2, cs = 1. Basin (top-center): half the wave speeds.
  dg::MaterialField<dg::ElasticMaterial> materials(
      mesh.num_elements(), {.lambda = 2.0, .mu = 1.0, .rho = 1.0});
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    const auto c = mesh.coords_of(e);
    const bool in_basin = c[1] == mesh.dim() - 1 && c[0] >= 1 && c[0] <= 2 &&
                          c[2] >= 1 && c[2] <= 2;
    if (in_basin) {
      materials.set(e, {.lambda = 0.5, .mu = 0.25, .rho = 1.3});
    }
  }
  return dg::ElasticSolver(mesh, std::move(materials),
                           {.n1d = 4, .flux = flux, .cfl = 0.5});
}

/// Injects a double-couple-like velocity perturbation at depth.
void inject_source(dg::ElasticSolver& solver) {
  const auto& ref = solver.reference();
  auto& u = solver.state();
  const double h = solver.mesh().element_size();
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    const auto corner =
        solver.mesh().corner_of(static_cast<mesh::ElementId>(e));
    for (int n = 0; n < ref.num_nodes(); ++n) {
      const auto xi = ref.coords_of(n);
      const double x = corner[0] + 0.5 * (xi[0] + 1.0) * h - 0.5;
      const double y = corner[1] + 0.5 * (xi[1] + 1.0) * h - 0.25;
      const double z = corner[2] + 0.5 * (xi[2] + 1.0) * h - 0.5;
      const double g = std::exp(-(x * x + y * y + z * z) / 0.01);
      u.value(e, dg::ElasticPhysics::Vx, n) += static_cast<float>(g * y);
      u.value(e, dg::ElasticPhysics::Vy, n) += static_cast<float>(g * x);
    }
  }
}

/// RMS velocity magnitude in the basin vs the surrounding surface.
void report_amplification(dg::ElasticSolver& solver, const char* label) {
  const auto& mesh = solver.mesh();
  const auto& ref = solver.reference();
  double basin = 0.0;
  double rock = 0.0;
  std::size_t basin_n = 0;
  std::size_t rock_n = 0;
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    const auto c = mesh.coords_of(e);
    if (c[1] != mesh.dim() - 1) {
      continue;  // surface layer only
    }
    const bool in_basin = c[0] >= 1 && c[0] <= 2 && c[2] >= 1 && c[2] <= 2;
    for (int n = 0; n < ref.num_nodes(); ++n) {
      double v2 = 0.0;
      for (std::size_t k = 0; k < 3; ++k) {
        const double v = solver.state().value(e, k, n);
        v2 += v * v;
      }
      (in_basin ? basin : rock) += v2;
      (in_basin ? basin_n : rock_n) += 1;
    }
  }
  const double basin_rms = std::sqrt(basin / basin_n);
  const double rock_rms = std::sqrt(rock / rock_n);
  std::printf("  %-18s surface RMS velocity: basin %.3e, bedrock %.3e "
              "(amplification %.2fx)\n",
              label, basin_rms, rock_rms, basin_rms / rock_rms);
}

}  // namespace

int main() {
  std::printf("Earthquake hazard example (elastic, soft basin)\n"
              "===============================================\n\n");

  for (dg::FluxType flux : {dg::FluxType::Central, dg::FluxType::Upwind}) {
    auto solver = make_basin_solver(flux);
    inject_source(solver);
    const double e0 = solver.total_energy();
    const double cp = 2.0;  // bedrock P speed
    // Run until the P front crosses half the domain.
    const double dt = solver.stable_dt();
    const int steps = static_cast<int>(0.35 / (cp * dt)) + 1;
    solver.run(steps, dt);
    std::printf("%s flux: %d steps, energy %.4e -> %.4e\n",
                dg::to_string(flux), steps, e0, solver.total_energy());
    report_amplification(solver, dg::to_string(flux));
  }

  std::printf("\nP and S wave speeds in the two media:\n");
  const dg::ElasticMaterial rock{.lambda = 2.0, .mu = 1.0, .rho = 1.0};
  const dg::ElasticMaterial basin{.lambda = 0.5, .mu = 0.25, .rho = 1.3};
  std::printf("  bedrock: cp = %.3f, cs = %.3f\n", rock.cp(), rock.cs());
  std::printf("  basin:   cp = %.3f, cs = %.3f\n", basin.cp(), basin.cs());

  // Deployment projection: which PIM configuration would run the paper's
  // Elastic-Riemann_5 production case, and how is it mapped?
  std::printf("\nMapping Elastic-Riemann_5 onto the PIM configurations:\n");
  for (const auto& chip : pim::standard_chips()) {
    mapping::Estimator est({dg::ProblemKind::ElasticRiemann, 5, 8}, chip);
    const auto& e = est.estimate();
    std::printf("  %-10s config %-6s batches %2u  step %s\n",
                chip.name.c_str(), e.config.label().c_str(),
                e.config.num_batches, format_time(e.step_time).c_str());
  }
  return 0;
}
