// Reverse-time imaging: the wave-equation building block of full-waveform
// inversion (the paper's §1 application driver). A forward simulation
// records a shot at surface receivers; injecting the time-reversed traces
// back into the medium refocuses the wavefield at the original source —
// demonstrating that the library's solver is accurate enough to use as an
// imaging engine, and projecting the imaging workload onto Wave-PIM.
#include <cmath>
#include <cstdio>

#include "dg/recorder.h"
#include "dg/solver.h"
#include "dg/sources.h"
#include "mapping/estimator.h"

using namespace wavepim;

namespace {

dg::AcousticSolver make_solver() {
  mesh::StructuredMesh mesh(2, 1.0, mesh::Boundary::Reflective);
  dg::MaterialField<dg::AcousticMaterial> mats(mesh.num_elements(),
                                               {.kappa = 1.0, .rho = 1.0});
  return dg::AcousticSolver(mesh, std::move(mats),
                            {.n1d = 4, .flux = dg::FluxType::Upwind,
                             .cfl = 0.5});
}

/// Peak |p| within a radius of the point vs everywhere else.
double focus_ratio(const dg::AcousticSolver& solver,
                   const std::array<double, 3>& point, double radius) {
  const auto& ref = solver.reference();
  const double h = solver.mesh().element_size();
  double inside = 0.0;
  double outside = 0.0;
  for (std::size_t e = 0; e < solver.state().num_elements(); ++e) {
    const auto corner =
        solver.mesh().corner_of(static_cast<mesh::ElementId>(e));
    for (int n = 0; n < ref.num_nodes(); ++n) {
      const auto xi = ref.coords_of(n);
      double d2 = 0.0;
      for (std::size_t d = 0; d < 3; ++d) {
        const double x = corner[d] + 0.5 * (xi[d] + 1.0) * h;
        d2 += (x - point[d]) * (x - point[d]);
      }
      const double p = std::fabs(
          solver.state().value(e, dg::AcousticPhysics::P, n));
      if (d2 < radius * radius) {
        inside = std::max(inside, p);
      } else {
        outside = std::max(outside, p);
      }
    }
  }
  return inside / std::max(outside, 1e-30);
}

}  // namespace

int main() {
  std::printf("Reverse-time imaging example\n============================\n\n");

  const std::array<double, 3> source_pos = {0.4, 0.5, 0.5};
  const int steps = 220;

  // --- Forward pass: shoot and record -----------------------------------
  auto forward = make_solver();
  dg::PointSource shot(forward, source_pos, /*peak_frequency=*/5.0,
                       /*delay=*/0.15, /*amplitude=*/1.0);
  forward.set_source([&shot](dg::Field& rhs, double t) { shot(rhs, t); });

  dg::Seismogram recording(forward.mesh(), forward.reference(),
                           dg::AcousticPhysics::P);
  for (double x = 0.125; x < 1.0; x += 0.25) {
    for (double z = 0.125; z < 1.0; z += 0.25) {
      recording.add_receiver({x, 0.95, z});  // surface array
    }
  }

  const double dt = forward.stable_dt();
  for (int s = 0; s < steps; ++s) {
    forward.step(dt);
    recording.record(forward.state());
  }
  std::printf("Forward pass: %d steps, %zu receivers, field energy %.3e\n",
              steps, recording.num_receivers(), forward.total_energy());

  // --- Reverse pass: inject time-reversed traces ------------------------
  auto reverse = make_solver();
  int sample = 0;
  reverse.set_source([&](dg::Field& rhs, double /*t*/) {
    if (sample < steps) {
      recording.inject(rhs, static_cast<std::size_t>(sample),
                       /*reversed=*/true, /*amplitude=*/400.0);
    }
  });
  double best_ratio = 0.0;
  int best_step = 0;
  for (int s = 0; s < steps; ++s) {
    sample = s;
    reverse.step(dt);
    // The refocus happens near the source's firing time (reversed).
    if (s > steps / 2) {
      const double ratio = focus_ratio(reverse, source_pos, 0.18);
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_step = s;
      }
    }
  }

  const double fire_time = 0.15;
  const double refocus_time = (steps - 1 - best_step) * dt;
  std::printf("Reverse pass: wavefield refocuses at t=%.3f "
              "(source fired at %.3f), focus ratio %.2f\n",
              refocus_time, fire_time, best_ratio);
  const bool focused = best_ratio > 1.0;
  std::printf("%s\n\n", focused
                            ? "-> the energy concentrates at the source: "
                              "imaging works"
                            : "-> no focus (unexpected)");

  // --- Projection: imaging is many forward+adjoint runs ------------------
  std::printf("An RTM/FWI iteration runs the wave equation twice per shot.\n"
              "Per-shot cost at production scale (Elastic-Riemann_5):\n");
  for (const auto& chip : {pim::chip_2gb(), pim::chip_16gb()}) {
    mapping::Estimator est({dg::ProblemKind::ElasticRiemann, 5, 8}, chip);
    const auto cost = est.run_cost(2 * 1024);  // forward + adjoint
    std::printf("  %-10s %8s  %8s\n", chip.name.c_str(),
                format_time(cost.time).c_str(),
                format_energy(cost.energy).c_str());
  }
  return focused ? 0 : 1;
}
