// Interconnect design-space explorer: sweeps topology, chip capacity and
// expansion mode for one benchmark and prints the flux-phase trade-off
// surface — the experiment behind the paper's §4.2/§7.6 design choice.
#include <cstdio>

#include "common/table.h"
#include "mapping/estimator.h"

using namespace wavepim;

int main() {
  std::printf("Interconnect explorer\n=====================\n\n");

  const mapping::Problem problem{dg::ProblemKind::Acoustic, 4, 8};
  std::printf("Benchmark: %s (4096 elements, 512-node dG elements)\n\n",
              problem.name().c_str());

  TextTable table({"Chip", "Topology", "Expansion", "Fetch/stage",
                   "Flux compute/stage", "Stage total", "Step total",
                   "Net energy/step"});

  for (const auto make_chip : {pim::chip_512mb, pim::chip_2gb, pim::chip_8gb}) {
    for (const auto topology : {pim::Topology::HTree, pim::Topology::Bus}) {
      const auto chip = make_chip(topology);
      for (const auto mode : mapping::applicable_modes(problem.kind)) {
        const std::uint64_t needed =
            problem.num_elements() * mapping::blocks_per_element(mode);
        if (needed > chip.num_blocks()) {
          continue;  // would require batching; keep the sweep resident
        }
        mapping::Estimator estimator(problem, chip,
                                     {.force_expansion = mode});
        const auto& est = estimator.estimate();
        table.add_row({chip.name, pim::to_string(topology),
                       mapping::to_string(mode),
                       format_time(est.segments.fetch_minus +
                                   est.segments.fetch_plus),
                       format_time(est.segments.compute_minus +
                                   est.segments.compute_plus),
                       format_time(est.stage_schedule.total),
                       format_time(est.step_time),
                       format_energy(est.network_energy)});
      }
    }
  }
  table.print();

  std::printf(
      "\nReading the surface:\n"
      " - The H-tree wins whenever inter-element traffic is intensive\n"
      "   (flux fetch), at a higher switch power budget (Table 3).\n"
      " - Expansion (Ep) trades extra transfers for shorter compute —\n"
      "   the fetch share grows exactly as Fig. 14 reports.\n"
      " - On the bus, expansion helps less: its single data path\n"
      "   serialises the extra traffic.\n");
  return 0;
}
