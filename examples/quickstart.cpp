// Quickstart: simulate a small acoustic wave problem on the CPU reference
// solver, validate the bit-true Wave-PIM execution against it, and project
// the run onto a 2 GB Wave-PIM chip and the GPU baselines.
//
// Usage: quickstart [--threads N] [--exec=emit|replay|compiled|word]
//        [--witness=N]
//                   [--trace=FILE] [--chip-blocks=N]
//                   [--topology=htree|bus] [--net-backend=analytic|cycle]
// Worker count and execution tier change wall-clock time only; fields
// and cost reports are bit-identical for any combination. --trace records
// the run and writes Chrome trace-event JSON (open in Perfetto or
// chrome://tracing). --chip-blocks caps the chip's PIM blocks so the
// validation run overflows on-chip capacity and exercises the batched
// residency path (fields stay bit-identical to the resident run; the
// staging traffic shows up in the hbm cost channel). --topology selects
// the validation chip's fabric and --net-backend its timing model; both
// are pricing-only (the network cost channel moves, fields never do),
// and the cycle backend additionally reports link queuing statistics.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/parallel.h"
#include "common/statistics.h"
#include "common/trace_report.h"
#include "core/wavepim.h"
#include "dg/solver.h"
#include "dg/sources.h"
#include "trace/export.h"
#include "trace/trace.h"

using namespace wavepim;

int main(int argc, char** argv) {
  std::string trace_path;
  std::uint32_t chip_blocks = 0;
  // Fabric and timing backend of the *validation* chip only (part 2
  // below); the part-3 projection grid keeps the library defaults so its
  // numbers stay comparable across quickstart invocations.
  pim::Topology topology = pim::chip_512mb().topology;
  pim::NetBackendKind net_backend = pim::default_net_backend();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const std::size_t n = ThreadPool::parse_thread_count(argv[i + 1]);
      if (n == 0) {
        std::fprintf(stderr, "error: --threads wants a positive integer\n");
        return 2;
      }
      ThreadPool::set_global_threads(n);
      i += 1;
    } else if (std::strncmp(argv[i], "--exec=", 7) == 0) {
      const char* tier = argv[i] + 7;
      if (std::strcmp(tier, "emit") != 0 && std::strcmp(tier, "replay") != 0 &&
          std::strcmp(tier, "compiled") != 0 &&
          std::strcmp(tier, "word") != 0) {
        std::fprintf(stderr,
                     "error: --exec wants emit, replay, compiled or word\n");
        return 2;
      }
      setenv("WAVEPIM_EXEC", tier, /*overwrite=*/1);
    } else if (std::strncmp(argv[i], "--witness=", 10) == 0) {
      // Witness cadence for the word tier: every Nth phase application is
      // re-executed bit-serially and hash-compared (1 = every phase).
      char* end = nullptr;
      (void)std::strtoul(argv[i] + 10, &end, 10);
      if (end == argv[i] + 10 || *end != '\0') {
        std::fprintf(stderr, "error: --witness wants a cadence (0 = off)\n");
        return 2;
      }
      setenv("WAVEPIM_WITNESS", argv[i] + 10, /*overwrite=*/1);
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
      if (trace_path.empty()) {
        std::fprintf(stderr, "error: --trace wants an output path\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--chip-blocks=", 14) == 0) {
      chip_blocks =
          static_cast<std::uint32_t>(std::strtoul(argv[i] + 14, nullptr, 10));
      if (chip_blocks == 0) {
        std::fprintf(stderr,
                     "error: --chip-blocks wants a positive block count\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--topology=", 11) == 0) {
      if (!pim::parse_topology(argv[i] + 11, topology)) {
        std::fprintf(stderr, "error: --topology wants htree or bus\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--net-backend=", 14) == 0) {
      if (!pim::parse_net_backend(argv[i] + 14, net_backend)) {
        std::fprintf(stderr, "error: --net-backend wants analytic or cycle\n");
        return 2;
      }
    } else {
      std::fprintf(stderr,
                   "error: unknown option %s\n"
                   "usage: quickstart [--threads N] "
                   "[--exec=emit|replay|compiled|word] [--witness=N] "
                   "[--trace=FILE] [--chip-blocks=N] "
                   "[--topology=htree|bus] "
                   "[--net-backend=analytic|cycle]\n",
                   argv[i]);
      return 2;
    }
  }
  if (!trace_path.empty()) {
    trace::set_enabled(true);
  }
  std::printf("Wave-PIM quickstart\n===================\n\n");

  // 1. A small periodic acoustic problem (order-2 basis). A capped chip
  //    needs at least two Y-slices resident, so the level-1 mesh (whose
  //    two 4-element slices fit any usable cap) grows to level 2 — 64
  //    elements in four 16-element slices — when --chip-blocks is given.
  const mapping::Problem small{dg::ProblemKind::Acoustic,
                               chip_blocks != 0 ? 2 : 1, 3};
  mesh::StructuredMesh mesh(small.refinement_level, 1.0,
                            mesh::Boundary::Periodic);
  dg::MaterialField<dg::AcousticMaterial> materials(mesh.num_elements(),
                                                    {.kappa = 1.0, .rho = 1.0});
  dg::AcousticSolver cpu(mesh, std::move(materials),
                         {.n1d = small.n1d, .flux = dg::FluxType::Upwind});
  dg::init_acoustic_plane_wave(cpu, mesh::Axis::X, 1);

  // 2. Run it bit-true through the PIM instruction streams.
  pim::ChipConfig chip = pim::chip_512mb();
  chip.block_limit = chip_blocks;
  chip.topology = topology;
  chip.net_backend = net_backend;
  mapping::PimSimulation pim(small, mapping::ExpansionMode::None, chip);
  if (chip_blocks != 0) {
    const auto& residency = pim.residency();
    std::printf("chip capped at %u blocks: %u Y-slices, window of %u "
                "slice(s) + 1 staging slot (%s)\n\n",
                chip_blocks, residency.num_slices(), residency.window(),
                residency.is_resident() ? "fully resident" : "batched");
  }
  pim.load_state(cpu.state());
  const double dt = cpu.stable_dt();
  for (int i = 0; i < 10; ++i) {
    cpu.step(dt);
    pim.step(dt);
  }
  const auto got = pim.read_state();
  const double err = relative_linf_error(got.flat(), cpu.state().flat());
  std::printf("CPU vs PIM functional simulation after 10 steps: "
              "rel. L-inf error = %.2e\n", err);
  bool witness_failed = false;
  if (pim.exec_path() == mapping::ExecPath::Word &&
      pim.witness_interval() != 0) {
    const auto& ws = pim.witness_stats();
    std::printf("witness (cadence %u): %llu phase checks, %llu block "
                "comparisons, %llu mismatches\n",
                pim.witness_interval(),
                static_cast<unsigned long long>(ws.checks),
                static_cast<unsigned long long>(ws.blocks_checked),
                static_cast<unsigned long long>(ws.mismatches));
    for (const auto& m : pim.witness_mismatches()) {
      std::fprintf(stderr,
                   "witness mismatch: stage %d schedule step %u vblock %u\n",
                   m.stage, m.schedule_step, m.vblock);
    }
    witness_failed = ws.mismatches != 0;
  }
  if (pim.exec_path() == mapping::ExecPath::Word &&
      pim.word_plan() != nullptr) {
    // Fusion summary for the word tier: how far the peephole passes
    // compressed the kernel streams (the same numbers ride the
    // word.fuse.* trace counters in the --trace summary).
    const auto& fs = pim.word_plan()->fuse_stats();
    std::printf("word fusion%s: %llu ops -> %llu "
                "(%llu pairs, %llu chains/%llu links/%llu paired, "
                "%llu gathers folded, %llu dead stores elided)\n",
                pim.word_plan()->fusion_enabled() ? "" : " (disabled)",
                static_cast<unsigned long long>(fs.ops_before),
                static_cast<unsigned long long>(fs.ops_after),
                static_cast<unsigned long long>(fs.scale_add + fs.mul_add +
                                                fs.axpy_pair),
                static_cast<unsigned long long>(fs.chains),
                static_cast<unsigned long long>(fs.chain_links),
                static_cast<unsigned long long>(fs.chain_pairs),
                static_cast<unsigned long long>(fs.gather_fused),
                static_cast<unsigned long long>(fs.dead_stores));
  }
  std::printf("PIM modelled cost so far: %s, %s\n",
              format_time(pim.costs().total().time).c_str(),
              format_energy(pim.costs().total().energy).c_str());
  // Interconnect summary: the serialized lower bound vs the scheduled
  // makespan — their ratio is the path parallelism the fabric extracted.
  const auto& net = pim.net_stats();
  const double net_time_s = pim.costs().network.time.value();
  const double overlap =
      net_time_s > 0.0 ? net.serial_sum.value() / net_time_s : 1.0;
  std::printf("network (%s fabric, %s backend): %s serialized, %s on "
              "fabric, overlap %.2fx over %llu transfers\n",
              pim::to_string(chip.topology),
              pim::to_string(chip.net_backend),
              format_time(net.serial_sum).c_str(),
              format_time(seconds(net_time_s)).c_str(), overlap,
              static_cast<unsigned long long>(net.transfers));
  if (net.link_schedules > 0) {
    std::printf("link queuing: stall %s, max utilization %.1f%%, "
                "peak queue %llu\n",
                format_time(net.stall_time).c_str(),
                100.0 * net.max_utilization,
                static_cast<unsigned long long>(net.peak_queue));
  }
  if (chip_blocks != 0) {
    std::printf("HBM staging (hbm channel): %s, %s over %llu slice moves\n",
                format_time(pim.costs().hbm.time).c_str(),
                format_energy(pim.costs().hbm.energy).c_str(),
                static_cast<unsigned long long>(
                    pim.residency().slice_loads() +
                    pim.residency().slice_stores()));
  }
  std::printf("\n");

  // 3. Project the paper's Acoustic_4 benchmark (512-node elements) onto
  //    the platforms.
  const mapping::Problem big{dg::ProblemKind::Acoustic, 4, 8};
  const std::uint64_t steps = 1024;
  std::printf("Projecting %s over %llu time steps:\n", big.name().c_str(),
              static_cast<unsigned long long>(steps));
  for (const auto& row : core::System::compare_all(big, steps)) {
    std::printf("  %-22s time %-10s energy %-9s speedup %6.2fx\n",
                row.platform.c_str(), format_time(row.total_time).c_str(),
                format_energy(row.total_energy).c_str(), row.speedup);
  }

  if (!trace_path.empty()) {
    trace::set_enabled(false);
    if (!trace::write_chrome_trace(trace_path)) {
      std::fprintf(stderr, "error: could not write trace to %s\n",
                   trace_path.c_str());
      return 1;
    }
    std::printf("\n");
    print_trace_summary(trace::summarize());
    std::printf("trace written to %s\n", trace_path.c_str());
  }
  return (err < 1e-4 && !witness_failed) ? 0 : 1;
}
