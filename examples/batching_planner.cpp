// Batching planner: for a given problem and chip, prints the Table-5 style
// mapping decision, the Fig. 6/7 batch schedule, and the projected
// per-step cost breakdown. Run it to size a Wave-PIM deployment.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table.h"
#include "mapping/batch_schedule.h"
#include "mapping/estimator.h"

using namespace wavepim;

namespace {

dg::ProblemKind parse_kind(const char* s) {
  if (std::strcmp(s, "acoustic") == 0) {
    return dg::ProblemKind::Acoustic;
  }
  if (std::strcmp(s, "elastic-central") == 0) {
    return dg::ProblemKind::ElasticCentral;
  }
  if (std::strcmp(s, "elastic-riemann") == 0) {
    return dg::ProblemKind::ElasticRiemann;
  }
  std::fprintf(stderr,
               "unknown physics '%s' (use acoustic | elastic-central | "
               "elastic-riemann)\n",
               s);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  // Usage: batching_planner [physics] [level]
  const dg::ProblemKind kind =
      argc > 1 ? parse_kind(argv[1]) : dg::ProblemKind::ElasticRiemann;
  const int level = argc > 2 ? std::atoi(argv[2]) : 5;
  const mapping::Problem problem{kind, level, 8};

  std::printf("Batching planner for %s (%llu elements, 9-var: %s)\n\n",
              problem.name().c_str(),
              static_cast<unsigned long long>(problem.num_elements()),
              dg::is_elastic(kind) ? "yes" : "no");

  TextTable table({"Chip", "Config", "Batches", "Slices/batch",
                   "HBM traffic/step", "HBM time/step", "Step time",
                   "Energy/step"});
  for (const auto& chip : pim::standard_chips()) {
    try {
      mapping::Estimator estimator(problem, chip);
      const auto& est = estimator.estimate();
      table.add_row({chip.name, est.config.label(),
                     std::to_string(est.config.num_batches),
                     std::to_string(est.config.slices_per_batch),
                     format_bytes(est.hbm_bytes_per_step),
                     format_time(est.hbm_time_per_step),
                     format_time(est.step_time),
                     format_energy(est.step_energy)});
    } catch (const CapacityError& e) {
      table.add_row({chip.name, "does not fit", "-", "-", "-", "-", "-",
                     "-"});
    }
  }
  table.print();

  // The exact Fig. 7 flux schedule for the most constrained fitting chip.
  for (const auto& chip : pim::standard_chips()) {
    try {
      mapping::Estimator estimator(problem, chip);
      const auto& cfg = estimator.config();
      if (!cfg.batched) {
        continue;
      }
      const auto schedule =
          mapping::build_flux_batch_schedule(problem, cfg);
      std::printf(
          "\nFig. 7 flux schedule on %s (%u slices resident of %u, peak "
          "%u, %u loads):\n",
          chip.name.c_str(), cfg.slices_per_batch,
          1u << problem.refinement_level, schedule.peak_resident(),
          schedule.total_loads());
      const std::size_t shown = std::min<std::size_t>(14,
                                                      schedule.steps.size());
      for (std::size_t i = 0; i < shown; ++i) {
        std::printf("  %2zu. %s\n", i + 1,
                    schedule.steps[i].describe().c_str());
      }
      if (shown < schedule.steps.size()) {
        std::printf("  ... (%zu more steps)\n",
                    schedule.steps.size() - shown);
      }
      break;
    } catch (const CapacityError&) {
    }
  }
  return 0;
}
