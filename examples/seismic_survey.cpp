// Seismic survey scenario (the paper's oil & gas motivation): a layered
// earth model, a Ricker point source near the surface, and a line of
// surface receivers recording a seismogram. The physics runs on the CPU
// reference solver; the same workload is then projected onto Wave-PIM to
// show the deployment cost of a production survey.
#include <cstdio>
#include <vector>

#include "core/wavepim.h"
#include "dg/io.h"
#include "dg/recorder.h"
#include "dg/solver.h"
#include "dg/sources.h"

using namespace wavepim;

int main() {
  std::printf("Seismic survey example\n======================\n\n");

  // Domain: 1 km^3 (scaled units), 3 geological layers of increasing
  // stiffness with depth (y up).
  const int level = 2;
  const int n1d = 4;
  mesh::StructuredMesh mesh(level, 1.0, mesh::Boundary::Reflective);
  dg::MaterialField<dg::AcousticMaterial> materials(
      mesh.num_elements(), {.kappa = 1.0, .rho = 1.0});
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    const auto c = mesh.coords_of(e);
    if (c[1] < mesh.dim() / 4) {          // basement: fast
      materials.set(e, {.kappa = 9.0, .rho = 1.2});
    } else if (c[1] < mesh.dim() / 2) {   // sediment: medium
      materials.set(e, {.kappa = 4.0, .rho = 1.1});
    }                                      // else: weathered top layer
  }

  dg::AcousticSolver solver(mesh, std::move(materials),
                            {.n1d = n1d, .flux = dg::FluxType::Upwind,
                             .cfl = 0.5});

  // Ricker shot just below the surface at x = 0.3.
  dg::PointSource shot(solver, {0.3, 0.9, 0.5}, /*peak_frequency=*/6.0,
                       /*delay=*/0.18, /*amplitude=*/1.0);
  solver.set_source([&shot](dg::Field& rhs, double t) { shot(rhs, t); });

  // Receiver line along the surface.
  dg::Seismogram gram(mesh, solver.reference(), dg::AcousticPhysics::P);
  std::vector<double> receiver_x;
  for (double x = 0.1; x < 0.95; x += 0.2) {
    gram.add_receiver({x, 0.95, 0.5});
    receiver_x.push_back(x);
  }

  const double dt = solver.stable_dt();
  const int record_steps = 160;
  for (int s = 0; s < record_steps; ++s) {
    solver.step(dt);
    gram.record(solver.state());
  }

  std::printf("Recorded %d samples at %zu receivers (dt = %.4f):\n",
              record_steps, gram.num_receivers(), dt);
  for (std::size_t r = 0; r < gram.num_receivers(); ++r) {
    const auto trace = gram.trace(r);
    double peak = 0.0;
    int peak_step = 0;
    for (int s = 0; s < record_steps; ++s) {
      if (std::abs(trace[s]) > peak) {
        peak = std::abs(trace[s]);
        peak_step = s;
      }
    }
    std::printf("  receiver at x=%.2f: first-arrival peak |p|=%.3e at t=%.3f\n",
                receiver_x[r], peak, peak_step * dt);
  }
  std::printf("Total field energy after recording: %.4e\n", solver.total_energy());

  // Snapshot for visualisation (ParaView-loadable point cloud).
  dg::write_vtk_file("/tmp/seismic_snapshot.vtk", mesh, solver.reference(),
                     solver.state(), {"p", "vx", "vy", "vz"});
  std::printf("Wavefield snapshot written to /tmp/seismic_snapshot.vtk\n\n");

  // Production-scale projection: a full survey shoots thousands of shots;
  // each shot is a level-5 simulation with 1024 steps.
  const mapping::Problem production{dg::ProblemKind::Acoustic, 5, 8};
  const std::uint64_t steps = 1024;
  const std::uint64_t shots = 1000;
  std::printf("Projected cost of a %llu-shot survey (%s, %llu steps/shot):\n",
              static_cast<unsigned long long>(shots),
              production.name().c_str(),
              static_cast<unsigned long long>(steps));
  const auto rows = core::System::compare_all(production, steps);
  for (const auto& row : rows) {
    if (row.platform == "Unfused-GTX 1080Ti" ||
        row.platform == "Fused-Tesla V100" ||
        row.platform == "PIM-16GB-28nm") {
      std::printf("  %-22s %9.2f hours, %8.1f kWh\n", row.platform.c_str(),
                  row.total_time.value() * shots / 3600.0,
                  row.total_energy.value() * shots / 3.6e6);
    }
  }
  return 0;
}
