#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace wavepim::trace {

/// Aggregate of one span name across a trace.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;     ///< completed Begin/End pairs
  std::uint64_t total_ns = 0;  ///< summed wall time (nested spans included)
  std::uint64_t min_ns = 0;
  std::uint64_t max_ns = 0;
  /// Nearest-rank percentiles over the individual span durations (an
  /// actual sample each, see common/statistics.h percentile()).
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;

  [[nodiscard]] double mean_ns() const {
    return count > 0 ? static_cast<double>(total_ns) /
                           static_cast<double>(count)
                     : 0.0;
  }
};

/// Aggregate of one counter name across a trace.
struct CounterStats {
  std::string name;
  std::uint64_t samples = 0;
  double sum = 0.0;
  double last = 0.0;
};

/// Per-phase rollup of a trace: the table the CLI prints next to the
/// Chrome JSON (`common/trace_report.h` renders it).
struct Summary {
  std::uint64_t first_ts_ns = 0;
  std::uint64_t last_ts_ns = 0;
  std::uint64_t dropped = 0;  ///< events lost to ring overwrites
  std::vector<SpanStats> spans;        ///< sorted by total_ns, descending
  std::vector<CounterStats> counters;  ///< sorted by name

  /// Trace wall-clock extent.
  [[nodiscard]] std::uint64_t duration_ns() const {
    return last_ts_ns - first_ts_ns;
  }
};

/// Aggregates an event list (as returned by `Collector::snapshot`).
/// Begin/End pairs are matched per thread with a stack, so nested and
/// recursive spans aggregate correctly; unbalanced events (e.g. a span
/// whose Begin was overwritten in the ring) are dropped from the stats.
[[nodiscard]] Summary summarize(std::span<const Event> events);

/// Aggregates the process collector's current contents.
[[nodiscard]] Summary summarize();

/// Renders an event list as Chrome trace-event JSON — an object with a
/// `traceEvents` array that loads directly in Perfetto
/// (https://ui.perfetto.dev) or chrome://tracing. Events keep their
/// sequence order; the category of an event is its name's dotted prefix
/// ("pim.volume" -> cat "pim").
[[nodiscard]] std::string chrome_trace_json(std::span<const Event> events);

/// Renders the process collector's current contents.
[[nodiscard]] std::string chrome_trace_json();

/// Writes the collector's contents to `path` as Chrome trace JSON.
/// Returns false when the file cannot be written.
bool write_chrome_trace(const std::string& path);

}  // namespace wavepim::trace
