#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "trace/clock.h"

namespace wavepim::trace {

/// Structured tracing for the simulator's hot paths: RAII spans, instant
/// events and named counters recorded into per-thread ring buffers and
/// exported as Chrome trace-event JSON (`trace/export.h`).
///
/// Overhead contract:
///  - Disabled (the default), every record site is one relaxed atomic
///    load and a predictable branch — no locks, no allocation, nothing
///    written. The step-loop overhead is bench-verified under 2%
///    (`bench_micro_pim`, BM_FunctionalPimStepTrace rows).
///  - Enabled, recording is one uncontended per-thread mutex acquisition
///    and a ring-slot write; buffers are bounded, so a long run overwrites
///    its oldest events instead of growing.
///
/// Determinism: every event carries a process-global sequence number, and
/// exports order events by it. At one worker thread the recorded sequence
/// of (name, type) pairs is a pure function of the executed code, so
/// traces are diffable after stripping timestamps
/// (tests/trace/trace_conformance_test.cpp pins the step-loop sequence).
enum class EventType : std::uint8_t {
  Begin,    ///< span opened
  End,      ///< span closed
  Instant,  ///< point event
  Counter,  ///< named time-series sample (value)
};

/// One recorded event. `name` must point to storage that outlives the
/// collector (string literals in practice); events never copy strings,
/// which keeps recording allocation-free.
struct Event {
  std::uint64_t ts_ns = 0;     ///< trace-clock timestamp
  std::uint64_t seq = 0;       ///< process-global sequence number
  const char* name = nullptr;  ///< static-storage event name
  double value = 0.0;          ///< counter sample / span or instant arg
  EventType type = EventType::Instant;
  std::uint32_t tid = 0;  ///< collector-assigned stable thread id
};

namespace detail {
/// The global on/off switch, inline so the disabled fast path compiles to
/// a single relaxed load at every record site.
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// True when recording is active. Relaxed: a site racing with enable() may
/// record or skip one event, which is fine — enable/disable are run-level
/// operations, not synchronisation points.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Fixed-capacity event ring of one thread. Writers are single-threaded
/// (the owning thread); the export path locks the ring briefly to
/// snapshot it. When full, the oldest events are overwritten and counted
/// as dropped.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::uint32_t tid, std::size_t capacity);

  [[nodiscard]] std::uint32_t tid() const { return tid_; }
  [[nodiscard]] std::size_t capacity() const { return events_.size(); }
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;

  void push(const Event& event);
  /// Appends the retained events in recording order.
  void snapshot(std::vector<Event>& out) const;
  void clear();

  /// Lifetime count of ring allocations — the zero-allocation test's
  /// witness that disabled tracing never materialises a buffer.
  [[nodiscard]] static std::uint64_t total_allocated();

 private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;  ///< ring storage, fixed capacity
  std::size_t next_ = 0;       ///< next write slot
  std::size_t count_ = 0;      ///< retained events (<= capacity)
  std::uint64_t dropped_ = 0;
  std::uint32_t tid_;
};

/// Process-wide event sink: owns one TraceBuffer per recording thread.
/// Buffers are created lazily on a thread's first recorded event and kept
/// for the process lifetime (worker threads cache a pointer), so
/// `reset()` empties them without invalidating writers.
class Collector {
 public:
  static Collector& instance();

  void set_enabled(bool on) {
    detail::g_enabled.store(on, std::memory_order_relaxed);
  }

  /// Records one event on the calling thread's ring. Callers must check
  /// `enabled()` first (the Span/instant/counter helpers do).
  void record(EventType type, const char* name, double value);

  /// All retained events, merged across threads and sorted by sequence
  /// number.
  [[nodiscard]] std::vector<Event> snapshot() const;

  /// Drops every retained event and restarts the sequence numbering;
  /// thread buffers stay registered. Callers must quiesce recording
  /// threads first (disable, or barrier) for a clean cut.
  void reset();

  [[nodiscard]] std::size_t num_events() const;
  [[nodiscard]] std::size_t num_threads() const;
  /// Events discarded to ring overwrites since the last reset.
  [[nodiscard]] std::uint64_t dropped() const;

  /// Per-thread ring capacity for buffers registered from now on.
  void set_ring_capacity(std::size_t capacity);

 private:
  Collector() = default;

  TraceBuffer& buffer_for_this_thread();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<TraceBuffer>> buffers_;
  std::atomic<std::uint64_t> seq_{0};
  std::size_t ring_capacity_ = 1 << 16;
};

/// Convenience switch (both orders read naturally at call sites).
inline void set_enabled(bool on) { Collector::instance().set_enabled(on); }

/// RAII span: records Begin on construction and End on destruction.
/// `name` must be a string literal (or otherwise outlive the collector);
/// `value` is attached to the Begin event as its argument.
class Span {
 public:
  explicit Span(const char* name, double value = 0.0) {
    if (enabled()) [[unlikely]] {
      name_ = name;
      Collector::instance().record(EventType::Begin, name, value);
    }
  }
  ~Span() {
    if (name_ != nullptr) {
      Collector::instance().record(EventType::End, name_, 0.0);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
};

/// Records a point event.
inline void instant(const char* name, double value = 0.0) {
  if (enabled()) [[unlikely]] {
    Collector::instance().record(EventType::Instant, name, value);
  }
}

/// Records a named counter sample (rendered as a time series by the
/// Chrome trace viewer).
inline void counter(const char* name, double value) {
  if (enabled()) [[unlikely]] {
    Collector::instance().record(EventType::Counter, name, value);
  }
}

}  // namespace wavepim::trace

#define WAVEPIM_TRACE_CONCAT_IMPL(a, b) a##b
#define WAVEPIM_TRACE_CONCAT(a, b) WAVEPIM_TRACE_CONCAT_IMPL(a, b)

/// Declares an anonymous scoped span: WAVEPIM_TRACE_SPAN("pim.volume").
/// An optional second argument becomes the Begin event's value.
#define WAVEPIM_TRACE_SPAN(...)                                      \
  ::wavepim::trace::Span WAVEPIM_TRACE_CONCAT(wavepim_trace_span_,   \
                                              __LINE__)(__VA_ARGS__)
