#include "trace/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <string_view>
#include <vector>

#include "common/statistics.h"

namespace wavepim::trace {

namespace {

/// JSON string escaping for event names (control chars, quotes,
/// backslashes). Names are ASCII identifiers in practice, but the
/// exporter must never emit invalid JSON whatever a caller passes.
void append_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

[[nodiscard]] std::string_view category_of(std::string_view name) {
  const auto dot = name.find('.');
  return dot == std::string_view::npos ? std::string_view("wavepim")
                                       : name.substr(0, dot);
}

/// Trims a %f-formatted number ("1.250000") to at most 3 decimals with no
/// trailing zeros, keeping the JSON compact and diff-friendly.
void append_micros(std::string& out, std::uint64_t ts_ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ts_ns / 1000,
                static_cast<unsigned>(ts_ns % 1000));
  out += buf;
}

void append_event(std::string& out, const Event& e) {
  const char* ph = "i";
  switch (e.type) {
    case EventType::Begin:
      ph = "B";
      break;
    case EventType::End:
      ph = "E";
      break;
    case EventType::Instant:
      ph = "i";
      break;
    case EventType::Counter:
      ph = "C";
      break;
  }
  out += "{\"name\":";
  append_json_string(out, e.name != nullptr ? e.name : "?");
  out += ",\"cat\":";
  append_json_string(out, category_of(e.name != nullptr ? e.name : "?"));
  out += ",\"ph\":\"";
  out += ph;
  out += "\",\"ts\":";
  append_micros(out, e.ts_ns);
  out += ",\"pid\":1,\"tid\":";
  out += std::to_string(e.tid);
  if (e.type == EventType::Counter) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"value\":%.17g}", e.value);
    out += buf;
  } else if (e.type == EventType::Instant) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"s\":\"t\",\"args\":{\"v\":%.17g}",
                  e.value);
    out += buf;
  } else if (e.type == EventType::Begin && e.value != 0.0) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",\"args\":{\"v\":%.17g}", e.value);
    out += buf;
  }
  out += "}";
}

}  // namespace

Summary summarize(std::span<const Event> events) {
  Summary summary;
  summary.dropped = Collector::instance().dropped();
  if (events.empty()) {
    return summary;
  }
  summary.first_ts_ns = events.front().ts_ns;
  summary.last_ts_ns = events.front().ts_ns;

  struct Open {
    const char* name;
    std::uint64_t ts_ns;
  };
  std::map<std::uint32_t, std::vector<Open>> stacks;  // per thread
  std::map<std::string_view, SpanStats> spans;
  std::map<std::string_view, std::vector<double>> durations;
  std::map<std::string_view, CounterStats> counters;

  for (const Event& e : events) {
    summary.first_ts_ns = std::min(summary.first_ts_ns, e.ts_ns);
    summary.last_ts_ns = std::max(summary.last_ts_ns, e.ts_ns);
    const std::string_view name = e.name != nullptr ? e.name : "?";
    switch (e.type) {
      case EventType::Begin:
        stacks[e.tid].push_back({e.name, e.ts_ns});
        break;
      case EventType::End: {
        auto& stack = stacks[e.tid];
        // Matching Begin should be on top (RAII discipline); tolerate a
        // ring-truncated trace by unwinding to the nearest match.
        while (!stack.empty() &&
               std::string_view(stack.back().name) != name) {
          stack.pop_back();
        }
        if (stack.empty()) {
          break;  // Begin lost to ring overwrite
        }
        const std::uint64_t dur = e.ts_ns - stack.back().ts_ns;
        stack.pop_back();
        auto [it, inserted] = spans.try_emplace(name);
        SpanStats& s = it->second;
        if (inserted) {
          s.name = std::string(name);
          s.min_ns = dur;
          s.max_ns = dur;
        }
        s.count += 1;
        s.total_ns += dur;
        s.min_ns = std::min(s.min_ns, dur);
        s.max_ns = std::max(s.max_ns, dur);
        durations[name].push_back(static_cast<double>(dur));
        break;
      }
      case EventType::Instant:
        break;
      case EventType::Counter: {
        auto [it, inserted] = counters.try_emplace(name);
        CounterStats& c = it->second;
        if (inserted) {
          c.name = std::string(name);
        }
        c.samples += 1;
        c.sum += e.value;
        c.last = e.value;
        break;
      }
    }
  }

  for (auto& [name, stats] : spans) {
    const auto& durs = durations[name];
    stats.p50_ns = static_cast<std::uint64_t>(percentile(durs, 50.0));
    stats.p99_ns = static_cast<std::uint64_t>(percentile(durs, 99.0));
    summary.spans.push_back(std::move(stats));
  }
  std::sort(summary.spans.begin(), summary.spans.end(),
            [](const SpanStats& a, const SpanStats& b) {
              return a.total_ns != b.total_ns ? a.total_ns > b.total_ns
                                              : a.name < b.name;
            });
  for (auto& [name, stats] : counters) {
    summary.counters.push_back(std::move(stats));
  }
  return summary;
}

Summary summarize() {
  const auto events = Collector::instance().snapshot();
  return summarize(events);
}

std::string chrome_trace_json(std::span<const Event> events) {
  std::string out;
  out.reserve(events.size() * 96 + 256);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"wavepim\"}}";
  for (const Event& e : events) {
    out += ",\n";
    append_event(out, e);
  }
  out += "\n]}\n";
  return out;
}

std::string chrome_trace_json() {
  const auto events = Collector::instance().snapshot();
  return chrome_trace_json(events);
}

bool write_chrome_trace(const std::string& path) {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok && written != json.size()) {
    std::fclose(f);
  }
  return ok;
}

}  // namespace wavepim::trace
