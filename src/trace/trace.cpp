#include "trace/trace.h"

#include <algorithm>

namespace wavepim::trace {

namespace {

/// Lifetime buffer-allocation counter (see TraceBuffer::total_allocated).
std::atomic<std::uint64_t> g_buffers_allocated{0};

/// The calling thread's buffer, cached after the first recorded event.
/// Buffers are owned by the Collector and live for the process, so the
/// cached pointer never dangles even if the thread outlives a reset().
thread_local TraceBuffer* t_buffer = nullptr;

}  // namespace

TraceBuffer::TraceBuffer(std::uint32_t tid, std::size_t capacity)
    : tid_(tid) {
  events_.resize(std::max<std::size_t>(1, capacity));
  g_buffers_allocated.fetch_add(1, std::memory_order_relaxed);
}

std::size_t TraceBuffer::size() const {
  std::lock_guard lock(mutex_);
  return count_;
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void TraceBuffer::push(const Event& event) {
  std::lock_guard lock(mutex_);
  events_[next_] = event;
  next_ = (next_ + 1) % events_.size();
  if (count_ < events_.size()) {
    ++count_;
  } else {
    ++dropped_;  // overwrote the oldest retained event
  }
}

void TraceBuffer::snapshot(std::vector<Event>& out) const {
  std::lock_guard lock(mutex_);
  // Oldest retained event first: when the ring has wrapped, that is the
  // slot the next push would overwrite.
  const std::size_t start =
      count_ == events_.size() ? next_ : (next_ + events_.size() - count_) %
                                             events_.size();
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(events_[(start + i) % events_.size()]);
  }
}

void TraceBuffer::clear() {
  std::lock_guard lock(mutex_);
  next_ = 0;
  count_ = 0;
  dropped_ = 0;
}

std::uint64_t TraceBuffer::total_allocated() {
  return g_buffers_allocated.load(std::memory_order_relaxed);
}

Collector& Collector::instance() {
  // Leaked singleton: recording threads (e.g. the global thread pool's
  // workers) may still touch their buffers during static destruction.
  static Collector* collector = new Collector();
  return *collector;
}

TraceBuffer& Collector::buffer_for_this_thread() {
  if (t_buffer == nullptr) {
    std::lock_guard lock(mutex_);
    const auto tid = static_cast<std::uint32_t>(buffers_.size() + 1);
    buffers_.push_back(std::make_unique<TraceBuffer>(tid, ring_capacity_));
    t_buffer = buffers_.back().get();
  }
  return *t_buffer;
}

void Collector::record(EventType type, const char* name, double value) {
  TraceBuffer& buffer = buffer_for_this_thread();
  Event event;
  event.ts_ns = now_ns();
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  event.name = name;
  event.value = value;
  event.type = type;
  event.tid = buffer.tid();
  buffer.push(event);
}

std::vector<Event> Collector::snapshot() const {
  std::vector<Event> events;
  {
    std::lock_guard lock(mutex_);
    for (const auto& buffer : buffers_) {
      buffer->snapshot(events);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  return events;
}

void Collector::reset() {
  std::lock_guard lock(mutex_);
  for (const auto& buffer : buffers_) {
    buffer->clear();
  }
  seq_.store(0, std::memory_order_relaxed);
}

std::size_t Collector::num_events() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const auto& buffer : buffers_) {
    n += buffer->size();
  }
  return n;
}

std::size_t Collector::num_threads() const {
  std::lock_guard lock(mutex_);
  return buffers_.size();
}

std::uint64_t Collector::dropped() const {
  std::lock_guard lock(mutex_);
  std::uint64_t n = 0;
  for (const auto& buffer : buffers_) {
    n += buffer->dropped();
  }
  return n;
}

void Collector::set_ring_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  ring_capacity_ = std::max<std::size_t>(1, capacity);
}

}  // namespace wavepim::trace
