#pragma once

#include <chrono>
#include <cstdint>

namespace wavepim::trace {

/// The single monotonic time source shared by the tracing subsystem and
/// the bench harness. All timestamps are nanoseconds since the process
/// trace epoch (latched on the first `now_ns()` call), so values stay
/// small, diff cleanly, and never go backwards.
[[nodiscard]] inline std::uint64_t now_ns() {
  using SteadyClock = std::chrono::steady_clock;
  static const SteadyClock::time_point epoch = SteadyClock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                           epoch)
          .count());
}

/// Small wall-clock stopwatch over the trace clock. Benches use it for
/// whole-run timings so their numbers and the trace timestamps come from
/// one time source.
class Stopwatch {
 public:
  Stopwatch() : start_ns_(now_ns()) {}

  /// Restarts the measurement from now.
  void restart() { start_ns_ = now_ns(); }

  [[nodiscard]] std::uint64_t elapsed_ns() const {
    return now_ns() - start_ns_;
  }
  [[nodiscard]] double elapsed_seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_ns_;
};

}  // namespace wavepim::trace
