#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dg/fields.h"
#include "mapping/config.h"
#include "mapping/simulation.h"
#include "mesh/structured_mesh.h"
#include "pim/params.h"

/// Simulation-as-a-service: job descriptions, the seeded request
/// generator and the solo reference runner. A "job" is one complete
/// wave simulation — mesh level, physics, execution tier, step budget —
/// arriving at a point on the service's trace clock. The scheduler
/// (scheduler.h) multiplexes many jobs over a pooled chip fleet; the
/// contract is that every job's final field and cost ledgers are
/// bit-identical to `run_job_solo` of the same spec, whatever the
/// policy, pool size or host thread count.
namespace wavepim::service {

/// All jobs advance with this fixed time step (the evaluation matrix's
/// convention), so tenants of one shape class share integration-stage
/// programs in addition to the volume/flux streams.
inline constexpr double kJobDt = 2.0e-4;

/// One simulation request.
struct JobSpec {
  std::uint32_t id = 0;
  double arrival_s = 0.0;  ///< arrival time on the service trace clock
  dg::ProblemKind kind = dg::ProblemKind::Acoustic;
  mapping::ExpansionMode expansion = mapping::ExpansionMode::None;
  int refinement_level = 1;
  int n1d = 3;
  mesh::Boundary boundary = mesh::Boundary::Periodic;
  mapping::ExecPath exec = mapping::ExecPath::Replay;
  std::uint32_t steps = 1;     ///< time-step budget (0 = load/read only)
  double deadline_s = 0.0;     ///< absolute deadline; <= 0 means none
  std::uint64_t state_seed = 0;  ///< perturbs the initial field

  [[nodiscard]] mapping::Problem problem() const {
    return {kind, refinement_level, n1d};
  }
  [[nodiscard]] std::string describe() const;
};

/// Knobs of the reproducible request stream. Identical options produce
/// an identical job list on every platform (common::Rng is SplitMix64
/// and the arrival arithmetic avoids libm).
struct GeneratorOptions {
  std::uint32_t num_jobs = 16;
  std::uint64_t seed = 1;
  double mean_interarrival_s = 1.0e-4;  ///< trace-clock seconds
  std::uint32_t max_steps = 4;          ///< per-job budget drawn in [1, max]
  double deadline_fraction = 0.5;       ///< share of jobs given a deadline
  bool zero_step_jobs = false;  ///< all budgets 0 (scheduler-overhead bench)
};

/// The seeded heterogeneous stream: ~60% acoustic (some at mesh level
/// 2), the rest split between central-flux and Riemann elastic, across
/// all four execution tiers and both boundary patterns. Sorted by
/// (arrival, id); ids are 0..num_jobs-1.
[[nodiscard]] std::vector<JobSpec> generate_jobs(const GeneratorOptions& opt);

/// The job's deterministic initial field: the evaluation suite's seeded
/// state, shifted per job by `state_seed` so tenants do not share
/// trajectories.
[[nodiscard]] dg::Field initial_state(const JobSpec& spec,
                                      const mapping::PimSimulation& sim);

/// FNV-1a over the field's float bit patterns as 16 hex digits — the
/// bit-exactness witness the conformance suite compares.
[[nodiscard]] std::string field_hash(const dg::Field& field);

/// What a finished job hands back: the bit-exactness witness plus the
/// per-channel cost ledgers and the service-side timeline.
struct JobResult {
  std::uint32_t id = 0;
  std::string hash;
  mapping::PimSimulation::Costs costs;
  mapping::PimSimulation::NetStats net;
  std::uint32_t steps_run = 0;
  double arrival_s = 0.0;
  double first_bind_s = 0.0;   ///< first time the job held a chip
  double completion_s = 0.0;   ///< on the service trace clock
  std::uint32_t preemptions = 0;

  [[nodiscard]] double latency_s() const { return completion_s - arrival_s; }
};

/// Reference execution: the whole job on a private chip with a private
/// cache, start to finish. The scheduler's per-job ledgers must match
/// this bit for bit.
[[nodiscard]] JobResult run_job_solo(const JobSpec& spec,
                                     pim::ChipConfig chip,
                                     std::size_t threads = 1);

}  // namespace wavepim::service
