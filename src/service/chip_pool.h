#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "mapping/element_program.h"
#include "mapping/program_cache.h"
#include "pim/chip.h"
#include "pim/params.h"
#include "service/job.h"

namespace wavepim::service {

/// The service's chip fleet: N identically configured simulated chips,
/// each owned by at most one tenant simulation at a time. Binding a job
/// hands its `chip(i)` handle to a PimSimulation; `recycle(i)` resets
/// the chip (blocks destroyed, arena slots returned to the free list)
/// once that simulation is gone, so the next tenant starts from a fresh
/// fabric with no stale column aliases.
class ChipPool {
 public:
  ChipPool(std::uint32_t num_chips, const pim::ChipConfig& config);

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(chips_.size());
  }
  [[nodiscard]] const std::shared_ptr<pim::Chip>& chip(std::uint32_t i) {
    return chips_[i];
  }

  /// Wipes chip `i` for the next tenant. The caller must have destroyed
  /// the previous tenant's simulation first — its residency table
  /// aliases the chip's blocks.
  void recycle(std::uint32_t i);

  /// Chips wiped over the pool's lifetime (one per job departure or
  /// preemption).
  [[nodiscard]] std::uint64_t recycles() const { return recycles_; }

 private:
  std::vector<std::shared_ptr<pim::Chip>> chips_;
  std::uint64_t recycles_ = 0;
};

/// Process-shared lowered-program store, keyed by shape class: jobs
/// with the same (problem x expansion x boundary) reuse one
/// ProgramCache instead of re-lowering the class streams per tenant.
/// `cache_for` is safe from concurrent pool workers; a class is lowered
/// exactly once (single writer), later tenants take the hit-path.
///
/// The key includes the boundary pattern even though
/// PimSimulation::set_shared_cache cannot check it: boundary changes
/// the element classification and the flux streams, so sharing across
/// boundaries would replay the wrong programs.
class ProgramBank {
 public:
  using Key = std::tuple<dg::ProblemKind, int, int, mapping::ExpansionMode,
                         mesh::Boundary>;

  [[nodiscard]] static Key key_of(const JobSpec& spec) {
    return {spec.kind, spec.refinement_level, spec.n1d, spec.expansion,
            spec.boundary};
  }

  /// The shared cache for this job's shape class, lowering it on first
  /// use. The returned pointer keeps the backing entry (and the
  /// ElementSetup the cache references) alive.
  [[nodiscard]] std::shared_ptr<mapping::ProgramCache> cache_for(
      const JobSpec& spec);

  [[nodiscard]] std::uint64_t builds() const;
  [[nodiscard]] std::uint64_t hits() const;

 private:
  /// Setup and cache live together so the cache's `const ElementSetup&`
  /// never dangles; entries are heap-pinned and immutable once built.
  struct Entry {
    mapping::ElementSetup setup;
    mapping::ProgramCache cache;
    Entry(const JobSpec& spec, const mesh::StructuredMesh& mesh)
        : setup(spec.problem(), spec.expansion, mesh.element_size()),
          cache(setup, mesh, nullptr, nullptr) {}
  };

  mutable std::mutex mutex_;
  std::map<Key, std::shared_ptr<Entry>> entries_;
  std::uint64_t builds_ = 0;
  std::uint64_t hits_ = 0;
};

}  // namespace wavepim::service
