#include "service/chip_pool.h"

#include "mesh/structured_mesh.h"

namespace wavepim::service {

ChipPool::ChipPool(std::uint32_t num_chips, const pim::ChipConfig& config) {
  chips_.reserve(num_chips);
  for (std::uint32_t i = 0; i < num_chips; ++i) {
    chips_.push_back(std::make_shared<pim::Chip>(config));
  }
}

void ChipPool::recycle(std::uint32_t i) {
  chips_[i]->reset();
  ++recycles_;
}

std::shared_ptr<mapping::ProgramCache> ProgramBank::cache_for(
    const JobSpec& spec) {
  const Key key = key_of(spec);
  std::lock_guard lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    // Lowering happens under the bank lock: one writer per class, and
    // concurrent `integration()` readers on other entries are untouched.
    const mesh::StructuredMesh mesh(spec.refinement_level, 1.0,
                                    spec.boundary);
    it = entries_.emplace(key, std::make_shared<Entry>(spec, mesh)).first;
    ++builds_;
  } else {
    ++hits_;
  }
  // Aliasing pointer: shares the Entry's lifetime, points at its cache.
  return {it->second, &it->second->cache};
}

std::uint64_t ProgramBank::builds() const {
  std::lock_guard lock(mutex_);
  return builds_;
}

std::uint64_t ProgramBank::hits() const {
  std::lock_guard lock(mutex_);
  return hits_;
}

}  // namespace wavepim::service
