#include "service/scheduler.h"

#include <algorithm>
#include <array>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "common/statistics.h"
#include "service/chip_pool.h"
#include "trace/trace.h"

namespace wavepim::service {

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::Fifo:
      return "fifo";
    case Policy::Srs:
      return "srs";
    case Policy::Edf:
      return "edf";
  }
  return "?";
}

std::optional<Policy> parse_policy(std::string_view name) {
  if (name == "fifo") {
    return Policy::Fifo;
  }
  if (name == "srs") {
    return Policy::Srs;
  }
  if (name == "edf") {
    return Policy::Edf;
  }
  return std::nullopt;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// A job's scheduler-side state. The parked ledgers and checkpoint hold
/// everything a resume needs to continue the solo run's exact
/// floating-point fold on a different chip.
struct Job {
  JobSpec spec;
  bool done = false;
  std::uint32_t steps_done = 0;
  std::uint32_t preemptions = 0;
  double first_bind_s = 0.0;
  mapping::PimSimulation::Costs costs;
  mapping::PimSimulation::NetStats net;
  std::vector<float> parked;
  bool has_checkpoint = false;
  JobResult result;
};

/// One chip's binding: the tenant simulation and the in-flight quantum's
/// virtual completion time.
struct ChipSlot {
  std::unique_ptr<mapping::PimSimulation> sim;
  int job = -1;
  bool inflight = false;
  double quantum_end = kInf;
  double busy_prev = 0.0;  ///< modelled total time before the quantum
};

}  // namespace

ServiceReport Scheduler::run(std::vector<JobSpec> specs) {
  trace::Span run_span("service.run");
  std::sort(specs.begin(), specs.end(),
            [](const JobSpec& a, const JobSpec& b) {
              return a.arrival_s != b.arrival_s ? a.arrival_s < b.arrival_s
                                                : a.id < b.id;
            });
  std::vector<Job> jobs(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    jobs[i].spec = specs[i];
  }

  ChipPool pool(options_.num_chips, options_.chip);
  ProgramBank bank;
  std::vector<ChipSlot> slots(options_.num_chips);
  std::vector<int> queue;  ///< indices into `jobs`, unordered
  std::size_t next_arrival = 0;
  std::size_t num_done = 0;
  double now = 0.0;
  double busy_s = 0.0;
  std::uint32_t max_queue_depth = 0;
  std::uint64_t preemptions = 0;

  // Lexicographic priority: smaller runs first. The trailing id makes
  // every ordering total, so runs are reproducible.
  const auto key_of = [&](const Job& job) -> std::array<double, 3> {
    switch (options_.policy) {
      case Policy::Srs:
        return {static_cast<double>(job.spec.steps - job.steps_done),
                job.spec.arrival_s, static_cast<double>(job.spec.id)};
      case Policy::Edf:
        return {job.spec.deadline_s > 0.0 ? job.spec.deadline_s : kInf,
                job.spec.arrival_s, static_cast<double>(job.spec.id)};
      case Policy::Fifo:
        break;
    }
    return {job.spec.arrival_s, static_cast<double>(job.spec.id), 0.0};
  };

  const auto complete = [&](std::uint32_t ci) {
    trace::Span span("service.complete");
    ChipSlot& slot = slots[ci];
    Job& job = jobs[static_cast<std::size_t>(slot.job)];
    // read_state charges the readback to the hbm channel exactly like
    // the solo run's single readback (parked snapshots were cost-free).
    const dg::Field out = slot.sim->read_state();
    job.result.id = job.spec.id;
    job.result.hash = field_hash(out);
    job.result.costs = slot.sim->costs();
    job.result.net = slot.sim->net_stats();
    job.result.steps_run = job.steps_done;
    job.result.arrival_s = job.spec.arrival_s;
    job.result.first_bind_s = job.first_bind_s;
    job.result.completion_s = now;
    job.result.preemptions = job.preemptions;
    job.done = true;
    ++num_done;
    trace::instant("service.depart", job.spec.id);
    slot.sim.reset();  // before recycle: residency aliases the blocks
    pool.recycle(ci);
    slot.job = -1;
  };

  const auto bind = [&](std::uint32_t ci, int j) {
    trace::Span span("service.bind");
    ChipSlot& slot = slots[ci];
    Job& job = jobs[static_cast<std::size_t>(j)];
    auto sim = std::make_unique<mapping::PimSimulation>(
        job.spec.problem(), job.spec.expansion, pool.chip(ci),
        job.spec.boundary);
    sim->set_exec_path(job.spec.exec);
    sim->set_num_threads(options_.threads);
    sim->set_shared_cache(bank.cache_for(job.spec));
    if (job.has_checkpoint) {
      trace::Span resume("service.resume");
      sim->restore_checkpoint(job.parked);
      sim->seed_ledgers(job.costs, job.net);
    } else {
      // First bind pays the state load (hbm channel), like solo.
      sim->load_state(initial_state(job.spec, *sim));
      job.first_bind_s = now;
    }
    slot.sim = std::move(sim);
    slot.job = j;
    if (job.steps_done == job.spec.steps) {
      complete(ci);  // zero-step job: admission and readback only
    }
  };

  const auto park = [&](std::uint32_t ci) {
    trace::Span span("service.park");
    ChipSlot& slot = slots[ci];
    const int j = slot.job;
    Job& job = jobs[static_cast<std::size_t>(j)];
    job.costs = slot.sim->costs();
    job.net = slot.sim->net_stats();
    job.parked = slot.sim->checkpoint();
    job.has_checkpoint = true;
    ++job.preemptions;
    ++preemptions;
    trace::instant("service.preempt", job.spec.id);
    slot.sim.reset();  // before recycle: residency aliases the blocks
    pool.recycle(ci);
    slot.job = -1;
    queue.push_back(j);
  };

  const auto pop_best = [&]() {
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue.size(); ++i) {
      if (key_of(jobs[static_cast<std::size_t>(queue[i])]) <
          key_of(jobs[static_cast<std::size_t>(queue[best])])) {
        best = i;
      }
    }
    const int j = queue[best];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(best));
    return j;
  };

  while (num_done < jobs.size()) {
    // Next event: the earliest pending arrival or in-flight quantum end.
    double t = kInf;
    if (next_arrival < jobs.size()) {
      t = std::min(t, jobs[next_arrival].spec.arrival_s);
    }
    for (const ChipSlot& slot : slots) {
      if (slot.inflight) {
        t = std::min(t, slot.quantum_end);
      }
    }
    WAVEPIM_REQUIRE(t < kInf, "scheduler stalled: jobs remain but no event");
    now = std::max(now, t);

    // Admissions due by now.
    while (next_arrival < jobs.size() &&
           jobs[next_arrival].spec.arrival_s <= now) {
      trace::instant("service.admit",
                     static_cast<double>(jobs[next_arrival].spec.id));
      queue.push_back(static_cast<int>(next_arrival));
      ++next_arrival;
    }

    // Quantum completions due by now; chips whose job finished free up.
    for (std::uint32_t ci = 0; ci < slots.size(); ++ci) {
      ChipSlot& slot = slots[ci];
      if (slot.inflight && slot.quantum_end <= now) {
        slot.inflight = false;
        Job& job = jobs[static_cast<std::size_t>(slot.job)];
        ++job.steps_done;
        if (job.steps_done == job.spec.steps) {
          complete(ci);
        }
      }
    }

    // Preemption (Srs/Edf): a chip at a step boundary parks its tenant
    // when a strictly higher-priority job waits. Fifo never preempts.
    if (options_.policy != Policy::Fifo && !queue.empty()) {
      for (std::uint32_t ci = 0; ci < slots.size(); ++ci) {
        ChipSlot& slot = slots[ci];
        if (slot.job < 0 || slot.inflight || queue.empty()) {
          continue;
        }
        auto best = key_of(jobs[static_cast<std::size_t>(queue[0])]);
        for (std::size_t i = 1; i < queue.size(); ++i) {
          best = std::min(
              best, key_of(jobs[static_cast<std::size_t>(queue[i])]));
        }
        if (best < key_of(jobs[static_cast<std::size_t>(slot.job)])) {
          park(ci);
        }
      }
    }

    // Bind free chips, best-priority job first, ascending chip index.
    for (std::uint32_t ci = 0; ci < slots.size() && !queue.empty(); ++ci) {
      if (slots[ci].job < 0) {
        bind(ci, pop_best());
      }
    }

    max_queue_depth =
        std::max(max_queue_depth, static_cast<std::uint32_t>(queue.size()));
    trace::counter("service.queue_depth",
                   static_cast<double>(queue.size()));

    // Launch the next quantum on every bound, idle chip — host-parallel
    // across chips (distinct sims on distinct chips; the shared program
    // bank synchronizes internally). Virtual duration is the modelled
    // cost delta, so ordering decisions never see host timing.
    std::vector<std::uint32_t> launch;
    for (std::uint32_t ci = 0; ci < slots.size(); ++ci) {
      if (slots[ci].job >= 0 && !slots[ci].inflight) {
        launch.push_back(ci);
      }
    }
    for (const std::uint32_t ci : launch) {
      slots[ci].busy_prev = slots[ci].sim->costs().total().time.value();
    }
    parallel_for(launch.size(), [&](std::size_t i) {
      trace::Span span("service.quantum");
      slots[launch[i]].sim->step(kJobDt);
    });
    for (const std::uint32_t ci : launch) {
      ChipSlot& slot = slots[ci];
      const double dur =
          slot.sim->costs().total().time.value() - slot.busy_prev;
      slot.quantum_end = now + dur;
      slot.inflight = true;
      busy_s += dur;
    }
  }

  ServiceReport report;
  report.jobs.reserve(jobs.size());
  std::vector<double> latencies;
  latencies.reserve(jobs.size());
  for (Job& job : jobs) {
    latencies.push_back(job.result.latency_s());
    report.makespan_s = std::max(report.makespan_s, job.result.completion_s);
    report.latency_mean_s += job.result.latency_s();
    report.net.serial_s += job.result.net.serial_sum.value();
    report.net.time_s += job.result.costs.network.time.value();
    report.net.transfers += job.result.net.transfers;
    report.net.words += job.result.net.words;
    report.net.link_schedules += job.result.net.link_schedules;
    report.net.stall_s += job.result.net.stall_time.value();
    report.net.max_utilization =
        std::max(report.net.max_utilization, job.result.net.max_utilization);
    report.net.peak_queue =
        std::max(report.net.peak_queue, job.result.net.peak_queue);
    report.jobs.push_back(std::move(job.result));
  }
  std::sort(report.jobs.begin(), report.jobs.end(),
            [](const JobResult& a, const JobResult& b) { return a.id < b.id; });
  if (!jobs.empty()) {
    report.latency_mean_s /= static_cast<double>(jobs.size());
  }
  report.latency_p50_s = percentile(latencies, 50.0);
  report.latency_p99_s = percentile(latencies, 99.0);
  if (report.makespan_s > 0.0) {
    report.chip_utilization =
        busy_s / (static_cast<double>(options_.num_chips) * report.makespan_s);
  }
  report.max_queue_depth = max_queue_depth;
  report.preemptions = preemptions;
  report.cache_builds = bank.builds();
  report.cache_hits = bank.hits();
  report.chip_recycles = pool.recycles();

  trace::counter("service.jobs", static_cast<double>(report.jobs.size()));
  trace::counter("service.max_queue_depth",
                 static_cast<double>(max_queue_depth));
  trace::counter("service.preemptions", static_cast<double>(preemptions));
  trace::counter("service.chip_utilization", report.chip_utilization);
  trace::counter("service.cache_builds",
                 static_cast<double>(report.cache_builds));
  trace::counter("service.cache_hits",
                 static_cast<double>(report.cache_hits));
  trace::counter("service.net_overlap", report.net.overlap());
  return report;
}

}  // namespace wavepim::service
