#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "pim/params.h"
#include "service/job.h"

namespace wavepim::service {

/// Scheduling policies over the pending queue.
///
///  * Fifo — arrival order, non-preemptive: a bound job keeps its chip
///    until done. The baseline.
///  * Srs — shortest remaining steps first; preemptive at time-step
///    boundaries (a long job parks when a shorter one is waiting).
///  * Edf — earliest deadline first (deadline-free jobs sort last, then
///    by arrival); preemptive at time-step boundaries.
enum class Policy : std::uint8_t { Fifo, Srs, Edf };

[[nodiscard]] const char* to_string(Policy policy);
[[nodiscard]] std::optional<Policy> parse_policy(std::string_view name);

struct ServiceOptions {
  std::uint32_t num_chips = 1;
  Policy policy = Policy::Fifo;
  /// Worker count per tenant simulation (PimSimulation semantics: 1 is
  /// serial, 0 the global pool). Never affects results.
  std::size_t threads = 1;
  pim::ChipConfig chip = pim::chip_512mb();
};

/// Fleet-level interconnect aggregates, folded over every tenant's
/// NetStats ledger. `serial_s` vs `time_s` exposes the path-parallelism
/// the fabric extracted (the overlap factor the per-job ledgers price
/// in but never used to surface); the stall/utilization/queue block is
/// non-zero only when the tenants ran the cycle net backend.
struct NetSummary {
  double serial_s = 0.0;   ///< sum of isolated transfer latencies
  double time_s = 0.0;     ///< modelled network channel time (with overlap)
  std::uint64_t transfers = 0;
  std::uint64_t words = 0;
  /// serial_s / time_s (1.0 when no traffic): mean transfers in flight.
  [[nodiscard]] double overlap() const {
    return time_s > 0.0 ? serial_s / time_s : 1.0;
  }
  // Cycle-backend queuing aggregates (all zero under analytic).
  std::uint64_t link_schedules = 0;  ///< drains that carried link stats
  double stall_s = 0.0;              ///< total per-transfer queue wait
  double max_utilization = 0.0;      ///< busiest link of any drain
  std::uint64_t peak_queue = 0;      ///< deepest per-link queue seen
};

/// What one service run reports: every job's result (bit-identical to
/// its solo run) plus fleet-level statistics.
struct ServiceReport {
  std::vector<JobResult> jobs;  ///< sorted by job id
  double makespan_s = 0.0;      ///< last completion on the trace clock
  double latency_p50_s = 0.0;
  double latency_p99_s = 0.0;
  double latency_mean_s = 0.0;
  double chip_utilization = 0.0;  ///< busy chip-seconds / (chips x makespan)
  std::uint32_t max_queue_depth = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t cache_builds = 0;  ///< distinct shape classes lowered
  std::uint64_t cache_hits = 0;    ///< jobs that reused a lowered class
  std::uint64_t chip_recycles = 0;
  NetSummary net;  ///< interconnect traffic across the whole fleet
};

/// Discrete-event multiplexer of a job stream over a pooled fleet.
///
/// Virtual time: the trace clock advances by each quantum's modelled
/// duration (the delta of costs().total().time across one sim.step), so
/// scheduling decisions depend only on the deterministic cost model —
/// never on host wall-clock — and a run is reproducible for any host
/// thread count. One quantum is one full time step; preemption happens
/// only at quantum boundaries, where checkpoint/restore is bit-exact.
/// Quanta due at the same virtual instant execute host-parallel across
/// chips (distinct sims on distinct chips; the shared ProgramBank is
/// internally synchronized); ties break on (chip index, job id).
///
/// Bit-identity contract: every job's final field hash and per-channel
/// ledgers (pim volume/flux/integration, network, hbm) equal
/// `run_job_solo` of the same spec. Parking snapshots the ledgers and
/// the full inter-step state; resuming seeds them back, so the resumed
/// run extends the exact floating-point fold of a never-preempted run.
class Scheduler {
 public:
  explicit Scheduler(ServiceOptions options) : options_(options) {}

  /// Runs the stream to completion and reports. Jobs may arrive in any
  /// order; results come back sorted by id.
  [[nodiscard]] ServiceReport run(std::vector<JobSpec> specs);

 private:
  ServiceOptions options_;
};

}  // namespace wavepim::service
