#include "service/job.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#include "common/rng.h"

namespace wavepim::service {

std::string JobSpec::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "job%u[%s %s %u-step]", id,
                problem().name().c_str(), mapping::to_string(exec), steps);
  return buf;
}

std::vector<JobSpec> generate_jobs(const GeneratorOptions& opt) {
  Rng rng(opt.seed);
  std::vector<JobSpec> jobs;
  jobs.reserve(opt.num_jobs);
  double clock = 0.0;
  for (std::uint32_t i = 0; i < opt.num_jobs; ++i) {
    JobSpec spec;
    spec.id = i;
    // Uniform gaps in [0.5, 1.5) * mean: bursty enough to queue, and no
    // libm call, so the stream is bit-identical across platforms.
    clock += opt.mean_interarrival_s * (0.5 + rng.next_double());
    spec.arrival_s = clock;

    const double physics = rng.next_double();
    if (physics < 0.6) {
      spec.kind = dg::ProblemKind::Acoustic;
      spec.expansion = mapping::ExpansionMode::None;
      // A quarter of the acoustic jobs are the large mesh, so pool
      // residency and program reuse see both shapes.
      spec.refinement_level = rng.next_double() < 0.25 ? 2 : 1;
    } else if (physics < 0.8) {
      spec.kind = dg::ProblemKind::ElasticCentral;
      spec.expansion = mapping::ExpansionMode::Elastic3;
      spec.refinement_level = 1;
    } else {
      spec.kind = dg::ProblemKind::ElasticRiemann;
      spec.expansion = mapping::ExpansionMode::Elastic9;
      spec.refinement_level = 1;
    }
    spec.boundary = rng.next_double() < 0.25 ? mesh::Boundary::Reflective
                                             : mesh::Boundary::Periodic;

    const double tier = rng.next_double();
    if (tier < 0.1) {
      spec.exec = mapping::ExecPath::Emit;
    } else if (tier < 0.4) {
      spec.exec = mapping::ExecPath::Replay;
    } else if (tier < 0.7) {
      spec.exec = mapping::ExecPath::Compiled;
    } else {
      spec.exec = mapping::ExecPath::Word;
    }

    spec.steps = opt.zero_step_jobs
                     ? 0
                     : 1 + static_cast<std::uint32_t>(rng.next_below(
                               opt.max_steps > 0 ? opt.max_steps : 1));

    // Deadlines scale with the budget; slack varies 1x-5x so EDF has
    // genuinely different urgencies to order by.
    const double deadline_roll = rng.next_double();
    const double slack = (1.0 + 4.0 * rng.next_double()) *
                         static_cast<double>(spec.steps + 1) * 2.0e-5;
    if (deadline_roll < opt.deadline_fraction) {
      spec.deadline_s = spec.arrival_s + slack;
    }

    spec.state_seed = rng.next_u64();
    jobs.push_back(spec);
  }
  return jobs;
}

dg::Field initial_state(const JobSpec& spec,
                        const mapping::PimSimulation& sim) {
  dg::Field u(sim.mesh().num_elements(), sim.setup().problem().num_vars(),
              static_cast<std::size_t>(sim.setup().ref().num_nodes()));
  // The evaluation suite's seeded state, shifted by the job seed: keeps
  // magnitudes in the well-tested range while giving every tenant its
  // own trajectory.
  const std::size_t shift = static_cast<std::size_t>(spec.state_seed % 97);
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (std::size_t v = 0; v < u.num_vars(); ++v) {
      for (std::size_t n = 0; n < u.nodes_per_element(); ++n) {
        u.value(e, v, n) =
            0.01f * static_cast<float>(
                        (e * 131 + v * 17 + n * 3 + shift * 29) % 97) -
            0.25f;
      }
    }
  }
  return u;
}

std::string field_hash(const dg::Field& field) {
  std::uint64_t h = 1469598103934665603ull;
  for (const float f : field.flat()) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &f, sizeof(bits));
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (bits >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

JobResult run_job_solo(const JobSpec& spec, pim::ChipConfig chip,
                       std::size_t threads) {
  mapping::PimSimulation sim(spec.problem(), spec.expansion, std::move(chip),
                             spec.boundary);
  sim.set_exec_path(spec.exec);
  sim.set_num_threads(threads);
  sim.load_state(initial_state(spec, sim));
  for (std::uint32_t s = 0; s < spec.steps; ++s) {
    sim.step(kJobDt);
  }
  const dg::Field out = sim.read_state();

  JobResult result;
  result.id = spec.id;
  result.hash = field_hash(out);
  result.costs = sim.costs();
  result.net = sim.net_stats();
  result.steps_run = spec.steps;
  result.arrival_s = spec.arrival_s;
  result.first_bind_s = spec.arrival_s;
  result.completion_s = spec.arrival_s;
  return result;
}

}  // namespace wavepim::service
