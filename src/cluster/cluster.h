#pragma once

#include <cstdint>
#include <vector>

#include "mapping/estimator.h"

namespace wavepim::cluster {

/// Inter-node network of an HPC installation (the paper's introduction:
/// "large models necessitate using distributed memory computing systems,
/// which then entail inter-node communication").
struct NodeLink {
  double bandwidth_bytes_per_s = 25.0e9;  ///< 200 Gb/s HDR InfiniBand
  Seconds latency = microseconds(1.5);
  double power_w_per_nic = 15.0;

  [[nodiscard]] Seconds transfer_time(Bytes bytes) const {
    return latency + Seconds(static_cast<double>(bytes) / bandwidth_bytes_per_s);
  }
};

/// 1D domain decomposition of a refinement-level mesh along Z across
/// `num_nodes` PIM-equipped nodes: each node owns a contiguous band of
/// Z-slabs and exchanges one element-layer halo with each neighbour per
/// RK stage.
struct Decomposition {
  int refinement_level = 6;
  std::uint32_t num_nodes = 1;

  [[nodiscard]] std::uint64_t dim() const {
    return 1ull << refinement_level;
  }
  [[nodiscard]] std::uint64_t slabs_per_node() const {
    return (dim() + num_nodes - 1) / num_nodes;
  }
  /// Elements owned by one (interior) node.
  [[nodiscard]] std::uint64_t elements_per_node() const {
    return slabs_per_node() * dim() * dim();
  }
  /// Face data exchanged with ONE neighbour per RK stage: the boundary
  /// layer's face traces.
  [[nodiscard]] Bytes halo_bytes(std::uint32_t num_vars, int n1d) const {
    return dim() * dim() *                         // elements in the layer
           static_cast<Bytes>(n1d) * n1d *         // face nodes each
           num_vars * 4;                           // FP32 traces
  }
  /// Valid when every node gets at least one slab.
  [[nodiscard]] bool valid() const { return num_nodes <= dim(); }
};

/// Per-step projection of a distributed Wave-PIM run.
struct ClusterEstimate {
  std::uint32_t num_nodes = 1;
  Seconds step_time;          ///< with halo exchange overlapped
  Seconds step_time_no_overlap;
  Seconds compute_per_step;   ///< per-node PIM time
  Seconds halo_per_step;      ///< inter-node exchange time
  Joules step_energy;         ///< all nodes
  double parallel_efficiency = 1.0;  ///< vs the 1-node run
};

/// Projects a problem decomposed across `num_nodes` nodes, each holding
/// one PIM chip. The per-node subproblem must fit the chip's batching
/// rules; the halo exchange overlaps the Volume phase (it only feeds the
/// Flux), mirroring the intra-chip pipelining of §6.3 at node scale.
ClusterEstimate estimate_cluster(const Decomposition& decomposition,
                                 dg::ProblemKind kind, int n1d,
                                 const pim::ChipConfig& chip,
                                 const NodeLink& link = {});

/// Strong-scaling sweep: same global problem, 1..max_nodes nodes
/// (powers of two). Efficiency is relative to the single-node run.
std::vector<ClusterEstimate> strong_scaling(int refinement_level,
                                            dg::ProblemKind kind, int n1d,
                                            const pim::ChipConfig& chip,
                                            std::uint32_t max_nodes,
                                            const NodeLink& link = {});

}  // namespace wavepim::cluster
