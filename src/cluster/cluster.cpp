#include "cluster/cluster.h"

#include <algorithm>

#include "common/error.h"
#include "trace/trace.h"

namespace wavepim::cluster {

namespace {

/// The fleet of `num_nodes` chips acts as one aggregated PIM pool for
/// capacity/batching purposes: blocks across nodes work independently and
/// the cross-node fraction of the flux traffic is priced separately as
/// the halo exchange.
pim::ChipConfig aggregate_chip(const pim::ChipConfig& chip,
                               std::uint32_t num_nodes) {
  pim::ChipConfig fleet = chip;
  fleet.name = chip.name + "x" + std::to_string(num_nodes);
  fleet.capacity = chip.capacity * num_nodes;
  return fleet;
}

}  // namespace

ClusterEstimate estimate_cluster(const Decomposition& decomposition,
                                 dg::ProblemKind kind, int n1d,
                                 const pim::ChipConfig& chip,
                                 const NodeLink& link) {
  WAVEPIM_REQUIRE(decomposition.valid(),
                  "more nodes than Z-slabs in the decomposition");
  trace::Span span("cluster.estimate",
                   static_cast<double>(decomposition.num_nodes));
  const mapping::Problem problem{kind, decomposition.refinement_level, n1d};

  mapping::Estimator estimator(
      problem, aggregate_chip(chip, decomposition.num_nodes), {});
  const auto& est = estimator.estimate();

  ClusterEstimate out;
  out.num_nodes = decomposition.num_nodes;
  // The aggregate-chip estimate funnels all batching traffic through one
  // HBM stack; the fleet has one per node, so the staging time divides.
  const Seconds hbm_correction =
      est.hbm_time_per_step *
      (1.0 - 1.0 / static_cast<double>(decomposition.num_nodes));
  out.compute_per_step = est.step_time - hbm_correction;

  // Halo exchange: once per RK stage, each node trades one element-layer
  // of face traces with each Z-neighbour (both directions concurrently on
  // a full-duplex link).
  Seconds halo_per_stage(0.0);
  if (decomposition.num_nodes > 1) {
    trace::Span halo_span("cluster.halo_exchange");
    const Bytes bytes =
        decomposition.halo_bytes(dg::is_elastic(kind) ? 9 : 4, n1d);
    halo_per_stage = link.transfer_time(bytes);
    trace::counter("cluster.halo_bytes", static_cast<double>(bytes));
  }
  const double stages = 5.0;
  out.halo_per_step = halo_per_stage * stages;

  // The halo only feeds the Flux phase, so it overlaps Volume the same
  // way the intra-chip fetch does (§6.3 at node scale); only the excess
  // beyond the Volume segment extends the stage.
  const Seconds hidden = est.segments.volume;
  const Seconds excess(std::max(0.0, (halo_per_stage - hidden).value()));
  out.step_time = out.compute_per_step + excess * stages;
  out.step_time_no_overlap = out.compute_per_step + out.halo_per_step;

  // Energy: the aggregate-chip estimate already scales the tile power
  // with capacity; add the per-node controller/host/NIC overheads the
  // aggregation folded into one chip.
  const pim::ComponentPower power;
  const double extra_w =
      (decomposition.num_nodes - 1) *
          (power.central_controller_w + power.chip_overhead_w() +
           power.cpu_host_w) +
      decomposition.num_nodes * link.power_w_per_nic;
  out.step_energy = est.step_energy + energy_at(extra_w, out.step_time);
  return out;
}

std::vector<ClusterEstimate> strong_scaling(int refinement_level,
                                            dg::ProblemKind kind, int n1d,
                                            const pim::ChipConfig& chip,
                                            std::uint32_t max_nodes,
                                            const NodeLink& link) {
  WAVEPIM_REQUIRE(max_nodes >= 1, "need at least one node");
  std::vector<ClusterEstimate> results;
  Seconds t1(0.0);
  for (std::uint32_t n = 1; n <= max_nodes; n *= 2) {
    Decomposition d{refinement_level, n};
    if (!d.valid()) {
      break;
    }
    auto est = estimate_cluster(d, kind, n1d, chip, link);
    if (n == 1) {
      t1 = est.step_time;
    }
    est.parallel_efficiency =
        (t1 / est.step_time) / static_cast<double>(n);
    results.push_back(est);
  }
  return results;
}

}  // namespace wavepim::cluster
