#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <utility>
#include <vector>

#include "mapping/element_program.h"
#include "mesh/structured_mesh.h"

namespace wavepim::mapping {

/// Shape-class program cache (the SIMDRAM-style lower-once / replay-many
/// model applied to the mapping layer).
///
/// A structured mesh has only a handful of distinct element *shapes*:
/// the equivalence class of (volume-coefficient set, per-face boundary
/// kind and flux-coefficient set) under a fixed ElementSetup. Every
/// element of a class emits the identical Volume / Flux / Integration
/// instruction stream — only the *addresses* (which chip blocks, which
/// neighbour) differ, and those are resolved by the executing sink, not
/// by the stream. The cache therefore lowers each class exactly once
/// into a shared flat arena and replays the stream per element.
///
/// Relocatable encoding: cached instructions reuse pim::Instruction but
/// hold *element-relative* operands —
///   * `block` / `peer_block` carry the element-local group index, not a
///     chip block id (the sink's Placement binds them per element);
///   * MemCpy carries a face tag in `row`: 0 for an intra-element
///     staging move, 1 + mesh::index_of(face) for a pull from that
///     face's neighbour (the replayer turns it back into
///     intra_transfer / inter_transfer);
///   * LutLookup folds the fetch count into `word_count` (one cached
///     instruction per lut_fetch call; absolute lowering re-expands it).

/// Span of one kernel's instructions inside the arena. Kept as indices
/// (not spans) so streams stay valid while the arena keeps growing.
struct StreamRef {
  std::uint32_t first = 0;
  std::uint32_t count = 0;
};

/// Flat shared storage for every cached class: one instruction vector
/// plus deduplicated row-permutation and constant-vector side tables.
/// Deduplication is exact (bitwise on floats), so two classes sharing
/// the reference element's gather patterns share one table.
class ProgramArena {
 public:
  void append(const pim::Instruction& inst) { instructions_.push_back(inst); }

  /// Interns a row table / value table, returning its id. Identical
  /// contents return the same id.
  std::uint32_t add_rows(std::span<const std::uint32_t> rows);
  std::uint32_t add_values(std::span<const float> values);

  [[nodiscard]] std::span<const pim::Instruction> view(StreamRef ref) const {
    return {instructions_.data() + ref.first, ref.count};
  }
  [[nodiscard]] std::span<const std::uint32_t> rows(std::uint32_t id) const {
    return row_tables_[id];
  }
  [[nodiscard]] std::span<const float> values(std::uint32_t id) const {
    return value_tables_[id];
  }

  [[nodiscard]] std::uint32_t num_instructions() const {
    return static_cast<std::uint32_t>(instructions_.size());
  }
  [[nodiscard]] std::size_t num_row_tables() const {
    return row_tables_.size();
  }
  [[nodiscard]] std::size_t num_value_tables() const {
    return value_tables_.size();
  }

 private:
  std::vector<pim::Instruction> instructions_;
  std::vector<std::vector<std::uint32_t>> row_tables_;
  std::vector<std::vector<float>> value_tables_;
  std::map<std::vector<std::uint32_t>, std::uint32_t> row_ids_;
  std::map<std::vector<float>, std::uint32_t> value_ids_;
};

/// ProgramSink that lowers an emitted kernel into the arena in the
/// relocatable encoding above. Element-agnostic by construction: it
/// never consults a mesh or placement, which is what makes the stream
/// shareable across every element of the class.
class RelocatableAssembler : public ProgramSink {
 public:
  explicit RelocatableAssembler(ProgramArena& arena) : arena_(arena) {}

  void scatter(std::uint32_t group, std::span<const std::uint32_t> rows,
               std::uint32_t col, std::span<const float> values,
               std::uint32_t distinct_values) override;
  void gather(std::uint32_t group, std::span<const std::uint32_t> src_rows,
              std::uint32_t src_col, std::uint32_t dst_col) override;
  void arith(std::uint32_t group, pim::Opcode op, std::uint32_t col_a,
             std::uint32_t col_b, std::uint32_t col_dst,
             std::uint32_t rows) override;
  void fscale(std::uint32_t group, std::uint32_t col_src,
              std::uint32_t col_dst, float imm, std::uint32_t rows) override;
  void faxpy(std::uint32_t group, std::uint32_t col_dst,
             std::uint32_t col_src, float a, float c,
             std::uint32_t rows) override;
  void arith_rows(std::uint32_t group, pim::Opcode op, std::uint32_t col_a,
                  std::uint32_t col_b, std::uint32_t col_dst,
                  std::span<const std::uint32_t> rows) override;
  void fscale_rows(std::uint32_t group, std::uint32_t col_src,
                   std::uint32_t col_dst, float imm,
                   std::span<const std::uint32_t> rows) override;
  void intra_transfer(std::uint32_t src_group, std::uint32_t src_col,
                      std::span<const std::uint32_t> src_rows,
                      std::uint32_t dst_group, std::uint32_t dst_col,
                      std::span<const std::uint32_t> dst_rows) override;
  void inter_transfer(mesh::Face face, std::uint32_t src_group,
                      std::uint32_t src_col,
                      std::span<const std::uint32_t> src_rows,
                      std::uint32_t dst_group, std::uint32_t dst_col,
                      std::span<const std::uint32_t> dst_rows) override;
  void lut_fetch(std::uint32_t group, std::uint32_t count) override;

 private:
  pim::Instruction memcpy_like(std::uint32_t src_group, std::uint32_t src_col,
                               std::span<const std::uint32_t> src_rows,
                               std::uint32_t dst_group, std::uint32_t dst_col,
                               std::span<const std::uint32_t> dst_rows);

  ProgramArena& arena_;
};

/// Replays a cached relocatable stream through a sink. The sink resolves
/// the element-relative operands — FunctionalSink executes bit-true on
/// the bound element's blocks, AssemblerSink links an absolute
/// LoweredProgram, CostSink tallies the class's op counts. The replayed
/// call sequence is identical to the original emission, so any
/// sink-observable property (fields, ledgers, transfer lists, deferred
/// charges) is bit-identical to uncached emission by construction.
void replay(const ProgramArena& arena, StreamRef stream, ProgramSink& sink);

/// Per-element shape class: which interned coefficient sets feed the
/// kernels and which faces are reflective walls. Elements with equal
/// keys lower to the identical stream.
struct FaceClass {
  bool boundary = false;
  std::uint32_t coeff_id = 0;  ///< interned FluxCoeffs id (0 = setup default)

  auto operator<=>(const FaceClass&) const = default;
};

struct ShapeClassKey {
  std::uint32_t volume_coeff_id = 0;  ///< interned VolumeCoeffs id (0 = default)
  std::array<FaceClass, 6> faces{};

  auto operator<=>(const ShapeClassKey&) const = default;
};

/// Lowers and owns the per-class streams of one problem. Build once
/// after the per-element coefficients are known; replay from any number
/// of workers — and any number of *simulations*: the class streams and
/// their arena are immutable after construction, and `integration`
/// memoises per (stage, dt) behind a shared_mutex (shared-lock lookups,
/// single-writer lowering) into per-entry arenas whose addresses are
/// stable for the cache's lifetime. A service chip pool therefore hands
/// one cache to every tenant of the same shape class (see
/// service::ProgramBank) without copying a stream.
class ProgramCache {
 public:
  /// Classifies every element of `mesh` (with optional per-element
  /// heterogeneous coefficient overrides, indexed like the simulation's)
  /// and lowers each distinct class once.
  ProgramCache(const ElementSetup& setup, const mesh::StructuredMesh& mesh,
               const std::vector<VolumeCoeffs>* volume_overrides,
               const std::vector<std::array<FluxCoeffs, 6>>* flux_overrides);

  /// Mesh-free variant: one representative all-interior class with the
  /// setup's uniform coefficients (the estimator's costing model).
  explicit ProgramCache(const ElementSetup& setup);

  [[nodiscard]] const ElementSetup& setup() const { return setup_; }
  [[nodiscard]] const ProgramArena& arena() const { return arena_; }

  [[nodiscard]] std::uint32_t num_classes() const {
    return static_cast<std::uint32_t>(classes_.size());
  }
  [[nodiscard]] std::uint32_t class_of(mesh::ElementId e) const {
    return class_of_[e];
  }

  [[nodiscard]] StreamRef volume(std::uint32_t cls) const {
    return classes_[cls].volume;
  }
  [[nodiscard]] StreamRef flux(std::uint32_t cls, mesh::Face f) const {
    return classes_[cls].flux[mesh::index_of(f)];
  }

  /// One memoised integration stage: its own arena (so later lowerings
  /// can never relocate a stream a concurrent reader is replaying) plus
  /// the stream spanning it.
  struct IntegrationProgram {
    ProgramArena arena;
    StreamRef stream;
  };

  /// Integration program for (stage, dt); lowered on first request and
  /// memoised (class-independent — every element runs the same stream).
  /// Thread-safe: lookups take a shared lock, a miss lowers under the
  /// exclusive lock; the returned reference stays valid for the cache's
  /// lifetime. Still fetch once per stage before the per-element
  /// fan-out — not for safety, just to keep the lock off the hot loop.
  const IntegrationProgram& integration(int stage, float dt);

 private:
  struct ClassStreams {
    StreamRef volume;
    std::array<StreamRef, 6> flux;
  };

  std::uint32_t lower_class(const ShapeClassKey& key,
                            const VolumeCoeffs* volume,
                            const std::array<const FluxCoeffs*, 6>& flux);

  const ElementSetup& setup_;
  ProgramArena arena_;
  std::vector<ClassStreams> classes_;
  std::vector<std::uint32_t> class_of_;  ///< per element; empty if mesh-free
  std::shared_mutex integration_mutex_;
  std::map<std::pair<int, std::uint32_t>,
           std::unique_ptr<IntegrationProgram>>
      integration_;
};

}  // namespace wavepim::mapping
