#include "mapping/element_program.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "dg/rk.h"

namespace wavepim::mapping {

using mesh::Axis;
using mesh::Face;

namespace {

/// Kernel-scoped scratch column allocator over a block layout.
class Scratch {
 public:
  explicit Scratch(const BlockLayout& layout) : layout_(layout) {}

  std::uint32_t alloc() {
    WAVEPIM_REQUIRE(next_ < layout_.scratch_count(),
                    "kernel exceeds the block's scratchpad columns");
    return layout_.col_scratch(next_++);
  }

 private:
  const BlockLayout& layout_;
  std::uint32_t next_ = 0;
};

}  // namespace

ElementSetup::ElementSetup(const Problem& problem, ExpansionMode mode,
                           double h, dg::AcousticMaterial acoustic,
                           dg::ElasticMaterial elastic)
    : problem_(problem),
      mode_(mode),
      ref_(dg::make_reference_element(problem.n1d)),
      h_(h),
      groups_(var_groups(problem.kind, mode)),
      acoustic_(acoustic),
      elastic_(elastic) {
  WAVEPIM_REQUIRE(h > 0.0, "element size must be positive");
  layouts_.reserve(groups_.size());
  owner_.assign(problem.num_vars(), 0);
  slot_.assign(problem.num_vars(), 0);
  for (std::uint32_t g = 0; g < groups_.size(); ++g) {
    layouts_.emplace_back(static_cast<std::uint32_t>(groups_[g].size()));
    WAVEPIM_REQUIRE(layouts_.back().fits(),
                    "var group starves the scratchpad (use expansion)");
    for (std::uint32_t s = 0; s < groups_[g].size(); ++s) {
      owner_[groups_[g][s]] = g;
      slot_[groups_[g][s]] = s;
    }
  }

  const dg::FluxType flux = dg::flux_of(problem.kind);
  if (dg::is_elastic(problem.kind)) {
    vol_ = probe_volume<dg::ElasticPhysics>(elastic_);
    for (Face f : mesh::kAllFaces) {
      flux_[mesh::index_of(f)] =
          probe_flux<dg::ElasticPhysics>(f, flux, elastic_, elastic_, false);
      flux_boundary_[mesh::index_of(f)] =
          probe_flux<dg::ElasticPhysics>(f, flux, elastic_, elastic_, true);
    }
  } else {
    vol_ = probe_volume<dg::AcousticPhysics>(acoustic_);
    for (Face f : mesh::kAllFaces) {
      flux_[mesh::index_of(f)] =
          probe_flux<dg::AcousticPhysics>(f, flux, acoustic_, acoustic_,
                                          false);
      flux_boundary_[mesh::index_of(f)] =
          probe_flux<dg::AcousticPhysics>(f, flux, acoustic_, acoustic_,
                                          true);
    }
  }
}

namespace {

/// Node rows 0..n-1 (identity list reused for whole-element transfers).
std::vector<std::uint32_t> iota_rows(std::uint32_t n) {
  std::vector<std::uint32_t> rows(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    rows[i] = i;
  }
  return rows;
}

/// Gather source rows for derivative offset k along `a`: node i reads the
/// node on its grid line whose a-coordinate is k.
std::vector<std::uint32_t> gather_sources(const dg::ReferenceElement& ref,
                                          Axis a, int k) {
  const int n1d = ref.n1d();
  std::vector<std::uint32_t> src(static_cast<std::size_t>(ref.num_nodes()));
  for (int n = 0; n < ref.num_nodes(); ++n) {
    auto ijk = ref.ijk_of(n);
    ijk[mesh::index_of(a)] = k;
    src[static_cast<std::size_t>(n)] =
        static_cast<std::uint32_t>(ref.node(ijk[0], ijk[1], ijk[2]));
  }
  (void)n1d;
  return src;
}

/// dshape coefficients for offset k along `a`: value at node i is
/// D[i_a][k] (the paper's dshape constants, Table 1).
std::vector<float> coeff_values(const dg::ReferenceElement& ref, Axis a,
                                int k) {
  std::vector<float> vals(static_cast<std::size_t>(ref.num_nodes()));
  for (int n = 0; n < ref.num_nodes(); ++n) {
    const int ia = ref.ijk_of(n)[mesh::index_of(a)];
    vals[static_cast<std::size_t>(n)] =
        static_cast<float>(ref.basis().d(ia, k));
  }
  return vals;
}

std::vector<std::uint32_t> to_u32(const std::vector<int>& v) {
  std::vector<std::uint32_t> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = static_cast<std::uint32_t>(v[i]);
  }
  return out;
}

}  // namespace

std::uint32_t ElementSetup::slice_group(Axis axis, std::uint32_t in_var,
                                        std::uint32_t out_var) const {
  if (mode_ == ExpansionMode::Acoustic4) {
    // Fig. 8: block d computes grad_p[d] and div_v[d]; p is duplicated
    // into the velocity blocks and the scaled div_v partial is shipped to
    // the p block for the contributions_p accumulation.
    return owner_of(dg::AcousticPhysics::Vx + mesh::index_of(axis));
  }
  (void)in_var;
  return owner_of(out_var);
}

void emit_volume(const ElementSetup& setup, ProgramSink& sink,
                 const VolumeCoeffs* coeffs) {
  const auto& ref = setup.ref();
  const auto nodes = static_cast<std::uint32_t>(ref.num_nodes());
  const int n1d = ref.n1d();
  const auto deriv_scale = static_cast<float>(2.0 / setup.h());
  const auto& vol = coeffs ? *coeffs : setup.volume_coeffs();
  const auto all_rows = iota_rows(nodes);
  const std::uint32_t num_vars = setup.problem().num_vars();
  const std::uint32_t num_groups = setup.num_groups();

  // Per-group scratch allocators live across the whole kernel: remote
  // partial accumulations land in the destination group's scratch.
  std::vector<Scratch> scratch;
  scratch.reserve(num_groups);
  for (std::uint32_t g = 0; g < num_groups; ++g) {
    scratch.emplace_back(setup.layout(g));
  }
  // One staging column per group for remote partials (allocated lazily).
  std::vector<std::uint32_t> remote_col(num_groups, UINT32_MAX);
  std::vector<bool> contrib_init(num_vars, false);

  for (std::uint32_t g = 0; g < num_groups; ++g) {
    const BlockLayout& layout = setup.layout(g);

    // Derivative slices assigned to this group, with their consumers:
    // consumers[axis][v] = list of (output var, coefficient).
    std::array<std::vector<std::uint32_t>, 3> inputs;
    std::array<std::array<std::vector<std::pair<std::uint32_t, float>>, 16>,
               3>
        consumers{};
    WAVEPIM_ASSERT(num_vars <= 16, "consumer table bound");
    for (Axis a : mesh::kAllAxes) {
      for (std::uint32_t o = 0; o < num_vars; ++o) {
        for (const auto& [v, c] : vol.terms(a, o)) {
          if (setup.slice_group(a, v, o) != g) {
            continue;
          }
          auto& list = inputs[mesh::index_of(a)];
          if (std::find(list.begin(), list.end(), v) == list.end()) {
            list.push_back(v);
          }
          consumers[mesh::index_of(a)][v].emplace_back(o, c);
        }
      }
    }

    // Stage foreign input variables into scratch columns (the expansion's
    // data-duplication cost, §6.2.1).
    std::vector<std::uint32_t> var_col(num_vars, UINT32_MAX);
    for (const auto& axis_list : inputs) {
      for (std::uint32_t v : axis_list) {
        if (var_col[v] != UINT32_MAX) {
          continue;
        }
        const std::uint32_t owner = setup.owner_of(v);
        if (owner == g) {
          var_col[v] = layout.col_var(setup.slot_of(v));
        } else {
          var_col[v] = scratch[g].alloc();
          sink.intra_transfer(owner,
                              setup.layout(owner).col_var(setup.slot_of(v)),
                              all_rows, g, var_col[v], all_rows);
        }
      }
    }

    const std::uint32_t col_coeff = scratch[g].alloc();
    const std::uint32_t col_gather = scratch[g].alloc();
    const std::uint32_t col_prod = scratch[g].alloc();

    for (Axis a : mesh::kAllAxes) {
      const auto& axis_inputs = inputs[mesh::index_of(a)];
      if (axis_inputs.empty()) {
        continue;
      }
      // One accumulator per derivative slice of this axis.
      std::vector<std::uint32_t> acc(axis_inputs.size());
      for (auto& c : acc) {
        c = scratch[g].alloc();
      }

      for (int k = 0; k < n1d; ++k) {
        sink.scatter(g, all_rows, col_coeff, coeff_values(ref, a, k),
                     static_cast<std::uint32_t>(n1d));
        const auto src = gather_sources(ref, a, k);
        for (std::size_t s = 0; s < axis_inputs.size(); ++s) {
          sink.gather(g, src, var_col[axis_inputs[s]], col_gather);
          if (k == 0) {
            sink.arith(g, pim::Opcode::Fmul, col_gather, col_coeff, acc[s],
                       nodes);
          } else {
            sink.arith(g, pim::Opcode::Fmul, col_gather, col_coeff, col_prod,
                       nodes);
            sink.arith(g, pim::Opcode::Fadd, acc[s], col_prod, acc[s], nodes);
          }
        }
      }

      // Fold the axis accumulators into contributions (jacobian-scaled),
      // shipping remote partials to the consuming block when the output
      // lives elsewhere (Fig. 8's inter-block memcpy of div_v).
      for (std::size_t s = 0; s < axis_inputs.size(); ++s) {
        const std::uint32_t v = axis_inputs[s];
        for (const auto& [o, c] :
             consumers[mesh::index_of(a)][v]) {
          const float imm = c * deriv_scale;
          const std::uint32_t dst = setup.owner_of(o);
          const std::uint32_t col_contrib =
              setup.layout(dst).col_contrib(setup.slot_of(o));
          if (dst == g) {
            if (contrib_init[o]) {
              sink.fscale(g, acc[s], col_prod, imm, nodes);
              sink.arith(g, pim::Opcode::Fadd, col_contrib, col_prod,
                         col_contrib, nodes);
            } else {
              sink.fscale(g, acc[s], col_contrib, imm, nodes);
              contrib_init[o] = true;
            }
          } else {
            sink.fscale(g, acc[s], col_prod, imm, nodes);
            if (remote_col[dst] == UINT32_MAX) {
              remote_col[dst] = scratch[dst].alloc();
            }
            sink.intra_transfer(g, col_prod, all_rows, dst, remote_col[dst],
                                all_rows);
            if (contrib_init[o]) {
              sink.arith(dst, pim::Opcode::Fadd, col_contrib,
                         remote_col[dst], col_contrib, nodes);
            } else {
              sink.fscale(dst, remote_col[dst], col_contrib, 1.0f, nodes);
              contrib_init[o] = true;
            }
          }
        }
      }
    }
  }

  // Outputs with no volume terms at all would leave stale contributions;
  // every physics we model evolves every variable, so assert instead.
  for (std::uint32_t o = 0; o < num_vars; ++o) {
    WAVEPIM_ASSERT(contrib_init[o], "volume left a contribution stale");
  }
}

void emit_flux_face(const ElementSetup& setup, Face face, bool boundary,
                    ProgramSink& sink, const FluxCoeffs* coeff_override) {
  const auto& ref = setup.ref();
  const auto& coeffs =
      coeff_override ? *coeff_override : setup.flux_coeffs(face, boundary);
  const auto face_rows = to_u32(ref.face_nodes(face));
  const auto nbr_rows = to_u32(ref.face_nodes(mesh::opposite(face)));
  const auto lift =
      static_cast<float>((2.0 / setup.h()) / ref.end_weight());
  const std::uint32_t lut_total = host_special_ops_per_face(
      setup.problem().kind);

  for (std::uint32_t g = 0; g < setup.num_groups(); ++g) {
    const auto& outputs = setup.groups()[g];
    const BlockLayout& layout = setup.layout(g);
    Scratch scratch(layout);

    // Host-precomputed flux immediates arrive through the LUT (§4.3);
    // the constants are shared across the element's blocks.
    sink.lut_fetch(g, (lut_total + setup.num_groups() - 1) /
                          setup.num_groups());

    // Trace columns needed by this group's outputs.
    std::vector<std::uint32_t> own_col(setup.problem().num_vars(),
                                       UINT32_MAX);
    std::vector<std::uint32_t> nbr_col(setup.problem().num_vars(),
                                       UINT32_MAX);
    auto need_own = [&](std::uint32_t w) {
      if (own_col[w] != UINT32_MAX) {
        return;
      }
      const std::uint32_t owner = setup.owner_of(w);
      if (owner == g) {
        own_col[w] = layout.col_var(setup.slot_of(w));
      } else {
        own_col[w] = scratch.alloc();
        sink.intra_transfer(owner,
                            setup.layout(owner).col_var(setup.slot_of(w)),
                            face_rows, g, own_col[w], face_rows);
      }
    };
    auto need_nbr = [&](std::uint32_t w) {
      if (nbr_col[w] != UINT32_MAX) {
        return;
      }
      nbr_col[w] = scratch.alloc();
      sink.inter_transfer(face, setup.owner_of(w),
                          setup.layout(setup.owner_of(w))
                              .col_var(setup.slot_of(w)),
                          nbr_rows, g, nbr_col[w], face_rows);
    };

    constexpr float kTol = 1e-12f;
    for (std::uint32_t o : outputs) {
      for (std::uint32_t w = 0; w < coeffs.num_vars; ++w) {
        if (std::fabs(coeffs.own(o, w)) > kTol) {
          need_own(w);
        }
        if (!boundary && std::fabs(coeffs.nbr(o, w)) > kTol) {
          need_nbr(w);
        }
      }
    }

    const std::uint32_t col_tmp = scratch.alloc();
    for (std::uint32_t o : outputs) {
      const std::uint32_t col_contrib = layout.col_contrib(setup.slot_of(o));
      for (std::uint32_t w = 0; w < coeffs.num_vars; ++w) {
        const float a = coeffs.own(o, w);
        if (std::fabs(a) > kTol) {
          sink.fscale_rows(g, own_col[w], col_tmp, -lift * a, face_rows);
          sink.arith_rows(g, pim::Opcode::Fadd, col_contrib, col_tmp,
                          col_contrib, face_rows);
        }
        if (!boundary) {
          const float b = coeffs.nbr(o, w);
          if (std::fabs(b) > kTol) {
            sink.fscale_rows(g, nbr_col[w], col_tmp, -lift * b, face_rows);
            sink.arith_rows(g, pim::Opcode::Fadd, col_contrib, col_tmp,
                            col_contrib, face_rows);
          }
        }
      }
    }
  }
}

void emit_integration_stage(const ElementSetup& setup, int stage, float dt,
                            ProgramSink& sink) {
  WAVEPIM_REQUIRE(stage >= 0 && stage < dg::Lsrk54::kNumStages,
                  "RK stage out of range");
  const auto nodes = static_cast<std::uint32_t>(setup.ref().num_nodes());
  const auto a = static_cast<float>(dg::Lsrk54::kA[stage]);
  const auto b = static_cast<float>(dg::Lsrk54::kB[stage]);

  for (std::uint32_t g = 0; g < setup.num_groups(); ++g) {
    const BlockLayout& layout = setup.layout(g);
    for (std::uint32_t s = 0; s < layout.num_vars; ++s) {
      // k = A k + dt r ; u = u + B k (Table 1's auxiliaries).
      sink.faxpy(g, layout.col_aux(s), layout.col_contrib(s), a, dt, nodes);
      sink.faxpy(g, layout.col_var(s), layout.col_aux(s), 1.0f, b, nodes);
    }
  }
}

}  // namespace wavepim::mapping
