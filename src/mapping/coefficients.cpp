#include "mapping/coefficients.h"

#include <cmath>

#include "common/error.h"

namespace wavepim::mapping {

namespace {

/// Coefficients smaller than this are treated as structural zeros; the
/// probe operates on unit inputs so this is an absolute scale.
constexpr float kZeroTol = 1e-12f;

}  // namespace

std::vector<std::pair<std::uint32_t, float>> VolumeCoeffs::terms(
    mesh::Axis a, std::uint32_t out) const {
  std::vector<std::pair<std::uint32_t, float>> t;
  for (std::uint32_t v = 0; v < num_vars; ++v) {
    const float c = at(a, out, v);
    if (std::fabs(c) > kZeroTol) {
      t.emplace_back(v, c);
    }
  }
  return t;
}

std::vector<std::pair<mesh::Axis, std::uint32_t>> VolumeCoeffs::needed_slices()
    const {
  std::vector<std::pair<mesh::Axis, std::uint32_t>> slices;
  for (mesh::Axis a : mesh::kAllAxes) {
    for (std::uint32_t v = 0; v < num_vars; ++v) {
      for (std::uint32_t o = 0; o < num_vars; ++o) {
        if (std::fabs(at(a, o, v)) > kZeroTol) {
          slices.emplace_back(a, v);
          break;
        }
      }
    }
  }
  return slices;
}

std::size_t FluxCoeffs::nonzeros() const {
  std::size_t n = 0;
  for (float c : alpha) {
    if (std::fabs(c) > kZeroTol) {
      ++n;
    }
  }
  for (float c : beta) {
    if (std::fabs(c) > kZeroTol) {
      ++n;
    }
  }
  return n;
}

std::vector<std::uint32_t> FluxCoeffs::needed_neighbor_vars() const {
  std::vector<std::uint32_t> vars;
  for (std::uint32_t w = 0; w < num_vars; ++w) {
    for (std::uint32_t o = 0; o < num_vars; ++o) {
      if (std::fabs(nbr(o, w)) > kZeroTol) {
        vars.push_back(w);
        break;
      }
    }
  }
  return vars;
}

template <typename Physics>
VolumeCoeffs probe_volume(const typename Physics::Material& m) {
  constexpr std::uint32_t v_count = Physics::kNumVars;
  VolumeCoeffs out;
  out.num_vars = v_count;

  for (mesh::Axis a : mesh::kAllAxes) {
    auto& mat = out.coeff[mesh::index_of(a)];
    mat.assign(static_cast<std::size_t>(v_count) * v_count, 0.0f);
    for (std::uint32_t v = 0; v < v_count; ++v) {
      std::array<float, Physics::kNumVars> deriv_data{};
      std::array<float, Physics::kNumVars> rhs_data{};
      deriv_data[v] = 1.0f;
      std::array<const float*, Physics::kNumVars> deriv{};
      std::array<float*, Physics::kNumVars> rhs{};
      for (std::uint32_t i = 0; i < v_count; ++i) {
        deriv[i] = &deriv_data[i];
        rhs[i] = &rhs_data[i];
      }
      Physics::accumulate_volume(a, m, deriv, rhs, 1);
      for (std::uint32_t o = 0; o < v_count; ++o) {
        mat[o * v_count + v] = rhs_data[o];
      }
    }
  }
  return out;
}

template <typename Physics>
FluxCoeffs probe_flux(mesh::Face face, dg::FluxType flux,
                      const typename Physics::Material& mm,
                      const typename Physics::Material& mp,
                      bool boundary_reflect) {
  constexpr std::uint32_t v_count = Physics::kNumVars;
  const mesh::Axis axis = mesh::axis_of(face);
  const int sign = mesh::normal_sign(face);

  FluxCoeffs out;
  out.num_vars = v_count;
  out.alpha.assign(static_cast<std::size_t>(v_count) * v_count, 0.0f);
  out.beta.assign(static_cast<std::size_t>(v_count) * v_count, 0.0f);

  std::array<float, Physics::kNumVars> um{};
  std::array<float, Physics::kNumVars> up{};
  std::array<float, Physics::kNumVars> delta{};

  for (std::uint32_t w = 0; w < v_count; ++w) {
    // Own-trace column (with the reflected ghost folded in if boundary).
    um.fill(0.0f);
    up.fill(0.0f);
    um[w] = 1.0f;
    if (boundary_reflect) {
      Physics::reflect(axis, sign, um.data(), up.data());
    }
    Physics::flux_correction(axis, sign, flux, mm, mp, um.data(), up.data(),
                             delta.data());
    for (std::uint32_t o = 0; o < v_count; ++o) {
      out.alpha[o * v_count + w] = delta[o];
    }

    if (!boundary_reflect) {
      // Neighbour-trace column.
      um.fill(0.0f);
      up.fill(0.0f);
      up[w] = 1.0f;
      Physics::flux_correction(axis, sign, flux, mm, mp, um.data(), up.data(),
                               delta.data());
      for (std::uint32_t o = 0; o < v_count; ++o) {
        out.beta[o * v_count + w] = delta[o];
      }
    }
  }
  return out;
}

std::uint32_t host_special_ops_per_face(dg::ProblemKind kind) {
  switch (kind) {
    case dg::ProblemKind::Acoustic:
      // Z- and Z+ (sqrt each) plus 1/(Z- + Z+) and 1/rho: 4.
      return 4;
    case dg::ProblemKind::ElasticCentral:
      // Central needs only 1/rho on each side.
      return 2;
    case dg::ProblemKind::ElasticRiemann:
      // Zp/Zs per side (4 sqrts), two denominators, two 1/rho: 8.
      return 8;
  }
  return 0;
}

template VolumeCoeffs probe_volume<dg::AcousticPhysics>(
    const dg::AcousticMaterial&);
template VolumeCoeffs probe_volume<dg::ElasticPhysics>(
    const dg::ElasticMaterial&);
template FluxCoeffs probe_flux<dg::AcousticPhysics>(mesh::Face, dg::FluxType,
                                                    const dg::AcousticMaterial&,
                                                    const dg::AcousticMaterial&,
                                                    bool);
template FluxCoeffs probe_flux<dg::ElasticPhysics>(mesh::Face, dg::FluxType,
                                                   const dg::ElasticMaterial&,
                                                   const dg::ElasticMaterial&,
                                                   bool);

}  // namespace wavepim::mapping
