#pragma once

#include <cstdint>
#include <optional>

#include "mapping/config.h"
#include "mapping/pipeline.h"
#include "pim/chip.h"
#include "pim/interconnect.h"

namespace wavepim::mapping {

/// Complete per-time-step projection of a problem on a Wave-PIM chip.
struct StepEstimate {
  MappingConfig config;

  /// One RK stage of one batch.
  StageSegments segments;
  PipelineSchedule stage_schedule;         ///< pipelined (Fig. 13)
  PipelineSchedule stage_schedule_serial;  ///< no pipelining

  /// Whole time step: 5 RK stages x batches, plus off-chip staging.
  Seconds step_time;
  Seconds step_time_unpipelined;
  Seconds hbm_time_per_step;

  /// The paper's own §7.1 methodology: FLOPs divided by the chip's peak
  /// throughput scaled by the active-lane fraction (plus batching
  /// traffic). More optimistic than the detailed instruction-stream
  /// model; both series are reported by the benches.
  Seconds step_time_peak_method;

  /// Energy per time step (chip static + block dynamic + network + host +
  /// HBM).
  Joules step_energy;
  Joules dynamic_energy;
  Joules static_energy;
  Joules network_energy;
  Joules host_energy;
  Joules hbm_energy;

  Bytes hbm_bytes_per_step = 0;

  /// Fig. 14 decomposition of the flux work per stage.
  Seconds flux_intra_element;  ///< star-state compute + in-element staging
  Seconds flux_inter_element;  ///< neighbour-data transfer makespan

  [[nodiscard]] double pipeline_speedup() const {
    return step_time_unpipelined / step_time;
  }
};

/// Maps a wave-simulation problem onto a PIM chip configuration and
/// projects per-step time and energy, reproducing the paper's methodology:
/// Table 5 config selection, per-block instruction-stream timing,
/// interconnect contention scheduling, batching traffic and §6.3
/// pipelining.
class Estimator {
 public:
  struct Options {
    bool pipelined = true;
    /// Host sqrt/inverse throughput (vectorised, LUT-reusing rate).
    double host_special_ops_per_s = 1.0e10;
    /// Override the Table 5 choice (nullopt = choose automatically).
    std::optional<ExpansionMode> force_expansion;
    /// Place elements in Morton (Z-curve) order instead of row-major:
    /// all three axis-neighbours stay close in block id, trading the
    /// row-major layout's cheap X-traffic for cheaper Z-traffic. Only
    /// effective when the batch window is a power of two.
    bool morton_placement = false;
  };

  Estimator(Problem problem, pim::ChipConfig chip, Options options);
  Estimator(Problem problem, pim::ChipConfig chip)
      : Estimator(std::move(problem), std::move(chip), Options{}) {}

  [[nodiscard]] const Problem& problem() const { return problem_; }
  [[nodiscard]] const pim::ChipConfig& chip() const { return chip_; }
  [[nodiscard]] const MappingConfig& config() const { return config_; }

  /// Per-step projection (cached after the first call).
  [[nodiscard]] const StepEstimate& estimate() const;

  /// Total projection over a run of `steps` time steps.
  [[nodiscard]] pim::OpCost run_cost(std::uint64_t steps) const;

 private:
  StepEstimate compute() const;

  Problem problem_;
  pim::ChipConfig chip_;
  Options options_;
  MappingConfig config_;
  mutable std::optional<StepEstimate> cached_;
};

}  // namespace wavepim::mapping
