#include "mapping/residency.h"

#include <limits>

#include "common/error.h"
#include "trace/trace.h"

namespace wavepim::mapping {

namespace {

constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();

constexpr mesh::Face kYMinusFaces[] = {mesh::Face::YMinus};
constexpr mesh::Face kXFaces[] = {mesh::Face::XMinus, mesh::Face::XPlus};
constexpr mesh::Face kZFaces[] = {mesh::Face::ZMinus, mesh::Face::ZPlus};
constexpr mesh::Face kYPlusFaces[] = {mesh::Face::YPlus};

}  // namespace

std::span<const mesh::Face> faces_of(FaceGroup g) {
  switch (g) {
    case FaceGroup::YMinus:
      return kYMinusFaces;
    case FaceGroup::X:
      return kXFaces;
    case FaceGroup::Z:
      return kZFaces;
    case FaceGroup::YPlus:
      return kYPlusFaces;
  }
  WAVEPIM_ASSERT(false, "unknown face group");
  return {};
}

FaceGroup group_of(BatchStep::Kind kind) {
  switch (kind) {
    case BatchStep::Kind::ComputeX:
      return FaceGroup::X;
    case BatchStep::Kind::ComputeZ:
      return FaceGroup::Z;
    case BatchStep::Kind::ComputeYMinus:
      return FaceGroup::YMinus;
    case BatchStep::Kind::ComputeYPlus:
      return FaceGroup::YPlus;
    case BatchStep::Kind::LoadSlices:
    case BatchStep::Kind::StoreSlices:
      break;
  }
  WAVEPIM_ASSERT(false, "step kind has no face group");
  return FaceGroup::X;
}

bool y_minus_deferred(const mesh::StructuredMesh& mesh, mesh::ElementId e) {
  return mesh.boundary() == mesh::Boundary::Periodic &&
         mesh.slice_of(e) == 0;
}

std::array<FaceGroup, 4> canonical_group_order(bool deferred) {
  if (deferred) {
    return {FaceGroup::X, FaceGroup::Z, FaceGroup::YPlus, FaceGroup::YMinus};
  }
  return {FaceGroup::YMinus, FaceGroup::X, FaceGroup::Z, FaceGroup::YPlus};
}

StagingCounts count_staging(const BatchSchedule& schedule,
                            Bytes slice_bytes) {
  StagingCounts counts;
  if (schedule.resident_slices >= schedule.num_slices) {
    return counts;  // single window: state never leaves the chip
  }
  counts.slice_loads = schedule.total_loads();
  counts.slice_stores = schedule.total_stores();
  counts.bytes =
      (counts.slice_loads + counts.slice_stores) * slice_bytes;
  return counts;
}

ResidencyManager::ResidencyManager(pim::Chip& chip,
                                   const mesh::StructuredMesh& mesh,
                                   std::uint32_t blocks_per_element,
                                   std::uint32_t rows, Bytes element_bytes)
    : chip_(chip),
      bpe_(blocks_per_element),
      rows_(rows),
      num_slices_(mesh.num_slices()),
      elements_per_slice_(mesh.elements_per_slice()),
      slice_bytes_(element_bytes * mesh.elements_per_slice()) {
  const std::uint32_t num_virtual = mesh.num_elements() * bpe_;
  const std::uint32_t capacity = chip_.config().num_blocks();
  const std::uint32_t blocks_per_slice = elements_per_slice_ * bpe_;
  resident_ = num_virtual <= capacity;

  // Elements slice-major; within a slice ids ascend (i fastest, then k).
  slice_order_.reserve(mesh.num_elements());
  for (std::uint32_t s = 0; s < num_slices_; ++s) {
    for (std::uint32_t k = 0; k < mesh.dim(); ++k) {
      for (std::uint32_t i = 0; i < mesh.dim(); ++i) {
        slice_order_.push_back(mesh.element_at(i, s, k));
      }
    }
  }

  table_.assign(num_virtual, nullptr);
  if (resident_) {
    window_ = num_slices_;
    chip_.ensure_blocks(num_virtual);
    for (std::uint32_t v = 0; v < num_virtual; ++v) {
      table_[v] = &chip_.block(v);
    }
  } else {
    const std::uint32_t cap_slices = capacity / blocks_per_slice;
    WAVEPIM_REQUIRE(cap_slices >= 2,
                    "batched residency needs at least two slices on chip");
    window_ = cap_slices - 1;  // one slot is the Fig. 7 staging slice
    chip_.ensure_blocks((window_ + 1) * blocks_per_slice);
    slot_of_slice_.assign(num_slices_, kNoSlot);
    for (std::uint32_t slot = window_ + 1; slot-- > 0;) {
      free_slots_.push_back(slot);
    }
    backing_ = pim::FloatArena::instance().allocate(
        static_cast<std::size_t>(num_virtual) * pim::Block::kWords * rows_);
  }
  schedule_ = build_flux_batch_schedule(
      num_slices_, window_, mesh.boundary() == mesh::Boundary::Periodic);
}

std::span<float> ResidencyManager::backing_column(std::uint32_t vblock,
                                                  std::uint32_t col) {
  const std::size_t offset =
      (static_cast<std::size_t>(vblock) * pim::Block::kWords + col) * rows_;
  return {backing_.data() + offset, rows_};
}

void ResidencyManager::bind_slice(std::uint32_t slice, std::uint32_t slot) {
  const std::uint32_t blocks_per_slice = elements_per_slice_ * bpe_;
  const mesh::ElementId* elements =
      slice_order_.data() +
      static_cast<std::size_t>(slice) * elements_per_slice_;
  for (std::uint32_t l = 0; l < elements_per_slice_; ++l) {
    const std::uint32_t physical_base = slot * blocks_per_slice + l * bpe_;
    for (std::uint32_t g = 0; g < bpe_; ++g) {
      table_[static_cast<std::size_t>(elements[l]) * bpe_ + g] =
          &chip_.block(physical_base + g);
    }
  }
}

void ResidencyManager::load_slices(std::uint32_t first, std::uint32_t last) {
  if (resident_) {
    return;
  }
  for (std::uint32_t s = first; s <= last; ++s) {
    trace::Span span("hbm.stage", static_cast<double>(s));
    WAVEPIM_ASSERT(slot_of_slice_[s] == kNoSlot, "slice already resident");
    WAVEPIM_ASSERT(!free_slots_.empty(), "residency window exhausted");
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slot_of_slice_[s] = slot;
    bind_slice(s, slot);

    const mesh::ElementId* elements =
        slice_order_.data() +
        static_cast<std::size_t>(s) * elements_per_slice_;
    for (std::uint32_t l = 0; l < elements_per_slice_; ++l) {
      for (std::uint32_t g = 0; g < bpe_; ++g) {
        const std::uint32_t vb = elements[l] * bpe_ + g;
        pim::Block& block = *table_[vb];
        for (std::uint32_t col = 0; col < pim::Block::kWords; ++col) {
          block.load_column(col, backing_column(vb, col));
        }
      }
    }
    ++slice_loads_;
    bytes_staged_ += slice_bytes_;
    hbm_cost_ += chip_.hbm().transfer_cost(slice_bytes_);
    trace::counter("hbm.bytes", static_cast<double>(bytes_staged_));
  }
}

void ResidencyManager::store_slices(std::uint32_t first, std::uint32_t last) {
  if (resident_) {
    return;
  }
  for (std::uint32_t s = first; s <= last; ++s) {
    trace::Span span("hbm.stage", static_cast<double>(s));
    const std::uint32_t slot = slot_of_slice_[s];
    WAVEPIM_ASSERT(slot != kNoSlot, "storing a non-resident slice");

    const mesh::ElementId* elements =
        slice_order_.data() +
        static_cast<std::size_t>(s) * elements_per_slice_;
    for (std::uint32_t l = 0; l < elements_per_slice_; ++l) {
      for (std::uint32_t g = 0; g < bpe_; ++g) {
        const std::uint32_t vb = elements[l] * bpe_ + g;
        const pim::Block& block = *table_[vb];
        for (std::uint32_t col = 0; col < pim::Block::kWords; ++col) {
          block.store_column(col, backing_column(vb, col));
        }
        table_[vb] = nullptr;
      }
    }
    slot_of_slice_[s] = kNoSlot;
    free_slots_.push_back(slot);
    ++slice_stores_;
    bytes_staged_ += slice_bytes_;
    hbm_cost_ += chip_.hbm().transfer_cost(slice_bytes_);
    trace::counter("hbm.bytes", static_cast<double>(bytes_staged_));
  }
}

}  // namespace wavepim::mapping
