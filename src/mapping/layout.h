#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dg/op_counter.h"
#include "pim/params.h"

namespace wavepim::mapping {

/// How one element's variables are spread over memory blocks (§6.2).
enum class ExpansionMode : std::uint8_t {
  None,      ///< one block per element (naive "N")
  Acoustic4, ///< acoustic E_p: p and the three v components on 4 blocks
  Elastic3,  ///< elastic E_r: 9 variables over 3 blocks (row-size forced)
  Elastic9,  ///< elastic E_r & E_p: one variable per block
};

const char* to_string(ExpansionMode m);

/// Blocks per element under a mode.
std::uint32_t blocks_per_element(ExpansionMode m);

/// Modes applicable to a problem, in increasing parallelism order.
std::vector<ExpansionMode> applicable_modes(dg::ProblemKind kind);

/// Word-column assignment of one block following Fig. 5: per node row,
/// mass-inverse | variables | auxiliaries | contributions | scratchpad.
/// `num_vars` is the number of variables resident in *this* block
/// (4 for the naive acoustic layout; 3 under Elastic3; 1 under
/// Acoustic4/Elastic9 compute blocks).
struct BlockLayout {
  explicit BlockLayout(std::uint32_t num_vars);

  std::uint32_t num_vars;

  [[nodiscard]] std::uint32_t col_mass_inverse() const { return 0; }
  [[nodiscard]] std::uint32_t col_var(std::uint32_t v) const;
  [[nodiscard]] std::uint32_t col_aux(std::uint32_t v) const;
  [[nodiscard]] std::uint32_t col_contrib(std::uint32_t v) const;
  [[nodiscard]] std::uint32_t scratch_begin() const {
    return 1 + 3 * num_vars;
  }
  [[nodiscard]] std::uint32_t scratch_count() const {
    return pim::ChipConfig::words_per_row() - scratch_begin();
  }
  [[nodiscard]] std::uint32_t col_scratch(std::uint32_t i) const;

  /// Minimum scratch columns any kernel program needs (gather staging,
  /// coefficient column, product, accumulator, and two trace columns).
  static constexpr std::uint32_t kMinScratch = 6;

  /// True if this many resident variables leaves enough scratchpad — the
  /// paper's reason the elastic simulation cannot use one block (§5.1).
  [[nodiscard]] bool fits() const { return scratch_count() >= kMinScratch; }
};

/// Variable-to-block assignment for an expansion mode. Entry g lists the
/// variable indices resident in the element's g-th block.
std::vector<std::vector<std::uint32_t>> var_groups(dg::ProblemKind kind,
                                                   ExpansionMode m);

/// Which of the element's blocks owns a variable.
std::uint32_t owner_block_of_var(
    const std::vector<std::vector<std::uint32_t>>& groups, std::uint32_t var);

/// Storage footprint of one element's state in off-chip memory (used by
/// the batching model): variables + auxiliaries + contributions per node.
Bytes element_state_bytes(dg::ProblemKind kind, int n1d);

}  // namespace wavepim::mapping
