#include "mapping/pipeline.h"

#include <algorithm>

#include "common/error.h"
#include "trace/trace.h"

namespace wavepim::mapping {

Seconds PipelineSchedule::end_of(const std::string& name) const {
  for (const auto& iv : timeline) {
    if (iv.name == name) {
      return iv.end;
    }
  }
  WAVEPIM_REQUIRE(false, "no timeline interval named " + name);
}

PipelineSchedule schedule_stage_pipelined(const StageSegments& seg) {
  trace::Span span("map.pipeline_stage");
  PipelineSchedule s;
  auto add = [&](const char* name, Seconds start, Seconds len) {
    s.timeline.push_back({name, start, start + len});
    return start + len;
  };

  // Volume, host pre-processing and the (-1) fetch all start together.
  const Seconds v_end = add("volume", Seconds(0.0), seg.volume);
  const Seconds h_end = add("host", Seconds(0.0), seg.host_preprocess);
  const Seconds fm_end = add("fetch(-1)", Seconds(0.0), seg.fetch_minus);

  // Flux(-1) compute needs the volume drivers free, its data, and the
  // host-produced LUT constants.
  const Seconds cm_start = std::max({v_end, h_end, fm_end});
  const Seconds cm_end = add("flux(-1)", cm_start, seg.compute_minus);

  // The (+1) fetch shares the interconnect with the (-1) fetch, so it
  // queues behind it but overlaps the (-1) compute.
  const Seconds fp_end = add("fetch(+1)", fm_end, seg.fetch_plus);

  const Seconds cp_start = std::max(cm_end, fp_end);
  const Seconds cp_end = add("flux(+1)", cp_start, seg.compute_plus);

  s.total = add("integration", cp_end, seg.integration);
  return s;
}

PipelineSchedule schedule_stage_serial(const StageSegments& seg) {
  PipelineSchedule s;
  Seconds t(0.0);
  auto add = [&](const char* name, Seconds len) {
    s.timeline.push_back({name, t, t + len});
    t += len;
  };
  add("volume", seg.volume);
  add("host", seg.host_preprocess);
  add("fetch(-1)", seg.fetch_minus);
  add("flux(-1)", seg.compute_minus);
  add("fetch(+1)", seg.fetch_plus);
  add("flux(+1)", seg.compute_plus);
  add("integration", seg.integration);
  s.total = t;
  return s;
}

}  // namespace wavepim::mapping
