#include "mapping/word_avx2.h"

#include "common/error.h"
#include "mapping/exec_plan.h"
#include "pim/block.h"

// The engine is gated per-function with __attribute__((target("avx2")))
// rather than a TU-wide -mavx2: the attribute lets GCC/clang emit AVX2
// intrinsics from an otherwise-baseline translation unit, so no inline
// function from a shared header can ever be instantiated with AVX2 code
// and leak into baseline binaries through the linker. Dispatch happens
// once, in WordPlan's constructor, via supported().
//
// The hot kernels are specialized on the (small) group counts: the
// destination loop fully unrolls, and the per-op constants — lane
// masks, permutation indices, scatter values — hoist into ymm registers
// once per op instead of reloading per element. At 9-27 rows per op the
// kernels are load-port bound, so removing those reloads is worth more
// than the arithmetic itself. Ops wider than the specialized forms
// (not produced by any current program, but legal) take the generic
// un-hoisted loop.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define WAVEPIM_WORD_AVX2 1
#include <immintrin.h>
#endif

namespace wavepim::mapping::wordavx {

#if WAVEPIM_WORD_AVX2

#define WAVEPIM_AVX2_FN \
  __attribute__((target("avx2"), always_inline)) static inline

namespace {

WAVEPIM_AVX2_FN __m256 lane_mask(const AvxOp& op, std::uint32_t g) {
  return _mm256_castsi256_ps(_mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(op.mask + 8 * g)));
}

struct AddT {
  WAVEPIM_AVX2_FN __m256 apply(__m256 a, __m256 b) {
    return _mm256_add_ps(a, b);
  }
};
struct SubT {
  WAVEPIM_AVX2_FN __m256 apply(__m256 a, __m256 b) {
    return _mm256_sub_ps(a, b);
  }
};
struct MulT {
  WAVEPIM_AVX2_FN __m256 apply(__m256 a, __m256 b) {
    return _mm256_mul_ps(a, b);
  }
};

/// dst = op(a, b) over the window; masked groups keep old lanes via a
/// blend against the freshly loaded destination (rewriting identical
/// bytes — bit-neutral, and race-free because every row of the window
/// belongs to this element's block).
template <typename OpT, int NG>
__attribute__((target("avx2"))) void binary_n(const AvxOp& op,
                                              float* const* ptrs,
                                              std::size_t n,
                                              std::uint32_t num_groups) {
  __m256 m[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
  }
  const std::uint32_t nfull = op.nfull;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    const float* b = w + op.off_b;
    float* d = w + op.off_dst;
    for (int g = 0; g < NG; ++g) {
      const __m256 v = OpT::apply(_mm256_loadu_ps(a + 8 * g),
                                  _mm256_loadu_ps(b + 8 * g));
      if (static_cast<std::uint32_t>(g) < nfull) {
        _mm256_storeu_ps(d + 8 * g, v);
      } else {
        const __m256 old = _mm256_loadu_ps(d + 8 * g);
        _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, m[g]));
      }
    }
  }
}

template <typename OpT>
__attribute__((target("avx2"))) void binary_generic(const AvxOp& op,
                                                    float* const* ptrs,
                                                    std::size_t n,
                                                    std::uint32_t num_groups) {
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    const float* b = w + op.off_b;
    float* d = w + op.off_dst;
    std::uint32_t g = 0;
    for (; g < op.nfull; ++g) {
      _mm256_storeu_ps(d + 8 * g, OpT::apply(_mm256_loadu_ps(a + 8 * g),
                                             _mm256_loadu_ps(b + 8 * g)));
    }
    for (; g < op.ngroups; ++g) {
      const __m256 v = OpT::apply(_mm256_loadu_ps(a + 8 * g),
                                  _mm256_loadu_ps(b + 8 * g));
      const __m256 old = _mm256_loadu_ps(d + 8 * g);
      _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, lane_mask(op, g)));
    }
  }
}

template <typename OpT>
void run_binary(const AvxOp& op, float* const* ptrs,
                                std::size_t n, std::uint32_t num_groups) {
  switch (op.ngroups) {
    case 1:
      binary_n<OpT, 1>(op, ptrs, n, num_groups);
      break;
    case 2:
      binary_n<OpT, 2>(op, ptrs, n, num_groups);
      break;
    case 3:
      binary_n<OpT, 3>(op, ptrs, n, num_groups);
      break;
    case 4:
      binary_n<OpT, 4>(op, ptrs, n, num_groups);
      break;
    default:
      binary_generic<OpT>(op, ptrs, n, num_groups);
      break;
  }
}

/// dst = imm * a.
template <int NG>
__attribute__((target("avx2"))) void scale_n(const AvxOp& op,
                                             float* const* ptrs, std::size_t n,
                                             std::uint32_t num_groups) {
  __m256 m[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
  }
  const __m256 c = _mm256_set1_ps(op.imm);
  const std::uint32_t nfull = op.nfull;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    float* d = w + op.off_dst;
    for (int g = 0; g < NG; ++g) {
      const __m256 v = _mm256_mul_ps(c, _mm256_loadu_ps(a + 8 * g));
      if (static_cast<std::uint32_t>(g) < nfull) {
        _mm256_storeu_ps(d + 8 * g, v);
      } else {
        const __m256 old = _mm256_loadu_ps(d + 8 * g);
        _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, m[g]));
      }
    }
  }
}

__attribute__((target("avx2"))) void scale_generic(const AvxOp& op,
                                                   float* const* ptrs,
                                                   std::size_t n,
                                                   std::uint32_t num_groups) {
  const __m256 c = _mm256_set1_ps(op.imm);
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    float* d = w + op.off_dst;
    std::uint32_t g = 0;
    for (; g < op.nfull; ++g) {
      _mm256_storeu_ps(d + 8 * g, _mm256_mul_ps(c, _mm256_loadu_ps(a + 8 * g)));
    }
    for (; g < op.ngroups; ++g) {
      const __m256 v = _mm256_mul_ps(c, _mm256_loadu_ps(a + 8 * g));
      const __m256 old = _mm256_loadu_ps(d + 8 * g);
      _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, lane_mask(op, g)));
    }
  }
}

/// dst = imm * dst + imm2 * a — two multiplies and an add, never an FMA
/// (intrinsics map to fixed instructions; the scalar tiers round the
/// same way).
template <int NG>
__attribute__((target("avx2"))) void axpy_n(const AvxOp& op,
                                            float* const* ptrs, std::size_t n,
                                            std::uint32_t num_groups) {
  __m256 m[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
  }
  const __m256 ca = _mm256_set1_ps(op.imm);
  const __m256 cb = _mm256_set1_ps(op.imm2);
  const std::uint32_t nfull = op.nfull;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    float* d = w + op.off_dst;
    for (int g = 0; g < NG; ++g) {
      const __m256 old = _mm256_loadu_ps(d + 8 * g);
      const __m256 v =
          _mm256_add_ps(_mm256_mul_ps(ca, old),
                        _mm256_mul_ps(cb, _mm256_loadu_ps(a + 8 * g)));
      if (static_cast<std::uint32_t>(g) < nfull) {
        _mm256_storeu_ps(d + 8 * g, v);
      } else {
        _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, m[g]));
      }
    }
  }
}

__attribute__((target("avx2"))) void axpy_generic(const AvxOp& op,
                                                  float* const* ptrs,
                                                  std::size_t n,
                                                  std::uint32_t num_groups) {
  const __m256 ca = _mm256_set1_ps(op.imm);
  const __m256 cb = _mm256_set1_ps(op.imm2);
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    float* d = w + op.off_dst;
    for (std::uint32_t g = 0; g < op.ngroups; ++g) {
      const __m256 old = _mm256_loadu_ps(d + 8 * g);
      const __m256 v =
          _mm256_add_ps(_mm256_mul_ps(ca, old),
                        _mm256_mul_ps(cb, _mm256_loadu_ps(a + 8 * g)));
      if (g < op.nfull) {
        _mm256_storeu_ps(d + 8 * g, v);
      } else {
        _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, lane_mask(op, g)));
      }
    }
  }
}

/// Fused Fscale->Fadd / Fmul->Fadd: the intermediate is stored to
/// off_dst (hashed scratch state) and forwarded in a register to the
/// accumulate, whose other operand (off_c, never equal to off_dst) is
/// loaded before the destination (off_d) store of the same group — the
/// scalar kernels' order, so off_c == off_d (dst = dst + mid) and
/// off_d == off_dst both resolve identically. Cross-group order is
/// irrelevant: 8-lane group spans of a column are disjoint and blends
/// rewrite non-member lanes with their own bytes.
template <bool HasB, int NG>
__attribute__((target("avx2"))) void fused_acc_n(const AvxOp& op,
                                                 float* const* ptrs,
                                                 std::size_t n,
                                                 std::uint32_t num_groups) {
  __m256 m[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
  }
  const __m256 c = _mm256_set1_ps(op.imm);
  const std::uint32_t nfull = op.nfull;
  const bool store_mid = (op.skip & 1u) == 0;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    const float* b = w + op.off_b;
    const float* acc = w + op.off_c;
    float* mid = w + op.off_dst;
    float* d = w + op.off_d;
    for (int g = 0; g < NG; ++g) {
      const __m256 av = _mm256_loadu_ps(a + 8 * g);
      const __m256 v = HasB ? _mm256_mul_ps(av, _mm256_loadu_ps(b + 8 * g))
                            : _mm256_mul_ps(c, av);
      const bool dense = static_cast<std::uint32_t>(g) < nfull;
      if (store_mid) {
        if (dense) {
          _mm256_storeu_ps(mid + 8 * g, v);
        } else {
          const __m256 oldm = _mm256_loadu_ps(mid + 8 * g);
          _mm256_storeu_ps(mid + 8 * g, _mm256_blendv_ps(oldm, v, m[g]));
        }
      }
      const __m256 r = _mm256_add_ps(_mm256_loadu_ps(acc + 8 * g), v);
      if (dense) {
        _mm256_storeu_ps(d + 8 * g, r);
      } else {
        const __m256 oldd = _mm256_loadu_ps(d + 8 * g);
        _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(oldd, r, m[g]));
      }
    }
  }
}

template <bool HasB>
__attribute__((target("avx2"))) void fused_acc_generic(
    const AvxOp& op, float* const* ptrs, std::size_t n,
    std::uint32_t num_groups) {
  const __m256 c = _mm256_set1_ps(op.imm);
  const bool store_mid = (op.skip & 1u) == 0;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    const float* b = w + op.off_b;
    const float* acc = w + op.off_c;
    float* mid = w + op.off_dst;
    float* d = w + op.off_d;
    for (std::uint32_t g = 0; g < op.ngroups; ++g) {
      const __m256 av = _mm256_loadu_ps(a + 8 * g);
      const __m256 v = HasB ? _mm256_mul_ps(av, _mm256_loadu_ps(b + 8 * g))
                            : _mm256_mul_ps(c, av);
      const bool dense = g < op.nfull;
      if (store_mid) {
        if (dense) {
          _mm256_storeu_ps(mid + 8 * g, v);
        } else {
          const __m256 oldm = _mm256_loadu_ps(mid + 8 * g);
          _mm256_storeu_ps(mid + 8 * g,
                           _mm256_blendv_ps(oldm, v, lane_mask(op, g)));
        }
      }
      const __m256 r = _mm256_add_ps(_mm256_loadu_ps(acc + 8 * g), v);
      if (dense) {
        _mm256_storeu_ps(d + 8 * g, r);
      } else {
        const __m256 oldd = _mm256_loadu_ps(d + 8 * g);
        _mm256_storeu_ps(d + 8 * g,
                         _mm256_blendv_ps(oldd, r, lane_mask(op, g)));
      }
    }
  }
}

/// Fused Faxpy->Faxpy RK chain: d1 is stored before d2's old value is
/// loaded, so d2 == d1 reads the freshly written lanes exactly like the
/// scalar kernel's per-row order. Two multiplies and an add per axpy —
/// never an FMA.
template <int NG>
__attribute__((target("avx2"))) void axpy_pair_n(const AvxOp& op,
                                                 float* const* ptrs,
                                                 std::size_t n,
                                                 std::uint32_t num_groups) {
  __m256 m[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
  }
  const __m256 a1 = _mm256_set1_ps(op.imm);
  const __m256 c1 = _mm256_set1_ps(op.imm2);
  const __m256 a2 = _mm256_set1_ps(op.imm3);
  const __m256 c2 = _mm256_set1_ps(op.imm4);
  const std::uint32_t nfull = op.nfull;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* s1 = w + op.off_a;
    float* d1 = w + op.off_dst;
    float* d2 = w + op.off_c;
    for (int g = 0; g < NG; ++g) {
      const __m256 old1 = _mm256_loadu_ps(d1 + 8 * g);
      const __m256 v =
          _mm256_add_ps(_mm256_mul_ps(a1, old1),
                        _mm256_mul_ps(c1, _mm256_loadu_ps(s1 + 8 * g)));
      const bool dense = static_cast<std::uint32_t>(g) < nfull;
      if (dense) {
        _mm256_storeu_ps(d1 + 8 * g, v);
      } else {
        _mm256_storeu_ps(d1 + 8 * g, _mm256_blendv_ps(old1, v, m[g]));
      }
      const __m256 old2 = _mm256_loadu_ps(d2 + 8 * g);
      const __m256 r =
          _mm256_add_ps(_mm256_mul_ps(a2, old2), _mm256_mul_ps(c2, v));
      if (dense) {
        _mm256_storeu_ps(d2 + 8 * g, r);
      } else {
        _mm256_storeu_ps(d2 + 8 * g, _mm256_blendv_ps(old2, r, m[g]));
      }
    }
  }
}

__attribute__((target("avx2"))) void axpy_pair_generic(
    const AvxOp& op, float* const* ptrs, std::size_t n,
    std::uint32_t num_groups) {
  const __m256 a1 = _mm256_set1_ps(op.imm);
  const __m256 c1 = _mm256_set1_ps(op.imm2);
  const __m256 a2 = _mm256_set1_ps(op.imm3);
  const __m256 c2 = _mm256_set1_ps(op.imm4);
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* s1 = w + op.off_a;
    float* d1 = w + op.off_dst;
    float* d2 = w + op.off_c;
    for (std::uint32_t g = 0; g < op.ngroups; ++g) {
      const __m256 old1 = _mm256_loadu_ps(d1 + 8 * g);
      const __m256 v =
          _mm256_add_ps(_mm256_mul_ps(a1, old1),
                        _mm256_mul_ps(c1, _mm256_loadu_ps(s1 + 8 * g)));
      const bool dense = g < op.nfull;
      if (dense) {
        _mm256_storeu_ps(d1 + 8 * g, v);
      } else {
        _mm256_storeu_ps(d1 + 8 * g,
                         _mm256_blendv_ps(old1, v, lane_mask(op, g)));
      }
      const __m256 old2 = _mm256_loadu_ps(d2 + 8 * g);
      const __m256 r =
          _mm256_add_ps(_mm256_mul_ps(a2, old2), _mm256_mul_ps(c2, v));
      if (dense) {
        _mm256_storeu_ps(d2 + 8 * g, r);
      } else {
        _mm256_storeu_ps(d2 + 8 * g,
                         _mm256_blendv_ps(old2, r, lane_mask(op, g)));
      }
    }
  }
}

/// ChainScaleAdd head: `ops[0].chain` ScaleAdd links (ops[1..] are the
/// Nop data carriers) folding into one accumulator (off_c == off_d)
/// through one scratch column (off_dst). The accumulator rides in a
/// register across the links and only the last product store lands —
/// bit-legal per the fuse pass's obligations (no link source aliases
/// the scratch or accumulator column, and earlier products are dead
/// stores at phase granularity). The adds evaluate in link order, so
/// every lane reproduces the scalar chain kernel's IEEE sequence.
template <int NG>
__attribute__((target("avx2"))) void chain_n(const AvxOp* ops,
                                             float* const* ptrs, std::size_t n,
                                             std::uint32_t num_groups) {
  const AvxOp& op = ops[0];
  const std::uint32_t chain = op.chain;
  __m256 m[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
  }
  __m256 cs[16];
  for (std::uint32_t j = 0; j < chain; ++j) {
    cs[j] = _mm256_set1_ps(ops[j].imm);
  }
  const std::uint32_t nfull = op.nfull;
  const bool store_mid = (op.skip & 1u) == 0;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    float* accp = w + op.off_c;
    float* midp = w + op.off_dst;
    for (int g = 0; g < NG; ++g) {
      const __m256 old = _mm256_loadu_ps(accp + 8 * g);
      __m256 acc = old;
      __m256 v = _mm256_setzero_ps();
      for (std::uint32_t j = 0; j < chain; ++j) {
        v = _mm256_mul_ps(cs[j], _mm256_loadu_ps(w + ops[j].off_a + 8 * g));
        acc = _mm256_add_ps(acc, v);
      }
      const bool dense = static_cast<std::uint32_t>(g) < nfull;
      if (store_mid) {
        if (dense) {
          _mm256_storeu_ps(midp + 8 * g, v);
        } else {
          const __m256 oldm = _mm256_loadu_ps(midp + 8 * g);
          _mm256_storeu_ps(midp + 8 * g, _mm256_blendv_ps(oldm, v, m[g]));
        }
      }
      if (dense) {
        _mm256_storeu_ps(accp + 8 * g, acc);
      } else {
        _mm256_storeu_ps(accp + 8 * g, _mm256_blendv_ps(old, acc, m[g]));
      }
    }
  }
}

__attribute__((target("avx2"))) void chain_generic(const AvxOp* ops,
                                                   float* const* ptrs,
                                                   std::size_t n,
                                                   std::uint32_t num_groups) {
  const AvxOp& op = ops[0];
  const std::uint32_t chain = op.chain;
  __m256 cs[16];
  for (std::uint32_t j = 0; j < chain; ++j) {
    cs[j] = _mm256_set1_ps(ops[j].imm);
  }
  const bool store_mid = (op.skip & 1u) == 0;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    float* accp = w + op.off_c;
    float* midp = w + op.off_dst;
    for (std::uint32_t g = 0; g < op.ngroups; ++g) {
      const __m256 old = _mm256_loadu_ps(accp + 8 * g);
      __m256 acc = old;
      __m256 v = _mm256_setzero_ps();
      for (std::uint32_t j = 0; j < chain; ++j) {
        v = _mm256_mul_ps(cs[j], _mm256_loadu_ps(w + ops[j].off_a + 8 * g));
        acc = _mm256_add_ps(acc, v);
      }
      const bool dense = g < op.nfull;
      if (store_mid) {
        if (dense) {
          _mm256_storeu_ps(midp + 8 * g, v);
        } else {
          const __m256 mk = lane_mask(op, g);
          const __m256 oldm = _mm256_loadu_ps(midp + 8 * g);
          _mm256_storeu_ps(midp + 8 * g, _mm256_blendv_ps(oldm, v, mk));
        }
      }
      if (dense) {
        _mm256_storeu_ps(accp + 8 * g, acc);
      } else {
        _mm256_storeu_ps(accp + 8 * g,
                         _mm256_blendv_ps(old, acc, lane_mask(op, g)));
      }
    }
  }
}

void run_chain(const AvxOp* ops, float* const* ptrs, std::size_t n,
               std::uint32_t num_groups) {
  switch (ops[0].ngroups) {
    case 1:
      chain_n<1>(ops, ptrs, n, num_groups);
      break;
    case 2:
      chain_n<2>(ops, ptrs, n, num_groups);
      break;
    case 3:
      chain_n<3>(ops, ptrs, n, num_groups);
      break;
    case 4:
      chain_n<4>(ops, ptrs, n, num_groups);
      break;
    default:
      chain_generic(ops, ptrs, n, num_groups);
      break;
  }
}

/// Paired chain head (fuse pass 5): `chain2` links per half, both
/// accumulators (off_c, off_b) fed from ONE pass over the shared source
/// windows. Entry [j] carries link j's source offset + first-half
/// immediate, entry [chain2 + j] the second half's immediate. Each
/// accumulator sees exactly its single-chain IEEE sequence — same
/// products, same add order — so the merge is bit-invisible; the
/// scratch store is the second half's last product, gated by the skip
/// bit the lowering copied from the second run's head.
template <int NG>
__attribute__((target("avx2"))) void chain2_n(const AvxOp* ops,
                                              float* const* ptrs,
                                              std::size_t n,
                                              std::uint32_t num_groups) {
  const AvxOp& op = ops[0];
  const std::uint32_t half = op.chain2;
  __m256 m[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
  }
  __m256 cs1[16];
  __m256 cs2[16];
  for (std::uint32_t j = 0; j < half; ++j) {
    cs1[j] = _mm256_set1_ps(ops[j].imm);
    cs2[j] = _mm256_set1_ps(ops[half + j].imm);
  }
  const std::uint32_t nfull = op.nfull;
  const bool store_mid = (op.skip & 1u) == 0;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    float* acc1p = w + op.off_c;
    float* acc2p = w + op.off_b;
    float* midp = w + op.off_dst;
    for (int g = 0; g < NG; ++g) {
      const __m256 old1 = _mm256_loadu_ps(acc1p + 8 * g);
      const __m256 old2 = _mm256_loadu_ps(acc2p + 8 * g);
      __m256 a1 = old1;
      __m256 a2 = old2;
      __m256 v2 = _mm256_setzero_ps();
      for (std::uint32_t j = 0; j < half; ++j) {
        const __m256 v = _mm256_loadu_ps(w + ops[j].off_a + 8 * g);
        a1 = _mm256_add_ps(a1, _mm256_mul_ps(cs1[j], v));
        v2 = _mm256_mul_ps(cs2[j], v);
        a2 = _mm256_add_ps(a2, v2);
      }
      const bool dense = static_cast<std::uint32_t>(g) < nfull;
      if (store_mid) {
        if (dense) {
          _mm256_storeu_ps(midp + 8 * g, v2);
        } else {
          const __m256 oldm = _mm256_loadu_ps(midp + 8 * g);
          _mm256_storeu_ps(midp + 8 * g, _mm256_blendv_ps(oldm, v2, m[g]));
        }
      }
      if (dense) {
        _mm256_storeu_ps(acc1p + 8 * g, a1);
        _mm256_storeu_ps(acc2p + 8 * g, a2);
      } else {
        _mm256_storeu_ps(acc1p + 8 * g, _mm256_blendv_ps(old1, a1, m[g]));
        _mm256_storeu_ps(acc2p + 8 * g, _mm256_blendv_ps(old2, a2, m[g]));
      }
    }
  }
}

__attribute__((target("avx2"))) void chain2_generic(const AvxOp* ops,
                                                    float* const* ptrs,
                                                    std::size_t n,
                                                    std::uint32_t num_groups) {
  const AvxOp& op = ops[0];
  const std::uint32_t half = op.chain2;
  __m256 cs1[16];
  __m256 cs2[16];
  for (std::uint32_t j = 0; j < half; ++j) {
    cs1[j] = _mm256_set1_ps(ops[j].imm);
    cs2[j] = _mm256_set1_ps(ops[half + j].imm);
  }
  const bool store_mid = (op.skip & 1u) == 0;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    float* acc1p = w + op.off_c;
    float* acc2p = w + op.off_b;
    float* midp = w + op.off_dst;
    for (std::uint32_t g = 0; g < op.ngroups; ++g) {
      const __m256 old1 = _mm256_loadu_ps(acc1p + 8 * g);
      const __m256 old2 = _mm256_loadu_ps(acc2p + 8 * g);
      __m256 a1 = old1;
      __m256 a2 = old2;
      __m256 v2 = _mm256_setzero_ps();
      for (std::uint32_t j = 0; j < half; ++j) {
        const __m256 v = _mm256_loadu_ps(w + ops[j].off_a + 8 * g);
        a1 = _mm256_add_ps(a1, _mm256_mul_ps(cs1[j], v));
        v2 = _mm256_mul_ps(cs2[j], v);
        a2 = _mm256_add_ps(a2, v2);
      }
      const bool dense = g < op.nfull;
      const __m256 mk = lane_mask(op, g);
      if (store_mid) {
        if (dense) {
          _mm256_storeu_ps(midp + 8 * g, v2);
        } else {
          const __m256 oldm = _mm256_loadu_ps(midp + 8 * g);
          _mm256_storeu_ps(midp + 8 * g, _mm256_blendv_ps(oldm, v2, mk));
        }
      }
      if (dense) {
        _mm256_storeu_ps(acc1p + 8 * g, a1);
        _mm256_storeu_ps(acc2p + 8 * g, a2);
      } else {
        _mm256_storeu_ps(acc1p + 8 * g, _mm256_blendv_ps(old1, a1, mk));
        _mm256_storeu_ps(acc2p + 8 * g, _mm256_blendv_ps(old2, a2, mk));
      }
    }
  }
}

void run_chain2(const AvxOp* ops, float* const* ptrs, std::size_t n,
                std::uint32_t num_groups) {
  switch (ops[0].ngroups) {
    case 1:
      chain2_n<1>(ops, ptrs, n, num_groups);
      break;
    case 2:
      chain2_n<2>(ops, ptrs, n, num_groups);
      break;
    case 3:
      chain2_n<3>(ops, ptrs, n, num_groups);
      break;
    case 4:
      chain2_n<4>(ops, ptrs, n, num_groups);
      break;
    default:
      chain2_generic(ops, ptrs, n, num_groups);
      break;
  }
}

/// Fused gather-consume (same-block, own element): the gathered value
/// is selected from the pre-loaded source window (exactly the Permute
/// network), stored to the gather destination (hashed scratch state)
/// and forwarded in a register to the multiply/accumulate. Per group
/// every load (window, b, acc) happens before every store (g, mid,
/// acc) — the scalar fused kernels' order — and the fuse pass keeps
/// the source column disjoint from everything written.
template <bool Acc, int NG, int WG>
__attribute__((target("avx2"))) void gather_mul_n(const AvxOp& op,
                                                  float* const* ptrs,
                                                  std::size_t n,
                                                  std::uint32_t num_groups) {
  __m256 m[NG];
  __m256i idx[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
    idx[g] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(op.perm + 8 * g));
  }
  const std::uint32_t nfull = op.nfull;
  const bool store_g = (op.skip & 2u) == 0;
  const bool store_mid = (op.skip & 1u) == 0;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* srcp = w + op.off_a;
    __m256 win[WG];
    for (int j = 0; j < WG; ++j) {
      win[j] = _mm256_loadu_ps(srcp + 8 * j);
    }
    float* gp = w + op.off_dst;
    // A forwarded constant b reads the plan's padded lane table (shared
    // across elements) instead of the scratch column.
    const float* bp = op.values != nullptr ? op.values : w + op.off_b;
    float* midp = w + op.off_d;
    float* accp = w + op.off_c;
    for (int g = 0; g < NG; ++g) {
      __m256 gv = _mm256_permutevar8x32_ps(win[0], idx[g]);
      const __m256i hi = _mm256_srli_epi32(idx[g], 3);
      for (int j = 1; j < WG; ++j) {
        const __m256i sel = _mm256_cmpeq_epi32(hi, _mm256_set1_epi32(j));
        gv = _mm256_blendv_ps(gv, _mm256_permutevar8x32_ps(win[j], idx[g]),
                              _mm256_castsi256_ps(sel));
      }
      const __m256 bv = _mm256_loadu_ps(bp + 8 * g);
      const __m256 cv =
          Acc ? _mm256_loadu_ps(accp + 8 * g) : _mm256_setzero_ps();
      const bool dense = static_cast<std::uint32_t>(g) < nfull;
      if (store_g) {
        if (dense) {
          _mm256_storeu_ps(gp + 8 * g, gv);
        } else {
          const __m256 oldg = _mm256_loadu_ps(gp + 8 * g);
          _mm256_storeu_ps(gp + 8 * g, _mm256_blendv_ps(oldg, gv, m[g]));
        }
      }
      const __m256 prod = _mm256_mul_ps(gv, bv);
      if (store_mid) {
        if (dense) {
          _mm256_storeu_ps(midp + 8 * g, prod);
        } else {
          const __m256 oldm = _mm256_loadu_ps(midp + 8 * g);
          _mm256_storeu_ps(midp + 8 * g, _mm256_blendv_ps(oldm, prod, m[g]));
        }
      }
      if (Acc) {
        const __m256 r = _mm256_add_ps(cv, prod);
        if (dense) {
          _mm256_storeu_ps(accp + 8 * g, r);
        } else {
          _mm256_storeu_ps(accp + 8 * g, _mm256_blendv_ps(cv, r, m[g]));
        }
      }
    }
  }
}

template <bool Acc>
__attribute__((target("avx2"))) void gather_mul_avx_generic(
    const AvxOp& op, float* const* ptrs, std::size_t n,
    std::uint32_t num_groups) {
  const bool store_g = (op.skip & 2u) == 0;
  const bool store_mid = (op.skip & 1u) == 0;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* srcp = w + op.off_a;
    __m256 win[4];
    for (std::uint32_t j = 0; j < op.wgroups; ++j) {
      win[j] = _mm256_loadu_ps(srcp + 8 * j);
    }
    float* gp = w + op.off_dst;
    const float* bp = op.values != nullptr ? op.values : w + op.off_b;
    float* midp = w + op.off_d;
    float* accp = w + op.off_c;
    for (std::uint32_t g = 0; g < op.ngroups; ++g) {
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(op.perm + 8 * g));
      __m256 gv = _mm256_permutevar8x32_ps(win[0], idx);
      const __m256i hi = _mm256_srli_epi32(idx, 3);
      for (std::uint32_t j = 1; j < op.wgroups; ++j) {
        const __m256i sel =
            _mm256_cmpeq_epi32(hi, _mm256_set1_epi32(static_cast<int>(j)));
        gv = _mm256_blendv_ps(gv, _mm256_permutevar8x32_ps(win[j], idx),
                              _mm256_castsi256_ps(sel));
      }
      const __m256 bv = _mm256_loadu_ps(bp + 8 * g);
      const __m256 cv =
          Acc ? _mm256_loadu_ps(accp + 8 * g) : _mm256_setzero_ps();
      const bool dense = g < op.nfull;
      const __m256 mk = dense ? _mm256_setzero_ps() : lane_mask(op, g);
      if (store_g) {
        if (dense) {
          _mm256_storeu_ps(gp + 8 * g, gv);
        } else {
          const __m256 oldg = _mm256_loadu_ps(gp + 8 * g);
          _mm256_storeu_ps(gp + 8 * g, _mm256_blendv_ps(oldg, gv, mk));
        }
      }
      const __m256 prod = _mm256_mul_ps(gv, bv);
      if (store_mid) {
        if (dense) {
          _mm256_storeu_ps(midp + 8 * g, prod);
        } else {
          const __m256 oldm = _mm256_loadu_ps(midp + 8 * g);
          _mm256_storeu_ps(midp + 8 * g, _mm256_blendv_ps(oldm, prod, mk));
        }
      }
      if (Acc) {
        const __m256 r = _mm256_add_ps(cv, prod);
        if (dense) {
          _mm256_storeu_ps(accp + 8 * g, r);
        } else {
          _mm256_storeu_ps(accp + 8 * g, _mm256_blendv_ps(cv, r, mk));
        }
      }
    }
  }
}

template <bool Acc, int NG>
void run_gather_mul_ng(const AvxOp& op, float* const* ptrs, std::size_t n,
                       std::uint32_t num_groups) {
  switch (op.wgroups) {
    case 1:
      gather_mul_n<Acc, NG, 1>(op, ptrs, n, num_groups);
      break;
    case 2:
      gather_mul_n<Acc, NG, 2>(op, ptrs, n, num_groups);
      break;
    case 3:
      gather_mul_n<Acc, NG, 3>(op, ptrs, n, num_groups);
      break;
    case 4:
      gather_mul_n<Acc, NG, 4>(op, ptrs, n, num_groups);
      break;
    default:
      gather_mul_avx_generic<Acc>(op, ptrs, n, num_groups);
      break;
  }
}

template <bool Acc>
void run_gather_mul(const AvxOp& op, float* const* ptrs, std::size_t n,
                    std::uint32_t num_groups) {
  switch (op.ngroups) {
    case 1:
      run_gather_mul_ng<Acc, 1>(op, ptrs, n, num_groups);
      break;
    case 2:
      run_gather_mul_ng<Acc, 2>(op, ptrs, n, num_groups);
      break;
    case 3:
      run_gather_mul_ng<Acc, 3>(op, ptrs, n, num_groups);
      break;
    case 4:
      run_gather_mul_ng<Acc, 4>(op, ptrs, n, num_groups);
      break;
    default:
      gather_mul_avx_generic<Acc>(op, ptrs, n, num_groups);
      break;
  }
}

/// dst = plan constants (the padded values arena).
template <int NG>
__attribute__((target("avx2"))) void const_n(const AvxOp& op,
                                             float* const* ptrs, std::size_t n,
                                             std::uint32_t num_groups) {
  __m256 m[NG];
  __m256 v[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
    v[g] = _mm256_loadu_ps(op.values + 8 * g);
  }
  const std::uint32_t nfull = op.nfull;
  for (std::size_t i = 0; i < n; ++i) {
    float* d = ptrs[i * num_groups + op.group] + op.off_dst;
    for (int g = 0; g < NG; ++g) {
      if (static_cast<std::uint32_t>(g) < nfull) {
        _mm256_storeu_ps(d + 8 * g, v[g]);
      } else {
        const __m256 old = _mm256_loadu_ps(d + 8 * g);
        _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v[g], m[g]));
      }
    }
  }
}

__attribute__((target("avx2"))) void const_generic(const AvxOp& op,
                                                   float* const* ptrs,
                                                   std::size_t n,
                                                   std::uint32_t num_groups) {
  for (std::size_t i = 0; i < n; ++i) {
    float* d = ptrs[i * num_groups + op.group] + op.off_dst;
    std::uint32_t g = 0;
    for (; g < op.nfull; ++g) {
      _mm256_storeu_ps(d + 8 * g, _mm256_loadu_ps(op.values + 8 * g));
    }
    for (; g < op.ngroups; ++g) {
      const __m256 v = _mm256_loadu_ps(op.values + 8 * g);
      const __m256 old = _mm256_loadu_ps(d + 8 * g);
      _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, lane_mask(op, g)));
    }
  }
}

WAVEPIM_AVX2_FN const float* permute_src(const AvxOp& op, const ExecCtx& ctx,
                                         std::size_t i) {
  if (op.face < 0) {
    return ctx.ptrs[i * ctx.num_groups + op.group] + op.off_a;
  }
  const std::uint32_t nb =
      ctx.plan->neighbor_bases(ctx.elems[i])[static_cast<std::size_t>(op.face)];
  return (*ctx.blocks)(nb + op.group).words().data() + op.off_a;
}

/// Window-load + lane-select movement (gather and move): the whole
/// source window (<= 4 ymm) is read into registers before any store,
/// which reproduces the compiled tier's gather staging; each
/// destination lane then picks its source lane through a vpermps
/// select network (vpermps consumes the low 3 bits of each index; the
/// window group is chosen by comparing the high bits, recomputed per
/// group with ALU ops — the kernels are load-bound, not ALU-bound).
template <int NG, int WG>
__attribute__((target("avx2"))) void permute_n(const AvxOp& op,
                                               const ExecCtx& ctx) {
  __m256 m[NG];
  __m256i idx[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
    idx[g] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(op.perm + 8 * g));
  }
  const std::size_t n = ctx.elems.size();
  const std::uint32_t num_groups = ctx.num_groups;
  float* const* ptrs = ctx.ptrs;
  const std::uint32_t nfull = op.nfull;
  for (std::size_t i = 0; i < n; ++i) {
    const float* srcp = permute_src(op, ctx, i);
    __m256 win[WG];
    for (int j = 0; j < WG; ++j) {
      win[j] = _mm256_loadu_ps(srcp + 8 * j);
    }
    float* d = ptrs[i * num_groups + op.peer_group] + op.off_dst;
    for (int g = 0; g < NG; ++g) {
      __m256 r = _mm256_permutevar8x32_ps(win[0], idx[g]);
      const __m256i hi = _mm256_srli_epi32(idx[g], 3);
      for (int j = 1; j < WG; ++j) {
        const __m256i sel = _mm256_cmpeq_epi32(hi, _mm256_set1_epi32(j));
        r = _mm256_blendv_ps(r, _mm256_permutevar8x32_ps(win[j], idx[g]),
                             _mm256_castsi256_ps(sel));
      }
      if (static_cast<std::uint32_t>(g) < nfull) {
        _mm256_storeu_ps(d + 8 * g, r);
      } else {
        const __m256 old = _mm256_loadu_ps(d + 8 * g);
        _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, r, m[g]));
      }
    }
  }
}

__attribute__((target("avx2"))) void permute_generic(const AvxOp& op,
                                                     const ExecCtx& ctx) {
  const std::size_t n = ctx.elems.size();
  const std::uint32_t num_groups = ctx.num_groups;
  float* const* ptrs = ctx.ptrs;
  for (std::size_t i = 0; i < n; ++i) {
    const float* srcp = permute_src(op, ctx, i);
    __m256 win[4];
    for (std::uint32_t j = 0; j < op.wgroups; ++j) {
      win[j] = _mm256_loadu_ps(srcp + 8 * j);
    }
    float* d = ptrs[i * num_groups + op.peer_group] + op.off_dst;
    for (std::uint32_t g = 0; g < op.ngroups; ++g) {
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(op.perm + 8 * g));
      __m256 r = _mm256_permutevar8x32_ps(win[0], idx);
      const __m256i hi = _mm256_srli_epi32(idx, 3);
      for (std::uint32_t j = 1; j < op.wgroups; ++j) {
        const __m256i sel = _mm256_cmpeq_epi32(hi, _mm256_set1_epi32(
                                                       static_cast<int>(j)));
        r = _mm256_blendv_ps(r, _mm256_permutevar8x32_ps(win[j], idx),
                             _mm256_castsi256_ps(sel));
      }
      if (g < op.nfull) {
        _mm256_storeu_ps(d + 8 * g, r);
      } else {
        const __m256 old = _mm256_loadu_ps(d + 8 * g);
        _mm256_storeu_ps(d + 8 * g,
                         _mm256_blendv_ps(old, r, lane_mask(op, g)));
      }
    }
  }
}

template <int NG>
void run_permute_ng(const AvxOp& op, const ExecCtx& ctx) {
  switch (op.wgroups) {
    case 1:
      permute_n<NG, 1>(op, ctx);
      break;
    case 2:
      permute_n<NG, 2>(op, ctx);
      break;
    case 3:
      permute_n<NG, 3>(op, ctx);
      break;
    case 4:
      permute_n<NG, 4>(op, ctx);
      break;
    default:
      permute_generic(op, ctx);
      break;
  }
}

void run_permute(const AvxOp& op, const ExecCtx& ctx) {
  switch (op.ngroups) {
    case 1:
      run_permute_ng<1>(op, ctx);
      break;
    case 2:
      run_permute_ng<2>(op, ctx);
      break;
    case 3:
      run_permute_ng<3>(op, ctx);
      break;
    case 4:
      run_permute_ng<4>(op, ctx);
      break;
    default:
      permute_generic(op, ctx);
      break;
  }
}

template <void (*Fn1)(const AvxOp&, float* const*, std::size_t, std::uint32_t),
          void (*Fn2)(const AvxOp&, float* const*, std::size_t, std::uint32_t),
          void (*Fn3)(const AvxOp&, float* const*, std::size_t, std::uint32_t),
          void (*Fn4)(const AvxOp&, float* const*, std::size_t, std::uint32_t),
          void (*FnG)(const AvxOp&, float* const*, std::size_t, std::uint32_t)>
void run_sized(const AvxOp& op, float* const* ptrs,
                               std::size_t n, std::uint32_t num_groups) {
  switch (op.ngroups) {
    case 1:
      Fn1(op, ptrs, n, num_groups);
      break;
    case 2:
      Fn2(op, ptrs, n, num_groups);
      break;
    case 3:
      Fn3(op, ptrs, n, num_groups);
      break;
    case 4:
      Fn4(op, ptrs, n, num_groups);
      break;
    default:
      FnG(op, ptrs, n, num_groups);
      break;
  }
}

}  // namespace

bool supported() { return __builtin_cpu_supports("avx2"); }

void exec(const AvxStream& stream, const ExecCtx& ctx) {
  const std::size_t n = ctx.elems.size();
  for (std::size_t oi = 0; oi < stream.ops.size(); ++oi) {
    const AvxOp& op = stream.ops[oi];
    switch (op.kind) {
      case AvxOp::Kind::Add:
        run_binary<AddT>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Sub:
        run_binary<SubT>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Mul:
        run_binary<MulT>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Scale:
        run_sized<scale_n<1>, scale_n<2>, scale_n<3>, scale_n<4>,
                  scale_generic>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Axpy:
        run_sized<axpy_n<1>, axpy_n<2>, axpy_n<3>, axpy_n<4>, axpy_generic>(
            op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Const:
        run_sized<const_n<1>, const_n<2>, const_n<3>, const_n<4>,
                  const_generic>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Permute:
        run_permute(op, ctx);
        break;
      case AvxOp::Kind::ScaleAdd:
        run_sized<fused_acc_n<false, 1>, fused_acc_n<false, 2>,
                  fused_acc_n<false, 3>, fused_acc_n<false, 4>,
                  fused_acc_generic<false>>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::MulAdd:
        run_sized<fused_acc_n<true, 1>, fused_acc_n<true, 2>,
                  fused_acc_n<true, 3>, fused_acc_n<true, 4>,
                  fused_acc_generic<true>>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::AxpyPair:
        run_sized<axpy_pair_n<1>, axpy_pair_n<2>, axpy_pair_n<3>,
                  axpy_pair_n<4>, axpy_pair_generic>(op, ctx.ptrs, n,
                                                     ctx.num_groups);
        break;
      case AvxOp::Kind::ChainScaleAdd:
        run_chain(&stream.ops[oi], ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Chain2ScaleAdd:
        run_chain2(&stream.ops[oi], ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Nop:
        break;
      case AvxOp::Kind::GatherMul:
        run_gather_mul<false>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::GatherMulAdd:
        run_gather_mul<true>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Fallback:
        ctx.fallback(ctx, op.fallback_idx, ctx.fallback_ctx);
        break;
    }
  }
}

#else  // !WAVEPIM_WORD_AVX2

bool supported() { return false; }

void exec(const AvxStream&, const ExecCtx&) {
  WAVEPIM_REQUIRE(false, "AVX2 word engine not compiled in");
}

#endif

}  // namespace wavepim::mapping::wordavx
