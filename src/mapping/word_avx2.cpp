#include "mapping/word_avx2.h"

#include "common/error.h"
#include "mapping/exec_plan.h"
#include "pim/block.h"

// The engine is gated per-function with __attribute__((target("avx2")))
// rather than a TU-wide -mavx2: the attribute lets GCC/clang emit AVX2
// intrinsics from an otherwise-baseline translation unit, so no inline
// function from a shared header can ever be instantiated with AVX2 code
// and leak into baseline binaries through the linker. Dispatch happens
// once, in WordPlan's constructor, via supported().
//
// The hot kernels are specialized on the (small) group counts: the
// destination loop fully unrolls, and the per-op constants — lane
// masks, permutation indices, scatter values — hoist into ymm registers
// once per op instead of reloading per element. At 9-27 rows per op the
// kernels are load-port bound, so removing those reloads is worth more
// than the arithmetic itself. Ops wider than the specialized forms
// (not produced by any current program, but legal) take the generic
// un-hoisted loop.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define WAVEPIM_WORD_AVX2 1
#include <immintrin.h>
#endif

namespace wavepim::mapping::wordavx {

#if WAVEPIM_WORD_AVX2

#define WAVEPIM_AVX2_FN \
  __attribute__((target("avx2"), always_inline)) static inline

namespace {

WAVEPIM_AVX2_FN __m256 lane_mask(const AvxOp& op, std::uint32_t g) {
  return _mm256_castsi256_ps(_mm256_loadu_si256(
      reinterpret_cast<const __m256i*>(op.mask + 8 * g)));
}

struct AddT {
  WAVEPIM_AVX2_FN __m256 apply(__m256 a, __m256 b) {
    return _mm256_add_ps(a, b);
  }
};
struct SubT {
  WAVEPIM_AVX2_FN __m256 apply(__m256 a, __m256 b) {
    return _mm256_sub_ps(a, b);
  }
};
struct MulT {
  WAVEPIM_AVX2_FN __m256 apply(__m256 a, __m256 b) {
    return _mm256_mul_ps(a, b);
  }
};

/// dst = op(a, b) over the window; masked groups keep old lanes via a
/// blend against the freshly loaded destination (rewriting identical
/// bytes — bit-neutral, and race-free because every row of the window
/// belongs to this element's block).
template <typename OpT, int NG>
__attribute__((target("avx2"))) void binary_n(const AvxOp& op,
                                              float* const* ptrs,
                                              std::size_t n,
                                              std::uint32_t num_groups) {
  __m256 m[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
  }
  const std::uint32_t nfull = op.nfull;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    const float* b = w + op.off_b;
    float* d = w + op.off_dst;
    for (int g = 0; g < NG; ++g) {
      const __m256 v = OpT::apply(_mm256_loadu_ps(a + 8 * g),
                                  _mm256_loadu_ps(b + 8 * g));
      if (static_cast<std::uint32_t>(g) < nfull) {
        _mm256_storeu_ps(d + 8 * g, v);
      } else {
        const __m256 old = _mm256_loadu_ps(d + 8 * g);
        _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, m[g]));
      }
    }
  }
}

template <typename OpT>
__attribute__((target("avx2"))) void binary_generic(const AvxOp& op,
                                                    float* const* ptrs,
                                                    std::size_t n,
                                                    std::uint32_t num_groups) {
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    const float* b = w + op.off_b;
    float* d = w + op.off_dst;
    std::uint32_t g = 0;
    for (; g < op.nfull; ++g) {
      _mm256_storeu_ps(d + 8 * g, OpT::apply(_mm256_loadu_ps(a + 8 * g),
                                             _mm256_loadu_ps(b + 8 * g)));
    }
    for (; g < op.ngroups; ++g) {
      const __m256 v = OpT::apply(_mm256_loadu_ps(a + 8 * g),
                                  _mm256_loadu_ps(b + 8 * g));
      const __m256 old = _mm256_loadu_ps(d + 8 * g);
      _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, lane_mask(op, g)));
    }
  }
}

template <typename OpT>
void run_binary(const AvxOp& op, float* const* ptrs,
                                std::size_t n, std::uint32_t num_groups) {
  switch (op.ngroups) {
    case 1:
      binary_n<OpT, 1>(op, ptrs, n, num_groups);
      break;
    case 2:
      binary_n<OpT, 2>(op, ptrs, n, num_groups);
      break;
    case 3:
      binary_n<OpT, 3>(op, ptrs, n, num_groups);
      break;
    case 4:
      binary_n<OpT, 4>(op, ptrs, n, num_groups);
      break;
    default:
      binary_generic<OpT>(op, ptrs, n, num_groups);
      break;
  }
}

/// dst = imm * a.
template <int NG>
__attribute__((target("avx2"))) void scale_n(const AvxOp& op,
                                             float* const* ptrs, std::size_t n,
                                             std::uint32_t num_groups) {
  __m256 m[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
  }
  const __m256 c = _mm256_set1_ps(op.imm);
  const std::uint32_t nfull = op.nfull;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    float* d = w + op.off_dst;
    for (int g = 0; g < NG; ++g) {
      const __m256 v = _mm256_mul_ps(c, _mm256_loadu_ps(a + 8 * g));
      if (static_cast<std::uint32_t>(g) < nfull) {
        _mm256_storeu_ps(d + 8 * g, v);
      } else {
        const __m256 old = _mm256_loadu_ps(d + 8 * g);
        _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, m[g]));
      }
    }
  }
}

__attribute__((target("avx2"))) void scale_generic(const AvxOp& op,
                                                   float* const* ptrs,
                                                   std::size_t n,
                                                   std::uint32_t num_groups) {
  const __m256 c = _mm256_set1_ps(op.imm);
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    float* d = w + op.off_dst;
    std::uint32_t g = 0;
    for (; g < op.nfull; ++g) {
      _mm256_storeu_ps(d + 8 * g, _mm256_mul_ps(c, _mm256_loadu_ps(a + 8 * g)));
    }
    for (; g < op.ngroups; ++g) {
      const __m256 v = _mm256_mul_ps(c, _mm256_loadu_ps(a + 8 * g));
      const __m256 old = _mm256_loadu_ps(d + 8 * g);
      _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, lane_mask(op, g)));
    }
  }
}

/// dst = imm * dst + imm2 * a — two multiplies and an add, never an FMA
/// (intrinsics map to fixed instructions; the scalar tiers round the
/// same way).
template <int NG>
__attribute__((target("avx2"))) void axpy_n(const AvxOp& op,
                                            float* const* ptrs, std::size_t n,
                                            std::uint32_t num_groups) {
  __m256 m[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
  }
  const __m256 ca = _mm256_set1_ps(op.imm);
  const __m256 cb = _mm256_set1_ps(op.imm2);
  const std::uint32_t nfull = op.nfull;
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    float* d = w + op.off_dst;
    for (int g = 0; g < NG; ++g) {
      const __m256 old = _mm256_loadu_ps(d + 8 * g);
      const __m256 v =
          _mm256_add_ps(_mm256_mul_ps(ca, old),
                        _mm256_mul_ps(cb, _mm256_loadu_ps(a + 8 * g)));
      if (static_cast<std::uint32_t>(g) < nfull) {
        _mm256_storeu_ps(d + 8 * g, v);
      } else {
        _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, m[g]));
      }
    }
  }
}

__attribute__((target("avx2"))) void axpy_generic(const AvxOp& op,
                                                  float* const* ptrs,
                                                  std::size_t n,
                                                  std::uint32_t num_groups) {
  const __m256 ca = _mm256_set1_ps(op.imm);
  const __m256 cb = _mm256_set1_ps(op.imm2);
  for (std::size_t i = 0; i < n; ++i) {
    float* w = ptrs[i * num_groups + op.group];
    const float* a = w + op.off_a;
    float* d = w + op.off_dst;
    for (std::uint32_t g = 0; g < op.ngroups; ++g) {
      const __m256 old = _mm256_loadu_ps(d + 8 * g);
      const __m256 v =
          _mm256_add_ps(_mm256_mul_ps(ca, old),
                        _mm256_mul_ps(cb, _mm256_loadu_ps(a + 8 * g)));
      if (g < op.nfull) {
        _mm256_storeu_ps(d + 8 * g, v);
      } else {
        _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, lane_mask(op, g)));
      }
    }
  }
}

/// dst = plan constants (the padded values arena).
template <int NG>
__attribute__((target("avx2"))) void const_n(const AvxOp& op,
                                             float* const* ptrs, std::size_t n,
                                             std::uint32_t num_groups) {
  __m256 m[NG];
  __m256 v[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
    v[g] = _mm256_loadu_ps(op.values + 8 * g);
  }
  const std::uint32_t nfull = op.nfull;
  for (std::size_t i = 0; i < n; ++i) {
    float* d = ptrs[i * num_groups + op.group] + op.off_dst;
    for (int g = 0; g < NG; ++g) {
      if (static_cast<std::uint32_t>(g) < nfull) {
        _mm256_storeu_ps(d + 8 * g, v[g]);
      } else {
        const __m256 old = _mm256_loadu_ps(d + 8 * g);
        _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v[g], m[g]));
      }
    }
  }
}

__attribute__((target("avx2"))) void const_generic(const AvxOp& op,
                                                   float* const* ptrs,
                                                   std::size_t n,
                                                   std::uint32_t num_groups) {
  for (std::size_t i = 0; i < n; ++i) {
    float* d = ptrs[i * num_groups + op.group] + op.off_dst;
    std::uint32_t g = 0;
    for (; g < op.nfull; ++g) {
      _mm256_storeu_ps(d + 8 * g, _mm256_loadu_ps(op.values + 8 * g));
    }
    for (; g < op.ngroups; ++g) {
      const __m256 v = _mm256_loadu_ps(op.values + 8 * g);
      const __m256 old = _mm256_loadu_ps(d + 8 * g);
      _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, v, lane_mask(op, g)));
    }
  }
}

WAVEPIM_AVX2_FN const float* permute_src(const AvxOp& op, const ExecCtx& ctx,
                                         std::size_t i) {
  if (op.face < 0) {
    return ctx.ptrs[i * ctx.num_groups + op.group] + op.off_a;
  }
  const std::uint32_t nb =
      ctx.plan->neighbor_bases(ctx.elems[i])[static_cast<std::size_t>(op.face)];
  return (*ctx.blocks)(nb + op.group).words().data() + op.off_a;
}

/// Window-load + lane-select movement (gather and move): the whole
/// source window (<= 4 ymm) is read into registers before any store,
/// which reproduces the compiled tier's gather staging; each
/// destination lane then picks its source lane through a vpermps
/// select network (vpermps consumes the low 3 bits of each index; the
/// window group is chosen by comparing the high bits, recomputed per
/// group with ALU ops — the kernels are load-bound, not ALU-bound).
template <int NG, int WG>
__attribute__((target("avx2"))) void permute_n(const AvxOp& op,
                                               const ExecCtx& ctx) {
  __m256 m[NG];
  __m256i idx[NG];
  for (int g = 0; g < NG; ++g) {
    m[g] = lane_mask(op, static_cast<std::uint32_t>(g));
    idx[g] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(op.perm + 8 * g));
  }
  const std::size_t n = ctx.elems.size();
  const std::uint32_t num_groups = ctx.num_groups;
  float* const* ptrs = ctx.ptrs;
  const std::uint32_t nfull = op.nfull;
  for (std::size_t i = 0; i < n; ++i) {
    const float* srcp = permute_src(op, ctx, i);
    __m256 win[WG];
    for (int j = 0; j < WG; ++j) {
      win[j] = _mm256_loadu_ps(srcp + 8 * j);
    }
    float* d = ptrs[i * num_groups + op.peer_group] + op.off_dst;
    for (int g = 0; g < NG; ++g) {
      __m256 r = _mm256_permutevar8x32_ps(win[0], idx[g]);
      const __m256i hi = _mm256_srli_epi32(idx[g], 3);
      for (int j = 1; j < WG; ++j) {
        const __m256i sel = _mm256_cmpeq_epi32(hi, _mm256_set1_epi32(j));
        r = _mm256_blendv_ps(r, _mm256_permutevar8x32_ps(win[j], idx[g]),
                             _mm256_castsi256_ps(sel));
      }
      if (static_cast<std::uint32_t>(g) < nfull) {
        _mm256_storeu_ps(d + 8 * g, r);
      } else {
        const __m256 old = _mm256_loadu_ps(d + 8 * g);
        _mm256_storeu_ps(d + 8 * g, _mm256_blendv_ps(old, r, m[g]));
      }
    }
  }
}

__attribute__((target("avx2"))) void permute_generic(const AvxOp& op,
                                                     const ExecCtx& ctx) {
  const std::size_t n = ctx.elems.size();
  const std::uint32_t num_groups = ctx.num_groups;
  float* const* ptrs = ctx.ptrs;
  for (std::size_t i = 0; i < n; ++i) {
    const float* srcp = permute_src(op, ctx, i);
    __m256 win[4];
    for (std::uint32_t j = 0; j < op.wgroups; ++j) {
      win[j] = _mm256_loadu_ps(srcp + 8 * j);
    }
    float* d = ptrs[i * num_groups + op.peer_group] + op.off_dst;
    for (std::uint32_t g = 0; g < op.ngroups; ++g) {
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(op.perm + 8 * g));
      __m256 r = _mm256_permutevar8x32_ps(win[0], idx);
      const __m256i hi = _mm256_srli_epi32(idx, 3);
      for (std::uint32_t j = 1; j < op.wgroups; ++j) {
        const __m256i sel = _mm256_cmpeq_epi32(hi, _mm256_set1_epi32(
                                                       static_cast<int>(j)));
        r = _mm256_blendv_ps(r, _mm256_permutevar8x32_ps(win[j], idx),
                             _mm256_castsi256_ps(sel));
      }
      if (g < op.nfull) {
        _mm256_storeu_ps(d + 8 * g, r);
      } else {
        const __m256 old = _mm256_loadu_ps(d + 8 * g);
        _mm256_storeu_ps(d + 8 * g,
                         _mm256_blendv_ps(old, r, lane_mask(op, g)));
      }
    }
  }
}

template <int NG>
void run_permute_ng(const AvxOp& op, const ExecCtx& ctx) {
  switch (op.wgroups) {
    case 1:
      permute_n<NG, 1>(op, ctx);
      break;
    case 2:
      permute_n<NG, 2>(op, ctx);
      break;
    case 3:
      permute_n<NG, 3>(op, ctx);
      break;
    case 4:
      permute_n<NG, 4>(op, ctx);
      break;
    default:
      permute_generic(op, ctx);
      break;
  }
}

void run_permute(const AvxOp& op, const ExecCtx& ctx) {
  switch (op.ngroups) {
    case 1:
      run_permute_ng<1>(op, ctx);
      break;
    case 2:
      run_permute_ng<2>(op, ctx);
      break;
    case 3:
      run_permute_ng<3>(op, ctx);
      break;
    case 4:
      run_permute_ng<4>(op, ctx);
      break;
    default:
      permute_generic(op, ctx);
      break;
  }
}

template <void (*Fn1)(const AvxOp&, float* const*, std::size_t, std::uint32_t),
          void (*Fn2)(const AvxOp&, float* const*, std::size_t, std::uint32_t),
          void (*Fn3)(const AvxOp&, float* const*, std::size_t, std::uint32_t),
          void (*Fn4)(const AvxOp&, float* const*, std::size_t, std::uint32_t),
          void (*FnG)(const AvxOp&, float* const*, std::size_t, std::uint32_t)>
void run_sized(const AvxOp& op, float* const* ptrs,
                               std::size_t n, std::uint32_t num_groups) {
  switch (op.ngroups) {
    case 1:
      Fn1(op, ptrs, n, num_groups);
      break;
    case 2:
      Fn2(op, ptrs, n, num_groups);
      break;
    case 3:
      Fn3(op, ptrs, n, num_groups);
      break;
    case 4:
      Fn4(op, ptrs, n, num_groups);
      break;
    default:
      FnG(op, ptrs, n, num_groups);
      break;
  }
}

}  // namespace

bool supported() { return __builtin_cpu_supports("avx2"); }

void exec(const AvxStream& stream, const ExecCtx& ctx) {
  const std::size_t n = ctx.elems.size();
  for (const AvxOp& op : stream.ops) {
    switch (op.kind) {
      case AvxOp::Kind::Add:
        run_binary<AddT>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Sub:
        run_binary<SubT>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Mul:
        run_binary<MulT>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Scale:
        run_sized<scale_n<1>, scale_n<2>, scale_n<3>, scale_n<4>,
                  scale_generic>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Axpy:
        run_sized<axpy_n<1>, axpy_n<2>, axpy_n<3>, axpy_n<4>, axpy_generic>(
            op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Const:
        run_sized<const_n<1>, const_n<2>, const_n<3>, const_n<4>,
                  const_generic>(op, ctx.ptrs, n, ctx.num_groups);
        break;
      case AvxOp::Kind::Permute:
        run_permute(op, ctx);
        break;
      case AvxOp::Kind::Fallback:
        ctx.fallback(ctx, op.fallback_idx, ctx.fallback_ctx);
        break;
    }
  }
}

#else  // !WAVEPIM_WORD_AVX2

bool supported() { return false; }

void exec(const AvxStream&, const ExecCtx&) {
  WAVEPIM_REQUIRE(false, "AVX2 word engine not compiled in");
}

#endif

}  // namespace wavepim::mapping::wordavx
