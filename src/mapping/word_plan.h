#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "mapping/exec_plan.h"
#include "mapping/residency.h"
#include "mapping/word_avx2.h"
#include "pim/arith.h"

namespace wavepim::mapping {

/// Word-level execution engine — the fourth tier of the mapping layer's
/// ladder (emit -> replay -> compiled -> word).
///
/// The compiled tier already executes FP32 word arithmetic, but it pays
/// the bit-serial *structure*: one interpreter dispatch per op per
/// element on loops of ~9-27 rows, which profiling puts at 84-90% of the
/// compiled step time. This engine re-resolves each class's compiled
/// streams once more, into ops whose addressing is fully precomputed
/// (column offsets into `pim::Block::words()`, row lists classified into
/// contiguous / strided / indexed shapes by `pim::word::classify_rows`),
/// and executes them **op-major over a run of same-class elements**: the
/// dispatch switch runs once per op per chunk, and the inner loops are
/// the vectorizable kernels of `pim/word.h`.
///
/// Bit-identity with the compiled tier (pinned end-to-end by the
/// four-tier conformance suites):
///
///  * every kernel evaluates the exact scalar expression of
///    `ExecutionPlan::run_stream` in the same per-element iteration
///    order — plain C++ loops, so the compiler's vectorization cannot
///    change overlap semantics;
///  * no op is elided or fused: every intermediate scratch write the
///    bit-serial machine would perform lands in block storage, so
///    full-chip state hashes (not just final fields) match;
///  * reordering is only across elements, whose writes are disjoint
///    (flux reads neighbour *variable* columns, which the phase never
///    writes) — the same contract the parallel compiled fan-out uses;
///  * costs are not re-derived: each element applies the ExecutionPlan's
///    per-group OpCost aggregates — still priced in bit-serial NOR-cycle
///    terms — so ledgers, and every downstream cost channel, are
///    bit-identical by construction.
///
/// The compiled path is retained as the *witness* for this tier:
/// `PimSimulation`'s WitnessMode re-executes phases bit-serially on
/// shadow blocks and compares state hashes (see simulation.h).
///
/// Thread safety: `run_*` are const and touch only the ranged elements'
/// blocks (plus neighbour reads); callers fan out disjoint element
/// chunks. `integration()` memoises lazily and must be fetched before
/// the parallel region, like `ExecutionPlan::integration`.
class WordPlan {
 public:
  /// One word-resolved op. `code` fuses the op kind, the arithmetic
  /// opcode and the row-pattern shape, so execution switches once and
  /// runs a specialized loop. Offsets are pre-multiplied column bases
  /// into Block::words(); row-list pointers (the indexed shapes only)
  /// alias the program arena's interned tables.
  struct WordOp {
    enum class Code : std::uint8_t {
      ScatterContig,
      ScatterStrided,
      ScatterIndexed,
      GatherContig,
      GatherStrided,
      GatherIndexed,  ///< distinct src/dst columns: direct indexed copy
      GatherStaged,   ///< same column: staged through per-thread scratch
      Add,
      Sub,
      Mul,
      AddStrided,
      SubStrided,
      MulStrided,
      AddIndexed,
      SubIndexed,
      MulIndexed,
      Scale,
      ScaleStrided,
      ScaleIndexed,
      Axpy,
      MoveContig,
      MoveStrided,
      MoveIndexed,
      // Fused pairs (the peephole pass; see fuse_stream). Each keeps
      // the first op's intermediate store — scratch columns are part of
      // the hashed state — and forwards the value in a register.
      ScaleAdd,         ///< Fscale -> Fadd: mid = imm*a; dst = c2 + mid
      ScaleAddStrided,
      ScaleAddIndexed,
      MulAdd,           ///< Fmul -> Fadd: mid = a*b; dst = c2 + mid
      MulAddStrided,
      MulAddIndexed,
      AxpyPair,         ///< Faxpy -> Faxpy: d1 = i*d1+i2*a; d2 = i3*d2+i4*d1
      // Chain heads: `chain` consecutive ScaleAdd* ops folding into one
      // accumulator (off_c == off_d) through one scratch column
      // (off_dst). The head executes the whole run with the accumulator
      // in a register (pim/word.h chain kernels); the link ops stay in
      // the stream as data carriers (off_a / imm) and are skipped.
      ChainScaleAdd,
      ChainScaleAddStrided,
      ChainScaleAddIndexed,
      // Gather feeding its consumer: g(off_dst) = src(off_a)[rows];
      // then dst(off_d) = g * b(off_b), with GatherMulAdd additionally
      // accumulating acc(off_c) += g*b and keeping the product in
      // mid(off_d).
      GatherMul,
      GatherMulAdd,
    };

    Code code = Code::Add;
    std::uint8_t group = 0;       ///< target block (source for Move)
    std::uint8_t peer_group = 0;  ///< Move destination block
    std::int8_t face = -1;        ///< Move source face (-1: own element)
    std::uint32_t off_a = 0;      ///< col_a * kRows
    std::uint32_t off_b = 0;
    std::uint32_t off_dst = 0;
    std::uint32_t start = 0;    ///< contiguous/strided first row (rows_a)
    std::uint32_t stride = 1;   ///< strided row step (rows_a)
    std::uint32_t start_b = 0;  ///< Move destination pattern (rows_b)
    std::uint32_t stride_b = 1;
    std::uint32_t count = 0;
    /// Fused pairs only: the second op's remaining operand column and
    /// destination column (off_dst holds the first op's intermediate).
    std::uint32_t off_c = 0;
    std::uint32_t off_d = 0;
    /// Ops this op consumes from the stream: 1 for everything except
    /// Chain* heads, which execute themselves plus chain-1 link ops.
    std::uint16_t chain = 1;
    /// Paired chain head (fuse pass 5): non-zero = links per half. The
    /// head spans TWO chain runs of `chain2` links each over identical
    /// source columns; the second run's head (at offset `chain2`)
    /// carries the second accumulator (off_c), immediates and the live
    /// scratch-store skip bit. `chain` covers both runs.
    std::uint16_t chain2 = 0;
    /// Dead-store elision flags (fuse pass 4): the flagged secondary
    /// store is proven overwritten later in the SAME stream before any
    /// read, so skipping it is unobservable at phase granularity.
    /// kSkipMid: the fused intermediate (off_dst of ScaleAdd*/MulAdd*/
    /// Chain*, off_d of GatherMulAdd). kSkipG: the gathered scratch
    /// column (off_dst of GatherMul/GatherMulAdd).
    static constexpr std::uint8_t kSkipMid = 1;
    static constexpr std::uint8_t kSkipG = 2;
    std::uint8_t skip = 0;
    float imm = 0.0f;
    float imm2 = 0.0f;
    float imm3 = 0.0f;  ///< AxpyPair: second op's immediates
    float imm4 = 0.0f;
    const std::uint32_t* rows_a = nullptr;
    const std::uint32_t* rows_b = nullptr;
    const float* values = nullptr;
    /// Constant forwarding (fuse pass 4): when set, operand b of a
    /// fused gather is read from this plan-owned constant table
    /// (indexed by row) instead of block storage — the column provably
    /// still holds exactly these scattered values when this op runs.
    /// Shared across every element, so the table stays cache-hot where
    /// per-element scratch columns would not.
    const float* b_values = nullptr;
  };

  /// One word-resolved stream; `group_cost` aliases the source compiled
  /// stream's aggregate list (never copied — shared accounting). When
  /// the AVX2 engine is active, `avx` holds the group-normalized mirror
  /// of `ops` (same order, one AvxOp per WordOp) and the lane arenas own
  /// the precomputed masks / constants / permutation indices its ops
  /// point into. The arenas are heap buffers, so moving the stream
  /// keeps the aliasing pointers valid; they are never resized after
  /// compilation.
  struct WordStream {
    std::vector<WordOp> ops;
    const std::vector<std::pair<std::uint8_t, pim::OpCost>>* group_cost =
        nullptr;
    wordavx::AvxStream avx;
    std::vector<std::int32_t> lane_mask;
    std::vector<float> lane_values;
    std::vector<std::int32_t> lane_perm;
  };

  /// Elements per parallel task of the word fan-out: enough to amortize
  /// the per-op dispatch across the chunk, small enough to keep the
  /// chunk's block storage in cache and the fan-out load-balanced.
  static constexpr std::size_t kChunk = 32;

  /// Compiles every class stream of `plan` (which must outlive this
  /// object, along with the cache arena beneath it).
  explicit WordPlan(ExecutionPlan& plan);

  /// Executes a phase over `elems` (any mix of classes; split into
  /// same-class runs internally): the word ops of each element, then its
  /// batched per-block cost aggregates.
  void run_volume(const BlockResolver& blocks,
                  std::span<const mesh::ElementId> elems) const;
  void run_flux_group(const BlockResolver& blocks,
                      std::span<const mesh::ElementId> elems,
                      FaceGroup group) const;
  void run_integration(const BlockResolver& blocks,
                       std::span<const mesh::ElementId> elems,
                       const WordStream& stage) const;

  /// Word-resolved Integration stream for (stage, dt); lowers through
  /// the ExecutionPlan's memoised stream on first request. Not
  /// thread-safe: fetch before fanning out.
  const WordStream& integration(int stage, float dt);

  /// Cumulative peephole-fusion counters across every stream this plan
  /// has compiled (volume + flux at construction, integration stages as
  /// they are first requested). `ops_before == ops_after` when fusion
  /// is disabled (`WAVEPIM_WORD_FUSE=0`).
  struct FuseStats {
    std::uint64_t ops_before = 0;  ///< word ops entering the peephole
    std::uint64_t ops_after = 0;   ///< dispatched ops after all passes
    std::uint64_t scale_add = 0;   ///< fused Fscale->Fadd pairs
    std::uint64_t mul_add = 0;     ///< fused Fmul->Fadd pairs
    std::uint64_t axpy_pair = 0;   ///< fused Faxpy->Faxpy pairs
    std::uint64_t chains = 0;      ///< ScaleAdd runs collapsed to heads
    std::uint64_t chain_links = 0; ///< total links inside those runs
    std::uint64_t chain_pairs = 0; ///< chain pairs merged (dual acc)
    std::uint64_t gather_fused = 0;  ///< gathers folded into consumers
    std::uint64_t dead_stores = 0;   ///< scratch stores elided (pass 4)
  };
  [[nodiscard]] const FuseStats& fuse_stats() const { return fuse_stats_; }
  [[nodiscard]] bool fusion_enabled() const { return fuse_enabled_; }

  /// Introspection for the differential tests and tools: the compiled
  /// per-class streams, and whether the AVX2 engine drives run_stream.
  [[nodiscard]] bool uses_avx2() const { return use_avx2_; }
  [[nodiscard]] std::uint32_t num_classes() const {
    return static_cast<std::uint32_t>(classes_.size());
  }
  [[nodiscard]] const WordStream& volume_stream(std::uint32_t cls) const {
    return classes_[cls].volume;
  }
  [[nodiscard]] const WordStream& flux_stream(std::uint32_t cls,
                                              FaceGroup group) const {
    return classes_[cls].flux[static_cast<std::size_t>(group)];
  }

 private:
  struct ClassStreams {
    WordStream volume;
    std::array<WordStream, kNumFaceGroups> flux;
  };

  [[nodiscard]] WordStream compile(const ExecutionPlan::StreamPlan& stream);
  /// Peephole pass over a freshly compiled op vector: merges adjacent
  /// (Fscale|Fmul)->Fadd and Faxpy->Faxpy pairs whose second op consumes
  /// the first op's destination over the identical row set (indexed rows
  /// additionally verified duplicate-free). Updates fuse_stats_ and the
  /// word.fuse trace counters; no-op when fuse_enabled_ is false.
  void fuse_stream(std::vector<WordOp>& ops);
  /// Group-normalizes `s.ops` into `s.avx` (see word_avx2.h); ops the
  /// group form cannot express bit-identically become Fallback entries.
  void build_avx(WordStream& s) const;
  void run_stream(const BlockResolver& blocks,
                  std::span<const mesh::ElementId> elems,
                  const WordStream& stream) const;
  /// Applies `fn(run, class_streams)` to each maximal same-class run.
  template <typename Fn>
  void for_class_runs(std::span<const mesh::ElementId> elems, Fn&& fn) const;

  ExecutionPlan& plan_;
  std::uint32_t num_groups_;
  /// Resolved once at construction: host executes AVX2 and the
  /// WAVEPIM_WORD_AVX2=0 kill-switch is not set. When false, no AVX
  /// mirror streams are built and run_stream uses the generic kernels.
  bool use_avx2_ = false;
  /// `WAVEPIM_WORD_FUSE` (default on), read at construction so tests
  /// can toggle fusion between simulation builds.
  bool fuse_enabled_ = true;
  /// Element-major blocking: run_stream slices each kChunk fan-out task
  /// into sub-chunks of this many elements and runs the *whole* kernel
  /// stream per sub-chunk, keeping the slice's columns L1-resident
  /// across ops. `WAVEPIM_WORD_BLOCK` overrides (0 disables — the whole
  /// chunk sweeps op by op). Pure execution-order change across
  /// elements, whose writes are disjoint: bit-identity is untouched.
  std::uint32_t block_elems_ = 8;
  FuseStats fuse_stats_;
  std::vector<ClassStreams> classes_;
  /// Per element: class id and absolute block base, copied out of the
  /// plan once for locality in the per-chunk loops.
  std::vector<std::uint32_t> class_of_;
  std::vector<std::uint32_t> base_of_;
  std::map<std::pair<int, std::uint32_t>, WordStream> integration_;
};

}  // namespace wavepim::mapping
