#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "dg/op_counter.h"
#include "dg/physics.h"
#include "mesh/face.h"

namespace wavepim::mapping {

/// The dG kernels are linear in the nodal values: the Volume contribution
/// is a weighted sum of derivative slices and the Flux correction is a
/// linear map of the two interface traces. The PIM programs implement
/// exactly those linear maps as Fscale/Fadd sequences with immediates that
/// the host pre-computes from the (per-element-constant) materials — the
/// square-root/inverse work that §5.1 offloads to the host CPU.
///
/// Probing the CPU physics with unit vectors extracts the coefficient
/// matrices, which makes the PIM functional execution equivalent to the
/// reference solver by construction.

/// Volume: rhs[o] += sum_{a, v} coeff(a)[o][v] * d_a(var v).
struct VolumeCoeffs {
  std::uint32_t num_vars = 0;
  /// coeff[axis][o * num_vars + v]; includes the physical 2/h NOT — the
  /// derivative scale is applied by the derivative emission itself.
  std::array<std::vector<float>, 3> coeff;

  [[nodiscard]] float at(mesh::Axis a, std::uint32_t out,
                         std::uint32_t in) const {
    return coeff[mesh::index_of(a)][out * num_vars + in];
  }
  /// Nonzero (in, coeff) pairs feeding one output along one axis.
  [[nodiscard]] std::vector<std::pair<std::uint32_t, float>> terms(
      mesh::Axis a, std::uint32_t out) const;
  /// Derivative slices (axis, var) used by at least one output.
  [[nodiscard]] std::vector<std::pair<mesh::Axis, std::uint32_t>>
  needed_slices() const;
};

/// Flux: delta[o] = sum_w alpha[o][w] * um[w] + beta[o][w] * up[w],
/// for a specific (face, flux type, material pair).
struct FluxCoeffs {
  std::uint32_t num_vars = 0;
  std::vector<float> alpha;  ///< own-trace coefficients [o * V + w]
  std::vector<float> beta;   ///< neighbour-trace coefficients

  [[nodiscard]] float own(std::uint32_t out, std::uint32_t in) const {
    return alpha[out * num_vars + in];
  }
  [[nodiscard]] float nbr(std::uint32_t out, std::uint32_t in) const {
    return beta[out * num_vars + in];
  }
  [[nodiscard]] std::size_t nonzeros() const;
  /// Variables whose neighbour trace is actually consumed.
  [[nodiscard]] std::vector<std::uint32_t> needed_neighbor_vars() const;
};

template <typename Physics>
VolumeCoeffs probe_volume(const typename Physics::Material& m);

/// `boundary_reflect`: when true the face has no neighbour and the ghost
/// trace is Physics::reflect(um); the reflected map is folded into alpha
/// (beta comes back all-zero).
template <typename Physics>
FluxCoeffs probe_flux(mesh::Face face, dg::FluxType flux,
                      const typename Physics::Material& mm,
                      const typename Physics::Material& mp,
                      bool boundary_reflect = false);

/// Count of host-offloaded special operations (sqrt/inverse) needed to
/// prepare one face's flux immediates (§4.3, §5.1): impedances and the
/// 1/(Z-+Z+) style denominators.
std::uint32_t host_special_ops_per_face(dg::ProblemKind kind);

}  // namespace wavepim::mapping
