#pragma once

#include "mapping/element_program.h"
#include "mapping/program_cache.h"
#include "mapping/sinks.h"
#include "mesh/structured_mesh.h"
#include "pim/controller.h"

namespace wavepim::mapping {

/// Lowers the emitted kernel streams into a pim::LoweredProgram — the
/// actual instruction sequence the host would send to the ISA-based PIM
/// (§4.1). Executing the lowered program through pim::Controller is
/// equivalent to driving a FunctionalSink directly; the assembler is what
/// closes the loop between the mapping layer and the wire-level ISA.
class AssemblerSink : public ProgramSink {
 public:
  AssemblerSink(const mesh::StructuredMesh& mesh, Placement placement);

  /// Element whose program is being emitted (resolves neighbour blocks).
  void bind(mesh::ElementId element) { element_ = element; }

  [[nodiscard]] const pim::LoweredProgram& program() const {
    return program_;
  }
  [[nodiscard]] pim::LoweredProgram take_program() {
    return std::move(program_);
  }

  void scatter(std::uint32_t group, std::span<const std::uint32_t> rows,
               std::uint32_t col, std::span<const float> values,
               std::uint32_t distinct_values) override;
  void gather(std::uint32_t group, std::span<const std::uint32_t> src_rows,
              std::uint32_t src_col, std::uint32_t dst_col) override;
  void arith(std::uint32_t group, pim::Opcode op, std::uint32_t col_a,
             std::uint32_t col_b, std::uint32_t col_dst,
             std::uint32_t rows) override;
  void fscale(std::uint32_t group, std::uint32_t col_src,
              std::uint32_t col_dst, float imm, std::uint32_t rows) override;
  void faxpy(std::uint32_t group, std::uint32_t col_dst,
             std::uint32_t col_src, float a, float c,
             std::uint32_t rows) override;
  void arith_rows(std::uint32_t group, pim::Opcode op, std::uint32_t col_a,
                  std::uint32_t col_b, std::uint32_t col_dst,
                  std::span<const std::uint32_t> rows) override;
  void fscale_rows(std::uint32_t group, std::uint32_t col_src,
                   std::uint32_t col_dst, float imm,
                   std::span<const std::uint32_t> rows) override;
  void intra_transfer(std::uint32_t src_group, std::uint32_t src_col,
                      std::span<const std::uint32_t> src_rows,
                      std::uint32_t dst_group, std::uint32_t dst_col,
                      std::span<const std::uint32_t> dst_rows) override;
  void inter_transfer(mesh::Face face, std::uint32_t src_group,
                      std::uint32_t src_col,
                      std::span<const std::uint32_t> src_rows,
                      std::uint32_t dst_group, std::uint32_t dst_col,
                      std::span<const std::uint32_t> dst_rows) override;
  void lut_fetch(std::uint32_t group, std::uint32_t count) override;

 private:
  [[nodiscard]] std::uint32_t block_of(std::uint32_t group) const {
    return placement_.block_of(element_, group);
  }
  std::uint32_t rows_table(std::span<const std::uint32_t> rows);

  const mesh::StructuredMesh& mesh_;
  Placement placement_;
  mesh::ElementId element_ = 0;
  pim::LoweredProgram program_;
};

/// Assembles the full per-stage program of a (small) problem: Volume for
/// every element, Flux for every face, one Integration stage.
pim::LoweredProgram assemble_stage(const ElementSetup& setup,
                                   const mesh::StructuredMesh& mesh,
                                   Placement placement, int stage, float dt);

/// Cached variant: replays `cache`'s per-class streams through the
/// AssemblerSink instead of re-emitting every element's kernels. The
/// replayed sink-call sequence matches direct emission, so the lowered
/// program is bit-identical — only the assembly time changes.
pim::LoweredProgram assemble_stage(const mesh::StructuredMesh& mesh,
                                   Placement placement, int stage, float dt,
                                   ProgramCache& cache);

}  // namespace wavepim::mapping
