#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace wavepim::mapping {

/// Durations of the seven segments of one RK stage (Fig. 13's rows).
struct StageSegments {
  Seconds volume;           ///< Volume compute (incl. its staging moves)
  Seconds host_preprocess;  ///< CPU host sqrt/inverse for the flux LUTs
  Seconds fetch_minus;      ///< flux neighbour-data fetch, -1 normals
  Seconds compute_minus;    ///< flux compute, -1 normals
  Seconds fetch_plus;       ///< flux neighbour-data fetch, +1 normals
  Seconds compute_plus;     ///< flux compute, +1 normals
  Seconds integration;      ///< RK update

  [[nodiscard]] Seconds serial_total() const {
    return volume + host_preprocess + fetch_minus + compute_minus +
           fetch_plus + compute_plus + integration;
  }
};

/// One bar of the Fig. 13 timeline.
struct TimelineInterval {
  std::string name;
  Seconds start;
  Seconds end;
};

/// Result of scheduling one stage with the §6.3 pipelining rules:
///  - the host pre-processing and the (-1) data fetch overlap Volume;
///  - the (+1) fetch overlaps the (-1) flux compute;
///  - Volume/Integration cannot overlap anything in-block (row-driver
///    hazard), and flux compute waits for its fetch and the host.
struct PipelineSchedule {
  std::vector<TimelineInterval> timeline;
  Seconds total;

  [[nodiscard]] Seconds end_of(const std::string& name) const;
};

/// Builds the pipelined stage schedule.
PipelineSchedule schedule_stage_pipelined(const StageSegments& seg);

/// Builds the fully serial schedule (the paper's "without pipelining ...
/// 0.77x throughput" comparison point).
PipelineSchedule schedule_stage_serial(const StageSegments& seg);

}  // namespace wavepim::mapping
