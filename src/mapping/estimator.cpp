#include "mapping/estimator.h"

#include <algorithm>

#include "common/error.h"
#include "dg/rk.h"
#include "mapping/element_program.h"
#include "mapping/program_cache.h"
#include "mapping/residency.h"
#include "mapping/sinks.h"
#include "mesh/structured_mesh.h"
#include "pim/hbm.h"
#include "pim/host.h"
#include "trace/trace.h"

namespace wavepim::mapping {

using mesh::Face;

namespace {

MappingConfig config_with_mode(const Problem& problem,
                               const pim::ChipConfig& chip,
                               ExpansionMode mode) {
  const std::uint64_t blocks = chip.num_blocks();
  const std::uint64_t bpe = blocks_per_element(mode);
  const std::uint64_t dim = 1ull << problem.refinement_level;
  MappingConfig c;
  c.expansion = mode;
  if (problem.num_elements() * bpe <= blocks) {
    c.batched = false;
    c.num_batches = 1;
    c.elements_per_batch = problem.num_elements();
    c.slices_per_batch = static_cast<std::uint32_t>(dim);
    return c;
  }
  const std::uint64_t elements_per_slice = dim * dim;
  const std::uint64_t slices_fit = blocks / (elements_per_slice * bpe);
  if (slices_fit == 0) {
    throw CapacityError("one slice does not fit with mode " +
                        std::string(to_string(mode)));
  }
  c.batched = true;
  c.slices_per_batch = static_cast<std::uint32_t>(std::min(slices_fit, dim));
  c.num_batches = static_cast<std::uint32_t>(
      (dim + c.slices_per_batch - 1) / c.slices_per_batch);
  c.elements_per_batch = c.slices_per_batch * elements_per_slice;
  return c;
}

/// Mixed-radix Morton interleave: round-robins one bit from each axis
/// (skipping exhausted axes), producing a bijection onto
/// [0, dim * spb * dim) for power-of-two extents.
std::uint64_t morton3(std::uint64_t x, std::uint64_t y, std::uint64_t z,
                      std::uint32_t x_bits, std::uint32_t y_bits,
                      std::uint32_t z_bits) {
  std::uint64_t local = 0;
  std::uint32_t shift = 0;
  const std::uint32_t max_bits = std::max({x_bits, y_bits, z_bits});
  for (std::uint32_t bit = 0; bit < max_bits; ++bit) {
    if (bit < x_bits) {
      local |= ((x >> bit) & 1u) << shift++;
    }
    if (bit < y_bits) {
      local |= ((y >> bit) & 1u) << shift++;
    }
    if (bit < z_bits) {
      local |= ((z >> bit) & 1u) << shift++;
    }
  }
  return local;
}

std::uint32_t log2_exact(std::uint64_t v) {
  std::uint32_t bits = 0;
  while ((1ull << bits) < v) {
    ++bits;
  }
  return bits;
}

/// Elements of the first batch (slices [0, spb)) with their batch-local
/// index; row-major (x fastest) by default, Morton order when requested
/// and the window geometry is power-of-two.
struct BatchIndexer {
  std::uint64_t dim;
  std::uint32_t spb;
  bool morton = false;

  [[nodiscard]] bool morton_applicable() const {
    return (spb & (spb - 1)) == 0;
  }

  [[nodiscard]] std::uint64_t local_of(std::uint64_t x, std::uint64_t y,
                                       std::uint64_t z) const {
    if (morton && morton_applicable()) {
      return morton3(x, y, z, log2_exact(dim), log2_exact(spb),
                     log2_exact(dim));
    }
    return x + dim * (y + spb * z);
  }
};

/// Expands the representative element's inter-element transfer
/// descriptors over every element of the batch (periodic wrap in x/z;
/// y faces that leave the batch are staged through HBM per Fig. 7 and do
/// not ride the on-chip network).
std::vector<pim::Transfer> expand_inter_transfers(
    const Problem& problem, const MappingConfig& config,
    const std::vector<CostSink::InterDescriptor>& descriptors,
    int normal_sign, bool morton) {
  const std::uint64_t dim = 1ull << problem.refinement_level;
  const std::uint32_t spb = config.slices_per_batch;
  const std::uint32_t bpe = blocks_per_element(config.expansion);
  const BatchIndexer indexer{dim, spb, morton};

  std::vector<pim::Transfer> transfers;
  for (const auto& d : descriptors) {
    if (mesh::normal_sign(d.face) != normal_sign) {
      continue;
    }
    const auto axis = mesh::index_of(mesh::axis_of(d.face));
    for (std::uint64_t z = 0; z < dim; ++z) {
      for (std::uint64_t y = 0; y < spb; ++y) {
        for (std::uint64_t x = 0; x < dim; ++x) {
          std::uint64_t c[3] = {x, y, z};
          // Neighbour coordinate with periodic wrap; y wraps only within
          // the resident slice window.
          const std::uint64_t limit = (axis == 1) ? spb : dim;
          std::uint64_t n = c[axis];
          if (normal_sign < 0) {
            n = (n == 0) ? limit - 1 : n - 1;
          } else {
            n = (n + 1 == limit) ? 0 : n + 1;
          }
          std::uint64_t nc[3] = {x, y, z};
          nc[axis] = n;
          const std::uint64_t my_local = indexer.local_of(x, y, z);
          const std::uint64_t nb_local = indexer.local_of(nc[0], nc[1], nc[2]);
          transfers.push_back(
              {.src_block =
                   static_cast<std::uint32_t>(nb_local * bpe + d.src_group),
               .dst_block =
                   static_cast<std::uint32_t>(my_local * bpe + d.dst_group),
               .words = d.words});
        }
      }
    }
  }
  return transfers;
}

/// Expands intra-element transfer descriptors over the batch.
std::vector<pim::Transfer> expand_intra_transfers(
    const MappingConfig& config,
    const std::vector<CostSink::IntraDescriptor>& descriptors) {
  const std::uint32_t bpe = blocks_per_element(config.expansion);
  std::vector<pim::Transfer> transfers;
  transfers.reserve(descriptors.size() * config.elements_per_batch);
  for (std::uint64_t e = 0; e < config.elements_per_batch; ++e) {
    for (const auto& d : descriptors) {
      transfers.push_back(
          {.src_block = static_cast<std::uint32_t>(e * bpe + d.src_group),
           .dst_block = static_cast<std::uint32_t>(e * bpe + d.dst_group),
           .words = d.words});
    }
  }
  return transfers;
}

}  // namespace

Estimator::Estimator(Problem problem, pim::ChipConfig chip, Options options)
    : problem_(problem), chip_(std::move(chip)), options_(options) {
  config_ = options_.force_expansion
                ? config_with_mode(problem_, chip_, *options_.force_expansion)
                : choose_config(problem_, chip_);
}

const StepEstimate& Estimator::estimate() const {
  if (!cached_) {
    trace::Span span("map.estimate");
    cached_ = compute();
  }
  return *cached_;
}

pim::OpCost Estimator::run_cost(std::uint64_t steps) const {
  const auto& e = estimate();
  return {e.step_time * static_cast<double>(steps),
          e.step_energy * static_cast<double>(steps)};
}

StepEstimate Estimator::compute() const {
  const double h = 1.0 / static_cast<double>(1ull << problem_.refinement_level);
  const ElementSetup setup(problem_, config_.expansion, h);
  const std::uint32_t groups = setup.num_groups();

  const pim::ArithModel arith;
  const pim::Interconnect net(chip_);
  const pim::HbmModel hbm;
  const pim::HostModel host(options_.host_special_ops_per_s);

  SinkPricing pricing;
  pricing.model = &arith;
  {
    // Alg. 1 unit cost: index read + content read + destination write plus
    // the switch leg from a same-quadrant LUT block.
    const pim::Transfer hop{.src_block = 0, .dst_block = 5, .words = 1};
    pricing.lut_unit = pricing.rows_read(2) + pricing.rows_written(1);
    pricing.lut_unit +=
        {net.isolated_latency(hop), net.transfer_energy(hop)};
  }

  // --- Cost the representative element's kernels -------------------------
  // Every element of the (uniform, all-interior) representative class
  // runs the same streams, so the per-class cached programs are costed
  // once instead of re-emitting the kernels per query. Replay issues the
  // identical sink-call sequence as direct emission, so the tallies match
  // bit-for-bit.
  ProgramCache cache(setup);
  const std::uint32_t cls = 0;

  CostSink vol(pricing, groups);
  replay(cache.arena(), cache.volume(cls), vol);

  CostSink flux_minus(pricing, groups);
  CostSink flux_plus(pricing, groups);
  for (Face f : mesh::kAllFaces) {
    replay(cache.arena(), cache.flux(cls, f),
           mesh::normal_sign(f) < 0 ? flux_minus : flux_plus);
  }

  CostSink integ(pricing, groups);
  const ProgramCache::IntegrationProgram& integ_program =
      cache.integration(/*stage=*/1, /*dt=*/1.0e-3f);
  replay(integ_program.arena, integ_program.stream, integ);

  // --- Interconnect schedules over one batch ------------------------------
  const auto vol_staging =
      net.schedule(expand_intra_transfers(config_, vol.intra()));
  const auto flux_stage_minus =
      net.schedule(expand_intra_transfers(config_, flux_minus.intra()));
  const auto flux_stage_plus =
      net.schedule(expand_intra_transfers(config_, flux_plus.intra()));
  const auto fetch_minus = net.schedule(expand_inter_transfers(
      problem_, config_, flux_minus.inter(), -1, options_.morton_placement));
  const auto fetch_plus = net.schedule(expand_inter_transfers(
      problem_, config_, flux_plus.inter(), +1, options_.morton_placement));

  // --- Segments of one RK stage (one batch) -------------------------------
  StepEstimate est;
  est.config = config_;
  est.segments.volume = vol_staging.makespan + vol.max_group_time();
  est.segments.fetch_minus = fetch_minus.makespan;
  est.segments.fetch_plus = fetch_plus.makespan;
  est.segments.compute_minus =
      flux_stage_minus.makespan + flux_minus.max_group_time();
  est.segments.compute_plus =
      flux_stage_plus.makespan + flux_plus.max_group_time();
  est.segments.integration = integ.max_group_time();

  const std::uint64_t lut_per_element =
      flux_minus.lut_fetches() + flux_plus.lut_fetches();
  est.segments.host_preprocess = host.special_ops_time(
      lut_per_element * config_.elements_per_batch);

  est.stage_schedule = schedule_stage_pipelined(est.segments);
  est.stage_schedule_serial = schedule_stage_serial(est.segments);

  // --- Whole time step -----------------------------------------------------
  const double stages = dg::Lsrk54::kNumStages;
  const double batches = config_.num_batches;
  const Seconds stage_time = options_.pipelined ? est.stage_schedule.total
                                                : est.stage_schedule_serial.total;

  // Batching traffic (Figs. 6-7): counted off the same Fig. 7 schedule
  // the functional simulator executes — count_staging() over the built
  // step list is the single source of slice load/store totals, so the
  // analytic number cannot drift from the executed one.
  est.hbm_bytes_per_step = 0;
  if (config_.batched) {
    const Bytes state = element_state_bytes(problem_.kind, problem_.n1d);
    const std::uint64_t dim = 1ull << problem_.refinement_level;
    const Bytes slice_bytes = state * dim * dim;
    const BatchSchedule schedule =
        build_flux_batch_schedule(problem_, config_, /*periodic=*/true);
    const StagingCounts counts = count_staging(schedule, slice_bytes);
    est.hbm_bytes_per_step = static_cast<Bytes>(stages) * counts.bytes;
  }
  const auto hbm_cost = hbm.transfer_cost(est.hbm_bytes_per_step);
  est.hbm_time_per_step = hbm_cost.time;
  est.hbm_energy = hbm_cost.energy;

  est.step_time = stage_time * (stages * batches) + est.hbm_time_per_step;
  est.step_time_unpipelined =
      est.stage_schedule_serial.total * (stages * batches) +
      est.hbm_time_per_step;

  // --- Paper-methodology throughput estimate --------------------------------
  {
    const auto ops = dg::count_problem_ops(problem_.kind,
                                           problem_.num_elements(),
                                           problem_.n1d);
    const double stage_flops =
        static_cast<double>(ops.total().flops);
    const double active_lanes =
        static_cast<double>(config_.elements_per_batch) *
        blocks_per_element(config_.expansion) *
        static_cast<double>(problem_.nodes_per_element());
    const double utilization = std::min(
        1.0, active_lanes / static_cast<double>(chip_.parallel_lanes()));
    const double peak = pim::peak_throughput_flops(chip_);
    est.step_time_peak_method =
        Seconds(stages * stage_flops / (peak * utilization)) +
        est.hbm_time_per_step;
  }

  // --- Energy ---------------------------------------------------------------
  const double elems = static_cast<double>(problem_.num_elements());
  est.dynamic_energy =
      (vol.element_energy() + flux_minus.element_energy() +
       flux_plus.element_energy() + integ.element_energy()) *
      (elems * stages);
  est.network_energy = (vol_staging.energy + flux_stage_minus.energy +
                        flux_stage_plus.energy + fetch_minus.energy +
                        fetch_plus.energy) *
                       (batches * stages);
  est.static_energy =
      energy_at(pim::chip_static_power_w(chip_), est.step_time);
  est.host_energy = energy_at(host.power_w(), est.step_time);
  est.step_energy = est.dynamic_energy + est.network_energy +
                    est.static_energy + est.host_energy + est.hbm_energy;

  // --- Fig. 14 split ---------------------------------------------------------
  est.flux_intra_element =
      est.segments.compute_minus + est.segments.compute_plus;
  est.flux_inter_element = est.segments.fetch_minus + est.segments.fetch_plus;

  return est;
}

}  // namespace wavepim::mapping
