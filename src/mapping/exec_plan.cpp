#include "mapping/exec_plan.h"

#include <bit>
#include <utility>

#include "common/error.h"

namespace wavepim::mapping {

namespace {

using Op = ExecutionPlan::Op;

/// ProgramSink that compiles a replayed relocatable stream into a
/// StreamPlan: decoded ops with resolved span pointers, plus the
/// left-folded per-group cost aggregates in exact charge order. Each
/// callback mirrors what FunctionalSink + pim::Block would charge for
/// the same call — through the shared formulas, so the aggregate equals
/// the sequential ledger bit-for-bit.
class PlanBuilder final : public ProgramSink {
 public:
  PlanBuilder(ExecutionPlan::StreamPlan& out,
              std::array<std::vector<ExecutionPlan::DeferredCharge>, 6>*
                  deferred,
              SinkPricing pricing, std::uint32_t num_groups)
      : out_(out),
        deferred_(deferred),
        pricing_(pricing),
        acc_(num_groups),
        touched_(num_groups, 0) {}

  /// Emits the per-group aggregates (in group order; application order
  /// across distinct ledgers is irrelevant, the fold order within each
  /// ledger is what matters and is preserved by charge()).
  void finish() {
    for (std::uint32_t g = 0; g < acc_.size(); ++g) {
      if (touched_[g]) {
        out_.group_cost.emplace_back(static_cast<std::uint8_t>(g), acc_[g]);
      }
    }
  }

  void scatter(std::uint32_t group, std::span<const std::uint32_t> rows,
               std::uint32_t col, std::span<const float> values,
               std::uint32_t distinct_values) override {
    WAVEPIM_REQUIRE(rows.size() == values.size(),
                    "scatter needs one value per row");
    Op op;
    op.kind = Op::Kind::Scatter;
    op.group = check_group(group);
    op.col_dst = static_cast<std::uint8_t>(col);
    op.count = check_rows(rows);
    op.rows_a = rows.data();
    op.values = values.data();
    op.distinct = distinct_values;
    out_.ops.push_back(op);
    charge(group, pim::Block::scatter_cost(*pricing_.model, rows.size(),
                                           distinct_values));
  }

  void gather(std::uint32_t group, std::span<const std::uint32_t> src_rows,
              std::uint32_t src_col, std::uint32_t dst_col) override {
    Op op;
    op.kind = Op::Kind::Gather;
    op.group = check_group(group);
    op.col_a = static_cast<std::uint8_t>(src_col);
    op.col_dst = static_cast<std::uint8_t>(dst_col);
    op.count = check_rows(src_rows);
    op.rows_a = src_rows.data();
    out_.ops.push_back(op);
    charge(group, pim::Block::gather_cost(*pricing_.model, src_rows.size()));
  }

  void arith(std::uint32_t group, pim::Opcode opcode, std::uint32_t col_a,
             std::uint32_t col_b, std::uint32_t col_dst,
             std::uint32_t rows) override {
    WAVEPIM_REQUIRE(rows <= pim::Block::kRows, "arith overflows rows");
    Op op;
    op.kind = Op::Kind::Arith;
    op.opcode = opcode;
    op.group = check_group(group);
    op.col_a = static_cast<std::uint8_t>(col_a);
    op.col_b = static_cast<std::uint8_t>(col_b);
    op.col_dst = static_cast<std::uint8_t>(col_dst);
    op.count = rows;
    out_.ops.push_back(op);
    charge(group, pricing_.model->op_cost(opcode, rows));
  }

  void fscale(std::uint32_t group, std::uint32_t col_src,
              std::uint32_t col_dst, float imm, std::uint32_t rows) override {
    WAVEPIM_REQUIRE(rows <= pim::Block::kRows, "fscale overflows rows");
    Op op;
    op.kind = Op::Kind::Fscale;
    op.group = check_group(group);
    op.col_a = static_cast<std::uint8_t>(col_src);
    op.col_dst = static_cast<std::uint8_t>(col_dst);
    op.imm = imm;
    op.count = rows;
    out_.ops.push_back(op);
    charge(group, pricing_.model->op_cost(pim::Opcode::Fscale, rows));
  }

  void faxpy(std::uint32_t group, std::uint32_t col_dst,
             std::uint32_t col_src, float a, float c,
             std::uint32_t rows) override {
    WAVEPIM_REQUIRE(rows <= pim::Block::kRows, "faxpy overflows rows");
    Op op;
    op.kind = Op::Kind::Faxpy;
    op.group = check_group(group);
    op.col_a = static_cast<std::uint8_t>(col_src);
    op.col_dst = static_cast<std::uint8_t>(col_dst);
    op.imm = a;
    op.imm2 = c;
    op.count = rows;
    out_.ops.push_back(op);
    charge(group, pricing_.model->op_cost(pim::Opcode::Faxpy, rows));
  }

  void arith_rows(std::uint32_t group, pim::Opcode opcode,
                  std::uint32_t col_a, std::uint32_t col_b,
                  std::uint32_t col_dst,
                  std::span<const std::uint32_t> rows) override {
    Op op;
    op.kind = Op::Kind::ArithRows;
    op.opcode = opcode;
    op.group = check_group(group);
    op.col_a = static_cast<std::uint8_t>(col_a);
    op.col_b = static_cast<std::uint8_t>(col_b);
    op.col_dst = static_cast<std::uint8_t>(col_dst);
    op.count = check_rows(rows);
    op.rows_a = rows.data();
    out_.ops.push_back(op);
    charge(group, pricing_.model->op_cost(
                      opcode, static_cast<std::uint32_t>(rows.size())));
  }

  void fscale_rows(std::uint32_t group, std::uint32_t col_src,
                   std::uint32_t col_dst, float imm,
                   std::span<const std::uint32_t> rows) override {
    Op op;
    op.kind = Op::Kind::FscaleRows;
    op.group = check_group(group);
    op.col_a = static_cast<std::uint8_t>(col_src);
    op.col_dst = static_cast<std::uint8_t>(col_dst);
    op.imm = imm;
    op.count = check_rows(rows);
    op.rows_a = rows.data();
    out_.ops.push_back(op);
    charge(group,
           pricing_.model->op_cost(pim::Opcode::Fscale,
                                   static_cast<std::uint32_t>(rows.size())));
  }

  void intra_transfer(std::uint32_t src_group, std::uint32_t src_col,
                      std::span<const std::uint32_t> src_rows,
                      std::uint32_t dst_group, std::uint32_t dst_col,
                      std::span<const std::uint32_t> dst_rows) override {
    push_move(/*face=*/-1, src_group, src_col, src_rows, dst_group, dst_col,
              dst_rows);
    // Charge order mirrors FunctionalSink::intra_transfer: destination
    // writes first (inside move_rows), then the source reads — the order
    // matters when both land on the same ledger (src_group == dst_group).
    charge(dst_group, pricing_.rows_written(dst_rows.size()));
    charge(src_group, pricing_.rows_read(src_rows.size()));
  }

  void inter_transfer(mesh::Face face, std::uint32_t src_group,
                      std::uint32_t src_col,
                      std::span<const std::uint32_t> src_rows,
                      std::uint32_t dst_group, std::uint32_t dst_col,
                      std::span<const std::uint32_t> dst_rows) override {
    WAVEPIM_REQUIRE(deferred_ != nullptr,
                    "inter_transfer outside the flux phase");
    push_move(static_cast<std::int8_t>(mesh::index_of(face)), src_group,
              src_col, src_rows, dst_group, dst_col, dst_rows);
    charge(dst_group, pricing_.rows_written(dst_rows.size()));
    // The source-side reads belong to the neighbour's ledger and settle
    // in flux phase B — per charge, not folded (the ledger is no longer
    // zero when they arrive).
    (*deferred_)[mesh::index_of(face)].push_back(
        {check_group(src_group), pricing_.rows_read(src_rows.size())});
  }

  void lut_fetch(std::uint32_t group, std::uint32_t count) override {
    // Mirrors FunctionalSink::lut_fetch: the ledger receives ONE charge
    // whose value is the count-fold of lut_unit.
    pim::OpCost total{};
    for (std::uint32_t i = 0; i < count; ++i) {
      total += pricing_.lut_unit;
    }
    charge(check_group(group), total);
  }

 private:
  static std::uint8_t check_group(std::uint32_t group) {
    WAVEPIM_REQUIRE(group < 0xFF, "group index out of range");
    return static_cast<std::uint8_t>(group);
  }

  /// Validates a row list against the block shape once at compile time —
  /// the execution loops then walk raw pointers without per-word checks.
  static std::uint32_t check_rows(std::span<const std::uint32_t> rows) {
    WAVEPIM_REQUIRE(rows.size() <= pim::Block::kRows,
                    "row list overflows rows");
    for (std::uint32_t r : rows) {
      WAVEPIM_REQUIRE(r < pim::Block::kRows, "block address out of range");
    }
    return static_cast<std::uint32_t>(rows.size());
  }

  void push_move(std::int8_t face, std::uint32_t src_group,
                 std::uint32_t src_col,
                 std::span<const std::uint32_t> src_rows,
                 std::uint32_t dst_group, std::uint32_t dst_col,
                 std::span<const std::uint32_t> dst_rows) {
    WAVEPIM_REQUIRE(src_rows.size() == dst_rows.size(),
                    "transfer row lists must match");
    Op op;
    op.kind = Op::Kind::Move;
    op.face = face;
    op.group = check_group(src_group);
    op.peer_group = check_group(dst_group);
    op.col_a = static_cast<std::uint8_t>(src_col);
    op.col_dst = static_cast<std::uint8_t>(dst_col);
    op.count = check_rows(src_rows);
    check_rows(dst_rows);
    op.rows_a = src_rows.data();
    op.rows_b = dst_rows.data();
    out_.ops.push_back(op);
    out_.transfers.push_back(
        {face, static_cast<std::uint8_t>(src_group),
         static_cast<std::uint8_t>(dst_group), op.count});
  }

  void charge(std::uint32_t group, const pim::OpCost& cost) {
    acc_[group] += cost;
    touched_[group] = 1;
  }

  ExecutionPlan::StreamPlan& out_;
  std::array<std::vector<ExecutionPlan::DeferredCharge>, 6>* deferred_;
  SinkPricing pricing_;
  std::vector<pim::OpCost> acc_;
  std::vector<std::uint8_t> touched_;
};

constexpr std::uint32_t kNoNeighbor = 0xFFFFFFFFu;

}  // namespace

ExecutionPlan::ExecutionPlan(ProgramCache& cache,
                             const mesh::StructuredMesh& mesh,
                             Placement placement, SinkPricing pricing)
    : cache_(cache), placement_(placement), pricing_(pricing) {
  const std::uint32_t num_groups = cache.setup().num_groups();

  classes_.resize(cache.num_classes());
  for (std::uint32_t cls = 0; cls < cache.num_classes(); ++cls) {
    ClassPlan& cp = classes_[cls];
    {
      PlanBuilder builder(cp.volume, nullptr, pricing_, num_groups);
      replay(cache.arena(), cache.volume(cls), builder);
      builder.finish();
    }
    for (std::uint32_t g = 0; g < kNumFaceGroups; ++g) {
      // One stream per face group — the granularity of one schedule
      // compute step. A group's faces fold into one aggregate (the
      // emit path charges them continuously within the step); folds
      // never span a step boundary, where ledgers are drained.
      PlanBuilder builder(cp.flux[g], &cp.deferred, pricing_, num_groups);
      for (mesh::Face f : faces_of(static_cast<FaceGroup>(g))) {
        replay(cache.arena(), cache.flux(cls, f), builder);
      }
      builder.finish();
    }
  }

  // Per-element resolution, done exactly once: neighbour block bases and
  // the element-order merged transfer lists the emit path rebuilds every
  // stage.
  neighbor_base_.resize(mesh.num_elements());
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    for (mesh::Face f : mesh::kAllFaces) {
      const auto neighbor = mesh.neighbor(e, f);
      neighbor_base_[e][mesh::index_of(f)] =
          neighbor ? placement_.block_of(*neighbor, 0) : kNoNeighbor;
    }
  }
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    const ClassPlan& cp = classes_[cache.class_of(e)];
    const std::uint32_t base = placement_.block_of(e, 0);
    for (const TransferTemplate& t : cp.volume.transfers) {
      WAVEPIM_REQUIRE(t.face < 0, "volume stream cannot pull a neighbour");
      volume_transfers_.push_back(
          {base + t.src_group, base + t.dst_group, t.words});
    }
    // Flux transfers in the canonical per-element group order the batch
    // schedule applies faces in, so the pre-merged list matches what
    // the emit path collects stage by stage on any window size.
    for (FaceGroup g : canonical_group_order(y_minus_deferred(mesh, e))) {
      const StreamPlan& stream = cp.flux[static_cast<std::size_t>(g)];
      for (const TransferTemplate& t : stream.transfers) {
        const std::uint32_t src_base =
            t.face < 0 ? base : neighbor_base_[e][static_cast<std::size_t>(
                                    t.face)];
        WAVEPIM_REQUIRE(src_base != kNoNeighbor,
                        "flux stream pulls across a boundary face");
        flux_transfers_.push_back(
            {src_base + t.src_group, base + t.dst_group, t.words});
      }
    }
  }
}

void ExecutionPlan::run_stream(
    const BlockResolver& blocks, std::uint32_t base,
    const std::array<std::uint32_t, 6>* neighbor_base,
    const StreamPlan& stream) const {
  for (const Op& op : stream.ops) {
    switch (op.kind) {
      case Op::Kind::Scatter: {
        float* dst = blocks(base + op.group).column(op.col_dst).data();
        for (std::uint32_t i = 0; i < op.count; ++i) {
          dst[op.rows_a[i]] = op.values[i];
        }
        break;
      }
      case Op::Kind::Gather: {
        pim::Block& blk = blocks(base + op.group);
        // Staged copy first: the gather is a parallel permutation even
        // when source and destination row ranges overlap (same contract
        // as Block::gather_rows, same per-worker reusable scratch).
        static thread_local std::vector<float> staged;
        staged.resize(op.count);
        const float* src = blk.column(op.col_a).data();
        for (std::uint32_t i = 0; i < op.count; ++i) {
          staged[i] = src[op.rows_a[i]];
        }
        float* dst = blk.column(op.col_dst).data();
        for (std::uint32_t i = 0; i < op.count; ++i) {
          dst[i] = staged[i];
        }
        break;
      }
      case Op::Kind::Arith: {
        pim::Block& blk = blocks(base + op.group);
        const float* a = blk.column(op.col_a).data();
        const float* b = blk.column(op.col_b).data();
        float* dst = blk.column(op.col_dst).data();
        switch (op.opcode) {
          case pim::Opcode::Fadd:
            for (std::uint32_t r = 0; r < op.count; ++r) {
              dst[r] = a[r] + b[r];
            }
            break;
          case pim::Opcode::Fsub:
            for (std::uint32_t r = 0; r < op.count; ++r) {
              dst[r] = a[r] - b[r];
            }
            break;
          case pim::Opcode::Fmul:
            for (std::uint32_t r = 0; r < op.count; ++r) {
              dst[r] = a[r] * b[r];
            }
            break;
          default:
            WAVEPIM_REQUIRE(false, "unsupported two-operand arith opcode");
        }
        break;
      }
      case Op::Kind::ArithRows: {
        pim::Block& blk = blocks(base + op.group);
        const float* a = blk.column(op.col_a).data();
        const float* b = blk.column(op.col_b).data();
        float* dst = blk.column(op.col_dst).data();
        switch (op.opcode) {
          case pim::Opcode::Fadd:
            for (std::uint32_t i = 0; i < op.count; ++i) {
              const std::uint32_t r = op.rows_a[i];
              dst[r] = a[r] + b[r];
            }
            break;
          case pim::Opcode::Fsub:
            for (std::uint32_t i = 0; i < op.count; ++i) {
              const std::uint32_t r = op.rows_a[i];
              dst[r] = a[r] - b[r];
            }
            break;
          case pim::Opcode::Fmul:
            for (std::uint32_t i = 0; i < op.count; ++i) {
              const std::uint32_t r = op.rows_a[i];
              dst[r] = a[r] * b[r];
            }
            break;
          default:
            WAVEPIM_REQUIRE(false, "unsupported two-operand arith opcode");
        }
        break;
      }
      case Op::Kind::Fscale: {
        pim::Block& blk = blocks(base + op.group);
        const float* src = blk.column(op.col_a).data();
        float* dst = blk.column(op.col_dst).data();
        for (std::uint32_t r = 0; r < op.count; ++r) {
          dst[r] = op.imm * src[r];
        }
        break;
      }
      case Op::Kind::FscaleRows: {
        pim::Block& blk = blocks(base + op.group);
        const float* src = blk.column(op.col_a).data();
        float* dst = blk.column(op.col_dst).data();
        for (std::uint32_t i = 0; i < op.count; ++i) {
          const std::uint32_t r = op.rows_a[i];
          dst[r] = op.imm * src[r];
        }
        break;
      }
      case Op::Kind::Faxpy: {
        pim::Block& blk = blocks(base + op.group);
        const float* src = blk.column(op.col_a).data();
        float* dst = blk.column(op.col_dst).data();
        for (std::uint32_t r = 0; r < op.count; ++r) {
          dst[r] = op.imm * dst[r] + op.imm2 * src[r];
        }
        break;
      }
      case Op::Kind::Move: {
        const std::uint32_t src_base =
            op.face < 0
                ? base
                : (*neighbor_base)[static_cast<std::size_t>(op.face)];
        const float* src =
            blocks(src_base + op.group).column(op.col_a).data();
        float* dst =
            blocks(base + op.peer_group).column(op.col_dst).data();
        for (std::uint32_t i = 0; i < op.count; ++i) {
          dst[op.rows_b[i]] = src[op.rows_a[i]];
        }
        break;
      }
    }
  }
  // One batched charge per touched block: the pre-folded phase aggregate
  // (bit-identical to the per-op sequence — the ledger starts at zero).
  for (const auto& [group, cost] : stream.group_cost) {
    blocks(base + group).charge(cost);
  }
}

void ExecutionPlan::run_volume(const BlockResolver& blocks,
                               mesh::ElementId e) const {
  run_stream(blocks, placement_.block_of(e, 0), nullptr,
             classes_[cache_.class_of(e)].volume);
}

void ExecutionPlan::run_flux_group(const BlockResolver& blocks,
                                   mesh::ElementId e, FaceGroup group) const {
  run_stream(blocks, placement_.block_of(e, 0), &neighbor_base_[e],
             classes_[cache_.class_of(e)].flux[static_cast<std::size_t>(
                 group)]);
}

void ExecutionPlan::run_integration(const BlockResolver& blocks,
                                    mesh::ElementId e,
                                    const StreamPlan& stage) const {
  run_stream(blocks, placement_.block_of(e, 0), nullptr, stage);
}

void ExecutionPlan::settle_pull(pim::OpCost* accumulators, mesh::ElementId e,
                                mesh::Face face) const {
  const auto& deferred =
      classes_[cache_.class_of(e)].deferred[mesh::index_of(face)];
  if (deferred.empty()) {
    return;
  }
  const std::uint32_t neighbor = neighbor_base_[e][mesh::index_of(face)];
  WAVEPIM_REQUIRE(neighbor != kNoNeighbor,
                  "deferred charges across a boundary face");
  for (const DeferredCharge& c : deferred) {
    accumulators[neighbor + c.src_group] += c.cost;
  }
}

const ExecutionPlan::StreamPlan& ExecutionPlan::integration(int stage,
                                                            float dt) {
  const auto key = std::make_pair(stage, std::bit_cast<std::uint32_t>(dt));
  const auto it = integration_.find(key);
  if (it != integration_.end()) {
    return it->second;
  }
  StreamPlan plan;
  PlanBuilder builder(plan, nullptr, pricing_,
                      cache_.setup().num_groups());
  const ProgramCache::IntegrationProgram& integ =
      cache_.integration(stage, dt);
  replay(integ.arena, integ.stream, builder);
  builder.finish();
  WAVEPIM_REQUIRE(plan.transfers.empty(),
                  "integration streams move no data between blocks");
  return integration_.emplace(key, std::move(plan)).first->second;
}

}  // namespace wavepim::mapping
