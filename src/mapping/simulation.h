#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/parallel.h"
#include "dg/fields.h"
#include "mapping/element_program.h"
#include "mapping/exec_plan.h"
#include "mapping/program_cache.h"
#include "mapping/residency.h"
#include "mapping/sinks.h"
#include "mapping/word_plan.h"
#include "mesh/structured_mesh.h"
#include "pim/chip.h"

namespace wavepim::mapping {

/// Execution tier of the functional simulator. All four produce
/// bit-identical fields, cost channels and interconnect statistics
/// (guarded by tests/mapping/exec_conformance_test.cpp); they trade
/// host-side simulation speed against implementation directness:
///
///  * `Emit`     — every element re-lowers its kernels every stage and
///                 executes them through a FunctionalSink (PR 1).
///  * `Replay`   — each shape class is lowered once into the program
///                 cache; steps replay the cached relocatable streams
///                 per element through a FunctionalSink (PR 2).
///  * `Compiled` — the cached streams are additionally resolved into
///                 per-class ExecutionPlan op arrays with batched cost
///                 aggregates and pre-merged transfer lists, executed by
///                 a non-virtual dispatch loop (PR 3).
///  * `Word`     — the compiled streams are resolved once more into
///                 vectorized word-level kernels run op-major over
///                 chunks of same-class elements (mapping/word_plan.h),
///                 with the compiled bit-serial path retained as an
///                 optional differential witness (PR 7).
enum class ExecPath : std::uint8_t { Emit, Replay, Compiled, Word };

[[nodiscard]] const char* to_string(ExecPath path);

/// Bit-true Wave-PIM simulation: executes the mapped Volume / Flux /
/// Integration instruction streams on functional crossbar blocks,
/// producing the same nodal fields as the CPU reference solver up to
/// FP32 rounding. This is the end-to-end validation of the mapping —
/// and doubles as a cycle-level cost probe, since every block op and
/// transfer is priced while it executes.
///
/// Element programs address blocks by *virtual* id (the element-major
/// Placement numbering) and resolve them through a ResidencyManager.
/// Every RK stage walks the BatchSchedule's step list: Load steps bring
/// Y-slices on chip (and run Volume at a slice's first load of the
/// stage), Compute steps apply one face group to a slice range, Store
/// steps run Integration at a slice's last store and write the slice
/// back. A fully resident problem is simply the single-window instance
/// of the same schedule (its Load/Store steps move no data), so batched
/// and resident runs execute the identical per-element operation
/// sequence — the fields and the compute/network cost channels are
/// bit-identical, and only the `hbm` staging channel differs.
///
/// Execution is parallel at element granularity and deterministic for
/// any worker count:
///
///  * Volume and Integration touch only the bound element's blocks;
///    per-element transfer lists are concatenated in element order
///    before interconnect scheduling.
///  * Flux runs a two-phase schedule. Phase A (the Compute steps)
///    applies face corrections in parallel: neighbour *variable*
///    columns are only read, so the data exchange is race-free, while
///    the source-side read costs owed to neighbours are deferred.
///    Phase B settles them at stage end over precomputed disjoint face
///    pairings.
///  * Block ledgers are folded into per-virtual-block accumulators at
///    every schedule-step boundary (physical blocks are recycled across
///    windows, virtual accumulators are not), and each phase drain
///    merges the accumulators in ascending virtual-id order, fixing the
///    floating-point reduction order.
class PimSimulation {
 public:
  /// Uniform materials; the mesh spans [0, 1]^3.
  PimSimulation(const Problem& problem, ExpansionMode mode,
                pim::ChipConfig chip,
                mesh::Boundary boundary = mesh::Boundary::Periodic,
                dg::AcousticMaterial acoustic = {},
                dg::ElasticMaterial elastic = {.lambda = 2.0,
                                               .mu = 1.0,
                                               .rho = 1.0});

  /// Heterogeneous acoustic medium: per-element materials. The host
  /// pre-computes per-face-pair flux constants (the paper's LUT path);
  /// here that becomes one probed coefficient set per (element, face).
  PimSimulation(const Problem& problem, ExpansionMode mode,
                pim::ChipConfig chip,
                const dg::MaterialField<dg::AcousticMaterial>& materials,
                mesh::Boundary boundary = mesh::Boundary::Periodic);

  /// Heterogeneous elastic medium.
  PimSimulation(const Problem& problem, ExpansionMode mode,
                pim::ChipConfig chip,
                const dg::MaterialField<dg::ElasticMaterial>& materials,
                mesh::Boundary boundary = mesh::Boundary::Periodic);

  /// Uniform materials on an externally owned (pooled) chip. The chip
  /// must be exclusively this simulation's while it lives — the service
  /// ChipPool enforces that; recycle it with pim::Chip::reset() only
  /// after the simulation is destroyed (the residency table aliases its
  /// blocks).
  PimSimulation(const Problem& problem, ExpansionMode mode,
                std::shared_ptr<pim::Chip> chip,
                mesh::Boundary boundary = mesh::Boundary::Periodic,
                dg::AcousticMaterial acoustic = {},
                dg::ElasticMaterial elastic = {.lambda = 2.0,
                                               .mu = 1.0,
                                               .rho = 1.0});

  [[nodiscard]] const mesh::StructuredMesh& mesh() const { return mesh_; }
  [[nodiscard]] const ElementSetup& setup() const { return setup_; }
  [[nodiscard]] pim::Chip& chip() { return *chip_; }
  /// The virtual-to-physical block mapping layer (window geometry, the
  /// executed schedule and the staging counters).
  [[nodiscard]] const ResidencyManager& residency() const {
    return *residency_;
  }

  /// Selects the worker count for the element-parallel phases: 1 runs
  /// serially, 0 (default) uses the process-global pool (sized by
  /// `WAVEPIM_NUM_THREADS` or the hardware), any other value creates a
  /// dedicated pool. Results are identical for every setting.
  void set_num_threads(std::size_t num_threads);
  [[nodiscard]] std::size_t num_threads() { return pool().size(); }

  /// Selects the execution tier (see ExecPath). The default comes from
  /// `WAVEPIM_EXEC` (`emit` / `replay` / `compiled` / `word`); unset falls
  /// back to the PR-2 `WAVEPIM_PROGRAM_CACHE` switch (on -> Replay,
  /// off -> Emit).
  void set_exec_path(ExecPath path) { exec_path_ = path; }
  [[nodiscard]] ExecPath exec_path() const { return exec_path_; }
  [[nodiscard]] static ExecPath default_exec_path();

  /// Legacy PR-2 switch, kept as an alias over the tier: `true` selects
  /// Replay, `false` direct Emit.
  void set_program_cache(bool enabled) {
    exec_path_ = enabled ? ExecPath::Replay : ExecPath::Emit;
  }
  [[nodiscard]] bool program_cache_enabled() const {
    return exec_path_ != ExecPath::Emit;
  }
  /// The process-wide default: on unless `WAVEPIM_PROGRAM_CACHE` is set
  /// to `0` or `off` (the CI cache-off lane and A/B runs).
  [[nodiscard]] static bool default_program_cache_enabled();
  /// The cache, once the first cached step has built it (nullptr before).
  [[nodiscard]] const ProgramCache* program_cache() const {
    return cache_.get();
  }
  /// Adopts a cache built elsewhere (the service ProgramBank's shared
  /// shape-class entry) instead of lowering a private one: tenants of
  /// the same (problem, expansion, boundary) class replay the identical
  /// streams, and ProgramCache::integration is thread-safe so tenants on
  /// different chips may lower stages concurrently. Uniform-material
  /// problems only; call before the first cached/compiled/word step.
  void set_shared_cache(std::shared_ptr<ProgramCache> cache);
  /// The compiled plan, once the first compiled step has built it.
  [[nodiscard]] const ExecutionPlan* execution_plan() const {
    return plan_.get();
  }
  /// The word-level plan, once the first word-tier step has built it.
  [[nodiscard]] const WordPlan* word_plan() const { return word_plan_.get(); }

  // --- Witness mode (word tier only) ---------------------------------------
  // The bit-serial compiled path doubles as a conformance witness for the
  // word tier: a checked phase snapshots its elements' blocks before the
  // word kernels run, re-executes the phase through the ExecutionPlan on
  // shadow blocks seeded from the snapshot, and compares per-block
  // FNV-1a hashes of the full post-state. Flux re-execution reads
  // neighbour *variable* columns from the live blocks — safe, because no
  // phase writes them before Integration.

  /// Witness cadence: 0 disables (and keeps the hot path allocation-
  /// free), 1 checks every phase application ("full", the CI lane), N
  /// checks every Nth phase application, starting with the first.
  void set_witness_interval(std::uint32_t interval) {
    witness_interval_ = interval;
  }
  [[nodiscard]] std::uint32_t witness_interval() const {
    return witness_interval_;
  }
  /// The process default, from `WAVEPIM_WITNESS` (unset -> 0/off).
  [[nodiscard]] static std::uint32_t default_witness_interval();

  struct WitnessStats {
    std::uint64_t checks = 0;          ///< phase applications re-executed
    std::uint64_t blocks_checked = 0;  ///< block hash comparisons
    std::uint64_t mismatches = 0;      ///< blocks whose hashes differed
  };
  /// One divergent block of a checked phase: where, and when.
  struct WitnessMismatch {
    int stage = 0;                  ///< RK stage of the checked phase
    std::uint32_t schedule_step = 0;  ///< BatchSchedule step index
    std::uint32_t vblock = 0;       ///< virtual id of the divergent block
  };
  [[nodiscard]] const WitnessStats& witness_stats() const {
    return witness_stats_;
  }
  [[nodiscard]] const std::vector<WitnessMismatch>& witness_mismatches()
      const {
    return witness_mismatches_;
  }

  /// Test hook: before the next witness comparison, flips the sign bit
  /// of the word at (row, col) of virtual block `vblock` in the *live*
  /// state — the injected fault a functioning witness must catch and
  /// attribute. One-shot.
  void set_witness_corruption(std::uint32_t vblock, std::uint32_t col,
                              std::uint32_t row) {
    witness_corruption_ = {vblock, col, row};
  }

  /// Loads nodal variables into the blocks' variable columns and zeroes
  /// the auxiliaries (Fig. 5's "loading inputs" step). Element-parallel.
  /// Resident runs charge the initial HBM load to the `hbm` channel;
  /// batched runs write the host-side backing store instead (the step
  /// loop's Load steps price the staging).
  void load_state(const dg::Field& u);

  /// Reads the variables back out (blocks when resident, the backing
  /// store when batched). Element-parallel. Resident runs charge the
  /// final HBM readback to the `hbm` channel.
  [[nodiscard]] dg::Field read_state();

  /// Advances one time step (five RK stages through the full PIM
  /// instruction streams, each a pass over the residency schedule).
  void step(double dt);

  // --- Preemption support (service layer) ----------------------------------
  // A job parked at a time-step boundary and resumed on another chip (or
  // the same chip after a reset) must be indistinguishable from a solo
  // run: checkpoint/restore round-trip the *full* inter-step block state
  // — variables AND RK auxiliaries (load_state zeroes the auxiliaries,
  // which is only correct before the first step) — and seed_ledgers
  // re-seats the cost fold so subsequent `+=` drains continue the exact
  // solo left-fold. Both are cost-free by design: parking is host-side
  // bookkeeping, and the solo-equivalent HBM charges stay where a solo
  // run pays them (load_state at admission, read_state at completion).

  /// Snapshot of the inter-step state, laid out per element, per
  /// variable: the variable column then its auxiliary column.
  [[nodiscard]] std::vector<float> checkpoint();
  /// Restores a snapshot taken by `checkpoint()` on a simulation of the
  /// same problem/mode (any chip, any residency window).
  void restore_checkpoint(std::span<const float> state);

  /// Per-kernel accumulated cost since construction. Compute phases take
  /// the busiest block per phase; transfers are interconnect-scheduled.
  /// `hbm` prices the off-chip staging traffic (state load/readback when
  /// resident, the schedule's slice loads/stores when batched); it is
  /// reported separately and NOT part of total(), which remains the
  /// on-chip execution cost — identical for batched and resident runs.
  struct Costs {
    pim::OpCost volume;
    pim::OpCost flux;
    pim::OpCost integration;
    pim::OpCost network;
    pim::OpCost hbm;

    [[nodiscard]] pim::OpCost total() const {
      pim::OpCost t = volume;
      t += flux;
      t += integration;
      t += network;
      return t;
    }
  };
  [[nodiscard]] const Costs& costs() const { return costs_; }

  /// Deterministic interconnect statistics accumulated by the per-phase
  /// transfer schedules (merged in element order, flux additionally in
  /// the canonical face-group order — identical for any worker count and
  /// for every execution tier).
  struct NetStats {
    std::uint64_t schedules = 0;  ///< network drains run
    std::uint64_t transfers = 0;  ///< transfer descriptors scheduled
    std::uint64_t words = 0;      ///< 32-bit words moved
    Seconds serial_sum;           ///< sum of isolated latencies
    // Link aggregates, populated only by the cycle backend (zero under
    // the default analytic scheduler, which has no queuing dynamics).
    std::uint64_t link_schedules = 0;  ///< drains that carried link stats
    Seconds stall_time;                ///< total per-transfer queue wait
    double max_utilization = 0.0;  ///< busiest link fraction of any drain
    std::uint64_t peak_queue = 0;  ///< deepest per-link queue seen
  };
  [[nodiscard]] const NetStats& net_stats() const { return net_stats_; }

  /// Overwrites the cost and interconnect ledgers with the values a
  /// parked run had accumulated, so the resumed run's drains append to
  /// the same floating-point fold a never-preempted run would have (see
  /// the preemption block above checkpoint()).
  void seed_ledgers(const Costs& costs, const NetStats& net) {
    costs_ = costs;
    net_stats_ = net;
  }

 private:
  using RemoteCharges =
      std::array<std::vector<FunctionalSink::DeferredCharge>, 6>;

  [[nodiscard]] ThreadPool& pool();

  /// Runs `emit(element, sink)` for the given elements across the pool,
  /// each element through its own FunctionalSink; transfers land in the
  /// per-element `stash` entries (recycled across stages, concatenated
  /// in element order at the phase drain). When `defer_charges` the
  /// sinks defer neighbour-side costs into `charge_stash_`, which
  /// *accumulates* across the compute steps of one stage.
  void emit_range(
      std::span<const mesh::ElementId> elements,
      const std::function<void(mesh::ElementId, FunctionalSink&)>& emit,
      std::vector<std::vector<pim::Transfer>>& stash, bool defer_charges);

  /// Folds the physical block ledgers of `elements` into the phase's
  /// per-virtual-block accumulators and clears them — called at every
  /// schedule-step boundary, before a window store can recycle the
  /// physical slots.
  void fold_ledgers(std::span<const mesh::ElementId> elements,
                    std::vector<pim::OpCost>& acc);

  /// Flux phase B: applies the deferred neighbour-side read charges over
  /// the precomputed disjoint face pairings into `flux_acc_`.
  void settle_charges(bool compiled);

  /// Merges and clears a phase's accumulators into a cost channel:
  /// {max time, energy summed in ascending virtual-id order}.
  void drain_accumulators(std::vector<pim::OpCost>& acc, pim::OpCost& into);

  /// Schedules a phase's transfer list on the interconnect and folds the
  /// result into the network cost channel. Does not modify the list (the
  /// compiled path feeds the plan's pre-merged lists every stage).
  void drain_network(const std::vector<pim::Transfer>& transfers);

  /// Memoised network drain for the compiled path: its per-phase transfer
  /// lists are identical every stage, so the interconnect schedule is run
  /// once and its (deterministic) increments are replayed — the same
  /// `+=` values in the same order as drain_network, hence bit-identical
  /// accumulation.
  struct CachedNetDrain {
    bool valid = false;
    pim::OpCost cost;            ///< {makespan, energy} of the schedule
    std::uint64_t transfers = 0;
    std::uint64_t words = 0;
    Seconds serial_sum;
    bool has_link_stats = false;  ///< cycle backend ran this schedule
    pim::LinkStats links;
  };
  void drain_network_cached(CachedNetDrain& cached,
                            const std::vector<pim::Transfer>& transfers);
  /// Capacity diagnostics shared by both chip paths (throws
  /// CapacityError with the choose_config hint when the problem cannot
  /// even batch on this chip).
  void check_capacity(const pim::ChipConfig& chip) const;
  void init_chip(pim::ChipConfig chip);
  /// Pricing/residency/accumulator setup over whatever chip_ points at
  /// (owned or pooled) — the tail both constructors share.
  void attach_chip();
  void build_face_pairings();

  /// Builds the shape-class cache on the first cached step (classifies
  /// the mesh, lowers each class once into the shared arena).
  void ensure_cache();
  /// Builds the compiled plan (and the cache beneath it) on the first
  /// compiled step.
  void ensure_plan();
  /// Builds the word plan (and the compiled plan beneath it — the word
  /// tier's cost source and witness) on the first word-tier step.
  void ensure_word_plan();

  /// Runs one word-tier phase: chunked fan-out of `run_word` over
  /// `elems`, wrapped in the witness protocol when this phase
  /// application is selected by the cadence (snapshot before, shadow
  /// re-execution + hash compare after). `run_shadow` re-executes one
  /// element bit-serially through the given resolver.
  template <typename RunWord, typename RunShadow>
  void run_word_phase(std::span<const mesh::ElementId> elems, int stage,
                      std::uint32_t step_idx, RunWord&& run_word,
                      RunShadow&& run_shadow);

  /// Copies the pre-state of `elems`' blocks into the witness snapshot.
  void witness_snapshot(std::span<const mesh::ElementId> elems);
  /// Shadow re-execution + comparison of one checked phase (see the
  /// witness section above). Emits one `pim.witness` span, and a
  /// `pim.witness.mismatch` instant per divergent block.
  void witness_verify(
      std::span<const mesh::ElementId> elems, int stage,
      std::uint32_t step_idx,
      const std::function<void(const BlockResolver&, mesh::ElementId)>&
          run_shadow);

  /// One step: five RK stages, each a pass over the residency schedule's
  /// step list, shared by all three tiers (they differ only in how one
  /// element's stream runs: re-lower, replay, or compiled op loop).
  void run_schedule(double dt);

  /// Per-element coefficient overrides for heterogeneous media; empty
  /// for uniform problems (the setup's coefficients apply).
  [[nodiscard]] const VolumeCoeffs* volume_override(
      mesh::ElementId e) const;
  [[nodiscard]] const FluxCoeffs* flux_override(mesh::ElementId e,
                                                mesh::Face f) const;

  Problem problem_;
  mesh::StructuredMesh mesh_;
  ElementSetup setup_;
  pim::ArithModel arith_;
  /// Owned for the ChipConfig constructors; aliased when a pool hands in
  /// an external chip (shared ownership keeps it alive past the pool).
  std::shared_ptr<pim::Chip> chip_;
  std::unique_ptr<ResidencyManager> residency_;
  /// Interconnect used to price transfers, which carry *virtual* block
  /// ids: the chip's own network when the problem is resident, otherwise
  /// one built over an inflated copy of the chip geometry so every
  /// virtual id has a position (hop costs depend only on the id, so the
  /// resident prices are unchanged).
  std::unique_ptr<pim::Interconnect> owned_net_;
  const pim::Interconnect* net_ = nullptr;
  Placement placement_{1};
  SinkPricing pricing_;
  std::unique_ptr<ThreadPool> owned_pool_;  ///< set_num_threads(n >= 1)
  Costs costs_;
  NetStats net_stats_;
  ExecPath exec_path_ = default_exec_path();
  /// Built privately by ensure_cache, or adopted via set_shared_cache.
  std::shared_ptr<ProgramCache> cache_;
  std::unique_ptr<ExecutionPlan> plan_;
  std::unique_ptr<WordPlan> word_plan_;
  /// Witness state (word tier). Everything below is touched only when
  /// `witness_interval_ != 0`, so witness-off steps allocate nothing.
  std::uint32_t witness_interval_ = default_witness_interval();
  std::uint64_t witness_counter_ = 0;  ///< phase applications seen
  WitnessStats witness_stats_;
  std::vector<WitnessMismatch> witness_mismatches_;
  std::vector<float> witness_snapshot_;   ///< pre-state of checked phase
  std::vector<std::uint8_t> witness_bad_;  ///< per-block compare results
  struct WitnessCorruption {
    std::uint32_t vblock;
    std::uint32_t col;
    std::uint32_t row;
  };
  std::optional<WitnessCorruption> witness_corruption_;
  /// Disjoint face pairings for flux phase B: pairing group (axis, parity)
  /// holds the elements whose +axis face starts a pairing (the element's
  /// coordinate along the axis has that parity). Within a group, an
  /// element appears in at most one pairing — its own entry or its -axis
  /// neighbour's — so pairings can settle concurrently.
  std::array<std::vector<mesh::ElementId>, 6> face_pairings_;
  std::vector<VolumeCoeffs> volume_coeffs_;       ///< per element
  std::vector<std::array<FluxCoeffs, 6>> flux_coeffs_;  ///< per element/face
  /// Per-phase cost accumulators indexed by virtual block id; folded from
  /// the physical ledgers at step boundaries and drained per stage.
  std::vector<pim::OpCost> volume_acc_;
  std::vector<pim::OpCost> flux_acc_;
  std::vector<pim::OpCost> integ_acc_;
  /// Schedule-step index of each slice's first Load / last Store within
  /// one stage pass: Volume runs at the first load, Integration at the
  /// last store (the periodic staging slice is loaded and stored twice).
  std::vector<std::uint32_t> first_load_step_;
  std::vector<std::uint32_t> last_store_step_;
  /// Recycled per-element stashes of the sink fan-outs (emit/replay
  /// tiers). Volume and each flux face group keep their own stash so the
  /// phase drains can merge in element (x canonical group) order no
  /// matter which schedule step produced a list; integration emits no
  /// transfers but needs a scratch stash for the sink protocol.
  std::vector<std::vector<pim::Transfer>> transfer_stash_;
  std::array<std::vector<std::vector<pim::Transfer>>, kNumFaceGroups>
      flux_stash_;
  std::vector<std::vector<pim::Transfer>> integ_stash_;
  std::vector<RemoteCharges> charge_stash_;
  std::vector<pim::Transfer> merged_transfers_;
  /// Once-scheduled network phases of the compiled path.
  CachedNetDrain volume_net_;
  CachedNetDrain flux_net_;
};

}  // namespace wavepim::mapping
