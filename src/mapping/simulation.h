#pragma once

#include <memory>

#include "dg/fields.h"
#include "mapping/element_program.h"
#include "mapping/sinks.h"
#include "mesh/structured_mesh.h"
#include "pim/chip.h"

namespace wavepim::mapping {

/// Bit-true Wave-PIM simulation: executes the mapped Volume / Flux /
/// Integration instruction streams on functional crossbar blocks for a
/// (small) problem, producing the same nodal fields as the CPU reference
/// solver up to FP32 rounding. This is the end-to-end validation of the
/// mapping — and doubles as a cycle-level cost probe, since every block
/// op and transfer is priced while it executes.
class PimSimulation {
 public:
  /// Uniform materials; the mesh spans [0, 1]^3.
  PimSimulation(const Problem& problem, ExpansionMode mode,
                pim::ChipConfig chip,
                mesh::Boundary boundary = mesh::Boundary::Periodic,
                dg::AcousticMaterial acoustic = {},
                dg::ElasticMaterial elastic = {.lambda = 2.0,
                                               .mu = 1.0,
                                               .rho = 1.0});

  /// Heterogeneous acoustic medium: per-element materials. The host
  /// pre-computes per-face-pair flux constants (the paper's LUT path);
  /// here that becomes one probed coefficient set per (element, face).
  PimSimulation(const Problem& problem, ExpansionMode mode,
                pim::ChipConfig chip,
                const dg::MaterialField<dg::AcousticMaterial>& materials,
                mesh::Boundary boundary = mesh::Boundary::Periodic);

  /// Heterogeneous elastic medium.
  PimSimulation(const Problem& problem, ExpansionMode mode,
                pim::ChipConfig chip,
                const dg::MaterialField<dg::ElasticMaterial>& materials,
                mesh::Boundary boundary = mesh::Boundary::Periodic);

  [[nodiscard]] const mesh::StructuredMesh& mesh() const { return mesh_; }
  [[nodiscard]] const ElementSetup& setup() const { return setup_; }
  [[nodiscard]] pim::Chip& chip() { return *chip_; }

  /// Loads nodal variables into the blocks' variable columns and zeroes
  /// the auxiliaries (Fig. 5's "loading inputs" step).
  void load_state(const dg::Field& u);

  /// Reads the variables back out of the blocks.
  [[nodiscard]] dg::Field read_state();

  /// Advances one time step (five RK stages through the full PIM
  /// instruction streams).
  void step(double dt);

  /// Per-kernel accumulated cost since construction. Compute phases take
  /// the busiest block per phase; transfers are interconnect-scheduled.
  struct Costs {
    pim::OpCost volume;
    pim::OpCost flux;
    pim::OpCost integration;
    pim::OpCost network;

    [[nodiscard]] pim::OpCost total() const {
      pim::OpCost t = volume;
      t += flux;
      t += integration;
      t += network;
      return t;
    }
  };
  [[nodiscard]] const Costs& costs() const { return costs_; }

 private:
  void drain_compute(pim::OpCost& into);
  void drain_network();
  void init_chip(pim::ChipConfig chip);

  /// Per-element coefficient overrides for heterogeneous media; empty
  /// for uniform problems (the setup's coefficients apply).
  [[nodiscard]] const VolumeCoeffs* volume_override(
      mesh::ElementId e) const;
  [[nodiscard]] const FluxCoeffs* flux_override(mesh::ElementId e,
                                                mesh::Face f) const;

  Problem problem_;
  mesh::StructuredMesh mesh_;
  ElementSetup setup_;
  pim::ArithModel arith_;
  std::unique_ptr<pim::Chip> chip_;
  std::unique_ptr<FunctionalSink> sink_;
  Costs costs_;
  std::vector<VolumeCoeffs> volume_coeffs_;       ///< per element
  std::vector<std::array<FluxCoeffs, 6>> flux_coeffs_;  ///< per element/face
};

}  // namespace wavepim::mapping
