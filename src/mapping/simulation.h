#pragma once

#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "dg/fields.h"
#include "mapping/element_program.h"
#include "mapping/program_cache.h"
#include "mapping/sinks.h"
#include "mesh/structured_mesh.h"
#include "pim/chip.h"

namespace wavepim::mapping {

/// Bit-true Wave-PIM simulation: executes the mapped Volume / Flux /
/// Integration instruction streams on functional crossbar blocks for a
/// (small) problem, producing the same nodal fields as the CPU reference
/// solver up to FP32 rounding. This is the end-to-end validation of the
/// mapping — and doubles as a cycle-level cost probe, since every block
/// op and transfer is priced while it executes.
///
/// Execution is parallel at block (element) granularity, mirroring the
/// hardware's embarrassing block-level parallelism: each worker runs whole
/// elements' instruction streams against their own blocks. The schedule is
/// deterministic — nodal fields, cycle counts, energy totals and
/// interconnect statistics are bit-identical for any worker count:
///
///  * Volume and Integration touch only the bound element's blocks, so
///    elements are fully independent; per-element transfer lists are
///    concatenated in element order before interconnect scheduling.
///  * Flux runs a two-phase schedule. Phase A computes every element's
///    face corrections in parallel: neighbour *variable* columns are only
///    read (no element writes them during the phase), so the data exchange
///    itself is race-free, while the source-side read costs owed to
///    neighbour ledgers are deferred. Phase B settles those charges over
///    precomputed disjoint face pairings — six groups (axis × coordinate
///    parity) in which every element participates in at most one pairing,
///    so no two workers touch the same block and every ledger receives its
///    charges in a fixed face order.
///  * Chip::drain_phase merges per-block ledgers in ascending block-id
///    order, fixing the floating-point reduction order.
class PimSimulation {
 public:
  /// Uniform materials; the mesh spans [0, 1]^3.
  PimSimulation(const Problem& problem, ExpansionMode mode,
                pim::ChipConfig chip,
                mesh::Boundary boundary = mesh::Boundary::Periodic,
                dg::AcousticMaterial acoustic = {},
                dg::ElasticMaterial elastic = {.lambda = 2.0,
                                               .mu = 1.0,
                                               .rho = 1.0});

  /// Heterogeneous acoustic medium: per-element materials. The host
  /// pre-computes per-face-pair flux constants (the paper's LUT path);
  /// here that becomes one probed coefficient set per (element, face).
  PimSimulation(const Problem& problem, ExpansionMode mode,
                pim::ChipConfig chip,
                const dg::MaterialField<dg::AcousticMaterial>& materials,
                mesh::Boundary boundary = mesh::Boundary::Periodic);

  /// Heterogeneous elastic medium.
  PimSimulation(const Problem& problem, ExpansionMode mode,
                pim::ChipConfig chip,
                const dg::MaterialField<dg::ElasticMaterial>& materials,
                mesh::Boundary boundary = mesh::Boundary::Periodic);

  [[nodiscard]] const mesh::StructuredMesh& mesh() const { return mesh_; }
  [[nodiscard]] const ElementSetup& setup() const { return setup_; }
  [[nodiscard]] pim::Chip& chip() { return *chip_; }

  /// Selects the worker count for the element-parallel phases: 1 runs
  /// serially, 0 (default) uses the process-global pool (sized by
  /// `WAVEPIM_NUM_THREADS` or the hardware), any other value creates a
  /// dedicated pool. Results are identical for every setting.
  void set_num_threads(std::size_t num_threads);
  [[nodiscard]] std::size_t num_threads() { return pool().size(); }

  /// Enables or disables the shape-class program cache. When on (the
  /// default unless `WAVEPIM_PROGRAM_CACHE=0`), each element equivalence
  /// class (coefficient set x boundary-face pattern) is lowered once and
  /// `step` replays the cached relocatable streams; when off, every
  /// element re-emits its kernels each stage. Both paths produce
  /// bit-identical fields, costs and interconnect statistics (guarded by
  /// tests/mapping/parallel_determinism_test.cpp).
  void set_program_cache(bool enabled) { program_cache_ = enabled; }
  [[nodiscard]] bool program_cache_enabled() const { return program_cache_; }
  /// The process-wide default: on unless `WAVEPIM_PROGRAM_CACHE` is set
  /// to `0` or `off` (the CI cache-off lane and A/B runs).
  [[nodiscard]] static bool default_program_cache_enabled();
  /// The cache, once the first cached step has built it (nullptr before).
  [[nodiscard]] const ProgramCache* program_cache() const {
    return cache_.get();
  }

  /// Loads nodal variables into the blocks' variable columns and zeroes
  /// the auxiliaries (Fig. 5's "loading inputs" step).
  void load_state(const dg::Field& u);

  /// Reads the variables back out of the blocks.
  [[nodiscard]] dg::Field read_state();

  /// Advances one time step (five RK stages through the full PIM
  /// instruction streams).
  void step(double dt);

  /// Per-kernel accumulated cost since construction. Compute phases take
  /// the busiest block per phase; transfers are interconnect-scheduled.
  struct Costs {
    pim::OpCost volume;
    pim::OpCost flux;
    pim::OpCost integration;
    pim::OpCost network;

    [[nodiscard]] pim::OpCost total() const {
      pim::OpCost t = volume;
      t += flux;
      t += integration;
      t += network;
      return t;
    }
  };
  [[nodiscard]] const Costs& costs() const { return costs_; }

  /// Deterministic interconnect statistics accumulated by the per-phase
  /// transfer schedules (element-ordered merge, so identical for any
  /// worker count and for cached vs uncached execution).
  struct NetStats {
    std::uint64_t schedules = 0;  ///< network drains run
    std::uint64_t transfers = 0;  ///< transfer descriptors scheduled
    std::uint64_t words = 0;      ///< 32-bit words moved
    Seconds serial_sum;           ///< sum of isolated latencies
  };
  [[nodiscard]] const NetStats& net_stats() const { return net_stats_; }

 private:
  using RemoteCharges =
      std::array<std::vector<FunctionalSink::DeferredCharge>, 6>;

  [[nodiscard]] ThreadPool& pool();

  /// Runs `emit(element, sink)` for every element across the pool, each
  /// element through its own FunctionalSink, and appends the per-element
  /// transfer lists to `transfers` in element order. When `charges` is
  /// non-null the sinks defer neighbour-side costs into it (flux phase A).
  void parallel_emit(
      const std::function<void(mesh::ElementId, FunctionalSink&)>& emit,
      std::vector<pim::Transfer>& transfers,
      std::vector<RemoteCharges>* charges);

  /// Flux phase B: applies the deferred neighbour-side charges over the
  /// precomputed disjoint face pairings.
  void settle_remote_charges(std::vector<RemoteCharges>& charges);

  void drain_compute(pim::OpCost& into);
  void drain_network(std::vector<pim::Transfer>& transfers);
  void init_chip(pim::ChipConfig chip);
  void build_face_pairings();

  /// Builds the shape-class cache on the first cached step (classifies
  /// the mesh, lowers each class once into the shared arena).
  void ensure_cache();

  /// Per-element coefficient overrides for heterogeneous media; empty
  /// for uniform problems (the setup's coefficients apply).
  [[nodiscard]] const VolumeCoeffs* volume_override(
      mesh::ElementId e) const;
  [[nodiscard]] const FluxCoeffs* flux_override(mesh::ElementId e,
                                                mesh::Face f) const;

  Problem problem_;
  mesh::StructuredMesh mesh_;
  ElementSetup setup_;
  pim::ArithModel arith_;
  std::unique_ptr<pim::Chip> chip_;
  std::unique_ptr<FunctionalSink> sink_;  ///< serial load/read accessor
  Placement placement_{1};
  SinkPricing pricing_;
  std::unique_ptr<ThreadPool> owned_pool_;  ///< set_num_threads(n >= 1)
  Costs costs_;
  NetStats net_stats_;
  bool program_cache_ = default_program_cache_enabled();
  std::unique_ptr<ProgramCache> cache_;
  /// Disjoint face pairings for flux phase B: pairing group (axis, parity)
  /// holds the elements whose +axis face starts a pairing (the element's
  /// coordinate along the axis has that parity). Within a group, an
  /// element appears in at most one pairing — its own entry or its -axis
  /// neighbour's — so pairings can settle concurrently.
  std::array<std::vector<mesh::ElementId>, 6> face_pairings_;
  std::vector<VolumeCoeffs> volume_coeffs_;       ///< per element
  std::vector<std::array<FluxCoeffs, 6>> flux_coeffs_;  ///< per element/face
};

}  // namespace wavepim::mapping
