#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "mapping/program_cache.h"
#include "mapping/residency.h"
#include "mapping/sinks.h"
#include "mesh/structured_mesh.h"
#include "pim/chip.h"

namespace wavepim::mapping {

/// Compiled execution engine — the third tier of the mapping layer's
/// lower-once/execute-many ladder (direct emit -> cached replay ->
/// compiled plan).
///
/// The shape-class cache (PR 2) removed per-stage re-lowering, but its
/// replay path still decodes every cached instruction per element per
/// stage, dispatches through the virtual ProgramSink interface, and lets
/// `pim::Block` price every operation individually. The plan removes all
/// three costs:
///
///  * each class's relocatable streams are decoded exactly once into
///    flat `Op` arrays with resolved row-span/constant pointers into the
///    program arena, executed by a tight non-virtual switch loop
///    directly over the blocks' contiguous column storage;
///  * per-element state — the neighbour block base of every exchange
///    face and the element-order merged transfer descriptor list of each
///    phase — is resolved once at plan construction, so a step issues no
///    mesh lookups and no transfer-list concatenation at all;
///  * ledger arithmetic is batched: while compiling a stream the builder
///    left-folds, in exact charge order, the same per-op costs the
///    functional sink would charge, yielding one `OpCost` aggregate per
///    element block per phase that is applied with a single `charge()`.
///
/// Cost-accounting invariant (why batching stays bit-identical): every
/// block ledger is exactly zero at the start of a schedule step (the
/// executor folds and clears it at each step boundary), so the
/// sequential per-op accumulation `0 + c1 + ... + cn` equals the
/// pre-folded `0 + (c1 + ... + cn)` bit-for-bit as long as the fold
/// applies the identical values in the identical order — which the
/// builder guarantees by replaying the stream through the shared cost
/// formulas (`SinkPricing`, `pim::Block::gather_cost/scatter_cost`,
/// `ArithModel::op_cost`). Flux streams are compiled per *face group*
/// (the schedule's step granularity: {Y-}, {X-,X+}, {Z-,Z+}, {Y+}), so
/// each aggregate spans exactly the charges of one compute step.
/// Deferred neighbour-side flux charges arrive *after* the step folds,
/// so they are NOT folded in: the plan keeps them as per-face charge
/// lists applied individually (to the caller's per-virtual-block
/// accumulators) in the settlement order of the pairing schedule,
/// exactly like the emit path.
///
/// Blocks are addressed by *virtual* id and resolved through a
/// `BlockResolver`, so the same plan executes whether the problem is
/// fully resident or cycled through a residency window.
///
/// Thread safety: the run_* methods are const and touch only the bound
/// element's blocks (flux additionally reads neighbour variable columns,
/// which no element writes during the phase — the same contract the
/// replay path relies on). `integration()` lowers lazily and must be
/// called before fanning out, mirroring `ProgramCache::integration`.
class ExecutionPlan {
 public:
  /// One resolved operation of a compiled stream. Row lists and constant
  /// vectors point into the program arena's interned side tables (stable
  /// for the cache's lifetime); blocks are identified by element-local
  /// group, bound to absolute ids by a single add at execution.
  struct Op {
    enum class Kind : std::uint8_t {
      Scatter,     ///< values[i] -> (rows_a[i], col_dst)
      Gather,      ///< (rows_a[i], col_a) -> (i, col_dst)
      Arith,       ///< rows [0, count) of col_dst = col_a <op> col_b
      ArithRows,   ///< explicit row set variant
      Fscale,      ///< col_dst = imm * col_a over [0, count)
      FscaleRows,  ///< explicit row set variant
      Faxpy,       ///< col_dst = imm * col_dst + imm2 * col_a
      Move,        ///< rows between two blocks (intra or neighbour pull)
    };

    Kind kind = Kind::Arith;
    pim::Opcode opcode = pim::Opcode::Nop;  ///< Arith/ArithRows operator
    std::uint8_t group = 0;       ///< target block (source for Move)
    std::uint8_t peer_group = 0;  ///< Move destination block
    std::int8_t face = -1;        ///< Move source: -1 own element, else
                                  ///< mesh::index_of of the pulled face
    std::uint8_t col_a = 0;
    std::uint8_t col_b = 0;
    std::uint8_t col_dst = 0;
    std::uint32_t count = 0;      ///< rows covered / words moved
    float imm = 0.0f;
    float imm2 = 0.0f;
    const std::uint32_t* rows_a = nullptr;  ///< source/target row list
    const std::uint32_t* rows_b = nullptr;  ///< Move destination rows
    const float* values = nullptr;          ///< Scatter constants
    std::uint32_t distinct = 0;             ///< Scatter distinct values
  };

  /// Group-relative transfer descriptor of a class stream; expanded into
  /// the absolute pre-merged per-phase lists at plan construction.
  struct TransferTemplate {
    std::int8_t face = -1;  ///< -1: intra-element; else source face
    std::uint8_t src_group = 0;
    std::uint8_t dst_group = 0;
    std::uint32_t words = 0;
  };

  /// A neighbour-side read cost one inter-element pull owes (flux phase
  /// B); `cost` is the pre-priced rows_read of the pulled words.
  struct DeferredCharge {
    std::uint8_t src_group = 0;
    pim::OpCost cost;
  };

  /// One compiled stream: resolved ops, the per-group phase-fold cost
  /// aggregates (only touched groups listed), and the transfer templates
  /// in emission order.
  struct StreamPlan {
    std::vector<Op> ops;
    std::vector<std::pair<std::uint8_t, pim::OpCost>> group_cost;
    std::vector<TransferTemplate> transfers;
  };

  /// Compiles every class of `cache` and resolves the per-element
  /// binding tables. The cache (and its arena) must outlive the plan.
  ExecutionPlan(ProgramCache& cache, const mesh::StructuredMesh& mesh,
                Placement placement, SinkPricing pricing);

  /// Executes one element's Volume / flux-group / Integration stream:
  /// the data ops, then the batched per-block cost aggregates.
  void run_volume(const BlockResolver& blocks, mesh::ElementId e) const;
  void run_flux_group(const BlockResolver& blocks, mesh::ElementId e,
                      FaceGroup group) const;
  void run_integration(const BlockResolver& blocks, mesh::ElementId e,
                       const StreamPlan& stage) const;

  /// Applies the deferred neighbour-side read charges of element `e`'s
  /// pull across `face` into the caller's per-virtual-block cost
  /// accumulators (flux phase B; caller iterates the disjoint pairing
  /// schedule exactly like the emit path's settlement).
  void settle_pull(pim::OpCost* accumulators, mesh::ElementId e,
                   mesh::Face face) const;

  /// Compiled Integration stream for (stage, dt); lowered through the
  /// cache on first request and memoised. Not thread-safe: fetch before
  /// the parallel fan-out.
  const StreamPlan& integration(int stage, float dt);

  /// Element-order merged transfer lists of one whole phase (flux in
  /// the canonical per-element group order of the batch schedule) —
  /// identical every stage, so they are resolved once and fed straight
  /// to the interconnect scheduler. Block ids are virtual: the
  /// interconnect prices them by position, independent of residency.
  [[nodiscard]] const std::vector<pim::Transfer>& volume_transfers() const {
    return volume_transfers_;
  }
  [[nodiscard]] const std::vector<pim::Transfer>& flux_transfers() const {
    return flux_transfers_;
  }

  [[nodiscard]] std::uint32_t num_classes() const {
    return static_cast<std::uint32_t>(classes_.size());
  }

  // --- Word-tier introspection ---------------------------------------------
  // The word-level engine (mapping/word_plan.h) re-resolves these compiled
  // streams into vectorized kernels; it reuses the per-group cost
  // aggregates and binding tables verbatim, so the two tiers cannot drift
  // in accounting or addressing. References stay valid for the plan's
  // lifetime (classes_ is fixed at construction, integration_ nodes are
  // stable).

  [[nodiscard]] const StreamPlan& volume_plan(std::uint32_t cls) const {
    return classes_[cls].volume;
  }
  [[nodiscard]] const StreamPlan& flux_plan(std::uint32_t cls,
                                            FaceGroup group) const {
    return classes_[cls].flux[static_cast<std::size_t>(group)];
  }
  [[nodiscard]] std::uint32_t class_of(mesh::ElementId e) const {
    return cache_.class_of(e);
  }
  /// Absolute block base of element `e` (its group-0 virtual id).
  [[nodiscard]] std::uint32_t block_base(mesh::ElementId e) const {
    return placement_.block_of(e, 0);
  }
  [[nodiscard]] const std::array<std::uint32_t, 6>& neighbor_bases(
      mesh::ElementId e) const {
    return neighbor_base_[e];
  }
  [[nodiscard]] std::uint32_t num_groups() const {
    return cache_.setup().num_groups();
  }
  [[nodiscard]] std::uint32_t num_elements() const {
    return static_cast<std::uint32_t>(neighbor_base_.size());
  }

 private:
  struct ClassPlan {
    StreamPlan volume;
    /// One stream per face group (a group's faces concatenated in face
    /// order) — the granularity of one schedule compute step, so each
    /// cost fold spans exactly one step's charges.
    std::array<StreamPlan, kNumFaceGroups> flux;
    /// Phase-B charge lists keyed by the pulled face, emission order.
    std::array<std::vector<DeferredCharge>, 6> deferred;
  };

  void run_stream(const BlockResolver& blocks, std::uint32_t base,
                  const std::array<std::uint32_t, 6>* neighbor_base,
                  const StreamPlan& stream) const;

  ProgramCache& cache_;
  Placement placement_;
  SinkPricing pricing_;
  std::vector<ClassPlan> classes_;
  /// Per element: absolute block base of the neighbour across each face
  /// (UINT32_MAX for boundary faces, never dereferenced — boundary-face
  /// class streams carry no pulls).
  std::vector<std::array<std::uint32_t, 6>> neighbor_base_;
  std::vector<pim::Transfer> volume_transfers_;
  std::vector<pim::Transfer> flux_transfers_;
  /// Memoised per (stage, dt-bits); std::map nodes are stable, so the
  /// references handed out stay valid while new stages are added.
  std::map<std::pair<int, std::uint32_t>, StreamPlan> integration_;
};

}  // namespace wavepim::mapping
