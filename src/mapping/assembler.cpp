#include "mapping/assembler.h"

#include "common/error.h"

namespace wavepim::mapping {

AssemblerSink::AssemblerSink(const mesh::StructuredMesh& mesh,
                             Placement placement)
    : mesh_(mesh), placement_(placement) {}

std::uint32_t AssemblerSink::rows_table(
    std::span<const std::uint32_t> rows) {
  return program_.add_rows({rows.begin(), rows.end()});
}

void AssemblerSink::scatter(std::uint32_t group,
                            std::span<const std::uint32_t> rows,
                            std::uint32_t col, std::span<const float> values,
                            std::uint32_t distinct_values) {
  pim::Instruction inst;
  inst.op = pim::Opcode::BroadcastRow;
  inst.block = block_of(group);
  inst.col_dst = static_cast<std::uint8_t>(col);
  inst.word_count = distinct_values;
  inst.table_a = rows_table(rows);
  inst.table_b = program_.add_values({values.begin(), values.end()});
  program_.instructions.push_back(inst);
}

void AssemblerSink::gather(std::uint32_t group,
                           std::span<const std::uint32_t> src_rows,
                           std::uint32_t src_col, std::uint32_t dst_col) {
  pim::Instruction inst;
  inst.op = pim::Opcode::GatherRows;
  inst.block = block_of(group);
  inst.col_a = static_cast<std::uint8_t>(src_col);
  inst.col_dst = static_cast<std::uint8_t>(dst_col);
  inst.row = 0;  // gathers land in the node rows
  inst.table_a = rows_table(src_rows);
  program_.instructions.push_back(inst);
}

void AssemblerSink::arith(std::uint32_t group, pim::Opcode op,
                          std::uint32_t col_a, std::uint32_t col_b,
                          std::uint32_t col_dst, std::uint32_t rows) {
  pim::Instruction inst;
  inst.op = op;
  inst.block = block_of(group);
  inst.col_a = static_cast<std::uint8_t>(col_a);
  inst.col_b = static_cast<std::uint8_t>(col_b);
  inst.col_dst = static_cast<std::uint8_t>(col_dst);
  inst.row = 0;
  inst.row_count = rows;
  program_.instructions.push_back(inst);
}

void AssemblerSink::fscale(std::uint32_t group, std::uint32_t col_src,
                           std::uint32_t col_dst, float imm,
                           std::uint32_t rows) {
  pim::Instruction inst;
  inst.op = pim::Opcode::Fscale;
  inst.block = block_of(group);
  inst.col_a = static_cast<std::uint8_t>(col_src);
  inst.col_dst = static_cast<std::uint8_t>(col_dst);
  inst.imm = imm;
  inst.row = 0;
  inst.row_count = rows;
  program_.instructions.push_back(inst);
}

void AssemblerSink::faxpy(std::uint32_t group, std::uint32_t col_dst,
                          std::uint32_t col_src, float a, float c,
                          std::uint32_t rows) {
  pim::Instruction inst;
  inst.op = pim::Opcode::Faxpy;
  inst.block = block_of(group);
  inst.col_a = static_cast<std::uint8_t>(col_src);
  inst.col_dst = static_cast<std::uint8_t>(col_dst);
  inst.imm = a;
  inst.imm2 = c;
  inst.row = 0;
  inst.row_count = rows;
  program_.instructions.push_back(inst);
}

void AssemblerSink::arith_rows(std::uint32_t group, pim::Opcode op,
                               std::uint32_t col_a, std::uint32_t col_b,
                               std::uint32_t col_dst,
                               std::span<const std::uint32_t> rows) {
  pim::Instruction inst;
  inst.op = op;
  inst.block = block_of(group);
  inst.col_a = static_cast<std::uint8_t>(col_a);
  inst.col_b = static_cast<std::uint8_t>(col_b);
  inst.col_dst = static_cast<std::uint8_t>(col_dst);
  inst.row_count = static_cast<std::uint32_t>(rows.size());
  inst.table_a = rows_table(rows);
  program_.instructions.push_back(inst);
}

void AssemblerSink::fscale_rows(std::uint32_t group, std::uint32_t col_src,
                                std::uint32_t col_dst, float imm,
                                std::span<const std::uint32_t> rows) {
  pim::Instruction inst;
  inst.op = pim::Opcode::Fscale;
  inst.block = block_of(group);
  inst.col_a = static_cast<std::uint8_t>(col_src);
  inst.col_dst = static_cast<std::uint8_t>(col_dst);
  inst.imm = imm;
  inst.row_count = static_cast<std::uint32_t>(rows.size());
  inst.table_a = rows_table(rows);
  program_.instructions.push_back(inst);
}

void AssemblerSink::intra_transfer(std::uint32_t src_group,
                                   std::uint32_t src_col,
                                   std::span<const std::uint32_t> src_rows,
                                   std::uint32_t dst_group,
                                   std::uint32_t dst_col,
                                   std::span<const std::uint32_t> dst_rows) {
  pim::Instruction inst;
  inst.op = pim::Opcode::MemCpy;
  inst.block = block_of(src_group);
  inst.peer_block = block_of(dst_group);
  inst.col_a = static_cast<std::uint8_t>(src_col);
  inst.col_dst = static_cast<std::uint8_t>(dst_col);
  inst.word_count = static_cast<std::uint32_t>(src_rows.size());
  inst.table_a = rows_table(src_rows);
  inst.table_b = rows_table(dst_rows);
  program_.instructions.push_back(inst);
}

void AssemblerSink::inter_transfer(mesh::Face face, std::uint32_t src_group,
                                   std::uint32_t src_col,
                                   std::span<const std::uint32_t> src_rows,
                                   std::uint32_t dst_group,
                                   std::uint32_t dst_col,
                                   std::span<const std::uint32_t> dst_rows) {
  const auto neighbor = mesh_.neighbor(element_, face);
  WAVEPIM_REQUIRE(neighbor.has_value(),
                  "inter_transfer emitted for a boundary face");
  pim::Instruction inst;
  inst.op = pim::Opcode::MemCpy;
  inst.block = placement_.block_of(*neighbor, src_group);
  inst.peer_block = block_of(dst_group);
  inst.col_a = static_cast<std::uint8_t>(src_col);
  inst.col_dst = static_cast<std::uint8_t>(dst_col);
  inst.word_count = static_cast<std::uint32_t>(src_rows.size());
  inst.table_a = rows_table(src_rows);
  inst.table_b = rows_table(dst_rows);
  program_.instructions.push_back(inst);
}

void AssemblerSink::lut_fetch(std::uint32_t group, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    pim::Instruction inst;
    inst.op = pim::Opcode::LutLookup;
    inst.block = block_of(group);
    // The LUT lives in the tile-local reserved block a few switches away
    // (same assumption the costing sinks price).
    inst.peer_block = block_of(group) ^ 0x5u;
    program_.instructions.push_back(inst);
  }
}

pim::LoweredProgram assemble_stage(const ElementSetup& setup,
                                   const mesh::StructuredMesh& mesh,
                                   Placement placement, int stage, float dt) {
  AssemblerSink sink(mesh, placement);
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    sink.bind(e);
    emit_volume(setup, sink);
  }
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    sink.bind(e);
    for (mesh::Face f : mesh::kAllFaces) {
      const bool boundary = !mesh.neighbor(e, f).has_value();
      emit_flux_face(setup, f, boundary, sink);
    }
  }
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    sink.bind(e);
    emit_integration_stage(setup, stage, dt, sink);
  }
  return sink.take_program();
}

pim::LoweredProgram assemble_stage(const mesh::StructuredMesh& mesh,
                                   Placement placement, int stage, float dt,
                                   ProgramCache& cache) {
  const ProgramCache::IntegrationProgram& integ = cache.integration(stage, dt);
  AssemblerSink sink(mesh, placement);
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    sink.bind(e);
    replay(cache.arena(), cache.volume(cache.class_of(e)), sink);
  }
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    sink.bind(e);
    const std::uint32_t cls = cache.class_of(e);
    for (mesh::Face f : mesh::kAllFaces) {
      replay(cache.arena(), cache.flux(cls, f), sink);
    }
  }
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    sink.bind(e);
    replay(integ.arena, integ.stream, sink);
  }
  return sink.take_program();
}

}  // namespace wavepim::mapping
