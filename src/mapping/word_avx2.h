#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mapping/sinks.h"

namespace wavepim::mapping {

class ExecutionPlan;

/// AVX2 execution engine for the word tier — the vector back-end
/// `WordPlan` dispatches to at runtime when the host supports it
/// (`wordavx::supported()`), with the portable kernels of `pim/word.h`
/// as the always-correct fallback.
///
/// Why hand-rolled vectors: the compiled row lists are 9-27 rows long,
/// and at that trip count the autovectorizer's runtime alias checks,
/// prologues and scalar tails cost more than the arithmetic — and its
/// if-conversion refuses the masked stores the irregular face-node
/// patterns need. The engine instead normalizes every op at plan-build
/// time into 8-lane groups over a contiguous row window:
///
///  * compute ops (add/sub/mul/scale/axpy/const) evaluate the full
///    window and keep non-member lanes at their old value with a
///    precomputed lane mask and a blend-store;
///  * movement ops (gather/move) load the whole source window into
///    registers first — which reproduces the compiled tier's staging
///    semantics for free — then route lanes with a vpermps select
///    network driven by precomputed lane indices.
///
/// Bit-identity with the scalar kernels is structural: each written
/// lane is produced by exactly one IEEE operation on the same operands
/// (AVX2 add/sub/mul round identically to their scalar forms, the TU is
/// compiled without FMA so nothing can contract), masked-off lanes are
/// rewritten with the bytes they already hold, and any op whose rows
/// repeat or overlap in ways the group form cannot express falls back
/// to the scalar kernels op-by-op, in stream order.
namespace wordavx {

/// One group-normalized op. Arena pointers (mask/values/perm) alias
/// storage owned by the enclosing WordPlan; they hold `ngroups * 8`
/// lanes each, of which the first `nfull` groups are dense (all lanes
/// written, no mask or blend needed).
struct AvxOp {
  enum class Kind : std::uint8_t {
    Add,      ///< dst = a + b over the window
    Sub,      ///< dst = a - b
    Mul,      ///< dst = a * b
    Scale,    ///< dst = imm * a
    Axpy,     ///< dst = imm * dst + imm2 * a
    Const,    ///< dst = values (scatter of plan constants)
    Permute,  ///< dst lanes select from a <=32-float source window
    Fallback  ///< run generic WordOp [fallback_idx] from the mirror stream
  };

  Kind kind = Kind::Add;
  std::uint8_t group = 0;       ///< block group of dst (src for Permute)
  std::uint8_t peer_group = 0;  ///< Permute dst block group
  std::int8_t face = -1;        ///< Permute src face (-1: own element)
  std::uint16_t nfull = 0;      ///< leading dense 8-lane groups
  std::uint16_t ngroups = 0;    ///< total 8-lane groups
  std::uint16_t wgroups = 0;    ///< Permute source window groups
  std::uint32_t off_a = 0;      ///< col*kRows + window base of operand a
  std::uint32_t off_b = 0;
  std::uint32_t off_dst = 0;
  std::uint32_t fallback_idx = 0;
  float imm = 0.0f;
  float imm2 = 0.0f;
  const std::int32_t* mask = nullptr;  ///< -1 write / 0 keep, per lane
  const float* values = nullptr;       ///< Const lane values
  const std::int32_t* perm = nullptr;  ///< Permute source lane in [0,32)
};

struct AvxStream {
  std::vector<AvxOp> ops;
};

/// Everything the executor needs per run. `fallback` executes one
/// generic WordOp of the mirror stream across the whole element range
/// (rare: ops the group form cannot express bit-identically).
struct ExecCtx {
  const BlockResolver* blocks = nullptr;
  const ExecutionPlan* plan = nullptr;
  std::span<const mesh::ElementId> elems;
  float* const* ptrs = nullptr;
  std::uint32_t num_groups = 0;
  void (*fallback)(const ExecCtx&, std::uint32_t fallback_idx,
                   const void* fallback_ctx) = nullptr;
  const void* fallback_ctx = nullptr;
};

/// True when the running CPU executes AVX2 (and the library was built
/// with the engine compiled in).
[[nodiscard]] bool supported();

/// Executes `stream` over the context's element range, op-major.
void exec(const AvxStream& stream, const ExecCtx& ctx);

}  // namespace wordavx
}  // namespace wavepim::mapping
