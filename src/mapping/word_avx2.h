#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mapping/sinks.h"

namespace wavepim::mapping {

class ExecutionPlan;

/// AVX2 execution engine for the word tier — the vector back-end
/// `WordPlan` dispatches to at runtime when the host supports it
/// (`wordavx::supported()`), with the portable kernels of `pim/word.h`
/// as the always-correct fallback.
///
/// Why hand-rolled vectors: the compiled row lists are 9-27 rows long,
/// and at that trip count the autovectorizer's runtime alias checks,
/// prologues and scalar tails cost more than the arithmetic — and its
/// if-conversion refuses the masked stores the irregular face-node
/// patterns need. The engine instead normalizes every op at plan-build
/// time into 8-lane groups over a contiguous row window:
///
///  * compute ops (add/sub/mul/scale/axpy/const) evaluate the full
///    window and keep non-member lanes at their old value with a
///    precomputed lane mask and a blend-store;
///  * movement ops (gather/move) load the whole source window into
///    registers first — which reproduces the compiled tier's staging
///    semantics for free — then route lanes with a vpermps select
///    network driven by precomputed lane indices.
///
/// Bit-identity with the scalar kernels is structural: each written
/// lane is produced by exactly one IEEE operation on the same operands
/// (AVX2 add/sub/mul round identically to their scalar forms, the TU is
/// compiled without FMA so nothing can contract), masked-off lanes are
/// rewritten with the bytes they already hold, and any op whose rows
/// repeat or overlap in ways the group form cannot express falls back
/// to the scalar kernels op-by-op, in stream order.
namespace wordavx {

/// One group-normalized op. Arena pointers (mask/values/perm) alias
/// storage owned by the enclosing WordPlan; they hold `ngroups * 8`
/// lanes each, of which the first `nfull` groups are dense (all lanes
/// written, no mask or blend needed).
struct AvxOp {
  enum class Kind : std::uint8_t {
    Add,      ///< dst = a + b over the window
    Sub,      ///< dst = a - b
    Mul,      ///< dst = a * b
    Scale,    ///< dst = imm * a
    Axpy,     ///< dst = imm * dst + imm2 * a
    Const,    ///< dst = values (scatter of plan constants)
    Permute,  ///< dst lanes select from a <=32-float source window
    Fallback, ///< run generic WordOp [fallback_idx] from the mirror stream
    // Fused pairs (see WordPlan::fuse_stream). The first op's result is
    // still stored (scratch columns are hashed state) and forwarded in a
    // register to the second op, whose remaining operand is off_c and
    // whose destination is off_d. All columns share the destination row
    // window, so group alignment makes every aliasing case resolve in
    // the scalar kernels' order.
    ScaleAdd,  ///< mid(off_dst) = imm * a; d(off_d) = c(off_c) + mid
    MulAdd,    ///< mid(off_dst) = a * b;   d(off_d) = c(off_c) + mid
    AxpyPair,  ///< d1(off_dst) = imm*d1 + imm2*a;
               ///< d2(off_c)   = imm3*d2 + imm4*d1
    // Chain head: `chain` consecutive ScaleAdd links into one in-place
    // accumulator (off_c) through one scratch column (off_dst). The
    // links follow as Nop entries whose off_a / imm the head reads; the
    // accumulator rides in a register and only the LAST link's scratch
    // store lands (bit-legal — see WordPlan::fuse_stream pass 3).
    ChainScaleAdd,
    // Paired chain head (fuse pass 5): `chain2` links per half, two
    // accumulators (off_c / off_b) fed from one pass over the shared
    // source columns. Entries [1, chain) follow as Nops; entry
    // [chain2 + j] carries the second half's immediate for link j.
    Chain2ScaleAdd,
    Nop,  ///< chain link data carrier — executes nothing
    // Gather feeding its consumer, over the Permute select network:
    // g(off_dst) = src(off_a)[perm]; prod = g * b(off_b); GatherMul
    // stores prod to off_d; GatherMulAdd stores prod to mid(off_d) and
    // acc(off_c) = acc + prod.
    GatherMul,
    GatherMulAdd,
  };

  Kind kind = Kind::Add;
  std::uint8_t group = 0;       ///< block group of dst (src for Permute)
  std::uint8_t peer_group = 0;  ///< Permute dst block group
  std::int8_t face = -1;        ///< Permute src face (-1: own element)
  std::uint16_t nfull = 0;      ///< leading dense 8-lane groups
  std::uint16_t ngroups = 0;    ///< total 8-lane groups
  std::uint16_t wgroups = 0;    ///< Permute source window groups
  std::uint32_t off_a = 0;      ///< col*kRows + window base of operand a
  std::uint32_t off_b = 0;
  std::uint32_t off_dst = 0;
  std::uint32_t off_c = 0;  ///< fused: second op's other operand column
  std::uint32_t off_d = 0;  ///< fused: second op's destination column
  std::uint32_t fallback_idx = 0;
  /// Stream entries this op spans: 1 except Chain*ScaleAdd heads (their
  /// Nop links included) and Fallback ops mirroring a scalar chain head.
  std::uint16_t chain = 1;
  /// Chain2ScaleAdd only: links per half (chain == 2 * chain2); the
  /// second accumulator's window offset rides in off_b.
  std::uint16_t chain2 = 0;
  /// Dead-store elision flags copied from the mirror WordOp (see
  /// WordPlan::WordOp::kSkipMid / kSkipG): bit 0 skips the fused
  /// intermediate store, bit 1 the gathered-scratch store.
  std::uint8_t skip = 0;
  float imm = 0.0f;
  float imm2 = 0.0f;
  float imm3 = 0.0f;  ///< AxpyPair: second op's immediates
  float imm4 = 0.0f;
  const std::int32_t* mask = nullptr;  ///< -1 write / 0 keep, per lane
  /// Const lane values; for GatherMul/GatherMulAdd, a non-null value is
  /// the forwarded constant-b lane table (see WordOp::b_values).
  const float* values = nullptr;
  const std::int32_t* perm = nullptr;  ///< Permute source lane in [0,32)
};

struct AvxStream {
  std::vector<AvxOp> ops;
};

/// Everything the executor needs per run. `fallback` executes one
/// generic WordOp of the mirror stream across the whole element range
/// (rare: ops the group form cannot express bit-identically).
struct ExecCtx {
  const BlockResolver* blocks = nullptr;
  const ExecutionPlan* plan = nullptr;
  std::span<const mesh::ElementId> elems;
  float* const* ptrs = nullptr;
  std::uint32_t num_groups = 0;
  void (*fallback)(const ExecCtx&, std::uint32_t fallback_idx,
                   const void* fallback_ctx) = nullptr;
  const void* fallback_ctx = nullptr;
};

/// True when the running CPU executes AVX2 (and the library was built
/// with the engine compiled in).
[[nodiscard]] bool supported();

/// Executes `stream` over the context's element range, op-major.
void exec(const AvxStream& stream, const ExecCtx& ctx);

}  // namespace wordavx
}  // namespace wavepim::mapping
