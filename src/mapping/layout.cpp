#include "mapping/layout.h"

#include "common/error.h"

namespace wavepim::mapping {

const char* to_string(ExpansionMode m) {
  switch (m) {
    case ExpansionMode::None:
      return "N";
    case ExpansionMode::Acoustic4:
      return "Ep";
    case ExpansionMode::Elastic3:
      return "Er";
    case ExpansionMode::Elastic9:
      return "Er&Ep";
  }
  return "?";
}

std::uint32_t blocks_per_element(ExpansionMode m) {
  switch (m) {
    case ExpansionMode::None:
      return 1;
    case ExpansionMode::Acoustic4:
      return 4;
    case ExpansionMode::Elastic3:
      return 3;
    case ExpansionMode::Elastic9:
      return 9;
  }
  return 1;
}

std::vector<ExpansionMode> applicable_modes(dg::ProblemKind kind) {
  if (dg::is_elastic(kind)) {
    // Elastic cannot run in one block (9 variables starve the scratchpad,
    // §5.1), so E_r is the baseline and E_r&E_p the expanded form.
    return {ExpansionMode::Elastic3, ExpansionMode::Elastic9};
  }
  return {ExpansionMode::None, ExpansionMode::Acoustic4};
}

BlockLayout::BlockLayout(std::uint32_t nv) : num_vars(nv) {
  WAVEPIM_REQUIRE(nv >= 1, "block must hold at least one variable");
  WAVEPIM_REQUIRE(1 + 3 * nv < pim::ChipConfig::words_per_row(),
                  "variables exceed the 32-word row");
}

std::uint32_t BlockLayout::col_var(std::uint32_t v) const {
  WAVEPIM_REQUIRE(v < num_vars, "variable index out of range");
  return 1 + v;
}

std::uint32_t BlockLayout::col_aux(std::uint32_t v) const {
  WAVEPIM_REQUIRE(v < num_vars, "variable index out of range");
  return 1 + num_vars + v;
}

std::uint32_t BlockLayout::col_contrib(std::uint32_t v) const {
  WAVEPIM_REQUIRE(v < num_vars, "variable index out of range");
  return 1 + 2 * num_vars + v;
}

std::uint32_t BlockLayout::col_scratch(std::uint32_t i) const {
  WAVEPIM_REQUIRE(i < scratch_count(), "scratch column out of range");
  return scratch_begin() + i;
}

std::vector<std::vector<std::uint32_t>> var_groups(dg::ProblemKind kind,
                                                   ExpansionMode m) {
  const bool elastic = dg::is_elastic(kind);
  switch (m) {
    case ExpansionMode::None:
      WAVEPIM_REQUIRE(!elastic,
                      "elastic cannot use the one-block layout (§5.1)");
      return {{0, 1, 2, 3}};
    case ExpansionMode::Acoustic4:
      WAVEPIM_REQUIRE(!elastic, "Acoustic4 is an acoustic mode");
      // p alone; one block per velocity component (Figs. 8-9 variant).
      return {{0}, {1}, {2}, {3}};
    case ExpansionMode::Elastic3:
      WAVEPIM_REQUIRE(elastic, "Elastic3 is an elastic mode");
      // velocities | diagonal stress | shear stress.
      return {{0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
    case ExpansionMode::Elastic9: {
      WAVEPIM_REQUIRE(elastic, "Elastic9 is an elastic mode");
      std::vector<std::vector<std::uint32_t>> g(9);
      for (std::uint32_t v = 0; v < 9; ++v) {
        g[v] = {v};
      }
      return g;
    }
  }
  return {};
}

std::uint32_t owner_block_of_var(
    const std::vector<std::vector<std::uint32_t>>& groups,
    std::uint32_t var) {
  for (std::uint32_t g = 0; g < groups.size(); ++g) {
    for (std::uint32_t v : groups[g]) {
      if (v == var) {
        return g;
      }
    }
  }
  WAVEPIM_ASSERT(false, "variable not assigned to any block");
}

Bytes element_state_bytes(dg::ProblemKind kind, int n1d) {
  const std::uint64_t nodes = static_cast<std::uint64_t>(n1d) * n1d * n1d;
  const std::uint64_t vars = dg::is_elastic(kind) ? 9 : 4;
  // variables + auxiliaries + contributions, FP32.
  return nodes * vars * 3 * 4;
}

}  // namespace wavepim::mapping
