#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mapping/config.h"

namespace wavepim::mapping {

/// One step of the batched Flux execution flow (Fig. 7's circled steps).
struct BatchStep {
  enum class Kind : std::uint8_t {
    LoadSlices,    ///< stage slices from off-chip memory into PIM blocks
    StoreSlices,   ///< write finished slices back to off-chip memory
    ComputeX,      ///< intra-slice flux, X axis, both normals
    ComputeZ,      ///< intra-slice flux, Z axis, both normals
    ComputeYMinus, ///< the -1 Y face of every element in the range
    ComputeYPlus,  ///< the +1 Y face of every element in the range
  };

  Kind kind;
  std::uint32_t first_slice = 0;  ///< inclusive
  std::uint32_t last_slice = 0;   ///< inclusive

  [[nodiscard]] std::string describe() const;
};

/// The complete batched Flux schedule for a configuration: the ordered
/// step list that keeps at most `slices_per_batch` (+1 staging) slices
/// resident while applying every face flux exactly once (§6.1.2).
///
/// Compute steps are per-face-side: a ComputeYMinus over [f..l] means
/// every element in those slices applies its -1 Y face (pairing with the
/// slice below, the reflective boundary, or the periodic wrap partner).
/// The step order fixes a canonical per-element face order — Y-, X-,
/// X+, Z-, Z+, Y+ (periodic slice 0 rotates its deferred Y- to the
/// end) — that is identical for every window size, so a batched run
/// applies faces in exactly the same order as a fully-resident one.
///
/// For the paper's example (level 5 on 2 GB: 16 of 32 slices resident)
/// this reproduces Fig. 7's step structure.
struct BatchSchedule {
  std::vector<BatchStep> steps;
  std::uint32_t num_slices = 0;
  std::uint32_t resident_slices = 0;  ///< window size (excl. staging slice)

  /// Peak number of slices simultaneously resident (window + 1 when
  /// batching: the Fig. 7 staging slice for the crossing Y flux).
  [[nodiscard]] std::uint32_t peak_resident() const;
  /// Total slice-loads (>= num_slices; the excess is the Fig. 7 overlap
  /// reload — the periodic wrap reloads slice 0 once more).
  [[nodiscard]] std::uint32_t total_loads() const;
  /// Total slice-stores (mirrors total_loads: the periodic wrap stores
  /// slice 0 twice, once un-integrated and once final).
  [[nodiscard]] std::uint32_t total_stores() const;
};

/// Builds the schedule. `num_slices` is the mesh dimension (2^level);
/// `resident` how many slices fit on chip; `periodic` selects the
/// Y-axis wrap pairing (slice 0 with slice N-1). If everything fits,
/// the schedule is a single window: load, the compute steps, store.
BatchSchedule build_flux_batch_schedule(std::uint32_t num_slices,
                                        std::uint32_t resident,
                                        bool periodic = false);

/// Convenience: schedule for a chosen mapping configuration.
BatchSchedule build_flux_batch_schedule(const Problem& problem,
                                        const MappingConfig& config,
                                        bool periodic = false);

}  // namespace wavepim::mapping
