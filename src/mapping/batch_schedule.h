#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mapping/config.h"

namespace wavepim::mapping {

/// One step of the batched Flux execution flow (Fig. 7's circled steps).
struct BatchStep {
  enum class Kind : std::uint8_t {
    LoadSlices,    ///< stage slices from off-chip memory into PIM blocks
    StoreSlices,   ///< write finished slices back to off-chip memory
    ComputeX,      ///< intra-slice flux, X axis, both normals
    ComputeZ,      ///< intra-slice flux, Z axis, both normals
    ComputeYMinus, ///< Y-axis flux, normal -1 (pairs inside the window)
    ComputeYPlus,  ///< Y-axis flux, normal +1 (needs the next slice)
  };

  Kind kind;
  std::uint32_t first_slice = 0;  ///< inclusive
  std::uint32_t last_slice = 0;   ///< inclusive

  [[nodiscard]] std::string describe() const;
};

/// The complete batched Flux schedule for a configuration: the ordered
/// step list that keeps at most `slices_per_batch` (+1 staging) slices
/// resident while computing every face flux exactly once (§6.1.2).
///
/// For the paper's example (level 5 on 2 GB: 16 of 32 slices resident)
/// this reproduces Fig. 7's twelve steps.
struct BatchSchedule {
  std::vector<BatchStep> steps;
  std::uint32_t num_slices = 0;
  std::uint32_t resident_slices = 0;  ///< window size (excl. staging slice)

  /// Peak number of slices simultaneously resident (must be window + 1:
  /// the Fig. 7 staging slice for the +1 Y flux).
  [[nodiscard]] std::uint32_t peak_resident() const;
  /// Total slice-loads (>= num_slices; the excess is the Fig. 7 overlap
  /// reload).
  [[nodiscard]] std::uint32_t total_loads() const;
};

/// Builds the schedule. `num_slices` is the mesh dimension (2^level);
/// `resident` how many slices fit on chip. If everything fits, the
/// schedule is a single load + three compute steps + store.
BatchSchedule build_flux_batch_schedule(std::uint32_t num_slices,
                                        std::uint32_t resident);

/// Convenience: schedule for a chosen mapping configuration.
BatchSchedule build_flux_batch_schedule(const Problem& problem,
                                        const MappingConfig& config);

}  // namespace wavepim::mapping
