#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "dg/reference_element.h"
#include "mapping/coefficients.h"
#include "mapping/config.h"
#include "mapping/layout.h"
#include "pim/isa.h"

namespace wavepim::mapping {

/// Receiver of the per-element kernel instruction stream.
///
/// The emitters in this header encode the paper's Volume / Flux /
/// Integration execution flows (Figs. 5, 8, 9) exactly once; a functional
/// sink executes them bit-true on crossbar blocks while a costing sink
/// tallies time/energy/traffic. `group` indexes the element's blocks per
/// the expansion mode's var_groups().
class ProgramSink {
 public:
  virtual ~ProgramSink() = default;

  /// Constant distribution into the node rows (dshape coefficients,
  /// Fig. 5's "broadcast"): values[i] lands at (rows[i], col).
  virtual void scatter(std::uint32_t group,
                       std::span<const std::uint32_t> rows, std::uint32_t col,
                       std::span<const float> values,
                       std::uint32_t distinct_values) = 0;

  /// Intra-block stencil gather: row i of [0, n) reads (src_rows[i],
  /// src_col) into (i, dst_col).
  virtual void gather(std::uint32_t group,
                      std::span<const std::uint32_t> src_rows,
                      std::uint32_t src_col, std::uint32_t dst_col) = 0;

  /// Row-parallel ops over the first `rows` node rows.
  virtual void arith(std::uint32_t group, pim::Opcode op, std::uint32_t col_a,
                     std::uint32_t col_b, std::uint32_t col_dst,
                     std::uint32_t rows) = 0;
  virtual void fscale(std::uint32_t group, std::uint32_t col_src,
                      std::uint32_t col_dst, float imm,
                      std::uint32_t rows) = 0;
  virtual void faxpy(std::uint32_t group, std::uint32_t col_dst,
                     std::uint32_t col_src, float a, float c,
                     std::uint32_t rows) = 0;

  /// Row-list ops (face-node rows).
  virtual void arith_rows(std::uint32_t group, pim::Opcode op,
                          std::uint32_t col_a, std::uint32_t col_b,
                          std::uint32_t col_dst,
                          std::span<const std::uint32_t> rows) = 0;
  virtual void fscale_rows(std::uint32_t group, std::uint32_t col_src,
                           std::uint32_t col_dst, float imm,
                           std::span<const std::uint32_t> rows) = 0;

  /// Data movement between two blocks of the *same* element.
  virtual void intra_transfer(std::uint32_t src_group, std::uint32_t src_col,
                              std::span<const std::uint32_t> src_rows,
                              std::uint32_t dst_group, std::uint32_t dst_col,
                              std::span<const std::uint32_t> dst_rows) = 0;

  /// Data movement from the neighbour element across `face`: the
  /// neighbour's `src_group` block sends its trace rows into our
  /// `dst_group` block.
  virtual void inter_transfer(mesh::Face face, std::uint32_t src_group,
                              std::uint32_t src_col,
                              std::span<const std::uint32_t> src_rows,
                              std::uint32_t dst_group, std::uint32_t dst_col,
                              std::span<const std::uint32_t> dst_rows) = 0;

  /// Fetch of `count` host-precomputed constants from the LUT block
  /// (Alg. 1) into `group`'s scratch.
  virtual void lut_fetch(std::uint32_t group, std::uint32_t count) = 0;
};

/// Immutable description of one element's mapping: reference element,
/// var-to-block grouping, per-group layouts, physics coefficients and
/// scratch-column assignments. Shared by all elements of a uniform-
/// material problem.
class ElementSetup {
 public:
  ElementSetup(const Problem& problem, ExpansionMode mode, double h,
               dg::AcousticMaterial acoustic = {},
               dg::ElasticMaterial elastic = {.lambda = 2.0,
                                              .mu = 1.0,
                                              .rho = 1.0});

  [[nodiscard]] const Problem& problem() const { return problem_; }
  [[nodiscard]] ExpansionMode mode() const { return mode_; }
  [[nodiscard]] const dg::ReferenceElement& ref() const { return *ref_; }
  [[nodiscard]] std::uint32_t num_groups() const {
    return static_cast<std::uint32_t>(groups_.size());
  }
  [[nodiscard]] const std::vector<std::vector<std::uint32_t>>& groups() const {
    return groups_;
  }
  [[nodiscard]] const BlockLayout& layout(std::uint32_t group) const {
    return layouts_[group];
  }
  [[nodiscard]] std::uint32_t owner_of(std::uint32_t var) const {
    return owner_[var];
  }
  /// Position of `var` inside its owner group (layout column index).
  [[nodiscard]] std::uint32_t slot_of(std::uint32_t var) const {
    return slot_[var];
  }
  [[nodiscard]] double h() const { return h_; }
  [[nodiscard]] const VolumeCoeffs& volume_coeffs() const { return vol_; }
  [[nodiscard]] const FluxCoeffs& flux_coeffs(mesh::Face f,
                                              bool boundary) const {
    return boundary ? flux_boundary_[mesh::index_of(f)]
                    : flux_[mesh::index_of(f)];
  }

  /// Which group computes the derivative slice (axis, var) of the Volume
  /// kernel. Defaults to the consumer's owner; under the acoustic 4-block
  /// expansion it implements Fig. 8's axis split: block d computes both
  /// grad_p[d] and div_v[d] (with p duplicated into the velocity blocks)
  /// and ships the scaled div_v partial to the p block.
  [[nodiscard]] std::uint32_t slice_group(mesh::Axis axis,
                                          std::uint32_t in_var,
                                          std::uint32_t out_var) const;

  /// Uniform materials used for coefficient probing (the paper's
  /// benchmarks are homogeneous; heterogeneous media are supported by the
  /// functional path via per-element setups).
  [[nodiscard]] const dg::AcousticMaterial& acoustic_material() const {
    return acoustic_;
  }
  [[nodiscard]] const dg::ElasticMaterial& elastic_material() const {
    return elastic_;
  }

 private:
  Problem problem_;
  ExpansionMode mode_;
  std::shared_ptr<const dg::ReferenceElement> ref_;
  double h_;
  std::vector<std::vector<std::uint32_t>> groups_;
  std::vector<BlockLayout> layouts_;
  std::vector<std::uint32_t> owner_;
  std::vector<std::uint32_t> slot_;
  dg::AcousticMaterial acoustic_;
  dg::ElasticMaterial elastic_;
  VolumeCoeffs vol_;
  std::array<FluxCoeffs, 6> flux_;
  std::array<FluxCoeffs, 6> flux_boundary_;
};

/// Emits one element's Volume kernel (Fig. 5 timeline; Fig. 8 under
/// expansion): constant distribution, stencil gathers, dot-product
/// arithmetic and contribution accumulation, plus the intra-element
/// variable staging transfers expansion requires.
///
/// `coeffs` overrides the setup's (uniform-material) coefficients; pass
/// the element's own probe for heterogeneous media.
void emit_volume(const ElementSetup& setup, ProgramSink& sink,
                 const VolumeCoeffs* coeffs = nullptr);

/// Emits the Flux kernel for one face (Fig. 5; Fig. 9 under expansion).
/// `boundary` selects the reflected-ghost coefficients and suppresses the
/// neighbour transfer. `coeffs` overrides the setup's uniform-pair
/// coefficients (heterogeneous media: probe with the actual material
/// pair across this face).
void emit_flux_face(const ElementSetup& setup, mesh::Face face, bool boundary,
                    ProgramSink& sink, const FluxCoeffs* coeffs = nullptr);

/// Emits one Integration (RK) stage: aux = A aux + dt contrib;
/// var += B aux (Table 1's auxiliaries update).
void emit_integration_stage(const ElementSetup& setup, int stage, float dt,
                            ProgramSink& sink);

}  // namespace wavepim::mapping
