#include "mapping/program_cache.h"

#include <bit>
#include <mutex>
#include <utility>

#include "common/error.h"

namespace wavepim::mapping {

using mesh::Face;

// ---------------------------------------------------------------------------
// ProgramArena
// ---------------------------------------------------------------------------

std::uint32_t ProgramArena::add_rows(std::span<const std::uint32_t> rows) {
  std::vector<std::uint32_t> key(rows.begin(), rows.end());
  const auto it = row_ids_.find(key);
  if (it != row_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(row_tables_.size());
  row_tables_.push_back(key);
  row_ids_.emplace(std::move(key), id);
  return id;
}

std::uint32_t ProgramArena::add_values(std::span<const float> values) {
  std::vector<float> key(values.begin(), values.end());
  const auto it = value_ids_.find(key);
  if (it != value_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(value_tables_.size());
  value_tables_.push_back(key);
  value_ids_.emplace(std::move(key), id);
  return id;
}

// ---------------------------------------------------------------------------
// RelocatableAssembler
// ---------------------------------------------------------------------------

void RelocatableAssembler::scatter(std::uint32_t group,
                                   std::span<const std::uint32_t> rows,
                                   std::uint32_t col,
                                   std::span<const float> values,
                                   std::uint32_t distinct_values) {
  pim::Instruction inst;
  inst.op = pim::Opcode::BroadcastRow;
  inst.block = group;
  inst.col_dst = static_cast<std::uint8_t>(col);
  inst.word_count = distinct_values;
  inst.table_a = arena_.add_rows(rows);
  inst.table_b = arena_.add_values(values);
  arena_.append(inst);
}

void RelocatableAssembler::gather(std::uint32_t group,
                                  std::span<const std::uint32_t> src_rows,
                                  std::uint32_t src_col,
                                  std::uint32_t dst_col) {
  pim::Instruction inst;
  inst.op = pim::Opcode::GatherRows;
  inst.block = group;
  inst.col_a = static_cast<std::uint8_t>(src_col);
  inst.col_dst = static_cast<std::uint8_t>(dst_col);
  inst.table_a = arena_.add_rows(src_rows);
  arena_.append(inst);
}

void RelocatableAssembler::arith(std::uint32_t group, pim::Opcode op,
                                 std::uint32_t col_a, std::uint32_t col_b,
                                 std::uint32_t col_dst, std::uint32_t rows) {
  pim::Instruction inst;
  inst.op = op;
  inst.block = group;
  inst.col_a = static_cast<std::uint8_t>(col_a);
  inst.col_b = static_cast<std::uint8_t>(col_b);
  inst.col_dst = static_cast<std::uint8_t>(col_dst);
  inst.row_count = rows;
  arena_.append(inst);
}

void RelocatableAssembler::fscale(std::uint32_t group, std::uint32_t col_src,
                                  std::uint32_t col_dst, float imm,
                                  std::uint32_t rows) {
  pim::Instruction inst;
  inst.op = pim::Opcode::Fscale;
  inst.block = group;
  inst.col_a = static_cast<std::uint8_t>(col_src);
  inst.col_dst = static_cast<std::uint8_t>(col_dst);
  inst.imm = imm;
  inst.row_count = rows;
  arena_.append(inst);
}

void RelocatableAssembler::faxpy(std::uint32_t group, std::uint32_t col_dst,
                                 std::uint32_t col_src, float a, float c,
                                 std::uint32_t rows) {
  pim::Instruction inst;
  inst.op = pim::Opcode::Faxpy;
  inst.block = group;
  inst.col_a = static_cast<std::uint8_t>(col_src);
  inst.col_dst = static_cast<std::uint8_t>(col_dst);
  inst.imm = a;
  inst.imm2 = c;
  inst.row_count = rows;
  arena_.append(inst);
}

void RelocatableAssembler::arith_rows(std::uint32_t group, pim::Opcode op,
                                      std::uint32_t col_a, std::uint32_t col_b,
                                      std::uint32_t col_dst,
                                      std::span<const std::uint32_t> rows) {
  pim::Instruction inst;
  inst.op = op;
  inst.block = group;
  inst.col_a = static_cast<std::uint8_t>(col_a);
  inst.col_b = static_cast<std::uint8_t>(col_b);
  inst.col_dst = static_cast<std::uint8_t>(col_dst);
  inst.row_count = static_cast<std::uint32_t>(rows.size());
  inst.table_a = arena_.add_rows(rows);
  arena_.append(inst);
}

void RelocatableAssembler::fscale_rows(std::uint32_t group,
                                       std::uint32_t col_src,
                                       std::uint32_t col_dst, float imm,
                                       std::span<const std::uint32_t> rows) {
  pim::Instruction inst;
  inst.op = pim::Opcode::Fscale;
  inst.block = group;
  inst.col_a = static_cast<std::uint8_t>(col_src);
  inst.col_dst = static_cast<std::uint8_t>(col_dst);
  inst.imm = imm;
  inst.row_count = static_cast<std::uint32_t>(rows.size());
  inst.table_a = arena_.add_rows(rows);
  arena_.append(inst);
}

pim::Instruction RelocatableAssembler::memcpy_like(
    std::uint32_t src_group, std::uint32_t src_col,
    std::span<const std::uint32_t> src_rows, std::uint32_t dst_group,
    std::uint32_t dst_col, std::span<const std::uint32_t> dst_rows) {
  pim::Instruction inst;
  inst.op = pim::Opcode::MemCpy;
  inst.block = src_group;
  inst.peer_block = dst_group;
  inst.col_a = static_cast<std::uint8_t>(src_col);
  inst.col_dst = static_cast<std::uint8_t>(dst_col);
  inst.word_count = static_cast<std::uint32_t>(src_rows.size());
  inst.table_a = arena_.add_rows(src_rows);
  inst.table_b = arena_.add_rows(dst_rows);
  return inst;
}

void RelocatableAssembler::intra_transfer(
    std::uint32_t src_group, std::uint32_t src_col,
    std::span<const std::uint32_t> src_rows, std::uint32_t dst_group,
    std::uint32_t dst_col, std::span<const std::uint32_t> dst_rows) {
  pim::Instruction inst = memcpy_like(src_group, src_col, src_rows, dst_group,
                                      dst_col, dst_rows);
  inst.row = 0;
  arena_.append(inst);
}

void RelocatableAssembler::inter_transfer(
    Face face, std::uint32_t src_group, std::uint32_t src_col,
    std::span<const std::uint32_t> src_rows, std::uint32_t dst_group,
    std::uint32_t dst_col, std::span<const std::uint32_t> dst_rows) {
  pim::Instruction inst = memcpy_like(src_group, src_col, src_rows, dst_group,
                                      dst_col, dst_rows);
  inst.row = 1u + mesh::index_of(face);
  arena_.append(inst);
}

void RelocatableAssembler::lut_fetch(std::uint32_t group,
                                     std::uint32_t count) {
  pim::Instruction inst;
  inst.op = pim::Opcode::LutLookup;
  inst.block = group;
  inst.word_count = count;
  arena_.append(inst);
}

// ---------------------------------------------------------------------------
// replay
// ---------------------------------------------------------------------------

void replay(const ProgramArena& arena, StreamRef stream, ProgramSink& sink) {
  for (const pim::Instruction& inst : arena.view(stream)) {
    switch (inst.op) {
      case pim::Opcode::BroadcastRow:
        sink.scatter(inst.block, arena.rows(inst.table_a), inst.col_dst,
                     arena.values(inst.table_b), inst.word_count);
        break;
      case pim::Opcode::GatherRows:
        sink.gather(inst.block, arena.rows(inst.table_a), inst.col_a,
                    inst.col_dst);
        break;
      case pim::Opcode::Fadd:
      case pim::Opcode::Fsub:
      case pim::Opcode::Fmul:
        if (inst.table_a == pim::Instruction::kNoTable) {
          sink.arith(inst.block, inst.op, inst.col_a, inst.col_b,
                     inst.col_dst, inst.row_count);
        } else {
          sink.arith_rows(inst.block, inst.op, inst.col_a, inst.col_b,
                          inst.col_dst, arena.rows(inst.table_a));
        }
        break;
      case pim::Opcode::Fscale:
        if (inst.table_a == pim::Instruction::kNoTable) {
          sink.fscale(inst.block, inst.col_a, inst.col_dst, inst.imm,
                      inst.row_count);
        } else {
          sink.fscale_rows(inst.block, inst.col_a, inst.col_dst, inst.imm,
                           arena.rows(inst.table_a));
        }
        break;
      case pim::Opcode::Faxpy:
        sink.faxpy(inst.block, inst.col_dst, inst.col_a, inst.imm, inst.imm2,
                   inst.row_count);
        break;
      case pim::Opcode::MemCpy:
        if (inst.row == 0) {
          sink.intra_transfer(inst.block, inst.col_a,
                              arena.rows(inst.table_a), inst.peer_block,
                              inst.col_dst, arena.rows(inst.table_b));
        } else {
          sink.inter_transfer(static_cast<Face>(inst.row - 1), inst.block,
                              inst.col_a, arena.rows(inst.table_a),
                              inst.peer_block, inst.col_dst,
                              arena.rows(inst.table_b));
        }
        break;
      case pim::Opcode::LutLookup:
        sink.lut_fetch(inst.block, inst.word_count);
        break;
      default:
        WAVEPIM_REQUIRE(false, "unexpected opcode in a cached stream");
    }
  }
}

// ---------------------------------------------------------------------------
// ProgramCache
// ---------------------------------------------------------------------------

namespace {

/// Exact (bitwise-on-value) interning of a coefficient set; id 0 is
/// reserved for "the setup's uniform default".
class CoeffInterner {
 public:
  std::uint32_t intern(std::vector<float> flat) {
    const auto it = ids_.find(flat);
    if (it != ids_.end()) {
      return it->second;
    }
    const auto id = static_cast<std::uint32_t>(ids_.size() + 1);
    ids_.emplace(std::move(flat), id);
    return id;
  }

 private:
  std::map<std::vector<float>, std::uint32_t> ids_;
};

std::vector<float> flatten(const VolumeCoeffs& v) {
  std::vector<float> flat;
  flat.push_back(static_cast<float>(v.num_vars));
  for (const auto& axis : v.coeff) {
    flat.insert(flat.end(), axis.begin(), axis.end());
  }
  return flat;
}

std::vector<float> flatten(const FluxCoeffs& f) {
  std::vector<float> flat;
  flat.push_back(static_cast<float>(f.num_vars));
  flat.insert(flat.end(), f.alpha.begin(), f.alpha.end());
  flat.insert(flat.end(), f.beta.begin(), f.beta.end());
  return flat;
}

}  // namespace

ProgramCache::ProgramCache(
    const ElementSetup& setup, const mesh::StructuredMesh& mesh,
    const std::vector<VolumeCoeffs>* volume_overrides,
    const std::vector<std::array<FluxCoeffs, 6>>* flux_overrides)
    : setup_(setup) {
  const bool has_volume = volume_overrides && !volume_overrides->empty();
  const bool has_flux = flux_overrides && !flux_overrides->empty();
  WAVEPIM_REQUIRE(!has_volume ||
                      volume_overrides->size() == mesh.num_elements(),
                  "one volume override per element required");
  WAVEPIM_REQUIRE(!has_flux || flux_overrides->size() == mesh.num_elements(),
                  "one flux override set per element required");

  CoeffInterner volume_ids;
  CoeffInterner flux_ids;
  std::map<ShapeClassKey, std::uint32_t> class_ids;
  class_of_.resize(mesh.num_elements());

  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    ShapeClassKey key;
    if (has_volume) {
      key.volume_coeff_id = volume_ids.intern(flatten((*volume_overrides)[e]));
    }
    for (Face f : mesh::kAllFaces) {
      FaceClass& fc = key.faces[mesh::index_of(f)];
      fc.boundary = !mesh.neighbor(e, f).has_value();
      if (has_flux) {
        fc.coeff_id =
            flux_ids.intern(flatten((*flux_overrides)[e][mesh::index_of(f)]));
      }
    }
    auto it = class_ids.find(key);
    if (it == class_ids.end()) {
      const VolumeCoeffs* vc = has_volume ? &(*volume_overrides)[e] : nullptr;
      std::array<const FluxCoeffs*, 6> fcs{};
      if (has_flux) {
        for (std::size_t i = 0; i < 6; ++i) {
          fcs[i] = &(*flux_overrides)[e][i];
        }
      }
      it = class_ids.emplace(key, lower_class(key, vc, fcs)).first;
    }
    class_of_[e] = it->second;
  }
}

ProgramCache::ProgramCache(const ElementSetup& setup) : setup_(setup) {
  lower_class(ShapeClassKey{}, nullptr, {});
}

std::uint32_t ProgramCache::lower_class(
    const ShapeClassKey& key, const VolumeCoeffs* volume,
    const std::array<const FluxCoeffs*, 6>& flux) {
  RelocatableAssembler sink(arena_);
  ClassStreams streams;

  std::uint32_t begin = arena_.num_instructions();
  emit_volume(setup_, sink, volume);
  streams.volume = {begin, arena_.num_instructions() - begin};

  for (Face f : mesh::kAllFaces) {
    const auto i = mesh::index_of(f);
    begin = arena_.num_instructions();
    emit_flux_face(setup_, f, key.faces[i].boundary, sink, flux[i]);
    streams.flux[i] = {begin, arena_.num_instructions() - begin};
  }

  classes_.push_back(streams);
  return static_cast<std::uint32_t>(classes_.size() - 1);
}

const ProgramCache::IntegrationProgram& ProgramCache::integration(int stage,
                                                                  float dt) {
  const auto key = std::make_pair(stage, std::bit_cast<std::uint32_t>(dt));
  {
    std::shared_lock lock(integration_mutex_);
    const auto it = integration_.find(key);
    if (it != integration_.end()) {
      return *it->second;
    }
  }
  std::unique_lock lock(integration_mutex_);
  auto& slot = integration_[key];  // double-checked: a racer may have lowered
  if (!slot) {
    auto program = std::make_unique<IntegrationProgram>();
    RelocatableAssembler sink(program->arena);
    emit_integration_stage(setup_, stage, dt, sink);
    program->stream = {0, program->arena.num_instructions()};
    slot = std::move(program);
  }
  return *slot;
}

}  // namespace wavepim::mapping
