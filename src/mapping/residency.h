#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "mapping/batch_schedule.h"
#include "mesh/structured_mesh.h"
#include "pim/arena.h"
#include "pim/chip.h"

namespace wavepim::mapping {

/// The four face-side step groups of the batch schedule. Element
/// programs apply faces group by group — Y-, then both X faces, then
/// both Z faces, then Y+ — which is the per-element face order the
/// Fig. 7 schedule fixes for *every* window size (so batched and
/// fully-resident runs fold flux contributions in the same order).
enum class FaceGroup : std::uint8_t { YMinus = 0, X = 1, Z = 2, YPlus = 3 };

inline constexpr std::uint32_t kNumFaceGroups = 4;

/// Faces of a group, in canonical application order.
[[nodiscard]] std::span<const mesh::Face> faces_of(FaceGroup g);

/// The face group a compute step drives. Load/Store steps have none.
[[nodiscard]] FaceGroup group_of(BatchStep::Kind kind);

/// True if this element's Y- face is deferred to the schedule's wrap
/// step: the periodic mesh pairs slice 0 with slice N-1 *after* every
/// other face, so slice-0 elements apply Y- last instead of first.
[[nodiscard]] bool y_minus_deferred(const mesh::StructuredMesh& mesh,
                                    mesh::ElementId e);

/// Per-element group application order implied by the schedule:
/// YMinus, X, Z, YPlus — rotated to X, Z, YPlus, YMinus for the
/// deferred-Y- elements. Transfer lists merged in this order match the
/// emission order of any window size.
[[nodiscard]] std::array<FaceGroup, 4> canonical_group_order(bool deferred);

/// Aggregate staging traffic of one pass over a schedule. Zero for a
/// single-window (fully resident) schedule: staging only happens when
/// the window is smaller than the mesh. This is the one place loads and
/// stores are counted — the estimator and the executed simulation both
/// derive their HBM numbers from it.
struct StagingCounts {
  std::uint64_t slice_loads = 0;
  std::uint64_t slice_stores = 0;
  Bytes bytes = 0;
};

[[nodiscard]] StagingCounts count_staging(const BatchSchedule& schedule,
                                          Bytes slice_bytes);

/// Maps virtual element blocks to physical chip blocks.
///
/// Element programs address blocks by *virtual* id — element-major,
/// group-minor, exactly the resident Placement numbering — and resolve
/// them through this table at execution time. When the problem fits on
/// chip, every virtual block is pinned to the physical block of the
/// same id and the table never changes. When it does not fit, a window
/// of W+1 slice-sized slots (W = capacity in slices minus the Fig. 7
/// staging slot) is cycled through the BatchSchedule's Load/Store
/// steps: loading a slice binds its virtual blocks to a free slot and
/// copies the slice's state in from a host-side backing store; storing
/// copies it back out and frees the slot. Every slice load/store is
/// charged to the HbmModel at the slice's off-chip state footprint.
///
/// The functional copies are bit-exact full-column moves, and programs
/// only ever touch the node rows that are persisted, so a reloaded
/// slice is indistinguishable from one that stayed resident — the root
/// of the batched-vs-resident bit-identity guarantee.
class ResidencyManager {
 public:
  /// `rows` is the per-block row count programs touch (nodes per
  /// element); `element_bytes` the off-chip footprint of one element's
  /// state used to price staging.
  ResidencyManager(pim::Chip& chip, const mesh::StructuredMesh& mesh,
                   std::uint32_t blocks_per_element, std::uint32_t rows,
                   Bytes element_bytes);

  [[nodiscard]] bool is_resident() const { return resident_; }
  /// Window size in slices (num_slices when fully resident).
  [[nodiscard]] std::uint32_t window() const { return window_; }
  [[nodiscard]] std::uint32_t num_slices() const { return num_slices_; }
  [[nodiscard]] Bytes slice_bytes() const { return slice_bytes_; }

  /// The per-stage flux schedule (a single window when resident).
  [[nodiscard]] const BatchSchedule& schedule() const { return schedule_; }

  /// Virtual-to-physical block table for BlockResolver: entry v is the
  /// physical block backing virtual block v (null while not resident).
  [[nodiscard]] pim::Block* const* table() const { return table_.data(); }

  /// Elements ordered slice-major (all of slice 0, then slice 1, ...);
  /// the range of slice s is [s*elements_per_slice, (s+1)*...).
  [[nodiscard]] const std::vector<mesh::ElementId>& elements_in_slice_order()
      const {
    return slice_order_;
  }
  [[nodiscard]] std::uint32_t elements_per_slice() const {
    return elements_per_slice_;
  }

  /// Executes a Load/Store schedule step: binds slots and moves state
  /// between blocks and the backing store, charging HBM staging. No-ops
  /// when fully resident (the state never leaves the chip mid-stage).
  void load_slices(std::uint32_t first, std::uint32_t last);
  void store_slices(std::uint32_t first, std::uint32_t last);

  /// Host-side backing store of one virtual block's column (batched
  /// mode): state load/readback write through these instead of blocks.
  [[nodiscard]] std::span<float> backing_column(std::uint32_t vblock,
                                                std::uint32_t col);

  // --- Staging accounting -------------------------------------------------

  [[nodiscard]] std::uint64_t slice_loads() const { return slice_loads_; }
  [[nodiscard]] std::uint64_t slice_stores() const { return slice_stores_; }
  [[nodiscard]] Bytes bytes_staged() const { return bytes_staged_; }
  /// Accumulated staging cost since the last drain.
  [[nodiscard]] pim::OpCost drain_hbm_cost() {
    const pim::OpCost cost = hbm_cost_;
    hbm_cost_ = {};
    return cost;
  }

 private:
  void bind_slice(std::uint32_t slice, std::uint32_t slot);

  pim::Chip& chip_;
  std::uint32_t bpe_;
  std::uint32_t rows_;
  std::uint32_t num_slices_;
  std::uint32_t elements_per_slice_;
  Bytes slice_bytes_;
  bool resident_ = false;
  std::uint32_t window_ = 0;
  BatchSchedule schedule_;

  std::vector<pim::Block*> table_;          ///< virtual block -> physical
  std::vector<mesh::ElementId> slice_order_;
  std::vector<std::uint32_t> slot_of_slice_;
  std::vector<std::uint32_t> free_slots_;
  /// Batched: rows_ floats per (vblock, col), served from the same
  /// mmap-backed arena as block storage so huge over-capacity meshes
  /// commit pages lazily instead of allocating the whole virtual state
  /// up front.
  pim::FloatArena::Buffer backing_;

  std::uint64_t slice_loads_ = 0;
  std::uint64_t slice_stores_ = 0;
  Bytes bytes_staged_ = 0;
  pim::OpCost hbm_cost_{};
};

}  // namespace wavepim::mapping
