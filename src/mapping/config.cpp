#include "mapping/config.h"

#include "common/error.h"

namespace wavepim::mapping {

std::string Problem::name() const {
  return std::string(dg::to_string(kind)) + "_" +
         std::to_string(refinement_level);
}

std::array<Problem, 6> paper_benchmarks() {
  using dg::ProblemKind;
  return {{
      {ProblemKind::Acoustic, 4, 8},
      {ProblemKind::ElasticCentral, 4, 8},
      {ProblemKind::ElasticRiemann, 4, 8},
      {ProblemKind::Acoustic, 5, 8},
      {ProblemKind::ElasticCentral, 5, 8},
      {ProblemKind::ElasticRiemann, 5, 8},
  }};
}

std::string MappingConfig::label() const {
  std::string l = to_string(expansion);
  if (batched) {
    // The paper writes plain "B" when the naive layout is batched.
    l = (expansion == ExpansionMode::None) ? "B" : l + "&B";
  }
  return l;
}

MappingConfig choose_config(const Problem& problem,
                            const pim::ChipConfig& chip) {
  const std::uint64_t blocks = chip.num_blocks();
  const std::uint64_t elements = problem.num_elements();
  const auto modes = applicable_modes(problem.kind);

  // Most parallel mode that holds the whole model on chip.
  for (auto it = modes.rbegin(); it != modes.rend(); ++it) {
    const std::uint64_t need = elements * blocks_per_element(*it);
    if (need <= blocks) {
      MappingConfig c;
      c.expansion = *it;
      c.batched = false;
      c.num_batches = 1;
      c.elements_per_batch = elements;
      c.slices_per_batch = 1u << problem.refinement_level;
      return c;
    }
  }

  // Batch at the least-expanded mode, whole Y-slices per batch (Fig. 7).
  const ExpansionMode mode = modes.front();
  const std::uint64_t bpe = blocks_per_element(mode);
  const std::uint64_t dim = 1ull << problem.refinement_level;
  const std::uint64_t elements_per_slice = dim * dim;
  const std::uint64_t blocks_per_slice = elements_per_slice * bpe;
  const std::uint64_t slices_fit = blocks / blocks_per_slice;
  if (slices_fit == 0) {
    throw CapacityError("one mesh slice of " + problem.name() +
                        " does not fit on " + chip.name);
  }
  MappingConfig c;
  c.expansion = mode;
  c.batched = true;
  c.slices_per_batch = static_cast<std::uint32_t>(std::min(slices_fit, dim));
  c.num_batches = static_cast<std::uint32_t>(
      (dim + c.slices_per_batch - 1) / c.slices_per_batch);
  c.elements_per_batch = c.slices_per_batch * elements_per_slice;
  return c;
}

}  // namespace wavepim::mapping
