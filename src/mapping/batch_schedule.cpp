#include "mapping/batch_schedule.h"

#include <algorithm>

#include "common/error.h"
#include "trace/trace.h"

namespace wavepim::mapping {

std::string BatchStep::describe() const {
  const std::string range =
      first_slice == last_slice
          ? "slice " + std::to_string(first_slice)
          : "slices " + std::to_string(first_slice) + ".." +
                std::to_string(last_slice);
  switch (kind) {
    case Kind::LoadSlices:
      return "load " + range + " to PIM";
    case Kind::StoreSlices:
      return "store " + range + " to off-chip memory";
    case Kind::ComputeX:
      return "flux of " + range + " - X axis (-1, +1)";
    case Kind::ComputeZ:
      return "flux of " + range + " - Z axis (-1, +1)";
    case Kind::ComputeYMinus:
      return "flux of " + range + " - Y face, normal -1";
    case Kind::ComputeYPlus:
      return "flux of " + range + " - Y face, normal +1";
  }
  return "?";
}

std::uint32_t BatchSchedule::peak_resident() const {
  std::uint32_t resident = 0;
  std::uint32_t peak = 0;
  for (const auto& step : steps) {
    const std::uint32_t n = step.last_slice - step.first_slice + 1;
    if (step.kind == BatchStep::Kind::LoadSlices) {
      resident += n;
      peak = std::max(peak, resident);
    } else if (step.kind == BatchStep::Kind::StoreSlices) {
      WAVEPIM_ASSERT(resident >= n, "store of non-resident slices");
      resident -= n;
    }
  }
  return peak;
}

std::uint32_t BatchSchedule::total_loads() const {
  std::uint32_t loads = 0;
  for (const auto& step : steps) {
    if (step.kind == BatchStep::Kind::LoadSlices) {
      loads += step.last_slice - step.first_slice + 1;
    }
  }
  return loads;
}

std::uint32_t BatchSchedule::total_stores() const {
  std::uint32_t stores = 0;
  for (const auto& step : steps) {
    if (step.kind == BatchStep::Kind::StoreSlices) {
      stores += step.last_slice - step.first_slice + 1;
    }
  }
  return stores;
}

BatchSchedule build_flux_batch_schedule(std::uint32_t num_slices,
                                        std::uint32_t resident,
                                        bool periodic) {
  trace::Span span("map.batch_schedule", static_cast<double>(num_slices));
  WAVEPIM_REQUIRE(num_slices >= 1, "mesh must have at least one slice");
  WAVEPIM_REQUIRE(resident >= 1, "at least one slice must fit on chip");
  resident = std::min(resident, num_slices);
  const bool batching = resident < num_slices;

  BatchSchedule schedule;
  schedule.num_slices = num_slices;
  schedule.resident_slices = resident;
  auto add = [&](BatchStep::Kind kind, std::uint32_t first,
                 std::uint32_t last) {
    schedule.steps.push_back({kind, first, last});
  };

  std::uint32_t a = 0;
  bool staged = false;  // window's first slice already on chip
  while (a < num_slices) {
    const std::uint32_t b =
        std::min<std::uint32_t>(a + resident, num_slices) - 1;
    // Stage the window body (the first slice may be resident from the
    // previous window's crossing-face step, Fig. 7 step 5).
    if (!staged) {
      add(BatchStep::Kind::LoadSlices, a, b);
    } else if (a < b) {
      add(BatchStep::Kind::LoadSlices, a + 1, b);
    }

    // -1 Y faces resolvable inside the window. A staged first slice
    // already applied its Y- at the crossing step; periodic slice 0
    // defers its Y- to the wrap step.
    const std::uint32_t ym_first =
        staged ? a + 1 : (periodic && a == 0 ? 1 : a);
    if (ym_first <= b) {
      add(BatchStep::Kind::ComputeYMinus, ym_first, b);
    }

    // Intra-slice axes need no inter-slice data (Fig. 7 steps 2-3, 8-9).
    add(BatchStep::Kind::ComputeX, a, b);
    add(BatchStep::Kind::ComputeZ, a, b);

    // +1 Y faces resolvable inside the window: slice s pairs with s+1,
    // so the window's last slice waits for the crossing step (and the
    // periodic final slice for the wrap step). A reflective final
    // slice's Y+ is a boundary face and resolves immediately.
    if (b == num_slices - 1 && !periodic) {
      add(BatchStep::Kind::ComputeYPlus, a, b);
    } else if (b > a) {
      add(BatchStep::Kind::ComputeYPlus, a, b - 1);
    }

    if (b + 1 < num_slices) {
      // The face (b, b+1) crosses the window edge: stage the next slice,
      // compute both sides of the crossing face, retire the window
      // (Fig. 7 steps 5-7).
      add(BatchStep::Kind::LoadSlices, b + 1, b + 1);
      add(BatchStep::Kind::ComputeYPlus, b, b);
      add(BatchStep::Kind::ComputeYMinus, b + 1, b + 1);
      add(BatchStep::Kind::StoreSlices, a, b);
      staged = true;
    } else {
      if (periodic) {
        // Wrap pairing (N-1, 0): when batching, slice 0 was stored
        // un-integrated by the first window and must be restaged.
        if (batching) {
          add(BatchStep::Kind::LoadSlices, 0, 0);
        }
        add(BatchStep::Kind::ComputeYPlus, num_slices - 1, num_slices - 1);
        add(BatchStep::Kind::ComputeYMinus, 0, 0);
        if (batching) {
          add(BatchStep::Kind::StoreSlices, 0, 0);
        }
      }
      add(BatchStep::Kind::StoreSlices, a, b);
    }
    a = b + 1;
  }
  return schedule;
}

BatchSchedule build_flux_batch_schedule(const Problem& problem,
                                        const MappingConfig& config,
                                        bool periodic) {
  return build_flux_batch_schedule(1u << problem.refinement_level,
                                   config.slices_per_batch, periodic);
}

}  // namespace wavepim::mapping
