#include "mapping/batch_schedule.h"

#include <algorithm>

#include "common/error.h"
#include "trace/trace.h"

namespace wavepim::mapping {

std::string BatchStep::describe() const {
  const std::string range =
      first_slice == last_slice
          ? "slice " + std::to_string(first_slice)
          : "slices " + std::to_string(first_slice) + ".." +
                std::to_string(last_slice);
  switch (kind) {
    case Kind::LoadSlices:
      return "load " + range + " to PIM";
    case Kind::StoreSlices:
      return "store " + range + " to off-chip memory";
    case Kind::ComputeX:
      return "flux of " + range + " - X axis (-1, +1)";
    case Kind::ComputeZ:
      return "flux of " + range + " - Z axis (-1, +1)";
    case Kind::ComputeYMinus:
      return "flux of " + range + " - Y faces inside the window";
    case Kind::ComputeYPlus:
      return "flux of " + range + " - Y face crossing the window edge";
  }
  return "?";
}

std::uint32_t BatchSchedule::peak_resident() const {
  std::uint32_t resident = 0;
  std::uint32_t peak = 0;
  for (const auto& step : steps) {
    const std::uint32_t n = step.last_slice - step.first_slice + 1;
    if (step.kind == BatchStep::Kind::LoadSlices) {
      resident += n;
      peak = std::max(peak, resident);
    } else if (step.kind == BatchStep::Kind::StoreSlices) {
      WAVEPIM_ASSERT(resident >= n, "store of non-resident slices");
      resident -= n;
    }
  }
  return peak;
}

std::uint32_t BatchSchedule::total_loads() const {
  std::uint32_t loads = 0;
  for (const auto& step : steps) {
    if (step.kind == BatchStep::Kind::LoadSlices) {
      loads += step.last_slice - step.first_slice + 1;
    }
  }
  return loads;
}

BatchSchedule build_flux_batch_schedule(std::uint32_t num_slices,
                                        std::uint32_t resident) {
  trace::Span span("map.batch_schedule", static_cast<double>(num_slices));
  WAVEPIM_REQUIRE(num_slices >= 1, "mesh must have at least one slice");
  WAVEPIM_REQUIRE(resident >= 1, "at least one slice must fit on chip");
  resident = std::min(resident, num_slices);

  BatchSchedule schedule;
  schedule.num_slices = num_slices;
  schedule.resident_slices = resident;
  auto add = [&](BatchStep::Kind kind, std::uint32_t first,
                 std::uint32_t last) {
    schedule.steps.push_back({kind, first, last});
  };

  std::uint32_t a = 0;
  bool staged_first = false;  // window's first slice already on chip
  while (a < num_slices) {
    const std::uint32_t b =
        std::min<std::uint32_t>(a + resident, num_slices) - 1;
    // Stage the window (the edge slice may already be resident from the
    // previous window's crossing-face step, Fig. 7 step 5).
    if (staged_first) {
      if (a < b) {
        add(BatchStep::Kind::LoadSlices, a + 1, b);
      }
    } else {
      add(BatchStep::Kind::LoadSlices, a, b);
    }

    // Intra-slice axes need no inter-slice data (Fig. 7 steps 2-3, 8-9).
    add(BatchStep::Kind::ComputeX, a, b);
    add(BatchStep::Kind::ComputeZ, a, b);
    // Y faces wholly inside the window (steps 4, 10).
    if (a < b) {
      add(BatchStep::Kind::ComputeYMinus, a, b);
    }

    if (b + 1 < num_slices) {
      // The face (b, b+1) crosses the window edge: stage the next slice,
      // compute the crossing face, retire the window (steps 5-7).
      add(BatchStep::Kind::LoadSlices, b + 1, b + 1);
      add(BatchStep::Kind::ComputeYPlus, b, b + 1);
      add(BatchStep::Kind::StoreSlices, a, b);
      staged_first = true;
    } else {
      add(BatchStep::Kind::StoreSlices, a, b);
      staged_first = false;
    }
    a = b + 1;
  }
  return schedule;
}

BatchSchedule build_flux_batch_schedule(const Problem& problem,
                                        const MappingConfig& config) {
  return build_flux_batch_schedule(1u << problem.refinement_level,
                                   config.slices_per_batch);
}

}  // namespace wavepim::mapping
