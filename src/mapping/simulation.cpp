#include "mapping/simulation.h"

#include "common/error.h"
#include "dg/rk.h"

namespace wavepim::mapping {

PimSimulation::PimSimulation(const Problem& problem, ExpansionMode mode,
                             pim::ChipConfig chip, mesh::Boundary boundary,
                             dg::AcousticMaterial acoustic,
                             dg::ElasticMaterial elastic)
    : problem_(problem),
      mesh_(problem.refinement_level, 1.0, boundary),
      setup_(problem, mode, mesh_.element_size(), acoustic, elastic) {
  init_chip(std::move(chip));
}

namespace {

template <typename Physics>
void probe_heterogeneous(
    const mesh::StructuredMesh& mesh,
    const dg::MaterialField<typename Physics::Material>& materials,
    dg::FluxType flux, std::vector<VolumeCoeffs>& volume,
    std::vector<std::array<FluxCoeffs, 6>>& face_coeffs) {
  WAVEPIM_REQUIRE(materials.size() == mesh.num_elements(),
                  "one material per element required");
  volume.resize(mesh.num_elements());
  face_coeffs.resize(mesh.num_elements());
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    const auto& mine = materials.at(e);
    volume[e] = probe_volume<Physics>(mine);
    for (mesh::Face f : mesh::kAllFaces) {
      const auto neighbor = mesh.neighbor(e, f);
      if (neighbor) {
        face_coeffs[e][mesh::index_of(f)] = probe_flux<Physics>(
            f, flux, mine, materials.at(*neighbor), /*boundary=*/false);
      } else {
        face_coeffs[e][mesh::index_of(f)] =
            probe_flux<Physics>(f, flux, mine, mine, /*boundary=*/true);
      }
    }
  }
}

}  // namespace

PimSimulation::PimSimulation(
    const Problem& problem, ExpansionMode mode, pim::ChipConfig chip,
    const dg::MaterialField<dg::AcousticMaterial>& materials,
    mesh::Boundary boundary)
    : problem_(problem),
      mesh_(problem.refinement_level, 1.0, boundary),
      setup_(problem, mode, mesh_.element_size()) {
  WAVEPIM_REQUIRE(!dg::is_elastic(problem.kind),
                  "acoustic materials supplied for an elastic problem");
  probe_heterogeneous<dg::AcousticPhysics>(mesh_, materials,
                                           dg::flux_of(problem.kind),
                                           volume_coeffs_, flux_coeffs_);
  init_chip(std::move(chip));
}

PimSimulation::PimSimulation(
    const Problem& problem, ExpansionMode mode, pim::ChipConfig chip,
    const dg::MaterialField<dg::ElasticMaterial>& materials,
    mesh::Boundary boundary)
    : problem_(problem),
      mesh_(problem.refinement_level, 1.0, boundary),
      setup_(problem, mode, mesh_.element_size()) {
  WAVEPIM_REQUIRE(dg::is_elastic(problem.kind),
                  "elastic materials supplied for an acoustic problem");
  probe_heterogeneous<dg::ElasticPhysics>(mesh_, materials,
                                          dg::flux_of(problem.kind),
                                          volume_coeffs_, flux_coeffs_);
  init_chip(std::move(chip));
}

void PimSimulation::init_chip(pim::ChipConfig chip) {
  const std::uint64_t needed =
      problem_.num_elements() * blocks_per_element(setup_.mode());
  WAVEPIM_REQUIRE(needed <= chip.num_blocks(),
                  "functional simulation requires the whole problem "
                  "resident on chip (no batching)");
  chip_ = std::make_unique<pim::Chip>(std::move(chip));

  SinkPricing pricing;
  pricing.model = &chip_->arith();
  const pim::Transfer hop{.src_block = 0, .dst_block = 5, .words = 1};
  pricing.lut_unit = pricing.rows_read(2) + pricing.rows_written(1);
  pricing.lut_unit += {chip_->interconnect().isolated_latency(hop),
                       chip_->interconnect().transfer_energy(hop)};

  sink_ = std::make_unique<FunctionalSink>(
      *chip_, mesh_, Placement(blocks_per_element(setup_.mode())), pricing);
}

const VolumeCoeffs* PimSimulation::volume_override(mesh::ElementId e) const {
  return volume_coeffs_.empty() ? nullptr : &volume_coeffs_[e];
}

const FluxCoeffs* PimSimulation::flux_override(mesh::ElementId e,
                                               mesh::Face f) const {
  return flux_coeffs_.empty() ? nullptr : &flux_coeffs_[e][mesh::index_of(f)];
}

void PimSimulation::load_state(const dg::Field& u) {
  WAVEPIM_REQUIRE(u.num_elements() == mesh_.num_elements() &&
                      u.num_vars() == problem_.num_vars() &&
                      u.nodes_per_element() ==
                          static_cast<std::size_t>(setup_.ref().num_nodes()),
                  "field shape does not match the problem");
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (std::uint32_t v = 0; v < problem_.num_vars(); ++v) {
      const std::uint32_t g = setup_.owner_of(v);
      auto& block = sink_->block_of(static_cast<mesh::ElementId>(e), g);
      const auto& layout = setup_.layout(g);
      const std::uint32_t col_var = layout.col_var(setup_.slot_of(v));
      const std::uint32_t col_aux = layout.col_aux(setup_.slot_of(v));
      const auto values = u.at(e, v);
      for (std::uint32_t n = 0; n < values.size(); ++n) {
        block.set(n, col_var, values[n]);
        block.set(n, col_aux, 0.0f);
      }
    }
  }
  // Loading is an HBM-side cost, accounted by the estimator's batching
  // model; the functional path prices only the in-chip execution.
  for (std::uint32_t b = 0; b < problem_.num_elements() *
                                    blocks_per_element(setup_.mode());
       ++b) {
    chip_->block(b).reset_cost();
  }
}

dg::Field PimSimulation::read_state() {
  dg::Field u(mesh_.num_elements(), problem_.num_vars(),
              static_cast<std::size_t>(setup_.ref().num_nodes()));
  for (std::size_t e = 0; e < u.num_elements(); ++e) {
    for (std::uint32_t v = 0; v < problem_.num_vars(); ++v) {
      const std::uint32_t g = setup_.owner_of(v);
      auto& block = sink_->block_of(static_cast<mesh::ElementId>(e), g);
      const std::uint32_t col =
          setup_.layout(g).col_var(setup_.slot_of(v));
      auto values = u.at(e, v);
      for (std::uint32_t n = 0; n < values.size(); ++n) {
        values[n] = block.at(n, col);
      }
    }
  }
  return u;
}

void PimSimulation::drain_compute(pim::OpCost& into) {
  const auto phase = chip_->drain_phase();
  into += {phase.busiest_block, phase.energy};
}

void PimSimulation::drain_network() {
  const auto result = chip_->interconnect().schedule(sink_->transfers());
  costs_.network += {result.makespan, result.energy};
  sink_->clear_transfers();
}

void PimSimulation::step(double dt) {
  WAVEPIM_REQUIRE(dt > 0.0, "time step must be positive");
  const auto num_elements = mesh_.num_elements();

  for (int stage = 0; stage < dg::Lsrk54::kNumStages; ++stage) {
    // Volume: every element-block set computes its local contributions.
    for (mesh::ElementId e = 0; e < num_elements; ++e) {
      sink_->bind(e);
      emit_volume(setup_, *sink_, volume_override(e));
    }
    drain_compute(costs_.volume);
    drain_network();

    // Flux: neighbour traces ride the interconnect, then each element
    // applies its face corrections.
    for (mesh::ElementId e = 0; e < num_elements; ++e) {
      sink_->bind(e);
      for (mesh::Face f : mesh::kAllFaces) {
        const bool boundary = !mesh_.neighbor(e, f).has_value();
        emit_flux_face(setup_, f, boundary, *sink_, flux_override(e, f));
      }
    }
    drain_compute(costs_.flux);
    drain_network();

    // Integration: auxiliaries and variables advance in place.
    for (mesh::ElementId e = 0; e < num_elements; ++e) {
      sink_->bind(e);
      emit_integration_stage(setup_, stage, static_cast<float>(dt), *sink_);
    }
    drain_compute(costs_.integration);
  }
}

}  // namespace wavepim::mapping
