#include "mapping/simulation.h"

#include <cstdlib>
#include <cstring>

#include "common/error.h"
#include "dg/rk.h"
#include "trace/trace.h"

namespace wavepim::mapping {

const char* to_string(ExecPath path) {
  switch (path) {
    case ExecPath::Emit:
      return "emit";
    case ExecPath::Replay:
      return "replay";
    case ExecPath::Compiled:
      return "compiled";
  }
  return "?";
}

bool PimSimulation::default_program_cache_enabled() {
  const char* env = std::getenv("WAVEPIM_PROGRAM_CACHE");
  if (env == nullptr) {
    return true;
  }
  return std::strcmp(env, "0") != 0 && std::strcmp(env, "off") != 0;
}

ExecPath PimSimulation::default_exec_path() {
  const char* env = std::getenv("WAVEPIM_EXEC");
  if (env != nullptr) {
    if (std::strcmp(env, "emit") == 0) {
      return ExecPath::Emit;
    }
    if (std::strcmp(env, "replay") == 0) {
      return ExecPath::Replay;
    }
    if (std::strcmp(env, "compiled") == 0) {
      return ExecPath::Compiled;
    }
    WAVEPIM_REQUIRE(false, "WAVEPIM_EXEC must be emit, replay or compiled");
  }
  return default_program_cache_enabled() ? ExecPath::Replay : ExecPath::Emit;
}

PimSimulation::PimSimulation(const Problem& problem, ExpansionMode mode,
                             pim::ChipConfig chip, mesh::Boundary boundary,
                             dg::AcousticMaterial acoustic,
                             dg::ElasticMaterial elastic)
    : problem_(problem),
      mesh_(problem.refinement_level, 1.0, boundary),
      setup_(problem, mode, mesh_.element_size(), acoustic, elastic) {
  init_chip(std::move(chip));
}

namespace {

template <typename Physics>
void probe_heterogeneous(
    const mesh::StructuredMesh& mesh,
    const dg::MaterialField<typename Physics::Material>& materials,
    dg::FluxType flux, std::vector<VolumeCoeffs>& volume,
    std::vector<std::array<FluxCoeffs, 6>>& face_coeffs) {
  WAVEPIM_REQUIRE(materials.size() == mesh.num_elements(),
                  "one material per element required");
  volume.resize(mesh.num_elements());
  face_coeffs.resize(mesh.num_elements());
  for (mesh::ElementId e = 0; e < mesh.num_elements(); ++e) {
    const auto& mine = materials.at(e);
    volume[e] = probe_volume<Physics>(mine);
    for (mesh::Face f : mesh::kAllFaces) {
      const auto neighbor = mesh.neighbor(e, f);
      if (neighbor) {
        face_coeffs[e][mesh::index_of(f)] = probe_flux<Physics>(
            f, flux, mine, materials.at(*neighbor), /*boundary=*/false);
      } else {
        face_coeffs[e][mesh::index_of(f)] =
            probe_flux<Physics>(f, flux, mine, mine, /*boundary=*/true);
      }
    }
  }
}

}  // namespace

PimSimulation::PimSimulation(
    const Problem& problem, ExpansionMode mode, pim::ChipConfig chip,
    const dg::MaterialField<dg::AcousticMaterial>& materials,
    mesh::Boundary boundary)
    : problem_(problem),
      mesh_(problem.refinement_level, 1.0, boundary),
      setup_(problem, mode, mesh_.element_size()) {
  WAVEPIM_REQUIRE(!dg::is_elastic(problem.kind),
                  "acoustic materials supplied for an elastic problem");
  probe_heterogeneous<dg::AcousticPhysics>(mesh_, materials,
                                           dg::flux_of(problem.kind),
                                           volume_coeffs_, flux_coeffs_);
  init_chip(std::move(chip));
}

PimSimulation::PimSimulation(
    const Problem& problem, ExpansionMode mode, pim::ChipConfig chip,
    const dg::MaterialField<dg::ElasticMaterial>& materials,
    mesh::Boundary boundary)
    : problem_(problem),
      mesh_(problem.refinement_level, 1.0, boundary),
      setup_(problem, mode, mesh_.element_size()) {
  WAVEPIM_REQUIRE(dg::is_elastic(problem.kind),
                  "elastic materials supplied for an acoustic problem");
  probe_heterogeneous<dg::ElasticPhysics>(mesh_, materials,
                                          dg::flux_of(problem.kind),
                                          volume_coeffs_, flux_coeffs_);
  init_chip(std::move(chip));
}

void PimSimulation::init_chip(pim::ChipConfig chip) {
  const std::uint64_t needed =
      problem_.num_elements() * blocks_per_element(setup_.mode());
  WAVEPIM_REQUIRE(needed <= chip.num_blocks(),
                  "functional simulation requires the whole problem "
                  "resident on chip (no batching)");
  chip_ = std::make_unique<pim::Chip>(std::move(chip));
  // Allocate every resident block up front: Chip::block() is safe under
  // concurrent workers only for already-allocated ids.
  chip_->ensure_blocks(static_cast<std::uint32_t>(needed));

  pricing_ = {};
  pricing_.model = &chip_->arith();
  const pim::Transfer hop{.src_block = 0, .dst_block = 5, .words = 1};
  pricing_.lut_unit = pricing_.rows_read(2) + pricing_.rows_written(1);
  pricing_.lut_unit += {chip_->interconnect().isolated_latency(hop),
                        chip_->interconnect().transfer_energy(hop)};

  placement_ = Placement(blocks_per_element(setup_.mode()));
  sink_ = std::make_unique<FunctionalSink>(*chip_, mesh_, placement_,
                                           pricing_);
  build_face_pairings();
}

void PimSimulation::build_face_pairings() {
  // Pairing group (axis, parity): elements whose +axis face pairs them
  // with their +axis neighbour and whose coordinate along the axis has
  // that parity. dim() is a power of two, so for dim >= 2 the parity
  // split is a proper 2-colouring even across the periodic wrap; dim == 1
  // collapses to self-pairings that all land in parity 0.
  for (auto& group : face_pairings_) {
    group.clear();
  }
  for (mesh::Axis a : mesh::kAllAxes) {
    const mesh::Face plus = mesh::make_face(a, +1);
    for (mesh::ElementId e = 0; e < mesh_.num_elements(); ++e) {
      if (!mesh_.neighbor(e, plus)) {
        continue;  // reflective boundary: no exchange across this face
      }
      const std::uint32_t parity = mesh_.coords_of(e)[mesh::index_of(a)] % 2;
      face_pairings_[2 * mesh::index_of(a) + parity].push_back(e);
    }
  }
}

ThreadPool& PimSimulation::pool() {
  return owned_pool_ ? *owned_pool_ : ThreadPool::global();
}

void PimSimulation::set_num_threads(std::size_t num_threads) {
  owned_pool_ =
      num_threads == 0 ? nullptr : std::make_unique<ThreadPool>(num_threads);
}

void PimSimulation::ensure_cache() {
  if (cache_) {
    return;
  }
  trace::Span span("pim.build_cache");
  cache_ = std::make_unique<ProgramCache>(
      setup_, mesh_, volume_coeffs_.empty() ? nullptr : &volume_coeffs_,
      flux_coeffs_.empty() ? nullptr : &flux_coeffs_);
}

void PimSimulation::ensure_plan() {
  if (plan_) {
    return;
  }
  ensure_cache();
  trace::Span span("pim.build_plan");
  plan_ = std::make_unique<ExecutionPlan>(*cache_, mesh_, placement_,
                                          pricing_);
}

const VolumeCoeffs* PimSimulation::volume_override(mesh::ElementId e) const {
  return volume_coeffs_.empty() ? nullptr : &volume_coeffs_[e];
}

const FluxCoeffs* PimSimulation::flux_override(mesh::ElementId e,
                                               mesh::Face f) const {
  return flux_coeffs_.empty() ? nullptr : &flux_coeffs_[e][mesh::index_of(f)];
}

void PimSimulation::load_state(const dg::Field& u) {
  WAVEPIM_REQUIRE(u.num_elements() == mesh_.num_elements() &&
                      u.num_vars() == problem_.num_vars() &&
                      u.nodes_per_element() ==
                          static_cast<std::size_t>(setup_.ref().num_nodes()),
                  "field shape does not match the problem");
  trace::Span span("pim.load_state");
  // Elements own disjoint blocks, so loading parallelizes trivially; the
  // bulk column helpers replace the per-node set() walk.
  pool().parallel_for(u.num_elements(), [&](std::size_t e) {
    for (std::uint32_t v = 0; v < problem_.num_vars(); ++v) {
      const std::uint32_t g = setup_.owner_of(v);
      auto& block = sink_->block_of(static_cast<mesh::ElementId>(e), g);
      const auto& layout = setup_.layout(g);
      const auto values = u.at(e, v);
      block.load_column(layout.col_var(setup_.slot_of(v)), values);
      block.fill_column(layout.col_aux(setup_.slot_of(v)), 0.0f,
                        static_cast<std::uint32_t>(values.size()));
    }
  });
  // Loading is an HBM-side cost, accounted by the estimator's batching
  // model; the functional path prices only the in-chip execution.
  for (std::uint32_t b = 0; b < problem_.num_elements() *
                                    blocks_per_element(setup_.mode());
       ++b) {
    chip_->block(b).reset_cost();
  }
}

dg::Field PimSimulation::read_state() {
  trace::Span span("pim.read_state");
  dg::Field u(mesh_.num_elements(), problem_.num_vars(),
              static_cast<std::size_t>(setup_.ref().num_nodes()));
  pool().parallel_for(u.num_elements(), [&](std::size_t e) {
    for (std::uint32_t v = 0; v < problem_.num_vars(); ++v) {
      const std::uint32_t g = setup_.owner_of(v);
      auto& block = sink_->block_of(static_cast<mesh::ElementId>(e), g);
      const std::uint32_t col =
          setup_.layout(g).col_var(setup_.slot_of(v));
      block.store_column(col, u.at(e, v));
    }
  });
  return u;
}

void PimSimulation::parallel_emit(
    const std::function<void(mesh::ElementId, FunctionalSink&)>& emit,
    std::vector<pim::Transfer>& transfers, bool defer_charges) {
  const auto num_elements = mesh_.num_elements();
  // Per-element stashes keep the merged transfer list (and the deferred
  // charge records) in element order no matter which worker ran what.
  // The stash vectors are members recycled across phases and stages —
  // adopting them into the sink clears contents but keeps capacity.
  transfer_stash_.resize(num_elements);
  if (defer_charges) {
    charge_stash_.resize(num_elements);
  }
  pool().parallel_for(num_elements, [&](std::size_t e) {
    const auto element = static_cast<mesh::ElementId>(e);
    FunctionalSink sink(*chip_, mesh_, placement_, pricing_);
    sink.adopt_transfers(std::move(transfer_stash_[e]));
    sink.defer_remote_charges(defer_charges);
    if (defer_charges) {
      sink.adopt_remote_charges(std::move(charge_stash_[e]));
    }
    sink.bind(element);
    emit(element, sink);
    transfer_stash_[e] = sink.take_transfers();
    if (defer_charges) {
      charge_stash_[e] = sink.take_remote_charges();
    }
  });
  std::size_t total = transfers.size();
  for (const auto& list : transfer_stash_) {
    total += list.size();
  }
  transfers.reserve(total);
  for (const auto& list : transfer_stash_) {
    transfers.insert(transfers.end(), list.begin(), list.end());
  }
}

void PimSimulation::settle_remote_charges(
    std::vector<RemoteCharges>& charges) {
  // Six sequential pairing groups; within each, pairings touch disjoint
  // element pairs, so they settle concurrently, and every block receives
  // its charges in a fixed (group, face, emission) order.
  for (std::size_t group = 0; group < face_pairings_.size(); ++group) {
    const auto& pairing = face_pairings_[group];
    const auto axis = static_cast<mesh::Axis>(group / 2);
    const mesh::Face plus = mesh::make_face(axis, +1);
    const mesh::Face minus = mesh::make_face(axis, -1);
    pool().parallel_for(pairing.size(), [&](std::size_t i) {
      const mesh::ElementId e = pairing[i];
      const mesh::ElementId nbr = *mesh_.neighbor(e, plus);
      // This element's pull across +axis owes reads to `nbr`'s blocks;
      // the partner's pull back across -axis owes reads to ours.
      for (const auto& c : charges[e][mesh::index_of(plus)]) {
        chip_->block(c.block).charge(pricing_.rows_read(c.words));
      }
      for (const auto& c : charges[nbr][mesh::index_of(minus)]) {
        chip_->block(c.block).charge(pricing_.rows_read(c.words));
      }
    });
  }
}

void PimSimulation::drain_compute(pim::OpCost& into) {
  const auto phase = chip_->drain_phase();
  into += {phase.busiest_block, phase.energy};
}

void PimSimulation::drain_network(const std::vector<pim::Transfer>& transfers) {
  trace::Span span("pim.drain_network", static_cast<double>(transfers.size()));
  const auto result = chip_->interconnect().schedule(transfers);
  costs_.network += {result.makespan, result.energy};
  net_stats_.schedules += 1;
  net_stats_.transfers += transfers.size();
  for (const auto& t : transfers) {
    net_stats_.words += t.words;
  }
  net_stats_.serial_sum += result.serial_sum;
}

void PimSimulation::drain_network_cached(
    CachedNetDrain& cached, const std::vector<pim::Transfer>& transfers) {
  trace::Span span("pim.drain_network", static_cast<double>(transfers.size()));
  if (!cached.valid) {
    const auto result = chip_->interconnect().schedule(transfers);
    cached.cost = {result.makespan, result.energy};
    cached.transfers = transfers.size();
    cached.words = 0;
    for (const auto& t : transfers) {
      cached.words += t.words;
    }
    cached.serial_sum = result.serial_sum;
    cached.valid = true;
  }
  costs_.network += cached.cost;
  net_stats_.schedules += 1;
  net_stats_.transfers += cached.transfers;
  net_stats_.words += cached.words;
  net_stats_.serial_sum += cached.serial_sum;
}

void PimSimulation::step(double dt) {
  WAVEPIM_REQUIRE(dt > 0.0, "time step must be positive");
  trace::Span span("pim.step");
  switch (exec_path_) {
    case ExecPath::Emit:
      step_sinks(dt, /*cached=*/false);
      break;
    case ExecPath::Replay:
      ensure_cache();
      step_sinks(dt, /*cached=*/true);
      break;
    case ExecPath::Compiled:
      ensure_plan();
      step_compiled(dt);
      break;
  }
}

void PimSimulation::step_sinks(double dt, bool cached) {
  std::vector<pim::Transfer>& transfers = merged_transfers_;
  transfers.clear();

  for (int stage = 0; stage < dg::Lsrk54::kNumStages; ++stage) {
    trace::Span stage_span("pim.rk_stage", static_cast<double>(stage));
    // The cached path replays each element's class streams instead of
    // re-lowering its kernels; replay issues the identical sink-call
    // sequence, so fields, ledgers and transfer lists match the emit
    // path bit-for-bit. The integration stream is fetched (and lazily
    // lowered) before the fan-out — replay itself is const and
    // worker-safe, lowering is not.
    const StreamRef integ_stream =
        cached ? cache_->integration(stage, static_cast<float>(dt))
               : StreamRef{};

    // Volume: every element-block set computes its local contributions.
    // Purely element-local (intra-element staging transfers only).
    {
      trace::Span phase_span("pim.volume");
      parallel_emit(
          [this, cached](mesh::ElementId e, FunctionalSink& sink) {
            if (cached) {
              replay(cache_->arena(), cache_->volume(cache_->class_of(e)),
                     sink);
            } else {
              emit_volume(setup_, sink, volume_override(e));
            }
          },
          transfers, /*defer_charges=*/false);
    }
    drain_compute(costs_.volume);
    drain_network(transfers);
    transfers.clear();

    // Flux phase A: neighbour traces ride the interconnect and each
    // element applies its face corrections, with neighbour-side read
    // costs deferred; phase B settles them over the disjoint pairings.
    {
      trace::Span phase_span("pim.flux");
      parallel_emit(
          [this, cached](mesh::ElementId e, FunctionalSink& sink) {
            if (cached) {
              const std::uint32_t cls = cache_->class_of(e);
              for (mesh::Face f : mesh::kAllFaces) {
                replay(cache_->arena(), cache_->flux(cls, f), sink);
              }
            } else {
              for (mesh::Face f : mesh::kAllFaces) {
                const bool boundary = !mesh_.neighbor(e, f).has_value();
                emit_flux_face(setup_, f, boundary, sink,
                               flux_override(e, f));
              }
            }
          },
          transfers, /*defer_charges=*/true);
      settle_remote_charges(charge_stash_);
    }
    drain_compute(costs_.flux);
    drain_network(transfers);
    transfers.clear();

    // Integration: auxiliaries and variables advance in place.
    {
      trace::Span phase_span("pim.integration");
      parallel_emit(
          [this, cached, integ_stream, stage, dt](mesh::ElementId,
                                                  FunctionalSink& sink) {
            if (cached) {
              replay(cache_->arena(), integ_stream, sink);
            } else {
              emit_integration_stage(setup_, stage, static_cast<float>(dt),
                                     sink);
            }
          },
          transfers, /*defer_charges=*/false);
    }
    drain_compute(costs_.integration);
  }
}

void PimSimulation::step_compiled(double dt) {
  const auto num_elements = mesh_.num_elements();
  for (int stage = 0; stage < dg::Lsrk54::kNumStages; ++stage) {
    trace::Span stage_span("pim.rk_stage", static_cast<double>(stage));
    // Lazy lowering of the stage's Integration stream happens before the
    // fan-out (running a compiled stream is const and worker-safe).
    const ExecutionPlan::StreamPlan& integ =
        plan_->integration(stage, static_cast<float>(dt));

    {
      trace::Span phase_span("pim.volume");
      pool().parallel_for(num_elements, [&](std::size_t e) {
        plan_->run_volume(*chip_, static_cast<mesh::ElementId>(e));
      });
    }
    drain_compute(costs_.volume);
    drain_network_cached(volume_net_, plan_->volume_transfers());

    // Flux phase A (parallel per element) + phase B settlement over the
    // disjoint face pairings — the same two-phase schedule as the sink
    // path, so every ledger sees its charges in the identical order.
    {
      trace::Span phase_span("pim.flux");
      pool().parallel_for(num_elements, [&](std::size_t e) {
        plan_->run_flux(*chip_, static_cast<mesh::ElementId>(e));
      });
      for (std::size_t group = 0; group < face_pairings_.size(); ++group) {
        const auto& pairing = face_pairings_[group];
        const auto axis = static_cast<mesh::Axis>(group / 2);
        const mesh::Face plus = mesh::make_face(axis, +1);
        const mesh::Face minus = mesh::make_face(axis, -1);
        pool().parallel_for(pairing.size(), [&](std::size_t i) {
          const mesh::ElementId e = pairing[i];
          const mesh::ElementId nbr = *mesh_.neighbor(e, plus);
          plan_->settle_pull(*chip_, e, plus);
          plan_->settle_pull(*chip_, nbr, minus);
        });
      }
    }
    drain_compute(costs_.flux);
    drain_network_cached(flux_net_, plan_->flux_transfers());

    {
      trace::Span phase_span("pim.integration");
      pool().parallel_for(num_elements, [&](std::size_t e) {
        plan_->run_integration(*chip_, static_cast<mesh::ElementId>(e),
                               integ);
      });
    }
    drain_compute(costs_.integration);
  }
}

}  // namespace wavepim::mapping
